// The Fig. 1 architecture end to end on an 8-node cluster: a mixed batch of
// jobs (well-behaved and pathological) flows through scheduler -> router ->
// database; the dashboard agent maintains views; the stream analyzer flags
// pathological jobs online; afterwards every job gets its evaluation header
// and performance-pattern classification — the administrator's view of the
// system.

#include <cstdio>

#include "lms/cluster/harness.hpp"
#include "lms/tsdb/trace_assembly.hpp"

using namespace lms;

namespace {
constexpr util::TimeNs kMin = util::kNanosPerMinute;
}

int main() {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 8;
  opts.duplicate_per_user = true;   // per-user databases (paper §III-B)
  opts.enable_aggregator = true;    // job-level aggregates via the PUB/SUB tap
  opts.enable_rollups = true;       // 5-minute downsampling rollups
  opts.record_findings = true;      // online findings stored as alert events
  opts.enable_self_scrape = true;   // the stack monitors itself (lms_internal)
  opts.enable_alerts = true;        // rule engine + per-host deadman watch
  opts.enable_tracing = true;       // spans exported into the shared TSDB
  cluster::ClusterHarness harness(opts);

  // Alert on the stack's own ingest: if the router forwards nothing for a
  // while the pipeline is broken, whatever the nodes are doing.
  alert::AlertRule ingest_rule;
  ingest_rule.name = "router_ingest_stalled";
  ingest_rule.kind = alert::ConditionKind::kRateOfChange;
  ingest_rule.measurement = "lms_internal";
  ingest_rule.field = "value";
  ingest_rule.tag_filters = {{"metric", "router_points_in"}};
  ingest_rule.cmp = alert::Comparison::kBelowEq;
  ingest_rule.threshold = 0;
  ingest_rule.window = 5 * kMin;
  ingest_rule.for_duration = 5 * kMin;
  harness.alerts()->add(ingest_rule);

  std::printf("== LMS full stack: 8 nodes, mixed job batch ==\n\n");

  struct Submission {
    const char* workload;
    const char* user;
    int nodes;
    int minutes;
  };
  const Submission batch[] = {
      {"minimd", "alice", 4, 25},       // healthy MD run
      {"stream", "bob", 2, 20},         // bandwidth bound
      {"idle", "carol", 2, 30},         // pathological: idle allocation
      {"compute_break", "dave", 4, 40}, // pathological: 12-min stall
      {"scalar", "erin", 2, 15},        // optimization potential
      {"dgemm", "frank", 2, 15},        // compute bound
  };
  std::vector<int> jobs;
  for (const auto& s : batch) {
    const int id = harness.submit(s.workload, s.user, s.nodes, s.minutes * kMin);
    jobs.push_back(id);
    std::printf("submitted job %d: %-14s %d nodes, %2d min (%s)\n", id, s.workload, s.nodes,
                s.minutes, s.user);
  }

  // Run 90 simulated minutes; refresh dashboards every 10 minutes. With
  // record_findings on, online alerts land in the DB as they fire. Half way
  // through, h5's collector agent "crashes" for 10 minutes — the deadman
  // watch fires and resolves when it comes back.
  for (int epoch = 1; epoch <= 9; ++epoch) {
    if (epoch == 5) harness.set_node_active("h5", false);
    if (epoch == 6) harness.set_node_active("h5", true);
    harness.run_for(10 * kMin);
    harness.dashboards().refresh(harness.router().running_jobs(), harness.now());
  }
  harness.dashboards().generate_internals_dashboard(harness.now());
  harness.dashboards().generate_alerts_dashboard(harness.now());

  // The alert history, straight from the database ("alerts" measurement).
  std::printf("\n-- alert history (online detection, recorded as events) --\n");
  tsdb::Database* lms_db = harness.storage().find_database("lms");
  for (const auto* s : lms_db->series_of("alerts")) {
    const auto it = s->columns.find("text");
    if (it == s->columns.end()) continue;
    for (const auto& v : it->second.values()) {
      std::printf("  %s\n", v.as_string().c_str());
    }
  }

  // Alert-engine transitions, same storage ("lms_alerts" measurement): the
  // h5 deadman episode plus anything the rules caught.
  std::printf("\n-- alert engine (lms_alerts: rule engine + deadman watch) --\n");
  for (const auto* s : lms_db->series_of("lms_alerts")) {
    const auto it = s->columns.find("text");
    if (it == s->columns.end()) continue;
    for (std::size_t i = 0; i < it->second.values().size(); ++i) {
      std::printf("  [%s] %-8s %s\n",
                  util::format_duration(it->second.times()[i] - opts.start_time).c_str(),
                  std::string(s->tag("state")).c_str(),
                  it->second.values()[i].as_string().c_str());
    }
  }
  std::printf("evaluator: %llu evaluations, %llu transitions, %zu firing now\n",
              static_cast<unsigned long long>(harness.alerts()->evaluations()),
              static_cast<unsigned long long>(harness.alerts()->transitions()),
              harness.alerts()->firing_count());

  // Every component answers the standard probes.
  std::printf("\n-- health probes (/health, /ready on every component) --\n");
  for (const char* target : {"router", "tsdb", "grafana", "agent-h1"}) {
    auto health = harness.client().get(std::string("inproc://") + target + "/health");
    auto ready = harness.client().get(std::string("inproc://") + target + "/ready");
    std::printf("  %-9s health=%d ready=%d  %s\n", target,
                health.ok() ? health->status : -1, ready.ok() ? ready->status : -1,
                health.ok() ? health->body.c_str() : "unreachable");
  }

  std::printf("\n-- scheduler outcome --\n");
  for (const auto* job : harness.scheduler().finished()) {
    std::printf("job %d (%-14s): %s after %s on", job->id, job->spec.name.c_str(),
                std::string(sched::job_state_name(job->state)).c_str(),
                util::format_duration(job->end_time - job->start_time).c_str());
    for (const auto& n : job->assigned_nodes) std::printf(" %s", n.c_str());
    std::printf("\n");
  }

  std::printf("\n-- per-job evaluation (the admin view) --\n");
  for (const int id : jobs) {
    const auto* record = harness.job_record(id);
    if (record == nullptr || record->end_time == 0) continue;
    const auto eval = harness.reporter().evaluate(std::to_string(id), record->nodes,
                                                  record->start_time, record->end_time);
    std::printf("\njob %d (%s, %s): pattern=%s potential=%.1f, %zu finding(s)\n", id,
                record->workload.c_str(), record->user.c_str(),
                std::string(analysis::pattern_name(eval.classification.pattern)).c_str(),
                eval.classification.optimization_potential, eval.findings.size());
    for (const auto& f : eval.findings) {
      std::printf("   %s\n", f.to_string().c_str());
    }
  }

  std::printf("\n-- stack statistics --\n");
  const auto rstats = harness.router().stats();
  std::printf("router: %llu points in, %llu forwarded, %llu duplicated per-user, "
              "%llu jobs started, %llu parse errors\n",
              static_cast<unsigned long long>(rstats.points_in),
              static_cast<unsigned long long>(rstats.points_out),
              static_cast<unsigned long long>(rstats.points_duplicated),
              static_cast<unsigned long long>(rstats.jobs_started),
              static_cast<unsigned long long>(rstats.parse_errors));
  std::printf("databases:");
  for (const auto& name : harness.storage().databases()) {
    tsdb::Database* db = harness.storage().find_database(name);
    std::printf(" %s(%zu series, %zu samples)", name.c_str(), db->series_count(),
                db->sample_count());
  }
  std::printf("\ndashboards:");
  for (const auto& uid : harness.dashboards().dashboard_uids()) {
    std::printf(" %s", uid.c_str());
  }
  std::printf("\n");

  // The stack monitoring itself: the self-scrape wrote the shared registry
  // back through the router, so the pipeline's own health is a measurement
  // like any other — queryable, chartable, retained.
  std::printf("\n-- self-monitoring (lms_internal, via obs self-scrape) --\n");
  std::printf("self-scrape: %llu scrapes, %llu failures\n",
              static_cast<unsigned long long>(harness.self_scrape()->scrapes()),
              static_cast<unsigned long long>(harness.self_scrape()->failures()));
  const char* internal_metrics[] = {"router_points_in", "router_write_ns", "tsdb_samples",
                                    "http_server_requests"};
  for (const char* metric : internal_metrics) {
    const std::string q = std::string("SELECT last(") +
                          (std::string(metric).find("_ns") != std::string::npos ? "p99" : "value") +
                          ") FROM lms_internal WHERE metric='" + metric + "'";
    auto result = tsdb::Engine(harness.storage()).query("lms", q, harness.now());
    if (!result.ok() || result->series.empty() || result->series[0].values.empty()) continue;
    std::printf("  %-22s %.0f\n", metric,
                result->series[0].values[0][1].as_double());
  }

  // Distributed tracing: pick one collector delivery, export every span the
  // stack recorded for it and print the assembled waterfall — one write,
  // collector -> router -> TSDB, as a single story.
  std::printf("\n-- distributed tracing (lms_traces -> /trace/<id>) --\n");
  harness.run_for(opts.collect_interval);  // one more delivery cycle
  const std::size_t exported = harness.drain_traces();
  std::printf("exported %zu spans into the shared TSDB\n", exported);
  const tsdb::ReadSnapshot snap = harness.storage().snapshot("lms");
  std::uint64_t trace_id = 0;
  util::TimeNs best_start = 0;
  for (const tsdb::Series* s :
       snap->series_matching(std::string(obs::kTraceMeasurement), {{"component", "collector"}})) {
    const auto it = s->columns.find("span");
    if (it == s->columns.end() || it->second.times().empty()) continue;
    if (it->second.times().back() >= best_start) {
      best_start = it->second.times().back();
      trace_id = obs::parse_trace_id_hex(s->tag("trace_id")).value_or(0);
    }
  }
  if (trace_id != 0) {
    const tsdb::TraceTree tree = tsdb::assemble_trace(snap, trace_id);
    std::printf("%s", tsdb::trace_tree_to_waterfall(tree).c_str());
  } else {
    std::printf("no collector trace found\n");
  }
  return 0;
}
