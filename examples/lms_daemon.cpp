// Deployment-shaped example: the stack's server components as real HTTP
// services on localhost, wired by an INI config — the "components can be
// used standalone or integrated into existing infrastructures" claim of the
// paper. Any InfluxDB-speaking collector (Diamond, curl cronjobs, a Ganglia
// pulling proxy) can be pointed at the router port.
//
// Usage:
//   lms_daemon                 run a short self-test against the live ports
//   lms_daemon --serve [secs]  keep serving for `secs` (default 30)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "lms/alert/evaluator.hpp"
#include "lms/core/router.hpp"
#include "lms/core/taskscheduler.hpp"
#include "lms/net/tcp_http.hpp"
#include "lms/obs/cpuprofiler.hpp"
#include "lms/obs/metrics.hpp"
#include "lms/obs/selfscrape.hpp"
#include "lms/obs/trace.hpp"
#include "lms/obs/traceexport.hpp"
#include "lms/tsdb/http_api.hpp"
#include "lms/tsdb/persist.hpp"
#include "lms/util/config.hpp"
#include "lms/util/strings.hpp"

using namespace lms;

namespace {

constexpr std::string_view kDefaultConfig = R"(
[database]
port = 0           ; 0 = ephemeral
retention = 24h
default_db = lms

[router]
port = 0
duplicate_per_user = true
spool_capacity = 10000   ; store-and-forward when the DB is briefly down
async_ingest = true      ; batch writes through the ingest queue + flusher
ingest_queue_points = 8192  ; queued-point cap before writers get HTTP 429

[persistence]
snapshot =               ; path for save/load across restarts (empty = off)

[alerting]
interval_seconds = 5     ; evaluator cadence while serving
deadman_seconds = 30     ; fire when a host stops writing this long (0 = off)

[tracing]
sample_rate = 1.0        ; head-sampling probability for new root traces
slow_keep_ms = 250       ; always keep spans slower than this (0 = off)
export_seconds = 5       ; span-export cadence into the TSDB
log_ring = 512           ; /debug/logs retention (entries)

[profiling]
enable = true            ; continuous CPU sampling (GET /debug/pprof)
hz = 99                  ; SIGPROF ticks per second of on-CPU time
wall = false             ; true = wall-clock sampling (idle threads tick too)
export_seconds = 10      ; lms_profiles top-K export cadence into the TSDB
top_k = 20               ; stacks per lms_profiles export
)";

}  // namespace

int main(int argc, char** argv) {
  const bool serve = argc > 1 && std::strcmp(argv[1], "--serve") == 0;
  const int serve_seconds = argc > 2 ? std::atoi(argv[2]) : 30;

  auto config = util::Config::parse(kDefaultConfig);
  if (!config.ok()) {
    std::fprintf(stderr, "config: %s\n", config.message().c_str());
    return 1;
  }

  // One shared metrics registry: every component (DB engine, router, HTTP
  // servers/clients) reports into it, so GET /metrics shows the whole
  // process and one self-scrape covers the whole stack.
  obs::Registry registry;
  // Span-ring gauges next to everything else; RAII unregistration.
  obs::ScopedTraceMetrics trace_metrics(registry);

  // Tracing policy from [tracing]: head sampling plus the slow-span
  // always-keep rule, and a log ring so /debug/logs can answer "what did
  // this trace log" on both services.
  obs::set_trace_sample_rate(config->get_double_or("tracing", "sample_rate", 1.0));
  obs::set_trace_slow_keep_ns(config->get_int_or("tracing", "slow_keep_ms", 0) *
                              util::kNanosPerMilli);
  util::LogRing log_ring(
      static_cast<std::size_t>(config->get_int_or("tracing", "log_ring", 512)));
  util::Logger::instance().set_sink(log_ring.sink());

  // Database back-end with its InfluxDB-compatible HTTP API.
  tsdb::Storage storage;
  util::WallClock& clock = util::WallClock::instance();
  tsdb::HttpApi::Options db_opts;
  db_opts.registry = &registry;
  db_opts.log_ring = &log_ring;
  db_opts.default_db = config->get_or("database", "default_db", "lms");
  if (const auto r = config->get("database", "retention")) {
    if (auto d = tsdb::parse_duration(*r); d.ok()) db_opts.retention = *d;
  }
  tsdb::HttpApi db_api(storage, clock, db_opts);
  const std::string snapshot_path = config->get_or("persistence", "snapshot", "");
  if (!snapshot_path.empty()) {
    if (auto loaded = tsdb::load_snapshot(storage, snapshot_path); loaded.ok()) {
      std::printf("restored %zu points from %s\n", *loaded, snapshot_path.c_str());
    }
  }
  net::TcpHttpServer::Options db_srv_opts;
  db_srv_opts.port = static_cast<int>(config->get_int_or("database", "port", 0));
  db_srv_opts.registry = &registry;
  net::TcpHttpServer db_server(db_api.handler(), db_srv_opts);
  if (auto p = db_server.start(); !p.ok()) {
    std::fprintf(stderr, "db server: %s\n", p.message().c_str());
    return 1;
  }

  // Metrics router in front of it.
  net::TcpHttpClient::Options db_client_opts;
  db_client_opts.registry = &registry;
  net::TcpHttpClient db_client(db_client_opts);
  core::MetricsRouter::Options router_opts;
  router_opts.registry = &registry;
  router_opts.log_ring = &log_ring;
  router_opts.db_url = db_server.url();
  router_opts.database = db_opts.default_db;
  router_opts.duplicate_per_user = config->get_bool_or("router", "duplicate_per_user", false);
  router_opts.spool_capacity =
      static_cast<std::size_t>(config->get_int_or("router", "spool_capacity", 0));
  router_opts.async_ingest = config->get_bool_or("router", "async_ingest", false);
  router_opts.ingest_queue_capacity =
      static_cast<std::size_t>(config->get_int_or("router", "ingest_queue_points", 8192));
  net::PubSubBroker broker;
  broker.set_registry(&registry);
  core::MetricsRouter router(db_client, clock, router_opts, &broker);
  net::TcpHttpServer::Options router_srv_opts;
  router_srv_opts.port = static_cast<int>(config->get_int_or("router", "port", 0));
  router_srv_opts.registry = &registry;
  net::TcpHttpServer router_server(router.handler(), router_srv_opts);
  if (auto p = router_server.start(); !p.ok()) {
    std::fprintf(stderr, "router server: %s\n", p.message().c_str());
    return 1;
  }

  // Self-scrape: the daemon writes its own registry through the router, so
  // operators can chart the stack's health ("lms_internal") next to the
  // cluster data it stores.
  net::TcpHttpClient scrape_client;  // plain client: no trace/metrics feedback loop
  obs::SelfScrape::Options ss_opts;
  ss_opts.tags = {{"hostname", "lms-daemon"}};
  ss_opts.interval = static_cast<util::TimeNs>(
      config->get_int_or("observability", "self_scrape_seconds", 5)) *
      util::kNanosPerSecond;
  obs::SelfScrape self_scrape(
      registry, clock,
      [&](const std::string& body) -> util::Status {
        auto resp = scrape_client.post(
            router_server.url() + "/write?db=" + db_opts.default_db, body, "text/plain");
        if (!resp.ok()) return util::Status::error(resp.message());
        if (!resp->ok()) return util::Status::error("HTTP " + std::to_string(resp->status));
        return util::Status();
      },
      ss_opts);

  // Trace exporter: the daemon's own spans (HTTP server/client, router
  // write path, query execution) land in the TSDB it serves, so
  // GET <db>/trace/<id> works on a live deployment.
  obs::TraceExporter::Options te_opts;
  te_opts.host = "lms-daemon";
  te_opts.interval = static_cast<util::TimeNs>(
      config->get_int_or("tracing", "export_seconds", 5)) * util::kNanosPerSecond;
  obs::TraceExporter trace_exporter(
      [&](const std::string& body) -> util::Status {
        auto resp = scrape_client.post(
            router_server.url() + "/write?db=" + db_opts.default_db, body, "text/plain");
        if (!resp.ok()) return util::Status::error(resp.message());
        if (!resp->ok()) return util::Status::error("HTTP " + std::to_string(resp->status));
        return util::Status();
      },
      te_opts);

  // CPU profiler from [profiling]: continuous SIGPROF sampling of the
  // daemon itself. Collapsed stacks are served at GET /debug/pprof (and an
  // HTML flamegraph on the dashboard agent, when one runs); the top-K
  // stacks land in the TSDB as lms_profiles through the router, tagged
  // with the trace id of whatever request was in flight when sampled.
  const bool profiling_enabled = config->get_bool_or("profiling", "enable", true);
  std::unique_ptr<obs::ProfileExporter> profile_exporter;
  if (profiling_enabled) {
    obs::CpuProfiler::Options prof_opts;
    prof_opts.hz = static_cast<int>(config->get_int_or("profiling", "hz", 99));
    prof_opts.wall = config->get_bool_or("profiling", "wall", false);
    if (auto status = obs::CpuProfiler::instance().start(prof_opts); !status.ok()) {
      std::fprintf(stderr, "profiler: %s\n", status.message().c_str());
    } else {
      obs::ProfileExporter::Options pe_opts;
      pe_opts.host = "lms-daemon";
      pe_opts.interval = static_cast<util::TimeNs>(
          config->get_int_or("profiling", "export_seconds", 10)) * util::kNanosPerSecond;
      pe_opts.top_k =
          static_cast<std::size_t>(config->get_int_or("profiling", "top_k", 20));
      profile_exporter = std::make_unique<obs::ProfileExporter>(
          [&](const std::string& body) -> util::Status {
            auto resp = scrape_client.post(
                router_server.url() + "/write?db=" + db_opts.default_db, body, "text/plain");
            if (!resp.ok()) return util::Status::error(resp.message());
            if (!resp->ok()) {
              return util::Status::error("HTTP " + std::to_string(resp->status));
            }
            return util::Status();
          },
          pe_opts);
    }
  }

  // Alert evaluator against the same storage, run as a periodic scheduler
  // task while serving: deadman watch over every host that ever wrote, plus
  // a self-metrics rule; transitions land in lms_alerts and the log.
  alert::Evaluator::Options alert_opts;
  alert_opts.database = db_opts.default_db;
  alert_opts.deadman_window =
      config->get_int_or("alerting", "deadman_seconds", 30) * util::kNanosPerSecond;
  alert_opts.registry = &registry;
  alert_opts.eval_interval =
      config->get_int_or("alerting", "interval_seconds", 5) * util::kNanosPerSecond;
  alert_opts.clock = &clock;
  alert::Evaluator alerts(storage, alert_opts);
  alerts.add_sink(std::make_unique<alert::LogSink>());
  {
    // The daemon watches its own spool: sustained growth means the DB
    // back-end is not keeping up (see router spool store-and-forward).
    alert::AlertRule spool_rule;
    spool_rule.name = "router_spool_growing";
    spool_rule.kind = alert::ConditionKind::kRateOfChange;
    spool_rule.measurement = "lms_internal";
    spool_rule.field = "value";
    spool_rule.tag_filters = {{"metric", "router_spool_depth"}};
    spool_rule.cmp = alert::Comparison::kAbove;
    spool_rule.threshold = 0;
    spool_rule.window = util::kNanosPerMinute;
    spool_rule.for_duration = util::kNanosPerMinute;
    alerts.add(spool_rule);
  }
  {
    // Ingest backpressure: the async ingest queue sitting near its capacity
    // means the flusher can't drain as fast as writers produce, and the next
    // burst will be bounced with HTTP 429. Page before that happens.
    alert::AlertRule ingest_rule;
    ingest_rule.name = "router_ingest_backpressure";
    ingest_rule.kind = alert::ConditionKind::kThreshold;
    ingest_rule.measurement = "lms_internal";
    ingest_rule.field = "value";
    ingest_rule.tag_filters = {{"metric", "router_ingest_queue_points"}};
    ingest_rule.cmp = alert::Comparison::kAbove;
    ingest_rule.threshold = 0.8 *
        static_cast<double>(config->get_int_or("router", "ingest_queue_points", 8192));
    ingest_rule.window = util::kNanosPerMinute;
    ingest_rule.for_duration = 30 * util::kNanosPerSecond;
    alerts.add(ingest_rule);
  }
  const util::TimeNs alert_interval = alert_opts.eval_interval;

  std::printf("== LMS daemon ==\n");
  std::printf("database (InfluxDB-compatible): %s\n", db_server.url().c_str());
  std::printf("metrics router:                 %s\n", router_server.url().c_str());
  std::printf("\ntry, from any shell:\n");
  std::printf("  curl -XPOST '%s/job/start' -d "
              "'{\"jobid\":\"1\",\"user\":\"me\",\"nodes\":[\"$(hostname)\"]}'\n",
              router_server.url().c_str());
  std::printf("  curl -XPOST '%s/write?db=lms' --data-binary "
              "'cpu,hostname='$(hostname)' user_percent=42'\n",
              router_server.url().c_str());
  std::printf("  curl '%s/query?db=lms&q=SELECT%%20user_percent%%20FROM%%20cpu'\n",
              db_server.url().c_str());
  std::printf("  curl '%s/metrics'          # router self-metrics (text)\n",
              router_server.url().c_str());
  std::printf("  curl '%s/metrics'          # DB engine self-metrics (text)\n",
              db_server.url().c_str());
  std::printf("  curl '%s/health'           # liveness (JSON component status)\n",
              router_server.url().c_str());
  std::printf("  curl '%s/ready'            # readiness (503 while degraded)\n\n",
              router_server.url().c_str());

  if (serve) {
    // One shared work-stealing runtime drives every background loop of the
    // daemon: self-scrape, trace export and alert evaluation all become
    // periodic tasks (visible under GET /debug/runtime on either port).
    core::TaskScheduler::Options sched_opts;
    sched_opts.name = "daemon.sched";
    core::TaskScheduler sched(sched_opts);
    self_scrape.attach(sched);
    trace_exporter.attach(sched);
    alerts.attach(sched);
    if (obs::CpuProfiler::instance().running()) obs::CpuProfiler::instance().attach(sched);
    if (profile_exporter != nullptr) profile_exporter->attach(sched);
    std::printf("serving for %d seconds (%zu scheduler workers, self-scrape every %lld s, "
                "alert eval every %lld s, deadman %lld s)...\n",
                serve_seconds, sched.worker_count(),
                static_cast<long long>(ss_opts.interval / util::kNanosPerSecond),
                static_cast<long long>(alert_interval / util::kNanosPerSecond),
                static_cast<long long>(alert_opts.deadman_window / util::kNanosPerSecond));
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
    if (profile_exporter != nullptr) profile_exporter->detach();
    obs::CpuProfiler::instance().detach();
    alerts.detach();
    trace_exporter.detach();
    self_scrape.detach();
    sched.stop();
    std::printf("alerting: %llu evaluations, %llu transitions, %zu firing at shutdown\n",
                static_cast<unsigned long long>(alerts.evaluations()),
                static_cast<unsigned long long>(alerts.transitions()),
                alerts.firing_count());
  } else {
    // Self-test: exactly the curl sequence above, over the live TCP ports.
    net::TcpHttpClient client;
    bool ok = true;
    auto check = [&](const char* what, bool cond) {
      std::printf("  %-34s %s\n", what, cond ? "ok" : "FAILED");
      ok = ok && cond;
    };
    auto resp = client.post(router_server.url() + "/job/start",
                            R"({"jobid":"1","user":"me","nodes":["selftest-host"]})",
                            "application/json");
    check("job start signal", resp.ok() && resp->status == 204);
    resp = client.post(router_server.url() + "/write?db=lms",
                       "cpu,hostname=selftest-host user_percent=42\n", "text/plain");
    check("metric write through router", resp.ok() && resp->status == 204);
    (void)router.flush_ingest();  // don't race the async flusher before querying
    resp = client.get(db_server.url() + "/query?db=lms&q=" +
                      util::url_encode("SELECT user_percent FROM cpu WHERE jobid='1'"));
    check("enriched query via DB API",
          resp.ok() && resp->status == 200 &&
              resp->body.find("42") != std::string::npos);
    resp = client.post(router_server.url() + "/job/end", R"({"jobid":"1"})",
                       "application/json");
    check("job end signal", resp.ok() && resp->status == 204);
    resp = client.get(router_server.url() + "/metrics");
    check("router /metrics shows ingest",
          resp.ok() && resp->status == 200 &&
              resp->body.find("router_points_in 1") != std::string::npos);
    check("self-scrape into own TSDB", self_scrape.scrape_once().ok());
    (void)router.flush_ingest();
    resp = client.get(db_server.url() + "/query?db=lms&q=" +
                      util::url_encode(
                          "SELECT last(value) FROM lms_internal WHERE metric='router_points_in'"));
    check("lms_internal queryable",
          resp.ok() && resp->status == 200 &&
              resp->body.find("lms_internal") != std::string::npos);
    resp = client.get(router_server.url() + "/health");
    check("router /health ok JSON",
          resp.ok() && resp->status == 200 &&
              resp->body.find("\"status\":\"ok\"") != std::string::npos);
    resp = client.get(router_server.url() + "/ready");
    check("router /ready (DB reachable)", resp.ok() && resp->status == 200);
    resp = client.get(db_server.url() + "/health");
    check("db /health ok JSON",
          resp.ok() && resp->status == 200 &&
              resp->body.find("\"status\":\"ok\"") != std::string::npos);
    // One evaluation pass: the selftest host just wrote, so the deadman
    // watch discovers it without firing.
    alerts.run(clock.now());
    check("alert evaluation (deadman clear)",
          alerts.evaluations() > 0 && alerts.firing_count() == 0);
    // Tracing round trip: a root span around a write, exported into the
    // TSDB, assembled back by the /trace endpoint.
    std::uint64_t trace_id = 0;
    {
      obs::Span span("selftest.write", "daemon");
      trace_id = span.context().trace_id;
      resp = client.post(router_server.url() + "/write?db=lms",
                         "cpu,hostname=selftest-host user_percent=43\n", "text/plain");
      check("traced write through router", resp.ok() && resp->status == 204);
    }
    check("span export into own TSDB", trace_exporter.export_once().ok());
    (void)router.flush_ingest();  // land the queued span points deterministically
    resp = client.get(db_server.url() + "/trace/" + obs::trace_id_hex(trace_id));
    check("trace assembly via /trace/<id>",
          resp.ok() && resp->status == 200 &&
              resp->body.find("selftest.write") != std::string::npos);
    resp = client.get(db_server.url() + "/debug/logs");
    check("/debug/logs serves the log ring", resp.ok() && resp->status == 200);
    // Profiler surface: burn a little CPU so SIGPROF has ticks to deliver,
    // then check the debug endpoints answer on both ports.
    if (profiling_enabled && obs::CpuProfiler::instance().running()) {
      volatile double sink = 0;
      for (int i = 0; i < 30'000'000; ++i) sink = sink + static_cast<double>(i) * 0.5;
      obs::CpuProfiler::instance().process_once();
      resp = client.get(router_server.url() + "/debug/pprof");
      check("/debug/pprof collapsed stacks", resp.ok() && resp->status == 200);
      resp = client.get(db_server.url() + "/debug/runtime");
      check("/debug/runtime profiler section",
            resp.ok() && resp->status == 200 &&
                resp->body.find("\"profiler\"") != std::string::npos &&
                resp->body.find("\"running\":true") != std::string::npos);
    }
    std::printf("self-test %s\n", ok ? "passed" : "failed");
    if (!ok) {
      util::Logger::instance().set_sink(nullptr);
      return 1;
    }
  }

  router_server.stop();
  db_server.stop();
  obs::CpuProfiler::instance().stop();  // disarm the timer before teardown
  util::Logger::instance().set_sink(nullptr);  // the ring dies with main()
  if (!snapshot_path.empty()) {
    if (auto status = tsdb::save_snapshot(storage, snapshot_path); status.ok()) {
      std::printf("snapshot saved to %s\n", snapshot_path.c_str());
    } else {
      std::fprintf(stderr, "snapshot failed: %s\n", status.message().c_str());
    }
  }
  return 0;
}
