// Quickstart: the whole LIKWID Monitoring Stack in one process.
//
// Spins up the simulated 4-node cluster with the full pipeline (host agents
// -> metrics router -> time-series DB, scheduler job signals, dashboard
// agent, online stream analysis), runs one miniMD job, and shows:
//   - querying the job's metrics through the InfluxDB-compatible API,
//   - the online job evaluation header (paper Fig. 2),
//   - the generated Grafana-style dashboard list.

#include <cstdio>

#include "lms/cluster/harness.hpp"
#include "lms/util/strings.hpp"

using namespace lms;

int main() {
  cluster::ClusterHarness::Options options;
  options.nodes = 4;
  cluster::ClusterHarness cluster(options);

  std::printf("== LMS quickstart: 4-node simulated cluster ==\n\n");

  // Submit a 10-minute miniMD job on all 4 nodes; refresh the dashboards
  // mid-run (the agent keeps views of running jobs current), then finish.
  const int job = cluster.submit("minimd", "alice", 4, 10 * util::kNanosPerMinute);
  cluster.run_for(5 * util::kNanosPerMinute);
  cluster.dashboards().refresh(cluster.router().running_jobs(), cluster.now());
  if (!cluster.run_until_done(job, util::kNanosPerHour)) {
    std::printf("job did not finish\n");
    return 1;
  }
  const auto* record = cluster.job_record(job);
  std::printf("job %d (%s) ran on:", job, record->workload.c_str());
  for (const auto& n : record->nodes) std::printf(" %s", n.c_str());
  std::printf("\n\n");

  // 1. Query the DB through the InfluxDB-compatible HTTP API.
  const std::string query =
      "SELECT mean(dp_mflop_per_s) FROM likwid_mem_dp WHERE jobid='" +
      std::to_string(job) + "' GROUP BY hostname";
  auto resp = cluster.client().get(std::string("inproc://") +
                                   cluster::ClusterHarness::kDbEndpoint +
                                   "/query?db=lms&q=" + util::url_encode(query));
  std::printf("-- InfluxQL: %s\n%s\n\n", query.c_str(),
              resp.ok() ? resp->body.c_str() : resp.message().c_str());

  // 2. The online job evaluation header (Fig. 2).
  const analysis::JobEvaluation eval = cluster.reporter().evaluate(
      std::to_string(job), record->nodes, record->start_time, record->end_time);
  std::printf("-- job evaluation --\n%s\n", analysis::render_text(eval).c_str());

  // 3. Dashboards generated from templates.
  cluster.dashboards().refresh(cluster.router().running_jobs(), cluster.now());
  std::printf("-- dashboards --\n");
  for (const auto& uid : cluster.dashboards().dashboard_uids()) {
    std::printf("  %s\n", uid.c_str());
  }

  // 4. Router statistics.
  const auto stats = cluster.router().stats();
  std::printf("\n-- router stats --\npoints in/out: %llu/%llu, jobs started/ended: %llu/%llu\n",
              static_cast<unsigned long long>(stats.points_in),
              static_cast<unsigned long long>(stats.points_out),
              static_cast<unsigned long long>(stats.jobs_started),
              static_cast<unsigned long long>(stats.jobs_ended));
  return 0;
}
