// Application-level monitoring with libusermetric (paper §IV, Fig. 3).
//
// Shows the three ways application data enters the stack:
//   1. the library API (values + events, default tags, batching),
//   2. the command-line form used from batch scripts,
//   3. the transparent preload-style hooks (allocation tracking, affinity).
// The example runs the miniMD proxy for real and reports its observables,
// then queries the resulting series back from the database.

#include <cstdio>

#include "lms/cluster/harness.hpp"
#include "lms/cluster/minimd.hpp"
#include "lms/usermetric/hooks.hpp"
#include "lms/usermetric/usermetric.hpp"

using namespace lms;

namespace {
constexpr util::TimeNs kSec = util::kNanosPerSecond;
}

int main() {
  // A 1-node cluster provides router + DB; the "application" below is our
  // own code using libusermetric directly.
  cluster::ClusterHarness::Options opts;
  opts.nodes = 1;
  cluster::ClusterHarness harness(opts);

  std::printf("== libusermetric walkthrough ==\n\n");

  // Configure a client the way a job prolog would: default tags identify
  // the job so the router/views can slice by it.
  usermetric::UserMetricClient::Options um_opts;
  um_opts.router_url = std::string("inproc://") + cluster::ClusterHarness::kRouterEndpoint;
  um_opts.default_tags = {{"jobid", "demo"}, {"user", "alice"}, {"hostname", "h1"}};
  um_opts.buffer_capacity = 200;
  usermetric::UserMetricClient um(harness.client(), harness.clock(), um_opts);

  // (2) CLI form: batch scripts bracket the run with events,
  //     `lms-usermetric --event job "start"`.
  {
    auto point = usermetric::parse_cli_metric({"--event", "job", "starting miniMD run"},
                                              harness.now());
    um.event("job", point->field("text")->as_string());
  }

  // (3) Preload-style hooks: the app "allocates" its arrays.
  usermetric::AllocTracker alloc(um, 10 * kSec);
  usermetric::AffinityReporter affinity(um);
  alloc.on_allocate(256u << 20, harness.now());  // 256 MB of particle data
  for (int t = 0; t < 4; ++t) affinity.on_set_affinity(t, t, harness.now());

  // (1) The instrumented application: real MD, reporting every 100 iters.
  cluster::MiniMd md(cluster::MiniMd::Params{}, /*seed=*/42);
  std::printf("miniMD: %d atoms, box %.3f, initial T=%.3f E=%.4f\n", md.natoms(),
              md.box_length(), md.temperature(), md.total_energy());
  for (int iter = 100; iter <= 2000; iter += 100) {
    md.step(4);  // a few real steps stand in for the 100-iteration block
    harness.clock().advance(2 * kSec);  // the block "took" 2 s
    const std::vector<lineproto::Tag> tags{{"iter", std::to_string(iter)}};
    um.value("runtime_100iters", 2.0, tags);
    um.value("pressure", md.pressure(), tags);
    um.value("temperature", md.temperature(), tags);
    um.value("energy", md.total_energy(), tags);
  }
  um.event("job", "miniMD run finished");
  um.flush();

  const auto stats = um.stats();
  std::printf("\nreported %llu values + %llu events in %llu batched sends\n",
              static_cast<unsigned long long>(stats.values_reported),
              static_cast<unsigned long long>(stats.events_reported),
              static_cast<unsigned long long>(stats.batches_sent));

  // Query the series back through the stack (what the dashboard plots).
  for (const char* field : {"temperature", "energy", "pressure", "allocated_bytes"}) {
    auto series = harness.fetcher().fetch({"usermetric", field}, {{"jobid", "demo"}}, 0,
                                          harness.now() + kSec);
    if (!series.ok() || series->empty()) {
      std::printf("%-18s (no data)\n", field);
      continue;
    }
    std::printf("%-18s %3zu samples   first=%10.4f  last=%10.4f  mean=%10.4f\n", field,
                series->size(), series->values.front(), series->values.back(),
                series->mean());
  }

  // Events are string points in their own measurement.
  auto events = harness.storage().find_database("lms")->series_matching(
      "userevents", {{"jobid", "demo"}});
  std::printf("\nevents stored:\n");
  for (const auto* s : events) {
    const auto it = s->columns.find("text");
    if (it == s->columns.end()) continue;
    for (const auto& v : it->second.values()) {
      std::printf("  [%s] %s\n", std::string(s->tag("event")).c_str(),
                  v.as_string().c_str());
    }
  }
  return 0;
}
