// likwid-perfctr-style tool over the simulated PMU, marker-API edition:
// run a workload on one node with every phase bracketed in a region marker
// (the lms::profiling SDK) and print a per-region report — the classic
// "likwid-perfctr -m" terminal view: one metric table per region, plus the
// roofline placement of each region when the combined group was measured.
//
// Usage: perfctr [workload] [group] [seconds]
//   workload: minimd|ml_inference|stencil2d|sortmerge|dgemm|... (default minimd)
//   group:    CLOCK|CPI|FLOPS_DP|MEM|MEM_DP|...                 (default MEM_DP)
//   seconds:  measurement duration in simulated seconds          (default 10)
//
//        perfctr topology     print the machine topology (likwid-topology)

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "lms/analysis/roofline.hpp"
#include "lms/cluster/workload.hpp"
#include "lms/hpm/monitor.hpp"
#include "lms/profiling/profiler.hpp"

using namespace lms;

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "topology") == 0) {
    std::printf("%s", hpm::topology_string(hpm::simx86()).c_str());
    return 0;
  }
  const std::string workload_name = argc > 1 ? argv[1] : "minimd";
  const std::string group_name = argc > 2 ? argv[2] : "MEM_DP";
  const double seconds = argc > 3 ? std::atof(argv[3]) : 10.0;

  const hpm::CounterArchitecture& arch = hpm::simx86();
  hpm::GroupRegistry registry(arch);
  const hpm::PerfGroup* group = registry.find(group_name);
  if (group == nullptr) {
    std::fprintf(stderr, "unknown group '%s'. available:", group_name.c_str());
    for (const auto& name : registry.names()) std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }
  auto workload = cluster::make_workload(workload_name, 42);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'. available:", workload_name.c_str());
    for (const auto& name : cluster::workload_names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  std::printf("--------------------------------------------------------------------\n");
  std::printf("CPU:    %s\n", arch.cpu_model.c_str());
  std::printf("Group:  %s — %s\n", group->name().c_str(),
              group->short_description().c_str());
  std::printf("Run:    %s for %.1f s (simulated), marker API on\n", workload_name.c_str(),
              seconds);
  std::printf("--------------------------------------------------------------------\n");
  std::printf("Event set:\n");
  for (const auto& ea : group->events()) {
    std::printf("  %-8s %s\n", ea.slot.c_str(), ea.event.c_str());
  }

  // Marker init (LIKWID_MARKER_INIT): a profiler with an HPM collector over
  // the simulated PMU attributes the group's counters to each region.
  hpm::CounterSimulator sim(arch, 42, 0.01);
  profiling::Profiler::Options prof_opts;
  prof_opts.hostname = "localhost";
  profiling::Profiler profiler(std::move(prof_opts));
  auto collector = profiling::HpmRegionCollector::create(registry, sim, group_name);
  if (!collector.ok()) {
    std::fprintf(stderr, "%s\n", collector.message().c_str());
    return 1;
  }
  profiler.add_collector(collector.take());

  // Drive the simulated PMU through the workload's phases, each phase
  // bracketed in a region marker (LIKWID_MARKER_START/STOP).
  util::Rng rng(42);
  util::TimeNs now = 0;
  const auto steps = static_cast<int>(seconds * 10);
  const util::TimeNs step = util::kNanosPerSecond / 10;
  for (int i = 0; i < steps; ++i) {
    const auto phases = workload->phases(0, 1, now, arch, rng);
    double total = 0.0;
    for (const auto& phase : phases) total += phase.fraction;
    for (const auto& phase : phases) {
      const auto span = static_cast<util::TimeNs>(
          static_cast<double>(step) * phase.fraction / (total > 0 ? total : 1.0));
      profiling::ScopedRegion region(profiler, phase.region, now);
      sim.advance(phase.activity.hpm, span);
      for (const auto& [name, value] : phase.values) profiler.value(name, value);
      now += span;
      (void)region.stop(now);
    }
  }

  // Marker report (likwid-perfctr -m): one table per region.
  const auto stats = profiler.stats();
  if (stats.empty()) {
    std::fprintf(stderr, "no regions measured\n");
    return 1;
  }
  for (const auto& rs : stats) {
    std::printf("\nRegion %s, calls %llu, inclusive %.3f s, exclusive %.3f s\n",
                rs.region.c_str(), static_cast<unsigned long long>(rs.count),
                util::ns_to_seconds(rs.inclusive_ns), util::ns_to_seconds(rs.exclusive_ns));
    std::printf("+-----------------------------------------+--------------------+\n");
    std::printf("| %-39s | %-18s |\n", "Metric", "Value");
    std::printf("+-----------------------------------------+--------------------+\n");
    for (const auto& metric : group->metrics()) {
      const auto it = rs.fields.find(metric.field_key);
      if (it == rs.fields.end()) continue;
      std::printf("| %-39s | %18.4f |\n", metric.name.c_str(), it->second);
    }
    for (const auto& [field, value] : rs.fields) {
      if (field.rfind("user_", 0) == 0) {
        std::printf("| %-39s | %18.4f |\n", field.c_str(), value);
      }
    }
    std::printf("+-----------------------------------------+--------------------+\n");

    // Roofline placement per region when the combined group was measured.
    const auto flops = rs.fields.find("dp_mflop_per_s");
    const auto bw = rs.fields.find("memory_bandwidth_mbytes_per_s");
    if (flops != rs.fields.end() && bw != rs.fields.end()) {
      const auto roofline =
          analysis::roofline_evaluate(flops->second * 1e6, bw->second * 1e6, arch);
      std::printf("  %s\n", roofline.to_string().c_str());
    }
  }
  const auto counters = profiler.counters();
  std::printf("\nMarkers: %llu region instances, %llu unbalanced\n",
              static_cast<unsigned long long>(counters.markers),
              static_cast<unsigned long long>(counters.unbalanced));
  return 0;
}
