// likwid-perfctr-style tool over the simulated PMU: run a workload on one
// node and print the derived metrics of a performance group — the classic
// LIKWID terminal view the whole stack's HPM layer is modeled after. Useful
// for exploring what each group measures and how the workload models look
// to the counters.
//
// Usage: perfctr [workload] [group] [seconds]
//   workload: minimd|dgemm|stream|idle|scalar|latency|... (default dgemm)
//   group:    CLOCK|CPI|FLOPS_DP|MEM|MEM_DP|...           (default FLOPS_DP)
//   seconds:  measurement duration in simulated seconds    (default 10)
//
//        perfctr topology     print the machine topology (likwid-topology)

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "lms/analysis/roofline.hpp"
#include "lms/cluster/workload.hpp"
#include "lms/hpm/monitor.hpp"

using namespace lms;

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "topology") == 0) {
    std::printf("%s", hpm::topology_string(hpm::simx86()).c_str());
    return 0;
  }
  const std::string workload_name = argc > 1 ? argv[1] : "dgemm";
  const std::string group_name = argc > 2 ? argv[2] : "FLOPS_DP";
  const double seconds = argc > 3 ? std::atof(argv[3]) : 10.0;

  const hpm::CounterArchitecture& arch = hpm::simx86();
  hpm::GroupRegistry registry(arch);
  const hpm::PerfGroup* group = registry.find(group_name);
  if (group == nullptr) {
    std::fprintf(stderr, "unknown group '%s'. available:", group_name.c_str());
    for (const auto& name : registry.names()) std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }
  auto workload = cluster::make_workload(workload_name, 42);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'. available:", workload_name.c_str());
    for (const auto& name : cluster::workload_names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  std::printf("--------------------------------------------------------------------\n");
  std::printf("CPU:    %s\n", arch.cpu_model.c_str());
  std::printf("Group:  %s — %s\n", group->name().c_str(),
              group->short_description().c_str());
  std::printf("Run:    %s for %.1f s (simulated)\n", workload_name.c_str(), seconds);
  std::printf("--------------------------------------------------------------------\n");
  std::printf("Event set:\n");
  for (const auto& ea : group->events()) {
    std::printf("  %-8s %s\n", ea.slot.c_str(), ea.event.c_str());
  }

  // Drive the simulated PMU with the workload.
  hpm::CounterSimulator sim(arch, 42, 0.01);
  hpm::HpmMonitor::Options mon_opts;
  mon_opts.groups = {group_name};
  auto monitor = hpm::HpmMonitor::create(registry, sim, mon_opts).take();
  util::Rng rng(42);
  util::TimeNs now = 0;
  monitor.sample(now);  // baseline
  const auto steps = static_cast<int>(seconds * 10);
  for (int i = 0; i < steps; ++i) {
    const cluster::NodeActivity act =
        workload->activity(0, 1, now, arch, rng);
    sim.advance(act.hpm, util::kNanosPerSecond / 10);
    now += util::kNanosPerSecond / 10;
  }
  const auto points = monitor.sample(now);
  if (points.empty()) {
    std::fprintf(stderr, "no measurement produced\n");
    return 1;
  }

  std::printf("\n+-----------------------------------------+--------------------+\n");
  std::printf("| %-39s | %-18s |\n", "Metric", "Value");
  std::printf("+-----------------------------------------+--------------------+\n");
  for (const auto& metric : group->metrics()) {
    const lineproto::FieldValue* v = points[0].field(metric.field_key);
    if (v == nullptr) continue;
    std::printf("| %-39s | %18.4f |\n", metric.name.c_str(), v->as_double());
  }
  std::printf("+-----------------------------------------+--------------------+\n");

  // Roofline position when the combined group was measured.
  const lineproto::FieldValue* flops = points[0].field("dp_mflop_per_s");
  const lineproto::FieldValue* bw = points[0].field("memory_bandwidth_mbytes_per_s");
  if (flops != nullptr && bw != nullptr) {
    const auto roofline = analysis::roofline_evaluate(flops->as_double() * 1e6,
                                                      bw->as_double() * 1e6, arch);
    std::printf("\n%s", analysis::roofline_chart(roofline).c_str());
  }
  return 0;
}
