// A real node agent: monitors THIS machine via the live /proc filesystem
// and ships the metrics to a router/DB over HTTP — the host-agent role of
// Fig. 1 with nothing simulated. Combined with lms_daemon on another
// terminal this is a genuine two-process deployment of the stack.
//
// Usage:
//   node_agent --url <router-url> [--hostname <name>] [--interval <sec>]
//              [--count <n>]
//   node_agent --once            print one sample of this machine's metrics

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <unistd.h>

#include "lms/collector/agent.hpp"
#include "lms/collector/plugins.hpp"
#include "lms/lineproto/codec.hpp"
#include "lms/net/tcp_http.hpp"
#include "lms/sysmon/proc.hpp"
#include "lms/util/clock.hpp"

using namespace lms;

int main(int argc, char** argv) {
  std::string url;
  std::string hostname = "localhost";
  {
    char buf[256];
    if (gethostname(buf, sizeof(buf)) == 0) hostname = buf;
  }
  int interval_s = 10;
  int count = 6;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--url") == 0 && i + 1 < argc) {
      url = argv[++i];
    } else if (std::strcmp(argv[i], "--hostname") == 0 && i + 1 < argc) {
      hostname = argv[++i];
    } else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      interval_s = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--count") == 0 && i + 1 < argc) {
      count = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    }
  }
  if (url.empty() && !once) {
    std::fprintf(stderr,
                 "usage: node_agent --url <router-url> [--hostname h] [--interval s] "
                 "[--count n]\n       node_agent --once\n");
    return 2;
  }

  sysmon::ProcKernel kernel;
  std::printf("monitoring %s: %d cpus, %.1f GiB RAM, load %.2f\n", hostname.c_str(),
              kernel.cpu_count(),
              static_cast<double>(kernel.meminfo().total_bytes) / (1ULL << 30),
              kernel.loadavg1());

  if (once) {
    // Two samples one second apart so the rate plugins have deltas.
    collector::CpuPlugin cpu(kernel, hostname);
    collector::MemoryPlugin mem(kernel, hostname);
    collector::NetworkPlugin net(kernel, hostname);
    collector::DiskPlugin disk(kernel, hostname);
    const util::TimeNs t0 = util::WallClock::instance().now();
    cpu.collect(t0);
    net.collect(t0);
    disk.collect(t0);
    std::this_thread::sleep_for(std::chrono::seconds(1));
    const util::TimeNs t1 = util::WallClock::instance().now();
    for (auto* plugin : std::initializer_list<collector::CollectorPlugin*>{
             &cpu, &mem, &net, &disk}) {
      for (const auto& p : plugin->collect(t1)) {
        std::printf("%s\n", lineproto::serialize(p).c_str());
      }
    }
    return 0;
  }

  net::TcpHttpClient client;
  collector::HostAgent::Options opts;
  opts.router_url = url;
  opts.flush_interval = static_cast<util::TimeNs>(interval_s) * util::kNanosPerSecond;
  opts.self_monitor_interval = 60 * util::kNanosPerSecond;
  opts.hostname = hostname;
  collector::HostAgent agent(client, opts);
  agent.add_plugin(std::make_unique<collector::CpuPlugin>(kernel, hostname),
                   opts.flush_interval);
  agent.add_plugin(std::make_unique<collector::MemoryPlugin>(kernel, hostname),
                   opts.flush_interval);
  agent.add_plugin(std::make_unique<collector::NetworkPlugin>(kernel, hostname),
                   opts.flush_interval);
  agent.add_plugin(std::make_unique<collector::DiskPlugin>(kernel, hostname),
                   opts.flush_interval);

  for (int i = 0; i < count; ++i) {
    agent.tick(util::WallClock::instance().now());
    agent.flush(util::WallClock::instance().now());
    const auto& stats = agent.stats();
    std::printf("tick %d: %llu collected, %llu sent, %llu failures\n", i + 1,
                static_cast<unsigned long long>(stats.points_collected),
                static_cast<unsigned long long>(stats.points_sent),
                static_cast<unsigned long long>(stats.send_failures));
    if (i + 1 < count) std::this_thread::sleep_for(std::chrono::seconds(interval_s));
  }
  return 0;
}
