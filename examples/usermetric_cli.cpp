// The libusermetric command line tool (paper §IV, Fig. 3): "For use in
// batch scripts, a command line application can send metrics and events
// from the shell." Job prologs/epilogs bracket runs with events; scripts
// report values between stages.
//
// Usage:
//   usermetric_cli --url <router-url> [--db <name>] <name> <value> [tag=v ...]
//   usermetric_cli --url <router-url> --event <name> <text> [tag=v ...]
//   usermetric_cli --dry-run <metric args...>     print the line, send nothing
//
// Example (a batch script):
//   usermetric_cli --url http://router:8086 --event job "start" jobid=$SLURM_JOB_ID
//   usermetric_cli --url http://router:8086 stage_runtime 12.5 stage=preprocess

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lms/lineproto/codec.hpp"
#include "lms/net/tcp_http.hpp"
#include "lms/usermetric/usermetric.hpp"
#include "lms/util/clock.hpp"

using namespace lms;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: usermetric_cli --url <router-url> [--db <name>] <name> <value> "
               "[tag=v ...]\n"
               "       usermetric_cli --url <router-url> --event <name> <text> [tag=v ...]\n"
               "       usermetric_cli --dry-run <metric args...>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string url;
  std::string db = "lms";
  bool dry_run = false;
  std::vector<std::string> metric_args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--url") == 0 && i + 1 < argc) {
      url = argv[++i];
    } else if (std::strcmp(argv[i], "--db") == 0 && i + 1 < argc) {
      db = argv[++i];
    } else if (std::strcmp(argv[i], "--dry-run") == 0) {
      dry_run = true;
    } else {
      metric_args.emplace_back(argv[i]);
    }
  }
  if (metric_args.empty() || (url.empty() && !dry_run)) return usage();

  const util::TimeNs now = util::WallClock::instance().now();
  auto point = usermetric::parse_cli_metric(metric_args, now);
  if (!point.ok()) {
    std::fprintf(stderr, "error: %s\n", point.message().c_str());
    return 2;
  }
  const std::string line = lineproto::serialize(*point);
  if (dry_run) {
    std::printf("%s\n", line.c_str());
    return 0;
  }
  net::TcpHttpClient client;
  auto resp = client.post(url + "/write?db=" + db, line + "\n", "text/plain");
  if (!resp.ok()) {
    std::fprintf(stderr, "send failed: %s\n", resp.message().c_str());
    return 1;
  }
  if (!resp->ok()) {
    std::fprintf(stderr, "router rejected: HTTP %d %s\n", resp->status, resp->body.c_str());
    return 1;
  }
  return 0;
}
