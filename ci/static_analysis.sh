#!/usr/bin/env bash
# Static-analysis gate for the lock discipline work (DESIGN.md "Concurrency
# invariants"):
#
#   1. warnings-as-errors build of all src/ libraries with the host compiler
#      (lms_module() already injects -Wall -Wextra -Werror) — always runs.
#   2. clang build with -Wthread-safety -Werror so the Clang Thread Safety
#      Analysis attributes in core/sync.hpp are actually checked. The
#      header-only core/taskscheduler.hpp is analyzed through the lms_core
#      TUs that include it (router.cpp), so the scheduler's lock discipline
#      rides this stage too.
#   3. negative-compile probe: tests/negative_compile/guarded_by_violation.cpp
#      must FAIL to compile under -Wthread-safety -Werror; if it compiles, the
#      annotation macros have silently gone inert and the gate is worthless.
#   4. clang-tidy (.clang-tidy at the repo root: bugprone-*, concurrency-*,
#      performance-*, misc-unused-*) over the src/ translation units.
#
# Stages 2-4 need clang/clang-tidy; when they are not installed (e.g. the
# default container has only gcc) they are SKIPPED with a notice and the
# script still exits 0 — stage 1 is the portable floor. CI runners with clang
# get the full gate with no flag changes.
#
# Usage: ci/static_analysis.sh [build-dir]   (default: build-sa)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-sa}"
JOBS="$(nproc)"

LIB_TARGETS=(lms_util lms_json lms_lineproto lms_obs lms_net lms_tsdb
             lms_alert lms_hpm lms_profiling lms_sysmon lms_usermetric
             lms_collector lms_core lms_sched lms_analysis lms_dashboard
             lms_cluster)

echo "=== static analysis 1/4: -Wall -Wextra -Werror library build (${BUILD_DIR}) ==="
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target "${LIB_TARGETS[@]}"

if ! command -v clang++ >/dev/null 2>&1; then
  echo "=== static analysis 2-4/4: SKIPPED (clang++ not installed) ==="
  echo "static_analysis: portable stage clean (install clang for the full gate)"
  exit 0
fi

CLANG_DIR="${BUILD_DIR}-clang"
echo "=== static analysis 2/4: clang -Wthread-safety -Werror build (${CLANG_DIR}) ==="
# -DLMS_LOCK_STATS=ON so the analysis checks the instrumented wrapper
# bodies (try_lock fast path, hold bookkeeping), not just the plain ones.
cmake -B "$CLANG_DIR" -S . \
  -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
  -DLMS_LOCK_STATS=ON \
  -DCMAKE_CXX_FLAGS="-Wthread-safety -Wthread-safety-beta" >/dev/null
cmake --build "$CLANG_DIR" -j "$JOBS" --target "${LIB_TARGETS[@]}"

echo "=== static analysis 3/4: negative-compile probe (GUARDED_BY violation) ==="
if clang++ -std=c++20 -Isrc/include -Wthread-safety -Werror -fsyntax-only \
    tests/negative_compile/guarded_by_violation.cpp 2>/dev/null; then
  echo "FAIL: guarded_by_violation.cpp compiled cleanly — the thread-safety" >&2
  echo "      annotations are inert; the analysis gate is not checking anything." >&2
  exit 1
fi
echo "probe rejected as expected"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "=== static analysis 4/4: SKIPPED (clang-tidy not installed) ==="
  echo "static_analysis: stages 1-3 clean"
  exit 0
fi

echo "=== static analysis 4/4: clang-tidy over src/ ==="
# The clang build dir exports compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS
# is set globally in CMakeLists.txt); point tidy at it.
mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
clang-tidy -p "$CLANG_DIR" --quiet "${SOURCES[@]}"

echo "static_analysis: all stages clean"
