#!/usr/bin/env bash
# Bench smoke gate: run every bench_* binary with a tiny iteration budget so
# the benchmarks cannot silently bit-rot. Numbers from this run are
# meaningless — only "builds, runs, exits 0" is checked.
#
#   - plain benches honor LMS_BENCH_SMOKE=1 (shrunken budgets, no
#     BENCH_*.json baseline writes),
#   - google-benchmark benches get --benchmark_min_time=0.01 (seconds; the
#     bundled benchmark release predates the "0.01s"-suffix syntax).
#
# Usage: ci/bench_smoke.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
mapfile -t BENCHES < <(grep -oE 'lms_bench\(bench_[a-z0-9_]+' bench/CMakeLists.txt |
  sed 's/lms_bench(//')
mapfile -t PLAIN < <(grep -oE 'lms_bench\(bench_[a-z0-9_]+ PLAIN' bench/CMakeLists.txt |
  sed -e 's/lms_bench(//' -e 's/ PLAIN//')

cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${BENCHES[@]}"

is_plain() {
  local b="$1" p
  for p in "${PLAIN[@]}"; do [[ "$p" == "$b" ]] && return 0; done
  return 1
}

for bench in "${BENCHES[@]}"; do
  echo "=== smoke: ${bench} ==="
  if is_plain "$bench"; then
    LMS_BENCH_SMOKE=1 "$BUILD_DIR/bench/$bench" >/dev/null
  else
    "$BUILD_DIR/bench/$bench" --benchmark_min_time=0.01 >/dev/null
  fi
done

echo "bench smoke: all ${#BENCHES[@]} benches ran clean"
