#!/usr/bin/env bash
# The whole local gate in one command, in the order a CI pipeline runs it:
#
#   1. tier-1: default configure + build + full ctest suite, then the same
#      suite again with LMS_SCHED_WORKERS=1 — every TaskScheduler that
#      sizes itself from the environment collapses to one worker, so the
#      work-stealing runtime must also be correct fully serialized
#   2. tier-1 again with -DLMS_LOCK_STATS=ON: the contention-instrumented
#      wrapper layout (lms::core::sync lockstats) must pass the same suite,
#      and the instrumented bench_lock_stats must run (smoke budget)
#   3. static analysis: warnings-as-errors library build, and — when clang is
#      installed — thread-safety-analysis build, negative-compile probe and
#      clang-tidy (ci/static_analysis.sh)
#   4. bench smoke: every bench_* binary builds and runs with a tiny budget
#      (ci/bench_smoke.sh)
#
# The sanitizer gate (ci/sanitize.sh: tsan+rank-checks / asan / ubsan) is NOT
# chained here — three extra full builds make it a separate, longer job.
#
# Usage: ci/all.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== ci/all 1/4: tier-1 build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"
echo "=== ci/all 1/4 (bis): tier-1 tests with LMS_SCHED_WORKERS=1 ==="
LMS_SCHED_WORKERS=1 ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "=== ci/all 2/4: tier-1 with -DLMS_LOCK_STATS=ON ==="
cmake -B build-lockstats -S . -DLMS_LOCK_STATS=ON >/dev/null
cmake --build build-lockstats -j "$(nproc)"
ctest --test-dir build-lockstats --output-on-failure -j "$(nproc)"
LMS_BENCH_SMOKE=1 build-lockstats/bench/bench_lock_stats >/dev/null

echo "=== ci/all 3/4: static analysis ==="
ci/static_analysis.sh

echo "=== ci/all 4/4: bench smoke ==="
ci/bench_smoke.sh

echo "ci/all: every gate clean"
