#!/usr/bin/env bash
# The whole local gate in one command, in the order a CI pipeline runs it:
#
#   1. tier-1: default configure + build + full ctest suite
#   2. static analysis: warnings-as-errors library build, and — when clang is
#      installed — thread-safety-analysis build, negative-compile probe and
#      clang-tidy (ci/static_analysis.sh)
#   3. bench smoke: every bench_* binary builds and runs with a tiny budget
#      (ci/bench_smoke.sh)
#
# The sanitizer gate (ci/sanitize.sh: tsan+rank-checks / asan / ubsan) is NOT
# chained here — three extra full builds make it a separate, longer job.
#
# Usage: ci/all.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== ci/all 1/3: tier-1 build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "=== ci/all 2/3: static analysis ==="
ci/static_analysis.sh

echo "=== ci/all 3/3: bench smoke ==="
ci/bench_smoke.sh

echo "ci/all: every gate clean"
