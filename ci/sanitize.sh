#!/usr/bin/env bash
# Sanitizer gate for the concurrency-heavy suites. Builds the stack twice
# (-DLMS_SANITIZE=thread and =address, same flags the CMake presets use) and
# runs the suites that exercise threads and raw buffers: obs (self-scrape
# thread, span recorder/exporter, the TracingStress.* concurrent
# producers-vs-exporter-vs-sampling test), net (TCP transport, pub/sub HWM),
# alert (evaluator vs. gauge callbacks), tsdb (sharded storage under
# concurrent writers/queries/retention, trace assembly), router (async
# ingest flusher thread, trace context hand-off to the flusher), profiling
# (concurrent region markers against the per-thread stacks and shared
# aggregates of the marker SDK).
#
# Usage: ci/sanitize.sh [thread|address|all]   (default: all)

set -euo pipefail
cd "$(dirname "$0")/.."

SUITES=(obs_test net_test alert_test tsdb_test router_test profiling_test)
MODE="${1:-all}"

run_mode() {
  local mode="$1" dir
  if [[ "$mode" == "thread" ]]; then dir=build-tsan; else dir=build-asan; fi
  echo "=== ${mode} sanitizer: configure + build (${dir}) ==="
  cmake -B "$dir" -S . -DLMS_SANITIZE="$mode" >/dev/null
  cmake --build "$dir" -j "$(nproc)" --target "${SUITES[@]}"
  for suite in "${SUITES[@]}"; do
    echo "=== ${mode} sanitizer: ${suite} ==="
    "$dir/tests/$suite"
  done
}

case "$MODE" in
  thread|address) run_mode "$MODE" ;;
  all)
    run_mode thread
    run_mode address
    ;;
  *)
    echo "usage: $0 [thread|address|all]" >&2
    exit 2
    ;;
esac

echo "sanitize: all suites clean"
