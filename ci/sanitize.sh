#!/usr/bin/env bash
# Sanitizer gate for the concurrency-heavy suites. Builds the stack twice
# (-DLMS_SANITIZE=thread and =address, same flags the CMake presets use) and
# runs the suites that exercise threads and raw buffers: obs (self-scrape
# thread, span recorder/exporter, the TracingStress.* concurrent
# producers-vs-exporter-vs-sampling test), net (TCP transport, pub/sub HWM),
# alert (evaluator vs. gauge callbacks), tsdb (sharded storage under
# concurrent writers/queries/retention, trace assembly), router (async
# ingest flusher task, trace context hand-off to the flusher), profiling
# (concurrent region markers against the per-thread stacks and shared
# aggregates of the marker SDK), core_sched (the TaskScheduler runtime:
# work stealing, pinned affinity lanes, timer heap, periodic fixed-delay
# re-arm, shutdown drain, and the TSDB staged-write offload), cpuprofile
# (the sampling CPU profiler: SIGPROF handler vs. the per-thread SPSC rings
# vs. the fold task, plus the timer-mode busy-loop capture — TSan/ASan are
# the strongest checks that the signal-context ring writes are race- and
# overflow-free).
#
# The thread mode additionally forces -DLMS_RANK_CHECKS=ON and
# -DLMS_LOCK_STATS=ON so the lock-rank deadlock detector and the contention
# profiler (core/sync.hpp) run alongside TSan in the same suites — TSan is
# the strongest check that the lock-free lockstats table and the owner-side
# hold timing are race-free; the undefined mode covers UB (signed overflow,
# misaligned access, bad shifts) in the same concurrency-heavy paths.
#
# core_sync_lockstats_test pins its instrumentation per-TU, so it runs in
# every mode regardless of the tree-wide -DLMS_LOCK_STATS setting.
#
# Usage: ci/sanitize.sh [thread|address|undefined|all]   (default: all)

set -euo pipefail
cd "$(dirname "$0")/.."

SUITES=(obs_test net_test alert_test tsdb_test router_test profiling_test
        core_sched_test core_sync_lockstats_test cpuprofile_test)
MODE="${1:-all}"

run_mode() {
  local mode="$1" dir
  local -a extra=()
  case "$mode" in
    thread)
      dir=build-tsan
      extra+=(-DLMS_RANK_CHECKS=ON -DLMS_LOCK_STATS=ON)
      ;;
    address) dir=build-asan ;;
    undefined) dir=build-ubsan ;;
  esac
  echo "=== ${mode} sanitizer: configure + build (${dir}) ==="
  cmake -B "$dir" -S . -DLMS_SANITIZE="$mode" "${extra[@]}" >/dev/null
  cmake --build "$dir" -j "$(nproc)" --target "${SUITES[@]}"
  for suite in "${SUITES[@]}"; do
    echo "=== ${mode} sanitizer: ${suite} ==="
    "$dir/tests/$suite"
  done
}

case "$MODE" in
  thread|address|undefined) run_mode "$MODE" ;;
  all)
    run_mode thread
    run_mode address
    run_mode undefined
    ;;
  *)
    echo "usage: $0 [thread|address|undefined|all]" >&2
    exit 2
    ;;
esac

echo "sanitize: all suites clean"
