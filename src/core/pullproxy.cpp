#include "lms/core/pullproxy.hpp"

#include "lms/lineproto/codec.hpp"
#include "lms/util/logging.hpp"
#include "lms/util/strings.hpp"
#include "lms/util/xml.hpp"

namespace lms::core {

util::Result<std::vector<lineproto::Point>> parse_ganglia_xml(std::string_view xml,
                                                              util::TimeNs now) {
  auto root = util::xml_parse(xml);
  if (!root.ok()) {
    return util::Result<std::vector<lineproto::Point>>::error(root.message());
  }
  if (root->name != "GANGLIA_XML") {
    return util::Result<std::vector<lineproto::Point>>::error(
        "expected GANGLIA_XML root, got <" + root->name + ">");
  }
  std::vector<lineproto::Point> points;
  for (const util::XmlElement* cluster : root->children_named("CLUSTER")) {
    const std::string cluster_name = cluster->attr("NAME");
    for (const util::XmlElement* host : cluster->children_named("HOST")) {
      const std::string hostname = host->attr("NAME");
      if (hostname.empty()) continue;
      lineproto::Point p;
      p.measurement = "ganglia";
      p.set_tag("hostname", hostname);
      if (!cluster_name.empty()) p.set_tag("cluster", cluster_name);
      p.timestamp = now;
      for (const util::XmlElement* metric : host->children_named("METRIC")) {
        const std::string name = metric->attr("NAME");
        const std::string val = metric->attr("VAL");
        const std::string type = metric->attr("TYPE");
        if (name.empty()) continue;
        if (type == "string") {
          p.add_field(name, val);
        } else if (const auto d = util::parse_double(val)) {
          p.add_field(name, *d);
        }
      }
      if (!p.fields.empty()) {
        p.normalize();
        points.push_back(std::move(p));
      }
    }
  }
  return points;
}

GangliaXmlSource::GangliaXmlSource(net::HttpClient& client, std::string url)
    : client_(client), url_(std::move(url)) {}

util::Result<std::vector<lineproto::Point>> GangliaXmlSource::pull(util::TimeNs now) {
  auto resp = client_.get(url_);
  if (!resp.ok()) {
    return util::Result<std::vector<lineproto::Point>>::error(resp.message());
  }
  if (!resp->ok()) {
    return util::Result<std::vector<lineproto::Point>>::error(
        "gmond endpoint returned HTTP " + std::to_string(resp->status));
  }
  return parse_ganglia_xml(resp->body, now);
}

PullProxy::PullProxy(net::HttpClient& router_client, std::string router_url,
                     std::string database)
    : client_(router_client), router_url_(std::move(router_url)),
      database_(std::move(database)) {}

void PullProxy::add_source(std::unique_ptr<PullSource> source, util::TimeNs interval) {
  sources_.push_back(Scheduled{std::move(source), interval, 0});
}

std::size_t PullProxy::tick(util::TimeNs now) {
  std::size_t pushed = 0;
  for (auto& s : sources_) {
    if (now < s.next_due) continue;
    s.next_due = now + s.interval;
    auto points = s.source->pull(now);
    if (!points.ok()) {
      ++pull_failures_;
      LMS_WARN("pullproxy") << s.source->name() << ": pull failed: " << points.message();
      continue;
    }
    if (points->empty()) continue;
    const std::string body = lineproto::serialize_batch(*points);
    auto resp = client_.post(router_url_ + "/write?db=" + database_, body, "text/plain");
    if (!resp.ok() || !resp->ok()) {
      ++pull_failures_;
      LMS_WARN("pullproxy") << s.source->name() << ": push to router failed";
      continue;
    }
    pushed += points->size();
  }
  return pushed;
}

}  // namespace lms::core
