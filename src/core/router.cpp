#include "lms/core/router.hpp"

#include <algorithm>

#include "lms/json/json.hpp"
#include "lms/lineproto/codec.hpp"
#include "lms/obs/trace.hpp"
#include "lms/util/logging.hpp"
#include "lms/util/strings.hpp"

namespace lms::core {

MetricsRouter::MetricsRouter(net::HttpClient& db_client, const util::Clock& clock,
                             Options options, net::PubSubBroker* broker)
    : db_client_(db_client),
      clock_(clock),
      options_(std::move(options)),
      broker_(broker),
      own_registry_(options_.registry == nullptr ? new obs::Registry() : nullptr),
      registry_(options_.registry != nullptr ? options_.registry : own_registry_.get()),
      points_in_(registry_->counter("router_points_in")),
      points_out_(registry_->counter("router_points_out")),
      points_duplicated_(registry_->counter("router_points_duplicated")),
      parse_errors_(registry_->counter("router_parse_errors")),
      forward_failures_(registry_->counter("router_forward_failures")),
      jobs_started_(registry_->counter("router_jobs_started")),
      jobs_ended_(registry_->counter("router_jobs_ended")),
      points_spooled_(registry_->counter("router_points_spooled")),
      spool_dropped_(registry_->counter("router_spool_dropped")),
      write_ns_(registry_->histogram("router_write_ns")),
      forward_ns_(registry_->histogram("router_forward_ns")) {
  registry_->gauge_fn("router_spool_points", {}, [this] { return double(spool_size()); });
  registry_->gauge_fn("router_jobs_running", {}, [this] {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    return double(jobs_.size());
  });
  registry_->gauge_fn("router_tagged_hosts", {}, [this] { return double(tags_.host_count()); });
}

MetricsRouter::~MetricsRouter() {
  // The registry may outlive this router (shared/global registries); drop
  // the callbacks that capture `this`.
  registry_->remove_gauge_fn("router_spool_points");
  registry_->remove_gauge_fn("router_jobs_running");
  registry_->remove_gauge_fn("router_tagged_hosts");
}

net::HttpHandler MetricsRouter::handler() {
  return [this](const net::HttpRequest& req) -> net::HttpResponse {
    if (req.path == "/ping") return net::HttpResponse::no_content();
    if (req.path == "/write" && req.method == "POST") return handle_write(req);
    if (req.path == "/job/start" && req.method == "POST") return handle_job_start(req);
    if (req.path == "/job/end" && req.method == "POST") return handle_job_end(req);
    if (req.path == "/jobs") return handle_jobs(req);
    if (req.path == "/stats") return handle_stats(req);
    if (req.path == "/metrics") {
      auto resp = net::HttpResponse::text(200, obs::render_text(*registry_));
      resp.headers.set("Content-Type", obs::kTextExpositionContentType);
      return resp;
    }
    if (req.path == "/health") return net::health_response(health(false));
    if (req.path == "/ready") return net::ready_response(health(true));
    return net::HttpResponse::not_found();
  };
}

util::Status MetricsRouter::forward(const std::string& db,
                                    const std::vector<lineproto::Point>& points) {
  if (points.empty()) return {};
  obs::Span span("router.forward", "router");
  const util::TimeNs t0 = util::monotonic_now_ns();
  const std::string body = lineproto::serialize_batch(points);
  auto resp = db_client_.post(options_.db_url + "/write?db=" + util::url_encode(db),
                              body, "text/plain");
  forward_ns_.record_since(t0);
  if (!resp.ok()) {
    span.set_ok(false);
    return util::Status::error(resp.message());
  }
  if (!resp->ok()) {
    span.set_ok(false);
    return util::Status::error("db rejected write: HTTP " + std::to_string(resp->status));
  }
  return {};
}

util::Result<std::size_t> MetricsRouter::write_lines(std::string_view body,
                                                     const std::string& db_override) {
  obs::Span span("router.write", "router");
  const util::TimeNs t0 = util::monotonic_now_ns();
  std::vector<std::string> errors;
  std::vector<lineproto::Point> points = lineproto::parse_lenient(body, &errors);
  points_in_.inc(points.size());
  parse_errors_.inc(errors.size());
  if (points.empty() && !errors.empty()) {
    return util::Result<std::size_t>::error("all lines malformed: " + errors.front());
  }

  // Enrichment from the tag store, keyed by the hostname tag.
  const util::TimeNs now = clock_.now();
  for (auto& p : points) {
    if (p.timestamp == 0) p.timestamp = now;
    tags_.enrich(p);
  }

  const std::string primary_db = db_override.empty() ? options_.database : db_override;
  // Drain any spooled backlog first so ordering is roughly preserved.
  if (options_.spool_capacity > 0) flush_spool();
  if (auto status = forward(primary_db, points); !status.ok()) {
    forward_failures_.inc();
    if (options_.spool_capacity == 0 || !db_override.empty()) {
      span.set_ok(false);
      // No spool (or a non-default target DB): the producer keeps the batch.
      // The "forward failed" prefix lets the HTTP layer answer 503 (retry)
      // instead of 400 (drop).
      return util::Result<std::size_t>::error("forward failed: " + status.message());
    }
    // Store-and-forward: take responsibility for the points.
    std::size_t dropped = 0;
    {
      const std::lock_guard<std::mutex> lock(spool_mu_);
      for (const auto& p : points) {
        if (spool_.size() >= options_.spool_capacity) {
          spool_.pop_front();
          ++dropped;
        }
        spool_.push_back(p);
      }
    }
    points_spooled_.inc(points.size());
    spool_dropped_.inc(dropped);
    write_ns_.record_since(t0);
    return points.size();
  }
  points_out_.inc(points.size());

  // Optional duplication into per-user databases, grouped by the user tag
  // the enrichment just attached.
  if (options_.duplicate_per_user) {
    std::map<std::string, std::vector<lineproto::Point>> per_user;
    for (const auto& p : points) {
      const std::string_view user = p.tag("user");
      if (!user.empty()) per_user[std::string(user)].push_back(p);
    }
    for (const auto& [user, user_points] : per_user) {
      if (auto status = forward(options_.user_db_prefix + user, user_points); !status.ok()) {
        LMS_WARN("router") << "per-user duplication for '" << user
                           << "' failed: " << status.message();
        forward_failures_.inc();
      } else {
        points_duplicated_.inc(user_points.size());
      }
    }
  }

  // Publish the enriched batch for attached stream analyzers.
  if (broker_ != nullptr && options_.publish) {
    broker_->publish(kTopicMetrics, lineproto::serialize_batch(points));
  }
  write_ns_.record_since(t0);
  return points.size();
}

util::Status MetricsRouter::job_start(const JobSignal& signal) {
  if (signal.job_id.empty()) return util::Status::error("job signal without jobid");
  const util::TimeNs now = clock_.now();
  RunningJob job{signal.job_id, signal.user, signal.nodes, signal.extra_tags, now};
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_[signal.job_id] = job;
  }
  jobs_started_.inc();
  // Tags piggy-backed onto all measurements from the participating hosts.
  std::vector<lineproto::Tag> tags;
  tags.emplace_back("jobid", signal.job_id);
  if (!signal.user.empty()) tags.emplace_back("user", signal.user);
  for (const auto& t : signal.extra_tags) tags.push_back(t);
  for (const auto& node : signal.nodes) {
    tags_.set_tags(node, tags);
  }

  // Forward the signal into the database as an annotation event.
  lineproto::Point event;
  event.measurement = options_.events_measurement;
  event.set_tag("jobid", signal.job_id);
  if (!signal.user.empty()) event.set_tag("user", signal.user);
  event.add_field("type", std::string("job_start"));
  event.add_field("nodes", util::join(signal.nodes, ","));
  event.timestamp = now;
  event.normalize();
  if (auto status = forward(options_.database, {event}); !status.ok()) {
    LMS_WARN("router") << "job_start annotation failed: " << status.message();
  }
  if (broker_ != nullptr && options_.publish) {
    json::Object meta;
    meta["type"] = "job_start";
    meta["jobid"] = signal.job_id;
    meta["user"] = signal.user;
    json::Array nodes;
    for (const auto& n : signal.nodes) nodes.emplace_back(n);
    meta["nodes"] = std::move(nodes);
    meta["time"] = static_cast<std::int64_t>(now);
    broker_->publish(kTopicJobs, json::Value(std::move(meta)).dump());
  }
  return {};
}

util::Status MetricsRouter::job_end(const std::string& job_id) {
  RunningJob job;
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return util::Status::error("unknown job '" + job_id + "'");
    job = it->second;
    jobs_.erase(it);
  }
  for (const auto& node : job.nodes) {
    tags_.clear_tags(node);
  }
  jobs_ended_.inc();
  const util::TimeNs now = clock_.now();
  lineproto::Point event;
  event.measurement = options_.events_measurement;
  event.set_tag("jobid", job_id);
  if (!job.user.empty()) event.set_tag("user", job.user);
  event.add_field("type", std::string("job_end"));
  event.add_field("nodes", util::join(job.nodes, ","));
  event.timestamp = now;
  event.normalize();
  if (auto status = forward(options_.database, {event}); !status.ok()) {
    LMS_WARN("router") << "job_end annotation failed: " << status.message();
  }
  if (broker_ != nullptr && options_.publish) {
    json::Object meta;
    meta["type"] = "job_end";
    meta["jobid"] = job_id;
    meta["user"] = job.user;
    meta["time"] = static_cast<std::int64_t>(now);
    broker_->publish(kTopicJobs, json::Value(std::move(meta)).dump());
  }
  return {};
}

std::vector<RunningJob> MetricsRouter::running_jobs() const {
  const std::lock_guard<std::mutex> lock(jobs_mu_);
  std::vector<RunningJob> out;
  out.reserve(jobs_.size());
  for (const auto& [_, job] : jobs_) out.push_back(job);
  return out;
}

std::optional<RunningJob> MetricsRouter::find_job(const std::string& job_id) const {
  const std::lock_guard<std::mutex> lock(jobs_mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second;
}

MetricsRouter::Stats MetricsRouter::stats() const {
  Stats s;
  s.points_in = points_in_.value();
  s.points_out = points_out_.value();
  s.points_duplicated = points_duplicated_.value();
  s.parse_errors = parse_errors_.value();
  s.forward_failures = forward_failures_.value();
  s.jobs_started = jobs_started_.value();
  s.jobs_ended = jobs_ended_.value();
  s.points_spooled = points_spooled_.value();
  s.spool_dropped = spool_dropped_.value();
  return s;
}

std::size_t MetricsRouter::flush_spool() {
  std::vector<lineproto::Point> batch;
  {
    const std::lock_guard<std::mutex> lock(spool_mu_);
    if (spool_.empty()) return 0;
    batch.assign(spool_.begin(), spool_.end());
  }
  if (auto status = forward(options_.database, batch); !status.ok()) {
    return 0;  // still down; keep the spool
  }
  {
    const std::lock_guard<std::mutex> lock(spool_mu_);
    // Concurrent writers may have appended while we forwarded; remove only
    // what we actually sent.
    const std::size_t n = std::min(batch.size(), spool_.size());
    spool_.erase(spool_.begin(), spool_.begin() + static_cast<std::ptrdiff_t>(n));
  }
  points_out_.inc(batch.size());
  return batch.size();
}

std::size_t MetricsRouter::spool_size() const {
  const std::lock_guard<std::mutex> lock(spool_mu_);
  return spool_.size();
}

net::ComponentHealth MetricsRouter::health(bool readiness) {
  net::ComponentHealth h;
  h.component = "router";
  h.time = clock_.now();

  const std::size_t spooled = spool_size();
  net::HealthStatus spool_status = net::HealthStatus::kOk;
  std::string spool_detail = std::to_string(spooled) + " points spooled";
  if (options_.spool_capacity > 0 && spooled >= options_.spool_capacity) {
    spool_status = net::HealthStatus::kDegraded;
    spool_detail += " (spool full, oldest points being dropped)";
  }
  h.add("spool", spool_status, std::move(spool_detail), static_cast<double>(spooled));
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    h.add("jobs", net::HealthStatus::kOk, std::to_string(jobs_.size()) + " jobs running",
          static_cast<double>(jobs_.size()));
  }

  if (readiness) {
    auto resp = db_client_.get(options_.db_url + "/ping");
    const bool reachable = resp.ok() && resp->ok();
    h.add("downstream_db",
          reachable ? net::HealthStatus::kOk : net::HealthStatus::kDegraded,
          reachable ? "db back-end reachable at " + options_.db_url
                    : "db back-end unreachable at " + options_.db_url + ": " +
                          (resp.ok() ? "HTTP " + std::to_string(resp->status)
                                     : resp.message()));
  }
  return h;
}

net::HttpResponse MetricsRouter::handle_write(const net::HttpRequest& req) {
  auto result = write_lines(req.body, req.query.get_or("db", ""));
  if (!result.ok()) {
    // A malformed batch is the producer's fault (400, do not retry); a
    // back-end outage is not (503, retry later).
    if (util::starts_with(result.message(), "forward failed")) {
      return net::HttpResponse::text(503, result.message());
    }
    return net::HttpResponse::bad_request(result.message());
  }
  return net::HttpResponse::no_content();
}

namespace {

util::Result<JobSignal> signal_from_json(std::string_view body) {
  auto parsed = json::parse(body);
  if (!parsed.ok()) return util::Result<JobSignal>::error(parsed.message());
  const json::Value& v = *parsed;
  JobSignal s;
  s.job_id = v["jobid"].as_string();
  s.user = v["user"].as_string();
  if (v["nodes"].is_array()) {
    for (const auto& n : v["nodes"].get_array()) {
      s.nodes.push_back(n.as_string());
    }
  }
  if (v["tags"].is_object()) {
    for (const auto& [k, tv] : v["tags"].get_object()) {
      s.extra_tags.emplace_back(k, tv.as_string());
    }
  }
  if (s.job_id.empty()) return util::Result<JobSignal>::error("missing 'jobid'");
  return s;
}

}  // namespace

net::HttpResponse MetricsRouter::handle_job_start(const net::HttpRequest& req) {
  auto signal = signal_from_json(req.body);
  if (!signal.ok()) return net::HttpResponse::bad_request(signal.message());
  if (auto status = job_start(*signal); !status.ok()) {
    return net::HttpResponse::bad_request(status.message());
  }
  return net::HttpResponse::no_content();
}

net::HttpResponse MetricsRouter::handle_job_end(const net::HttpRequest& req) {
  auto parsed = json::parse(req.body);
  if (!parsed.ok()) return net::HttpResponse::bad_request(parsed.message());
  const std::string job_id = (*parsed)["jobid"].as_string();
  if (auto status = job_end(job_id); !status.ok()) {
    return net::HttpResponse::bad_request(status.message());
  }
  return net::HttpResponse::no_content();
}

net::HttpResponse MetricsRouter::handle_jobs(const net::HttpRequest&) {
  json::Array jobs;
  for (const auto& job : running_jobs()) {
    json::Object j;
    j["jobid"] = job.job_id;
    j["user"] = job.user;
    json::Array nodes;
    for (const auto& n : job.nodes) nodes.emplace_back(n);
    j["nodes"] = std::move(nodes);
    j["start_time"] = static_cast<std::int64_t>(job.start_time);
    json::Object extra;
    for (const auto& [k, v] : job.extra_tags) extra[k] = v;
    j["tags"] = std::move(extra);
    jobs.emplace_back(std::move(j));
  }
  json::Object top;
  top["jobs"] = std::move(jobs);
  return net::HttpResponse::json(200, json::Value(std::move(top)).dump());
}

net::HttpResponse MetricsRouter::handle_stats(const net::HttpRequest&) {
  const Stats s = stats();
  json::Object o;
  o["points_in"] = static_cast<std::int64_t>(s.points_in);
  o["points_out"] = static_cast<std::int64_t>(s.points_out);
  o["points_duplicated"] = static_cast<std::int64_t>(s.points_duplicated);
  o["parse_errors"] = static_cast<std::int64_t>(s.parse_errors);
  o["forward_failures"] = static_cast<std::int64_t>(s.forward_failures);
  o["jobs_started"] = static_cast<std::int64_t>(s.jobs_started);
  o["jobs_ended"] = static_cast<std::int64_t>(s.jobs_ended);
  o["tagged_hosts"] = static_cast<std::int64_t>(tags_.host_count());
  return net::HttpResponse::json(200, json::Value(std::move(o)).dump());
}

}  // namespace lms::core
