#include "lms/core/router.hpp"

#include <algorithm>
#include <chrono>

#include "lms/json/json.hpp"
#include "lms/lineproto/codec.hpp"
#include "lms/obs/runtime.hpp"
#include "lms/obs/trace.hpp"
#include "lms/tsdb/query.hpp"
#include "lms/util/logging.hpp"
#include "lms/util/strings.hpp"

namespace lms::core {

namespace {
// Error-message prefixes are the contract between the programmatic write API
// and the HTTP layer: they select the status code without a parallel error
// type. See handle_write().
constexpr std::string_view kBackpressurePrefix = "backpressure";
constexpr std::string_view kUnknownDbPrefix = "unknown database:";
constexpr std::string_view kForwardFailedPrefix = "forward failed";
}  // namespace

MetricsRouter::MetricsRouter(net::HttpClient& db_client, const util::Clock& clock,
                             Options options, net::PubSubBroker* broker)
    : db_client_(db_client),
      clock_(clock),
      options_(std::move(options)),
      broker_(broker),
      own_registry_(options_.registry == nullptr ? new obs::Registry() : nullptr),
      registry_(options_.registry != nullptr ? options_.registry : own_registry_.get()),
      points_in_(registry_->counter("router_points_in")),
      points_out_(registry_->counter("router_points_out")),
      points_duplicated_(registry_->counter("router_points_duplicated")),
      parse_errors_(registry_->counter("router_parse_errors")),
      forward_failures_(registry_->counter("router_forward_failures")),
      jobs_started_(registry_->counter("router_jobs_started")),
      jobs_ended_(registry_->counter("router_jobs_ended")),
      points_spooled_(registry_->counter("router_points_spooled")),
      spool_dropped_(registry_->counter("router_spool_dropped")),
      ingest_rejected_(registry_->counter("router_ingest_rejected")),
      ingest_flushed_(registry_->counter("router_ingest_flushed")),
      write_ns_(registry_->histogram("router_write_ns")),
      forward_ns_(registry_->histogram("router_forward_ns")),
      ingest_flush_ns_(registry_->histogram("router_ingest_flush_ns")) {
  registry_->gauge_fn("router_spool_points", {}, [this] { return double(spool_size()); });
  registry_->gauge_fn("router_jobs_running", {}, [this] {
    const core::sync::LockGuard lock(jobs_mu_);
    return double(jobs_.size());
  });
  registry_->gauge_fn("router_tagged_hosts", {}, [this] { return double(tags_.host_count()); });
  registry_->gauge_fn("router_ingest_queue_points", {},
                      [this] { return double(ingest_queue_points()); });
  if (options_.async_ingest) {
    ingest_queue_stats_.name = "core.router.ingest";
    ingest_queue_stats_.capacity = options_.ingest_queue_capacity;
    core::runtime::register_queue(&ingest_queue_stats_);
    if (options_.scheduler == nullptr) {
      TaskScheduler::Options sched_opts;
      sched_opts.workers = 1;
      sched_opts.name = "core.router.sched";
      own_sched_ = std::make_unique<TaskScheduler>(sched_opts);
    }
    attach(options_.scheduler != nullptr ? *options_.scheduler : *own_sched_);
  }
}

MetricsRouter::~MetricsRouter() {
  detach();
  if (options_.async_ingest) {
    core::runtime::unregister_queue(&ingest_queue_stats_);
  }
  // The registry may outlive this router (shared/global registries); drop
  // the callbacks that capture `this`.
  registry_->remove_gauge_fn("router_spool_points");
  registry_->remove_gauge_fn("router_jobs_running");
  registry_->remove_gauge_fn("router_tagged_hosts");
  registry_->remove_gauge_fn("router_ingest_queue_points");
}

void MetricsRouter::on_attach(TaskScheduler& sched) {
  if (!options_.async_ingest) return;
  flusher_task_ = sched.submit_periodic("router.flusher", options_.ingest_flush_interval,
                                        [this] { flush_ingest(); });
}

void MetricsRouter::on_detach() {
  flusher_task_.cancel();
  if (options_.async_ingest) flush_ingest();  // best-effort final drain
}

net::HttpHandler MetricsRouter::handler() {
  return [this](const net::HttpRequest& req) -> net::HttpResponse {
    if (req.path == "/ping") return net::HttpResponse::no_content();
    if (req.path == "/write" && req.method == "POST") return handle_write(req);
    if (req.path == "/job/start" && req.method == "POST") return handle_job_start(req);
    if (req.path == "/job/end" && req.method == "POST") return handle_job_end(req);
    if (req.path == "/jobs") return handle_jobs(req);
    if (req.path == "/stats") return handle_stats(req);
    if (req.path == "/metrics") {
      obs::update_runtime_metrics(*registry_);
      auto resp = net::HttpResponse::text(200, obs::render_text(*registry_));
      resp.headers.set("Content-Type", obs::kTextExpositionContentType);
      return resp;
    }
    if (req.path == "/health") return net::health_response(health(false));
    if (req.path == "/ready") return net::ready_response(health(true));
    if (req.path == "/debug/logs" && options_.log_ring != nullptr) {
      return net::debug_logs_response(*options_.log_ring, req);
    }
    if (req.path == "/debug/runtime") return net::runtime_debug_response();
    if (req.path == "/debug/pprof") return net::pprof_response(req);
    return net::HttpResponse::not_found();
  };
}

MetricsRouter::ForwardOutcome MetricsRouter::forward(
    const std::string& db, const std::vector<lineproto::Point>& points) {
  ForwardOutcome out;
  if (points.empty()) {
    out.http_status = 204;
    return out;
  }
  obs::Span span("router.forward", "router");
  const util::TimeNs t0 = util::monotonic_now_ns();
  const std::string body = lineproto::serialize_batch(points);
  auto resp = db_client_.post(options_.db_url + "/write?db=" + util::url_encode(db),
                              body, "text/plain");
  forward_ns_.record_since(t0);
  if (!resp.ok()) {
    span.set_ok(false);
    out.status = util::Status::error(resp.message());
    return out;
  }
  out.http_status = resp->status;
  out.body = resp->body;
  if (!resp->ok()) {
    span.set_ok(false);
    out.status = util::Status::error("db rejected write: HTTP " + std::to_string(resp->status));
  }
  return out;
}

util::Result<std::size_t> MetricsRouter::write_lines(std::string_view body,
                                                     const std::string& db_override) {
  std::vector<std::string> errors;
  std::vector<lineproto::Point> points = lineproto::parse_lenient(body, &errors);
  parse_errors_.inc(errors.size());
  if (points.empty() && !errors.empty()) {
    return util::Result<std::size_t>::error("all lines malformed: " + errors.front());
  }
  tsdb::WriteBatch batch;
  batch.db = db_override;  // empty → primary database
  batch.points = std::move(points);
  return write_points(std::move(batch));
}

util::Result<std::size_t> MetricsRouter::write_points(tsdb::WriteBatch batch) {
  obs::Span span("router.write", "router");
  const util::TimeNs t0 = util::monotonic_now_ns();
  points_in_.inc(batch.points.size());
  if (batch.db.empty()) batch.db = options_.database;

  // Normalize timestamps (apply the precision multiplier, stamp missing
  // ones) and enrich from the tag store — one pass over the batch.
  const util::TimeNs now = batch.default_time != 0 ? batch.default_time : clock_.now();
  for (auto& p : batch.points) {
    p.timestamp = p.timestamp != 0 ? p.timestamp * batch.timestamp_scale : now;
    tags_.enrich(p);
  }
  batch.timestamp_scale = 1;

  if (options_.async_ingest) {
    auto accepted = enqueue_ingest(batch);
    if (!accepted.ok()) {
      span.set_ok(false);
      if (util::starts_with(accepted.message(), kBackpressurePrefix)) {
        // Tag the span so a 429'd producer's trace shows *why* the write
        // failed without needing the response body.
        span.set_note("error=backpressure");
      }
      return accepted;
    }
    // Publish on accept: stream analyzers see the enriched batch as soon as
    // the router takes responsibility for it, not when the flusher lands it.
    if (broker_ != nullptr && options_.publish) {
      broker_->publish(kTopicMetrics, lineproto::serialize_batch(batch.points));
    }
    write_ns_.record_since(t0);
    return accepted;
  }

  auto result = forward_sync(batch);
  if (!result.ok()) {
    span.set_ok(false);
    return result;
  }
  write_ns_.record_since(t0);
  return result;
}

util::Result<std::size_t> MetricsRouter::forward_sync(tsdb::WriteBatch& batch) {
  // Drain any spooled backlog first so ordering is roughly preserved.
  if (options_.spool_capacity > 0) flush_spool();
  if (auto out = forward(batch.db, batch.points); !out.status.ok()) {
    forward_failures_.inc();
    if (out.http_status == 404) {
      // The back-end does not know the database: a permanent producer-side
      // error. Pass its body through so both services answer identically.
      return util::Result<std::size_t>::error(std::string(kUnknownDbPrefix) + out.body);
    }
    // Only transport errors and 5xx are worth retrying; other 4xx means the
    // back-end rejected the batch for good.
    const bool retryable = out.http_status == 0 || out.http_status >= 500;
    if (!retryable || options_.spool_capacity == 0 || batch.db != options_.database) {
      // No spool (or a non-default target DB): the producer keeps the batch.
      // The "forward failed" prefix lets the HTTP layer answer 503 (retry)
      // instead of 400 (drop).
      return util::Result<std::size_t>::error(std::string(kForwardFailedPrefix) + ": " +
                                              out.status.message());
    }
    // Store-and-forward: take responsibility for the points.
    spool_points(batch.points);
    return batch.points.size();
  }
  points_out_.inc(batch.points.size());

  // Optional duplication into per-user databases, grouped by the user tag
  // the enrichment just attached.
  if (options_.duplicate_per_user) {
    std::map<std::string, std::vector<lineproto::Point>> per_user;
    for (const auto& p : batch.points) {
      const std::string_view user = p.tag("user");
      if (!user.empty()) per_user[std::string(user)].push_back(p);
    }
    for (const auto& [user, user_points] : per_user) {
      if (auto out = forward(options_.user_db_prefix + user, user_points); !out.status.ok()) {
        LMS_WARN("router") << "per-user duplication for '" << user
                           << "' failed: " << out.status.message();
        forward_failures_.inc();
      } else {
        points_duplicated_.inc(user_points.size());
      }
    }
  }
  // Publish the enriched batch for attached stream analyzers (a batch that
  // went to the spool instead of the back-end is not published).
  if (broker_ != nullptr && options_.publish) {
    broker_->publish(kTopicMetrics, lineproto::serialize_batch(batch.points));
  }
  return batch.points.size();
}

util::Result<std::size_t> MetricsRouter::enqueue_ingest(const tsdb::WriteBatch& batch) {
  // Route once at accept time: the primary destination plus the per-user
  // duplicates; the flusher only moves bytes after this.
  std::map<std::string, std::vector<lineproto::Point>> per_user;
  if (options_.duplicate_per_user) {
    for (const auto& p : batch.points) {
      const std::string_view user = p.tag("user");
      if (!user.empty()) per_user[std::string(user)].push_back(p);
    }
  }
  std::size_t incoming = batch.points.size();
  for (const auto& [user, pts] : per_user) incoming += pts.size();

  bool wake = false;
  {
    const core::sync::LockGuard lock(ingest_mu_);
    if (ingest_points_ + incoming > options_.ingest_queue_capacity) {
      ingest_rejected_.inc(batch.points.size());
      ingest_queue_stats_.rejected_pushes.fetch_add(1, std::memory_order_relaxed);
      return util::Result<std::size_t>::error(
          std::string(kBackpressurePrefix) + ": ingest queue full (" +
          std::to_string(ingest_points_) + " points queued, capacity " +
          std::to_string(options_.ingest_queue_capacity) + ")");
    }
    // Capture the producer's trace context with the queued points: the
    // batch that opens a queue carries its trace to the flusher (later
    // coalesced writes ride along — first writer wins).
    const obs::TraceContext trace = obs::current_trace();
    IngestBatch& primary = ingest_q_[batch.db];
    primary.db = batch.db;
    if (primary.points.empty() && trace.valid()) primary.trace = trace;
    primary.points.insert(primary.points.end(), batch.points.begin(), batch.points.end());
    for (auto& [user, pts] : per_user) {
      IngestBatch& q = ingest_q_[options_.user_db_prefix + user];
      q.db = options_.user_db_prefix + user;
      q.duplicate = true;
      if (q.points.empty() && trace.valid()) q.trace = trace;
      q.points.insert(q.points.end(), std::make_move_iterator(pts.begin()),
                      std::make_move_iterator(pts.end()));
    }
    ingest_points_ += incoming;
    ingest_queue_stats_.on_push(ingest_points_);
    wake = ingest_points_ >= options_.ingest_max_batch;
  }
  if (wake) flusher_task_.trigger();
  return batch.points.size();
}

std::vector<MetricsRouter::IngestBatch> MetricsRouter::take_ingest_locked(
    std::size_t max_points) {
  std::vector<IngestBatch> out;
  for (auto& [db, q] : ingest_q_) {
    if (q.points.empty()) continue;
    IngestBatch taken;
    taken.db = q.db;
    taken.duplicate = q.duplicate;
    taken.trace = q.trace;
    if (q.points.size() <= max_points) {
      taken.points = std::move(q.points);
      q.points.clear();
      q.trace = obs::TraceContext{};  // next writer re-opens the batch
    } else {
      taken.points.assign(std::make_move_iterator(q.points.begin()),
                          std::make_move_iterator(q.points.begin() +
                                                  static_cast<std::ptrdiff_t>(max_points)));
      q.points.erase(q.points.begin(),
                     q.points.begin() + static_cast<std::ptrdiff_t>(max_points));
    }
    ingest_points_ -= taken.points.size();
    ingest_queue_stats_.on_pop(ingest_points_);
    out.push_back(std::move(taken));
  }
  return out;
}

void MetricsRouter::forward_ingest(IngestBatch batch) {
  // Adopt the enqueuing producer's context so the flush span (and the
  // forward span + injected header below it) join the originating trace.
  const obs::ScopedTraceContext adopt(batch.trace);
  obs::Span span("router.flush", "router");
  span.set_note("db=" + batch.db + " points=" + std::to_string(batch.points.size()));
  auto out = forward(batch.db, batch.points);
  if (!out.status.ok()) span.set_ok(false);
  if (out.status.ok()) {
    if (batch.duplicate) {
      points_duplicated_.inc(batch.points.size());
    } else {
      points_out_.inc(batch.points.size());
    }
    ingest_flushed_.inc(batch.points.size());
    return;
  }
  forward_failures_.inc();
  const bool retryable = out.http_status == 0 || out.http_status >= 500;
  if (retryable && !batch.duplicate && options_.spool_capacity > 0 &&
      batch.db == options_.database) {
    spool_points(batch.points);
    return;
  }
  LMS_WARN("router") << "async forward to '" << batch.db << "' dropped "
                     << batch.points.size() << " points: " << out.status.message();
}

std::size_t MetricsRouter::flush_ingest() {
  std::size_t total = 0;
  for (;;) {
    std::vector<IngestBatch> batches;
    {
      const core::sync::LockGuard lock(ingest_mu_);
      batches = take_ingest_locked(options_.ingest_max_batch);
    }
    if (batches.empty()) return total;
    const util::TimeNs t0 = util::monotonic_now_ns();
    for (auto& b : batches) {
      total += b.points.size();
      forward_ingest(std::move(b));
    }
    ingest_flush_ns_.record_since(t0);
  }
}

std::size_t MetricsRouter::ingest_queue_points() const {
  const core::sync::LockGuard lock(ingest_mu_);
  return ingest_points_;
}

void MetricsRouter::spool_points(const std::vector<lineproto::Point>& points) {
  std::size_t dropped = 0;
  {
    const core::sync::LockGuard lock(spool_mu_);
    for (const auto& p : points) {
      if (spool_.size() >= options_.spool_capacity) {
        spool_.pop_front();
        ++dropped;
      }
      spool_.push_back(p);
    }
  }
  points_spooled_.inc(points.size());
  spool_dropped_.inc(dropped);
}

util::Status MetricsRouter::job_start(const JobSignal& signal) {
  if (signal.job_id.empty()) return util::Status::error("job signal without jobid");
  const util::TimeNs now = clock_.now();
  RunningJob job{signal.job_id, signal.user, signal.nodes, signal.extra_tags, now};
  {
    const core::sync::LockGuard lock(jobs_mu_);
    jobs_[signal.job_id] = job;
  }
  jobs_started_.inc();
  // Tags piggy-backed onto all measurements from the participating hosts.
  std::vector<lineproto::Tag> tags;
  tags.emplace_back("jobid", signal.job_id);
  if (!signal.user.empty()) tags.emplace_back("user", signal.user);
  for (const auto& t : signal.extra_tags) tags.push_back(t);
  for (const auto& node : signal.nodes) {
    tags_.set_tags(node, tags);
  }

  // Forward the signal into the database as an annotation event.
  lineproto::Point event;
  event.measurement = options_.events_measurement;
  event.set_tag("jobid", signal.job_id);
  if (!signal.user.empty()) event.set_tag("user", signal.user);
  event.add_field("type", std::string("job_start"));
  event.add_field("nodes", util::join(signal.nodes, ","));
  event.timestamp = now;
  event.normalize();
  if (auto out = forward(options_.database, {event}); !out.status.ok()) {
    LMS_WARN("router") << "job_start annotation failed: " << out.status.message();
  }
  if (broker_ != nullptr && options_.publish) {
    json::Object meta;
    meta["type"] = "job_start";
    meta["jobid"] = signal.job_id;
    meta["user"] = signal.user;
    json::Array nodes;
    for (const auto& n : signal.nodes) nodes.emplace_back(n);
    meta["nodes"] = std::move(nodes);
    meta["time"] = static_cast<std::int64_t>(now);
    broker_->publish(kTopicJobs, json::Value(std::move(meta)).dump());
  }
  return {};
}

util::Status MetricsRouter::job_end(const std::string& job_id) {
  RunningJob job;
  {
    const core::sync::LockGuard lock(jobs_mu_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return util::Status::error("unknown job '" + job_id + "'");
    job = it->second;
    jobs_.erase(it);
  }
  for (const auto& node : job.nodes) {
    tags_.clear_tags(node);
  }
  jobs_ended_.inc();
  const util::TimeNs now = clock_.now();
  lineproto::Point event;
  event.measurement = options_.events_measurement;
  event.set_tag("jobid", job_id);
  if (!job.user.empty()) event.set_tag("user", job.user);
  event.add_field("type", std::string("job_end"));
  event.add_field("nodes", util::join(job.nodes, ","));
  event.timestamp = now;
  event.normalize();
  if (auto out = forward(options_.database, {event}); !out.status.ok()) {
    LMS_WARN("router") << "job_end annotation failed: " << out.status.message();
  }
  if (broker_ != nullptr && options_.publish) {
    json::Object meta;
    meta["type"] = "job_end";
    meta["jobid"] = job_id;
    meta["user"] = job.user;
    meta["time"] = static_cast<std::int64_t>(now);
    broker_->publish(kTopicJobs, json::Value(std::move(meta)).dump());
  }
  return {};
}

std::vector<RunningJob> MetricsRouter::running_jobs() const {
  const core::sync::LockGuard lock(jobs_mu_);
  std::vector<RunningJob> out;
  out.reserve(jobs_.size());
  for (const auto& [_, job] : jobs_) out.push_back(job);
  return out;
}

std::optional<RunningJob> MetricsRouter::find_job(const std::string& job_id) const {
  const core::sync::LockGuard lock(jobs_mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second;
}

MetricsRouter::Stats MetricsRouter::stats() const {
  Stats s;
  s.points_in = points_in_.value();
  s.points_out = points_out_.value();
  s.points_duplicated = points_duplicated_.value();
  s.parse_errors = parse_errors_.value();
  s.forward_failures = forward_failures_.value();
  s.jobs_started = jobs_started_.value();
  s.jobs_ended = jobs_ended_.value();
  s.points_spooled = points_spooled_.value();
  s.spool_dropped = spool_dropped_.value();
  s.ingest_rejected = ingest_rejected_.value();
  s.ingest_flushed = ingest_flushed_.value();
  return s;
}

std::size_t MetricsRouter::flush_spool() {
  std::vector<lineproto::Point> batch;
  {
    const core::sync::LockGuard lock(spool_mu_);
    if (spool_.empty()) return 0;
    batch.assign(spool_.begin(), spool_.end());
  }
  if (auto out = forward(options_.database, batch); !out.status.ok()) {
    return 0;  // still down; keep the spool
  }
  {
    const core::sync::LockGuard lock(spool_mu_);
    // Concurrent writers may have appended while we forwarded; remove only
    // what we actually sent.
    const std::size_t n = std::min(batch.size(), spool_.size());
    spool_.erase(spool_.begin(), spool_.begin() + static_cast<std::ptrdiff_t>(n));
  }
  points_out_.inc(batch.size());
  return batch.size();
}

std::size_t MetricsRouter::spool_size() const {
  const core::sync::LockGuard lock(spool_mu_);
  return spool_.size();
}

net::ComponentHealth MetricsRouter::health(bool readiness) {
  net::ComponentHealth h;
  h.component = "router";
  h.time = clock_.now();

  const std::size_t spooled = spool_size();
  net::HealthStatus spool_status = net::HealthStatus::kOk;
  std::string spool_detail = std::to_string(spooled) + " points spooled";
  if (options_.spool_capacity > 0 && spooled >= options_.spool_capacity) {
    spool_status = net::HealthStatus::kDegraded;
    spool_detail += " (spool full, oldest points being dropped)";
  }
  h.add("spool", spool_status, std::move(spool_detail), static_cast<double>(spooled));
  if (options_.async_ingest) {
    const std::size_t queued = ingest_queue_points();
    net::HealthStatus ingest_status = net::HealthStatus::kOk;
    std::string ingest_detail = std::to_string(queued) + " points queued for flush";
    if (queued >= options_.ingest_queue_capacity) {
      ingest_status = net::HealthStatus::kDegraded;
      ingest_detail += " (queue full, writes rejected with 429)";
    }
    h.add("ingest_queue", ingest_status, std::move(ingest_detail),
          static_cast<double>(queued));
  }
  {
    const core::sync::LockGuard lock(jobs_mu_);
    h.add("jobs", net::HealthStatus::kOk, std::to_string(jobs_.size()) + " jobs running",
          static_cast<double>(jobs_.size()));
  }

  if (readiness) {
    auto resp = db_client_.get(options_.db_url + "/ping");
    const bool reachable = resp.ok() && resp->ok();
    h.add("downstream_db",
          reachable ? net::HealthStatus::kOk : net::HealthStatus::kDegraded,
          reachable ? "db back-end reachable at " + options_.db_url
                    : "db back-end unreachable at " + options_.db_url + ": " +
                          (resp.ok() ? "HTTP " + std::to_string(resp->status)
                                     : resp.message()));
    // Attachment state feeds readiness: a router whose flusher task was
    // detached stopped forwarding; one that never attached (sync ingest)
    // reports no scheduler check at all.
    if (ever_attached()) {
      h.add("scheduler", attached() ? net::HealthStatus::kOk : net::HealthStatus::kDegraded,
            attached() ? "flusher task attached" : "detached: background flush stopped");
    }
  }
  return h;
}

net::HttpResponse MetricsRouter::handle_write(const net::HttpRequest& req) {
  // Shared parser with the TSDB façade: same db/precision handling, same
  // uniform 400 body for an unparseable batch.
  auto parsed = tsdb::parse_write_request(req, options_.database, clock_.now());
  if (!parsed.ok()) {
    parse_errors_.inc();
    return tsdb::write_error_response(parsed.message());
  }
  parse_errors_.inc(parsed->errors.size());
  auto result = write_points(std::move(parsed->batch));
  if (!result.ok()) {
    const std::string& msg = result.message();
    if (util::starts_with(msg, kBackpressurePrefix)) {
      // The ingest queue is full: explicit backpressure. Producers should
      // back off and retry instead of dropping the batch.
      auto resp = net::HttpResponse::json(429, tsdb::influx_error_json(msg));
      resp.headers.set("Retry-After", "1");
      return resp;
    }
    if (util::starts_with(msg, kUnknownDbPrefix)) {
      // Pass the back-end's 404 body through byte-identical.
      return net::HttpResponse::json(404, msg.substr(kUnknownDbPrefix.size()));
    }
    if (util::starts_with(msg, kForwardFailedPrefix)) {
      // A malformed batch is the producer's fault (400, do not retry); a
      // back-end outage is not (503, retry later).
      return net::HttpResponse::text(503, msg);
    }
    return net::HttpResponse::bad_request(msg);
  }
  return net::HttpResponse::no_content();
}

namespace {

util::Result<JobSignal> signal_from_json(std::string_view body) {
  auto parsed = json::parse(body);
  if (!parsed.ok()) return util::Result<JobSignal>::error(parsed.message());
  const json::Value& v = *parsed;
  JobSignal s;
  s.job_id = v["jobid"].as_string();
  s.user = v["user"].as_string();
  if (v["nodes"].is_array()) {
    for (const auto& n : v["nodes"].get_array()) {
      s.nodes.push_back(n.as_string());
    }
  }
  if (v["tags"].is_object()) {
    for (const auto& [k, tv] : v["tags"].get_object()) {
      s.extra_tags.emplace_back(k, tv.as_string());
    }
  }
  if (s.job_id.empty()) return util::Result<JobSignal>::error("missing 'jobid'");
  return s;
}

}  // namespace

net::HttpResponse MetricsRouter::handle_job_start(const net::HttpRequest& req) {
  auto signal = signal_from_json(req.body);
  if (!signal.ok()) return net::HttpResponse::bad_request(signal.message());
  if (auto status = job_start(*signal); !status.ok()) {
    return net::HttpResponse::bad_request(status.message());
  }
  return net::HttpResponse::no_content();
}

net::HttpResponse MetricsRouter::handle_job_end(const net::HttpRequest& req) {
  auto parsed = json::parse(req.body);
  if (!parsed.ok()) return net::HttpResponse::bad_request(parsed.message());
  const std::string job_id = (*parsed)["jobid"].as_string();
  if (auto status = job_end(job_id); !status.ok()) {
    return net::HttpResponse::bad_request(status.message());
  }
  return net::HttpResponse::no_content();
}

net::HttpResponse MetricsRouter::handle_jobs(const net::HttpRequest&) {
  json::Array jobs;
  for (const auto& job : running_jobs()) {
    json::Object j;
    j["jobid"] = job.job_id;
    j["user"] = job.user;
    json::Array nodes;
    for (const auto& n : job.nodes) nodes.emplace_back(n);
    j["nodes"] = std::move(nodes);
    j["start_time"] = static_cast<std::int64_t>(job.start_time);
    json::Object extra;
    for (const auto& [k, v] : job.extra_tags) extra[k] = v;
    j["tags"] = std::move(extra);
    jobs.emplace_back(std::move(j));
  }
  json::Object top;
  top["jobs"] = std::move(jobs);
  return net::HttpResponse::json(200, json::Value(std::move(top)).dump());
}

net::HttpResponse MetricsRouter::handle_stats(const net::HttpRequest&) {
  const Stats s = stats();
  json::Object o;
  o["points_in"] = static_cast<std::int64_t>(s.points_in);
  o["points_out"] = static_cast<std::int64_t>(s.points_out);
  o["points_duplicated"] = static_cast<std::int64_t>(s.points_duplicated);
  o["parse_errors"] = static_cast<std::int64_t>(s.parse_errors);
  o["forward_failures"] = static_cast<std::int64_t>(s.forward_failures);
  o["jobs_started"] = static_cast<std::int64_t>(s.jobs_started);
  o["jobs_ended"] = static_cast<std::int64_t>(s.jobs_ended);
  o["ingest_rejected"] = static_cast<std::int64_t>(s.ingest_rejected);
  o["ingest_queue_points"] = static_cast<std::int64_t>(ingest_queue_points());
  o["tagged_hosts"] = static_cast<std::int64_t>(tags_.host_count());
  return net::HttpResponse::json(200, json::Value(std::move(o)).dump());
}

}  // namespace lms::core
