#include "lms/core/tagstore.hpp"

namespace lms::core {

void TagStore::set_tags(std::string_view hostname, std::vector<lineproto::Tag> tags) {
  const core::sync::LockGuard lock(mu_);
  tags_[std::string(hostname)] = std::move(tags);
}

void TagStore::clear_tags(std::string_view hostname) {
  const core::sync::LockGuard lock(mu_);
  const auto it = tags_.find(hostname);
  if (it != tags_.end()) tags_.erase(it);
}

std::vector<lineproto::Tag> TagStore::tags_for(std::string_view hostname) const {
  const core::sync::LockGuard lock(mu_);
  const auto it = tags_.find(hostname);
  return it != tags_.end() ? it->second : std::vector<lineproto::Tag>{};
}

std::size_t TagStore::enrich(lineproto::Point& point) const {
  const std::string_view host = point.hostname();
  if (host.empty()) return 0;
  const core::sync::LockGuard lock(mu_);
  const auto it = tags_.find(host);
  if (it == tags_.end()) return 0;
  std::size_t added = 0;
  for (const auto& [k, v] : it->second) {
    if (!point.has_tag(k)) {
      point.tags.emplace_back(k, v);
      ++added;
    }
  }
  if (added > 0) point.normalize();
  return added;
}

std::size_t TagStore::host_count() const {
  const core::sync::LockGuard lock(mu_);
  return tags_.size();
}

}  // namespace lms::core
