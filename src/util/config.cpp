#include "lms/util/config.hpp"

#include "lms/util/strings.hpp"

namespace lms::util {

namespace {

// INI-style inline comments: a ';' or '#' that starts the value or follows
// whitespace opens a comment. Separators embedded in a value ("a;b") stay.
std::string_view strip_inline_comment(std::string_view value) {
  for (std::size_t i = 0; i < value.size(); ++i) {
    if ((value[i] == ';' || value[i] == '#') &&
        (i == 0 || value[i - 1] == ' ' || value[i - 1] == '\t')) {
      return value.substr(0, i);
    }
  }
  return value;
}

}  // namespace

Result<Config> Config::parse(std::string_view text) {
  Config cfg;
  Section* current = nullptr;
  int line_no = 0;
  for (const auto& raw_line : split(text, '\n')) {
    ++line_no;
    const std::string_view line = trim(raw_line);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        return Result<Config>::error("config line " + std::to_string(line_no) +
                                     ": malformed section header");
      }
      const std::string name(trim(line.substr(1, line.size() - 2)));
      cfg.sections_.push_back(Section{name, {}});
      current = &cfg.sections_.back();
      continue;
    }
    const auto [key_sv, value_sv] = split_once(line, '=');
    if (value_sv.data() == nullptr && line.find('=') == std::string_view::npos) {
      return Result<Config>::error("config line " + std::to_string(line_no) +
                                   ": expected key = value");
    }
    if (current == nullptr) {
      cfg.sections_.push_back(Section{"", {}});
      current = &cfg.sections_.back();
    }
    current->entries.push_back(
        Entry{std::string(trim(key_sv)), std::string(trim(strip_inline_comment(value_sv)))});
  }
  return cfg;
}

const Config::Entry* Config::find(std::string_view section, std::string_view key) const {
  for (const auto& sec : sections_) {
    if (sec.name != section) continue;
    for (const auto& e : sec.entries) {
      if (e.key == key) return &e;
    }
  }
  return nullptr;
}

bool Config::has(std::string_view section, std::string_view key) const {
  return find(section, key) != nullptr;
}

std::optional<std::string> Config::get(std::string_view section, std::string_view key) const {
  const Entry* e = find(section, key);
  if (e == nullptr) return std::nullopt;
  return e->value;
}

std::string Config::get_or(std::string_view section, std::string_view key,
                           std::string_view fallback) const {
  const Entry* e = find(section, key);
  return e != nullptr ? e->value : std::string(fallback);
}

std::optional<std::int64_t> Config::get_int(std::string_view section,
                                            std::string_view key) const {
  const Entry* e = find(section, key);
  if (e == nullptr) return std::nullopt;
  return parse_int64(e->value);
}

std::int64_t Config::get_int_or(std::string_view section, std::string_view key,
                                std::int64_t fallback) const {
  return get_int(section, key).value_or(fallback);
}

std::optional<double> Config::get_double(std::string_view section, std::string_view key) const {
  const Entry* e = find(section, key);
  if (e == nullptr) return std::nullopt;
  return parse_double(e->value);
}

double Config::get_double_or(std::string_view section, std::string_view key,
                             double fallback) const {
  return get_double(section, key).value_or(fallback);
}

std::optional<bool> Config::get_bool(std::string_view section, std::string_view key) const {
  const Entry* e = find(section, key);
  if (e == nullptr) return std::nullopt;
  const std::string v = to_lower(e->value);
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  return std::nullopt;
}

bool Config::get_bool_or(std::string_view section, std::string_view key, bool fallback) const {
  return get_bool(section, key).value_or(fallback);
}

std::vector<std::string> Config::get_list(std::string_view section, std::string_view key) const {
  const Entry* e = find(section, key);
  if (e == nullptr) return {};
  return split_trimmed(e->value, ',');
}

void Config::set(std::string_view section, std::string_view key, std::string_view value) {
  for (auto& sec : sections_) {
    if (sec.name != section) continue;
    for (auto& e : sec.entries) {
      if (e.key == key) {
        e.value = std::string(value);
        return;
      }
    }
    sec.entries.push_back(Entry{std::string(key), std::string(value)});
    return;
  }
  sections_.push_back(Section{std::string(section), {Entry{std::string(key), std::string(value)}}});
}

std::vector<std::string> Config::sections() const {
  std::vector<std::string> out;
  out.reserve(sections_.size());
  for (const auto& sec : sections_) out.push_back(sec.name);
  return out;
}

std::vector<std::string> Config::keys(std::string_view section) const {
  std::vector<std::string> out;
  for (const auto& sec : sections_) {
    if (sec.name != section) continue;
    for (const auto& e : sec.entries) out.push_back(e.key);
  }
  return out;
}

std::string Config::to_string() const {
  std::string out;
  for (const auto& sec : sections_) {
    if (!sec.name.empty()) {
      out += "[" + sec.name + "]\n";
    }
    for (const auto& e : sec.entries) {
      out += e.key + " = " + e.value + "\n";
    }
  }
  return out;
}

}  // namespace lms::util
