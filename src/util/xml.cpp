#include "lms/util/xml.hpp"

#include <cctype>

namespace lms::util {

const XmlElement* XmlElement::child(std::string_view child_name) const {
  for (const auto& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::children_named(std::string_view child_name) const {
  std::vector<const XmlElement*> out;
  for (const auto& c : children) {
    if (c.name == child_name) out.push_back(&c);
  }
  return out;
}

std::string XmlElement::attr(std::string_view key) const {
  const auto it = attributes.find(std::string(key));
  return it != attributes.end() ? it->second : std::string();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<XmlElement> parse() {
    skip_prolog();
    auto root = parse_element();
    if (!root.ok()) return root;
    skip_ws_and_comments();
    if (pos_ != text_.size()) {
      return Result<XmlElement>::error("xml: trailing content after root element");
    }
    return root;
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  bool consume(std::string_view s) {
    if (text_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek())) != 0) ++pos_;
  }

  void skip_ws_and_comments() {
    while (true) {
      skip_ws();
      if (consume("<!--")) {
        const std::size_t end = text_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? text_.size() : end + 3;
      } else {
        return;
      }
    }
  }

  void skip_prolog() {
    while (true) {
      skip_ws_and_comments();
      if (consume("<?")) {
        const std::size_t end = text_.find("?>", pos_);
        pos_ = end == std::string_view::npos ? text_.size() : end + 2;
      } else if (consume("<!DOCTYPE")) {
        const std::size_t end = text_.find('>', pos_);
        pos_ = end == std::string_view::npos ? text_.size() : end + 1;
      } else {
        return;
      }
    }
  }

  static bool is_name_char(char c) {
    return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_' || c == '-' ||
           c == '.' || c == ':';
  }

  std::string parse_name() {
    std::string name;
    while (!eof() && is_name_char(peek())) name.push_back(text_[pos_++]);
    return name;
  }

  static std::string unescape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '&') {
        out.push_back(s[i]);
        continue;
      }
      const std::string_view rest = s.substr(i);
      if (rest.substr(0, 4) == "&lt;") {
        out.push_back('<');
        i += 3;
      } else if (rest.substr(0, 4) == "&gt;") {
        out.push_back('>');
        i += 3;
      } else if (rest.substr(0, 5) == "&amp;") {
        out.push_back('&');
        i += 4;
      } else if (rest.substr(0, 6) == "&quot;") {
        out.push_back('"');
        i += 5;
      } else if (rest.substr(0, 6) == "&apos;") {
        out.push_back('\'');
        i += 5;
      } else {
        out.push_back('&');
      }
    }
    return out;
  }

  Result<XmlElement> parse_element() {
    skip_ws_and_comments();
    if (eof() || !consume("<")) {
      return Result<XmlElement>::error("xml: expected '<' at offset " + std::to_string(pos_));
    }
    XmlElement el;
    el.name = parse_name();
    if (el.name.empty()) {
      return Result<XmlElement>::error("xml: empty element name at offset " +
                                       std::to_string(pos_));
    }
    // Attributes.
    while (true) {
      skip_ws();
      if (eof()) return Result<XmlElement>::error("xml: unexpected end inside <" + el.name + ">");
      if (consume("/>")) return el;
      if (consume(">")) break;
      const std::string key = parse_name();
      if (key.empty()) {
        return Result<XmlElement>::error("xml: bad attribute in <" + el.name + ">");
      }
      skip_ws();
      if (!consume("=")) {
        return Result<XmlElement>::error("xml: attribute '" + key + "' missing '='");
      }
      skip_ws();
      if (eof() || (peek() != '"' && peek() != '\'')) {
        return Result<XmlElement>::error("xml: attribute '" + key + "' missing quote");
      }
      const char quote = text_[pos_++];
      const std::size_t end = text_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return Result<XmlElement>::error("xml: unterminated attribute value for '" + key + "'");
      }
      el.attributes[key] = unescape(text_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }
    // Content.
    while (true) {
      if (eof()) {
        return Result<XmlElement>::error("xml: missing close tag for <" + el.name + ">");
      }
      if (consume("<!--")) {
        const std::size_t end = text_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? text_.size() : end + 3;
        continue;
      }
      if (consume("</")) {
        const std::string close = parse_name();
        skip_ws();
        if (close != el.name || !consume(">")) {
          return Result<XmlElement>::error("xml: mismatched close tag </" + close +
                                           "> for <" + el.name + ">");
        }
        return el;
      }
      if (!eof() && peek() == '<') {
        auto child = parse_element();
        if (!child.ok()) return child;
        el.children.push_back(child.take());
        continue;
      }
      const std::size_t end = text_.find('<', pos_);
      const std::size_t stop = end == std::string_view::npos ? text_.size() : end;
      el.text += unescape(text_.substr(pos_, stop - pos_));
      pos_ = stop;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<XmlElement> xml_parse(std::string_view text) { return Parser(text).parse(); }

std::string xml_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace lms::util
