#include "lms/util/clock.hpp"

#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <limits>
#include <stdexcept>

namespace lms::util {

TimeNs seconds_to_ns(double seconds) {
  const double ns = seconds * static_cast<double>(kNanosPerSecond);
  if (ns >= static_cast<double>(std::numeric_limits<TimeNs>::max())) {
    return std::numeric_limits<TimeNs>::max();
  }
  if (ns <= static_cast<double>(std::numeric_limits<TimeNs>::min())) {
    return std::numeric_limits<TimeNs>::min();
  }
  return static_cast<TimeNs>(std::llround(ns));
}

double ns_to_seconds(TimeNs ns) {
  return static_cast<double>(ns) / static_cast<double>(kNanosPerSecond);
}

std::string format_utc(TimeNs ns) {
  const std::time_t secs = static_cast<std::time_t>(ns / kNanosPerSecond);
  const int millis = static_cast<int>((ns % kNanosPerSecond) / kNanosPerMilli);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, millis);
  return buf;
}

std::string format_duration(TimeNs ns) {
  char buf[48];
  if (ns < 0) return "-" + format_duration(-ns);
  if (ns < kNanosPerMicro) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", ns);
  } else if (ns < kNanosPerMilli) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / kNanosPerMicro);
  } else if (ns < kNanosPerSecond) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(ns) / kNanosPerMilli);
  } else if (ns < kNanosPerMinute) {
    std::snprintf(buf, sizeof(buf), "%.1fs", ns_to_seconds(ns));
  } else if (ns < kNanosPerHour) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "m%02" PRId64 "s", ns / kNanosPerMinute,
                  (ns % kNanosPerMinute) / kNanosPerSecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "h%02" PRId64 "m", ns / kNanosPerHour,
                  (ns % kNanosPerHour) / kNanosPerMinute);
  }
  return buf;
}

TimeNs WallClock::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

WallClock& WallClock::instance() {
  static WallClock clock;
  return clock;
}

void SimClock::set(TimeNs t) {
  TimeNs cur = now_ns_.load();
  while (true) {
    if (t < cur) {
      throw std::invalid_argument("SimClock::set would move time backwards");
    }
    if (now_ns_.compare_exchange_weak(cur, t)) return;
  }
}

TimeNs monotonic_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace lms::util
