#include "lms/util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "lms/util/strings.hpp"

namespace lms::util {

namespace {

/// Resample `values` to exactly `width` columns (mean per bucket).
std::vector<double> resample(const std::vector<double>& values, int width) {
  std::vector<double> out;
  if (values.empty() || width <= 0) return out;
  out.reserve(static_cast<std::size_t>(width));
  const double step = static_cast<double>(values.size()) / width;
  for (int c = 0; c < width; ++c) {
    const auto begin = static_cast<std::size_t>(c * step);
    auto end = static_cast<std::size_t>((c + 1) * step);
    if (end <= begin) end = begin + 1;
    end = std::min(end, values.size());
    double sum = 0;
    for (std::size_t i = begin; i < end; ++i) sum += values[i];
    out.push_back(sum / static_cast<double>(end - begin));
  }
  return out;
}

std::string format_axis_value(double v) {
  char buf[32];
  if (std::fabs(v) >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%9.3g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%9.1f", v);
  }
  return buf;
}

}  // namespace

std::string ascii_chart_multi(const std::vector<std::string>& labels,
                              const std::vector<std::vector<double>>& series,
                              const AsciiChartOptions& options) {
  std::string out;
  if (!options.title.empty()) {
    out += options.title + "\n";
  }
  if (series.empty()) return out + "(no data)\n";

  // Common y range across all series (and the threshold if drawn).
  double lo = options.show_threshold ? options.threshold : 0;
  double hi = lo;
  bool first = true;
  for (const auto& s : series) {
    for (const double v : s) {
      if (first) {
        lo = hi = v;
        first = false;
      }
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (first) return out + "(no data)\n";
  if (options.show_threshold) {
    lo = std::min(lo, options.threshold);
    hi = std::max(hi, options.threshold);
  }
  if (hi == lo) hi = lo + 1.0;

  const int width = std::max(8, options.width);
  const int height = std::max(3, options.height);
  std::vector<std::vector<double>> cols;
  cols.reserve(series.size());
  for (const auto& s : series) cols.push_back(resample(s, width));

  // Grid rows, top (hi) to bottom (lo).
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  auto row_of = [&](double v) {
    const double norm = (v - lo) / (hi - lo);
    int row = height - 1 - static_cast<int>(std::lround(norm * (height - 1)));
    return std::clamp(row, 0, height - 1);
  };
  if (options.show_threshold) {
    const int tr = row_of(options.threshold);
    for (int c = 0; c < width; ++c) grid[static_cast<std::size_t>(tr)][static_cast<std::size_t>(c)] = '-';
  }
  for (std::size_t s = 0; s < cols.size(); ++s) {
    const char glyph =
        s < labels.size() && !labels[s].empty() ? labels[s][0] : static_cast<char>('1' + s);
    for (int c = 0; c < static_cast<int>(cols[s].size()); ++c) {
      grid[static_cast<std::size_t>(row_of(cols[s][static_cast<std::size_t>(c)]))]
          [static_cast<std::size_t>(c)] = glyph;
    }
  }

  // Assemble with a y axis: top, middle and bottom tick labels.
  for (int r = 0; r < height; ++r) {
    std::string label(10, ' ');
    if (r == 0) {
      label = format_axis_value(hi) + " ";
    } else if (r == height - 1) {
      label = format_axis_value(lo) + " ";
    } else if (r == height / 2) {
      label = format_axis_value((hi + lo) / 2) + " ";
    }
    out += label + "|" + grid[static_cast<std::size_t>(r)] + "\n";
  }
  out += std::string(10, ' ') + "+" + std::string(static_cast<std::size_t>(width), '-') + "\n";
  if (!labels.empty()) {
    out += std::string(11, ' ');
    std::vector<std::string> legend;
    for (const auto& l : labels) {
      if (!l.empty()) legend.push_back(std::string(1, l[0]) + "=" + l);
    }
    out += join(legend, "  ");
    if (options.show_threshold) {
      out += "  -=threshold(" + format_double(options.threshold) + ")";
    }
    if (!options.y_unit.empty()) out += "  [" + options.y_unit + "]";
    out += "\n";
  }
  return out;
}

std::string ascii_chart(const std::vector<double>& values, const AsciiChartOptions& options) {
  return ascii_chart_multi({"*"}, {values}, options);
}

}  // namespace lms::util
