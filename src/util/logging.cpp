#include "lms/util/logging.hpp"

#include <atomic>
#include <cstdio>

#include "lms/util/clock.hpp"

namespace lms::util {

namespace {
std::atomic<Logger::TraceIdFn> g_trace_provider{nullptr};

std::uint64_t active_trace_id() {
  const Logger::TraceIdFn fn = g_trace_provider.load(std::memory_order_acquire);
  return fn != nullptr ? fn() : 0;
}
}  // namespace

void Logger::set_trace_provider(TraceIdFn fn) {
  g_trace_provider.store(fn, std::memory_order_release);
}

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(LogLevel::kWarn), sink_(nullptr) {}

void Logger::set_level(LogLevel level) {
  const core::sync::LockGuard lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  const core::sync::LockGuard lock(mu_);
  return level_;
}

void Logger::set_sink(Sink sink) {
  const core::sync::LockGuard lock(mu_);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, std::string_view component, std::string_view msg) {
  Sink sink;
  {
    const core::sync::LockGuard lock(mu_);
    if (level < level_) return;
    sink = sink_;
  }
  const std::uint64_t trace_id = active_trace_id();
  if (sink) {
    sink(level, component, msg, trace_id);
    return;
  }
  const std::string wall = format_utc(WallClock::instance().now());
  char trace_buf[32];
  trace_buf[0] = '\0';
  if (trace_id != 0) {
    std::snprintf(trace_buf, sizeof(trace_buf), "trace=%016llx ",
                  static_cast<unsigned long long>(trace_id));
  }
  std::fprintf(stderr, "%s mono=%lld %s[%.*s] %.*s: %.*s\n", wall.c_str(),
               static_cast<long long>(monotonic_now_ns()), trace_buf,
               static_cast<int>(log_level_name(level).size()), log_level_name(level).data(),
               static_cast<int>(component.size()), component.data(), static_cast<int>(msg.size()),
               msg.data());
}

LogRing::LogRing(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

Logger::Sink LogRing::sink() {
  return [this](LogLevel level, std::string_view component, std::string_view msg,
                std::uint64_t trace_id) {
    const core::sync::LockGuard lock(mu_);
    if (ring_.size() >= capacity_) {
      ring_.pop_front();
      ++dropped_;
    }
    ring_.push_back(Entry{level, std::string(component), std::string(msg), trace_id});
  };
}

std::vector<LogRing::Entry> LogRing::entries() const {
  const core::sync::LockGuard lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::vector<LogRing::Entry> LogRing::entries_for_trace(std::uint64_t trace_id) const {
  const core::sync::LockGuard lock(mu_);
  std::vector<Entry> out;
  for (const Entry& e : ring_) {
    if (e.trace_id == trace_id) out.push_back(e);
  }
  return out;
}

std::vector<std::string> LogRing::lines() const {
  const core::sync::LockGuard lock(mu_);
  std::vector<std::string> out;
  out.reserve(ring_.size());
  for (const Entry& e : ring_) {
    std::string line = "[";
    line += log_level_name(e.level);
    line += "] ";
    if (e.trace_id != 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "trace=%016llx ",
                    static_cast<unsigned long long>(e.trace_id));
      line += buf;
    }
    line += e.component;
    line += ": ";
    line += e.message;
    out.push_back(std::move(line));
  }
  return out;
}

std::size_t LogRing::size() const {
  const core::sync::LockGuard lock(mu_);
  return ring_.size();
}

std::uint64_t LogRing::dropped() const {
  const core::sync::LockGuard lock(mu_);
  return dropped_;
}

void LogRing::clear() {
  const core::sync::LockGuard lock(mu_);
  ring_.clear();
  dropped_ = 0;
}

}  // namespace lms::util
