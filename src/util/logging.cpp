#include "lms/util/logging.hpp"

#include <cstdio>

namespace lms::util {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(LogLevel::kWarn), sink_(nullptr) {}

void Logger::set_level(LogLevel level) {
  const std::lock_guard<std::mutex> lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return level_;
}

void Logger::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, std::string_view component, std::string_view msg) {
  Sink sink;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (level < level_) return;
    sink = sink_;
  }
  if (sink) {
    sink(level, component, msg);
    return;
  }
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n", static_cast<int>(log_level_name(level).size()),
               log_level_name(level).data(), static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace lms::util
