#include "lms/util/strings.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lms::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_trimmed(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const auto& piece : split(s, sep)) {
    const std::string_view t = trim(piece);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::pair<std::string_view, std::string_view> split_once(std::string_view s, char sep) {
  const std::size_t pos = s.find(sep);
  if (pos == std::string_view::npos) return {s, {}};
  return {s.substr(0, pos), s.substr(pos + 1)};
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::optional<double> parse_double(std::string_view s) {
  if (s.empty()) return std::nullopt;
  double v = 0.0;
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, v);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return v;
}

std::optional<std::int64_t> parse_int64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::int64_t v = 0;
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, v);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return v;
}

std::string format_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  // Shortest round-trip representation.
  std::array<char, 40> buf{};
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  if (ec != std::errc()) return "0";
  return std::string(buf.data(), ptr);
}

namespace {
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < s.size() && hex_value(s[i + 1]) >= 0 &&
               hex_value(s[i + 2]) >= 0) {
      out.push_back(static_cast<char>(hex_value(s[i + 1]) * 16 + hex_value(s[i + 2])));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string url_encode(std::string_view s) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    const bool unreserved = (std::isalnum(u) != 0) || c == '-' || c == '_' || c == '.' || c == '~';
    if (unreserved) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xF]);
    }
  }
  return out;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative wildcard matcher with star backtracking.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string_view::npos;
  std::size_t match = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string replace_all(std::string_view s, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

}  // namespace lms::util
