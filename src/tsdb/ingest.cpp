#include "lms/tsdb/ingest.hpp"

#include "lms/lineproto/codec.hpp"
#include "lms/tsdb/query.hpp"

namespace lms::tsdb {

util::Result<TimeNs> parse_precision(std::string_view precision) {
  if (precision.empty() || precision == "ns") return TimeNs{1};
  if (precision == "u" || precision == "us") return util::kNanosPerMicro;
  if (precision == "ms") return util::kNanosPerMilli;
  if (precision == "s") return util::kNanosPerSecond;
  if (precision == "m") return util::kNanosPerMinute;
  if (precision == "h") return util::kNanosPerHour;
  return util::Result<TimeNs>::error("invalid precision '" + std::string(precision) + "'");
}

util::Result<WriteRequest> parse_write_request(const net::HttpRequest& req,
                                               const std::string& default_db,
                                               TimeNs default_time) {
  const auto scale = parse_precision(req.query.get_or("precision", ""));
  if (!scale.ok()) return util::Result<WriteRequest>::error(scale.message());
  WriteRequest out;
  out.batch.db = req.query.get_or("db", default_db);
  out.batch.timestamp_scale = *scale;
  out.batch.default_time = default_time;
  out.batch.points = lineproto::parse_lenient(req.body, &out.errors);
  if (out.batch.points.empty() && !out.errors.empty()) {
    return util::Result<WriteRequest>::error("unable to parse batch: " + out.errors.front());
  }
  return out;
}

net::HttpResponse write_error_response(std::string_view message) {
  return net::HttpResponse::json(400, influx_error_json(message));
}

net::HttpResponse unknown_db_response(const std::string& db) {
  return net::HttpResponse::json(404, influx_error_json("database not found: \"" + db + "\""));
}

}  // namespace lms::tsdb
