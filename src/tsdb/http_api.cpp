#include "lms/tsdb/http_api.hpp"

#include "lms/json/json.hpp"
#include "lms/obs/trace.hpp"
#include "lms/tsdb/ingest.hpp"
#include "lms/tsdb/persist.hpp"
#include "lms/util/logging.hpp"

namespace lms::tsdb {

HttpApi::HttpApi(Storage& storage, const util::Clock& clock)
    : HttpApi(storage, clock, Options()) {}

HttpApi::HttpApi(Storage& storage, const util::Clock& clock, Options options)
    : storage_(storage),
      clock_(clock),
      options_(std::move(options)),
      engine_(storage),
      own_registry_(options_.registry == nullptr ? new obs::Registry() : nullptr),
      registry_(options_.registry != nullptr ? options_.registry : own_registry_.get()),
      points_written_(registry_->counter("tsdb_points_written")),
      write_requests_(registry_->counter("tsdb_write_requests")),
      query_requests_(registry_->counter("tsdb_query_requests")),
      parse_errors_(registry_->counter("tsdb_parse_errors")),
      write_ns_(registry_->histogram("tsdb_write_ns")),
      query_ns_(registry_->histogram("tsdb_query_ns")) {
  // Sampled at collect time; totals() snapshots one database at a time.
  registry_->gauge_fn("tsdb_series", {}, [this] {
    return static_cast<double>(storage_.totals().series);
  });
  registry_->gauge_fn("tsdb_samples", {}, [this] {
    return static_cast<double>(storage_.totals().samples);
  });
}

HttpApi::~HttpApi() {
  registry_->remove_gauge_fn("tsdb_series");
  registry_->remove_gauge_fn("tsdb_samples");
}

net::HttpHandler HttpApi::handler() {
  return [this](const net::HttpRequest& req) -> net::HttpResponse {
    if (req.path == "/ping") return net::HttpResponse::no_content();
    if (req.path == "/write" && req.method == "POST") return handle_write(req);
    if (req.path == "/query") return handle_query(req);
    if (req.path == "/stats") return handle_stats(req);
    if (req.path == "/metrics") {
      auto resp = net::HttpResponse::text(200, obs::render_text(*registry_));
      resp.headers.set("Content-Type", obs::kTextExpositionContentType);
      return resp;
    }
    if (req.path == "/health") return net::health_response(health());
    if (req.path == "/ready") return net::ready_response(health());
    if (req.path == "/dump") {
      const std::string db_name = req.query.get_or("db", options_.default_db);
      const ReadSnapshot snap = storage_.snapshot(db_name);
      if (!snap) {
        return net::HttpResponse::json(404, influx_error_json("database not found"));
      }
      return net::HttpResponse::text(200, dump_database(*snap));
    }
    return net::HttpResponse::not_found();
  };
}

net::HttpResponse HttpApi::handle_write(const net::HttpRequest& req) {
  obs::Span span("tsdb.write", "tsdb");
  const util::TimeNs t0 = util::monotonic_now_ns();
  write_requests_.inc();
  auto parsed = parse_write_request(req, options_.default_db, clock_.now());
  if (!parsed.ok()) {
    parse_errors_.inc();
    span.set_ok(false);
    return write_error_response(parsed.message());
  }
  parse_errors_.inc(parsed->errors.size());
  if (!options_.auto_create_dbs && storage_.find_database(parsed->batch.db) == nullptr) {
    span.set_ok(false);
    return unknown_db_response(parsed->batch.db);
  }
  storage_.write(parsed->batch);
  points_written_.inc(parsed->batch.points.size());
  if (!parsed->errors.empty()) {
    LMS_WARN("tsdb") << parsed->errors.size() << " malformed lines dropped in /write";
  }
  write_ns_.record_since(t0);
  return net::HttpResponse::no_content();
}

net::HttpResponse HttpApi::handle_query(const net::HttpRequest& req) {
  obs::Span span("tsdb.query", "tsdb");
  const util::TimeNs t0 = util::monotonic_now_ns();
  query_requests_.inc();
  std::string q = req.query.get_or("q", "");
  if (q.empty() && !req.body.empty()) {
    // Accept form-encoded body: q=...
    q = net::QueryParams::parse(req.body).get_or("q", "");
  }
  if (q.empty()) {
    return net::HttpResponse::json(400, influx_error_json("missing query parameter 'q'"));
  }
  const std::string db = req.query.get_or("db", options_.default_db);
  auto result = engine_.query(db, q, clock_.now());
  query_ns_.record_since(t0);
  if (!result.ok()) {
    span.set_ok(false);
    return net::HttpResponse::json(400, influx_error_json(result.message()));
  }
  return net::HttpResponse::json(200, to_influx_json(*result));
}

net::HttpResponse HttpApi::handle_stats(const net::HttpRequest&) {
  json::Object stats;
  stats["points_written"] = static_cast<std::int64_t>(points_written());
  stats["write_requests"] = static_cast<std::int64_t>(write_requests());
  stats["query_requests"] = static_cast<std::int64_t>(query_requests());
  stats["parse_errors"] = static_cast<std::int64_t>(parse_errors());
  json::Array dbs;
  for (const auto& name : storage_.databases()) {
    const ReadSnapshot snap = storage_.snapshot(name);
    if (!snap) continue;
    json::Object d;
    d["name"] = name;
    d["series"] = static_cast<std::int64_t>(snap->series_count());
    d["samples"] = static_cast<std::int64_t>(snap->sample_count());
    dbs.emplace_back(std::move(d));
  }
  stats["databases"] = std::move(dbs);
  return net::HttpResponse::json(200, json::Value(std::move(stats)).dump());
}

net::ComponentHealth HttpApi::health() const {
  net::ComponentHealth h;
  h.component = "tsdb";
  h.time = clock_.now();
  const Storage::Totals totals = storage_.totals();
  h.add("storage", net::HealthStatus::kOk,
        std::to_string(totals.databases) + " databases, " + std::to_string(totals.series) +
            " series",
        static_cast<double>(totals.samples));
  h.add("ingest", net::HealthStatus::kOk,
        std::to_string(points_written()) + " points written",
        static_cast<double>(points_written()));
  return h;
}

std::size_t HttpApi::enforce_retention() {
  if (options_.retention <= 0) return 0;
  return storage_.drop_before(clock_.now() - options_.retention);
}

}  // namespace lms::tsdb
