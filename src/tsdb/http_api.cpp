#include "lms/tsdb/http_api.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "lms/json/json.hpp"
#include "lms/obs/runtime.hpp"
#include "lms/obs/trace.hpp"
#include "lms/tsdb/ingest.hpp"
#include "lms/tsdb/persist.hpp"
#include "lms/tsdb/trace_assembly.hpp"
#include "lms/util/logging.hpp"

namespace lms::tsdb {

namespace {

/// Did the (already parsed-and-executed) query ask for EXPLAIN? Cheap check
/// on the raw text so the HTTP layer knows to render statistics, not rows.
bool is_explain_query(std::string_view q) {
  std::size_t i = 0;
  while (i < q.size() && std::isspace(static_cast<unsigned char>(q[i])) != 0) ++i;
  static constexpr std::string_view kw = "explain";
  if (q.size() - i < kw.size()) return false;
  for (std::size_t k = 0; k < kw.size(); ++k) {
    if (std::tolower(static_cast<unsigned char>(q[i + k])) != kw[k]) return false;
  }
  i += kw.size();
  return i < q.size() && std::isspace(static_cast<unsigned char>(q[i])) != 0;
}

/// EXPLAIN output: one "explain" series carrying the scan statistics.
QueryResult explain_result(const QueryStats& stats) {
  ResultSeries s;
  s.name = "explain";
  s.columns = {"measurements_scanned", "series_scanned", "points_examined", "shards_touched"};
  s.values.push_back({FieldValue(static_cast<std::int64_t>(stats.measurements_scanned)),
                      FieldValue(static_cast<std::int64_t>(stats.series_scanned)),
                      FieldValue(static_cast<std::int64_t>(stats.points_examined)),
                      FieldValue(static_cast<std::int64_t>(stats.shards_touched))});
  QueryResult result;
  result.series.push_back(std::move(s));
  return result;
}

json::Object stats_to_json(const QueryStats& stats) {
  json::Object o;
  o["measurements_scanned"] = static_cast<std::int64_t>(stats.measurements_scanned);
  o["series_scanned"] = static_cast<std::int64_t>(stats.series_scanned);
  o["points_examined"] = static_cast<std::int64_t>(stats.points_examined);
  o["shards_touched"] = static_cast<std::int64_t>(stats.shards_touched);
  return o;
}

}  // namespace

HttpApi::HttpApi(Storage& storage, const util::Clock& clock)
    : HttpApi(storage, clock, Options()) {}

HttpApi::HttpApi(Storage& storage, const util::Clock& clock, Options options)
    : storage_(storage),
      clock_(clock),
      options_(std::move(options)),
      engine_(storage),
      own_registry_(options_.registry == nullptr ? new obs::Registry() : nullptr),
      registry_(options_.registry != nullptr ? options_.registry : own_registry_.get()),
      points_written_(registry_->counter("tsdb_points_written")),
      write_requests_(registry_->counter("tsdb_write_requests")),
      query_requests_(registry_->counter("tsdb_query_requests")),
      parse_errors_(registry_->counter("tsdb_parse_errors")),
      slow_queries_(registry_->counter("tsdb_slow_queries")),
      series_scanned_(registry_->counter("tsdb_query_series_scanned")),
      points_examined_(registry_->counter("tsdb_query_points_examined")),
      write_ns_(registry_->histogram("tsdb_write_ns")),
      query_ns_(registry_->histogram("tsdb_query_ns")) {
  // The latency histograms carry an exemplar: the trace id of the slowest
  // recent request, linking /metrics to /trace/<id>.
  write_ns_.enable_exemplar();
  query_ns_.enable_exemplar();
  // Sampled at collect time; totals() snapshots one database at a time.
  registry_->gauge_fn("tsdb_series", {}, [this] {
    return static_cast<double>(storage_.totals().series);
  });
  registry_->gauge_fn("tsdb_samples", {}, [this] {
    return static_cast<double>(storage_.totals().samples);
  });
}

HttpApi::~HttpApi() {
  detach();
  registry_->remove_gauge_fn("tsdb_series");
  registry_->remove_gauge_fn("tsdb_samples");
}

void HttpApi::on_attach(core::TaskScheduler& sched) {
  if (options_.retention <= 0) return;
  const TimeNs interval =
      options_.retention_interval > 0 ? options_.retention_interval : util::kNanosPerMinute;
  retention_task_ =
      sched.submit_periodic("tsdb.retention", interval, [this] { enforce_retention(); });
}

void HttpApi::on_detach() { retention_task_.cancel(); }

net::HttpHandler HttpApi::handler() {
  return [this](const net::HttpRequest& req) -> net::HttpResponse {
    if (req.path == "/ping") return net::HttpResponse::no_content();
    if (req.path == "/write" && req.method == "POST") return handle_write(req);
    if (req.path == "/query") return handle_query(req);
    if (req.path == "/stats") return handle_stats(req);
    if (req.path.rfind("/trace/", 0) == 0) return handle_trace(req);
    if (req.path == "/debug/slow_queries") return handle_slow_queries(req);
    if (req.path == "/debug/logs") return handle_debug_logs(req);
    if (req.path == "/debug/runtime") return net::runtime_debug_response();
    if (req.path == "/debug/pprof") return net::pprof_response(req);
    if (req.path == "/metrics") {
      obs::update_runtime_metrics(*registry_);
      auto resp = net::HttpResponse::text(200, obs::render_text(*registry_));
      resp.headers.set("Content-Type", obs::kTextExpositionContentType);
      return resp;
    }
    if (req.path == "/health") return net::health_response(health());
    if (req.path == "/ready") return net::ready_response(health());
    if (req.path == "/dump") {
      const std::string db_name = req.query.get_or("db", options_.default_db);
      const ReadSnapshot snap = storage_.snapshot(db_name);
      if (!snap) {
        return net::HttpResponse::json(404, influx_error_json("database not found"));
      }
      return net::HttpResponse::text(200, dump_database(*snap));
    }
    return net::HttpResponse::not_found();
  };
}

net::HttpResponse HttpApi::handle_write(const net::HttpRequest& req) {
  obs::Span span("tsdb.write", "tsdb");
  const util::TimeNs t0 = util::monotonic_now_ns();
  write_requests_.inc();
  auto parsed = parse_write_request(req, options_.default_db, clock_.now());
  if (!parsed.ok()) {
    parse_errors_.inc();
    span.set_ok(false);
    return write_error_response(parsed.message());
  }
  parse_errors_.inc(parsed->errors.size());
  if (!options_.auto_create_dbs && storage_.find_database(parsed->batch.db) == nullptr) {
    span.set_ok(false);
    return unknown_db_response(parsed->batch.db);
  }
  storage_.write(parsed->batch);
  points_written_.inc(parsed->batch.points.size());
  if (!parsed->errors.empty()) {
    LMS_WARN("tsdb") << parsed->errors.size() << " malformed lines dropped in /write";
  }
  write_ns_.record_since(t0);
  return net::HttpResponse::no_content();
}

net::HttpResponse HttpApi::handle_query(const net::HttpRequest& req) {
  obs::Span span("tsdb.query", "tsdb");
  const util::TimeNs t0 = util::monotonic_now_ns();
  query_requests_.inc();
  std::string q = req.query.get_or("q", "");
  if (q.empty() && !req.body.empty()) {
    // Accept form-encoded body: q=...
    q = net::QueryParams::parse(req.body).get_or("q", "");
  }
  if (q.empty()) {
    return net::HttpResponse::json(400, influx_error_json("missing query parameter 'q'"));
  }
  const std::string db = req.query.get_or("db", options_.default_db);
  QueryStats stats;
  auto result = engine_.query(db, q, clock_.now(), &stats);
  const std::int64_t elapsed = static_cast<std::int64_t>(util::monotonic_now_ns() - t0);
  query_ns_.record(static_cast<double>(elapsed));
  series_scanned_.inc(stats.series_scanned);
  points_examined_.inc(stats.points_examined);
  {
    char note[96];
    std::snprintf(note, sizeof(note), "shards=%llu series=%llu points=%llu",
                  static_cast<unsigned long long>(stats.shards_touched),
                  static_cast<unsigned long long>(stats.series_scanned),
                  static_cast<unsigned long long>(stats.points_examined));
    span.set_note(note);
  }
  if (options_.slow_query_threshold > 0 && elapsed >= options_.slow_query_threshold) {
    slow_queries_.inc();
    note_slow_query(q, db, elapsed, obs::current_trace().trace_id, stats);
  }
  if (!result.ok()) {
    span.set_ok(false);
    return net::HttpResponse::json(400, influx_error_json(result.message()));
  }
  if (is_explain_query(q)) {
    return net::HttpResponse::json(200, to_influx_json(explain_result(stats)));
  }
  return net::HttpResponse::json(200, to_influx_json(*result));
}

net::HttpResponse HttpApi::handle_trace(const net::HttpRequest& req) {
  if (req.method != "GET") {
    return net::HttpResponse::json(405, influx_error_json("method not allowed"));
  }
  const std::string_view hex = std::string_view(req.path).substr(7);  // after "/trace/"
  const auto id = obs::parse_trace_id_hex(hex);
  if (!id || *id == 0) {
    return net::HttpResponse::json(400,
                                   influx_error_json("bad trace id (want 16 hex characters)"));
  }
  const std::string db = req.query.get_or("db", options_.default_db);
  const ReadSnapshot snap = storage_.snapshot(db);
  if (!snap) {
    return net::HttpResponse::json(404, influx_error_json("database not found"));
  }
  const TraceTree tree = assemble_trace(snap, *id, options_.trace_measurement);
  if (req.query.get_or("format", "") == "waterfall") {
    return net::HttpResponse::text(200, trace_tree_to_waterfall(tree));
  }
  return net::HttpResponse::json(200, trace_tree_to_json(tree));
}

net::HttpResponse HttpApi::handle_slow_queries(const net::HttpRequest&) {
  json::Object top;
  top["threshold_ns"] = static_cast<std::int64_t>(options_.slow_query_threshold);
  json::Array arr;
  for (const SlowQuery& s : slow_query_ring()) {
    json::Object o;
    o["query"] = s.query;
    o["db"] = s.db;
    o["time_ns"] = static_cast<std::int64_t>(s.wall_ns);
    o["duration_ns"] = s.duration_ns;
    if (s.trace_id != 0) o["trace_id"] = obs::trace_id_hex(s.trace_id);
    o["stats"] = stats_to_json(s.stats);
    arr.emplace_back(std::move(o));
  }
  top["slow_queries"] = std::move(arr);
  return net::HttpResponse::json(200, json::Value(std::move(top)).dump());
}

net::HttpResponse HttpApi::handle_debug_logs(const net::HttpRequest& req) {
  if (options_.log_ring == nullptr) return net::HttpResponse::not_found();
  return net::debug_logs_response(*options_.log_ring, req);
}

void HttpApi::note_slow_query(std::string q, std::string db, std::int64_t duration_ns,
                              std::uint64_t trace_id, const QueryStats& stats) {
  SlowQuery s;
  s.query = std::move(q);
  s.db = std::move(db);
  s.wall_ns = clock_.now();
  s.duration_ns = duration_ns;
  s.trace_id = trace_id;
  s.stats = stats;
  const core::sync::LockGuard lock(slow_mu_);
  slow_ring_.push_back(std::move(s));
  while (slow_ring_.size() > options_.slow_query_capacity) slow_ring_.pop_front();
}

std::vector<HttpApi::SlowQuery> HttpApi::slow_query_ring() const {
  const core::sync::LockGuard lock(slow_mu_);
  return {slow_ring_.rbegin(), slow_ring_.rend()};
}

net::HttpResponse HttpApi::handle_stats(const net::HttpRequest&) {
  json::Object stats;
  stats["points_written"] = static_cast<std::int64_t>(points_written());
  stats["write_requests"] = static_cast<std::int64_t>(write_requests());
  stats["query_requests"] = static_cast<std::int64_t>(query_requests());
  stats["parse_errors"] = static_cast<std::int64_t>(parse_errors());
  stats["slow_queries"] = static_cast<std::int64_t>(slow_queries());
  json::Array dbs;
  for (const auto& name : storage_.databases()) {
    const ReadSnapshot snap = storage_.snapshot(name);
    if (!snap) continue;
    json::Object d;
    d["name"] = name;
    d["series"] = static_cast<std::int64_t>(snap->series_count());
    d["samples"] = static_cast<std::int64_t>(snap->sample_count());
    dbs.emplace_back(std::move(d));
  }
  stats["databases"] = std::move(dbs);
  return net::HttpResponse::json(200, json::Value(std::move(stats)).dump());
}

net::ComponentHealth HttpApi::health() const {
  net::ComponentHealth h;
  h.component = "tsdb";
  h.time = clock_.now();
  const Storage::Totals totals = storage_.totals();
  h.add("storage", net::HealthStatus::kOk,
        std::to_string(totals.databases) + " databases, " + std::to_string(totals.series) +
            " series",
        static_cast<double>(totals.samples));
  h.add("ingest", net::HealthStatus::kOk,
        std::to_string(points_written()) + " points written",
        static_cast<double>(points_written()));
  return h;
}

std::size_t HttpApi::enforce_retention() {
  if (options_.retention <= 0) return 0;
  return storage_.drop_before(clock_.now() - options_.retention);
}

}  // namespace lms::tsdb
