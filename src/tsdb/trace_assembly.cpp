#include "lms/tsdb/trace_assembly.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>

#include "lms/json/json.hpp"
#include "lms/obs/trace.hpp"

namespace lms::tsdb {

namespace {

/// Decode one exported span record (the "span" field JSON). Returns false
/// on malformed input — the caller counts, assembly continues.
bool decode_span(const std::string& text, TraceNode& out) {
  auto parsed = json::parse(text);
  if (!parsed.ok() || !parsed->is_object()) return false;
  const json::Object& o = parsed->get_object();
  const json::Value* span_id = o.find("span_id");
  if (span_id == nullptr || !span_id->is_string()) return false;
  const auto id = obs::parse_trace_id_hex(span_id->get_string());
  if (!id || *id == 0) return false;
  out.span_id = *id;
  if (const json::Value* p = o.find("parent"); p != nullptr && p->is_string()) {
    out.parent_span_id = obs::parse_trace_id_hex(p->get_string()).value_or(0);
  }
  if (const json::Value* v = o.find("name")) out.name = v->as_string();
  if (const json::Value* v = o.find("start_ns")) out.start_ns = v->as_int();
  if (const json::Value* v = o.find("duration_ns")) out.duration_ns = v->as_int();
  if (const json::Value* v = o.find("ok")) out.ok = v->as_bool(true);
  if (const json::Value* v = o.find("note")) out.note = v->as_string();
  return true;
}

/// Post-order finish: sort children by start, then derive the gap analysis
/// from the merged child intervals clamped to the parent's own window.
void finish_node(TraceNode& node) {
  std::sort(node.children.begin(), node.children.end(),
            [](const TraceNode& a, const TraceNode& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.span_id < b.span_id;
            });
  for (TraceNode& c : node.children) finish_node(c);

  const TimeNs lo = node.start_ns;
  const TimeNs hi = node.start_ns + std::max<std::int64_t>(node.duration_ns, 0);
  std::vector<std::pair<TimeNs, TimeNs>> merged;
  for (const TraceNode& c : node.children) {
    TimeNs b = std::max(c.start_ns, lo);
    TimeNs e = std::min<TimeNs>(c.start_ns + std::max<std::int64_t>(c.duration_ns, 0), hi);
    if (e <= b) continue;
    if (!merged.empty() && b <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, e);
    } else {
      merged.emplace_back(b, e);
    }
  }
  std::int64_t covered = 0;
  std::int64_t largest_gap = 0;
  TimeNs cursor = lo;
  for (const auto& [b, e] : merged) {
    largest_gap = std::max<std::int64_t>(largest_gap, b - cursor);
    covered += e - b;
    cursor = e;
  }
  if (!merged.empty()) largest_gap = std::max<std::int64_t>(largest_gap, hi - cursor);
  node.self_ns = std::max<std::int64_t>(node.duration_ns - covered, 0);
  node.largest_gap_ns = node.children.empty() ? 0 : largest_gap;
}

}  // namespace

TraceTree assemble_trace(const ReadSnapshot& snapshot, std::uint64_t trace_id,
                         std::string_view measurement) {
  TraceTree tree;
  tree.trace_id = trace_id;
  if (!snapshot) return tree;

  // 1. Decode: the trace_id tag makes this a tag-index lookup, not a scan.
  std::vector<TraceNode> nodes;
  const std::vector<Tag> required = {{"trace_id", obs::trace_id_hex(trace_id)}};
  for (const Series* s : snapshot->series_matching(measurement, required)) {
    const auto cit = s->columns.find("span");
    if (cit == s->columns.end()) continue;
    for (const FieldValue& v : cit->second.values()) {
      if (!v.is_string()) {
        ++tree.malformed_spans;
        continue;
      }
      TraceNode node;
      if (!decode_span(v.as_string(), node)) {
        ++tree.malformed_spans;
        continue;
      }
      node.component = std::string(s->tag("component"));
      node.host = std::string(s->tag("host"));
      nodes.push_back(std::move(node));
    }
  }
  tree.span_count = nodes.size();
  if (nodes.empty()) return tree;

  // 2. Attach children to parents by span id (first occurrence wins when a
  // span was exported twice, e.g. a replayed spool batch).
  std::map<std::uint64_t, std::size_t> by_id;
  for (std::size_t i = 0; i < nodes.size(); ++i) by_id.emplace(nodes[i].span_id, i);
  std::vector<std::vector<std::size_t>> children(nodes.size());
  std::vector<std::size_t> root_indices;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::uint64_t parent = nodes[i].parent_span_id;
    const auto pit = parent != 0 ? by_id.find(parent) : by_id.end();
    if (pit == by_id.end() || pit->second == i) {
      nodes[i].orphan = parent != 0;
      root_indices.push_back(i);
    } else {
      children[pit->second].push_back(i);
    }
  }

  // 3. Materialize depth-first. The visited set breaks parent cycles that a
  // malformed export could produce; anything left unreached afterwards is
  // appended as an orphan root so no stored span silently disappears.
  std::vector<bool> visited(nodes.size(), false);
  // NOLINTNEXTLINE(misc-no-recursion)
  const std::function<TraceNode(std::size_t)> materialize = [&](std::size_t i) {
    visited[i] = true;
    TraceNode node = std::move(nodes[i]);
    for (const std::size_t c : children[i]) {
      if (!visited[c]) node.children.push_back(materialize(c));
    }
    return node;
  };
  for (const std::size_t r : root_indices) {
    if (!visited[r]) tree.roots.push_back(materialize(r));
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!visited[i]) {
      TraceNode node = materialize(i);
      node.orphan = true;
      tree.roots.push_back(std::move(node));
    }
  }
  std::sort(tree.roots.begin(), tree.roots.end(),
            [](const TraceNode& a, const TraceNode& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.span_id < b.span_id;
            });
  for (TraceNode& r : tree.roots) finish_node(r);
  return tree;
}

namespace {

json::Object node_to_json(const TraceNode& node) {
  json::Object o;
  o["span_id"] = obs::trace_id_hex(node.span_id);
  if (node.parent_span_id != 0) o["parent"] = obs::trace_id_hex(node.parent_span_id);
  o["name"] = node.name;
  o["component"] = node.component;
  if (!node.host.empty()) o["host"] = node.host;
  o["start_ns"] = static_cast<std::int64_t>(node.start_ns);
  o["duration_ns"] = node.duration_ns;
  o["self_ns"] = node.self_ns;
  if (node.largest_gap_ns > 0) o["largest_gap_ns"] = node.largest_gap_ns;
  o["ok"] = node.ok;
  if (!node.note.empty()) o["note"] = node.note;
  if (node.orphan) o["orphan"] = true;
  json::Array kids;
  for (const TraceNode& c : node.children) kids.emplace_back(node_to_json(c));
  o["children"] = std::move(kids);
  return o;
}

std::string format_ns(std::int64_t ns) {
  char buf[48];
  if (ns >= 1000000000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

void append_waterfall(std::string& out, const TraceNode& node, std::size_t depth, TimeNs t0,
                      std::int64_t total_ns) {
  static constexpr std::size_t kBarWidth = 32;
  // Bar: the span's [start, end) window mapped onto the whole trace.
  std::string bar(kBarWidth, ' ');
  if (total_ns > 0) {
    const double scale = static_cast<double>(kBarWidth) / static_cast<double>(total_ns);
    std::size_t b = static_cast<std::size_t>(static_cast<double>(node.start_ns - t0) * scale);
    std::size_t e = static_cast<std::size_t>(
        static_cast<double>(node.start_ns - t0 + std::max<std::int64_t>(node.duration_ns, 0)) *
        scale);
    b = std::min(b, kBarWidth - 1);
    e = std::min(std::max(e, b + 1), kBarWidth);
    for (std::size_t i = b; i < e; ++i) bar[i] = '#';
  }
  out += '|';
  out += bar;
  out += "| ";
  out.append(2 * depth, ' ');
  out += node.name;
  out += " (";
  out += node.component;
  if (!node.host.empty()) {
    out += '@';
    out += node.host;
  }
  out += ") ";
  out += format_ns(node.duration_ns);
  if (node.self_ns > 0 && !node.children.empty()) {
    out += " self=";
    out += format_ns(node.self_ns);
  }
  if (!node.ok) out += " ERROR";
  if (!node.note.empty()) {
    out += " [";
    out += node.note;
    out += ']';
  }
  if (node.orphan) out += " (orphan)";
  out += '\n';
  for (const TraceNode& c : node.children) {
    append_waterfall(out, c, depth + 1, t0, total_ns);
  }
}

void trace_extent(const TraceNode& node, TimeNs& t0, TimeNs& t1) {
  t0 = std::min(t0, node.start_ns);
  t1 = std::max<TimeNs>(t1, node.start_ns + std::max<std::int64_t>(node.duration_ns, 0));
  for (const TraceNode& c : node.children) trace_extent(c, t0, t1);
}

}  // namespace

std::string trace_tree_to_json(const TraceTree& tree) {
  json::Object top;
  top["trace_id"] = obs::trace_id_hex(tree.trace_id);
  top["span_count"] = static_cast<std::int64_t>(tree.span_count);
  if (tree.malformed_spans > 0) {
    top["malformed_spans"] = static_cast<std::int64_t>(tree.malformed_spans);
  }
  json::Array roots;
  for (const TraceNode& r : tree.roots) roots.emplace_back(node_to_json(r));
  top["roots"] = std::move(roots);
  return json::Value(std::move(top)).dump();
}

std::string trace_tree_to_waterfall(const TraceTree& tree) {
  std::string out = "trace " + obs::trace_id_hex(tree.trace_id) + " — " +
                    std::to_string(tree.span_count) + " spans\n";
  if (tree.roots.empty()) return out;
  TimeNs t0 = tree.roots.front().start_ns;
  TimeNs t1 = t0;
  for (const TraceNode& r : tree.roots) trace_extent(r, t0, t1);
  const std::int64_t total = t1 - t0;
  out += "total ";
  out += format_ns(total);
  out += '\n';
  for (const TraceNode& r : tree.roots) append_waterfall(out, r, 0, t0, total);
  return out;
}

}  // namespace lms::tsdb
