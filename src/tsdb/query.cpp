#include "lms/tsdb/query.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>

#include "lms/json/json.hpp"
#include "lms/util/strings.hpp"

namespace lms::tsdb {

util::Result<TimeNs> parse_duration(std::string_view text) {
  if (text.empty()) return util::Result<TimeNs>::error("empty duration");
  TimeNs total = 0;
  std::size_t i = 0;
  while (i < text.size()) {
    std::size_t j = i;
    while (j < text.size() && (std::isdigit(static_cast<unsigned char>(text[j])) != 0)) ++j;
    if (j == i) return util::Result<TimeNs>::error("bad duration '" + std::string(text) + "'");
    const auto num = util::parse_int64(text.substr(i, j - i));
    if (!num) return util::Result<TimeNs>::error("bad duration '" + std::string(text) + "'");
    std::size_t k = j;
    while (k < text.size() && (std::isalpha(static_cast<unsigned char>(text[k])) != 0 ||
                               text[k] == 'u')) {
      ++k;
    }
    const std::string_view unit = text.substr(j, k - j);
    TimeNs mult = 0;
    if (unit == "ns") {
      mult = 1;
    } else if (unit == "u" || unit == "us") {
      mult = util::kNanosPerMicro;
    } else if (unit == "ms") {
      mult = util::kNanosPerMilli;
    } else if (unit == "s") {
      mult = util::kNanosPerSecond;
    } else if (unit == "m") {
      mult = util::kNanosPerMinute;
    } else if (unit == "h") {
      mult = util::kNanosPerHour;
    } else if (unit == "d") {
      mult = 24 * util::kNanosPerHour;
    } else if (unit == "w") {
      mult = 7 * 24 * util::kNanosPerHour;
    } else {
      return util::Result<TimeNs>::error("bad duration unit '" + std::string(unit) + "'");
    }
    total += *num * mult;
    i = k;
  }
  return total;
}

std::string format_duration_literal(TimeNs ns) {
  struct Unit {
    TimeNs mult;
    const char* name;
  };
  static constexpr Unit kUnits[] = {{7 * 24 * util::kNanosPerHour, "w"},
                                    {24 * util::kNanosPerHour, "d"},
                                    {util::kNanosPerHour, "h"},
                                    {util::kNanosPerMinute, "m"},
                                    {util::kNanosPerSecond, "s"},
                                    {util::kNanosPerMilli, "ms"},
                                    {util::kNanosPerMicro, "us"},
                                    {1, "ns"}};
  for (const auto& u : kUnits) {
    if (ns >= u.mult && ns % u.mult == 0) {
      return std::to_string(ns / u.mult) + u.name;
    }
  }
  return std::to_string(ns) + "ns";
}

namespace {

// ---------------------------------------------------------------- tokenizer

enum class TokKind { kIdent, kString, kNumber, kPunct, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // ident (unquoted), string content, number text, punct
  bool quoted = false;  // identifier was "quoted"
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token next() {
    Token t = current_;
    advance();
    return t;
  }

  bool accept_keyword(std::string_view kw) {
    if (current_.kind == TokKind::kIdent && !current_.quoted &&
        util::iequals(current_.text, kw)) {
      advance();
      return true;
    }
    return false;
  }

  bool accept_punct(std::string_view p) {
    if (current_.kind == TokKind::kPunct && current_.text == p) {
      advance();
      return true;
    }
    return false;
  }

 private:
  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      current_ = Token{TokKind::kEnd, "", false};
      return;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = pos_;
      while (j < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[j])) != 0 || text_[j] == '_' ||
              text_[j] == '.' || text_[j] == '-')) {
        ++j;
      }
      current_ = Token{TokKind::kIdent, std::string(text_.substr(pos_, j - pos_)), false};
      pos_ = j;
      return;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = pos_ + 1;
      std::string out;
      while (j < text_.size() && text_[j] != quote) {
        if (text_[j] == '\\' && j + 1 < text_.size()) ++j;
        out.push_back(text_[j]);
        ++j;
      }
      pos_ = j < text_.size() ? j + 1 : j;
      current_ = Token{quote == '"' ? TokKind::kIdent : TokKind::kString, std::move(out),
                       quote == '"'};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '-' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) != 0)) {
      std::size_t j = pos_ + 1;
      while (j < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[j])) != 0 || text_[j] == '.')) {
        ++j;
      }
      current_ = Token{TokKind::kNumber, std::string(text_.substr(pos_, j - pos_)), false};
      pos_ = j;
      return;
    }
    // Multi-char punct: >=, <=, !=, =~, !~
    if (pos_ + 1 < text_.size()) {
      const std::string_view two = text_.substr(pos_, 2);
      if (two == ">=" || two == "<=" || two == "!=" || two == "=~" || two == "!~") {
        current_ = Token{TokKind::kPunct, std::string(two), false};
        pos_ += 2;
        return;
      }
    }
    current_ = Token{TokKind::kPunct, std::string(1, c), false};
    ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Token current_;
};

// ------------------------------------------------------------------ parser

using util::Result;

Result<Statement> parse_error(std::string why) {
  return Result<Statement>::error("query: " + std::move(why));
}

std::optional<Aggregator> aggregator_from_name(std::string_view name) {
  const std::string n = util::to_lower(name);
  if (n == "mean") return Aggregator::kMean;
  if (n == "sum") return Aggregator::kSum;
  if (n == "min") return Aggregator::kMin;
  if (n == "max") return Aggregator::kMax;
  if (n == "count") return Aggregator::kCount;
  if (n == "first") return Aggregator::kFirst;
  if (n == "last") return Aggregator::kLast;
  if (n == "stddev") return Aggregator::kStddev;
  if (n == "median") return Aggregator::kMedian;
  if (n == "spread") return Aggregator::kSpread;
  if (n == "percentile") return Aggregator::kPercentile;
  if (n == "derivative") return Aggregator::kDerivative;
  if (n == "rate") return Aggregator::kRate;
  return std::nullopt;
}

std::string aggregator_name(Aggregator a) {
  switch (a) {
    case Aggregator::kMean:
      return "mean";
    case Aggregator::kSum:
      return "sum";
    case Aggregator::kMin:
      return "min";
    case Aggregator::kMax:
      return "max";
    case Aggregator::kCount:
      return "count";
    case Aggregator::kFirst:
      return "first";
    case Aggregator::kLast:
      return "last";
    case Aggregator::kStddev:
      return "stddev";
    case Aggregator::kMedian:
      return "median";
    case Aggregator::kSpread:
      return "spread";
    case Aggregator::kPercentile:
      return "percentile";
    case Aggregator::kDerivative:
      return "derivative";
    case Aggregator::kRate:
      return "rate";
    case Aggregator::kNone:
      return "value";
  }
  return "value";
}

/// Parse a time operand: integer ns, or now() [- duration].
Result<TimeNs> parse_time_operand(Lexer& lex, TimeNs now) {
  if (lex.peek().kind == TokKind::kNumber) {
    Token t = lex.next();
    // Either plain ns or a duration literal like 10m.
    if (t.text.find_first_not_of("-0123456789") == std::string::npos) {
      const auto v = util::parse_int64(t.text);
      if (!v) return Result<TimeNs>::error("bad time literal '" + t.text + "'");
      return *v;
    }
    auto d = parse_duration(t.text);
    if (!d.ok()) return d;
    return d;
  }
  if (lex.peek().kind == TokKind::kIdent && util::iequals(lex.peek().text, "now")) {
    lex.next();
    if (!lex.accept_punct("(") || !lex.accept_punct(")")) {
      return Result<TimeNs>::error("expected now()");
    }
    TimeNs t = now;
    while (true) {
      if (lex.accept_punct("-")) {
        if (lex.peek().kind != TokKind::kNumber) {
          return Result<TimeNs>::error("expected duration after now() -");
        }
        auto d = parse_duration(lex.next().text);
        if (!d.ok()) return d;
        t -= *d;
      } else if (lex.accept_punct("+")) {
        if (lex.peek().kind != TokKind::kNumber) {
          return Result<TimeNs>::error("expected duration after now() +");
        }
        auto d = parse_duration(lex.next().text);
        if (!d.ok()) return d;
        t += *d;
      } else {
        break;
      }
    }
    return t;
  }
  return Result<TimeNs>::error("bad time operand near '" + lex.peek().text + "'");
}

Result<Statement> parse_select(Lexer& lex, TimeNs now) {
  Statement stmt;
  stmt.kind = StatementKind::kSelect;
  SelectStatement& sel = stmt.select;

  // Field expressions.
  while (true) {
    FieldExpr fe;
    if (lex.peek().kind != TokKind::kIdent) {
      return parse_error("expected field expression near '" + lex.peek().text + "'");
    }
    Token first = lex.next();
    if (!first.quoted && lex.accept_punct("(")) {
      const auto agg = aggregator_from_name(first.text);
      if (!agg) return parse_error("unknown function '" + first.text + "'");
      fe.agg = *agg;
      if (lex.peek().kind != TokKind::kIdent) {
        return parse_error("expected field name in " + first.text + "()");
      }
      fe.field = lex.next().text;
      if (fe.agg == Aggregator::kPercentile) {
        if (!lex.accept_punct(",") || lex.peek().kind != TokKind::kNumber) {
          return parse_error("percentile(field, p) requires a number");
        }
        const auto p = util::parse_double(lex.next().text);
        if (!p) return parse_error("bad percentile value");
        fe.param = *p;
      } else if ((fe.agg == Aggregator::kDerivative || fe.agg == Aggregator::kRate) &&
                 lex.accept_punct(",")) {
        if (lex.peek().kind != TokKind::kNumber) {
          return parse_error("derivative unit must be a duration");
        }
        auto d = parse_duration(lex.next().text);
        if (!d.ok()) return parse_error(d.message());
        fe.unit = *d;
      }
      if (!lex.accept_punct(")")) return parse_error("missing ')' in function call");
      fe.alias = aggregator_name(fe.agg);
    } else {
      fe.field = first.text;
      fe.alias = first.text;
    }
    if (lex.accept_keyword("as")) {
      if (lex.peek().kind != TokKind::kIdent) return parse_error("expected alias after AS");
      fe.alias = lex.next().text;
    }
    sel.fields.push_back(std::move(fe));
    if (!lex.accept_punct(",")) break;
  }

  if (!lex.accept_keyword("from")) return parse_error("expected FROM");
  if (lex.peek().kind != TokKind::kIdent) return parse_error("expected measurement after FROM");
  sel.measurement = lex.next().text;
  // Convenience: a bare trailing '*' extends the measurement into a glob
  // ("FROM likwid_*"); arbitrary glob patterns can be double-quoted.
  while (lex.accept_punct("*")) sel.measurement += '*';

  if (lex.accept_keyword("where")) {
    while (true) {
      if (lex.peek().kind != TokKind::kIdent) {
        return parse_error("expected condition near '" + lex.peek().text + "'");
      }
      Token key = lex.next();
      if (!key.quoted && util::iequals(key.text, "time")) {
        std::string op;
        for (const char* candidate : {">=", "<=", ">", "<", "="}) {
          if (lex.accept_punct(candidate)) {
            op = candidate;
            break;
          }
        }
        if (op.empty()) return parse_error("bad time comparison");
        auto t = parse_time_operand(lex, now);
        if (!t.ok()) return parse_error(t.message());
        if (op == ">=") {
          sel.time_min = *t;
        } else if (op == ">") {
          sel.time_min = *t + 1;
        } else if (op == "<=") {
          sel.time_max = *t + 1;
        } else if (op == "<") {
          sel.time_max = *t;
        } else {  // '=': exact instant
          sel.time_min = *t;
          sel.time_max = *t + 1;
        }
      } else {
        TagCondition tc;
        tc.key = key.text;
        if (lex.accept_punct("=")) {
          tc.negated = false;
        } else if (lex.accept_punct("!=")) {
          tc.negated = true;
        } else if (lex.accept_punct("=~")) {
          tc.glob = true;
        } else if (lex.accept_punct("!~")) {
          tc.glob = true;
          tc.negated = true;
        } else {
          return parse_error("expected =, !=, =~ or !~ after tag '" + tc.key + "'");
        }
        if (lex.peek().kind != TokKind::kString) {
          return parse_error("tag value must be a 'string' for tag '" + tc.key + "'");
        }
        tc.value = lex.next().text;
        sel.tag_conditions.push_back(std::move(tc));
      }
      if (!lex.accept_keyword("and")) break;
    }
  }

  if (lex.accept_keyword("group")) {
    if (!lex.accept_keyword("by")) return parse_error("expected BY after GROUP");
    while (true) {
      if (lex.peek().kind == TokKind::kIdent && util::iequals(lex.peek().text, "time") &&
          !lex.peek().quoted) {
        lex.next();
        if (!lex.accept_punct("(")) return parse_error("expected ( after time");
        if (lex.peek().kind != TokKind::kNumber) return parse_error("expected duration");
        auto d = parse_duration(lex.next().text);
        if (!d.ok()) return parse_error(d.message());
        if (*d <= 0) return parse_error("group-by interval must be positive");
        sel.group_by_time = *d;
        if (!lex.accept_punct(")")) return parse_error("expected ) after duration");
      } else if (lex.peek().kind == TokKind::kIdent) {
        sel.group_by_tags.push_back(lex.next().text);
      } else if (lex.accept_punct("*")) {
        sel.group_by_tags.push_back("*");
      } else {
        return parse_error("bad GROUP BY term near '" + lex.peek().text + "'");
      }
      if (!lex.accept_punct(",")) break;
    }
  }

  if (lex.peek().kind == TokKind::kIdent && util::iequals(lex.peek().text, "fill")) {
    lex.next();
    if (!lex.accept_punct("(")) return parse_error("expected ( after fill");
    Token mode = lex.next();
    if (util::iequals(mode.text, "null")) {
      sel.fill = FillMode::kNull;
    } else if (util::iequals(mode.text, "none")) {
      sel.fill = FillMode::kNone;
    } else if (mode.text == "0") {
      sel.fill = FillMode::kZero;
    } else if (util::iequals(mode.text, "previous")) {
      sel.fill = FillMode::kPrevious;
    } else {
      return parse_error("bad fill mode '" + mode.text + "'");
    }
    if (!lex.accept_punct(")")) return parse_error("expected ) after fill mode");
  }

  if (lex.accept_keyword("order")) {
    if (!lex.accept_keyword("by")) return parse_error("expected BY after ORDER");
    if (lex.peek().kind != TokKind::kIdent || !util::iequals(lex.peek().text, "time")) {
      return parse_error("only ORDER BY time is supported");
    }
    lex.next();
    if (lex.accept_keyword("desc")) {
      sel.order_desc = true;
    } else {
      lex.accept_keyword("asc");
    }
  }

  if (lex.accept_keyword("limit")) {
    if (lex.peek().kind != TokKind::kNumber) return parse_error("expected LIMIT count");
    const auto n = util::parse_int64(lex.next().text);
    if (!n || *n < 0) return parse_error("bad LIMIT");
    sel.limit = static_cast<std::size_t>(*n);
  }

  if (lex.peek().kind != TokKind::kEnd) {
    return parse_error("unexpected trailing token '" + lex.peek().text + "'");
  }
  return stmt;
}

Result<Statement> parse_show(Lexer& lex) {
  Statement stmt;
  if (lex.accept_keyword("databases")) {
    stmt.kind = StatementKind::kShowDatabases;
    return stmt;
  }
  if (lex.accept_keyword("measurements")) {
    stmt.kind = StatementKind::kShowMeasurements;
    return stmt;
  }
  if (lex.accept_keyword("series")) {
    stmt.kind = StatementKind::kShowSeries;
    if (lex.accept_keyword("from")) {
      if (lex.peek().kind != TokKind::kIdent) return parse_error("expected measurement");
      stmt.measurement = lex.next().text;
    }
    return stmt;
  }
  const bool field_keys = lex.accept_keyword("field");
  const bool tag = !field_keys && lex.accept_keyword("tag");
  if (field_keys || tag) {
    bool values = false;
    if (field_keys) {
      if (!lex.accept_keyword("keys")) return parse_error("expected SHOW FIELD KEYS");
      stmt.kind = StatementKind::kShowFieldKeys;
    } else {
      if (lex.accept_keyword("keys")) {
        stmt.kind = StatementKind::kShowTagKeys;
      } else if (lex.accept_keyword("values")) {
        stmt.kind = StatementKind::kShowTagValues;
        values = true;
      } else {
        return parse_error("expected KEYS or VALUES after SHOW TAG");
      }
    }
    if (lex.accept_keyword("from")) {
      if (lex.peek().kind != TokKind::kIdent) return parse_error("expected measurement");
      stmt.measurement = lex.next().text;
    }
    if (values) {
      if (!lex.accept_keyword("with")) return parse_error("expected WITH KEY =");
      if (!lex.accept_keyword("key")) return parse_error("expected WITH KEY =");
      if (!lex.accept_punct("=")) return parse_error("expected WITH KEY =");
      if (lex.peek().kind != TokKind::kIdent && lex.peek().kind != TokKind::kString) {
        return parse_error("expected tag key");
      }
      stmt.with_key = lex.next().text;
    }
    return stmt;
  }
  return parse_error("unsupported SHOW statement");
}

}  // namespace

util::Result<Statement> parse_query(std::string_view text, TimeNs now) {
  Lexer lex(text);
  if (lex.accept_keyword("explain")) {
    if (!lex.accept_keyword("select")) return parse_error("expected SELECT after EXPLAIN");
    auto stmt = parse_select(lex, now);
    if (stmt.ok()) stmt->explain = true;
    return stmt;
  }
  if (lex.accept_keyword("select")) return parse_select(lex, now);
  if (lex.accept_keyword("show")) return parse_show(lex);
  return parse_error("expected SELECT, EXPLAIN SELECT or SHOW");
}

// ---------------------------------------------------------------- executor

namespace {
// A distinctive string no producer would write; identity via is_null_cell.
const char kNullMarker[] = "\x01__lms_null__";
}  // namespace

const FieldValue& null_cell() {
  static const FieldValue v{std::string(kNullMarker)};
  return v;
}

bool is_null_cell(const FieldValue& v) { return v.is_string() && v.as_string() == kNullMarker; }

namespace {

struct SamplesView {
  std::vector<Sample> samples;  // merged, sorted by time
};

/// Accumulates scan statistics across the (possibly glob-expanded) selects
/// of one statement; the shard set dedups stripes across measurements.
struct StatsCollector {
  QueryStats stats;
  std::set<std::size_t> shards;
};

/// Merge samples of `field` from all series in `group` within [tmin, tmax).
/// `points_examined` counts the gathered samples (also in count-only mode,
/// where nothing is materialized — the EXPLAIN path).
SamplesView gather(const std::vector<const Series*>& group, const std::string& field,
                   std::optional<TimeNs> tmin, std::optional<TimeNs> tmax,
                   std::uint64_t* points_examined, bool materialize = true) {
  SamplesView out;
  for (const Series* s : group) {
    const auto cit = s->columns.find(field);
    if (cit == s->columns.end()) continue;
    const Column& col = cit->second;
    const std::size_t begin = tmin ? col.lower_bound(*tmin) : 0;
    const std::size_t end = tmax ? col.lower_bound(*tmax) : col.size();
    if (points_examined != nullptr) *points_examined += end - begin;
    if (!materialize) continue;
    for (std::size_t i = begin; i < end; ++i) {
      out.samples.push_back(Sample{col.times()[i], col.values()[i]});
    }
  }
  std::sort(out.samples.begin(), out.samples.end(),
            [](const Sample& a, const Sample& b) { return a.t < b.t; });
  return out;
}

std::vector<double> numeric_values(const std::vector<Sample>& samples) {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) {
    if (s.v.is_numeric()) out.push_back(s.v.as_double());
  }
  return out;
}

std::optional<FieldValue> apply_aggregator(Aggregator agg, double param,
                                           const std::vector<Sample>& samples) {
  if (samples.empty()) return std::nullopt;
  switch (agg) {
    case Aggregator::kCount:
      return FieldValue(static_cast<std::int64_t>(samples.size()));
    case Aggregator::kFirst:
      return samples.front().v;
    case Aggregator::kLast:
      return samples.back().v;
    default:
      break;
  }
  std::vector<double> vals = numeric_values(samples);
  if (vals.empty()) return std::nullopt;
  switch (agg) {
    case Aggregator::kMean: {
      double sum = 0;
      for (const double v : vals) sum += v;
      return FieldValue(sum / static_cast<double>(vals.size()));
    }
    case Aggregator::kSum: {
      double sum = 0;
      for (const double v : vals) sum += v;
      return FieldValue(sum);
    }
    case Aggregator::kMin:
      return FieldValue(*std::min_element(vals.begin(), vals.end()));
    case Aggregator::kMax:
      return FieldValue(*std::max_element(vals.begin(), vals.end()));
    case Aggregator::kSpread: {
      const auto [mn, mx] = std::minmax_element(vals.begin(), vals.end());
      return FieldValue(*mx - *mn);
    }
    case Aggregator::kStddev: {
      if (vals.size() < 2) return FieldValue(0.0);
      double sum = 0;
      for (const double v : vals) sum += v;
      const double mean = sum / static_cast<double>(vals.size());
      double ss = 0;
      for (const double v : vals) ss += (v - mean) * (v - mean);
      return FieldValue(std::sqrt(ss / static_cast<double>(vals.size() - 1)));
    }
    case Aggregator::kMedian: {
      std::sort(vals.begin(), vals.end());
      const std::size_t n = vals.size();
      return FieldValue(n % 2 == 1 ? vals[n / 2] : 0.5 * (vals[n / 2 - 1] + vals[n / 2]));
    }
    case Aggregator::kPercentile: {
      std::sort(vals.begin(), vals.end());
      const double p = std::clamp(param, 0.0, 100.0);
      // Nearest-rank.
      const std::size_t rank = static_cast<std::size_t>(
          std::ceil(p / 100.0 * static_cast<double>(vals.size())));
      return FieldValue(vals[rank == 0 ? 0 : rank - 1]);
    }
    default:
      return std::nullopt;
  }
}

/// Series of (time, value) per selected expression, post-aggregation.
using ColumnSeries = std::map<TimeNs, FieldValue>;

ColumnSeries evaluate_expr(const FieldExpr& fe, const SamplesView& view,
                           const SelectStatement& sel) {
  ColumnSeries out;
  const auto& samples = view.samples;
  if (fe.agg == Aggregator::kDerivative || fe.agg == Aggregator::kRate) {
    // First reduce to one value per point (window-mean when grouped).
    std::vector<Sample> base;
    if (sel.group_by_time) {
      const TimeNs dur = *sel.group_by_time;
      std::map<TimeNs, std::vector<Sample>> windows;
      for (const auto& s : samples) {
        windows[(s.t / dur) * dur].push_back(s);
      }
      for (const auto& [start, ws] : windows) {
        if (auto v = apply_aggregator(Aggregator::kMean, 0, ws)) {
          base.push_back(Sample{start, *v});
        }
      }
    } else {
      for (const auto& s : samples) {
        if (s.v.is_numeric()) base.push_back(s);
      }
    }
    const TimeNs unit = fe.unit > 0 ? fe.unit : util::kNanosPerSecond;
    for (std::size_t i = 1; i < base.size(); ++i) {
      const double dt_units =
          static_cast<double>(base[i].t - base[i - 1].t) / static_cast<double>(unit);
      if (dt_units <= 0) continue;
      double d = (base[i].v.as_double() - base[i - 1].v.as_double()) / dt_units;
      if (fe.agg == Aggregator::kRate && d < 0) d = 0;
      out[base[i].t] = FieldValue(d);
    }
    return out;
  }
  if (fe.agg == Aggregator::kNone) {
    for (const auto& s : samples) out[s.t] = s.v;
    return out;
  }
  if (sel.group_by_time) {
    const TimeNs dur = *sel.group_by_time;
    std::map<TimeNs, std::vector<Sample>> windows;
    for (const auto& s : samples) {
      windows[(s.t / dur) * dur].push_back(s);
    }
    for (const auto& [start, ws] : windows) {
      if (auto v = apply_aggregator(fe.agg, fe.param, ws)) out[start] = *v;
    }
    return out;
  }
  // Whole-range aggregate: single row stamped at the range start.
  if (auto v = apply_aggregator(fe.agg, fe.param, samples)) {
    out[sel.time_min.value_or(samples.empty() ? 0 : samples.front().t)] = *v;
  }
  return out;
}

ResultSeries build_result_series(const SelectStatement& sel, const std::string& name,
                                 std::vector<Tag> group_tags,
                                 const std::vector<ColumnSeries>& columns) {
  ResultSeries rs;
  rs.name = name;
  rs.tags = std::move(group_tags);
  rs.columns.push_back("time");
  for (const auto& fe : sel.fields) rs.columns.push_back(fe.alias);

  // Row key set: union of all column timestamps; with fill + bounded range +
  // group_by_time, generate the full window grid instead.
  std::vector<TimeNs> row_times;
  if (sel.group_by_time && sel.fill != FillMode::kNone && sel.time_min && sel.time_max) {
    const TimeNs dur = *sel.group_by_time;
    for (TimeNs t = (*sel.time_min / dur) * dur; t < *sel.time_max; t += dur) {
      row_times.push_back(t);
    }
  } else {
    std::set<TimeNs> keys;
    for (const auto& col : columns) {
      for (const auto& [t, _] : col) keys.insert(t);
    }
    row_times.assign(keys.begin(), keys.end());
  }

  std::vector<FieldValue> previous(columns.size(), FieldValue(0.0));
  std::vector<bool> has_previous(columns.size(), false);
  for (const TimeNs t : row_times) {
    std::vector<FieldValue> row;
    row.reserve(columns.size() + 1);
    row.emplace_back(static_cast<std::int64_t>(t));
    bool any = false;
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const auto it = columns[c].find(t);
      if (it != columns[c].end()) {
        row.push_back(it->second);
        previous[c] = it->second;
        has_previous[c] = true;
        any = true;
      } else {
        switch (sel.fill) {
          case FillMode::kZero:
            row.emplace_back(0.0);
            break;
          case FillMode::kPrevious:
            row.push_back(has_previous[c] ? previous[c] : FieldValue(0.0));
            break;
          default:
            row.push_back(null_cell());
            break;
        }
      }
    }
    if (!any && sel.fill == FillMode::kNone) continue;
    rs.values.push_back(std::move(row));
  }
  if (sel.order_desc) std::reverse(rs.values.begin(), rs.values.end());
  if (sel.limit && rs.values.size() > *sel.limit) rs.values.resize(*sel.limit);
  return rs;
}

util::Result<QueryResult> execute_select(const Database& db, const SelectStatement& sel,
                                         StatsCollector* sc, bool explain_only) {
  QueryResult result;
  // Tag equality conditions narrow the series set through the index;
  // negations and glob matches filter the candidates afterwards.
  std::vector<Tag> required;
  for (const auto& tc : sel.tag_conditions) {
    if (!tc.negated && !tc.glob) required.emplace_back(tc.key, tc.value);
  }
  std::vector<const Series*> candidates = db.series_matching(sel.measurement, required);
  candidates.erase(
      std::remove_if(candidates.begin(), candidates.end(),
                     [&](const Series* s) {
                       for (const auto& tc : sel.tag_conditions) {
                         const std::string_view v = s->tag(tc.key);
                         if (tc.glob) {
                           const bool matched = util::glob_match(tc.value, v);
                           if (matched == tc.negated) return true;
                         } else if (tc.negated && v == tc.value) {
                           return true;
                         }
                       }
                       return false;
                     }),
      candidates.end());
  if (sc != nullptr) {
    sc->stats.measurements_scanned += 1;
    sc->stats.series_scanned += candidates.size();
    for (const Series* s : candidates) {
      sc->shards.insert(db.shard_of_key(s->measurement, s->tags));
    }
  }
  if (candidates.empty()) return result;

  // Group series by the group-by tag values ("*" = every tag distinct).
  const bool group_all =
      std::find(sel.group_by_tags.begin(), sel.group_by_tags.end(), "*") !=
      sel.group_by_tags.end();
  std::map<std::vector<Tag>, std::vector<const Series*>> groups;
  for (const Series* s : candidates) {
    std::vector<Tag> key;
    if (group_all) {
      key = s->tags;
    } else {
      for (const auto& tk : sel.group_by_tags) {
        key.emplace_back(tk, std::string(s->tag(tk)));
      }
    }
    groups[key].push_back(s);
  }

  std::uint64_t* points_counter = sc != nullptr ? &sc->stats.points_examined : nullptr;
  for (const auto& [group_tags, group_series] : groups) {
    std::vector<ColumnSeries> columns;
    columns.reserve(sel.fields.size());
    for (const auto& fe : sel.fields) {
      const SamplesView view = gather(group_series, fe.field, sel.time_min, sel.time_max,
                                      points_counter, /*materialize=*/!explain_only);
      if (explain_only) continue;
      columns.push_back(evaluate_expr(fe, view, sel));
    }
    if (explain_only) continue;
    ResultSeries rs = build_result_series(sel, sel.measurement, group_tags, columns);
    if (!rs.values.empty()) result.series.push_back(std::move(rs));
  }
  return result;
}

ResultSeries single_column_series(std::string name, std::string column,
                                  const std::vector<std::string>& values) {
  ResultSeries rs;
  rs.name = std::move(name);
  rs.columns.push_back(std::move(column));
  for (const auto& v : values) {
    rs.values.push_back({FieldValue(v)});
  }
  return rs;
}

}  // namespace

util::Result<QueryResult> execute(const Database& db, const Statement& stmt,
                                  QueryStats* stats) {
  StatsCollector collector;
  StatsCollector* sc = stats != nullptr ? &collector : nullptr;
  const auto finish = [&](util::Result<QueryResult> r) {
    if (stats != nullptr) {
      collector.stats.shards_touched = collector.shards.size();
      *stats = collector.stats;
    }
    return r;
  };
  switch (stmt.kind) {
    case StatementKind::kSelect: {
      // Measurement globs ("likwid_*"): run the select once per matching
      // measurement and concatenate, with each result series keeping its
      // concrete measurement name.
      if (stmt.select.measurement.find('*') != std::string::npos ||
          stmt.select.measurement.find('?') != std::string::npos) {
        QueryResult combined;
        for (const auto& m : db.measurements()) {
          if (!util::glob_match(stmt.select.measurement, m)) continue;
          SelectStatement per = stmt.select;
          per.measurement = m;
          auto r = execute_select(db, per, sc, stmt.explain);
          if (!r.ok()) return finish(std::move(r));
          for (auto& rs : r->series) combined.series.push_back(std::move(rs));
        }
        return finish(std::move(combined));
      }
      return finish(execute_select(db, stmt.select, sc, stmt.explain));
    }
    case StatementKind::kShowMeasurements: {
      QueryResult r;
      r.series.push_back(single_column_series("measurements", "name", db.measurements()));
      return r;
    }
    case StatementKind::kShowSeries: {
      std::vector<std::string> keys;
      const std::vector<std::string> measurements =
          stmt.measurement.empty() ? db.measurements()
                                   : std::vector<std::string>{stmt.measurement};
      for (const auto& m : measurements) {
        for (const Series* s : db.series_of(m)) {
          std::string key = s->measurement;
          for (const auto& [k, v] : s->tags) {
            key += "," + k + "=" + v;
          }
          keys.push_back(std::move(key));
        }
      }
      std::sort(keys.begin(), keys.end());
      QueryResult r;
      r.series.push_back(single_column_series("series", "key", keys));
      return r;
    }
    case StatementKind::kShowFieldKeys: {
      QueryResult r;
      r.series.push_back(
          single_column_series(stmt.measurement, "fieldKey", db.field_keys(stmt.measurement)));
      return r;
    }
    case StatementKind::kShowTagKeys: {
      QueryResult r;
      r.series.push_back(
          single_column_series(stmt.measurement, "tagKey", db.tag_keys(stmt.measurement)));
      return r;
    }
    case StatementKind::kShowTagValues: {
      QueryResult r;
      r.series.push_back(single_column_series(
          stmt.measurement, "value", db.tag_values(stmt.measurement, stmt.with_key)));
      return r;
    }
    case StatementKind::kShowDatabases:
      return util::Result<QueryResult>::error("SHOW DATABASES must be run via the Engine");
  }
  return util::Result<QueryResult>::error("unhandled statement kind");
}

util::Result<QueryResult> execute(const ReadSnapshot& snapshot, const Statement& stmt,
                                  QueryStats* stats) {
  if (!snapshot) {
    return util::Result<QueryResult>::error("query against empty snapshot");
  }
  return execute(*snapshot, stmt, stats);
}

util::Result<QueryResult> Engine::query(const std::string& db, std::string_view query_text,
                                        TimeNs now, QueryStats* stats) {
  auto stmt = parse_query(query_text, now);
  if (!stmt.ok()) return util::Result<QueryResult>::error(stmt.message());
  if (stmt->kind == StatementKind::kShowDatabases) {
    QueryResult r;
    ResultSeries rs;
    rs.name = "databases";
    rs.columns.push_back("name");
    for (const auto& name : storage_.databases()) {
      rs.values.push_back({FieldValue(name)});
    }
    r.series.push_back(std::move(rs));
    return r;
  }
  const ReadSnapshot snap = storage_.snapshot(db);
  if (!snap) {
    return util::Result<QueryResult>::error("database '" + db + "' not found");
  }
  return execute(*snap, *stmt, stats);
}

namespace {

json::Value field_to_json(const FieldValue& v) {
  if (is_null_cell(v)) return json::Value(nullptr);
  if (v.is_double()) return json::Value(v.as_double());
  if (v.is_int()) return json::Value(v.as_int());
  if (v.is_bool()) return json::Value(v.as_bool());
  return json::Value(v.as_string());
}

}  // namespace

std::string to_influx_json(const QueryResult& result) {
  json::Array series_arr;
  for (const auto& rs : result.series) {
    json::Object s;
    s["name"] = rs.name;
    if (!rs.tags.empty()) {
      json::Object tags;
      for (const auto& [k, v] : rs.tags) tags[k] = v;
      s["tags"] = std::move(tags);
    }
    json::Array cols;
    for (const auto& c : rs.columns) cols.emplace_back(c);
    s["columns"] = std::move(cols);
    json::Array rows;
    for (const auto& row : rs.values) {
      json::Array r;
      for (const auto& v : row) r.push_back(field_to_json(v));
      rows.emplace_back(std::move(r));
    }
    s["values"] = std::move(rows);
    series_arr.emplace_back(std::move(s));
  }
  json::Object stmt;
  stmt["statement_id"] = 0;
  stmt["series"] = std::move(series_arr);
  json::Object top;
  top["results"] = json::Array{json::Value(std::move(stmt))};
  return json::Value(std::move(top)).dump();
}

std::string influx_error_json(std::string_view message) {
  json::Object top;
  top["error"] = std::string(message);
  return json::Value(std::move(top)).dump();
}

}  // namespace lms::tsdb
