#include "lms/tsdb/persist.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "lms/lineproto/codec.hpp"
#include "lms/util/strings.hpp"

namespace lms::tsdb {

std::string dump_database(const Database& db) {
  std::string out;
  for (const auto& measurement : db.measurements()) {
    for (const Series* series : db.series_of(measurement)) {
      // Re-merge the field columns into points keyed by timestamp so one
      // line carries all fields sampled together.
      std::map<TimeNs, lineproto::Point> points;
      for (const auto& [field, column] : series->columns) {
        for (std::size_t i = 0; i < column.size(); ++i) {
          const TimeNs t = column.times()[i];
          auto it = points.find(t);
          if (it == points.end()) {
            lineproto::Point p;
            p.measurement = series->measurement;
            p.tags = series->tags;
            p.timestamp = t;
            it = points.emplace(t, std::move(p)).first;
          }
          it->second.add_field(field, column.values()[i]);
        }
      }
      for (const auto& [t, p] : points) {
        out += lineproto::serialize(p);
        out.push_back('\n');
      }
    }
  }
  return out;
}

util::Status save_snapshot(Storage& storage, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) return util::Status::error("cannot open '" + tmp + "' for writing");
    file << "# lms-snapshot v1\n";
    for (const auto& name : storage.databases()) {
      const ReadSnapshot snap = storage.snapshot(name);
      if (!snap) continue;
      file << "# database: " << name << "\n";
      file << dump_database(*snap);
    }
    if (!file.good()) return util::Status::error("write to '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return util::Status::error("rename to '" + path + "' failed");
  }
  return {};
}

util::Result<std::size_t> load_snapshot(Storage& storage, const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return util::Result<std::size_t>::error("cannot open '" + path + "'");
  }
  std::string current_db = "lms";
  std::size_t loaded = 0;
  std::string line;
  std::vector<lineproto::Point> batch;
  auto flush = [&] {
    if (batch.empty()) return;
    storage.write(current_db, batch, 0);
    loaded += batch.size();
    batch.clear();
  };
  bool header_seen = false;
  while (std::getline(file, line)) {
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '#') {
      if (util::starts_with(trimmed, "# lms-snapshot")) {
        header_seen = true;
      } else if (util::starts_with(trimmed, "# database:")) {
        flush();
        current_db = std::string(util::trim(trimmed.substr(sizeof("# database:") - 1)));
      }
      continue;
    }
    auto p = lineproto::parse_line(trimmed);
    if (!p.ok()) {
      return util::Result<std::size_t>::error("snapshot '" + path + "': " + p.message());
    }
    batch.push_back(p.take());
    if (batch.size() >= 1000) flush();
  }
  flush();
  if (!header_seen) {
    return util::Result<std::size_t>::error("'" + path + "' is not an lms snapshot");
  }
  return loaded;
}

}  // namespace lms::tsdb
