#include "lms/tsdb/continuous.hpp"

#include "lms/util/logging.hpp"

namespace lms::tsdb {

CqRunner::CqRunner(Storage& storage, std::string database)
    : CqRunner(storage, std::move(database), Options()) {}

CqRunner::CqRunner(Storage& storage, std::string database, Options options)
    : storage_(storage), database_(std::move(database)), options_(options) {}

CqRunner::~CqRunner() { detach(); }

void CqRunner::on_attach(core::TaskScheduler& sched) {
  const TimeNs interval =
      options_.run_interval > 0 ? options_.run_interval : util::kNanosPerSecond;
  const util::Clock* clock =
      options_.clock != nullptr ? options_.clock : &util::WallClock::instance();
  task_ = sched.submit_periodic("tsdb.cq_runner", interval,
                                [this, clock] { run(clock->now()); });
}

void CqRunner::on_detach() { task_.cancel(); }

void CqRunner::add(ContinuousQuery query) {
  queries_.push_back(Registered{std::move(query), 0});
}

std::vector<ContinuousQuery> CqRunner::queries() const {
  std::vector<ContinuousQuery> view;
  view.reserve(queries_.size());
  for (const auto& r : queries_) view.push_back(r.query);
  return view;
}

std::size_t CqRunner::run(TimeNs now) {
  std::size_t written = 0;
  for (auto& registered : queries_) {
    written += run_one(registered, now);
  }
  return written;
}

std::size_t CqRunner::run_one(Registered& registered, TimeNs now) {
  const ContinuousQuery& cq = registered.query;
  // Process only complete windows that are `lag` old.
  const TimeNs horizon = ((now - options_.lag) / cq.window) * cq.window;
  if (horizon <= registered.watermark) return 0;

  Statement stmt;
  stmt.kind = StatementKind::kSelect;
  SelectStatement& sel = stmt.select;
  for (const auto& [field, agg] : cq.fields) {
    FieldExpr fe;
    fe.agg = agg;
    fe.field = field;
    fe.alias = field;  // aggregator name appended below per output field
    sel.fields.push_back(std::move(fe));
  }
  sel.measurement = cq.source_measurement;
  sel.time_min = registered.watermark;
  sel.time_max = horizon;
  sel.group_by_time = cq.window;
  sel.group_by_tags = cq.group_tags;

  QueryResult result;
  {
    const ReadSnapshot snap = storage_.snapshot(database_);
    if (!snap) return 0;
    auto r = execute(snap, stmt);
    if (!r.ok()) {
      LMS_WARN("cq") << cq.name << ": " << r.message();
      return 0;
    }
    result = r.take();
  }

  std::vector<lineproto::Point> rollups;
  for (const auto& series : result.series) {
    for (const auto& row : series.values) {
      if (row.empty()) continue;
      lineproto::Point p;
      p.measurement = cq.target_measurement;
      for (const auto& [k, v] : series.tags) {
        if (!v.empty()) p.set_tag(k, v);
      }
      p.timestamp = row[0].as_int();
      for (std::size_t c = 0; c < cq.fields.size() && c + 1 < row.size(); ++c) {
        if (is_null_cell(row[c + 1])) continue;
        const std::string key =
            cq.fields[c].first + "_" +
            [&] {
              switch (cq.fields[c].second) {
                case Aggregator::kMean:
                  return "mean";
                case Aggregator::kMax:
                  return "max";
                case Aggregator::kMin:
                  return "min";
                case Aggregator::kSum:
                  return "sum";
                case Aggregator::kCount:
                  return "count";
                default:
                  return "agg";
              }
            }();
        p.add_field(key, row[c + 1]);
      }
      if (!p.fields.empty()) {
        p.normalize();
        rollups.push_back(std::move(p));
      }
    }
  }
  registered.watermark = horizon;
  if (rollups.empty()) return 0;
  storage_.write(database_, rollups, now);
  return rollups.size();
}

}  // namespace lms::tsdb
