#include "lms/tsdb/storage.hpp"

#include <algorithm>
#include <mutex>

namespace lms::tsdb {

void Column::append(TimeNs t, FieldValue v) {
  if (times_.empty() || t >= times_.back()) {
    times_.push_back(t);
    values_.push_back(std::move(v));
    return;
  }
  // Out-of-order write: sorted insert (rare path).
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const auto idx = static_cast<std::size_t>(it - times_.begin());
  times_.insert(it, t);
  values_.insert(values_.begin() + static_cast<std::ptrdiff_t>(idx), std::move(v));
}

std::size_t Column::lower_bound(TimeNs t) const {
  return static_cast<std::size_t>(std::lower_bound(times_.begin(), times_.end(), t) -
                                  times_.begin());
}

std::size_t Column::drop_before(TimeNs cutoff) {
  const std::size_t n = lower_bound(cutoff);
  if (n == 0) return 0;
  times_.erase(times_.begin(), times_.begin() + static_cast<std::ptrdiff_t>(n));
  values_.erase(values_.begin(), values_.begin() + static_cast<std::ptrdiff_t>(n));
  return n;
}

std::string_view Series::tag(std::string_view key) const {
  for (const auto& [k, v] : tags) {
    if (k == key) return v;
  }
  return {};
}

void Database::write(const Point& point, TimeNs default_time) {
  SeriesKey key{point.measurement, point.tags};
  auto it = series_.find(key);
  if (it == series_.end()) {
    auto s = std::make_unique<Series>();
    s->measurement = point.measurement;
    s->tags = point.tags;
    Series* raw = s.get();
    it = series_.emplace(std::move(key), std::move(s)).first;
    by_measurement_[point.measurement].insert(raw);
    auto& meas_index = index_[point.measurement];
    for (const auto& [tk, tv] : point.tags) {
      meas_index[tk][tv].insert(raw);
    }
  }
  Series& s = *it->second;
  const TimeNs t = point.timestamp != 0 ? point.timestamp : default_time;
  for (const auto& [fk, fv] : point.fields) {
    s.columns[fk].append(t, fv);
  }
}

std::vector<const Series*> Database::series_of(std::string_view measurement) const {
  std::vector<const Series*> out;
  const auto it = by_measurement_.find(std::string(measurement));
  if (it == by_measurement_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  return out;
}

std::vector<const Series*> Database::series_matching(
    std::string_view measurement, const std::vector<Tag>& required_tags) const {
  std::vector<const Series*> out;
  if (required_tags.empty()) return series_of(measurement);
  const auto mit = index_.find(std::string(measurement));
  if (mit == index_.end()) return out;
  // Intersect the per-tag posting sets, starting from the smallest.
  std::vector<const std::set<Series*>*> postings;
  for (const auto& [tk, tv] : required_tags) {
    const auto kit = mit->second.find(tk);
    if (kit == mit->second.end()) return out;
    const auto vit = kit->second.find(tv);
    if (vit == kit->second.end()) return out;
    postings.push_back(&vit->second);
  }
  std::sort(postings.begin(), postings.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  for (Series* candidate : *postings.front()) {
    bool in_all = true;
    for (std::size_t i = 1; i < postings.size(); ++i) {
      if (postings[i]->count(candidate) == 0) {
        in_all = false;
        break;
      }
    }
    if (in_all) out.push_back(candidate);
  }
  return out;
}

std::vector<std::string> Database::measurements() const {
  std::vector<std::string> out;
  out.reserve(by_measurement_.size());
  for (const auto& [m, _] : by_measurement_) out.push_back(m);
  return out;
}

std::vector<std::string> Database::field_keys(std::string_view measurement) const {
  std::set<std::string> keys;
  for (const Series* s : series_of(measurement)) {
    for (const auto& [k, _] : s->columns) keys.insert(k);
  }
  return {keys.begin(), keys.end()};
}

std::vector<std::string> Database::tag_keys(std::string_view measurement) const {
  std::vector<std::string> out;
  const auto it = index_.find(std::string(measurement));
  if (it == index_.end()) return out;
  for (const auto& [k, _] : it->second) out.push_back(k);
  return out;
}

std::vector<std::string> Database::tag_values(std::string_view measurement,
                                              std::string_view tag_key) const {
  std::vector<std::string> out;
  const auto it = index_.find(std::string(measurement));
  if (it == index_.end()) return out;
  const auto kit = it->second.find(std::string(tag_key));
  if (kit == it->second.end()) return out;
  for (const auto& [v, series_set] : kit->second) {
    if (!series_set.empty()) out.push_back(v);
  }
  return out;
}

std::size_t Database::sample_count() const {
  std::size_t n = 0;
  for (const auto& [_, s] : series_) {
    for (const auto& [__, col] : s->columns) n += col.size();
  }
  return n;
}

std::size_t Database::series_count() const { return series_.size(); }

std::size_t Database::drop_before(TimeNs cutoff) {
  return drop_before_if(cutoff, [](const std::string&) { return true; });
}

std::size_t Database::drop_before_if(TimeNs cutoff,
                                     const std::function<bool(const std::string&)>& pred) {
  std::size_t dropped = 0;
  for (auto it = series_.begin(); it != series_.end();) {
    Series& s = *it->second;
    if (!pred(s.measurement)) {
      ++it;
      continue;
    }
    bool all_empty = true;
    for (auto cit = s.columns.begin(); cit != s.columns.end();) {
      dropped += cit->second.drop_before(cutoff);
      if (cit->second.empty()) {
        cit = s.columns.erase(cit);
      } else {
        all_empty = false;
        ++cit;
      }
    }
    if (all_empty) {
      Series* raw = it->second.get();
      by_measurement_[s.measurement].erase(raw);
      auto& meas_index = index_[s.measurement];
      for (const auto& [tk, tv] : s.tags) {
        meas_index[tk][tv].erase(raw);
      }
      it = series_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

Database& Storage::database(const std::string& name) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = dbs_.find(name);
  if (it == dbs_.end()) {
    it = dbs_.emplace(name, std::make_unique<Database>(name)).first;
  }
  return *it->second;
}

Database* Storage::find_database(const std::string& name) {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return find_database_unlocked(name);
}

Database* Storage::find_database_unlocked(const std::string& name) {
  const auto it = dbs_.find(name);
  return it != dbs_.end() ? it->second.get() : nullptr;
}

void Storage::write(const std::string& db, const std::vector<Point>& points,
                    TimeNs default_time) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = dbs_.find(db);
  if (it == dbs_.end()) {
    it = dbs_.emplace(db, std::make_unique<Database>(db)).first;
  }
  for (const auto& p : points) {
    it->second->write(p, default_time);
  }
}

std::vector<std::string> Storage::databases() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(dbs_.size());
  for (const auto& [name, _] : dbs_) out.push_back(name);
  return out;
}

std::size_t Storage::drop_before(TimeNs cutoff) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  std::size_t dropped = 0;
  for (auto& [_, db] : dbs_) dropped += db->drop_before(cutoff);
  return dropped;
}

std::size_t Storage::drop_before_if(TimeNs cutoff,
                                    const std::function<bool(const std::string&)>& pred) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  std::size_t dropped = 0;
  for (auto& [_, db] : dbs_) dropped += db->drop_before_if(cutoff, pred);
  return dropped;
}

}  // namespace lms::tsdb
