#include "lms/tsdb/storage.hpp"

#include <algorithm>
#include <thread>

namespace lms::tsdb {

void Column::append(TimeNs t, FieldValue v) {
  if (times_.empty() || t >= times_.back()) {
    times_.push_back(t);
    values_.push_back(std::move(v));
    return;
  }
  // Out-of-order write: sorted insert (rare path).
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const auto idx = static_cast<std::size_t>(it - times_.begin());
  times_.insert(it, t);
  values_.insert(values_.begin() + static_cast<std::ptrdiff_t>(idx), std::move(v));
}

std::size_t Column::lower_bound(TimeNs t) const {
  return static_cast<std::size_t>(std::lower_bound(times_.begin(), times_.end(), t) -
                                  times_.begin());
}

std::size_t Column::drop_before(TimeNs cutoff) {
  const std::size_t n = lower_bound(cutoff);
  if (n == 0) return 0;
  times_.erase(times_.begin(), times_.begin() + static_cast<std::ptrdiff_t>(n));
  values_.erase(values_.begin(), values_.begin() + static_cast<std::ptrdiff_t>(n));
  return n;
}

std::string_view Series::tag(std::string_view key) const {
  for (const auto& [k, v] : tags) {
    if (k == key) return v;
  }
  return {};
}

// ---------------------------------------------------------------- snapshot

ReadSnapshot::ReadSnapshot(const Database& db) : db_(&db) {
  // All-or-nothing acquisition: block on stripe 0, then try the rest. If a
  // stripe is write-locked, drop everything and start over — holding some
  // stripes while blocked on another would stall writers on the held ones
  // (a lock convoy under mixed load). Bounded retries, then a blocking pass
  // in fixed 0..N-1 order (deadlock-free: concurrent snapshots acquire in
  // the same order and writers only ever hold a single stripe). The rank
  // checker enforces the ordered fallback: stripes share Rank::kTsdbShard
  // with seq = stripe index, so a blocking acquire out of index order aborts.
  locks_.reserve(db.shards_.size());
  const auto unlock_all = [this] {
    for (auto* mu : locks_) mu->unlock_shared();
    locks_.clear();
  };
  for (int attempt = 0; attempt < 16; ++attempt) {
    db.shards_[0]->mu.lock_shared();
    locks_.push_back(&db.shards_[0]->mu);
    bool all = true;
    for (std::size_t i = 1; i < db.shards_.size(); ++i) {
      core::sync::SharedMutex& mu = db.shards_[i]->mu;
      if (!mu.try_lock_shared()) {
        all = false;
        break;
      }
      locks_.push_back(&mu);
    }
    if (all) return;
    unlock_all();
    std::this_thread::yield();
  }
  for (const auto& shard : db.shards_) {
    shard->mu.lock_shared();
    locks_.push_back(&shard->mu);
  }
}

void ReadSnapshot::release() {
  for (auto* mu : locks_) mu->unlock_shared();
  locks_.clear();
  db_ = nullptr;
}

// ---------------------------------------------------------------- database

namespace {

/// FNV-1a over the series identity (measurement + sorted tag set). The tag
/// set is sorted on normalized points, so the hash is canonical.
std::size_t series_hash(std::string_view measurement, const std::vector<Tag>& tags) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0xff;  // separator so ("ab","c") != ("a","bc")
    h *= 1099511628211ULL;
  };
  mix(measurement);
  for (const auto& [k, v] : tags) {
    mix(k);
    mix(v);
  }
  return static_cast<std::size_t>(h);
}

}  // namespace

Database::Database(std::string name, std::size_t shard_count) : name_(std::move(name)) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(i));
  }
}

std::size_t Database::shard_of(const Point& point) const {
  return series_hash(point.measurement, point.tags) % shards_.size();
}

std::size_t Database::shard_of_key(std::string_view measurement,
                                   const std::vector<Tag>& tags) const {
  return series_hash(measurement, tags) % shards_.size();
}

void Database::write_into(Shard& shard, const Point& point, TimeNs t) const {
  SeriesKey key{point.measurement, point.tags};
  auto it = shard.series.find(key);
  if (it == shard.series.end()) {
    auto s = std::make_unique<Series>();
    s->measurement = point.measurement;
    s->tags = point.tags;
    Series* raw = s.get();
    it = shard.series.emplace(std::move(key), std::move(s)).first;
    shard.by_measurement[point.measurement].insert(raw);
    auto& meas_index = shard.index[point.measurement];
    for (const auto& [tk, tv] : point.tags) {
      meas_index[tk][tv].insert(raw);
    }
  }
  Series& s = *it->second;
  for (const auto& [fk, fv] : point.fields) {
    s.columns[fk].append(t, fv);
  }
}

void Database::write(const Point& point, TimeNs default_time) {
  Shard& shard = *shards_[shard_of(point)];
  const TimeNs t = point.timestamp != 0 ? point.timestamp : default_time;
  const core::sync::WriteLockGuard lock(shard.mu);
  write_into(shard, point, t);
}

void Database::apply_group(Shard& shard, const StagedGroup& group) const {
  for (const Point* p : *group.bucket) {
    const TimeNs t =
        p->timestamp != 0 ? p->timestamp * group.timestamp_scale : group.default_time;
    write_into(shard, *p, t);
  }
}

void Database::drain_stage(Shard& shard) {
  for (;;) {
    std::vector<StagedGroup*> groups;
    {
      const core::sync::LockGuard lock(shard.stage_mu);
      if (shard.staged.empty()) {
        shard.drain_pending = false;
        return;
      }
      groups.swap(shard.staged);
    }
    {
      // The one blocking stripe acquisition on this path: every group staged
      // while the stripe was busy lands under it together.
      const core::sync::WriteLockGuard lock(shard.mu);
      for (const StagedGroup* g : groups) apply_group(shard, *g);
    }
    {
      const core::sync::LockGuard lock(shard.stage_mu);
      for (StagedGroup* g : groups) g->done = true;
    }
    shard.stage_cv.notify_all();
  }
}

void Database::write_batch(const std::vector<Point>& points, TimeNs default_time,
                           TimeNs timestamp_scale) {
  if (points.empty()) return;
  if (timestamp_scale <= 0) timestamp_scale = 1;
  if (shards_.size() == 1) {
    Shard& shard = *shards_[0];
    const core::sync::WriteLockGuard lock(shard.mu);
    for (const auto& p : points) {
      const TimeNs t = p.timestamp != 0 ? p.timestamp * timestamp_scale : default_time;
      write_into(shard, p, t);
    }
    return;
  }
  // Bucket per stripe so each stripe mutex is taken exactly once per batch.
  std::vector<std::vector<const Point*>> buckets(shards_.size());
  for (const auto& p : points) {
    buckets[shard_of(p)].push_back(&p);
  }
  // Offload is off without a scheduler, and a scheduler worker always writes
  // inline: a worker blocking on a drain pinned to its own lane would
  // deadlock, and the flusher task already owns its batch end to end.
  core::TaskScheduler* sched = sched_.load(std::memory_order_acquire);
  if (sched != nullptr &&
      (sched->manual() || sched->stopped() || core::TaskScheduler::on_worker_thread())) {
    sched = nullptr;
  }
  std::vector<StagedGroup> staged;
  std::vector<Shard*> staged_shards;
  if (sched != nullptr) {
    staged.reserve(buckets.size());  // stable addresses: drains hold pointers
    staged_shards.reserve(buckets.size());
  }
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].empty()) continue;
    Shard& shard = *shards_[i];
    if (sched == nullptr) {
      const core::sync::WriteLockGuard lock(shard.mu);
      for (const Point* p : buckets[i]) {
        const TimeNs t = p->timestamp != 0 ? p->timestamp * timestamp_scale : default_time;
        write_into(shard, *p, t);
      }
      continue;
    }
    StagedGroup group{&buckets[i], default_time, timestamp_scale, false};
    if (shard.mu.try_lock()) {
      // Uncontended stripe: apply inline, no convoy to join.
      apply_group(shard, group);
      shard.mu.unlock();
      continue;
    }
    // Contended: park the group and let the stripe's drain task batch it
    // with everyone else's instead of piling onto the stripe mutex.
    staged.push_back(group);
    staged_shards.push_back(&shard);
    bool schedule = false;
    {
      const core::sync::LockGuard lock(shard.stage_mu);
      shard.staged.push_back(&staged.back());
      if (!shard.drain_pending) {
        shard.drain_pending = true;
        schedule = true;
      }
    }
    if (schedule) {
      sched->submit([this, &shard] { drain_stage(shard); },
                    static_cast<std::uint64_t>(i));
    }
  }
  // Wait for every staged group: write_batch keeps read-your-writes.
  for (std::size_t i = 0; i < staged.size(); ++i) {
    Shard& shard = *staged_shards[i];
    core::sync::UniqueLock lock(shard.stage_mu);
    while (!staged[i].done) shard.stage_cv.wait(lock);
  }
}

std::vector<const Series*> Database::series_of(std::string_view measurement) const {
  std::vector<const Series*> out;
  const std::string key(measurement);
  for (const auto& shard : shards_) {
    const auto it = shard->by_measurement.find(key);
    if (it == shard->by_measurement.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

std::vector<const Series*> Database::series_matching(
    std::string_view measurement, const std::vector<Tag>& required_tags) const {
  if (required_tags.empty()) return series_of(measurement);
  std::vector<const Series*> out;
  const std::string meas(measurement);
  for (const auto& shard : shards_) {
    const auto mit = shard->index.find(meas);
    if (mit == shard->index.end()) continue;
    // Intersect the per-tag posting sets, starting from the smallest.
    std::vector<const std::set<Series*>*> postings;
    bool missing = false;
    for (const auto& [tk, tv] : required_tags) {
      const auto kit = mit->second.find(tk);
      if (kit == mit->second.end()) {
        missing = true;
        break;
      }
      const auto vit = kit->second.find(tv);
      if (vit == kit->second.end()) {
        missing = true;
        break;
      }
      postings.push_back(&vit->second);
    }
    if (missing) continue;
    std::sort(postings.begin(), postings.end(),
              [](const auto* a, const auto* b) { return a->size() < b->size(); });
    for (Series* candidate : *postings.front()) {
      bool in_all = true;
      for (std::size_t i = 1; i < postings.size(); ++i) {
        if (postings[i]->count(candidate) == 0) {
          in_all = false;
          break;
        }
      }
      if (in_all) out.push_back(candidate);
    }
  }
  return out;
}

std::vector<std::string> Database::measurements() const {
  std::set<std::string> names;
  for (const auto& shard : shards_) {
    for (const auto& [m, _] : shard->by_measurement) {
      if (!_.empty()) names.insert(m);
    }
  }
  return {names.begin(), names.end()};
}

std::vector<std::string> Database::field_keys(std::string_view measurement) const {
  std::set<std::string> keys;
  for (const Series* s : series_of(measurement)) {
    for (const auto& [k, _] : s->columns) keys.insert(k);
  }
  return {keys.begin(), keys.end()};
}

std::vector<std::string> Database::tag_keys(std::string_view measurement) const {
  std::set<std::string> keys;
  const std::string meas(measurement);
  for (const auto& shard : shards_) {
    const auto it = shard->index.find(meas);
    if (it == shard->index.end()) continue;
    for (const auto& [k, _] : it->second) keys.insert(k);
  }
  return {keys.begin(), keys.end()};
}

std::vector<std::string> Database::tag_values(std::string_view measurement,
                                              std::string_view tag_key) const {
  std::set<std::string> values;
  const std::string meas(measurement);
  const std::string key(tag_key);
  for (const auto& shard : shards_) {
    const auto it = shard->index.find(meas);
    if (it == shard->index.end()) continue;
    const auto kit = it->second.find(key);
    if (kit == it->second.end()) continue;
    for (const auto& [v, series_set] : kit->second) {
      if (!series_set.empty()) values.insert(v);
    }
  }
  return {values.begin(), values.end()};
}

std::size_t Database::sample_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    for (const auto& [_, s] : shard->series) {
      for (const auto& [__, col] : s->columns) n += col.size();
    }
  }
  return n;
}

std::size_t Database::series_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->series.size();
  return n;
}

std::size_t Database::drop_before(TimeNs cutoff) {
  return drop_before_if(cutoff, [](const std::string&) { return true; });
}

std::size_t Database::drop_before_if(TimeNs cutoff,
                                     const std::function<bool(const std::string&)>& pred) {
  std::size_t dropped = 0;
  for (const auto& shard : shards_) {
    const core::sync::WriteLockGuard lock(shard->mu);
    dropped += drop_before_shard(*shard, cutoff, pred);
  }
  return dropped;
}

std::size_t Database::drop_before_shard(Shard& shard, TimeNs cutoff,
                                        const std::function<bool(const std::string&)>& pred) {
  std::size_t dropped = 0;
  for (auto it = shard.series.begin(); it != shard.series.end();) {
    Series& s = *it->second;
    if (!pred(s.measurement)) {
      ++it;
      continue;
    }
    bool all_empty = true;
    for (auto cit = s.columns.begin(); cit != s.columns.end();) {
      dropped += cit->second.drop_before(cutoff);
      if (cit->second.empty()) {
        cit = s.columns.erase(cit);
      } else {
        all_empty = false;
        ++cit;
      }
    }
    if (all_empty) {
      Series* raw = it->second.get();
      shard.by_measurement[s.measurement].erase(raw);
      auto& meas_index = shard.index[s.measurement];
      for (const auto& [tk, tv] : s.tags) {
        meas_index[tk][tv].erase(raw);
      }
      it = shard.series.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

// ---------------------------------------------------------------- storage

Database& Storage::get_or_create(const std::string& name) {
  {
    const core::sync::SharedLockGuard lock(mu_);
    const auto it = dbs_.find(name);
    if (it != dbs_.end()) return *it->second;
  }
  const core::sync::WriteLockGuard lock(mu_);
  auto it = dbs_.find(name);
  if (it == dbs_.end()) {
    it = dbs_.emplace(name, std::make_unique<Database>(name, shards_per_db_)).first;
    it->second->set_scheduler(sched_);
  }
  return *it->second;
}

void Storage::set_scheduler(core::TaskScheduler* sched) {
  const core::sync::WriteLockGuard lock(mu_);
  sched_ = sched;
  for (const auto& [_, db] : dbs_) db->set_scheduler(sched);
}

Database& Storage::database(const std::string& name) { return get_or_create(name); }

Database* Storage::find_database(const std::string& name) {
  const core::sync::SharedLockGuard lock(mu_);
  const auto it = dbs_.find(name);
  return it != dbs_.end() ? it->second.get() : nullptr;
}

ReadSnapshot Storage::snapshot(const std::string& name) const {
  const Database* db = nullptr;
  {
    const core::sync::SharedLockGuard lock(mu_);
    const auto it = dbs_.find(name);
    if (it != dbs_.end()) db = it->second.get();
  }
  // Databases are never destroyed, so the pointer stays valid after the map
  // lock is dropped; the snapshot then pins the shard contents.
  return db != nullptr ? ReadSnapshot(*db) : ReadSnapshot();
}

void Storage::write(const WriteBatch& batch) {
  get_or_create(batch.db).write_batch(batch.points, batch.default_time,
                                      batch.timestamp_scale);
}

void Storage::write(const std::string& db, const std::vector<Point>& points,
                    TimeNs default_time) {
  get_or_create(db).write_batch(points, default_time, 1);
}

std::vector<std::string> Storage::databases() const {
  const core::sync::SharedLockGuard lock(mu_);
  std::vector<std::string> out;
  out.reserve(dbs_.size());
  for (const auto& [name, _] : dbs_) out.push_back(name);
  return out;
}

Storage::Totals Storage::totals() const {
  Totals t;
  for (const auto& name : databases()) {
    const ReadSnapshot snap = snapshot(name);
    if (!snap) continue;
    ++t.databases;
    t.series += snap->series_count();
    t.samples += snap->sample_count();
  }
  return t;
}

std::size_t Storage::drop_before(TimeNs cutoff) {
  return drop_before_if(cutoff, [](const std::string&) { return true; });
}

std::size_t Storage::drop_before_if(TimeNs cutoff,
                                    const std::function<bool(const std::string&)>& pred) {
  std::size_t dropped = 0;
  for (const auto& name : databases()) {
    Database* db = find_database(name);
    if (db != nullptr) dropped += db->drop_before_if(cutoff, pred);
  }
  return dropped;
}

}  // namespace lms::tsdb
