#include "lms/obs/traceexport.hpp"

#include <cstdio>

#include "lms/lineproto/codec.hpp"
#include "lms/util/logging.hpp"

namespace lms::obs {

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

/// The self-contained span record carried in the "span" field. Ids are hex
/// strings (JSON numbers lose precision past 2^53), timings are integers.
std::string span_json(const SpanRecord& s) {
  std::string out = "{\"span_id\":\"";
  out += trace_id_hex(s.span_id);
  out += "\",\"parent\":\"";
  out += trace_id_hex(s.parent_span_id);
  out += "\",\"name\":\"";
  append_json_escaped(out, s.name);
  out += "\",\"start_ns\":";
  out += std::to_string(s.start_wall_ns);
  out += ",\"duration_ns\":";
  out += std::to_string(s.duration_ns);
  out += ",\"ok\":";
  out += s.ok ? "true" : "false";
  if (!s.note.empty()) {
    out += ",\"note\":\"";
    append_json_escaped(out, s.note);
    out += "\"";
  }
  out += "}";
  return out;
}

}  // namespace

lineproto::Point span_to_point(const SpanRecord& span, std::string_view measurement,
                               std::string_view host) {
  lineproto::Point p;
  p.measurement = std::string(measurement);
  p.set_tag("trace_id", trace_id_hex(span.trace_id));
  p.set_tag("component", span.component);
  if (!host.empty()) p.set_tag("host", host);
  p.add_field("span", span_json(span));
  p.add_field("duration_ns", span.duration_ns);
  p.add_field("name", span.name);
  p.timestamp = span.start_wall_ns;
  p.normalize();
  return p;
}

TraceExporter::TraceExporter(WriteFn write, Options options)
    : write_(std::move(write)),
      options_(std::move(options)),
      recorder_(options_.recorder != nullptr ? *options_.recorder : SpanRecorder::global()) {}

TraceExporter::~TraceExporter() { detach(); }

util::Status TraceExporter::export_once() {
  // Suppress tracing for the whole export: the write below travels through
  // the router like any batch, and spans about span export would feed back.
  const TraceSuppressGuard suppress;
  const std::vector<SpanRecord> spans = recorder_.drain(options_.max_spans_per_export);
  if (spans.empty()) return {};
  std::vector<lineproto::Point> points;
  points.reserve(spans.size());
  for (const SpanRecord& s : spans) {
    points.push_back(span_to_point(s, options_.measurement, options_.host));
  }
  util::Status status = write_(lineproto::serialize_batch(points));
  exports_.fetch_add(1, std::memory_order_relaxed);
  if (!status.ok()) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    spans_dropped_.fetch_add(spans.size(), std::memory_order_relaxed);
    LMS_WARN("obs") << "trace export failed (" << spans.size()
                    << " spans dropped): " << status.message();
    return status;
  }
  spans_exported_.fetch_add(spans.size(), std::memory_order_relaxed);
  return status;
}

void TraceExporter::on_attach(core::TaskScheduler& sched) {
  const util::TimeNs interval =
      options_.interval > 0 ? options_.interval : util::kNanosPerSecond;
  task_ = sched.submit_periodic("obs.traceexport", interval, [this] { export_once(); });
}

void TraceExporter::on_detach() {
  task_.cancel();
  // Final drain so spans recorded just before shutdown are not lost.
  export_once();
}

}  // namespace lms::obs
