#include "lms/obs/trace.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "lms/obs/metrics.hpp"
#include "lms/util/logging.hpp"

namespace lms::obs {

namespace {

thread_local TraceContext t_current;
thread_local int t_suppress_depth = 0;

std::atomic<bool> g_tracing_enabled{true};
/// Head-sampling state: the rate (double bits, for readback) plus the
/// precomputed uint64 threshold the per-trace hash is compared against.
std::atomic<std::uint64_t> g_sample_rate_bits{std::bit_cast<std::uint64_t>(1.0)};
std::atomic<std::uint64_t> g_sample_threshold{~0ULL};
std::atomic<bool> g_keep_errors{true};
std::atomic<std::int64_t> g_slow_keep_ns{0};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Log/trace correlation: installed into util::Logger at static-init time
/// (util cannot depend on obs, so the dependency is inverted through a
/// function pointer). Every binary that links obs gets correlated logs.
std::uint64_t current_trace_id_for_logging() { return t_current.trace_id; }

const bool g_log_provider_installed = [] {
  util::Logger::set_trace_provider(&current_trace_id_for_logging);
  return true;
}();

}  // namespace

TraceContext current_trace() { return t_current; }

std::uint64_t new_trace_id() {
  static std::atomic<std::uint64_t> counter{
      static_cast<std::uint64_t>(util::monotonic_now_ns())};
  std::uint64_t id = 0;
  while (id == 0) id = splitmix64(counter.fetch_add(1, std::memory_order_relaxed));
  return id;
}

std::string trace_id_hex(std::uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(id));
  return std::string(buf);
}

std::string format_trace_header(const TraceContext& ctx) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%016llx-%016llx%s",
                static_cast<unsigned long long>(ctx.trace_id),
                static_cast<unsigned long long>(ctx.span_id), ctx.sampled ? "" : "-u");
  return std::string(buf);
}

namespace {

std::optional<std::uint64_t> parse_hex16(std::string_view s) {
  if (s.size() != 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

}  // namespace

std::optional<std::uint64_t> parse_trace_id_hex(std::string_view s) { return parse_hex16(s); }

std::optional<TraceContext> parse_trace_header(std::string_view value) {
  bool sampled = true;
  if (value.size() == 35 && value.substr(33) == "-u") {
    sampled = false;
    value = value.substr(0, 33);
  }
  if (value.size() != 33 || value[16] != '-') return std::nullopt;
  const auto trace = parse_hex16(value.substr(0, 16));
  const auto span = parse_hex16(value.substr(17));
  if (!trace || !span || *trace == 0) return std::nullopt;
  return TraceContext{*trace, *span, sampled};
}

void set_tracing_enabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool tracing_enabled() { return g_tracing_enabled.load(std::memory_order_relaxed); }

void set_trace_sample_rate(double rate) {
  rate = std::clamp(rate, 0.0, 1.0);
  g_sample_rate_bits.store(std::bit_cast<std::uint64_t>(rate), std::memory_order_relaxed);
  // rate 1.0 maps to "every hash passes": 2^64 does not fit a uint64, so the
  // all-ones threshold is used (loses one trace in 2^64 — irrelevant).
  const std::uint64_t threshold =
      rate >= 1.0 ? ~0ULL : static_cast<std::uint64_t>(rate * 18446744073709551616.0);
  g_sample_threshold.store(threshold, std::memory_order_relaxed);
}

double trace_sample_rate() {
  return std::bit_cast<double>(g_sample_rate_bits.load(std::memory_order_relaxed));
}

bool trace_head_sampled(std::uint64_t trace_id) {
  const std::uint64_t threshold = g_sample_threshold.load(std::memory_order_relaxed);
  if (threshold == ~0ULL) return true;
  // Re-mix the id so the decision is independent of the id-generation
  // sequence (ids are themselves splitmix outputs of a counter).
  return splitmix64(trace_id ^ 0xa5a5a5a5a5a5a5a5ULL) < threshold;
}

void set_trace_keep_errors(bool keep) { g_keep_errors.store(keep, std::memory_order_relaxed); }
bool trace_keep_errors() { return g_keep_errors.load(std::memory_order_relaxed); }

void set_trace_slow_keep_ns(std::int64_t threshold_ns) {
  g_slow_keep_ns.store(threshold_ns, std::memory_order_relaxed);
}
std::int64_t trace_slow_keep_ns() { return g_slow_keep_ns.load(std::memory_order_relaxed); }

SpanRecorder::SpanRecorder(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

SpanRecorder& SpanRecorder::global() {
  static SpanRecorder recorder;
  return recorder;
}

void SpanRecorder::record(SpanRecord record) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  const core::sync::LockGuard lock(mu_);
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    evicted_.fetch_add(1, std::memory_order_relaxed);
  }
  ring_.push_back(std::move(record));
}

std::vector<SpanRecord> SpanRecorder::by_trace(std::uint64_t trace_id) const {
  const core::sync::LockGuard lock(mu_);
  std::vector<SpanRecord> out;
  for (const auto& r : ring_) {
    if (r.trace_id == trace_id) out.push_back(r);
  }
  return out;
}

std::vector<SpanRecord> SpanRecorder::recent(std::size_t n) const {
  const core::sync::LockGuard lock(mu_);
  const std::size_t count = std::min(n, ring_.size());
  return std::vector<SpanRecord>(ring_.end() - static_cast<std::ptrdiff_t>(count), ring_.end());
}

std::vector<SpanRecord> SpanRecorder::drain(std::size_t max_spans) {
  const core::sync::LockGuard lock(mu_);
  const std::size_t count =
      max_spans == 0 ? ring_.size() : std::min(max_spans, ring_.size());
  std::vector<SpanRecord> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(std::move(ring_.front()));
    ring_.pop_front();
  }
  drained_.fetch_add(count, std::memory_order_relaxed);
  return out;
}

std::size_t SpanRecorder::size() const {
  const core::sync::LockGuard lock(mu_);
  return ring_.size();
}

void SpanRecorder::clear() {
  const core::sync::LockGuard lock(mu_);
  ring_.clear();
}

Span::Span(std::string name, std::string component, SpanRecorder* recorder) {
  if (!tracing_enabled() || tracing_suppressed()) return;
  active_ = true;
  recorder_ = recorder != nullptr ? recorder : &SpanRecorder::global();
  prev_ = t_current;
  if (prev_.valid()) {
    ctx_.trace_id = prev_.trace_id;
    ctx_.sampled = prev_.sampled;
  } else {
    ctx_.trace_id = new_trace_id();
    ctx_.sampled = trace_head_sampled(ctx_.trace_id);
  }
  ctx_.span_id = new_trace_id();
  t_current = ctx_;
  name_ = std::move(name);
  component_ = std::move(component);
  start_mono_ = util::monotonic_now_ns();
  // Unsampled spans skip the wall-clock read; if a tail-keep rule fires the
  // destructor reconstructs the start from now - duration.
  if (ctx_.sampled) start_wall_ = util::WallClock::instance().now();
}

Span::~Span() {
  if (!active_) return;
  t_current = prev_;
  const std::int64_t duration = util::monotonic_now_ns() - start_mono_;
  if (!ctx_.sampled) {
    const std::int64_t slow = trace_slow_keep_ns();
    const bool keep =
        (!ok_ && trace_keep_errors()) || (slow > 0 && duration >= slow);
    if (!keep) return;
    start_wall_ = util::WallClock::instance().now() - duration;
  }
  SpanRecord r;
  r.trace_id = ctx_.trace_id;
  r.span_id = ctx_.span_id;
  r.parent_span_id = prev_.trace_id == ctx_.trace_id ? prev_.span_id : 0;
  r.name = std::move(name_);
  r.component = std::move(component_);
  r.start_wall_ns = start_wall_;
  r.duration_ns = duration;
  r.ok = ok_;
  r.note = std::move(note_);
  recorder_->record(std::move(r));
}

TraceSuppressGuard::TraceSuppressGuard() { ++t_suppress_depth; }
TraceSuppressGuard::~TraceSuppressGuard() { --t_suppress_depth; }

bool tracing_suppressed() { return t_suppress_depth > 0; }

void register_trace_metrics(Registry& registry) {
  register_trace_metrics(registry, SpanRecorder::global());
}

void register_trace_metrics(Registry& registry, SpanRecorder& recorder) {
  registry.gauge_fn("trace_spans_recorded", {},
                    [&recorder] { return static_cast<double>(recorder.recorded()); });
  registry.gauge_fn("trace_spans_evicted", {},
                    [&recorder] { return static_cast<double>(recorder.evicted()); });
  registry.gauge_fn("trace_spans_retained", {},
                    [&recorder] { return static_cast<double>(recorder.size()); });
}

void remove_trace_metrics(Registry& registry) {
  registry.remove_gauge_fn("trace_spans_recorded");
  registry.remove_gauge_fn("trace_spans_evicted");
  registry.remove_gauge_fn("trace_spans_retained");
}

ScopedTraceMetrics::ScopedTraceMetrics(Registry& registry) : registry_(registry) {
  register_trace_metrics(registry_);
}

ScopedTraceMetrics::ScopedTraceMetrics(Registry& registry, SpanRecorder& recorder)
    : registry_(registry) {
  register_trace_metrics(registry_, recorder);
}

ScopedTraceMetrics::~ScopedTraceMetrics() { remove_trace_metrics(registry_); }

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx) : prev_(t_current) {
  if (ctx.valid()) t_current = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { t_current = prev_; }

}  // namespace lms::obs
