#include "lms/obs/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "lms/obs/metrics.hpp"

namespace lms::obs {

namespace {

thread_local TraceContext t_current;

std::atomic<bool> g_tracing_enabled{true};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

TraceContext current_trace() { return t_current; }

std::uint64_t new_trace_id() {
  static std::atomic<std::uint64_t> counter{
      static_cast<std::uint64_t>(util::monotonic_now_ns())};
  std::uint64_t id = 0;
  while (id == 0) id = splitmix64(counter.fetch_add(1, std::memory_order_relaxed));
  return id;
}

std::string format_trace_header(const TraceContext& ctx) {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx-%016llx",
                static_cast<unsigned long long>(ctx.trace_id),
                static_cast<unsigned long long>(ctx.span_id));
  return std::string(buf);
}

namespace {

std::optional<std::uint64_t> parse_hex16(std::string_view s) {
  if (s.size() != 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

}  // namespace

std::optional<TraceContext> parse_trace_header(std::string_view value) {
  if (value.size() != 33 || value[16] != '-') return std::nullopt;
  const auto trace = parse_hex16(value.substr(0, 16));
  const auto span = parse_hex16(value.substr(17));
  if (!trace || !span || *trace == 0) return std::nullopt;
  return TraceContext{*trace, *span};
}

void set_tracing_enabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool tracing_enabled() { return g_tracing_enabled.load(std::memory_order_relaxed); }

SpanRecorder::SpanRecorder(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

SpanRecorder& SpanRecorder::global() {
  static SpanRecorder recorder;
  return recorder;
}

void SpanRecorder::record(SpanRecord record) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    evicted_.fetch_add(1, std::memory_order_relaxed);
  }
  ring_.push_back(std::move(record));
}

std::vector<SpanRecord> SpanRecorder::by_trace(std::uint64_t trace_id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  for (const auto& r : ring_) {
    if (r.trace_id == trace_id) out.push_back(r);
  }
  return out;
}

std::vector<SpanRecord> SpanRecorder::recent(std::size_t n) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t count = std::min(n, ring_.size());
  return std::vector<SpanRecord>(ring_.end() - static_cast<std::ptrdiff_t>(count), ring_.end());
}

std::size_t SpanRecorder::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void SpanRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

Span::Span(std::string name, std::string component, SpanRecorder* recorder) {
  if (!tracing_enabled()) return;
  active_ = true;
  recorder_ = recorder != nullptr ? recorder : &SpanRecorder::global();
  prev_ = t_current;
  ctx_.trace_id = prev_.valid() ? prev_.trace_id : new_trace_id();
  ctx_.span_id = new_trace_id();
  t_current = ctx_;
  name_ = std::move(name);
  component_ = std::move(component);
  start_wall_ = util::WallClock::instance().now();
  start_mono_ = util::monotonic_now_ns();
}

Span::~Span() {
  if (!active_) return;
  t_current = prev_;
  SpanRecord r;
  r.trace_id = ctx_.trace_id;
  r.span_id = ctx_.span_id;
  r.parent_span_id = prev_.trace_id == ctx_.trace_id ? prev_.span_id : 0;
  r.name = std::move(name_);
  r.component = std::move(component_);
  r.start_wall_ns = start_wall_;
  r.duration_ns = util::monotonic_now_ns() - start_mono_;
  r.ok = ok_;
  r.note = std::move(note_);
  recorder_->record(std::move(r));
}

void register_trace_metrics(Registry& registry) {
  register_trace_metrics(registry, SpanRecorder::global());
}

void register_trace_metrics(Registry& registry, SpanRecorder& recorder) {
  registry.gauge_fn("trace_spans_recorded", {},
                    [&recorder] { return static_cast<double>(recorder.recorded()); });
  registry.gauge_fn("trace_spans_evicted", {},
                    [&recorder] { return static_cast<double>(recorder.evicted()); });
  registry.gauge_fn("trace_spans_retained", {},
                    [&recorder] { return static_cast<double>(recorder.size()); });
}

void remove_trace_metrics(Registry& registry) {
  registry.remove_gauge_fn("trace_spans_recorded");
  registry.remove_gauge_fn("trace_spans_evicted");
  registry.remove_gauge_fn("trace_spans_retained");
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx) : prev_(t_current) {
  if (ctx.valid()) t_current = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { t_current = prev_; }

}  // namespace lms::obs
