#include "lms/obs/cpuprofiler.hpp"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>

#include "lms/core/runtime.hpp"
#include "lms/lineproto/codec.hpp"
#include "lms/obs/trace.hpp"
#include "lms/util/logging.hpp"

namespace lms::obs {

namespace {

/// Ring claimed by the calling thread. Plain TLS pointer: written once in
/// normal context or by the thread's own (non-reentrant) signal handler,
/// read by the same thread only.
thread_local profile_detail::SampleRing* tls_ring = nullptr;

std::uint64_t my_tid() { return static_cast<std::uint64_t>(::syscall(SYS_gettid)); }

bool thread_alive(std::uint64_t tid) {
  // Signal 0 = existence probe. EPERM would also mean "exists", but every
  // profiled thread is in our own process so only ESRCH happens in practice.
  return ::syscall(SYS_tgkill, ::getpid(), static_cast<pid_t>(tid), 0) == 0;
}

/// Frames the capture machinery itself contributes (leaf side of every
/// sample): the handler, the capture path, and the kernel's signal
/// trampoline. Matched against the demangled symbol to trim them offline.
bool is_capture_frame(const std::string& name) {
  return name.find("CpuProfiler") != std::string::npos ||
         name.find("__restore_rt") != std::string::npos ||
         name.find("signal_handler") != std::string::npos ||
         name.find("backtrace") != std::string::npos;
}

/// Collapse a demangled symbol into a flamegraph-friendly frame token:
/// argument list stripped, separators that collide with the collapsed
/// format (';' joins frames, ' ' splits off the count) replaced.
std::string frame_token(const std::string& symbol) {
  std::string out = symbol.substr(0, symbol.find('('));
  for (char& c : out) {
    if (c == ';' || c == ' ') c = '_';
  }
  return out.empty() ? std::string("(unknown)") : out;
}

}  // namespace

// ---------------------------------------------------------------------------
// CpuProfiler
// ---------------------------------------------------------------------------

CpuProfiler::CpuProfiler() = default;
CpuProfiler::~CpuProfiler() = default;

CpuProfiler& CpuProfiler::instance() {
  // Intentionally leaked: the signal handler is installed for process life
  // and must never observe a destroyed profiler during static teardown.
  static CpuProfiler* p = new CpuProfiler();
  return *p;
}

void CpuProfiler::signal_handler(int /*signo*/) {
  const int saved_errno = errno;  // backtrace/syscall may clobber it
  CpuProfiler& p = instance();
  if (p.enabled_.load(std::memory_order_relaxed)) p.capture();
  errno = saved_errno;
}

profile_detail::SampleRing* CpuProfiler::claim_ring(std::uint64_t tid) {
  for (auto& ring : rings_) {
    std::uint64_t expected = 0;
    if (ring->owner_tid.compare_exchange_strong(expected, tid, std::memory_order_acq_rel)) {
      return ring.get();
    }
    if (expected == tid) return ring.get();  // re-claim after stop/start
  }
  return nullptr;
}

void CpuProfiler::capture() {
  using profile_detail::RawSample;
  using profile_detail::SampleRing;
  SampleRing* ring = tls_ring;
  if (ring == nullptr) {
    ring = claim_ring(my_tid());
    if (ring == nullptr) {  // pool exhausted: more threads than max_threads
      samples_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    tls_ring = ring;
  }
  const std::uint32_t head = ring->head.load(std::memory_order_relaxed);
  const std::uint32_t tail = ring->tail.load(std::memory_order_acquire);
  const auto cap = static_cast<std::uint32_t>(ring->slots.size());
  if (head - tail >= cap) {  // full: drop, never block or overwrite
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    samples_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  RawSample& s = ring->slots[head % cap];
  s.nframes = ::backtrace(s.frames, RawSample::kMaxFrames);
  const TraceContext trace = current_trace();
  s.trace_id = trace.trace_id;
  s.trace_sampled = trace.sampled;
  const char* task = core::runtime::current_task_name();
  int i = 0;
  if (task != nullptr) {
    for (; i < RawSample::kMaxTaskName - 1 && task[i] != '\0'; ++i) s.task[i] = task[i];
  }
  s.task[i] = '\0';
  ring->head.store(head + 1, std::memory_order_release);
  samples_captured_.fetch_add(1, std::memory_order_relaxed);
}

util::Status CpuProfiler::start(Options options) {
  if (enabled_.load(std::memory_order_acquire)) {
    return util::Status::error("cpu profiler already running");
  }
  options.hz = std::clamp(options.hz, 1, 1000);
  if (options.max_threads == 0) options.max_threads = 1;
  if (options.ring_capacity == 0) options.ring_capacity = 1;
  if (options.max_stacks == 0) options.max_stacks = 1;
  options_ = options;

  // Rings are allocated once and never freed or resized: an in-flight
  // signal from a previous profiling session must always land in valid
  // memory. Later starts can only grow the pool.
  while (rings_.size() < options_.max_threads) {
    auto ring = std::make_unique<profile_detail::SampleRing>();
    ring->slots.resize(options_.ring_capacity);
    rings_.push_back(std::move(ring));
  }

  // Pre-warm backtrace(): the first call lazily loads libgcc under a lock
  // with allocation — do that here, not inside the first signal.
  void* warm[4];
  ::backtrace(warm, 4);

  if (options_.timer) {
    signo_ = options_.wall ? SIGALRM : SIGPROF;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &CpuProfiler::signal_handler;
    sa.sa_flags = SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (::sigaction(signo_, &sa, nullptr) != 0) {
      return util::Status::error("cpu profiler: sigaction failed");
    }
    handler_installed_.store(true, std::memory_order_release);
    enabled_.store(true, std::memory_order_release);  // before the first tick
    const long usec = std::max(1L, 1000000L / options_.hz);
    struct itimerval tv;
    tv.it_interval.tv_sec = usec / 1000000;
    tv.it_interval.tv_usec = usec % 1000000;
    tv.it_value = tv.it_interval;
    if (::setitimer(options_.wall ? ITIMER_REAL : ITIMER_PROF, &tv, nullptr) != 0) {
      enabled_.store(false, std::memory_order_release);
      return util::Status::error("cpu profiler: setitimer failed");
    }
    timer_armed_ = true;
  } else {
    enabled_.store(true, std::memory_order_release);
  }
  LMS_INFO("obs") << "cpu profiler started at " << options_.hz << " Hz ("
                  << (options_.wall ? "wall" : "cpu") << (options_.timer ? "" : ", manual")
                  << ")";
  return {};
}

void CpuProfiler::stop() {
  if (!enabled_.exchange(false, std::memory_order_acq_rel)) return;
  if (timer_armed_) {
    struct itimerval zero;
    std::memset(&zero, 0, sizeof(zero));
    ::setitimer(options_.wall ? ITIMER_REAL : ITIMER_PROF, &zero, nullptr);
    timer_armed_ = false;
    // The handler stays installed (and inert): restoring SIG_DFL would turn
    // one straggler SIGPROF into process death.
  }
  process_once();  // fold what the rings still hold
}

void CpuProfiler::sample_once() {
  if (!enabled_.load(std::memory_order_acquire)) return;
  capture();
}

const std::string& CpuProfiler::symbolize(void* pc) {
  auto it = symbols_.find(pc);
  if (it != symbols_.end()) return it->second;
  std::string name;
  Dl_info info;
  if (::dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int demangle_status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &demangle_status);
    if (demangle_status == 0 && demangled != nullptr) {
      name = demangled;
    } else {
      name = info.dli_sname;
    }
    std::free(demangled);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%zx", reinterpret_cast<std::size_t>(pc));
    name = buf;
  }
  return symbols_.emplace(pc, std::move(name)).first->second;
}

void CpuProfiler::fold_sample(const profile_detail::RawSample& sample) {
  using profile_detail::RawSample;
  // backtrace() returns leaf-first. Trim the capture machinery's own frames
  // off the leaf side, then emit root→leaf joined with ';'.
  const int n = std::min<int>(sample.nframes, RawSample::kMaxFrames);
  int first = 0;
  while (first < n && is_capture_frame(symbolize(sample.frames[first]))) ++first;
  std::string folded;
  if (sample.task[0] != '\0') {
    folded += "task:";
    folded += sample.task;
  }
  for (int i = n - 1; i >= first; --i) {
    if (!folded.empty()) folded += ';';
    folded += frame_token(symbolize(sample.frames[i]));
  }
  if (folded.empty()) folded = "(unknown)";

  auto it = table_.find(folded);
  if (it == table_.end()) {
    if (table_.size() >= options_.max_stacks) {
      stack_overflows_.fetch_add(1, std::memory_order_relaxed);
      it = table_.emplace("(overflow)", StackEntry{}).first;
    } else {
      it = table_.emplace(std::move(folded), StackEntry{}).first;
    }
  }
  it->second.count += 1;
  if (sample.trace_id != 0 && sample.trace_sampled) {
    it->second.trace_id = sample.trace_id;
  }
  samples_folded_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t CpuProfiler::process_once() {
  // table_mu_ serializes fold passes, making each ring's consumer side
  // single-threaded (the SPSC contract) even when stop() and the periodic
  // fold task race.
  core::sync::LockGuard lock(table_mu_);
  folds_.fetch_add(1, std::memory_order_relaxed);
  std::size_t folded = 0;
  for (auto& ring : rings_) {
    const std::uint64_t owner = ring->owner_tid.load(std::memory_order_acquire);
    if (owner == 0) continue;
    const std::uint32_t head = ring->head.load(std::memory_order_acquire);
    std::uint32_t tail = ring->tail.load(std::memory_order_relaxed);
    const auto cap = static_cast<std::uint32_t>(ring->slots.size());
    while (tail != head) {
      fold_sample(ring->slots[tail % cap]);
      ++tail;
      ++folded;
    }
    ring->tail.store(tail, std::memory_order_release);
    // Recycle rings of dead threads so the fixed pool survives thread
    // churn. Safe: a dead thread's handler can never fire again, and the
    // drain above consumed everything it wrote.
    if (!thread_alive(owner) &&
        ring->head.load(std::memory_order_acquire) == tail) {
      ring->owner_tid.store(0, std::memory_order_release);
      rings_reclaimed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return folded;
}

std::vector<ProfileStack> CpuProfiler::snapshot(std::size_t max_stacks) const {
  std::vector<ProfileStack> out;
  {
    core::sync::LockGuard lock(table_mu_);
    out.reserve(table_.size());
    for (const auto& [stack, entry] : table_) {
      out.push_back(ProfileStack{stack, entry.count, entry.trace_id});
    }
  }
  std::sort(out.begin(), out.end(), [](const ProfileStack& a, const ProfileStack& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.stack < b.stack;
  });
  if (max_stacks != 0 && out.size() > max_stacks) out.resize(max_stacks);
  return out;
}

std::string CpuProfiler::collapsed(std::size_t max_stacks) const {
  std::string out;
  for (const ProfileStack& s : snapshot(max_stacks)) {
    out += s.stack;
    out += ' ';
    out += std::to_string(s.count);
    out += '\n';
  }
  return out;
}

void CpuProfiler::clear() {
  core::sync::LockGuard lock(table_mu_);
  table_.clear();
}

CpuProfiler::Stats CpuProfiler::stats() const {
  Stats s;
  s.running = enabled_.load(std::memory_order_acquire);
  s.timer = options_.timer && s.running;
  s.hz = options_.hz;
  s.samples_captured = samples_captured_.load(std::memory_order_relaxed);
  s.samples_dropped = samples_dropped_.load(std::memory_order_relaxed);
  s.samples_folded = samples_folded_.load(std::memory_order_relaxed);
  s.folds = folds_.load(std::memory_order_relaxed);
  s.rings_reclaimed = rings_reclaimed_.load(std::memory_order_relaxed);
  s.stack_overflows = stack_overflows_.load(std::memory_order_relaxed);
  for (const auto& ring : rings_) {
    if (ring->owner_tid.load(std::memory_order_acquire) != 0) ++s.rings_active;
  }
  {
    core::sync::LockGuard lock(table_mu_);
    s.stacks = table_.size();
  }
  return s;
}

void CpuProfiler::on_attach(core::TaskScheduler& sched) {
  const util::TimeNs interval =
      options_.fold_interval > 0 ? options_.fold_interval : util::kNanosPerSecond;
  fold_task_ = sched.submit_periodic("obs.cpuprofile.fold", interval,
                                     [this] { process_once(); });
}

void CpuProfiler::on_detach() {
  fold_task_.cancel();
  process_once();  // final fold so late samples are not stranded in rings
}

// ---------------------------------------------------------------------------
// ProfileExporter
// ---------------------------------------------------------------------------

ProfileExporter::ProfileExporter(WriteFn write, Options options)
    : write_(std::move(write)),
      options_(std::move(options)),
      profiler_(options_.profiler != nullptr ? *options_.profiler
                                             : CpuProfiler::instance()) {}

ProfileExporter::~ProfileExporter() { detach(); }

util::Status ProfileExporter::export_once() {
  // Like TraceExporter: the write travels through the router like any
  // batch; profile points about exporting profiles would feed back.
  const TraceSuppressGuard suppress;
  profiler_.process_once();
  const std::vector<ProfileStack> stacks = profiler_.snapshot(options_.top_k);
  if (stacks.empty()) return {};
  const util::Clock& clock =
      options_.clock != nullptr ? *options_.clock : util::WallClock::instance();
  const util::TimeNs now = clock.now();
  std::vector<lineproto::Point> points;
  points.reserve(stacks.size());
  for (std::size_t rank = 0; rank < stacks.size(); ++rank) {
    const ProfileStack& s = stacks[rank];
    lineproto::Point p;
    p.measurement = options_.measurement;
    if (!options_.host.empty()) p.set_tag("host", options_.host);
    p.set_tag("rank", std::to_string(rank));
    if (s.trace_id != 0) p.set_tag("trace_id", trace_id_hex(s.trace_id));
    p.add_field("stack", s.stack);
    const std::size_t leaf = s.stack.rfind(';');
    p.add_field("frame",
                leaf == std::string::npos ? s.stack : s.stack.substr(leaf + 1));
    p.add_field("samples", static_cast<std::int64_t>(s.count));
    p.timestamp = now;
    p.normalize();
    points.push_back(std::move(p));
  }
  util::Status status = write_(lineproto::serialize_batch(points));
  exports_.fetch_add(1, std::memory_order_relaxed);
  if (!status.ok()) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    LMS_WARN("obs") << "profile export failed (" << points.size()
                    << " stacks dropped): " << status.message();
    return status;
  }
  stacks_exported_.fetch_add(points.size(), std::memory_order_relaxed);
  return status;
}

void ProfileExporter::on_attach(core::TaskScheduler& sched) {
  const util::TimeNs interval =
      options_.interval > 0 ? options_.interval : util::kNanosPerSecond;
  task_ = sched.submit_periodic("obs.profileexport", interval, [this] { export_once(); });
}

void ProfileExporter::on_detach() {
  task_.cancel();
  export_once();  // final export so the last fold is not lost
}

}  // namespace lms::obs
