#include "lms/obs/selfscrape.hpp"

#include "lms/lineproto/codec.hpp"
#include "lms/obs/runtime.hpp"
#include "lms/obs/trace.hpp"
#include "lms/util/logging.hpp"

namespace lms::obs {

SelfScrape::SelfScrape(Registry& registry, const util::Clock& clock, WriteFn write,
                       Options options)
    : registry_(registry), clock_(clock), write_(std::move(write)), options_(std::move(options)) {}

SelfScrape::~SelfScrape() { detach(); }

util::Status SelfScrape::scrape_once() {
  Span span("obs.selfscrape", "obs");
  // Fold the process-wide lock/queue/loop stats into this registry so the
  // self-scrape carries them into the TSDB as lms_internal points.
  update_runtime_metrics(registry_);
  const std::vector<lineproto::Point> points =
      to_points(registry_, options_.measurement, options_.tags, clock_.now());
  if (points.empty()) return {};
  util::Status status = write_(lineproto::serialize_batch(points));
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  if (!status.ok()) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    span.set_ok(false);
    span.set_note(status.message());
    LMS_WARN("obs") << "self-scrape write failed: " << status.message();
  }
  return status;
}

void SelfScrape::on_attach(core::TaskScheduler& sched) {
  const util::TimeNs interval =
      options_.interval > 0 ? options_.interval : util::kNanosPerSecond;
  task_ = sched.submit_periodic("obs.selfscrape", interval, [this] { scrape_once(); });
}

void SelfScrape::on_detach() { task_.cancel(); }

}  // namespace lms::obs
