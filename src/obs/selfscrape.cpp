#include "lms/obs/selfscrape.hpp"

#include <chrono>

#include "lms/lineproto/codec.hpp"
#include "lms/obs/runtime.hpp"
#include "lms/obs/trace.hpp"
#include "lms/util/logging.hpp"

namespace lms::obs {

SelfScrape::SelfScrape(Registry& registry, const util::Clock& clock, WriteFn write,
                       Options options)
    : registry_(registry), clock_(clock), write_(std::move(write)), options_(std::move(options)) {}

SelfScrape::~SelfScrape() { stop(); }

util::Status SelfScrape::scrape_once() {
  Span span("obs.selfscrape", "obs");
  // Fold the process-wide lock/queue/loop stats into this registry so the
  // self-scrape carries them into the TSDB as lms_internal points.
  update_runtime_metrics(registry_);
  const std::vector<lineproto::Point> points =
      to_points(registry_, options_.measurement, options_.tags, clock_.now());
  if (points.empty()) return {};
  util::Status status = write_(lineproto::serialize_batch(points));
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  if (!status.ok()) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    span.set_ok(false);
    span.set_note(status.message());
    LMS_WARN("obs") << "self-scrape write failed: " << status.message();
  }
  return status;
}

void SelfScrape::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  {
    const core::sync::LockGuard lock(mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { run(); });
}

void SelfScrape::stop() {
  if (!running_.exchange(false)) return;
  {
    const core::sync::LockGuard lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void SelfScrape::run() {
  core::sync::UniqueLock lock(mu_);
  while (!stop_requested_) {
    const auto interval = std::chrono::nanoseconds(options_.interval > 0 ? options_.interval
                                                                         : util::kNanosPerSecond);
    // Explicit deadline loop instead of a predicate wait so the guarded
    // stop_requested_ reads stay in this (lock-holding) function.
    const auto deadline = std::chrono::steady_clock::now() + interval;
    while (!stop_requested_) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      cv_.wait_for(lock, deadline - now);
    }
    if (stop_requested_) break;
    lock.unlock();
    {
      const core::runtime::BusyScope busy(loop_stats_);
      scrape_once();
    }
    lock.lock();
  }
}

}  // namespace lms::obs
