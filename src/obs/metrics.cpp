#include "lms/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lms::obs {

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::percentile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  std::array<std::uint64_t, kBuckets> snap{};
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    snap[static_cast<std::size_t>(i)] = buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    total += snap[static_cast<std::size_t>(i)];
  }
  if (total == 0) return 0.0;
  // Rank of the q-quantile in the sorted sample, 1-based.
  const double rank = q * static_cast<double>(total - 1) + 1.0;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = snap[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    if (static_cast<double>(seen + n) >= rank) {
      if (i == 0) return 0.0;
      // Bucket i covers [2^(i-1), 2^i). Interpolate linearly by the rank's
      // position inside the bucket.
      const double lo = std::ldexp(1.0, i - 1);
      const double hi = std::ldexp(1.0, i);
      const double frac = (rank - static_cast<double>(seen)) / static_cast<double>(n);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += n;
  }
  return std::ldexp(1.0, kBuckets - 1);
}

Histogram::Summary Histogram::summary() const {
  Summary s;
  s.count = count();
  s.sum = sum();
  s.p50 = percentile(0.50);
  s.p90 = percentile(0.90);
  s.p99 = percentile(0.99);
  return s;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::Key Registry::make_key(std::string_view name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  return Key{std::string(name), std::move(labels)};
}

Counter& Registry::counter(std::string_view name, Labels labels) {
  const Key key = make_key(name, std::move(labels));
  const core::sync::LockGuard lock(mu_);
  auto& slot = counters_[key];
  if (!slot) slot.reset(new Counter());
  return *slot;
}

Gauge& Registry::gauge(std::string_view name, Labels labels) {
  const Key key = make_key(name, std::move(labels));
  const core::sync::LockGuard lock(mu_);
  auto& slot = gauges_[key];
  if (!slot) slot.reset(new Gauge());
  return *slot;
}

Histogram& Registry::histogram(std::string_view name, Labels labels) {
  const Key key = make_key(name, std::move(labels));
  const core::sync::LockGuard lock(mu_);
  auto& slot = histograms_[key];
  if (!slot) slot.reset(new Histogram());
  return *slot;
}

void Registry::gauge_fn(std::string_view name, Labels labels, std::function<double()> fn) {
  const Key key = make_key(name, std::move(labels));
  const core::sync::LockGuard lock(mu_);
  gauge_fns_[key] = std::move(fn);
}

void Registry::remove_gauge_fn(std::string_view name, const Labels& labels) {
  const Key key = make_key(name, labels);
  const core::sync::LockGuard lock(mu_);
  gauge_fns_.erase(key);
}

std::vector<Sample> Registry::collect() const {
  // Snapshot the callback list under the lock, but evaluate callbacks
  // outside it: a sampled gauge may itself take a component lock.
  std::vector<Sample> out;
  std::vector<std::pair<Key, std::function<double()>>> fns;
  {
    const core::sync::LockGuard lock(mu_);
    out.reserve(counters_.size() + gauges_.size() + histograms_.size() + gauge_fns_.size());
    for (const auto& [key, c] : counters_) {
      Sample s;
      s.name = key.name;
      s.labels = key.labels;
      s.kind = Sample::Kind::kCounter;
      s.value = static_cast<double>(c->value());
      out.push_back(std::move(s));
    }
    for (const auto& [key, g] : gauges_) {
      Sample s;
      s.name = key.name;
      s.labels = key.labels;
      s.kind = Sample::Kind::kGauge;
      s.value = g->value();
      out.push_back(std::move(s));
    }
    for (const auto& [key, h] : histograms_) {
      Sample s;
      s.name = key.name;
      s.labels = key.labels;
      s.kind = Sample::Kind::kHistogram;
      s.histogram = h->summary();
      if (h->exemplar_enabled()) s.exemplar = h->exemplar();
      out.push_back(std::move(s));
    }
    fns.reserve(gauge_fns_.size());
    for (const auto& [key, fn] : gauge_fns_) fns.emplace_back(key, fn);
  }
  for (const auto& [key, fn] : fns) {
    Sample s;
    s.name = key.name;
    s.labels = key.labels;
    s.kind = Sample::Kind::kGauge;
    s.value = fn ? fn() : 0.0;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const Sample& a, const Sample& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  });
  return out;
}

std::size_t Registry::instrument_count() const {
  const core::sync::LockGuard lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size() + gauge_fns_.size();
}

namespace {

void append_label_escaped(std::string& out, std::string_view v) {
  for (const char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
}

void append_series(std::string& out, std::string_view name, const Labels& labels,
                   std::string_view suffix, double value) {
  out.append(name);
  out.append(suffix);
  if (!labels.empty()) {
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out.push_back(',');
      first = false;
      out.append(k);
      out.append("=\"");
      append_label_escaped(out, v);
      out.push_back('"');
    }
    out.push_back('}');
  }
  out.push_back(' ');
  char buf[64];
  // Counters and bucket-derived values are integral most of the time; print
  // them without a fractional part for readability.
  if (value == static_cast<double>(static_cast<std::int64_t>(value))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  }
  out.append(buf);
  out.push_back('\n');
}

// One `# HELP` / `# TYPE` pair introducing a metric family. Prometheus
// requires the pair to precede the family's series and each family's series
// to be contiguous, which is why render_text groups samples by name below.
void append_family_header(std::string& out, std::string_view name, std::string_view suffix,
                          std::string_view type, std::string_view help) {
  out.append("# HELP ");
  out.append(name);
  out.append(suffix);
  out.push_back(' ');
  for (const char c : help) {  // HELP text escaping: backslash and newline
    if (c == '\\') {
      out.append("\\\\");
    } else if (c == '\n') {
      out.append("\\n");
    } else {
      out.push_back(c);
    }
  }
  out.push_back('\n');
  out.append("# TYPE ");
  out.append(name);
  out.append(suffix);
  out.push_back(' ');
  out.append(type);
  out.push_back('\n');
}

}  // namespace

std::string render_text(const Registry& registry) {
  const std::vector<Sample> samples = registry.collect();
  std::string out;
  // collect() sorts by name, so a family's label sets form one contiguous
  // run. Emit the HELP/TYPE header once per run, then its series; histogram
  // runs expand suffix-by-suffix so each derived family (<name>_count,
  // <name>_sum, percentiles) stays contiguous too.
  std::size_t i = 0;
  while (i < samples.size()) {
    std::size_t j = i;
    while (j < samples.size() && samples[j].name == samples[i].name &&
           samples[j].kind == samples[i].kind) {
      ++j;
    }
    const Sample& first = samples[i];
    switch (first.kind) {
      case Sample::Kind::kCounter:
      case Sample::Kind::kGauge: {
        const bool is_counter = first.kind == Sample::Kind::kCounter;
        append_family_header(out, first.name, "", is_counter ? "counter" : "gauge",
                             is_counter ? "Monotonic counter." : "Instantaneous gauge.");
        for (std::size_t k = i; k < j; ++k) {
          append_series(out, samples[k].name, samples[k].labels, "", samples[k].value);
        }
        break;
      }
      case Sample::Kind::kHistogram: {
        const std::string base(first.name);
        append_family_header(out, first.name, "_count", "counter",
                             "Observations recorded by histogram " + base + ".");
        for (std::size_t k = i; k < j; ++k) {
          append_series(out, samples[k].name, samples[k].labels, "_count",
                        static_cast<double>(samples[k].histogram.count));
        }
        append_family_header(out, first.name, "_sum", "counter",
                             "Sum of observations recorded by histogram " + base + ".");
        for (std::size_t k = i; k < j; ++k) {
          append_series(out, samples[k].name, samples[k].labels, "_sum",
                        static_cast<double>(samples[k].histogram.sum));
        }
        struct Pct {
          const char* suffix;
          double Histogram::Summary::*field;
          const char* help;
        };
        static constexpr Pct kPcts[] = {
            {"_p50", &Histogram::Summary::p50, "50th percentile of histogram "},
            {"_p90", &Histogram::Summary::p90, "90th percentile of histogram "},
            {"_p99", &Histogram::Summary::p99, "99th percentile of histogram "},
        };
        for (const Pct& pct : kPcts) {
          append_family_header(out, first.name, pct.suffix, "gauge", pct.help + base + ".");
          for (std::size_t k = i; k < j; ++k) {
            append_series(out, samples[k].name, samples[k].labels, pct.suffix,
                          samples[k].histogram.*pct.field);
          }
        }
        bool any_exemplar = false;
        for (std::size_t k = i; k < j; ++k) {
          any_exemplar = any_exemplar || samples[k].exemplar.trace_id != 0;
        }
        if (any_exemplar) {
          // The slowest recent observation with the trace that produced it —
          // the alert-to-waterfall bridge (fetch it at GET /trace/<id>).
          // Header and series only exist when an exemplar was captured, so
          // exemplar-free expositions stay free of the suffix entirely.
          append_family_header(out, first.name, "_exemplar", "gauge",
                               "Slowest recent observation of histogram " + base +
                                   " with its originating trace_id.");
          for (std::size_t k = i; k < j; ++k) {
            if (samples[k].exemplar.trace_id == 0) continue;
            Labels ex_labels = samples[k].labels;
            ex_labels.emplace_back("trace_id", trace_id_hex(samples[k].exemplar.trace_id));
            append_series(out, samples[k].name, ex_labels, "_exemplar",
                          static_cast<double>(samples[k].exemplar.value));
          }
        }
        break;
      }
    }
    i = j;
  }
  return out;
}

std::vector<lineproto::Point> to_points(const Registry& registry, std::string_view measurement,
                                        const Labels& extra_tags, util::TimeNs timestamp) {
  std::vector<lineproto::Point> points;
  for (const Sample& s : registry.collect()) {
    lineproto::Point p;
    p.measurement = std::string(measurement);
    for (const auto& [k, v] : extra_tags) p.set_tag(k, v);
    p.set_tag("metric", s.name);
    for (const auto& [k, v] : s.labels) p.set_tag(k, v);
    switch (s.kind) {
      case Sample::Kind::kCounter:
        p.add_field("value", static_cast<std::int64_t>(s.value));
        break;
      case Sample::Kind::kGauge:
        p.add_field("value", s.value);
        break;
      case Sample::Kind::kHistogram:
        p.add_field("count", static_cast<std::int64_t>(s.histogram.count));
        p.add_field("sum", static_cast<std::int64_t>(s.histogram.sum));
        p.add_field("p50", s.histogram.p50);
        p.add_field("p90", s.histogram.p90);
        p.add_field("p99", s.histogram.p99);
        break;
    }
    p.timestamp = timestamp;
    p.normalize();
    points.push_back(std::move(p));
  }
  return points;
}

}  // namespace lms::obs
