#include "lms/obs/runtime.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>

#include "lms/core/runtime.hpp"
#include "lms/core/sync.hpp"
#include "lms/obs/cpuprofiler.hpp"

// Stamped by the top-level CMakeLists; default for non-CMake consumers.
#ifndef LMS_BUILD_TYPE_NAME
#define LMS_BUILD_TYPE_NAME "unknown"
#endif
#ifndef LMS_SANITIZE_NAME
#define LMS_SANITIZE_NAME "none"
#endif

namespace lms::obs {

namespace {

std::string compiler_string() {
#if defined(__clang__)
  return std::string("clang ") + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." + std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__) +
         "." + std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

const char* onoff(bool b) { return b ? "on" : "off"; }

}  // namespace

BuildInfo build_info() {
  BuildInfo b;
  b.build_type = LMS_BUILD_TYPE_NAME;
  b.compiler = compiler_string();
  b.sanitizer = LMS_SANITIZE_NAME;
  b.rank_checks = core::sync::kRankCheckingEnabled;
  b.lock_stats = core::sync::kLockStatsEnabled;
  return b;
}

std::string build_info_summary() {
  const BuildInfo b = build_info();
  return "type=" + b.build_type + " compiler=" + b.compiler + " sanitizer=" + b.sanitizer +
         " rank_checks=" + onoff(b.rank_checks) + " lock_stats=" + onoff(b.lock_stats);
}

void register_build_info(Registry& registry) {
  const BuildInfo b = build_info();
  registry
      .gauge("lms_build_info", {{"build_type", b.build_type},
                                {"compiler", b.compiler},
                                {"sanitizer", b.sanitizer},
                                {"rank_checks", onoff(b.rank_checks)},
                                {"lock_stats", onoff(b.lock_stats)}})
      .set(1.0);
}

namespace {

double d(std::uint64_t v) { return static_cast<double>(v); }

void update_lock_metrics(Registry& registry) {
  namespace ls = core::sync::lockstats;
  registry.gauge("lms_lock_stats_enabled")
      .set(core::sync::kLockStatsEnabled && ls::enabled() ? 1.0 : 0.0);
  registry.gauge("lms_lock_sites_dropped").set(d(ls::dropped_sites()));
  for (const ls::SiteSnapshot& s : ls::snapshot()) {
    const Labels labels{{"lock", s.name}, {"rank", std::to_string(s.rank)}};
    registry.gauge("lms_lock_acquisitions_total", labels).set(d(s.acquisitions));
    registry.gauge("lms_lock_contended_total", labels).set(d(s.contended));
    registry.gauge("lms_lock_wait_ns_total", labels).set(d(s.wait_ns_total));
    registry.gauge("lms_lock_wait_ns_max", labels).set(d(s.wait_ns_max));
    registry.gauge("lms_lock_wait_p50_ns", labels).set(d(ls::wait_quantile_ns(s, 0.50)));
    registry.gauge("lms_lock_wait_p99_ns", labels).set(d(ls::wait_quantile_ns(s, 0.99)));
    registry.gauge("lms_lock_hold_ns_total", labels).set(d(s.hold_ns_total));
    registry.gauge("lms_lock_hold_ns_max", labels).set(d(s.hold_ns_max));
  }
}

void update_queue_metrics(Registry& registry) {
  // Same-named queues (e.g. one per pub/sub subscriber) aggregate into one
  // labeled series: counters and depth sum, watermark and capacity take
  // the max.
  struct Agg {
    std::uint64_t pushes = 0, pops = 0, blocked = 0, rejected = 0, depth = 0;
    std::uint64_t high_watermark = 0, capacity = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const core::runtime::QueueSnapshot& q : core::runtime::queue_snapshot()) {
    Agg& a = by_name[q.name];
    a.pushes += q.pushes;
    a.pops += q.pops;
    a.blocked += q.blocked_pushes;
    a.rejected += q.rejected_pushes;
    a.depth += q.depth;
    a.high_watermark = std::max(a.high_watermark, q.high_watermark);
    a.capacity = std::max<std::uint64_t>(a.capacity, q.capacity);
  }
  for (const auto& [name, a] : by_name) {
    const Labels labels{{"queue", name}};
    registry.gauge("lms_runtime_queue_pushes_total", labels).set(d(a.pushes));
    registry.gauge("lms_runtime_queue_pops_total", labels).set(d(a.pops));
    registry.gauge("lms_runtime_queue_blocked_pushes_total", labels).set(d(a.blocked));
    registry.gauge("lms_runtime_queue_rejected_pushes_total", labels).set(d(a.rejected));
    registry.gauge("lms_runtime_queue_depth", labels).set(d(a.depth));
    registry.gauge("lms_runtime_queue_high_watermark", labels).set(d(a.high_watermark));
    registry.gauge("lms_runtime_queue_capacity", labels).set(d(a.capacity));
  }
}

void update_loop_metrics(Registry& registry) {
  struct Agg {
    std::uint64_t iterations = 0, busy_ns = 0, idle_ns = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const core::runtime::LoopSnapshot& l : core::runtime::loop_snapshot()) {
    Agg& a = by_name[l.name];
    a.iterations += l.iterations;
    a.busy_ns += l.busy_ns;
    a.idle_ns += l.idle_ns;
  }
  for (const auto& [name, a] : by_name) {
    const Labels labels{{"loop", name}};
    registry.gauge("lms_runtime_loop_iterations_total", labels).set(d(a.iterations));
    registry.gauge("lms_runtime_loop_busy_ns_total", labels).set(d(a.busy_ns));
    registry.gauge("lms_runtime_loop_idle_ns_total", labels).set(d(a.idle_ns));
    const double denom = d(a.busy_ns) + d(a.idle_ns);
    registry.gauge("lms_runtime_loop_duty_pct", labels)
        .set(denom > 0.0 ? 100.0 * d(a.busy_ns) / denom : 0.0);
  }
}

void update_sched_metrics(Registry& registry) {
  for (const core::runtime::SchedSnapshot& s : core::runtime::sched_snapshot()) {
    const Labels labels{{"scheduler", s.name}};
    registry.gauge("lms_runtime_sched_workers", labels).set(d(s.workers));
    registry.gauge("lms_runtime_sched_submitted_total", labels).set(d(s.submitted));
    registry.gauge("lms_runtime_sched_executed_total", labels).set(d(s.executed));
    registry.gauge("lms_runtime_sched_stolen_total", labels).set(d(s.stolen));
    registry.gauge("lms_runtime_sched_steal_attempts_total", labels)
        .set(d(s.steal_attempts));
    registry.gauge("lms_runtime_sched_pinned_total", labels).set(d(s.pinned));
    registry.gauge("lms_runtime_sched_delayed_total", labels).set(d(s.delayed));
    registry.gauge("lms_runtime_sched_periodic_runs_total", labels).set(d(s.periodic_runs));
    registry.gauge("lms_runtime_sched_queue_depth", labels).set(d(s.depth));
    registry.gauge("lms_runtime_sched_queue_high_watermark", labels)
        .set(d(s.high_watermark));
  }
}

void update_sched_delay_metrics(Registry& registry) {
  namespace sd = core::runtime::sched_delay;
  for (const sd::TaskDelaySnapshot& t : sd::snapshot()) {
    const Labels labels{{"task", t.name}};
    registry.gauge("lms_runtime_sched_queue_delay_count", labels).set(d(t.count));
    registry.gauge("lms_runtime_sched_queue_delay_ns_total", labels)
        .set(d(t.delay_ns_total));
    registry.gauge("lms_runtime_sched_queue_delay_ns_max", labels).set(d(t.delay_ns_max));
    registry.gauge("lms_runtime_sched_queue_delay_p50_ns", labels)
        .set(d(sd::delay_quantile_ns(t, 0.50)));
    registry.gauge("lms_runtime_sched_queue_delay_p99_ns", labels)
        .set(d(sd::delay_quantile_ns(t, 0.99)));
  }
}

void update_profiler_metrics(Registry& registry) {
  const CpuProfiler::Stats s = CpuProfiler::instance().stats();
  registry.gauge("lms_profile_running").set(s.running ? 1.0 : 0.0);
  registry.gauge("lms_profile_hz").set(d(static_cast<std::uint64_t>(s.hz)));
  registry.gauge("lms_profile_samples_captured_total").set(d(s.samples_captured));
  registry.gauge("lms_profile_samples_dropped_total").set(d(s.samples_dropped));
  registry.gauge("lms_profile_samples_folded_total").set(d(s.samples_folded));
  registry.gauge("lms_profile_folds_total").set(d(s.folds));
  registry.gauge("lms_profile_rings_active").set(d(s.rings_active));
  registry.gauge("lms_profile_rings_reclaimed_total").set(d(s.rings_reclaimed));
  registry.gauge("lms_profile_stacks").set(d(s.stacks));
  registry.gauge("lms_profile_stack_overflows_total").set(d(s.stack_overflows));
}

}  // namespace

void update_runtime_metrics(Registry& registry) {
  register_build_info(registry);
  update_lock_metrics(registry);
  update_queue_metrics(registry);
  update_loop_metrics(registry);
  update_sched_metrics(registry);
  update_sched_delay_metrics(registry);
  update_profiler_metrics(registry);
}

}  // namespace lms::obs
