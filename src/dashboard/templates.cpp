#include "lms/dashboard/templates.hpp"

#include "lms/util/logging.hpp"
#include "lms/util/strings.hpp"

namespace lms::dashboard {

namespace {

std::string substitute_string(const std::string& s, const VarMap& vars) {
  std::string out;
  out.reserve(s.size());
  std::size_t i = 0;
  while (i < s.size()) {
    if (s[i] == '$' && i + 1 < s.size() && s[i + 1] == '{') {
      const std::size_t end = s.find('}', i + 2);
      if (end != std::string::npos) {
        const std::string name = s.substr(i + 2, end - i - 2);
        const auto it = vars.find(name);
        if (it != vars.end()) {
          out += it->second;
          i = end + 1;
          continue;
        }
      }
    }
    out.push_back(s[i++]);
  }
  return out;
}

}  // namespace

json::Value substitute(const json::Value& tpl, const VarMap& vars) {
  switch (tpl.type()) {
    case json::Type::kString:
      return json::Value(substitute_string(tpl.get_string(), vars));
    case json::Type::kArray: {
      json::Array out;
      out.reserve(tpl.get_array().size());
      for (const auto& v : tpl.get_array()) out.push_back(substitute(v, vars));
      return json::Value(std::move(out));
    }
    case json::Type::kObject: {
      json::Object out;
      for (const auto& [k, v] : tpl.get_object()) {
        out[substitute_string(k, vars)] = substitute(v, vars);
      }
      return json::Value(std::move(out));
    }
    default:
      return tpl;
  }
}

json::Value expand_dashboard(const json::Value& tpl, const VarMap& vars,
                             const std::vector<std::string>& hosts) {
  // First pass: expand repeated rows, then substitute remaining variables.
  json::Value result = tpl;
  if (result.is_object()) {
    json::Object& obj = result.get_object();
    if (json::Value* rows = obj.find("rows"); rows != nullptr && rows->is_array()) {
      json::Array expanded;
      for (const auto& row : rows->get_array()) {
        const bool repeat =
            row.is_object() && row["repeat"].as_string() == "host" && !hosts.empty();
        if (!repeat) {
          expanded.push_back(row);
          continue;
        }
        for (const auto& host : hosts) {
          VarMap host_vars = vars;
          host_vars["HOST"] = host;
          json::Value instance = substitute(row, host_vars);
          if (instance.is_object()) instance.get_object().erase("repeat");
          expanded.push_back(std::move(instance));
        }
      }
      *rows = json::Value(std::move(expanded));
    }
  }
  return substitute(result, vars);
}

namespace {

constexpr std::string_view kJobDashboard = R"json({
  "title": "Job ${JOB_ID} (${USER})",
  "uid": "job-${JOB_ID}",
  "tags": ["lms", "job"],
  "time": {"from": "${FROM}", "to": "${TO}"},
  "refresh": "30s",
  "annotations": {
    "list": [{
      "name": "job events",
      "datasource": "${DB}",
      "query": "SELECT text FROM events WHERE jobid='${JOB_ID}'"
    }, {
      "name": "user events",
      "datasource": "${DB}",
      "query": "SELECT text FROM userevents WHERE jobid='${JOB_ID}'"
    }]
  },
  "rows": []
})json";

constexpr std::string_view kSystemRow = R"json({
  "title": "System metrics ${HOST}",
  "repeat": "host",
  "panels": [
    {
      "title": "CPU ${HOST}",
      "type": "graph",
      "datasource": "${DB}",
      "targets": [
        {"query": "SELECT mean(user_percent) FROM cpu WHERE hostname='${HOST}' AND jobid='${JOB_ID}' AND time >= ${FROM} AND time < ${TO} GROUP BY time(30s)"},
        {"query": "SELECT mean(system_percent) FROM cpu WHERE hostname='${HOST}' AND jobid='${JOB_ID}' AND time >= ${FROM} AND time < ${TO} GROUP BY time(30s)"}
      ]
    },
    {
      "title": "Memory ${HOST}",
      "type": "graph",
      "datasource": "${DB}",
      "targets": [
        {"query": "SELECT mean(used_percent) FROM memory WHERE hostname='${HOST}' AND jobid='${JOB_ID}' AND time >= ${FROM} AND time < ${TO} GROUP BY time(30s)"}
      ]
    },
    {
      "title": "Network ${HOST}",
      "type": "graph",
      "datasource": "${DB}",
      "targets": [
        {"query": "SELECT mean(rx_bytes_per_sec) FROM network WHERE hostname='${HOST}' AND jobid='${JOB_ID}' AND time >= ${FROM} AND time < ${TO} GROUP BY time(30s)"},
        {"query": "SELECT mean(tx_bytes_per_sec) FROM network WHERE hostname='${HOST}' AND jobid='${JOB_ID}' AND time >= ${FROM} AND time < ${TO} GROUP BY time(30s)"}
      ]
    }
  ]
})json";

constexpr std::string_view kLikwidRow = R"json({
  "title": "Hardware performance monitoring",
  "panels": [
    {
      "title": "DP FLOP rate",
      "type": "graph",
      "datasource": "${DB}",
      "targets": [
        {"query": "SELECT mean(dp_mflop_per_s) FROM likwid_mem_dp WHERE jobid='${JOB_ID}' AND time >= ${FROM} AND time < ${TO} GROUP BY time(30s), hostname"}
      ]
    },
    {
      "title": "Memory bandwidth",
      "type": "graph",
      "datasource": "${DB}",
      "targets": [
        {"query": "SELECT mean(memory_bandwidth_mbytes_per_s) FROM likwid_mem_dp WHERE jobid='${JOB_ID}' AND time >= ${FROM} AND time < ${TO} GROUP BY time(30s), hostname"}
      ]
    },
    {
      "title": "IPC",
      "type": "graph",
      "datasource": "${DB}",
      "targets": [
        {"query": "SELECT mean(ipc) FROM likwid_mem_dp WHERE jobid='${JOB_ID}' AND time >= ${FROM} AND time < ${TO} GROUP BY time(30s), hostname"}
      ]
    }
  ]
})json";

constexpr std::string_view kUsermetricRow = R"json({
  "title": "Application metrics",
  "panels": []
})json";

}  // namespace

TemplateStore::TemplateStore() {
  struct Builtin {
    const char* name;
    std::string_view text;
  };
  const Builtin builtins[] = {
      {"job_dashboard", kJobDashboard},
      {"system_row", kSystemRow},
      {"likwid_row", kLikwidRow},
      {"usermetric_row", kUsermetricRow},
  };
  for (const auto& b : builtins) {
    if (auto status = add(b.name, b.text); !status.ok()) {
      LMS_ERROR("dashboard") << "builtin template '" << b.name
                             << "' is invalid: " << status.message();
    }
  }
}

util::Status TemplateStore::add(const std::string& name, std::string_view json_text) {
  auto parsed = json::parse(json_text);
  if (!parsed.ok()) return util::Status::error(parsed.message());
  templates_.insert_or_assign(name, parsed.take());
  return {};
}

const json::Value* TemplateStore::find(const std::string& name) const {
  const auto it = templates_.find(name);
  return it != templates_.end() ? &it->second : nullptr;
}

std::vector<std::string> TemplateStore::names() const {
  std::vector<std::string> out;
  out.reserve(templates_.size());
  for (const auto& [name, _] : templates_) out.push_back(name);
  return out;
}

std::string panel_query(const std::string& field, const std::string& measurement,
                        const VarMap& tag_filters, const std::string& agg,
                        const std::string& window) {
  std::string q = "SELECT " + agg + "(" + field + ") FROM " + measurement;
  bool first = true;
  for (const auto& [k, v] : tag_filters) {
    q += first ? " WHERE " : " AND ";
    first = false;
    q += k + "='" + v + "'";
  }
  q += (first ? " WHERE " : " AND ");
  q += "time >= ${FROM} AND time < ${TO} GROUP BY time(" + window + ")";
  return q;
}

}  // namespace lms::dashboard
