#include "lms/dashboard/agent.hpp"

#include <cstdio>
#include <cstdlib>
#include <set>

#include "lms/analysis/roofline.hpp"
#include "lms/obs/cpuprofiler.hpp"
#include "lms/obs/metrics.hpp"
#include "lms/obs/runtime.hpp"
#include "lms/obs/trace.hpp"
#include "lms/tsdb/trace_assembly.hpp"
#include "lms/util/strings.hpp"

namespace lms::dashboard {

namespace {

/// Region roofline table -> JSON rows, shared by the /regions endpoint and
/// the job dashboard's Regions panel.
json::Value regions_to_json(const std::vector<analysis::RegionRoofline>& regions) {
  json::Array out;
  for (const auto& rr : regions) {
    json::Object o;
    o["region"] = rr.region;
    o["time_share"] = rr.time_share;
    o["calls"] = static_cast<std::int64_t>(rr.calls);
    o["operational_intensity"] = rr.roofline.operational_intensity;
    o["measured_gflops"] = rr.roofline.measured_gflops;
    o["attainable_gflops"] = rr.roofline.attainable_gflops;
    o["efficiency"] = rr.roofline.efficiency;
    o["bound"] = rr.roofline.memory_bound ? "memory" : "compute";
    out.emplace_back(std::move(o));
  }
  return json::Value(std::move(out));
}

}  // namespace

DashboardAgent::DashboardAgent(tsdb::Storage& storage, const analysis::JobReporter& reporter,
                               const util::Clock& clock, Options options)
    : storage_(storage), reporter_(reporter), clock_(clock), options_(std::move(options)) {}

std::vector<std::string> DashboardAgent::discover_user_fields(const std::string& job_id) const {
  const tsdb::ReadSnapshot snap = storage_.snapshot(options_.database);
  if (!snap) return {};
  std::set<std::string> fields;
  for (const tsdb::Series* s : snap->series_matching("usermetric", {{"jobid", job_id}})) {
    for (const auto& [field, _] : s->columns) fields.insert(field);
  }
  return {fields.begin(), fields.end()};
}

std::vector<std::string> DashboardAgent::discover_regions(const std::string& job_id) const {
  const tsdb::ReadSnapshot snap = storage_.snapshot(options_.database);
  if (!snap) return {};
  std::set<std::string> regions;
  for (const tsdb::Series* s : snap->series_matching("lms_regions", {{"jobid", job_id}})) {
    const std::string_view r = s->tag("region");
    if (!r.empty()) regions.emplace(r);
  }
  return {regions.begin(), regions.end()};
}

json::Value DashboardAgent::generate_job_dashboard(const core::RunningJob& job,
                                                   util::TimeNs now) {
  VarMap vars;
  vars["JOB_ID"] = job.job_id;
  vars["USER"] = job.user;
  vars["DB"] = options_.datasource;
  vars["FROM"] = std::to_string(job.start_time);
  vars["TO"] = std::to_string(now);

  const json::Value* tpl = templates_.find("job_dashboard");
  json::Value dash = tpl != nullptr ? *tpl : json::Value(json::Object{});
  dash = substitute(dash, vars);
  if (!dash.is_object()) dash = json::Value(json::Object{});
  json::Object& dobj = dash.get_object();
  if (!dobj.contains("rows")) dobj["rows"] = json::Array{};

  // Header: analysis results so badly behaving jobs show on the initial view.
  const analysis::JobEvaluation eval =
      reporter_.evaluate(job.job_id, job.nodes, job.start_time, now);
  json::Object header;
  header["title"] = "Job evaluation";
  header["type"] = "table";
  header["content"] = analysis::to_json(eval);
  json::Array rows;
  rows.emplace_back(json::Object{{"title", json::Value("Analysis")},
                                 {"panels", json::Value(json::Array{json::Value(std::move(header))})}});

  // Templated rows: per-host system metrics and the HPM row.
  if (const json::Value* row_tpl = templates_.find("system_row")) {
    for (const auto& host : job.nodes) {
      VarMap host_vars = vars;
      host_vars["HOST"] = host;
      json::Value row = substitute(*row_tpl, host_vars);
      if (row.is_object()) row.get_object().erase("repeat");
      rows.push_back(std::move(row));
    }
  }
  if (const json::Value* row_tpl = templates_.find("likwid_row")) {
    rows.push_back(substitute(*row_tpl, vars));
  }

  // Application-level metrics discovered from the database (§IV): one panel
  // per reported field.
  const std::vector<std::string> user_fields = discover_user_fields(job.job_id);
  if (!user_fields.empty()) {
    json::Object row;
    if (const json::Value* row_tpl = templates_.find("usermetric_row");
        row_tpl != nullptr && row_tpl->is_object()) {
      row = substitute(*row_tpl, vars).get_object();
    } else {
      row["title"] = "Application metrics";
    }
    json::Array panels;
    for (const auto& field : user_fields) {
      json::Object panel;
      panel["title"] = field;
      panel["type"] = "graph";
      panel["datasource"] = options_.datasource;
      json::Object target;
      target["query"] =
          substitute(json::Value(panel_query(field, "usermetric", {{"jobid", job.job_id}})),
                     vars)
              .as_string();
      panel["targets"] = json::Array{json::Value(std::move(target))};
      panels.emplace_back(std::move(panel));
    }
    row["panels"] = std::move(panels);
    rows.emplace_back(std::move(row));
  }

  // Per-region profile (profiling SDK): a roofline placement table over the
  // job's marker regions plus per-region timelines out of lms_regions.
  const std::vector<std::string> regions = discover_regions(job.job_id);
  if (!regions.empty()) {
    json::Object row;
    row["title"] = "Regions (marker profile)";
    json::Array panels;
    json::Object table;
    table["title"] = "Region roofline";
    table["type"] = "table";
    table["datasource"] = options_.datasource;
    auto per_region = analysis::roofline_per_region(reporter_.fetcher(), job.job_id,
                                                    job.start_time, now, reporter_.arch());
    if (per_region.ok()) table["content"] = regions_to_json(*per_region);
    panels.emplace_back(std::move(table));
    static constexpr const char* kRegionFields[] = {"dp_mflop_per_s", "exclusive_ns"};
    for (const char* field : kRegionFields) {
      json::Object panel;
      panel["title"] = std::string(field) + " by region";
      panel["type"] = "graph";
      panel["datasource"] = options_.datasource;
      json::Object target;
      target["query"] = std::string("SELECT mean(") + field +
                        ") FROM lms_regions WHERE jobid='" + job.job_id +
                        "' AND time >= " + std::to_string(job.start_time) +
                        " GROUP BY time(60s), region";
      panel["targets"] = json::Array{json::Value(std::move(target))};
      panels.emplace_back(std::move(panel));
    }
    row["panels"] = std::move(panels);
    rows.emplace_back(std::move(row));
  }

  dobj["rows"] = std::move(rows);
  dobj["generated_at"] = static_cast<std::int64_t>(now);

  const std::string uid = dash["uid"].as_string("job-" + job.job_id);
  {
    const core::sync::LockGuard lock(mu_);
    dashboards_[uid] = dash;
  }
  return dash;
}

json::Value DashboardAgent::generate_admin_dashboard(const std::vector<core::RunningJob>& jobs,
                                                     util::TimeNs now) {
  json::Object dash;
  dash["title"] = "Running jobs (admin)";
  dash["uid"] = "admin";
  dash["tags"] = json::Array{json::Value("lms"), json::Value("admin")};
  dash["generated_at"] = static_cast<std::int64_t>(now);
  json::Array rows;
  for (const auto& job : jobs) {
    json::Object row;
    row["title"] = "Job " + job.job_id + " (" + job.user + ")";
    json::Array panels;
    json::Object info;
    info["type"] = "text";
    info["title"] = "info";
    info["content"] = "nodes: " + util::join(job.nodes, ", ") +
                      "; running " + util::format_duration(now - job.start_time);
    panels.emplace_back(std::move(info));
    // Thumbnails: small graphs referencing the job dashboard's key series.
    json::Object thumb;
    thumb["type"] = "graph";
    thumb["title"] = "DP FLOP rate";
    thumb["thumbnail"] = true;
    thumb["dashboard_uid"] = "job-" + job.job_id;
    json::Object target;
    target["query"] = "SELECT mean(dp_mflop_per_s) FROM likwid_mem_dp WHERE jobid='" +
                      job.job_id + "' AND time >= " + std::to_string(job.start_time) +
                      " GROUP BY time(60s), hostname";
    thumb["targets"] = json::Array{json::Value(std::move(target))};
    panels.emplace_back(std::move(thumb));
    row["panels"] = std::move(panels);
    rows.emplace_back(std::move(row));
  }
  dash["rows"] = std::move(rows);
  json::Value v(std::move(dash));
  {
    const core::sync::LockGuard lock(mu_);
    dashboards_["admin"] = v;
  }
  return v;
}

json::Value DashboardAgent::generate_user_dashboard(const std::string& user,
                                                    const std::vector<core::RunningJob>& jobs,
                                                    util::TimeNs now) {
  json::Object dash;
  dash["title"] = "Jobs of " + user;
  dash["uid"] = "user-" + user;
  dash["tags"] = json::Array{json::Value("lms"), json::Value("user")};
  dash["generated_at"] = static_cast<std::int64_t>(now);
  // The per-user database the router duplicates into (when configured);
  // the user only ever needs access to their own data.
  const std::string user_db = "user_" + user;
  const bool has_user_db = [&] {
    for (const auto& name : storage_.databases()) {
      if (name == user_db) return true;
    }
    return false;
  }();
  dash["datasource"] = has_user_db ? user_db : options_.datasource;
  json::Array rows;
  for (const auto& job : jobs) {
    if (job.user != user) continue;
    json::Object row;
    row["title"] = "Job " + job.job_id;
    json::Array panels;
    json::Object info;
    info["type"] = "text";
    info["title"] = "info";
    info["content"] = "nodes: " + util::join(job.nodes, ", ") + "; running " +
                      util::format_duration(now - job.start_time);
    panels.emplace_back(std::move(info));
    json::Object graph;
    graph["type"] = "graph";
    graph["title"] = "DP FLOP rate";
    graph["dashboard_uid"] = "job-" + job.job_id;
    json::Object target;
    target["query"] = "SELECT mean(dp_mflop_per_s) FROM likwid_mem_dp WHERE jobid='" +
                      job.job_id + "' AND time >= " + std::to_string(job.start_time) +
                      " GROUP BY time(60s), hostname";
    graph["targets"] = json::Array{json::Value(std::move(target))};
    panels.emplace_back(std::move(graph));
    row["panels"] = std::move(panels);
    rows.emplace_back(std::move(row));
  }
  dash["rows"] = std::move(rows);
  json::Value v(std::move(dash));
  {
    const core::sync::LockGuard lock(mu_);
    dashboards_["user-" + user] = v;
  }
  return v;
}

json::Value DashboardAgent::generate_internals_dashboard(util::TimeNs now) {
  json::Object dash;
  dash["title"] = "LMS internals (self-monitoring)";
  dash["uid"] = "internals";
  dash["tags"] = json::Array{json::Value("lms"), json::Value("internals")};
  dash["generated_at"] = static_cast<std::int64_t>(now);

  // Each panel charts one instrument out of the lms_internal measurement
  // (tag "metric" carries the instrument name, histogram instruments expose
  // p50/p90/p99 fields).
  struct PanelSpec {
    const char* title;
    const char* metric;
    const char* field;
    const char* group_by_extra;  // extra GROUP BY tag ("" = none)
  };
  static constexpr PanelSpec kPanels[] = {
      {"Router ingest rate (points)", "router_points_in", "value", ""},
      {"Router forwarded (points)", "router_points_out", "value", ""},
      {"Router write latency p99 (ns)", "router_write_ns", "p99", ""},
      {"TSDB write latency p99 (ns)", "tsdb_write_ns", "p99", ""},
      {"TSDB samples stored", "tsdb_samples", "value", ""},
      {"PubSub messages dropped", "pubsub_dropped", "value", ""},
      {"Collector pending points", "collector_pending_points", "value", ", hostname"},
      {"Profiling active regions", "profiling_active_regions", "value", ", hostname"},
      {"Profiling marker overhead p99 (ns)", "profiling_marker_overhead_ns", "p99", ""},
  };
  json::Array rows;
  json::Object row;
  row["title"] = "Pipeline";
  json::Array panels;
  for (const PanelSpec& spec : kPanels) {
    json::Object panel;
    panel["title"] = spec.title;
    panel["type"] = "graph";
    panel["datasource"] = options_.datasource;
    json::Object target;
    target["query"] = std::string("SELECT mean(") + spec.field +
                      ") FROM lms_internal WHERE metric='" + spec.metric +
                      "' GROUP BY time(60s)" + spec.group_by_extra;
    panel["targets"] = json::Array{json::Value(std::move(target))};
    panels.emplace_back(std::move(panel));
  }
  row["panels"] = std::move(panels);
  rows.emplace_back(std::move(row));
  dash["rows"] = std::move(rows);

  json::Value v(std::move(dash));
  {
    const core::sync::LockGuard lock(mu_);
    dashboards_["internals"] = v;
  }
  return v;
}

json::Value DashboardAgent::generate_alerts_dashboard(util::TimeNs now) {
  json::Object dash;
  dash["title"] = "Alerts & health";
  dash["uid"] = "alerts";
  dash["tags"] = json::Array{json::Value("lms"), json::Value("alerts")};
  dash["generated_at"] = static_cast<std::int64_t>(now);

  json::Array rows;

  // Alert history straight out of the lms_alerts measurement.
  {
    json::Object row;
    row["title"] = "Alert history";
    json::Array panels;
    struct PanelSpec {
      const char* title;
      const char* query;
    };
    static constexpr PanelSpec kPanels[] = {
        {"Transitions by rule and state",
         "SELECT count(value) FROM lms_alerts GROUP BY time(60s), rule, state"},
        {"Firing events",
         "SELECT value FROM lms_alerts WHERE state='firing' ORDER BY time DESC LIMIT 50"},
        {"Deadman events per host",
         "SELECT count(value) FROM lms_alerts WHERE rule='deadman' "
         "GROUP BY time(60s), hostname, state"},
    };
    for (const PanelSpec& spec : kPanels) {
      json::Object panel;
      panel["title"] = spec.title;
      panel["type"] = "graph";
      panel["datasource"] = options_.datasource;
      json::Object target;
      target["query"] = spec.query;
      panel["targets"] = json::Array{json::Value(std::move(target))};
      panels.emplace_back(std::move(panel));
    }
    row["panels"] = std::move(panels);
    rows.emplace_back(std::move(row));
  }

  // The alert engine's own instruments, via the self-scrape loop.
  {
    json::Object row;
    row["title"] = "Alert engine";
    json::Array panels;
    static constexpr const char* kMetrics[] = {"alert_firing", "alert_transitions",
                                               "alert_evaluations"};
    for (const char* metric : kMetrics) {
      json::Object panel;
      panel["title"] = metric;
      panel["type"] = "graph";
      panel["datasource"] = options_.datasource;
      json::Object target;
      target["query"] = std::string("SELECT mean(value) FROM lms_internal WHERE metric='") +
                        metric + "' GROUP BY time(60s)";
      panel["targets"] = json::Array{json::Value(std::move(target))};
      panels.emplace_back(std::move(panel));
    }
    row["panels"] = std::move(panels);
    rows.emplace_back(std::move(row));
  }

  dash["rows"] = std::move(rows);
  json::Value v(std::move(dash));
  {
    const core::sync::LockGuard lock(mu_);
    dashboards_["alerts"] = v;
  }
  return v;
}

json::Value DashboardAgent::generate_runtime_dashboard(util::TimeNs now) {
  json::Object dash;
  dash["title"] = "LMS runtime (locks, queues, loops)";
  dash["uid"] = "runtime";
  dash["tags"] = json::Array{json::Value("lms"), json::Value("runtime")};
  dash["generated_at"] = static_cast<std::int64_t>(now);

  json::Array rows;

  // Lock contention: the lms_lock_* gauges the self-scrape exports, one
  // series per lock site (tag "lock").
  {
    json::Object row;
    row["title"] = "Lock contention";
    json::Array panels;
    struct PanelSpec {
      const char* title;
      const char* metric;
    };
    static constexpr PanelSpec kPanels[] = {
        {"Total wait by lock site (ns)", "lms_lock_wait_ns_total"},
        {"Contended acquisitions by lock site", "lms_lock_contended_total"},
        {"Wait p99 by lock site (ns)", "lms_lock_wait_p99_ns"},
        {"Max hold by lock site (ns)", "lms_lock_hold_ns_max"},
    };
    for (const PanelSpec& spec : kPanels) {
      json::Object panel;
      panel["title"] = spec.title;
      panel["type"] = "graph";
      panel["datasource"] = options_.datasource;
      json::Object target;
      target["query"] = std::string("SELECT mean(value) FROM lms_internal WHERE metric='") +
                        spec.metric + "' GROUP BY time(60s), lock";
      panel["targets"] = json::Array{json::Value(std::move(target))};
      panels.emplace_back(std::move(panel));
    }
    row["panels"] = std::move(panels);
    rows.emplace_back(std::move(row));
  }

  // Queue utilization and loop duty cycles.
  {
    json::Object row;
    row["title"] = "Queues & loops";
    json::Array panels;
    struct PanelSpec {
      const char* title;
      const char* metric;
      const char* group_tag;
    };
    static constexpr PanelSpec kPanels[] = {
        {"Queue depth", "lms_runtime_queue_depth", "queue"},
        {"Queue high watermark", "lms_runtime_queue_high_watermark", "queue"},
        {"Blocked pushes", "lms_runtime_queue_blocked_pushes_total", "queue"},
        {"Loop duty cycle (%)", "lms_runtime_loop_duty_pct", "loop"},
        {"Loop iterations", "lms_runtime_loop_iterations_total", "loop"},
    };
    for (const PanelSpec& spec : kPanels) {
      json::Object panel;
      panel["title"] = spec.title;
      panel["type"] = "graph";
      panel["datasource"] = options_.datasource;
      json::Object target;
      target["query"] = std::string("SELECT mean(value) FROM lms_internal WHERE metric='") +
                        spec.metric + "' GROUP BY time(60s), " + spec.group_tag;
      panel["targets"] = json::Array{json::Value(std::move(target))};
      panels.emplace_back(std::move(panel));
    }
    row["panels"] = std::move(panels);
    rows.emplace_back(std::move(row));
  }

  dash["rows"] = std::move(rows);
  json::Value v(std::move(dash));
  {
    const core::sync::LockGuard lock(mu_);
    dashboards_["runtime"] = v;
  }
  return v;
}

net::ComponentHealth DashboardAgent::health(bool readiness) const {
  net::ComponentHealth h;
  h.component = "dashboard";
  h.time = clock_.now();
  {
    const core::sync::LockGuard lock(mu_);
    h.add("dashboards", net::HealthStatus::kOk,
          std::to_string(dashboards_.size()) + " dashboards stored",
          static_cast<double>(dashboards_.size()));
  }
  const std::size_t templates = templates_.names().size();
  h.add("templates", net::HealthStatus::kOk,
        std::to_string(templates) + " templates loaded",
        static_cast<double>(templates));
  if (readiness) {
    const bool has_db = [&] {
      for (const auto& name : storage_.databases()) {
        if (name == options_.database) return true;
      }
      return false;
    }();
    h.add("database", has_db ? net::HealthStatus::kOk : net::HealthStatus::kDegraded,
          has_db ? "database '" + options_.database + "' present"
                 : "database '" + options_.database + "' not created yet");
  }
  return h;
}

std::size_t DashboardAgent::refresh(const std::vector<core::RunningJob>& jobs,
                                    util::TimeNs now) {
  std::size_t generated = 0;
  for (const auto& job : jobs) {
    generate_job_dashboard(job, now);
    ++generated;
  }
  generate_admin_dashboard(jobs, now);
  return generated + 1;
}

const json::Value* DashboardAgent::find_dashboard(const std::string& uid) const {
  const core::sync::LockGuard lock(mu_);
  const auto it = dashboards_.find(uid);
  return it != dashboards_.end() ? &it->second : nullptr;
}

std::vector<std::string> DashboardAgent::dashboard_uids() const {
  const core::sync::LockGuard lock(mu_);
  std::vector<std::string> out;
  out.reserve(dashboards_.size());
  for (const auto& [uid, _] : dashboards_) out.push_back(uid);
  return out;
}

net::HttpHandler DashboardAgent::handler() {
  return [this](const net::HttpRequest& req) -> net::HttpResponse {
    if (util::starts_with(req.path, "/api/dashboards/uid/")) {
      const std::string uid = req.path.substr(std::string("/api/dashboards/uid/").size());
      const core::sync::LockGuard lock(mu_);
      const auto it = dashboards_.find(uid);
      if (it == dashboards_.end()) return net::HttpResponse::not_found();
      return net::HttpResponse::json(200, it->second.dump());
    }
    if (req.path == "/api/search") {
      json::Array out;
      const core::sync::LockGuard lock(mu_);
      for (const auto& [uid, dash] : dashboards_) {
        json::Object entry;
        entry["uid"] = uid;
        entry["title"] = dash["title"].as_string();
        out.emplace_back(std::move(entry));
      }
      return net::HttpResponse::json(200, json::Value(std::move(out)).dump());
    }
    if (util::starts_with(req.path, "/trace/")) return handle_trace(req);
    if (req.path == "/flamegraph") return handle_flamegraph(req);
    if (util::starts_with(req.path, "/regions/")) return handle_regions(req);
    if (req.path == "/health") return net::health_response(health(false));
    if (req.path == "/ready") return net::ready_response(health(true));
    if (req.path == "/metrics") {
      // The agent keeps no private registry; serve the process-wide one
      // (transport instrumentation) plus the runtime/lock gauges.
      obs::Registry& registry = obs::Registry::global();
      obs::update_runtime_metrics(registry);
      auto resp = net::HttpResponse::text(200, obs::render_text(registry));
      resp.headers.set("Content-Type", obs::kTextExpositionContentType);
      return resp;
    }
    if (req.path == "/debug/runtime") return net::runtime_debug_response();
    if (req.path == "/debug/pprof") return net::pprof_response(req);
    return net::HttpResponse::not_found();
  };
}

net::HttpResponse DashboardAgent::handle_regions(const net::HttpRequest& req) {
  const std::string job_id =
      std::string(std::string_view(req.path).substr(std::string_view("/regions/").size()));
  if (job_id.empty()) return net::HttpResponse::bad_request("missing job id");
  const util::TimeNs t0 =
      static_cast<util::TimeNs>(std::atoll(req.query.get_or("from", "0").c_str()));
  const std::string to = req.query.get_or("to", "");
  const util::TimeNs t1 =
      to.empty() ? clock_.now() : static_cast<util::TimeNs>(std::atoll(to.c_str()));
  auto per_region =
      analysis::roofline_per_region(reporter_.fetcher(), job_id, t0, t1, reporter_.arch());
  if (!per_region.ok()) return net::HttpResponse::not_found();
  json::Object out;
  out["jobid"] = job_id;
  out["from"] = static_cast<std::int64_t>(t0);
  out["to"] = static_cast<std::int64_t>(t1);
  out["regions"] = regions_to_json(*per_region);
  return net::HttpResponse::json(200, json::Value(std::move(out)).dump());
}

net::HttpResponse DashboardAgent::handle_trace(const net::HttpRequest& req) {
  const auto id = obs::parse_trace_id_hex(
      std::string_view(req.path).substr(std::string_view("/trace/").size()));
  if (!id || *id == 0) {
    return net::HttpResponse::bad_request("bad trace id (want 16 hex characters)");
  }
  const std::string db = req.query.get_or("db", options_.trace_database);
  const tsdb::ReadSnapshot snap = storage_.snapshot(db);
  if (!snap) return net::HttpResponse::not_found();
  const tsdb::TraceTree tree = tsdb::assemble_trace(snap, *id);
  if (req.query.get_or("format", "") == "json") {
    return net::HttpResponse::json(200, tsdb::trace_tree_to_json(tree));
  }
  // Human view: the text waterfall wrapped in a minimal HTML page, linked
  // from nothing — operators paste the trace id from a log line, an
  // exemplar on /metrics or a slow-query entry.
  std::string body = "<!DOCTYPE html><html><head><title>trace " +
                     obs::trace_id_hex(*id) + "</title></head><body><pre>";
  for (const char c : tsdb::trace_tree_to_waterfall(tree)) {
    switch (c) {
      case '&':
        body += "&amp;";
        break;
      case '<':
        body += "&lt;";
        break;
      case '>':
        body += "&gt;";
        break;
      default:
        body += c;
    }
  }
  body += "</pre></body></html>";
  auto resp = net::HttpResponse::text(200, std::move(body));
  resp.headers.set("Content-Type", "text/html; charset=utf-8");
  return resp;
}

namespace {

void append_html_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
}

/// Merge tree built from the profiler's folded stacks. std::map keeps
/// sibling order stable across refreshes.
struct FlameNode {
  std::uint64_t total = 0;    ///< samples in this frame + descendants
  std::uint64_t self = 0;     ///< samples ending exactly here
  std::uint64_t trace_id = 0; ///< a sampled trace that ended here (0 = none)
  std::map<std::string, FlameNode> children;
};

/// Deterministic pastel from the frame name, flamegraph-style.
std::string flame_color(const std::string& name) {
  std::uint32_t h = 2166136261u;
  for (const char c : name) h = (h ^ static_cast<unsigned char>(c)) * 16777619u;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "hsl(%u,%u%%,%u%%)", h % 50, 60 + (h / 50) % 30,
                62 + (h / 1500) % 14);
  return buf;
}

/// Nested flexbox boxes: each child's flex weight is its sample count, so
/// the browser does the width math and no JavaScript is needed.
void render_flame(const FlameNode& node, std::uint64_t root_total, std::string& out) {
  if (node.children.empty()) return;
  out += "<div class=\"row\">";
  for (const auto& [name, child] : node.children) {
    const double pct =
        root_total > 0 ? 100.0 * static_cast<double>(child.total) / root_total : 0.0;
    char pct_buf[16];
    std::snprintf(pct_buf, sizeof(pct_buf), "%.2f", pct);
    out += "<div class=\"node\" style=\"flex-grow:";
    out += std::to_string(child.total);
    out += ";background:";
    out += flame_color(name);
    out += "\" title=\"";
    append_html_escaped(out, name);
    out += " — ";
    out += std::to_string(child.total);
    out += " samples (";
    out += pct_buf;
    out += "%)\"><div class=\"label\">";
    if (child.trace_id != 0) {
      out += "<a href=\"/trace/" + obs::trace_id_hex(child.trace_id) + "\">";
      append_html_escaped(out, name);
      out += "</a>";
    } else {
      append_html_escaped(out, name);
    }
    out += "</div>";
    render_flame(child, root_total, out);
    out += "</div>";
  }
  out += "</div>";
}

}  // namespace

net::HttpResponse DashboardAgent::handle_flamegraph(const net::HttpRequest& req) {
  obs::CpuProfiler& prof = obs::CpuProfiler::instance();
  prof.process_once();
  const std::size_t max_stacks = static_cast<std::size_t>(
      std::atoll(req.query.get_or("stacks", "400").c_str()));
  const std::vector<obs::ProfileStack> stacks = prof.snapshot(max_stacks);

  FlameNode root;
  for (const obs::ProfileStack& s : stacks) {
    root.total += s.count;
    FlameNode* node = &root;
    std::size_t pos = 0;
    while (pos <= s.stack.size()) {
      const std::size_t sep = s.stack.find(';', pos);
      const std::string frame =
          s.stack.substr(pos, sep == std::string::npos ? std::string::npos : sep - pos);
      node = &node->children[frame];
      node->total += s.count;
      if (sep == std::string::npos) break;
      pos = sep + 1;
    }
    node->self += s.count;
    if (s.trace_id != 0) node->trace_id = s.trace_id;
  }

  const obs::CpuProfiler::Stats stats = prof.stats();
  std::string body =
      "<!DOCTYPE html><html><head><title>cpu flamegraph</title><style>"
      "body{font:12px monospace;margin:12px}"
      ".row{display:flex;width:100%}"
      ".node{display:flex;flex-direction:column;flex-basis:0;min-width:0;"
      "border:1px solid #fff;border-radius:2px;overflow:hidden}"
      ".label{white-space:nowrap;overflow:hidden;text-overflow:ellipsis;"
      "padding:0 2px}"
      ".label a{color:#036;}"
      ".meta{color:#666;margin-bottom:8px}"
      "</style></head><body><h2>CPU profile</h2><p class=\"meta\">";
  body += prof.running() ? "profiler running at " + std::to_string(stats.hz) + " Hz"
                         : "profiler stopped";
  body += " · " + std::to_string(stats.samples_folded) + " samples · " +
          std::to_string(stats.stacks) +
          " stacks · frames link to traces where sampled · raw view: <a "
          "href=\"/debug/pprof\">/debug/pprof</a></p>";
  if (root.total == 0) {
    body += "<p>no samples yet</p>";
  } else {
    body += "<div class=\"flame\">";
    render_flame(root, root.total, body);
    body += "</div>";
  }
  body += "</body></html>";
  auto resp = net::HttpResponse::text(200, std::move(body));
  resp.headers.set("Content-Type", "text/html; charset=utf-8");
  return resp;
}

}  // namespace lms::dashboard
