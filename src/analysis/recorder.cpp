#include "lms/analysis/recorder.hpp"

#include "lms/lineproto/codec.hpp"
#include "lms/util/logging.hpp"

namespace lms::analysis {

FindingRecorder::FindingRecorder(net::HttpClient& client, std::string router_url,
                                 std::string database, std::string measurement)
    : client_(client),
      router_url_(std::move(router_url)),
      database_(std::move(database)),
      measurement_(std::move(measurement)) {}

std::size_t FindingRecorder::record(const std::vector<Finding>& findings) {
  if (findings.empty()) return 0;
  std::vector<lineproto::Point> points;
  points.reserve(findings.size());
  for (const auto& f : findings) {
    lineproto::Point p;
    p.measurement = measurement_;
    p.set_tag("rule", f.rule);
    p.set_tag("severity", std::string(severity_name(f.severity)));
    if (!f.hostname.empty()) p.set_tag("hostname", f.hostname);
    if (!f.job_id.empty()) p.set_tag("jobid", f.job_id);
    p.add_field("text", f.to_string());
    p.add_field("duration_s", util::ns_to_seconds(f.duration()));
    p.timestamp = f.end;
    p.normalize();
    points.push_back(std::move(p));
  }
  const std::string body = lineproto::serialize_batch(points);
  auto resp =
      client_.post(router_url_ + "/write?db=" + database_, body, "text/plain");
  if (!resp.ok() || !resp->ok()) {
    ++failures_;
    LMS_WARN("recorder") << "alert write failed";
    return 0;
  }
  recorded_ += points.size();
  return points.size();
}

}  // namespace lms::analysis
