#include "lms/analysis/online.hpp"

#include "lms/core/router.hpp"
#include "lms/lineproto/codec.hpp"

namespace lms::analysis {

OnlineRuleEngine::OnlineRuleEngine(std::vector<Rule> rules) : rules_(std::move(rules)) {}

void OnlineRuleEngine::observe(const lineproto::Point& point) {
  const std::string hostname(point.hostname());
  if (hostname.empty()) return;
  const std::string job_id(point.tag("jobid"));

  const core::sync::LockGuard lock(mu_);
  if (job_id.empty()) {
    // Un-enriched point: the host is not allocated to any job (the router
    // only tags hosts between the job start and end signals). Pathology
    // rules are job-specific — drop any state so an idle *unallocated*
    // node is never attributed to the previous job.
    if (host_jobs_.erase(hostname) > 0) {
      for (std::size_t r = 0; r < rules_.size(); ++r) {
        states_.erase(Key{r, hostname});
      }
    }
    return;
  }
  if (auto it = host_jobs_.find(hostname);
      it != host_jobs_.end() && it->second != job_id) {
    // A new job took over the host: old rule state must not carry over.
    for (std::size_t r = 0; r < rules_.size(); ++r) {
      states_.erase(Key{r, hostname});
    }
  }
  host_jobs_[hostname] = job_id;
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const Rule& rule = rules_[r];
    bool touched = false;
    RuleState& state = states_[Key{r, hostname}];
    if (state.conditions.size() != rule.conditions.size()) {
      state.conditions.resize(rule.conditions.size());
    }
    for (std::size_t c = 0; c < rule.conditions.size(); ++c) {
      const Condition& cond = rule.conditions[c];
      if (cond.metric.measurement != point.measurement) continue;
      const lineproto::FieldValue* fv = point.field(cond.metric.field);
      if (fv == nullptr || !fv->is_numeric()) continue;
      state.conditions[c].last_value = fv->as_double();
      state.conditions[c].last_update = point.timestamp;
      state.conditions[c].has_value = true;
      touched = true;
    }
    if (touched) {
      update_rule(r, hostname, job_id.empty() ? host_jobs_[hostname] : job_id,
                  point.timestamp);
    }
  }
}

void OnlineRuleEngine::update_rule(std::size_t rule_index, const std::string& hostname,
                                   const std::string& job_id, util::TimeNs now) {
  const Rule& rule = rules_[rule_index];
  RuleState& state = states_[Key{rule_index, hostname}];
  state.last_seen = now;

  bool all_violated = true;
  for (std::size_t c = 0; c < rule.conditions.size(); ++c) {
    const ConditionState& cs = state.conditions[c];
    // Stale values (older than 3 resolutions) do not count as evidence.
    if (!cs.has_value || now - cs.last_update > 3 * rule.resolution ||
        !rule.conditions[c].violated(cs.last_value)) {
      all_violated = false;
      break;
    }
  }
  if (!all_violated) {
    state.violated_since.reset();
    state.fired = false;
    return;
  }
  if (!state.violated_since) state.violated_since = now;
  if (!state.fired && now - *state.violated_since >= rule.min_duration) {
    state.fired = true;
    Finding f;
    f.rule = rule.name;
    f.description = rule.description;
    f.hostname = hostname;
    f.job_id = job_id;
    f.severity = rule.severity;
    f.start = *state.violated_since;
    f.end = now;
    fired_.push_back(std::move(f));
  }
}

void OnlineRuleEngine::observe_lines(std::string_view body) {
  for (const auto& p : lineproto::parse_lenient(body, nullptr)) {
    observe(p);
  }
}

std::vector<Finding> OnlineRuleEngine::take_findings() {
  const core::sync::LockGuard lock(mu_);
  std::vector<Finding> out;
  out.swap(fired_);
  return out;
}

std::vector<Finding> OnlineRuleEngine::active() const {
  const core::sync::LockGuard lock(mu_);
  std::vector<Finding> out;
  for (const auto& [key, state] : states_) {
    if (!state.fired) continue;
    const Rule& rule = rules_[key.first];
    Finding f;
    f.rule = rule.name;
    f.description = rule.description;
    f.hostname = key.second;
    const auto jit = host_jobs_.find(key.second);
    f.job_id = jit != host_jobs_.end() ? jit->second : "";
    f.severity = rule.severity;
    f.start = state.violated_since.value_or(state.last_seen);
    f.end = state.last_seen;
    out.push_back(std::move(f));
  }
  return out;
}

StreamAnalyzer::StreamAnalyzer(net::PubSubBroker& broker, std::vector<Rule> rules)
    : subscription_(broker.subscribe(std::string(core::MetricsRouter::kTopicMetrics))),
      engine_(std::move(rules)) {}

std::size_t StreamAnalyzer::pump() {
  std::size_t n = 0;
  while (auto msg = subscription_->try_receive()) {
    engine_.observe_lines(msg->payload);
    ++n;
  }
  return n;
}

}  // namespace lms::analysis
