#include "lms/analysis/roofline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "lms/util/strings.hpp"

namespace lms::analysis {

std::string RooflineResult::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "OI=%.3f flop/byte, measured %.1f GF/s of %.1f GF/s attainable "
                "(%.0f%%, %s; roofs: %.1f GF/s, %.1f GB/s, ridge at %.2f)",
                operational_intensity, measured_gflops, attainable_gflops,
                efficiency * 100.0, memory_bound ? "memory-bound" : "compute-bound",
                peak_gflops, peak_bandwidth_gbs, ridge_intensity);
  return buf;
}

RooflineResult roofline_evaluate(double measured_flops_per_sec, double measured_bytes_per_sec,
                                 const hpm::CounterArchitecture& arch) {
  RooflineResult r;
  r.peak_gflops = arch.peak_dp_flops_per_core * arch.total_cores() / 1e9;
  r.peak_bandwidth_gbs = arch.peak_mem_bw_per_socket * arch.sockets / 1e9;
  r.ridge_intensity =
      r.peak_bandwidth_gbs > 0 ? r.peak_gflops / r.peak_bandwidth_gbs : 0.0;
  r.measured_gflops = measured_flops_per_sec / 1e9;
  r.operational_intensity =
      measured_bytes_per_sec > 0 ? measured_flops_per_sec / measured_bytes_per_sec : 0.0;
  r.memory_bound = r.operational_intensity < r.ridge_intensity;
  r.attainable_gflops =
      std::min(r.peak_gflops, r.operational_intensity * r.peak_bandwidth_gbs);
  r.efficiency =
      r.attainable_gflops > 0 ? r.measured_gflops / r.attainable_gflops : 0.0;
  return r;
}

util::Result<RooflineResult> roofline_from_db(const MetricFetcher& fetcher,
                                              const std::vector<std::string>& hosts,
                                              const std::string& job_id, util::TimeNs t0,
                                              util::TimeNs t1,
                                              const hpm::CounterArchitecture& arch) {
  double sum_flops = 0;
  double sum_bw = 0;
  int n = 0;
  for (const auto& host : hosts) {
    auto flops =
        fetcher.fetch_host({"likwid_mem_dp", "dp_mflop_per_s"}, host, job_id, t0, t1);
    auto bw = fetcher.fetch_host({"likwid_mem_dp", "memory_bandwidth_mbytes_per_s"}, host,
                                 job_id, t0, t1);
    if (!flops.ok() || flops->empty() || !bw.ok() || bw->empty()) continue;
    sum_flops += flops->mean() * 1e6;
    sum_bw += bw->mean() * 1e6;
    ++n;
  }
  if (n == 0) {
    return util::Result<RooflineResult>::error(
        "no MEM_DP data for job '" + job_id + "' in the given range");
  }
  return roofline_evaluate(sum_flops / n, sum_bw / n, arch);
}

util::Result<std::vector<RegionRoofline>> roofline_per_region(
    const MetricFetcher& fetcher, const std::string& job_id, util::TimeNs t0, util::TimeNs t1,
    const hpm::CounterArchitecture& arch) {
  const std::vector<std::string> regions =
      fetcher.tag_values("lms_regions", "region", {{"jobid", job_id}});
  if (regions.empty()) {
    return util::Result<std::vector<RegionRoofline>>::error(
        "no lms_regions data for job '" + job_id + "' (profiling off or not flushed)");
  }
  std::vector<RegionRoofline> out;
  double total_time = 0.0;
  for (const auto& region : regions) {
    const std::vector<lineproto::Tag> filters{{"jobid", job_id}, {"region", region}};
    auto flops = fetcher.fetch({"lms_regions", "dp_mflop_per_s"}, filters, t0, t1);
    auto bw = fetcher.fetch({"lms_regions", "memory_bandwidth_mbytes_per_s"}, filters, t0, t1);
    auto incl = fetcher.fetch({"lms_regions", "inclusive_ns"}, filters, t0, t1);
    auto calls = fetcher.fetch({"lms_regions", "count"}, filters, t0, t1);
    if (!flops.ok() || flops->empty() || !bw.ok() || bw->empty()) continue;
    RegionRoofline rr;
    rr.region = region;
    // Each lms_regions point carries the region's rates on one host over one
    // flush interval; the mean is the per-node average, like roofline_from_db.
    rr.roofline = roofline_evaluate(flops->mean() * 1e6, bw->mean() * 1e6, arch);
    if (incl.ok() && !incl->empty()) {
      rr.time_share = incl->mean() * static_cast<double>(incl->size());  // sum, for now
      total_time += rr.time_share;
    }
    if (calls.ok() && !calls->empty()) {
      rr.calls = static_cast<std::uint64_t>(
          calls->mean() * static_cast<double>(calls->size()) + 0.5);
    }
    out.push_back(std::move(rr));
  }
  if (out.empty()) {
    return util::Result<std::vector<RegionRoofline>>::error(
        "lms_regions series of job '" + job_id + "' carry no MEM_DP derived fields");
  }
  for (auto& rr : out) {
    rr.time_share = total_time > 0 ? rr.time_share / total_time : 0.0;
  }
  std::sort(out.begin(), out.end(), [](const RegionRoofline& a, const RegionRoofline& b) {
    return a.time_share > b.time_share;
  });
  return out;
}

std::string roofline_chart(const RooflineResult& r, int width, int height) {
  // Log-log plot: x = OI in [ridge/64, ridge*64], y = GF/s.
  const double x_lo = r.ridge_intensity / 64.0;
  const double x_hi = r.ridge_intensity * 64.0;
  const double y_hi = r.peak_gflops * 2.0;
  const double y_lo = r.peak_gflops / 1024.0;
  const double lx_lo = std::log2(x_lo);
  const double lx_hi = std::log2(x_hi);
  const double ly_lo = std::log2(y_lo);
  const double ly_hi = std::log2(y_hi);

  width = std::max(20, width);
  height = std::max(8, height);
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  auto col_of = [&](double oi) {
    const double norm = (std::log2(std::max(oi, x_lo)) - lx_lo) / (lx_hi - lx_lo);
    return std::clamp(static_cast<int>(std::lround(norm * (width - 1))), 0, width - 1);
  };
  auto row_of = [&](double gf) {
    const double norm = (std::log2(std::clamp(gf, y_lo, y_hi)) - ly_lo) / (ly_hi - ly_lo);
    return std::clamp(height - 1 - static_cast<int>(std::lround(norm * (height - 1))), 0,
                      height - 1);
  };
  // The roof.
  for (int c = 0; c < width; ++c) {
    const double oi = std::exp2(lx_lo + (lx_hi - lx_lo) * c / (width - 1));
    const double roof = std::min(r.peak_gflops, oi * r.peak_bandwidth_gbs);
    grid[static_cast<std::size_t>(row_of(roof))][static_cast<std::size_t>(c)] = '_';
  }
  // The ridge marker and the job's point.
  grid[static_cast<std::size_t>(row_of(r.peak_gflops))]
      [static_cast<std::size_t>(col_of(r.ridge_intensity))] = '+';
  grid[static_cast<std::size_t>(row_of(std::max(r.measured_gflops, y_lo)))]
      [static_cast<std::size_t>(col_of(std::max(r.operational_intensity, x_lo)))] = 'X';

  std::string out = "Roofline (log-log): X = job, _ = attainable, + = ridge\n";
  char axis[64];
  for (int row = 0; row < height; ++row) {
    if (row == 0) {
      std::snprintf(axis, sizeof(axis), "%8.1f |", y_hi);
    } else if (row == height - 1) {
      std::snprintf(axis, sizeof(axis), "%8.1f |", y_lo);
    } else {
      std::snprintf(axis, sizeof(axis), "%8s |", "");
    }
    out += axis + grid[static_cast<std::size_t>(row)] + "\n";
  }
  std::snprintf(axis, sizeof(axis), "%8s +", "");
  out += axis + std::string(static_cast<std::size_t>(width), '-') + "\n";
  std::snprintf(axis, sizeof(axis), "%10.3g", x_lo);
  out += axis + std::string(static_cast<std::size_t>(std::max(0, width - 10)), ' ');
  std::snprintf(axis, sizeof(axis), "%.3g", x_hi);
  out += axis;
  out += "  [flop/byte]\n";
  out += "          " + r.to_string() + "\n";
  return out;
}

}  // namespace lms::analysis
