#include "lms/analysis/fetch.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace lms::analysis {

double MetricSeries::mean() const {
  if (values.empty()) return 0.0;
  double sum = 0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double MetricSeries::min() const {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double MetricSeries::max() const {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double MetricSeries::stddev() const {
  if (values.size() < 2) return 0.0;
  const double m = mean();
  double ss = 0;
  for (const double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double MetricSeries::fraction_below(double threshold) const {
  if (values.empty()) return 0.0;
  std::size_t n = 0;
  for (const double v : values) {
    if (v < threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(values.size());
}

double MetricSeries::fraction_above(double threshold) const {
  if (values.empty()) return 0.0;
  std::size_t n = 0;
  for (const double v : values) {
    if (v > threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(values.size());
}

MetricFetcher::MetricFetcher(tsdb::Storage& storage, std::string database)
    : storage_(storage), database_(std::move(database)) {}

util::Result<MetricSeries> MetricFetcher::fetch(const MetricRef& ref,
                                                const std::vector<lineproto::Tag>& tag_filters,
                                                util::TimeNs t0, util::TimeNs t1,
                                                util::TimeNs window) const {
  tsdb::Statement stmt;
  stmt.kind = tsdb::StatementKind::kSelect;
  tsdb::SelectStatement& sel = stmt.select;
  tsdb::FieldExpr fe;
  fe.field = ref.field;
  fe.alias = "value";
  if (window > 0) {
    fe.agg = tsdb::Aggregator::kMean;
    sel.group_by_time = window;
  }
  sel.fields.push_back(std::move(fe));
  sel.measurement = ref.measurement;
  for (const auto& [k, v] : tag_filters) {
    sel.tag_conditions.push_back(tsdb::TagCondition{k, v, false});
  }
  sel.time_min = t0;
  sel.time_max = t1;

  const tsdb::ReadSnapshot snap = storage_.snapshot(database_);
  if (!snap) {
    return util::Result<MetricSeries>::error("database '" + database_ + "' not found");
  }
  auto result = tsdb::execute(snap, stmt);
  if (!result.ok()) return util::Result<MetricSeries>::error(result.message());
  MetricSeries out;
  for (const auto& rs : result->series) {
    for (const auto& row : rs.values) {
      if (row.size() < 2) continue;
      if (!row[1].is_numeric()) continue;
      out.times.push_back(row[0].as_int());
      out.values.push_back(row[1].as_double());
    }
  }
  return out;
}

util::Result<MetricSeries> MetricFetcher::fetch_host(const MetricRef& ref,
                                                     const std::string& hostname,
                                                     const std::string& job_id, util::TimeNs t0,
                                                     util::TimeNs t1, util::TimeNs window) const {
  std::vector<lineproto::Tag> filters;
  filters.emplace_back("hostname", hostname);
  if (!job_id.empty()) filters.emplace_back("jobid", job_id);
  return fetch(ref, filters, t0, t1, window);
}

std::vector<std::string> MetricFetcher::hosts_of_job(const MetricRef& ref,
                                                     const std::string& job_id) const {
  const tsdb::ReadSnapshot snap = storage_.snapshot(database_);
  if (!snap) return {};
  std::set<std::string> hosts;
  for (const tsdb::Series* s :
       snap->series_matching(ref.measurement, {{"jobid", job_id}})) {
    const std::string_view h = s->tag("hostname");
    if (!h.empty()) hosts.emplace(h);
  }
  return {hosts.begin(), hosts.end()};
}

std::vector<std::string> MetricFetcher::tag_values(
    const std::string& measurement, const std::string& tag_key,
    const std::vector<lineproto::Tag>& tag_filters) const {
  const tsdb::ReadSnapshot snap = storage_.snapshot(database_);
  if (!snap) return {};
  std::set<std::string> values;
  for (const tsdb::Series* s : snap->series_matching(measurement, tag_filters)) {
    const std::string_view v = s->tag(tag_key);
    if (!v.empty()) values.emplace(v);
  }
  return {values.begin(), values.end()};
}

}  // namespace lms::analysis
