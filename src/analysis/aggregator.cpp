#include "lms/analysis/aggregator.hpp"

#include <algorithm>

#include "lms/core/router.hpp"
#include "lms/lineproto/codec.hpp"
#include "lms/util/logging.hpp"
#include "lms/util/strings.hpp"

namespace lms::analysis {

StreamAggregator::StreamAggregator(net::PubSubBroker& broker, net::HttpClient& client,
                                   Options options)
    : subscription_(broker.subscribe(std::string(core::MetricsRouter::kTopicMetrics))),
      client_(client),
      options_(std::move(options)) {}

bool StreamAggregator::measurement_selected(const std::string& measurement) const {
  if (util::ends_with(measurement, options_.suffix)) return false;  // no recursion
  if (options_.measurement_globs.empty()) return true;
  for (const auto& glob : options_.measurement_globs) {
    if (util::glob_match(glob, measurement)) return true;
  }
  return false;
}

void StreamAggregator::consume(const lineproto::Point& point) {
  const std::string job(point.tag("jobid"));
  if (job.empty()) return;  // job-level aggregation only
  if (!measurement_selected(point.measurement)) return;
  const std::string host(point.hostname());
  const util::TimeNs window_start = (point.timestamp / options_.window) * options_.window;
  for (const auto& [field, value] : point.fields) {
    if (!value.is_numeric()) continue;
    const double v = value.as_double();
    WindowState& w =
        windows_[Key{job, point.measurement, field, window_start}];
    if (w.count == 0) {
      w.min = v;
      w.max = v;
    } else {
      w.min = std::min(w.min, v);
      w.max = std::max(w.max, v);
    }
    w.sum += v;
    ++w.count;
    if (!host.empty()) w.hosts.insert(host);
  }
  ++stats_.points_consumed;
}

std::size_t StreamAggregator::pump(util::TimeNs now) {
  {
    const core::sync::LockGuard lock(mu_);
    while (auto msg = subscription_->try_receive()) {
      for (const auto& p : lineproto::parse_lenient(msg->payload, nullptr)) {
        consume(p);
      }
    }
  }
  return emit_completed(now, /*force=*/false);
}

std::size_t StreamAggregator::flush(util::TimeNs now) {
  pump(now);
  return emit_completed(now, /*force=*/true);
}

std::size_t StreamAggregator::emit_completed(util::TimeNs now, bool force) {
  std::vector<lineproto::Point> out;
  {
    const core::sync::LockGuard lock(mu_);
    for (auto it = windows_.begin(); it != windows_.end();) {
      const Key& key = it->first;
      const WindowState& w = it->second;
      const bool complete = key.window_start + options_.window <= now;
      if (!complete && !force) {
        ++it;
        continue;
      }
      lineproto::Point p;
      p.measurement = key.measurement + options_.suffix;
      p.set_tag("jobid", key.job);
      p.timestamp = key.window_start + options_.window;
      p.add_field(key.field + "_sum", w.sum);
      p.add_field(key.field + "_mean", w.count > 0 ? w.sum / static_cast<double>(w.count) : 0);
      p.add_field(key.field + "_min", w.min);
      p.add_field(key.field + "_max", w.max);
      p.add_field(key.field + "_nodes", static_cast<std::int64_t>(w.hosts.size()));
      p.normalize();
      out.push_back(std::move(p));
      it = windows_.erase(it);
    }
  }
  if (out.empty()) return 0;
  const std::string body = lineproto::serialize_batch(out);
  auto resp = client_.post(options_.router_url + "/write?db=" + options_.database, body,
                           "text/plain");
  const core::sync::LockGuard lock(mu_);
  if (!resp.ok() || !resp->ok()) {
    ++stats_.send_failures;
    LMS_WARN("aggregator") << "emit failed";
    return 0;
  }
  stats_.points_emitted += out.size();
  return out.size();
}

StreamAggregator::Stats StreamAggregator::stats() const {
  const core::sync::LockGuard lock(mu_);
  return stats_;
}

}  // namespace lms::analysis
