#include "lms/analysis/patterns.hpp"

#include <cmath>

#include "lms/util/strings.hpp"

namespace lms::analysis {

std::string_view pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kIdle:
      return "idle";
    case Pattern::kBandwidthSaturation:
      return "bandwidth_saturation";
    case Pattern::kComputeBound:
      return "compute_bound";
    case Pattern::kLoadImbalance:
      return "load_imbalance";
    case Pattern::kMemoryLatencyBound:
      return "memory_latency_bound";
    case Pattern::kBranchMispredict:
      return "branch_mispredict";
    case Pattern::kInstructionOverhead:
      return "instruction_overhead";
    case Pattern::kScalarCode:
      return "scalar_code";
    case Pattern::kBalanced:
      return "balanced";
  }
  return "?";
}

std::string_view pattern_recommendation(Pattern p) {
  switch (p) {
    case Pattern::kIdle:
      return "Job barely uses its allocation; check input/startup problems.";
    case Pattern::kBandwidthSaturation:
      return "Memory bandwidth saturated; improve locality or blocking.";
    case Pattern::kComputeBound:
      return "Compute units well used; little generic headroom.";
    case Pattern::kLoadImbalance:
      return "Work distribution uneven across nodes; rebalance decomposition.";
    case Pattern::kMemoryLatencyBound:
      return "Low IPC with low bandwidth: latency bound; improve access patterns.";
    case Pattern::kBranchMispredict:
      return "High misprediction ratio; simplify control flow in hot loops.";
    case Pattern::kInstructionOverhead:
      return "High IPC but few flops; reduce bookkeeping instructions.";
    case Pattern::kScalarCode:
      return "FP work is scalar; enable vectorization (alignment, compiler flags).";
    case Pattern::kBalanced:
      return "No dominating bottleneck identified.";
  }
  return "";
}

std::string DecisionStep::to_string() const {
  return feature + "=" + util::format_double(value) + (went_high ? " >= " : " < ") +
         util::format_double(threshold);
}

std::unique_ptr<DecisionTree> DecisionTree::leaf(Pattern pattern, double potential) {
  auto t = std::unique_ptr<DecisionTree>(new DecisionTree());
  t->is_leaf_ = true;
  t->pattern_ = pattern;
  t->potential_ = potential;
  return t;
}

std::unique_ptr<DecisionTree> DecisionTree::node(std::string feature_name, FeatureFn feature,
                                                 double threshold,
                                                 std::unique_ptr<DecisionTree> low,
                                                 std::unique_ptr<DecisionTree> high) {
  auto t = std::unique_ptr<DecisionTree>(new DecisionTree());
  t->feature_name_ = std::move(feature_name);
  t->feature_ = feature;
  t->threshold_ = threshold;
  t->low_ = std::move(low);
  t->high_ = std::move(high);
  return t;
}

Classification DecisionTree::classify(const JobSignature& sig) const {
  Classification out;
  const DecisionTree* cur = this;
  while (!cur->is_leaf_) {
    const double value = cur->feature_(sig);
    const bool high = value >= cur->threshold_;
    out.path.push_back(DecisionStep{cur->feature_name_, value, cur->threshold_, high});
    cur = high ? cur->high_.get() : cur->low_.get();
  }
  out.pattern = cur->pattern_;
  out.optimization_potential = cur->potential_;
  return out;
}

namespace {
double f_cpu_load(const JobSignature& s) { return s.cpu_load; }
double f_membw(const JobSignature& s) { return s.mem_bw_fraction; }
double f_flops(const JobSignature& s) { return s.flops_dp_fraction; }
double f_imbalance(const JobSignature& s) { return s.load_imbalance_cv; }
double f_ipc(const JobSignature& s) { return s.ipc; }
double f_branch_miss(const JobSignature& s) { return s.branch_miss_ratio; }
double f_vector(const JobSignature& s) { return s.vectorization_ratio; }
}  // namespace

const DecisionTree& DecisionTree::default_tree() {
  // FEPA-style tree: cheap, explainable checks ordered by diagnostic power.
  //
  //   cpu_load < 0.10                         -> idle
  //   load_imbalance_cv >= 0.40               -> load_imbalance
  //   mem_bw_fraction >= 0.70                 -> bandwidth_saturation
  //   flops_dp_fraction >= 0.50               -> compute_bound
  //   ipc < 0.50:
  //     branch_miss_ratio >= 0.05             -> branch_mispredict
  //     otherwise                             -> memory_latency_bound
  //   ipc >= 0.50:
  //     vectorization_ratio < 0.20            -> scalar_code
  //     flops_dp_fraction < 0.05              -> instruction_overhead
  //     otherwise                             -> balanced
  static const std::unique_ptr<DecisionTree> tree = [] {
    auto low_ipc = node(
        "branch_miss_ratio", f_branch_miss, 0.05,
        leaf(Pattern::kMemoryLatencyBound, 0.7),
        leaf(Pattern::kBranchMispredict, 0.6));
    auto high_ipc = node(
        "vectorization_ratio", f_vector, 0.20,
        leaf(Pattern::kScalarCode, 0.8),
        node("flops_dp_fraction", f_flops, 0.05,
             leaf(Pattern::kInstructionOverhead, 0.5),
             leaf(Pattern::kBalanced, 0.2)));
    auto ipc_split = node("ipc", f_ipc, 0.50, std::move(low_ipc), std::move(high_ipc));
    auto flops_split = node("flops_dp_fraction", f_flops, 0.50, std::move(ipc_split),
                            leaf(Pattern::kComputeBound, 0.1));
    auto membw_split = node("mem_bw_fraction", f_membw, 0.70, std::move(flops_split),
                            leaf(Pattern::kBandwidthSaturation, 0.4));
    auto imbalance_split = node("load_imbalance_cv", f_imbalance, 0.40, std::move(membw_split),
                                leaf(Pattern::kLoadImbalance, 0.8));
    return node("cpu_load", f_cpu_load, 0.10, leaf(Pattern::kIdle, 1.0),
                std::move(imbalance_split));
  }();
  return *tree;
}

JobSignature signature_from_db(const MetricFetcher& fetcher,
                               const std::vector<std::string>& hosts,
                               const std::string& job_id, util::TimeNs t0, util::TimeNs t1,
                               const hpm::CounterArchitecture& arch) {
  JobSignature sig;
  sig.nodes = static_cast<int>(hosts.size());
  if (hosts.empty()) return sig;

  const double peak_flops =
      arch.peak_dp_flops_per_core * arch.total_cores();  // per node, flops/s
  const double peak_membw = arch.peak_mem_bw_per_socket * arch.sockets;  // bytes/s

  std::vector<double> per_node_flops;
  double sum_cpu = 0, sum_ipc = 0, sum_membw = 0, sum_vec = 0, sum_bmiss = 0, sum_mem = 0;
  int n_cpu = 0, n_ipc = 0, n_membw = 0, n_vec = 0, n_bmiss = 0, n_mem = 0;
  for (const auto& host : hosts) {
    auto cpu = fetcher.fetch_host({"cpu", "user_percent"}, host, job_id, t0, t1);
    if (cpu.ok() && !cpu->empty()) {
      sum_cpu += cpu->mean() / 100.0;
      ++n_cpu;
    }
    auto ipc = fetcher.fetch_host({"likwid_mem_dp", "cpi"}, host, job_id, t0, t1);
    if (ipc.ok() && !ipc->empty()) {
      const double cpi = ipc->mean();
      if (cpi > 0) {
        sum_ipc += 1.0 / cpi;
        ++n_ipc;
      }
    }
    auto flops = fetcher.fetch_host({"likwid_mem_dp", "dp_mflop_per_s"}, host, job_id, t0, t1);
    if (flops.ok() && !flops->empty()) {
      per_node_flops.push_back(flops->mean() * 1e6);
    }
    auto membw =
        fetcher.fetch_host({"likwid_mem_dp", "memory_bandwidth_mbytes_per_s"}, host, job_id,
                           t0, t1);
    if (membw.ok() && !membw->empty()) {
      sum_membw += membw->mean() * 1e6;
      ++n_membw;
    }
    auto vec =
        fetcher.fetch_host({"likwid_flops_dp", "vectorization_ratio"}, host, job_id, t0, t1);
    if (vec.ok() && !vec->empty()) {
      sum_vec += vec->mean() / 100.0;
      ++n_vec;
    }
    auto bmiss = fetcher.fetch_host({"likwid_branch", "branch_misprediction_ratio"}, host,
                                    job_id, t0, t1);
    if (bmiss.ok() && !bmiss->empty()) {
      sum_bmiss += bmiss->mean();
      ++n_bmiss;
    }
    auto mem = fetcher.fetch_host({"memory", "used_percent"}, host, job_id, t0, t1);
    if (mem.ok() && !mem->empty()) {
      sum_mem += mem->mean() / 100.0;
      ++n_mem;
    }
  }
  if (n_cpu > 0) sig.cpu_load = sum_cpu / n_cpu;
  if (n_ipc > 0) sig.ipc = sum_ipc / n_ipc;
  if (n_membw > 0 && peak_membw > 0) {
    sig.mem_bw_fraction = (sum_membw / n_membw) / peak_membw;
  }
  if (n_vec > 0) sig.vectorization_ratio = sum_vec / n_vec;
  if (n_bmiss > 0) sig.branch_miss_ratio = sum_bmiss / n_bmiss;
  if (n_mem > 0) sig.mem_used_fraction = sum_mem / n_mem;
  if (!per_node_flops.empty()) {
    double mean = 0;
    for (const double v : per_node_flops) mean += v;
    mean /= static_cast<double>(per_node_flops.size());
    if (peak_flops > 0) sig.flops_dp_fraction = mean / peak_flops;
    if (per_node_flops.size() > 1 && mean > 0) {
      double ss = 0;
      for (const double v : per_node_flops) ss += (v - mean) * (v - mean);
      sig.load_imbalance_cv =
          std::sqrt(ss / static_cast<double>(per_node_flops.size() - 1)) / mean;
    }
  }
  return sig;
}

}  // namespace lms::analysis
