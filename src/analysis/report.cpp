#include "lms/analysis/report.hpp"

#include <algorithm>
#include <cstdio>

#include "lms/util/strings.hpp"

namespace lms::analysis {

std::string_view verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kOk:
      return "ok";
    case Verdict::kWarning:
      return "WARN";
    case Verdict::kCritical:
      return "CRIT";
    case Verdict::kNoData:
      return "n/a";
  }
  return "?";
}

std::vector<ReportCheck> default_checks() {
  return {
      {"CPU load", "%", {"cpu", "user_percent"}, CheckDirection::kLowIsBad, 30.0, 5.0},
      {"IPC", "", {"likwid_mem_dp", "ipc"}, CheckDirection::kLowIsBad, 0.5, 0.1},
      {"DP FP rate", "MFLOP/s", {"likwid_mem_dp", "dp_mflop_per_s"},
       CheckDirection::kLowIsBad, 200.0, 10.0},
      {"Memory bw", "MB/s", {"likwid_mem_dp", "memory_bandwidth_mbytes_per_s"},
       CheckDirection::kInfoOnly, 0.0, 0.0},
      {"Memory used", "%", {"memory", "used_percent"}, CheckDirection::kHighIsBad, 85.0, 95.0},
      {"Network I/O", "MB/s", {"network", "rx_bytes_per_sec"}, CheckDirection::kInfoOnly, 0.0,
       0.0},
      {"File I/O", "MB/s", {"disk", "write_bytes_per_sec"}, CheckDirection::kInfoOnly, 0.0,
       0.0},
  };
}

namespace {

Verdict judge(const ReportCheck& check, double value) {
  switch (check.direction) {
    case CheckDirection::kLowIsBad:
      if (value < check.crit_threshold) return Verdict::kCritical;
      if (value < check.warn_threshold) return Verdict::kWarning;
      return Verdict::kOk;
    case CheckDirection::kHighIsBad:
      if (value > check.crit_threshold) return Verdict::kCritical;
      if (value > check.warn_threshold) return Verdict::kWarning;
      return Verdict::kOk;
    case CheckDirection::kInfoOnly:
      return Verdict::kOk;
  }
  return Verdict::kNoData;
}

Verdict worst(Verdict a, Verdict b) {
  const auto rank = [](Verdict v) {
    switch (v) {
      case Verdict::kCritical:
        return 3;
      case Verdict::kWarning:
        return 2;
      case Verdict::kOk:
        return 1;
      case Verdict::kNoData:
        return 0;
    }
    return 0;
  };
  return rank(a) >= rank(b) ? a : b;
}

/// Scale bytes/s values to MB/s for the I/O rows.
double display_value(const ReportCheck& check, double raw) {
  if (check.metric.field.find("bytes_per_sec") != std::string::npos) return raw / 1e6;
  return raw;
}

}  // namespace

JobReporter::JobReporter(const MetricFetcher& fetcher, const hpm::CounterArchitecture& arch)
    : fetcher_(fetcher), arch_(arch), checks_(default_checks()), rule_engine_(fetcher) {
  for (auto& rule : builtin_rules()) rule_engine_.add_rule(std::move(rule));
}

void JobReporter::set_rules(std::vector<Rule> rules) {
  rule_engine_.clear_rules();
  for (auto& rule : rules) rule_engine_.add_rule(std::move(rule));
}

JobEvaluation JobReporter::evaluate(const std::string& job_id,
                                    const std::vector<std::string>& hosts, util::TimeNs t0,
                                    util::TimeNs t1) const {
  JobEvaluation eval;
  eval.job_id = job_id;
  eval.hosts = hosts;
  eval.t0 = t0;
  eval.t1 = t1;
  for (const auto& check : checks_) {
    ReportRow row;
    row.check = check;
    for (const auto& host : hosts) {
      ReportCell cell;
      auto series = fetcher_.fetch_host(check.metric, host, job_id, t0, t1);
      if (series.ok() && !series->empty()) {
        cell.value = display_value(check, series->mean());
        cell.verdict = judge(check, cell.value);
      }
      row.overall = worst(row.overall, cell.verdict);
      row.cells.push_back(cell);
    }
    eval.rows.push_back(std::move(row));
  }
  eval.findings = rule_engine_.evaluate_job(hosts, job_id, t0, t1);
  const JobSignature sig = signature_from_db(fetcher_, hosts, job_id, t0, t1, arch_);
  eval.classification = DecisionTree::default_tree().classify(sig);
  if (auto roofline = roofline_from_db(fetcher_, hosts, job_id, t0, t1, arch_);
      roofline.ok()) {
    eval.roofline = roofline.take();
  }
  return eval;
}

std::string render_text(const JobEvaluation& eval) {
  std::string out;
  out += "Job " + eval.job_id + "  [" + util::format_utc(eval.t0) + " .. " +
         util::format_utc(eval.t1) + "]\n";
  // Header row.
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-22s %-8s", "check", "verdict");
  out += buf;
  for (const auto& host : eval.hosts) {
    std::snprintf(buf, sizeof(buf), " %12s", host.c_str());
    out += buf;
  }
  out += "\n";
  for (const auto& row : eval.rows) {
    const std::string label =
        row.check.label + (row.check.unit.empty() ? "" : " [" + row.check.unit + "]");
    std::snprintf(buf, sizeof(buf), "%-22s %-8s", label.c_str(),
                  std::string(verdict_name(row.overall)).c_str());
    out += buf;
    for (const auto& cell : row.cells) {
      if (cell.verdict == Verdict::kNoData) {
        std::snprintf(buf, sizeof(buf), " %12s", "-");
      } else {
        std::snprintf(buf, sizeof(buf), " %12.2f", cell.value);
      }
      out += buf;
    }
    out += "\n";
  }
  if (eval.roofline) {
    out += "roofline: " + eval.roofline->to_string() + "\n";
  }
  out += "pattern: " + std::string(pattern_name(eval.classification.pattern)) +
         " (optimization potential " +
         util::format_double(eval.classification.optimization_potential) + ")\n";
  out += "  hint: " + std::string(pattern_recommendation(eval.classification.pattern)) + "\n";
  if (eval.findings.empty()) {
    out += "findings: none\n";
  } else {
    out += "findings:\n";
    for (const auto& f : eval.findings) {
      out += "  " + f.to_string() + "\n";
    }
  }
  return out;
}

json::Value to_json(const JobEvaluation& eval) {
  json::Object o;
  o["jobid"] = eval.job_id;
  o["from"] = static_cast<std::int64_t>(eval.t0);
  o["to"] = static_cast<std::int64_t>(eval.t1);
  json::Array hosts;
  for (const auto& h : eval.hosts) hosts.emplace_back(h);
  o["hosts"] = std::move(hosts);
  json::Array rows;
  for (const auto& row : eval.rows) {
    json::Object r;
    r["check"] = row.check.label;
    r["unit"] = row.check.unit;
    r["verdict"] = std::string(verdict_name(row.overall));
    json::Array cells;
    for (const auto& cell : row.cells) {
      json::Object c;
      if (cell.verdict == Verdict::kNoData) {
        c["value"] = nullptr;
      } else {
        c["value"] = cell.value;
      }
      c["verdict"] = std::string(verdict_name(cell.verdict));
      cells.emplace_back(std::move(c));
    }
    r["cells"] = std::move(cells);
    rows.emplace_back(std::move(r));
  }
  o["rows"] = std::move(rows);
  json::Array findings;
  for (const auto& f : eval.findings) {
    json::Object fo;
    fo["rule"] = f.rule;
    fo["hostname"] = f.hostname;
    fo["severity"] = std::string(severity_name(f.severity));
    fo["start"] = static_cast<std::int64_t>(f.start);
    fo["end"] = static_cast<std::int64_t>(f.end);
    fo["description"] = f.description;
    findings.emplace_back(std::move(fo));
  }
  o["findings"] = std::move(findings);
  json::Object cls;
  cls["pattern"] = std::string(pattern_name(eval.classification.pattern));
  cls["optimization_potential"] = eval.classification.optimization_potential;
  cls["recommendation"] = std::string(pattern_recommendation(eval.classification.pattern));
  json::Array path;
  for (const auto& step : eval.classification.path) path.emplace_back(step.to_string());
  cls["path"] = std::move(path);
  o["classification"] = std::move(cls);
  if (eval.roofline) {
    json::Object rl;
    rl["operational_intensity"] = eval.roofline->operational_intensity;
    rl["measured_gflops"] = eval.roofline->measured_gflops;
    rl["attainable_gflops"] = eval.roofline->attainable_gflops;
    rl["efficiency"] = eval.roofline->efficiency;
    rl["memory_bound"] = eval.roofline->memory_bound;
    o["roofline"] = std::move(rl);
  }
  return json::Value(std::move(o));
}

}  // namespace lms::analysis
