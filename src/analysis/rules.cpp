#include "lms/analysis/rules.hpp"

#include <algorithm>
#include <map>

#include "lms/util/strings.hpp"

namespace lms::analysis {

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kCritical:
      return "critical";
  }
  return "?";
}

std::string Condition::to_string() const {
  return metric.to_string() + (op == ThresholdOp::kBelow ? " < " : " > ") +
         util::format_double(threshold);
}

std::string Finding::to_string() const {
  return "[" + std::string(severity_name(severity)) + "] " + rule + " on " + hostname +
         " (job " + job_id + ") from " + util::format_utc(start) + " for " +
         util::format_duration(end - start) + ": " + description;
}

std::vector<Rule> builtin_rules() {
  std::vector<Rule> rules;
  {
    Rule r;
    r.name = "idle_node";
    r.description = "CPU load near zero: node allocated but not computing";
    r.conditions.push_back(
        Condition{{"cpu", "user_percent"}, ThresholdOp::kBelow, 5.0});
    r.min_duration = 10 * util::kNanosPerMinute;
    r.severity = Severity::kWarning;
    rules.push_back(std::move(r));
  }
  {
    // The Fig. 4 rule: DP FP rate and memory bandwidth simultaneously below
    // thresholds for more than 10 minutes reveals a break in computation.
    Rule r;
    r.name = "compute_break";
    r.description = "FP rate and memory bandwidth below thresholds: break in computation";
    r.conditions.push_back(
        Condition{{"likwid_mem_dp", "dp_mflop_per_s"}, ThresholdOp::kBelow, 100.0});
    r.conditions.push_back(Condition{
        {"likwid_mem_dp", "memory_bandwidth_mbytes_per_s"}, ThresholdOp::kBelow, 500.0});
    r.min_duration = 10 * util::kNanosPerMinute;
    r.severity = Severity::kCritical;
    rules.push_back(std::move(r));
  }
  {
    Rule r;
    r.name = "memory_exceeded";
    r.description = "memory footprint close to node capacity";
    r.conditions.push_back(
        Condition{{"memory", "used_percent"}, ThresholdOp::kAbove, 95.0});
    r.min_duration = 2 * util::kNanosPerMinute;
    r.severity = Severity::kCritical;
    rules.push_back(std::move(r));
  }
  {
    Rule r;
    r.name = "low_ipc";
    r.description = "sustained very low instruction throughput";
    r.conditions.push_back(Condition{{"likwid_mem_dp", "cpi"}, ThresholdOp::kAbove, 5.0});
    r.min_duration = 10 * util::kNanosPerMinute;
    r.severity = Severity::kInfo;
    rules.push_back(std::move(r));
  }
  return rules;
}

namespace {

util::Result<Condition> parse_condition(std::string_view text) {
  using util::Result;
  const bool below = text.find('<') != std::string_view::npos;
  const bool above = text.find('>') != std::string_view::npos;
  if (below == above) {
    return Result<Condition>::error("condition '" + std::string(text) +
                                    "': expected exactly one of '<' or '>'");
  }
  const char op_char = below ? '<' : '>';
  const auto [lhs, rhs] = util::split_once(text, op_char);
  const auto [measurement, field] = util::split_once(util::trim(lhs), '.');
  const auto threshold = util::parse_double(util::trim(rhs));
  if (measurement.empty() || field.empty() || !threshold) {
    return Result<Condition>::error("condition '" + std::string(text) +
                                    "': want <measurement>.<field> " + op_char +
                                    " <number>");
  }
  Condition c;
  c.metric = MetricRef{std::string(util::trim(measurement)), std::string(util::trim(field))};
  c.op = below ? ThresholdOp::kBelow : ThresholdOp::kAbove;
  c.threshold = *threshold;
  return c;
}

}  // namespace

util::Result<std::vector<Rule>> rules_from_config(const util::Config& config) {
  using util::Result;
  std::vector<Rule> rules;
  for (const auto& section : config.sections()) {
    if (!util::starts_with(section, "rule:")) continue;
    Rule rule;
    rule.name = section.substr(5);
    if (rule.name.empty()) {
      return Result<std::vector<Rule>>::error("rule section with empty name");
    }
    rule.description = config.get_or(section, "description", rule.name);
    const std::string severity = config.get_or(section, "severity", "warning");
    if (severity == "info") {
      rule.severity = Severity::kInfo;
    } else if (severity == "warning") {
      rule.severity = Severity::kWarning;
    } else if (severity == "critical") {
      rule.severity = Severity::kCritical;
    } else {
      return Result<std::vector<Rule>>::error("rule " + rule.name +
                                              ": bad severity '" + severity + "'");
    }
    for (const char* key : {"min_duration", "resolution"}) {
      if (const auto v = config.get(section, key)) {
        const auto d = tsdb::parse_duration(*v);
        if (!d.ok()) {
          return Result<std::vector<Rule>>::error("rule " + rule.name + ": " + d.message());
        }
        (std::string_view(key) == "min_duration" ? rule.min_duration : rule.resolution) = *d;
      }
    }
    for (const auto& key : config.keys(section)) {
      if (!util::starts_with(key, "condition")) continue;
      auto cond = parse_condition(*config.get(section, key));
      if (!cond.ok()) {
        return Result<std::vector<Rule>>::error("rule " + rule.name + ": " + cond.message());
      }
      rule.conditions.push_back(cond.take());
    }
    if (rule.conditions.empty()) {
      return Result<std::vector<Rule>>::error("rule " + rule.name + ": no conditions");
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

RuleEngine::RuleEngine(const MetricFetcher& fetcher) : fetcher_(fetcher) {}

namespace {

struct Interval {
  util::TimeNs a = 0;
  util::TimeNs b = 0;
};

/// Violation intervals of one condition over its raw samples. A violating
/// sample at t covers [t, t + cover) where cover is the gap to the next
/// sample, capped at `max_gap` — producers may report the metric only every
/// few intervals (HPM group multiplexing), which must not break a
/// continuous violation. Overlapping/adjacent intervals are merged.
std::vector<Interval> violation_intervals(const MetricSeries& series, const Condition& cond,
                                          util::TimeNs max_gap) {
  std::vector<Interval> out;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (!cond.violated(series.values[i])) continue;
    const util::TimeNs t = series.times[i];
    util::TimeNs cover = max_gap;
    if (i + 1 < series.size()) {
      cover = std::min(series.times[i + 1] - t, max_gap);
    }
    if (!out.empty() && t <= out.back().b) {
      out.back().b = std::max(out.back().b, t + cover);
    } else {
      out.push_back(Interval{t, t + cover});
    }
  }
  return out;
}

/// Intersection of two sorted interval lists.
std::vector<Interval> intersect(const std::vector<Interval>& x,
                                const std::vector<Interval>& y) {
  std::vector<Interval> out;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < x.size() && j < y.size()) {
    const util::TimeNs a = std::max(x[i].a, y[j].a);
    const util::TimeNs b = std::min(x[i].b, y[j].b);
    if (a < b) out.push_back(Interval{a, b});
    if (x[i].b < y[j].b) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

/// Evaluate one rule for one host: per-condition violation intervals are
/// intersected (all conditions must hold simultaneously); intersections at
/// least min_duration long become findings — the threshold+timeout semantics
/// of the paper's Fig. 4.
std::vector<Finding> evaluate_rule(const MetricFetcher& fetcher, const Rule& rule,
                                   const std::string& hostname, const std::string& job_id,
                                   util::TimeNs t0, util::TimeNs t1) {
  const util::TimeNs max_gap = 3 * rule.resolution;
  std::vector<Interval> combined;
  bool first = true;
  for (const auto& cond : rule.conditions) {
    auto series = fetcher.fetch_host(cond.metric, hostname, job_id, t0, t1);
    if (!series.ok() || series->empty()) return {};
    auto intervals = violation_intervals(*series, cond, max_gap);
    if (intervals.empty()) return {};
    combined = first ? std::move(intervals) : intersect(combined, intervals);
    first = false;
    if (combined.empty()) return {};
  }
  std::vector<Finding> findings;
  for (const auto& iv : combined) {
    if (iv.b - iv.a < rule.min_duration) continue;
    Finding f;
    f.rule = rule.name;
    f.description = rule.description;
    f.hostname = hostname;
    f.job_id = job_id;
    f.severity = rule.severity;
    f.start = iv.a;
    f.end = iv.b;
    findings.push_back(std::move(f));
  }
  return findings;
}

}  // namespace

std::vector<Finding> RuleEngine::evaluate_host(const std::string& hostname,
                                               const std::string& job_id, util::TimeNs t0,
                                               util::TimeNs t1) const {
  std::vector<Finding> findings;
  for (const auto& rule : rules_) {
    auto fs = evaluate_rule(fetcher_, rule, hostname, job_id, t0, t1);
    findings.insert(findings.end(), std::make_move_iterator(fs.begin()),
                    std::make_move_iterator(fs.end()));
  }
  return findings;
}

std::vector<Finding> RuleEngine::evaluate_job(const std::vector<std::string>& hosts,
                                              const std::string& job_id, util::TimeNs t0,
                                              util::TimeNs t1) const {
  std::vector<Finding> findings;
  for (const auto& host : hosts) {
    auto fs = evaluate_host(host, job_id, t0, t1);
    findings.insert(findings.end(), std::make_move_iterator(fs.begin()),
                    std::make_move_iterator(fs.end()));
  }
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.hostname < b.hostname;
  });
  return findings;
}

}  // namespace lms::analysis
