#include "lms/sysmon/proc.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "lms/util/strings.hpp"

namespace lms::sysmon {

namespace {
constexpr double kUserHz = 100.0;  // jiffies per second on virtually all Linux
constexpr std::uint64_t kSectorBytes = 512;
}  // namespace

util::Result<CpuTimes> parse_proc_stat(std::string_view text) {
  for (const auto& line : util::split(text, '\n')) {
    if (!util::starts_with(line, "cpu ")) continue;
    // cpu user nice system idle iowait irq softirq steal guest guest_nice
    const auto fields = util::split_trimmed(line, ' ');
    if (fields.size() < 6) {
      return util::Result<CpuTimes>::error("proc/stat: short cpu line");
    }
    auto jiffies = [&](std::size_t i) -> double {
      const auto v = util::parse_int64(fields[i]);
      return v ? static_cast<double>(*v) / kUserHz : 0.0;
    };
    CpuTimes t;
    t.user = jiffies(1) + jiffies(2);  // user + nice
    t.system = jiffies(3);
    if (fields.size() > 6) t.system += jiffies(6) + jiffies(7);  // irq + softirq
    t.idle = jiffies(4);
    t.iowait = jiffies(5);
    return t;
  }
  return util::Result<CpuTimes>::error("proc/stat: no aggregate cpu line");
}

util::Result<MemInfo> parse_meminfo(std::string_view text) {
  std::uint64_t total_kb = 0;
  std::uint64_t available_kb = 0;
  std::uint64_t free_kb = 0;
  for (const auto& line : util::split(text, '\n')) {
    const auto [key, rest] = util::split_once(line, ':');
    const auto fields = util::split_trimmed(rest, ' ');
    if (fields.empty()) continue;
    const auto value = util::parse_int64(fields[0]);
    if (!value) continue;
    if (key == "MemTotal") total_kb = static_cast<std::uint64_t>(*value);
    if (key == "MemAvailable") available_kb = static_cast<std::uint64_t>(*value);
    if (key == "MemFree") free_kb = static_cast<std::uint64_t>(*value);
  }
  if (total_kb == 0) return util::Result<MemInfo>::error("meminfo: no MemTotal");
  if (available_kb == 0) available_kb = free_kb;  // pre-3.14 kernels
  MemInfo m;
  m.total_bytes = total_kb * 1024;
  m.free_bytes = available_kb * 1024;
  m.used_bytes = m.total_bytes > m.free_bytes ? m.total_bytes - m.free_bytes : 0;
  return m;
}

util::Result<NetCounters> parse_net_dev(std::string_view text) {
  NetCounters total;
  bool any = false;
  for (const auto& line : util::split(text, '\n')) {
    const auto [iface_raw, rest] = util::split_once(line, ':');
    const std::string_view iface = util::trim(iface_raw);
    if (rest.empty() || iface.empty() || iface.find(' ') != std::string_view::npos) {
      continue;  // header lines
    }
    if (iface == "lo") continue;
    // rx: bytes packets errs drop fifo frame compressed multicast, then tx.
    const auto fields = util::split_trimmed(rest, ' ');
    if (fields.size() < 16) continue;
    auto u64 = [&](std::size_t i) {
      const auto v = util::parse_int64(fields[i]);
      return v ? static_cast<std::uint64_t>(*v) : 0ULL;
    };
    total.rx_bytes += u64(0);
    total.rx_packets += u64(1);
    total.tx_bytes += u64(8);
    total.tx_packets += u64(9);
    any = true;
  }
  if (!any) return util::Result<NetCounters>::error("net/dev: no interfaces");
  return total;
}

namespace {

bool is_whole_disk(std::string_view name) {
  if (util::starts_with(name, "loop") || util::starts_with(name, "ram") ||
      util::starts_with(name, "dm-") || util::starts_with(name, "sr") ||
      util::starts_with(name, "zram") || util::starts_with(name, "md")) {
    return false;
  }
  if (util::starts_with(name, "nvme")) {
    // nvme0n1 is the whole disk, nvme0n1p2 a partition: a trailing
    // "p<digits>" marks the partition.
    const std::size_t p = name.rfind('p');
    if (p == std::string_view::npos || p + 1 >= name.size()) return true;
    for (std::size_t i = p + 1; i < name.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) return true;
    }
    return false;
  }
  // sdX / vdX / xvdX / hdX: partitions end in a digit.
  return !name.empty() && (std::isdigit(static_cast<unsigned char>(name.back())) == 0);
}

}  // namespace

util::Result<DiskCounters> parse_diskstats(std::string_view text) {
  DiskCounters total;
  bool any = false;
  for (const auto& line : util::split(text, '\n')) {
    // major minor name reads reads_merged sectors_read ms writes
    // writes_merged sectors_written ...
    const auto fields = util::split_trimmed(line, ' ');
    if (fields.size() < 10) continue;
    const std::string& name = fields[2];
    if (!is_whole_disk(name)) continue;
    auto u64 = [&](std::size_t i) {
      const auto v = util::parse_int64(fields[i]);
      return v ? static_cast<std::uint64_t>(*v) : 0ULL;
    };
    total.read_ops += u64(3);
    total.read_bytes += u64(5) * kSectorBytes;
    total.write_ops += u64(7);
    total.write_bytes += u64(9) * kSectorBytes;
    any = true;
  }
  if (!any) return util::Result<DiskCounters>::error("diskstats: no whole disks");
  return total;
}

util::Result<double> parse_loadavg(std::string_view text) {
  const auto fields = util::split_trimmed(text, ' ');
  if (fields.empty()) return util::Result<double>::error("loadavg: empty");
  const auto v = util::parse_double(fields[0]);
  if (!v) return util::Result<double>::error("loadavg: bad first field");
  return *v;
}

int count_cpus_in_proc_stat(std::string_view text) {
  int n = 0;
  for (const auto& line : util::split(text, '\n')) {
    if (util::starts_with(line, "cpu") && line.size() > 3 &&
        std::isdigit(static_cast<unsigned char>(line[3])) != 0) {
      ++n;
    }
  }
  return n;
}

ProcKernel::ProcKernel(std::string root) : root_(std::move(root)) {
  cpu_count_ = count_cpus_in_proc_stat(read_file("stat"));
  if (cpu_count_ <= 0) cpu_count_ = 1;
}

std::string ProcKernel::read_file(const char* name) const {
  std::ifstream file(root_ + "/" + name);
  if (!file) return {};
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

int ProcKernel::cpu_count() const { return cpu_count_; }

CpuTimes ProcKernel::cpu_times() const {
  auto r = parse_proc_stat(read_file("stat"));
  return r.ok() ? *r : CpuTimes{};
}

MemInfo ProcKernel::meminfo() const {
  auto r = parse_meminfo(read_file("meminfo"));
  return r.ok() ? *r : MemInfo{};
}

NetCounters ProcKernel::net_counters() const {
  auto r = parse_net_dev(read_file("net/dev"));
  return r.ok() ? *r : NetCounters{};
}

DiskCounters ProcKernel::disk_counters() const {
  auto r = parse_diskstats(read_file("diskstats"));
  return r.ok() ? *r : DiskCounters{};
}

double ProcKernel::loadavg1() const {
  auto r = parse_loadavg(read_file("loadavg"));
  return r.ok() ? *r : 0.0;
}

}  // namespace lms::sysmon
