#include "lms/sysmon/kernel.hpp"

#include <algorithm>
#include <cmath>

namespace lms::sysmon {

SimulatedKernel::SimulatedKernel(int cpu_count, std::uint64_t mem_total_bytes)
    : cpu_count_(cpu_count), mem_total_bytes_(mem_total_bytes) {
  mem_used_bytes_ = static_cast<double>(mem_total_bytes) * 0.03;  // kernel + daemons
}

void SimulatedKernel::advance(const KernelLoad& load, util::TimeNs dt_ns) {
  const double dt = util::ns_to_seconds(dt_ns);
  if (dt <= 0) return;
  const double capacity = static_cast<double>(cpu_count_) * dt;  // cpu-seconds available
  const double user = std::clamp(load.cpu_user_fraction, 0.0, 1.0) * capacity;
  const double system = std::clamp(load.cpu_system_fraction, 0.0, 1.0) * capacity;
  const double iowait = std::clamp(load.cpu_iowait_fraction, 0.0, 1.0) * capacity;
  cpu_.user += user;
  cpu_.system += system;
  cpu_.iowait += iowait;
  cpu_.idle += std::max(0.0, capacity - user - system - iowait);

  mem_used_bytes_ = std::clamp(load.mem_used_bytes, 0.0, static_cast<double>(mem_total_bytes_));

  auto accumulate = [dt](double rate, double& acc, std::uint64_t& counter) {
    acc += rate * dt;
    const double whole = std::floor(acc);
    counter += static_cast<std::uint64_t>(whole);
    acc -= whole;
  };
  accumulate(load.net_rx_bytes_per_sec, net_rx_acc_, net_.rx_bytes);
  accumulate(load.net_tx_bytes_per_sec, net_tx_acc_, net_.tx_bytes);
  accumulate(load.net_rx_packets_per_sec, net_rxp_acc_, net_.rx_packets);
  accumulate(load.net_tx_packets_per_sec, net_txp_acc_, net_.tx_packets);
  accumulate(load.disk_read_bytes_per_sec, disk_rb_acc_, disk_.read_bytes);
  accumulate(load.disk_write_bytes_per_sec, disk_wb_acc_, disk_.write_bytes);
  accumulate(load.disk_read_ops_per_sec, disk_ro_acc_, disk_.read_ops);
  accumulate(load.disk_write_ops_per_sec, disk_wo_acc_, disk_.write_ops);

  // Kernel-style exponential damping toward the instantaneous run queue.
  const double decay = std::exp(-dt / 60.0);
  loadavg1_ = loadavg1_ * decay + load.runnable_tasks * (1.0 - decay);
}

MemInfo SimulatedKernel::meminfo() const {
  MemInfo m;
  m.total_bytes = mem_total_bytes_;
  m.used_bytes = static_cast<std::uint64_t>(mem_used_bytes_);
  m.free_bytes = mem_total_bytes_ - m.used_bytes;
  return m;
}

}  // namespace lms::sysmon
