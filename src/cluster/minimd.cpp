#include "lms/cluster/minimd.hpp"

#include <cmath>

namespace lms::cluster {

MiniMd::MiniMd(Params params, std::uint64_t seed) : params_(params) {
  const int cells = params_.cells_per_side;
  const int n = 4 * cells * cells * cells;
  box_ = std::cbrt(static_cast<double>(n) / params_.density);
  x_.resize(static_cast<std::size_t>(3 * n));
  v_.resize(static_cast<std::size_t>(3 * n));
  f_.resize(static_cast<std::size_t>(3 * n));
  initialize_lattice();
  initialize_velocities(seed);
  compute_forces();
}

void MiniMd::initialize_lattice() {
  // FCC lattice: 4 basis atoms per cubic cell.
  static constexpr double kBasis[4][3] = {
      {0.0, 0.0, 0.0}, {0.5, 0.5, 0.0}, {0.5, 0.0, 0.5}, {0.0, 0.5, 0.5}};
  const int cells = params_.cells_per_side;
  const double a = box_ / cells;
  std::size_t i = 0;
  for (int cx = 0; cx < cells; ++cx) {
    for (int cy = 0; cy < cells; ++cy) {
      for (int cz = 0; cz < cells; ++cz) {
        for (const auto& b : kBasis) {
          x_[i++] = (cx + b[0]) * a;
          x_[i++] = (cy + b[1]) * a;
          x_[i++] = (cz + b[2]) * a;
        }
      }
    }
  }
}

void MiniMd::initialize_velocities(std::uint64_t seed) {
  util::Rng rng(seed);
  const int n = natoms();
  double com[3] = {0, 0, 0};
  for (int i = 0; i < 3 * n; ++i) {
    v_[static_cast<std::size_t>(i)] = rng.uniform(-0.5, 0.5);
    com[i % 3] += v_[static_cast<std::size_t>(i)];
  }
  // Remove net momentum.
  for (int i = 0; i < 3 * n; ++i) {
    v_[static_cast<std::size_t>(i)] -= com[i % 3] / n;
  }
  // Rescale to the target temperature.
  double ke2 = 0;
  for (const double vi : v_) ke2 += vi * vi;
  const double t_now = ke2 / (3.0 * n);
  const double scale = std::sqrt(params_.temperature / t_now);
  for (double& vi : v_) vi *= scale;
}

void MiniMd::compute_forces() {
  const int n = natoms();
  const double rc2 = params_.cutoff * params_.cutoff;
  std::fill(f_.begin(), f_.end(), 0.0);
  pe_ = 0.0;
  virial_ = 0.0;
  for (int i = 0; i < n - 1; ++i) {
    const double xi = x_[3u * i], yi = x_[3u * i + 1], zi = x_[3u * i + 2];
    for (int j = i + 1; j < n; ++j) {
      double dx = xi - x_[3u * j];
      double dy = yi - x_[3u * j + 1];
      double dz = zi - x_[3u * j + 2];
      // Minimum image convention.
      dx -= box_ * std::round(dx / box_);
      dy -= box_ * std::round(dy / box_);
      dz -= box_ * std::round(dz / box_);
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 >= rc2 || r2 <= 0) continue;
      const double inv_r2 = 1.0 / r2;
      const double inv_r6 = inv_r2 * inv_r2 * inv_r2;
      // LJ: U = 4 (r^-12 - r^-6); F = 24 (2 r^-12 - r^-6) / r * rhat
      const double force_over_r = 24.0 * inv_r2 * inv_r6 * (2.0 * inv_r6 - 1.0);
      f_[3u * i] += force_over_r * dx;
      f_[3u * i + 1] += force_over_r * dy;
      f_[3u * i + 2] += force_over_r * dz;
      f_[3u * j] -= force_over_r * dx;
      f_[3u * j + 1] -= force_over_r * dy;
      f_[3u * j + 2] -= force_over_r * dz;
      pe_ += 4.0 * inv_r6 * (inv_r6 - 1.0);
      virial_ += force_over_r * r2;  // r . F for the pair
    }
  }
}

void MiniMd::step(int n_steps) {
  const double dt = params_.dt;
  const int n3 = 3 * natoms();
  for (int s = 0; s < n_steps; ++s) {
    // Velocity Verlet.
    for (int i = 0; i < n3; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      v_[idx] += 0.5 * dt * f_[idx];
      x_[idx] += dt * v_[idx];
      // Wrap into the box.
      if (x_[idx] < 0) x_[idx] += box_;
      if (x_[idx] >= box_) x_[idx] -= box_;
    }
    compute_forces();
    for (int i = 0; i < n3; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      v_[idx] += 0.5 * dt * f_[idx];
    }
    ++steps_;
  }
}

double MiniMd::kinetic_energy() const {
  double ke2 = 0;
  for (const double vi : v_) ke2 += vi * vi;
  return 0.5 * ke2 / natoms();
}

double MiniMd::temperature() const {
  // T = 2 KE_total / (3 N)  (reduced units, kB = 1)
  return 2.0 * kinetic_energy() / 3.0;
}

double MiniMd::potential_energy() const { return pe_ / natoms(); }

double MiniMd::total_energy() const { return kinetic_energy() + potential_energy(); }

double MiniMd::pressure() const {
  const double volume = box_ * box_ * box_;
  const double rho = natoms() / volume;
  return rho * temperature() + virial_ / (3.0 * volume);
}

}  // namespace lms::cluster
