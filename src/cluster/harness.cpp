#include "lms/cluster/harness.hpp"

#include <algorithm>
#include <iterator>

#include "lms/collector/plugins.hpp"
#include "lms/lineproto/codec.hpp"
#include "lms/obs/trace.hpp"
#include "lms/util/logging.hpp"
#include "lms/util/strings.hpp"

namespace lms::cluster {

ClusterHarness::ClusterHarness(Options options)
    : options_(std::move(options)),
      clock_(options_.start_time),
      sched_([] {
        core::TaskScheduler::Options o;
        o.manual = true;  // step_once() advances it along the sim clock
        o.workers = 1;
        o.name = "harness.sched";
        return o;
      }()),
      groups_(*options_.arch),
      rng_(options_.seed) {
  client_ = std::make_unique<net::InprocHttpClient>(network_);

  // Every component reports into the harness-wide registry so one
  // self-scrape covers the whole stack.
  network_.set_registry(&registry_);
  broker_.set_registry(&registry_);

  // Database back-end with its InfluxDB-compatible API.
  tsdb::HttpApi::Options db_opts;
  db_opts.registry = &registry_;
  db_api_ = std::make_unique<tsdb::HttpApi>(storage_, clock_, db_opts);
  network_.bind(kDbEndpoint, db_api_->handler());

  // Metrics router in front of it.
  core::MetricsRouter::Options router_opts;
  router_opts.db_url = std::string("inproc://") + kDbEndpoint;
  router_opts.database = options_.database;
  router_opts.duplicate_per_user = options_.duplicate_per_user;
  router_opts.async_ingest = options_.async_ingest;
  router_opts.scheduler = &sched_;  // flusher task rides the manual scheduler
  router_opts.registry = &registry_;
  router_ = std::make_unique<core::MetricsRouter>(*client_, clock_, router_opts, &broker_);
  network_.bind(kRouterEndpoint, router_->handler());

  // Scheduler with job notifier wired to the router.
  node_names_.reserve(static_cast<std::size_t>(options_.nodes));
  for (int i = 1; i <= options_.nodes; ++i) {
    node_names_.push_back(options_.node_prefix + std::to_string(i));
  }
  scheduler_ = std::make_unique<sched::Scheduler>(node_names_);
  notifier_ = std::make_unique<sched::JobNotifier>(*client_,
                                                   std::string("inproc://") + kRouterEndpoint);
  scheduler_->set_on_start([this](const sched::Job& job) {
    (void)notifier_->notify_start(job);
    on_job_start(job);
  });
  scheduler_->set_on_end([this](const sched::Job& job) {
    (void)notifier_->notify_end(job);
    on_job_end(job);
  });

  // Analysis + dashboards.
  fetcher_ = std::make_unique<analysis::MetricFetcher>(storage_, options_.database);
  reporter_ = std::make_unique<analysis::JobReporter>(*fetcher_, *options_.arch);
  dashboard::DashboardAgent::Options dash_opts;
  dash_opts.database = options_.database;
  dashboard_agent_ =
      std::make_unique<dashboard::DashboardAgent>(storage_, *reporter_, clock_, dash_opts);
  network_.bind(kDashboardEndpoint, dashboard_agent_->handler());

  // Stream analyzer tapping the router's PUB/SUB (online pathology rules).
  analyzer_ = std::make_unique<analysis::StreamAnalyzer>(broker_, analysis::builtin_rules());

  // Optional job-level stream aggregator on the same tap.
  if (options_.enable_aggregator) {
    analysis::StreamAggregator::Options agg_opts;
    agg_opts.window = options_.aggregator_window;
    agg_opts.router_url = std::string("inproc://") + kRouterEndpoint;
    agg_opts.database = options_.database;
    aggregator_ = std::make_unique<analysis::StreamAggregator>(broker_, *client_, agg_opts);
  }

  if (options_.record_findings) {
    finding_recorder_ = std::make_unique<analysis::FindingRecorder>(
        *client_, std::string("inproc://") + kRouterEndpoint, options_.database);
  }

  // Optional downsampling rollups (continuous queries) for the data-volume
  // story: raw expires with `retention`, rollups persist.
  if (options_.enable_rollups) {
    tsdb::CqRunner::Options cq_opts;
    cq_opts.run_interval = util::kNanosPerMinute;  // the old maintenance cadence
    cq_opts.clock = &clock_;
    cq_runner_ = std::make_unique<tsdb::CqRunner>(storage_, options_.database, cq_opts);
    tsdb::ContinuousQuery cpu_cq;
    cpu_cq.name = "cpu_rollup";
    cpu_cq.source_measurement = "cpu";
    cpu_cq.target_measurement = "cpu_rollup";
    cpu_cq.fields = {{"user_percent", tsdb::Aggregator::kMean},
                     {"user_percent", tsdb::Aggregator::kMax}};
    cq_runner_->add(std::move(cpu_cq));
    tsdb::ContinuousQuery hpm_cq;
    hpm_cq.name = "mem_dp_rollup";
    hpm_cq.source_measurement = "likwid_mem_dp";
    hpm_cq.target_measurement = "likwid_mem_dp_rollup";
    hpm_cq.fields = {{"dp_mflop_per_s", tsdb::Aggregator::kMean},
                     {"memory_bandwidth_mbytes_per_s", tsdb::Aggregator::kMean}};
    cq_runner_->add(std::move(hpm_cq));
  }

  // Simulated nodes with their host agents.
  nodes_.reserve(node_names_.size());
  for (std::size_t i = 0; i < node_names_.size(); ++i) {
    SimNode node;
    node.name = node_names_[i];
    node.kernel = std::make_unique<sysmon::SimulatedKernel>(options_.arch->total_hwthreads(),
                                                            64ULL << 30);
    node.counters = std::make_unique<hpm::CounterSimulator>(
        *options_.arch, options_.seed + 1000 + i, options_.counter_noise_sigma);

    collector::HostAgent::Options agent_opts;
    agent_opts.router_url = std::string("inproc://") + kRouterEndpoint;
    agent_opts.database = options_.database;
    agent_opts.flush_interval = options_.collect_interval;
    agent_opts.self_monitor_interval = util::kNanosPerMinute;
    agent_opts.hostname = node.name;
    agent_opts.registry = &registry_;
    node.agent = std::make_unique<collector::HostAgent>(*client_, agent_opts);
    node.agent->add_plugin(std::make_unique<collector::CpuPlugin>(*node.kernel, node.name),
                           options_.collect_interval);
    node.agent->add_plugin(std::make_unique<collector::MemoryPlugin>(*node.kernel, node.name),
                           options_.collect_interval);
    node.agent->add_plugin(std::make_unique<collector::NetworkPlugin>(*node.kernel, node.name),
                           options_.collect_interval);
    node.agent->add_plugin(std::make_unique<collector::DiskPlugin>(*node.kernel, node.name),
                           options_.collect_interval);
    hpm::HpmMonitor::Options mon_opts;
    mon_opts.groups = options_.hpm_groups;
    mon_opts.hostname = node.name;
    auto monitor = hpm::HpmMonitor::create(groups_, *node.counters, mon_opts);
    if (monitor.ok()) {
      node.agent->add_plugin(std::make_unique<collector::HpmPlugin>(monitor.take()),
                             options_.hpm_interval);
    }
    nodes_.push_back(std::move(node));
    // Probe surface per node so the deadman story is inspectable over HTTP.
    network_.bind(kAgentEndpointPrefix + nodes_.back().name, nodes_.back().agent->handler());
  }
  // The stack monitoring itself: scrape the shared registry back through
  // the router so lms_internal is queryable like any other measurement.
  if (options_.enable_self_scrape) {
    obs::SelfScrape::Options ss_opts;
    ss_opts.tags = {{"hostname", "lms-stack"}};
    ss_opts.interval = options_.self_scrape_interval;
    self_scrape_ = std::make_unique<obs::SelfScrape>(
        registry_, clock_,
        [this](const std::string& body) -> util::Status {
          const std::string url = std::string("inproc://") + kRouterEndpoint +
                                  "/write?db=" + options_.database;
          auto resp = client_->post(url, body, "text/plain");
          if (!resp.ok()) return util::Status::error(resp.message());
          if (!resp->ok()) {
            return util::Status::error("HTTP " + std::to_string(resp->status));
          }
          return util::Status();
        },
        ss_opts);
  }

  // Distributed tracing: head-sampling rate + a deterministic exporter
  // draining the process-global recorder through the router (the same hop
  // every collector batch takes). drain_traces() drives it; the real-time
  // thread stays off so simulations remain reproducible.
  prev_trace_sample_rate_ = obs::trace_sample_rate();
  if (options_.enable_tracing) {
    obs::set_trace_sample_rate(options_.trace_sample_rate);
    obs::TraceExporter::Options te_opts;
    te_opts.host = "lms-stack";
    trace_exporter_ = std::make_unique<obs::TraceExporter>(
        [this](const std::string& body) -> util::Status {
          const std::string url = std::string("inproc://") + kRouterEndpoint +
                                  "/write?db=" + options_.database;
          auto resp = client_->post(url, body, "text/plain");
          if (!resp.ok()) return util::Status::error(resp.message());
          if (!resp->ok()) {
            return util::Status::error("HTTP " + std::to_string(resp->status));
          }
          return util::Status();
        },
        te_opts);
  }

  // Continuous CPU profiling, deterministic flavor: the process-wide
  // profiler starts timer-less (no SIGPROF in a simulation), step_once()
  // captures one sample per step, the fold task rides the manual scheduler
  // and the exporter writes lms_profiles through the router with sim-clock
  // timestamps. start() can fail when another harness (or a daemon in the
  // same process) already owns the profiler — then this harness simply
  // runs without one.
  if (options_.enable_cpuprofile) {
    obs::CpuProfiler::Options prof_opts;
    prof_opts.hz = options_.cpuprofile_hz;
    prof_opts.timer = false;
    prof_opts.fold_interval = options_.step;
    cpuprofile_started_ = obs::CpuProfiler::instance().start(prof_opts).ok();
    if (cpuprofile_started_) {
      obs::ProfileExporter::Options pe_opts;
      pe_opts.host = "lms-stack";
      pe_opts.interval = options_.cpuprofile_export_interval;
      pe_opts.top_k = options_.cpuprofile_top_k;
      pe_opts.clock = &clock_;
      profile_exporter_ = std::make_unique<obs::ProfileExporter>(
          [this](const std::string& body) -> util::Status {
            const std::string url = std::string("inproc://") + kRouterEndpoint +
                                    "/write?db=" + options_.database;
            auto resp = client_->post(url, body, "text/plain");
            if (!resp.ok()) return util::Status::error(resp.message());
            if (!resp->ok()) {
              return util::Status::error("HTTP " + std::to_string(resp->status));
            }
            return util::Status();
          },
          pe_opts);
    }
  }

  // Alerting: an evaluator over the shared storage, with a deadman watch
  // per node and transitions published on the "alerts" topic.
  if (options_.enable_alerts) {
    alert::Evaluator::Options alert_opts;
    alert_opts.database = options_.database;
    alert_opts.deadman_window = options_.deadman_window;
    // Watch the host agents' own telemetry: job-level streams (usermetric)
    // keep flowing while an agent is down and must not mask its silence.
    alert_opts.deadman_measurement = "cpu";
    alert_opts.registry = &registry_;
    alert_opts.eval_interval = options_.alert_interval;
    alert_opts.clock = &clock_;
    alert_evaluator_ = std::make_unique<alert::Evaluator>(storage_, alert_opts);
    for (const auto& name : node_names_) {
      alert_evaluator_->register_host(name);
    }
    alert_evaluator_->add_sink(std::make_unique<alert::LogSink>());
    alert_evaluator_->add_sink(std::make_unique<alert::PubSubSink>(broker_));
  }

  // Periodic work attaches to the manual scheduler in the order the old
  // per-step cadence checks ran: self-scrape, alert evaluation, then
  // maintenance (continuous queries + retention). The router's ingest
  // flusher attached first, in the router's constructor.
  if (self_scrape_ != nullptr) self_scrape_->attach(sched_);
  if (alert_evaluator_ != nullptr) alert_evaluator_->attach(sched_);
  if (cq_runner_ != nullptr) cq_runner_->attach(sched_);
  if (cpuprofile_started_) obs::CpuProfiler::instance().attach(sched_);
  if (profile_exporter_ != nullptr) profile_exporter_->attach(sched_);
  if (options_.retention > 0) {
    retention_task_ =
        sched_.submit_periodic("harness.retention", util::kNanosPerMinute, [this] {
          // Raw data expires; rollups and job-level aggregates persist.
          storage_.drop_before_if(clock_.now() - options_.retention,
                                  [](const std::string& m) {
                                    return !util::ends_with(m, "_rollup") &&
                                           !util::ends_with(m, "_job");
                                  });
        });
  }

  idle_activity_.hpm = hpm::idle_load(*options_.arch);
  idle_activity_.kernel = sysmon::KernelLoad{};
  idle_activity_.kernel.cpu_user_fraction = 0.005;
  idle_activity_.kernel.mem_used_bytes = 2e9;
}

ClusterHarness::~ClusterHarness() {
  // Head sampling is process-global; hand back whatever was configured
  // before this harness so tests cannot leak a rate into each other.
  obs::set_trace_sample_rate(prev_trace_sample_rate_);
  // The CpuProfiler is process-global too: let the exporter's detach write
  // its final batch while the stack is still up, then stop the profiler and
  // clear its aggregate so the next harness starts from an empty profile.
  if (cpuprofile_started_) {
    profile_exporter_.reset();
    obs::CpuProfiler& prof = obs::CpuProfiler::instance();
    prof.detach();
    prof.stop();
    prof.clear();
  }
}

std::size_t ClusterHarness::drain_traces() {
  if (trace_exporter_ == nullptr) return 0;
  const std::uint64_t before = trace_exporter_->spans_exported();
  (void)trace_exporter_->export_once();
  // Land the exported spans: with async ingest on they are still sitting in
  // the router's queues after the POST above.
  if (options_.async_ingest) (void)router_->flush_ingest();
  return static_cast<std::size_t>(trace_exporter_->spans_exported() - before);
}

std::size_t ClusterHarness::drain_profiles() {
  if (profile_exporter_ == nullptr) return 0;
  const std::uint64_t before = profile_exporter_->stacks_exported();
  (void)profile_exporter_->export_once();
  // Land the exported stacks: with async ingest on they are still sitting
  // in the router's queues after the POST above.
  if (options_.async_ingest) (void)router_->flush_ingest();
  return static_cast<std::size_t>(profile_exporter_->stacks_exported() - before);
}

void ClusterHarness::set_node_active(const std::string& name, bool active) {
  for (auto& node : nodes_) {
    if (node.name == name) node.active = active;
  }
}

int ClusterHarness::submit(const std::string& workload, const std::string& user, int nodes,
                           util::TimeNs duration, util::TimeNs walltime_limit) {
  auto w = make_workload(workload, rng_.next_u64());
  if (w == nullptr) return -1;
  return submit_workload(std::move(w), user, nodes, duration, walltime_limit);
}

int ClusterHarness::submit_workload(std::unique_ptr<Workload> workload, const std::string& user,
                                    int nodes, util::TimeNs duration,
                                    util::TimeNs walltime_limit) {
  sched::JobSpec spec;
  spec.name = workload->name();
  spec.user = user;
  spec.nodes = nodes;
  spec.walltime_limit = walltime_limit > 0 ? walltime_limit : duration * 2;
  spec.tags.emplace_back("queue", "batch");
  const int id = scheduler_->submit(std::move(spec), duration, clock_.now());
  pending_workloads_[id] = std::move(workload);
  return id;
}

void ClusterHarness::on_job_start(const sched::Job& job) {
  ActiveJob active;
  active.record.id = job.id;
  active.record.workload = job.spec.name;
  active.record.user = job.spec.user;
  active.record.nodes = job.assigned_nodes;
  active.record.start_time = clock_.now();
  auto wit = pending_workloads_.find(job.id);
  if (wit != pending_workloads_.end()) {
    active.workload = std::move(wit->second);
    pending_workloads_.erase(wit);
  } else {
    active.workload = make_workload("idle", 0);
  }
  active.rng = rng_.fork(static_cast<std::uint64_t>(job.id));

  // Per-job libusermetric client: default tags identify job, user, host.
  usermetric::UserMetricClient::Options um_opts;
  um_opts.router_url = std::string("inproc://") + kRouterEndpoint;
  um_opts.database = options_.database;
  um_opts.default_tags = {{"jobid", job.job_id_string()},
                          {"user", job.spec.user},
                          {"hostname", job.assigned_nodes.empty() ? std::string("?")
                                                                  : job.assigned_nodes[0]}};
  um_opts.buffer_capacity = 100;
  active.user_client =
      std::make_unique<usermetric::UserMetricClient>(*client_, clock_, um_opts);
  active.user_client->event("job", "start of " + job.spec.name);

  // Bind nodes to the job; with profiling on, each node gets a region
  // profiler whose HPM collector reads that node's simulated PMU.
  int index = 0;
  for (const auto& node_name : job.assigned_nodes) {
    for (auto& node : nodes_) {
      if (node.name == node_name) {
        node.job_id = job.id;
        node.job_node_index = index;
        if (options_.enable_profiling) {
          profiling::Profiler::Options prof_opts;
          prof_opts.hostname = node.name;
          prof_opts.clock = &clock_;
          prof_opts.registry = &registry_;
          prof_opts.emit_spans = options_.profiling_spans;
          auto profiler = std::make_unique<profiling::Profiler>(std::move(prof_opts));
          auto hpm_collector = profiling::HpmRegionCollector::create(
              groups_, *node.counters, options_.profiling_group);
          if (hpm_collector.ok()) {
            profiler->add_collector(hpm_collector.take());
          } else {
            LMS_WARN("cluster") << "region profiling without HPM: "
                                << hpm_collector.message();
          }
          active.profilers.emplace(node.name, std::move(profiler));
        }
        break;
      }
    }
    ++index;
  }
  active.last_profile_flush = clock_.now();
  active_jobs_.emplace(job.id, std::move(active));
}

void ClusterHarness::on_job_end(const sched::Job& job) {
  const auto it = active_jobs_.find(job.id);
  if (it == active_jobs_.end()) return;
  flush_profilers(it->second, clock_.now());  // the tail since the last flush
  it->second.user_client->event("job", "end of " + job.spec.name);
  it->second.user_client->flush();
  it->second.record.end_time = clock_.now();
  finished_jobs_.emplace(job.id, it->second.record);
  for (auto& node : nodes_) {
    if (node.job_id == job.id) {
      node.job_id = 0;
      node.job_node_index = 0;
    }
  }
  active_jobs_.erase(it);
}

void ClusterHarness::run_phases(SimNode& node, ActiveJob& job, util::TimeNs now) {
  profiling::Profiler& profiler = *job.profilers[node.name];
  const util::TimeNs elapsed = now - job.record.start_time;
  const auto phases =
      job.workload->phases(node.job_node_index, static_cast<int>(job.record.nodes.size()),
                           elapsed, *options_.arch, job.rng);
  double total = 0.0;
  for (const auto& phase : phases) total += std::max(0.0, phase.fraction);
  if (phases.empty() || total <= 0.0) {
    node.kernel->advance(idle_activity_.kernel, options_.step);
    node.counters->advance(idle_activity_.hpm, options_.step);
    return;
  }
  // The step being simulated is (now - step, now]; phases get synthetic
  // intra-step timestamps so region times are exact under the sim clock.
  util::TimeNs t = now - options_.step;
  util::TimeNs remaining = options_.step;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const Phase& phase = phases[i];
    util::TimeNs span = i + 1 == phases.size()
                            ? remaining
                            : static_cast<util::TimeNs>(static_cast<double>(options_.step) *
                                                        std::max(0.0, phase.fraction) / total);
    span = std::min(span, remaining);
    if (span <= 0) continue;
    (void)profiler.start(phase.region, t);
    node.kernel->advance(phase.activity.kernel, span);
    node.counters->advance(phase.activity.hpm, span);
    for (const auto& [value_name, value] : phase.values) {
      (void)profiler.value(value_name, value);
    }
    t += span;
    remaining -= span;
    (void)profiler.stop(phase.region, t);
  }
}

void ClusterHarness::flush_profilers(ActiveJob& job, util::TimeNs now) {
  job.last_profile_flush = now;
  std::vector<lineproto::Point> points;
  const std::vector<lineproto::Tag> job_tags{{"jobid", std::to_string(job.record.id)},
                                             {"user", job.record.user}};
  for (auto& [hostname, profiler] : job.profilers) {
    auto drained = profiler->drain_points(now, job_tags);
    points.insert(points.end(), std::make_move_iterator(drained.begin()),
                  std::make_move_iterator(drained.end()));
  }
  if (points.empty()) return;
  const std::string url =
      std::string("inproc://") + kRouterEndpoint + "/write?db=" + options_.database;
  auto resp = client_->post(url, lineproto::serialize_batch(points), "text/plain");
  if (!resp.ok() || !resp->ok()) {
    LMS_WARN("cluster") << "lms_regions flush failed: "
                        << (resp.ok() ? "HTTP " + std::to_string(resp->status)
                                      : resp.message());
  }
}

const ClusterHarness::JobRecord* ClusterHarness::job_record(int job_id) const {
  const auto fit = finished_jobs_.find(job_id);
  if (fit != finished_jobs_.end()) return &fit->second;
  const auto ait = active_jobs_.find(job_id);
  if (ait != active_jobs_.end()) return &ait->second.record;
  return nullptr;
}

void ClusterHarness::step_once() {
  const util::TimeNs now = clock_.advance(options_.step);
  scheduler_->tick(now);

  // Drive node activity from the running jobs. A profiled job node steps
  // through the workload's phases inside region markers instead of one
  // flat activity (same counter totals, attributed per region).
  for (auto& node : nodes_) {
    NodeActivity activity;
    if (node.job_id != 0) {
      auto it = active_jobs_.find(node.job_id);
      if (it != active_jobs_.end()) {
        ActiveJob& job = it->second;
        if (job.profilers.count(node.name) > 0) {
          run_phases(node, job, now);
          continue;
        }
        const util::TimeNs elapsed = now - job.record.start_time;
        activity = job.workload->activity(node.job_node_index,
                                          static_cast<int>(job.record.nodes.size()), elapsed,
                                          *options_.arch, job.rng);
      } else {
        activity = idle_activity_;
      }
    } else {
      activity = idle_activity_;
    }
    node.kernel->advance(activity.kernel, options_.step);
    node.counters->advance(activity.hpm, options_.step);
  }

  // Application-level reporting (libusermetric).
  for (auto& [id, job] : active_jobs_) {
    const util::TimeNs elapsed = now - job.record.start_time;
    for (std::size_t i = 0; i < job.record.nodes.size(); ++i) {
      job.workload->report(*job.user_client, static_cast<int>(i), elapsed, now);
    }
    job.user_client->tick(now);
  }

  // Per-region aggregates flush through the router on their own cadence.
  for (auto& [id, job] : active_jobs_) {
    if (!job.profilers.empty() &&
        now - job.last_profile_flush >= options_.profiling_flush_interval) {
      flush_profilers(job, now);
    }
  }

  // Host agents collect and deliver (a crashed agent stops ticking).
  for (auto& node : nodes_) {
    if (node.active) node.agent->tick(now);
  }

  // Land queued writes before anything downstream reads the storage, so a
  // simulation step behaves the same with and without async ingest.
  if (options_.async_ingest) (void)router_->flush_ingest();

  // Online stream analysis + optional aggregation and alert recording.
  analyzer_->pump();
  if (finding_recorder_ != nullptr) {
    finding_recorder_->record(analyzer_->engine().take_findings());
  }
  if (aggregator_ != nullptr) aggregator_->pump(now);

  // Deterministic CPU sample: one capture of the harness thread per step
  // (the sim stand-in for a SIGPROF tick); the fold task below aggregates
  // it on its own cadence.
  if (cpuprofile_started_) obs::CpuProfiler::instance().sample_once();

  // Self-scrape, alert evaluation, continuous queries and retention fire on
  // their own sim-clock cadences as periodic tasks on the manual scheduler;
  // one advance runs everything due this step. (The router's flusher task
  // also fires here — a no-op, since the explicit flush above already
  // landed this step's writes.)
  (void)sched_.advance_to(now);
}

void ClusterHarness::run_for(util::TimeNs duration) {
  const util::TimeNs end = clock_.now() + duration;
  while (clock_.now() < end) {
    step_once();
  }
}

bool ClusterHarness::run_until_done(int job_id, util::TimeNs max_sim_time) {
  const util::TimeNs deadline = clock_.now() + max_sim_time;
  while (clock_.now() < deadline) {
    step_once();
    if (finished_jobs_.count(job_id) > 0) return true;
  }
  return finished_jobs_.count(job_id) > 0;
}

}  // namespace lms::cluster
