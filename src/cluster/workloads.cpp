#include "lms/cluster/workload.hpp"

#include <algorithm>
#include <cmath>

#include "lms/cluster/minimd.hpp"
#include "lms/usermetric/mpi_profiler.hpp"
#include "lms/usermetric/omp_profiler.hpp"

namespace lms::cluster {

void Workload::report(usermetric::UserMetricClient&, int, util::TimeNs, util::TimeNs) {}

std::vector<Phase> Workload::phases(int node_index, int node_count, util::TimeNs elapsed,
                                    const hpm::CounterArchitecture& arch, util::Rng& rng) {
  Phase phase;
  phase.region = name();
  phase.fraction = 1.0;
  phase.activity = activity(node_index, node_count, elapsed, arch, rng);
  return {std::move(phase)};
}

NodeActivity make_uniform_activity(const hpm::CounterArchitecture& arch, double cpu_fraction,
                                   double ipc, double flops_dp_fraction_of_peak,
                                   double simd_fraction, double membw_fraction_of_peak,
                                   double mem_used_bytes, util::Rng& rng) {
  NodeActivity act;
  const int cores = arch.total_hwthreads();
  act.hpm.cores.resize(static_cast<std::size_t>(cores));
  act.hpm.sockets.resize(static_cast<std::size_t>(arch.sockets));

  const double per_core_flops = flops_dp_fraction_of_peak * arch.peak_dp_flops_per_core;
  const double per_socket_bw = membw_fraction_of_peak * arch.peak_mem_bw_per_socket;
  for (int c = 0; c < cores; ++c) {
    hpm::CoreLoad& core = act.hpm.cores[static_cast<std::size_t>(c)];
    const double jitter = rng.normal(1.0, 0.02);
    core.clock_ghz = arch.nominal_clock_ghz * (cpu_fraction > 0.5 ? 1.05 : 1.0);  // turbo-ish
    core.active_fraction = std::clamp(cpu_fraction * jitter, 0.0, 1.0);
    core.ipc = ipc;
    core.flops_dp_per_sec = std::max(0.0, per_core_flops * jitter);
    core.dp_simd_fraction = simd_fraction;
    core.branch_per_instr = 0.12;
    core.branch_miss_ratio = 0.01;
    core.loads_per_instr = 0.3;
    core.stores_per_instr = 0.12;
    const double core_mem_bw = per_socket_bw / arch.cores_per_socket;
    core.mem_bw_bytes_per_sec = core_mem_bw;
    core.l3_bw_bytes_per_sec = core_mem_bw * 1.3;
    core.l2_bw_bytes_per_sec = core_mem_bw * 2.0 + 1e8 * cpu_fraction;
    core.dtlb_miss_per_instr = 2e-5;
  }
  for (int s = 0; s < arch.sockets; ++s) {
    hpm::SocketLoad& socket = act.hpm.sockets[static_cast<std::size_t>(s)];
    socket.mem_read_bw_bytes_per_sec = per_socket_bw * 0.67;
    socket.mem_write_bw_bytes_per_sec = per_socket_bw * 0.33;
    // Simple power model: idle floor plus activity- and bandwidth-dependent.
    socket.package_power_watts =
        35.0 + 70.0 * cpu_fraction + 20.0 * membw_fraction_of_peak;
  }
  act.kernel.cpu_user_fraction = cpu_fraction;
  act.kernel.cpu_system_fraction = 0.02 * cpu_fraction;
  act.kernel.mem_used_bytes = mem_used_bytes;
  act.kernel.runnable_tasks = cpu_fraction * cores;
  act.kernel.net_rx_bytes_per_sec = 1e4;
  act.kernel.net_tx_bytes_per_sec = 1e4;
  act.kernel.net_rx_packets_per_sec = 50;
  act.kernel.net_tx_packets_per_sec = 50;
  act.kernel.disk_read_bytes_per_sec = 1e4;
  act.kernel.disk_write_bytes_per_sec = 5e4;
  act.kernel.disk_read_ops_per_sec = 2;
  act.kernel.disk_write_ops_per_sec = 5;
  return act;
}

namespace {

/// Add MPI-style halo-exchange network traffic for multi-node jobs.
void add_mpi_traffic(NodeActivity& act, int node_count, double intensity) {
  if (node_count <= 1) return;
  const double bw = intensity * 2e8;  // bytes/s per node
  act.kernel.net_rx_bytes_per_sec += bw;
  act.kernel.net_tx_bytes_per_sec += bw;
  act.kernel.net_rx_packets_per_sec += bw / 8192;
  act.kernel.net_tx_packets_per_sec += bw / 8192;
}

class IdleWorkload final : public Workload {
 public:
  std::string name() const override { return "idle"; }
  NodeActivity activity(int, int, util::TimeNs, const hpm::CounterArchitecture& arch,
                        util::Rng& rng) override {
    NodeActivity act = make_uniform_activity(arch, 0.01, 0.8, 0.0, 0.0, 0.001, 1.5e9, rng);
    return act;
  }
};

class DgemmWorkload final : public Workload {
 public:
  std::string name() const override { return "dgemm"; }
  NodeActivity activity(int, int node_count, util::TimeNs, const hpm::CounterArchitecture& arch,
                        util::Rng& rng) override {
    // Compute-bound: ~75% of peak flops, fully vectorized, cache-friendly.
    NodeActivity act = make_uniform_activity(arch, 0.98, 2.6, 0.75, 0.97, 0.12, 8e9, rng);
    add_mpi_traffic(act, node_count, 0.3);
    return act;
  }
};

class StreamWorkload final : public Workload {
 public:
  std::string name() const override { return "stream"; }
  NodeActivity activity(int, int node_count, util::TimeNs, const hpm::CounterArchitecture& arch,
                        util::Rng& rng) override {
    // Bandwidth-bound: ~85% of peak memory bandwidth, few flops, vectorized.
    NodeActivity act = make_uniform_activity(arch, 0.95, 0.7, 0.04, 0.95, 0.85, 24e9, rng);
    add_mpi_traffic(act, node_count, 0.2);
    return act;
  }
};

class ScalarWorkload final : public Workload {
 public:
  std::string name() const override { return "scalar"; }
  NodeActivity activity(int, int node_count, util::TimeNs, const hpm::CounterArchitecture& arch,
                        util::Rng& rng) override {
    // Busy and decently efficient per instruction, but FP work is scalar:
    // large vectorization headroom (pattern: scalar_code).
    NodeActivity act = make_uniform_activity(arch, 0.97, 1.8, 0.06, 0.02, 0.10, 6e9, rng);
    add_mpi_traffic(act, node_count, 0.2);
    return act;
  }
};

class LatencyWorkload final : public Workload {
 public:
  std::string name() const override { return "latency"; }
  NodeActivity activity(int, int, const util::TimeNs, const hpm::CounterArchitecture& arch,
                        util::Rng& rng) override {
    // Pointer chasing: core busy but stalled — low IPC, low bandwidth.
    NodeActivity act = make_uniform_activity(arch, 0.96, 0.25, 0.01, 0.05, 0.06, 12e9, rng);
    for (auto& core : act.hpm.cores) {
      core.loads_per_instr = 0.45;
      core.dtlb_miss_per_instr = 4e-4;
      core.l2_bw_bytes_per_sec *= 2.5;  // misses everywhere, little reuse
    }
    return act;
  }
};

class IoHeavyWorkload final : public Workload {
 public:
  std::string name() const override { return "io_heavy"; }
  NodeActivity activity(int, int, util::TimeNs, const hpm::CounterArchitecture& arch,
                        util::Rng& rng) override {
    // Checkpoint-dominated phase: cores mostly wait on I/O, the disks and
    // the network (parallel filesystem) are saturated.
    NodeActivity act = make_uniform_activity(arch, 0.15, 0.9, 0.02, 0.4, 0.05, 20e9, rng);
    act.kernel.cpu_iowait_fraction = 0.5;
    act.kernel.cpu_system_fraction = 0.1;
    act.kernel.disk_read_bytes_per_sec = 4e8;
    act.kernel.disk_write_bytes_per_sec = 1.2e9;
    act.kernel.disk_read_ops_per_sec = 3000;
    act.kernel.disk_write_ops_per_sec = 9000;
    act.kernel.net_rx_bytes_per_sec = 6e8;
    act.kernel.net_tx_bytes_per_sec = 6e8;
    return act;
  }
};

class MemLeakWorkload final : public Workload {
 public:
  std::string name() const override { return "memleak"; }
  NodeActivity activity(int, int, util::TimeNs elapsed, const hpm::CounterArchitecture& arch,
                        util::Rng& rng) override {
    NodeActivity act = make_uniform_activity(arch, 0.6, 1.2, 0.05, 0.5, 0.2, 0.0, rng);
    // Footprint grows ~120 MB per simulated second toward the 64 GB node.
    const double used = 4e9 + 1.2e8 * util::ns_to_seconds(elapsed);
    act.kernel.mem_used_bytes = used;
    return act;
  }
};

class ImbalancedWorkload final : public Workload {
 public:
  std::string name() const override { return "imbalanced"; }
  NodeActivity activity(int node_index, int node_count, util::TimeNs,
                        const hpm::CounterArchitecture& arch, util::Rng& rng) override {
    // Node 0 does the heavy lifting; the rest wait in MPI most of the time.
    const bool heavy = node_index == 0;
    const double cpu = heavy ? 0.97 : 0.35;
    const double flops = heavy ? 0.55 : 0.08;
    NodeActivity act = make_uniform_activity(arch, cpu, heavy ? 2.2 : 0.9, flops, 0.9,
                                             heavy ? 0.45 : 0.08, 10e9, rng);
    add_mpi_traffic(act, node_count, heavy ? 0.5 : 0.8);
    return act;
  }

  void report(usermetric::UserMetricClient& client, int node_index, util::TimeNs elapsed,
              util::TimeNs now) override {
    // PMPI-style tooling data (§IV): light ranks spend most of their time
    // waiting in the Allreduce for rank 0 — the load-imbalance signature
    // visible from application-level data alone.
    const auto [it, inserted] =
        profilers_.try_emplace(node_index, client, node_index, 30 * util::kNanosPerSecond);
    usermetric::MpiProfiler& profiler = it->second;
    const bool heavy = node_index == 0;
    // One halo exchange + Allreduce per simulated second.
    const util::TimeNs wait =
        util::seconds_to_ns(heavy ? 0.03 : 0.62);
    profiler.record(usermetric::MpiCall::kAllreduce, now - wait, wait, 8);
    profiler.record(usermetric::MpiCall::kIsend, now - wait / 10, wait / 20, 1 << 20);
    (void)elapsed;
  }

 private:
  std::map<int, usermetric::MpiProfiler> profilers_;
};

class ComputeBreakWorkload final : public Workload {
 public:
  /// Compute for `compute_before`, idle for `break_duration`, then compute
  /// again — the Fig. 4 timeline.
  ComputeBreakWorkload(util::TimeNs compute_before, util::TimeNs break_duration)
      : compute_before_(compute_before), break_duration_(break_duration) {}

  std::string name() const override { return "compute_break"; }
  NodeActivity activity(int, int node_count, util::TimeNs elapsed,
                        const hpm::CounterArchitecture& arch, util::Rng& rng) override {
    const bool in_break =
        elapsed >= compute_before_ && elapsed < compute_before_ + break_duration_;
    if (in_break) {
      // Stalled: e.g. waiting on a dead I/O server — CPU spins a little.
      return make_uniform_activity(arch, 0.03, 0.5, 0.0, 0.0, 0.002, 14e9, rng);
    }
    NodeActivity act = make_uniform_activity(arch, 0.96, 2.2, 0.45, 0.9, 0.5, 14e9, rng);
    add_mpi_traffic(act, node_count, 0.4);
    return act;
  }

 private:
  util::TimeNs compute_before_;
  util::TimeNs break_duration_;
};

class MiniMdWorkload final : public Workload {
 public:
  explicit MiniMdWorkload(std::uint64_t seed)
      : engine_(MiniMd::Params{}, seed) {}

  std::string name() const override { return "minimd"; }

  NodeActivity activity(int, int node_count, util::TimeNs, const hpm::CounterArchitecture& arch,
                        util::Rng& rng) override {
    // MD force loops: well vectorized, moderate bandwidth, good IPC.
    NodeActivity act = make_uniform_activity(arch, 0.95, 2.0, 0.35, 0.8, 0.3, 2e9, rng);
    add_mpi_traffic(act, node_count, 0.4);
    return act;
  }

  std::vector<Phase> phases(int, int node_count, util::TimeNs,
                            const hpm::CounterArchitecture& arch, util::Rng& rng) override {
    // The canonical MD timestep: the vectorized force loop dominates, the
    // neighbor-list rebuild is branchy and latency-bound, halo exchange
    // waits on the network, integration streams over the particle arrays.
    std::vector<Phase> phases(4);
    phases[0].region = "force";
    phases[0].fraction = 0.55;
    phases[0].activity = make_uniform_activity(arch, 0.98, 2.4, 0.50, 0.95, 0.35, 2e9, rng);
    phases[1].region = "neighbor";
    phases[1].fraction = 0.20;
    phases[1].activity = make_uniform_activity(arch, 0.95, 0.9, 0.03, 0.2, 0.45, 2e9, rng);
    for (auto& core : phases[1].activity.hpm.cores) {
      core.branch_per_instr = 0.2;
      core.branch_miss_ratio = 0.06;
    }
    phases[2].region = "comm";
    phases[2].fraction = 0.15;
    phases[2].activity = make_uniform_activity(arch, 0.30, 0.7, 0.01, 0.1, 0.05, 2e9, rng);
    add_mpi_traffic(phases[2].activity, node_count, 0.9);
    phases[3].region = "integrate";
    phases[3].fraction = 0.10;
    phases[3].activity = make_uniform_activity(arch, 0.90, 1.2, 0.15, 0.9, 0.60, 2e9, rng);
    phases[3].values.emplace_back("iterations", 50.0);  // iterations per sim second
    return phases;
  }

  void report(usermetric::UserMetricClient& client, int node_index, util::TimeNs elapsed,
              util::TimeNs now) override {
    if (node_index != 0) return;  // rank 0 reports, like the real proxy app
    if (omp_ == nullptr) {
      omp_ = std::make_unique<usermetric::OmpProfiler>(client, 30 * util::kNanosPerSecond);
    }
    // Simulated iteration rate: 50 iterations per second of job time.
    constexpr double kItersPerSecond = 50.0;
    const auto iterations =
        static_cast<std::int64_t>(util::ns_to_seconds(elapsed) * kItersPerSecond);
    while (reported_ + 100 <= iterations) {
      reported_ += 100;
      // Evolve real dynamics: a few integrator steps stand in for 100
      // iterations so the observables fluctuate physically.
      engine_.step(4);
      const double runtime_100 = 100.0 / kItersPerSecond * rng_.normal(1.0, 0.03);
      const std::vector<lineproto::Tag> tags{{"iter", std::to_string(reported_)}};
      client.value("runtime_100iters", runtime_100, tags, now);
      client.value("pressure", engine_.pressure(), tags, now);
      client.value("temperature", engine_.temperature(), tags, now);
      client.value("energy", engine_.total_energy(), tags, now);

      // OMPT-style region data (§IV): the force loop is the parallel
      // region, ~85% of the block, well balanced across 16 threads.
      const util::TimeNs block = util::seconds_to_ns(runtime_100);
      std::vector<util::TimeNs> busy(16);
      const util::TimeNs region = block * 85 / 100;
      for (auto& b : busy) {
        b = static_cast<util::TimeNs>(static_cast<double>(region) *
                                      rng_.uniform(0.93, 1.0));
      }
      omp_->record_region(now - block, region, busy);
    }
  }

 private:
  MiniMd engine_;
  std::int64_t reported_ = 0;
  util::Rng rng_{12345};
  std::unique_ptr<usermetric::OmpProfiler> omp_;
};

// ---- phase-instrumented workload proxies (profiling SDK showcases) ----

/// ML-inference serving loop: decode/tokenize, batched matmul, softmax,
/// response assembly. The matmul phase is the only one near peak flops —
/// exactly the per-region contrast the roofline view should surface.
class MlInferenceWorkload final : public Workload {
 public:
  std::string name() const override { return "ml_inference"; }

  NodeActivity activity(int, int, util::TimeNs, const hpm::CounterArchitecture& arch,
                        util::Rng& rng) override {
    // Step-averaged blend of the phases below.
    return make_uniform_activity(arch, 0.92, 2.1, 0.44, 0.75, 0.27, 6e9, rng);
  }

  std::vector<Phase> phases(int, int, util::TimeNs, const hpm::CounterArchitecture& arch,
                            util::Rng& rng) override {
    std::vector<Phase> phases(4);
    phases[0].region = "preprocess";  // request decode + tokenize: scalar, branchy
    phases[0].fraction = 0.15;
    phases[0].activity = make_uniform_activity(arch, 0.85, 1.4, 0.02, 0.05, 0.15, 6e9, rng);
    phases[1].region = "matmul";  // batched GEMM: near-peak vectorized compute
    phases[1].fraction = 0.60;
    phases[1].activity = make_uniform_activity(arch, 0.98, 2.6, 0.72, 0.97, 0.30, 6e9, rng);
    phases[1].values.emplace_back("batch_size", 32.0);
    phases[2].region = "softmax";  // streaming normalization: vector, bandwidth-lean
    phases[2].fraction = 0.10;
    phases[2].activity = make_uniform_activity(arch, 0.95, 1.3, 0.12, 0.90, 0.50, 6e9, rng);
    phases[3].region = "postprocess";  // response assembly: scalar, light
    phases[3].fraction = 0.15;
    phases[3].activity = make_uniform_activity(arch, 0.70, 1.2, 0.01, 0.02, 0.10, 6e9, rng);
    phases[3].values.emplace_back("requests", 128.0);
    phases[3].values.emplace_back("latency_ms", rng.normal(7.5, 0.6));
    return phases;
  }
};

/// 2D stencil sweep: MPI halo exchange, a memory-bandwidth-bound sweep over
/// the grid, and a small convergence reduction.
class Stencil2dWorkload final : public Workload {
 public:
  std::string name() const override { return "stencil2d"; }

  NodeActivity activity(int, int node_count, util::TimeNs, const hpm::CounterArchitecture& arch,
                        util::Rng& rng) override {
    NodeActivity act = make_uniform_activity(arch, 0.88, 1.1, 0.17, 0.85, 0.65, 16e9, rng);
    add_mpi_traffic(act, node_count, 0.5);
    return act;
  }

  std::vector<Phase> phases(int, int node_count, util::TimeNs elapsed,
                            const hpm::CounterArchitecture& arch, util::Rng& rng) override {
    std::vector<Phase> phases(3);
    phases[0].region = "halo_exchange";  // boundary swap: cores wait on the network
    phases[0].fraction = 0.15;
    phases[0].activity = make_uniform_activity(arch, 0.35, 0.8, 0.01, 0.3, 0.08, 16e9, rng);
    add_mpi_traffic(phases[0].activity, node_count, 0.9);
    phases[1].region = "sweep";  // 5-point update: streaming, bandwidth-bound
    phases[1].fraction = 0.75;
    phases[1].activity = make_uniform_activity(arch, 0.96, 1.1, 0.20, 0.95, 0.80, 16e9, rng);
    phases[1].values.emplace_back("grid_updates", 2.6e8);
    phases[2].region = "reduce";  // residual norm: small compute + allreduce
    phases[2].fraction = 0.10;
    phases[2].activity = make_uniform_activity(arch, 0.90, 1.8, 0.10, 0.80, 0.30, 16e9, rng);
    // Jacobi-style convergence: the residual decays with iteration count.
    phases[2].values.emplace_back(
        "residual", 1.0 / (1.0 + util::ns_to_seconds(elapsed)) * rng.normal(1.0, 0.02));
    return phases;
  }
};

/// Out-of-core sort/merge pass: a branchy partitioning scan, a cache-hostile
/// in-memory sort, and a streaming k-way merge — three distinct bottlenecks
/// (branch misses, load latency, memory bandwidth) in one job.
class SortMergeWorkload final : public Workload {
 public:
  std::string name() const override { return "sortmerge"; }

  NodeActivity activity(int, int, util::TimeNs, const hpm::CounterArchitecture& arch,
                        util::Rng& rng) override {
    return make_uniform_activity(arch, 0.94, 1.0, 0.01, 0.10, 0.42, 20e9, rng);
  }

  std::vector<Phase> phases(int, int, util::TimeNs, const hpm::CounterArchitecture& arch,
                            util::Rng& rng) override {
    std::vector<Phase> phases(3);
    phases[0].region = "partition";  // pivot scan: scalar, hard-to-predict branches
    phases[0].fraction = 0.25;
    phases[0].activity = make_uniform_activity(arch, 0.95, 1.5, 0.01, 0.05, 0.35, 20e9, rng);
    for (auto& core : phases[0].activity.hpm.cores) {
      core.branch_per_instr = 0.22;
      core.branch_miss_ratio = 0.08;
    }
    phases[1].region = "sort";  // per-run sort: latency-bound pointer shuffling
    phases[1].fraction = 0.45;
    phases[1].activity = make_uniform_activity(arch, 0.97, 0.8, 0.0, 0.02, 0.25, 20e9, rng);
    for (auto& core : phases[1].activity.hpm.cores) {
      core.loads_per_instr = 0.42;
      core.branch_miss_ratio = 0.12;
      core.dtlb_miss_per_instr = 2e-4;
    }
    phases[1].values.emplace_back("comparisons", 4.8e8);
    phases[2].region = "merge";  // k-way merge: sequential streams, bandwidth-bound
    phases[2].fraction = 0.30;
    phases[2].activity = make_uniform_activity(arch, 0.90, 1.0, 0.0, 0.40, 0.70, 20e9, rng);
    phases[2].values.emplace_back("elements_merged", 1.5e8);
    return phases;
  }
};

}  // namespace

std::unique_ptr<Workload> make_workload(const std::string& name, std::uint64_t seed) {
  if (name == "idle") return std::make_unique<IdleWorkload>();
  if (name == "dgemm") return std::make_unique<DgemmWorkload>();
  if (name == "stream") return std::make_unique<StreamWorkload>();
  if (name == "scalar") return std::make_unique<ScalarWorkload>();
  if (name == "latency") return std::make_unique<LatencyWorkload>();
  if (name == "memleak") return std::make_unique<MemLeakWorkload>();
  if (name == "io_heavy") return std::make_unique<IoHeavyWorkload>();
  if (name == "imbalanced") return std::make_unique<ImbalancedWorkload>();
  if (name == "compute_break") {
    return std::make_unique<ComputeBreakWorkload>(10 * util::kNanosPerMinute,
                                                  12 * util::kNanosPerMinute);
  }
  if (name == "minimd") return std::make_unique<MiniMdWorkload>(seed);
  if (name == "ml_inference") return std::make_unique<MlInferenceWorkload>();
  if (name == "stencil2d") return std::make_unique<Stencil2dWorkload>();
  if (name == "sortmerge") return std::make_unique<SortMergeWorkload>();
  return nullptr;
}

std::unique_ptr<Workload> make_compute_break(util::TimeNs compute_before,
                                             util::TimeNs break_duration) {
  return std::make_unique<ComputeBreakWorkload>(compute_before, break_duration);
}

std::vector<std::string> workload_names() {
  return {"minimd",  "dgemm",      "stream", "idle",    "compute_break",
          "memleak", "imbalanced", "scalar", "latency", "io_heavy",
          "ml_inference", "stencil2d", "sortmerge"};
}

}  // namespace lms::cluster
