#include "lms/net/health.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <unordered_map>

#include "lms/core/runtime.hpp"
#include "lms/core/sync.hpp"
#include "lms/json/json.hpp"
#include "lms/obs/cpuprofiler.hpp"
#include "lms/obs/runtime.hpp"
#include "lms/obs/trace.hpp"

namespace lms::net {

std::string_view health_status_name(HealthStatus s) {
  switch (s) {
    case HealthStatus::kOk:
      return "ok";
    case HealthStatus::kDegraded:
      return "degraded";
    case HealthStatus::kDown:
      return "down";
  }
  return "?";
}

HealthStatus worse(HealthStatus a, HealthStatus b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

void ComponentHealth::add(std::string name, HealthStatus status, std::string detail) {
  checks.push_back(HealthCheck{std::move(name), status, std::move(detail), std::nullopt});
}

void ComponentHealth::add(std::string name, HealthStatus status, std::string detail,
                          double value) {
  checks.push_back(HealthCheck{std::move(name), status, std::move(detail), value});
}

HealthStatus ComponentHealth::status() const {
  HealthStatus s = HealthStatus::kOk;
  for (const auto& check : checks) s = worse(s, check.status);
  return s;
}

namespace {

json::Object build_info_json() {
  const obs::BuildInfo b = obs::build_info();
  json::Object o;
  o["type"] = b.build_type;
  o["compiler"] = b.compiler;
  o["sanitizer"] = b.sanitizer;
  o["rank_checks"] = b.rank_checks;
  o["lock_stats"] = b.lock_stats;
  return o;
}

}  // namespace

std::string ComponentHealth::to_json() const {
  json::Object o;
  o["component"] = component;
  o["status"] = std::string(health_status_name(status()));
  o["time"] = static_cast<std::int64_t>(time);
  o["build"] = build_info_json();
  json::Array arr;
  for (const auto& check : checks) {
    json::Object c;
    c["name"] = check.name;
    c["status"] = std::string(health_status_name(check.status));
    if (!check.detail.empty()) c["detail"] = check.detail;
    if (check.value.has_value()) c["value"] = *check.value;
    arr.emplace_back(std::move(c));
  }
  o["checks"] = std::move(arr);
  return json::Value(std::move(o)).dump();
}

HttpResponse health_response(const ComponentHealth& health) {
  const int status = health.status() == HealthStatus::kDown ? 503 : 200;
  return HttpResponse::json(status, health.to_json());
}

HttpResponse ready_response(const ComponentHealth& health) {
  const int status = health.status() == HealthStatus::kOk ? 200 : 503;
  return HttpResponse::json(status, health.to_json());
}

HttpResponse debug_logs_response(const util::LogRing& ring, const HttpRequest& req) {
  std::uint64_t trace_filter = 0;
  const std::string want = req.query.get_or("trace", "");
  if (!want.empty()) {
    const auto id = obs::parse_trace_id_hex(want);
    if (!id || *id == 0) {
      json::Object err;
      err["error"] = "bad trace id (want 16 hex characters)";
      return HttpResponse::json(400, json::Value(std::move(err)).dump());
    }
    trace_filter = *id;
  }
  const std::vector<util::LogRing::Entry> entries =
      trace_filter != 0 ? ring.entries_for_trace(trace_filter) : ring.entries();
  json::Object top;
  top["dropped"] = static_cast<std::int64_t>(ring.dropped());
  json::Array arr;
  for (const util::LogRing::Entry& e : entries) {
    json::Object o;
    o["level"] = std::string(util::log_level_name(e.level));
    o["component"] = e.component;
    o["message"] = e.message;
    if (e.trace_id != 0) o["trace_id"] = obs::trace_id_hex(e.trace_id);
    arr.emplace_back(std::move(o));
  }
  top["entries"] = std::move(arr);
  return HttpResponse::json(200, json::Value(std::move(top)).dump());
}

HttpResponse runtime_debug_response() {
  namespace ls = core::sync::lockstats;
  json::Object top;
  top["build"] = build_info_json();

  json::Object locks;
  locks["compiled"] = core::sync::kLockStatsEnabled;
  locks["enabled"] = core::sync::kLockStatsEnabled && ls::enabled();
  locks["sites_dropped"] = static_cast<std::int64_t>(ls::dropped_sites());
  json::Array sites;
  for (const ls::SiteSnapshot& s : ls::snapshot()) {
    json::Object site;
    site["lock"] = std::string(s.name != nullptr ? s.name : "<unnamed>");
    site["rank"] = static_cast<std::int64_t>(s.rank);
    site["acquisitions"] = static_cast<std::int64_t>(s.acquisitions);
    site["contended"] = static_cast<std::int64_t>(s.contended);
    site["contention_pct"] =
        s.acquisitions > 0
            ? 100.0 * static_cast<double>(s.contended) / static_cast<double>(s.acquisitions)
            : 0.0;
    site["wait_ns_total"] = static_cast<std::int64_t>(s.wait_ns_total);
    site["wait_ns_max"] = static_cast<std::int64_t>(s.wait_ns_max);
    site["wait_p50_ns"] = static_cast<std::int64_t>(ls::wait_quantile_ns(s, 0.50));
    site["wait_p99_ns"] = static_cast<std::int64_t>(ls::wait_quantile_ns(s, 0.99));
    site["hold_ns_total"] = static_cast<std::int64_t>(s.hold_ns_total);
    site["hold_ns_max"] = static_cast<std::int64_t>(s.hold_ns_max);
    sites.emplace_back(std::move(site));
  }
  locks["sites"] = std::move(sites);
  top["lock_stats"] = std::move(locks);

  json::Array queues;
  for (const core::runtime::QueueSnapshot& q : core::runtime::queue_snapshot()) {
    json::Object o;
    o["queue"] = q.name;
    o["capacity"] = static_cast<std::int64_t>(q.capacity);
    o["depth"] = static_cast<std::int64_t>(q.depth);
    o["high_watermark"] = static_cast<std::int64_t>(q.high_watermark);
    o["pushes"] = static_cast<std::int64_t>(q.pushes);
    o["pops"] = static_cast<std::int64_t>(q.pops);
    o["blocked_pushes"] = static_cast<std::int64_t>(q.blocked_pushes);
    o["rejected_pushes"] = static_cast<std::int64_t>(q.rejected_pushes);
    queues.emplace_back(std::move(o));
  }
  top["queues"] = std::move(queues);

  json::Array loops;
  for (const core::runtime::LoopSnapshot& l : core::runtime::loop_snapshot()) {
    json::Object o;
    o["loop"] = l.name;
    o["iterations"] = static_cast<std::int64_t>(l.iterations);
    o["busy_ns"] = static_cast<std::int64_t>(l.busy_ns);
    o["idle_ns"] = static_cast<std::int64_t>(l.idle_ns);
    o["duty_pct"] = l.duty_pct;
    loops.emplace_back(std::move(o));
  }
  top["loops"] = std::move(loops);

  json::Array scheds;
  for (const core::runtime::SchedSnapshot& s : core::runtime::sched_snapshot()) {
    json::Object o;
    o["scheduler"] = s.name;
    o["workers"] = static_cast<std::int64_t>(s.workers);
    o["submitted"] = static_cast<std::int64_t>(s.submitted);
    o["executed"] = static_cast<std::int64_t>(s.executed);
    o["stolen"] = static_cast<std::int64_t>(s.stolen);
    o["steal_attempts"] = static_cast<std::int64_t>(s.steal_attempts);
    o["pinned"] = static_cast<std::int64_t>(s.pinned);
    o["delayed"] = static_cast<std::int64_t>(s.delayed);
    o["periodic_runs"] = static_cast<std::int64_t>(s.periodic_runs);
    o["queue_depth"] = static_cast<std::int64_t>(s.depth);
    o["queue_high_watermark"] = static_cast<std::int64_t>(s.high_watermark);
    scheds.emplace_back(std::move(o));
  }
  top["scheds"] = std::move(scheds);

  namespace sd = core::runtime::sched_delay;
  json::Array queue_delays;
  for (const sd::TaskDelaySnapshot& t : sd::snapshot()) {
    json::Object o;
    o["task"] = std::string(t.name);
    o["count"] = static_cast<std::int64_t>(t.count);
    o["delay_ns_total"] = static_cast<std::int64_t>(t.delay_ns_total);
    o["delay_ns_max"] = static_cast<std::int64_t>(t.delay_ns_max);
    o["delay_ns_avg"] =
        static_cast<std::int64_t>(t.count > 0 ? t.delay_ns_total / t.count : 0);
    o["delay_p50_ns"] = static_cast<std::int64_t>(sd::delay_quantile_ns(t, 0.50));
    o["delay_p99_ns"] = static_cast<std::int64_t>(sd::delay_quantile_ns(t, 0.99));
    queue_delays.emplace_back(std::move(o));
  }
  top["queue_delays"] = std::move(queue_delays);

  const obs::CpuProfiler::Stats prof = obs::CpuProfiler::instance().stats();
  json::Object profiler;
  profiler["running"] = prof.running;
  profiler["timer"] = prof.timer;
  profiler["hz"] = static_cast<std::int64_t>(prof.hz);
  profiler["samples_captured"] = static_cast<std::int64_t>(prof.samples_captured);
  profiler["samples_dropped"] = static_cast<std::int64_t>(prof.samples_dropped);
  profiler["samples_folded"] = static_cast<std::int64_t>(prof.samples_folded);
  profiler["folds"] = static_cast<std::int64_t>(prof.folds);
  profiler["rings_active"] = static_cast<std::int64_t>(prof.rings_active);
  profiler["rings_reclaimed"] = static_cast<std::int64_t>(prof.rings_reclaimed);
  profiler["stacks"] = static_cast<std::int64_t>(prof.stacks);
  profiler["stack_overflows"] = static_cast<std::int64_t>(prof.stack_overflows);
  top["profiler"] = std::move(profiler);

  return HttpResponse::json(200, json::Value(std::move(top)).dump());
}

HttpResponse pprof_response(const HttpRequest& req) {
  obs::CpuProfiler& prof = obs::CpuProfiler::instance();
  if (!prof.running()) {
    return HttpResponse::text(503, "cpu profiler not running (enable [profiling])\n");
  }
  int seconds = 0;
  const std::string want = req.query.get_or("seconds", "0");
  seconds = std::clamp(std::atoi(want.c_str()), 0, 30);
  std::string body;
  if (seconds > 0 && prof.options().timer) {
    // pprof-style delta: fold what's pending, remember the counts, let the
    // timer sample for the window, and emit only the growth.
    prof.process_once();
    std::unordered_map<std::string, std::uint64_t> before;
    for (const obs::ProfileStack& s : prof.snapshot()) before[s.stack] = s.count;
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    prof.process_once();
    std::vector<obs::ProfileStack> delta;
    for (obs::ProfileStack& s : prof.snapshot()) {
      const auto it = before.find(s.stack);
      const std::uint64_t base = it != before.end() ? it->second : 0;
      if (s.count > base) {
        s.count -= base;
        delta.push_back(std::move(s));
      }
    }
    std::sort(delta.begin(), delta.end(),
              [](const obs::ProfileStack& a, const obs::ProfileStack& b) {
                return a.count > b.count;
              });
    for (const obs::ProfileStack& s : delta) {
      body += s.stack;
      body += ' ';
      body += std::to_string(s.count);
      body += '\n';
    }
  } else {
    // Cumulative profile since start/clear (also the deterministic-mode
    // path, where no timer ticks during a sleep anyway).
    prof.process_once();
    body = prof.collapsed();
  }
  return HttpResponse::text(200, std::move(body));
}

}  // namespace lms::net
