#include "lms/net/health.hpp"

#include "lms/json/json.hpp"
#include "lms/obs/trace.hpp"

namespace lms::net {

std::string_view health_status_name(HealthStatus s) {
  switch (s) {
    case HealthStatus::kOk:
      return "ok";
    case HealthStatus::kDegraded:
      return "degraded";
    case HealthStatus::kDown:
      return "down";
  }
  return "?";
}

HealthStatus worse(HealthStatus a, HealthStatus b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

void ComponentHealth::add(std::string name, HealthStatus status, std::string detail) {
  checks.push_back(HealthCheck{std::move(name), status, std::move(detail), std::nullopt});
}

void ComponentHealth::add(std::string name, HealthStatus status, std::string detail,
                          double value) {
  checks.push_back(HealthCheck{std::move(name), status, std::move(detail), value});
}

HealthStatus ComponentHealth::status() const {
  HealthStatus s = HealthStatus::kOk;
  for (const auto& check : checks) s = worse(s, check.status);
  return s;
}

std::string ComponentHealth::to_json() const {
  json::Object o;
  o["component"] = component;
  o["status"] = std::string(health_status_name(status()));
  o["time"] = static_cast<std::int64_t>(time);
  json::Array arr;
  for (const auto& check : checks) {
    json::Object c;
    c["name"] = check.name;
    c["status"] = std::string(health_status_name(check.status));
    if (!check.detail.empty()) c["detail"] = check.detail;
    if (check.value.has_value()) c["value"] = *check.value;
    arr.emplace_back(std::move(c));
  }
  o["checks"] = std::move(arr);
  return json::Value(std::move(o)).dump();
}

HttpResponse health_response(const ComponentHealth& health) {
  const int status = health.status() == HealthStatus::kDown ? 503 : 200;
  return HttpResponse::json(status, health.to_json());
}

HttpResponse ready_response(const ComponentHealth& health) {
  const int status = health.status() == HealthStatus::kOk ? 200 : 503;
  return HttpResponse::json(status, health.to_json());
}

HttpResponse debug_logs_response(const util::LogRing& ring, const HttpRequest& req) {
  std::uint64_t trace_filter = 0;
  const std::string want = req.query.get_or("trace", "");
  if (!want.empty()) {
    const auto id = obs::parse_trace_id_hex(want);
    if (!id || *id == 0) {
      json::Object err;
      err["error"] = "bad trace id (want 16 hex characters)";
      return HttpResponse::json(400, json::Value(std::move(err)).dump());
    }
    trace_filter = *id;
  }
  const std::vector<util::LogRing::Entry> entries =
      trace_filter != 0 ? ring.entries_for_trace(trace_filter) : ring.entries();
  json::Object top;
  top["dropped"] = static_cast<std::int64_t>(ring.dropped());
  json::Array arr;
  for (const util::LogRing::Entry& e : entries) {
    json::Object o;
    o["level"] = std::string(util::log_level_name(e.level));
    o["component"] = e.component;
    o["message"] = e.message;
    if (e.trace_id != 0) o["trace_id"] = obs::trace_id_hex(e.trace_id);
    arr.emplace_back(std::move(o));
  }
  top["entries"] = std::move(arr);
  return HttpResponse::json(200, json::Value(std::move(top)).dump());
}

}  // namespace lms::net
