#include "lms/net/pubsub.hpp"

#include "lms/obs/metrics.hpp"
#include "lms/util/strings.hpp"

namespace lms::net {

Subscription::~Subscription() {
  if (broker_ != nullptr) broker_->unsubscribe(this);
}

std::optional<PubSubMessage> Subscription::receive() { return queue_.pop(); }

std::optional<PubSubMessage> Subscription::receive_for(util::TimeNs timeout) {
  return queue_.pop_for(timeout);
}

std::optional<PubSubMessage> Subscription::try_receive() { return queue_.try_pop(); }

std::shared_ptr<Subscription> PubSubBroker::subscribe(std::string topic_prefix, std::size_t hwm) {
  // make_shared not usable: private constructor.
  std::shared_ptr<Subscription> sub(new Subscription(this, std::move(topic_prefix), hwm));
  const core::sync::LockGuard lock(mu_);
  subscribers_.push_back(sub.get());
  if (registry_ != nullptr) {
    // Depth gauge over the subscriber's bounded queue — the high-water-mark
    // pressure signal. Sampled at collect time; removed on unsubscribe.
    sub->metric_id_ = std::to_string(next_sub_id_++);
    Subscription* raw = sub.get();
    registry_->gauge_fn("pubsub_queue_depth",
                        {{"topic", raw->prefix_}, {"sub", raw->metric_id_}},
                        [raw] { return static_cast<double>(raw->queue_.size()); });
  }
  return sub;
}

std::size_t PubSubBroker::publish(std::string_view topic, std::string_view payload) {
  published_.fetch_add(1, std::memory_order_relaxed);
  std::size_t delivered = 0;
  std::size_t dropped = 0;
  obs::Counter* published_counter = nullptr;
  obs::Counter* delivered_counter = nullptr;
  obs::Counter* dropped_counter = nullptr;
  {
    const core::sync::LockGuard lock(mu_);
    for (Subscription* sub : subscribers_) {
      if (!util::starts_with(topic, sub->prefix_)) continue;
      if (sub->queue_.try_push(PubSubMessage{std::string(topic), std::string(payload)})) {
        ++delivered;
      } else {
        sub->dropped_.fetch_add(1, std::memory_order_relaxed);
        ++dropped;
      }
    }
    published_counter = published_counter_;
    delivered_counter = delivered_counter_;
    dropped_counter = dropped_counter_;
  }
  if (published_counter != nullptr) published_counter->inc();
  if (delivered_counter != nullptr && delivered > 0) delivered_counter->inc(delivered);
  if (dropped_counter != nullptr && dropped > 0) dropped_counter->inc(dropped);
  return delivered;
}

std::size_t PubSubBroker::subscriber_count() const {
  const core::sync::LockGuard lock(mu_);
  return subscribers_.size();
}

void PubSubBroker::set_registry(obs::Registry* registry) {
  const core::sync::LockGuard lock(mu_);
  registry_ = registry;
  if (registry_ == nullptr) {
    published_counter_ = nullptr;
    delivered_counter_ = nullptr;
    dropped_counter_ = nullptr;
  } else {
    published_counter_ = &registry_->counter("pubsub_published");
    delivered_counter_ = &registry_->counter("pubsub_delivered");
    dropped_counter_ = &registry_->counter("pubsub_dropped");
  }
  if (registry_ != nullptr) {
    for (Subscription* sub : subscribers_) {
      if (!sub->metric_id_.empty()) continue;
      sub->metric_id_ = std::to_string(next_sub_id_++);
      Subscription* raw = sub;
      registry_->gauge_fn("pubsub_queue_depth",
                          {{"topic", raw->prefix_}, {"sub", raw->metric_id_}},
                          [raw] { return static_cast<double>(raw->queue_.size()); });
    }
  }
}

void PubSubBroker::unsubscribe(Subscription* sub) {
  const core::sync::LockGuard lock(mu_);
  if (registry_ != nullptr && !sub->metric_id_.empty()) {
    registry_->remove_gauge_fn("pubsub_queue_depth",
                               {{"topic", sub->prefix_}, {"sub", sub->metric_id_}});
  }
  for (auto it = subscribers_.begin(); it != subscribers_.end(); ++it) {
    if (*it == sub) {
      subscribers_.erase(it);
      return;
    }
  }
}

}  // namespace lms::net
