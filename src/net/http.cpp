#include "lms/net/http.hpp"

#include "lms/util/strings.hpp"

namespace lms::net {

void HeaderMap::set(std::string_view name, std::string_view value) {
  for (auto& [k, v] : items_) {
    if (util::iequals(k, name)) {
      v = std::string(value);
      return;
    }
  }
  items_.emplace_back(std::string(name), std::string(value));
}

std::optional<std::string> HeaderMap::get(std::string_view name) const {
  for (const auto& [k, v] : items_) {
    if (util::iequals(k, name)) return v;
  }
  return std::nullopt;
}

std::string HeaderMap::get_or(std::string_view name, std::string_view fallback) const {
  const auto v = get(name);
  return v ? *v : std::string(fallback);
}

bool HeaderMap::contains(std::string_view name) const { return get(name).has_value(); }

QueryParams QueryParams::parse(std::string_view query) {
  QueryParams out;
  if (query.empty()) return out;
  for (const auto& pair : util::split(query, '&')) {
    if (pair.empty()) continue;
    const auto [k, v] = util::split_once(pair, '=');
    out.items_.emplace_back(util::url_decode(k), util::url_decode(v));
  }
  return out;
}

void QueryParams::set(std::string_view key, std::string_view value) {
  for (auto& [k, v] : items_) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  items_.emplace_back(std::string(key), std::string(value));
}

std::optional<std::string> QueryParams::get(std::string_view key) const {
  for (const auto& [k, v] : items_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::string QueryParams::get_or(std::string_view key, std::string_view fallback) const {
  const auto v = get(key);
  return v ? *v : std::string(fallback);
}

bool QueryParams::contains(std::string_view key) const { return get(key).has_value(); }

std::string QueryParams::encode() const {
  std::string out;
  for (const auto& [k, v] : items_) {
    if (!out.empty()) out.push_back('&');
    out += util::url_encode(k);
    out.push_back('=');
    out += util::url_encode(v);
  }
  return out;
}

HttpRequest HttpRequest::post(std::string_view path, std::string body,
                              std::string_view content_type) {
  HttpRequest req;
  req.method = "POST";
  const auto [p, q] = util::split_once(path, '?');
  req.path = std::string(p);
  req.query = QueryParams::parse(q);
  req.body = std::move(body);
  req.headers.set("Content-Type", content_type);
  return req;
}

HttpRequest HttpRequest::get(std::string_view path) {
  HttpRequest req;
  req.method = "GET";
  const auto [p, q] = util::split_once(path, '?');
  req.path = std::string(p);
  req.query = QueryParams::parse(q);
  return req;
}

std::string HttpRequest::serialize() const {
  std::string target = path.empty() ? "/" : path;
  const std::string qs = query.encode();
  if (!qs.empty()) target += "?" + qs;
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  bool has_length = false;
  for (const auto& [k, v] : headers.items()) {
    if (util::iequals(k, "Content-Length")) has_length = true;
    out += k + ": " + v + "\r\n";
  }
  if (!has_length) out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "\r\n";
  out += body;
  return out;
}

HttpResponse HttpResponse::text(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  r.headers.set("Content-Type", "text/plain; charset=utf-8");
  return r;
}

HttpResponse HttpResponse::json(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  r.headers.set("Content-Type", "application/json");
  return r;
}

std::string HttpResponse::serialize() const {
  std::string out =
      "HTTP/1.1 " + std::to_string(status) + " " + std::string(status_reason(status)) + "\r\n";
  bool has_length = false;
  for (const auto& [k, v] : headers.items()) {
    if (util::iequals(k, "Content-Length")) has_length = true;
    out += k + ": " + v + "\r\n";
  }
  if (!has_length) out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "\r\n";
  out += body;
  return out;
}

std::string_view status_reason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 204:
      return "No Content";
    case 301:
      return "Moved Permanently";
    case 400:
      return "Bad Request";
    case 401:
      return "Unauthorized";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

namespace {

struct HeadBlock {
  std::string start_line;
  HeaderMap headers;
  std::size_t body_offset = 0;
  std::size_t body_length = 0;
  std::size_t total = 0;
};

util::Result<HeadBlock> parse_head(std::string_view data) {
  const std::size_t head_end = data.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    return util::Result<HeadBlock>::error("incomplete headers");
  }
  HeadBlock out;
  out.body_offset = head_end + 4;
  const std::string_view head = data.substr(0, head_end);
  bool first = true;
  for (const auto& line : util::split(head, '\n')) {
    std::string_view l = line;
    if (!l.empty() && l.back() == '\r') l.remove_suffix(1);
    if (first) {
      out.start_line = std::string(l);
      first = false;
      continue;
    }
    const auto [name, value] = util::split_once(l, ':');
    out.headers.set(util::trim(name), util::trim(value));
  }
  const auto len = out.headers.get("Content-Length");
  if (len) {
    const auto n = util::parse_int64(*len);
    if (!n || *n < 0) return util::Result<HeadBlock>::error("bad Content-Length");
    out.body_length = static_cast<std::size_t>(*n);
  }
  out.total = out.body_offset + out.body_length;
  if (data.size() < out.total) {
    return util::Result<HeadBlock>::error("incomplete body");
  }
  return out;
}

}  // namespace

util::Result<HttpRequest> parse_request(std::string_view data, std::size_t* consumed) {
  auto head = parse_head(data);
  if (!head.ok()) return util::Result<HttpRequest>::error(head.message());
  const auto parts = util::split(head->start_line, ' ');
  if (parts.size() < 3) {
    return util::Result<HttpRequest>::error("malformed request line '" + head->start_line + "'");
  }
  HttpRequest req;
  req.method = parts[0];
  const auto [p, q] = util::split_once(parts[1], '?');
  req.path = util::url_decode(p);
  req.query = QueryParams::parse(q);
  req.headers = std::move(head->headers);
  req.body = std::string(data.substr(head->body_offset, head->body_length));
  if (consumed != nullptr) *consumed = head->total;
  return req;
}

util::Result<HttpResponse> parse_response(std::string_view data, std::size_t* consumed) {
  auto head = parse_head(data);
  if (!head.ok()) return util::Result<HttpResponse>::error(head.message());
  const auto parts = util::split(head->start_line, ' ');
  if (parts.size() < 2 || !util::starts_with(parts[0], "HTTP/")) {
    return util::Result<HttpResponse>::error("malformed status line '" + head->start_line + "'");
  }
  const auto status = util::parse_int64(parts[1]);
  if (!status) return util::Result<HttpResponse>::error("bad status code");
  HttpResponse resp;
  resp.status = static_cast<int>(*status);
  resp.headers = std::move(head->headers);
  resp.body = std::string(data.substr(head->body_offset, head->body_length));
  if (consumed != nullptr) *consumed = head->total;
  return resp;
}

util::Result<Url> Url::parse(std::string_view url) {
  Url out;
  std::string_view rest = url;
  const std::size_t scheme_end = rest.find("://");
  if (scheme_end != std::string_view::npos) {
    out.scheme = std::string(rest.substr(0, scheme_end));
    rest = rest.substr(scheme_end + 3);
  }
  const std::size_t path_start = rest.find('/');
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  std::string_view path_query =
      path_start == std::string_view::npos ? std::string_view("/") : rest.substr(path_start);
  const auto [host, port_sv] = util::split_once(authority, ':');
  if (host.empty()) return util::Result<Url>::error("url '" + std::string(url) + "': no host");
  out.host = std::string(host);
  if (!port_sv.empty()) {
    const auto port = util::parse_int64(port_sv);
    if (!port || *port <= 0 || *port > 65535) {
      return util::Result<Url>::error("url '" + std::string(url) + "': bad port");
    }
    out.port = static_cast<int>(*port);
  } else if (out.scheme == "https") {
    out.port = 443;
  }
  const auto [p, q] = util::split_once(path_query, '?');
  out.path = std::string(p);
  out.query = std::string(q);
  return out;
}

std::string Url::target() const {
  std::string t = path.empty() ? "/" : path;
  if (!query.empty()) t += "?" + query;
  return t;
}

}  // namespace lms::net
