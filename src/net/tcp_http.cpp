#include "lms/net/tcp_http.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "lms/obs/metrics.hpp"
#include "lms/obs/trace.hpp"
#include "lms/util/logging.hpp"
#include "lms/util/strings.hpp"

namespace lms::net {

namespace {

obs::Registry& resolve_registry(obs::Registry* registry) {
  return registry != nullptr ? *registry : obs::Registry::global();
}

std::string status_class(int status) {
  if (status <= 0) return "error";
  return std::to_string(status / 100) + "xx";
}

void set_timeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR)) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpHttpServer::TcpHttpServer(HttpHandler handler) : TcpHttpServer(std::move(handler), Options()) {}

TcpHttpServer::TcpHttpServer(HttpHandler handler, Options options)
    : handler_(std::move(handler)), options_(std::move(options)) {}

TcpHttpServer::~TcpHttpServer() { stop(); }

util::Result<int> TcpHttpServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::Result<int>::error(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Result<int>::error("bad bind address '" + options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Result<int>::error("bind(): " + err);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Result<int>::error("listen(): " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return port_;
}

void TcpHttpServer::stop() {
  if (!running_.exchange(false)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    const core::sync::LockGuard lock(workers_mu_);
    workers.swap(workers_);
  }
  for (auto& t : workers) {
    if (t.joinable()) t.join();
  }
}

std::string TcpHttpServer::url() const {
  return "http://" + options_.bind_address + ":" + std::to_string(port_);
}

void TcpHttpServer::accept_loop() {
  while (running_.load()) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) return;
    pollfd pfd{listen_fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 100);
    if (pr <= 0) continue;
    // Busy = accept + dispatch; the poll wait above counts as idle.
    const core::runtime::BusyScope busy_scope(accept_loop_stats_);
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) return;
      continue;
    }
    if (active_connections_.load() >= options_.max_connections) {
      const HttpResponse busy = HttpResponse::text(503, "too many connections");
      send_all(fd, busy.serialize());
      ::close(fd);
      continue;
    }
    active_connections_.fetch_add(1);
    const core::sync::LockGuard lock(workers_mu_);
    // Reap finished workers opportunistically to bound the vector.
    if (workers_.size() > 2 * options_.max_connections) {
      for (auto& t : workers_) {
        if (t.joinable()) t.join();
      }
      workers_.clear();
    }
    workers_.emplace_back([this, fd] {
      serve_connection(fd);
      active_connections_.fetch_sub(1);
    });
  }
}

void TcpHttpServer::serve_connection(int fd) {
  set_timeout(fd, 5000);
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  std::string buffer;
  char chunk[16384];
  while (running_.load()) {
    // Try to parse a complete request from what we have.
    std::size_t consumed = 0;
    auto req = parse_request(buffer, &consumed);
    if (req.ok()) {
      buffer.erase(0, consumed);
      HttpResponse resp;
      const util::TimeNs t0 = util::monotonic_now_ns();
      {
        // Join the caller's trace (X-LMS-Trace) for the handler's duration
        // and time the request into the registry, labeled by route.
        obs::TraceContext remote_ctx;
        if (const auto header = req->headers.get(obs::kTraceHeader)) {
          if (const auto parsed = obs::parse_trace_header(*header)) remote_ctx = *parsed;
        }
        const obs::ScopedTraceContext adopt(remote_ctx);
        obs::Span span("http.server " + req->method + " " + req->path, "net");
        try {
          resp = handler_(*req);
        } catch (const std::exception& e) {
          resp = HttpResponse::text(500, std::string("handler error: ") + e.what());
        }
        span.set_ok(resp.status < 500);
      }
      obs::Registry& reg = resolve_registry(options_.registry);
      const obs::Labels route{{"route", req->path}, {"transport", "tcp"}};
      reg.counter("http_server_requests",
                  {{"route", req->path}, {"transport", "tcp"}, {"status", status_class(resp.status)}})
          .inc();
      reg.histogram("http_server_request_ns", route).record_since(t0);
      reg.counter("http_server_request_bytes", route).inc(req->body.size());
      reg.counter("http_server_response_bytes", route).inc(resp.body.size());
      const bool close_conn =
          util::iequals(req->headers.get_or("Connection", "keep-alive"), "close");
      resp.headers.set("Connection", close_conn ? "close" : "keep-alive");
      if (!send_all(fd, resp.serialize())) break;
      if (close_conn) break;
      continue;
    }
    if (buffer.size() > options_.max_request_bytes) {
      send_all(fd, HttpResponse::text(413, "request too large").serialize());
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // timeout, close or error
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
}

namespace {

/// The socket part of a client request: connect, send, read one response.
util::Result<HttpResponse> tcp_round_trip(const TcpHttpClient::Options& options, const Url& parsed,
                                          const std::string& url, HttpRequest req) {
  req.headers.set("Host", parsed.host + ":" + std::to_string(parsed.port));
  req.headers.set("Connection", "close");

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(parsed.port);
  if (getaddrinfo(parsed.host.c_str(), port_str.c_str(), &hints, &res) != 0 || res == nullptr) {
    return util::Result<HttpResponse>::error("resolve failed for '" + parsed.host + "'");
  }
  const int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    freeaddrinfo(res);
    return util::Result<HttpResponse>::error(std::string("socket(): ") + std::strerror(errno));
  }
  set_timeout(fd, options.io_timeout_ms);
  const int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  freeaddrinfo(res);
  if (rc != 0) {
    ::close(fd);
    return util::Result<HttpResponse>::error("connect to " + url + ": " + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (!send_all(fd, req.serialize())) {
    ::close(fd);
    return util::Result<HttpResponse>::error("send failed to " + url);
  }
  std::string buffer;
  char chunk[16384];
  while (buffer.size() < options.max_response_bytes) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      ::close(fd);
      return util::Result<HttpResponse>::error("recv failed from " + url + ": " +
                                               std::strerror(errno));
    }
    if (n == 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t consumed = 0;
    auto resp = parse_response(buffer, &consumed);
    if (resp.ok()) {
      ::close(fd);
      return resp;
    }
  }
  ::close(fd);
  std::size_t consumed = 0;
  auto resp = parse_response(buffer, &consumed);
  if (resp.ok()) return resp;
  return util::Result<HttpResponse>::error("malformed response from " + url + ": " +
                                           resp.message());
}

}  // namespace

util::Result<HttpResponse> TcpHttpClient::send(const std::string& url, HttpRequest req) {
  auto parsed = Url::parse(url);
  if (!parsed.ok()) return util::Result<HttpResponse>::error(parsed.message());
  if (parsed->scheme != "http") {
    return util::Result<HttpResponse>::error("TcpHttpClient: unsupported scheme '" +
                                             parsed->scheme + "'");
  }
  apply_url_target(*parsed, req);

  // Client span: the receiving server adopts the propagated context from the
  // X-LMS-Trace header, so both ends of the hop share one trace.
  obs::Span span("http.client " + req.method + " " + req.path, "net");
  if (span.active() && !req.headers.contains(obs::kTraceHeader)) {
    req.headers.set(obs::kTraceHeader, obs::format_trace_header(span.context()));
  }
  const std::string route = req.path;
  const std::size_t request_bytes = req.body.size();
  const util::TimeNs t0 = util::monotonic_now_ns();

  auto result = tcp_round_trip(options_, *parsed, url, std::move(req));

  obs::Registry& reg = resolve_registry(options_.registry);
  const obs::Labels labels{{"route", route}, {"transport", "tcp"}};
  reg.counter("http_client_requests",
              {{"route", route},
               {"transport", "tcp"},
               {"status", result.ok() ? status_class(result->status) : "error"}})
      .inc();
  reg.histogram("http_client_request_ns", labels).record_since(t0);
  reg.counter("http_client_request_bytes", labels).inc(request_bytes);
  if (result.ok()) {
    reg.counter("http_client_response_bytes", labels).inc(result->body.size());
    span.set_ok(result->status < 500);
  } else {
    span.set_ok(false);
    span.set_note(result.message());
  }
  return result;
}

}  // namespace lms::net
