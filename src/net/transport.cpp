#include "lms/net/transport.hpp"

#include "lms/obs/metrics.hpp"
#include "lms/obs/trace.hpp"
#include "lms/util/strings.hpp"

namespace lms::net {

void HttpDispatcher::handle(std::string method, std::string path, HttpHandler handler) {
  routes_.push_back(Route{std::move(method), std::move(path), std::move(handler)});
}

HttpResponse HttpDispatcher::dispatch(const HttpRequest& req) const {
  bool path_matched = false;
  for (const auto& route : routes_) {
    const bool wildcard = util::ends_with(route.path, "/*");
    const bool match =
        wildcard ? util::starts_with(req.path, route.path.substr(0, route.path.size() - 1))
                 : req.path == route.path;
    if (!match) continue;
    path_matched = true;
    if (route.method == req.method || route.method == "*") {
      return route.handler(req);
    }
  }
  if (path_matched) return HttpResponse::text(405, "method not allowed");
  return HttpResponse::not_found();
}

HttpHandler HttpDispatcher::as_handler() const {
  return [this](const HttpRequest& req) { return dispatch(req); };
}

util::Result<HttpResponse> HttpClient::post(const std::string& url, std::string body,
                                            std::string_view content_type) {
  return send(url, HttpRequest::post("/", std::move(body), content_type));
}

util::Result<HttpResponse> HttpClient::get(const std::string& url) {
  return send(url, HttpRequest::get("/"));
}

void InprocNetwork::bind(const std::string& name, HttpHandler handler) {
  const core::sync::LockGuard lock(mu_);
  endpoints_[name] = std::move(handler);
}

void InprocNetwork::unbind(const std::string& name) {
  const core::sync::LockGuard lock(mu_);
  endpoints_.erase(name);
}

bool InprocNetwork::has(const std::string& name) const {
  const core::sync::LockGuard lock(mu_);
  return endpoints_.count(name) > 0;
}

util::Result<HttpResponse> InprocNetwork::request(const std::string& name,
                                                  const HttpRequest& req) const {
  HttpHandler handler;
  {
    const core::sync::LockGuard lock(mu_);
    const auto it = endpoints_.find(name);
    if (it == endpoints_.end()) {
      return util::Result<HttpResponse>::error("inproc endpoint '" + name + "' not bound");
    }
    handler = it->second;
  }
  // Server-side observability, mirroring TcpHttpServer: adopt the caller's
  // trace context and time the handler. Handlers run on the caller's thread,
  // so adopting from the header (not just inheriting the thread-local)
  // exercises the same propagation path as the TCP transport.
  obs::TraceContext remote_ctx;
  if (const auto header = req.headers.get(obs::kTraceHeader)) {
    if (const auto parsed = obs::parse_trace_header(*header)) remote_ctx = *parsed;
  }
  const obs::ScopedTraceContext adopt(remote_ctx);
  obs::Span span("http.server " + req.method + " " + req.path, "net");
  const util::TimeNs t0 = util::monotonic_now_ns();
  util::Result<HttpResponse> result = [&]() -> util::Result<HttpResponse> {
    try {
      return handler(req);
    } catch (const std::exception& e) {
      return HttpResponse::text(500, std::string("handler error: ") + e.what());
    }
  }();
  obs::Registry& reg = registry_ != nullptr ? *registry_ : obs::Registry::global();
  const obs::Labels labels{{"endpoint", name}, {"route", req.path}, {"transport", "inproc"}};
  reg.counter("http_server_requests", labels).inc();
  reg.histogram("http_server_request_ns", labels).record_since(t0);
  span.set_ok(result.ok() && result->status < 500);
  return result;
}

void apply_url_target(const Url& url, HttpRequest& req) {
  if (req.path == "/" || req.path.empty()) {
    req.path = url.path.empty() ? "/" : url.path;
    if (!url.query.empty()) {
      // Merge: URL params first, request params override.
      QueryParams merged = QueryParams::parse(url.query);
      for (const auto& [k, v] : req.query.items()) merged.set(k, v);
      req.query = std::move(merged);
    }
  }
}

util::Result<HttpResponse> InprocHttpClient::send(const std::string& url, HttpRequest req) {
  auto parsed = Url::parse(url);
  if (!parsed.ok()) return util::Result<HttpResponse>::error(parsed.message());
  if (parsed->scheme != "inproc") {
    return util::Result<HttpResponse>::error("InprocHttpClient: unsupported scheme '" +
                                             parsed->scheme + "'");
  }
  apply_url_target(*parsed, req);
  // Client span for the hop; the context travels in the X-LMS-Trace header
  // exactly as over TCP, so recorded traces look the same on both transports.
  obs::Span span("http.client " + req.method + " " + req.path, "net");
  if (span.active() && !req.headers.contains(obs::kTraceHeader)) {
    req.headers.set(obs::kTraceHeader, obs::format_trace_header(span.context()));
  }
  auto result = network_.request(parsed->host, req);
  if (!result.ok()) {
    span.set_ok(false);
    span.set_note(result.message());
  } else {
    span.set_ok(result->status < 500);
  }
  return result;
}

}  // namespace lms::net
