#include "lms/net/transport.hpp"

#include "lms/util/strings.hpp"

namespace lms::net {

void HttpDispatcher::handle(std::string method, std::string path, HttpHandler handler) {
  routes_.push_back(Route{std::move(method), std::move(path), std::move(handler)});
}

HttpResponse HttpDispatcher::dispatch(const HttpRequest& req) const {
  bool path_matched = false;
  for (const auto& route : routes_) {
    const bool wildcard = util::ends_with(route.path, "/*");
    const bool match =
        wildcard ? util::starts_with(req.path, route.path.substr(0, route.path.size() - 1))
                 : req.path == route.path;
    if (!match) continue;
    path_matched = true;
    if (route.method == req.method || route.method == "*") {
      return route.handler(req);
    }
  }
  if (path_matched) return HttpResponse::text(405, "method not allowed");
  return HttpResponse::not_found();
}

HttpHandler HttpDispatcher::as_handler() const {
  return [this](const HttpRequest& req) { return dispatch(req); };
}

util::Result<HttpResponse> HttpClient::post(const std::string& url, std::string body,
                                            std::string_view content_type) {
  return send(url, HttpRequest::post("/", std::move(body), content_type));
}

util::Result<HttpResponse> HttpClient::get(const std::string& url) {
  return send(url, HttpRequest::get("/"));
}

void InprocNetwork::bind(const std::string& name, HttpHandler handler) {
  const std::lock_guard<std::mutex> lock(mu_);
  endpoints_[name] = std::move(handler);
}

void InprocNetwork::unbind(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  endpoints_.erase(name);
}

bool InprocNetwork::has(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return endpoints_.count(name) > 0;
}

util::Result<HttpResponse> InprocNetwork::request(const std::string& name,
                                                  const HttpRequest& req) const {
  HttpHandler handler;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = endpoints_.find(name);
    if (it == endpoints_.end()) {
      return util::Result<HttpResponse>::error("inproc endpoint '" + name + "' not bound");
    }
    handler = it->second;
  }
  try {
    return handler(req);
  } catch (const std::exception& e) {
    return HttpResponse::text(500, std::string("handler error: ") + e.what());
  }
}

void apply_url_target(const Url& url, HttpRequest& req) {
  if (req.path == "/" || req.path.empty()) {
    req.path = url.path.empty() ? "/" : url.path;
    if (!url.query.empty()) {
      // Merge: URL params first, request params override.
      QueryParams merged = QueryParams::parse(url.query);
      for (const auto& [k, v] : req.query.items()) merged.set(k, v);
      req.query = std::move(merged);
    }
  }
}

util::Result<HttpResponse> InprocHttpClient::send(const std::string& url, HttpRequest req) {
  auto parsed = Url::parse(url);
  if (!parsed.ok()) return util::Result<HttpResponse>::error(parsed.message());
  if (parsed->scheme != "inproc") {
    return util::Result<HttpResponse>::error("InprocHttpClient: unsupported scheme '" +
                                             parsed->scheme + "'");
  }
  apply_url_target(*parsed, req);
  return network_.request(parsed->host, req);
}

}  // namespace lms::net
