#include "lms/alert/evaluator.hpp"

#include <cstdio>

#include "lms/obs/trace.hpp"
#include "lms/util/logging.hpp"

namespace lms::alert {

namespace {

std::string fmt_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string aggregator_func(tsdb::Aggregator agg) {
  using tsdb::Aggregator;
  switch (agg) {
    case Aggregator::kSum:
      return "sum";
    case Aggregator::kMin:
      return "min";
    case Aggregator::kMax:
      return "max";
    case Aggregator::kCount:
      return "count";
    case Aggregator::kFirst:
      return "first";
    case Aggregator::kLast:
      return "last";
    case Aggregator::kStddev:
      return "stddev";
    case Aggregator::kMedian:
      return "median";
    case Aggregator::kSpread:
      return "spread";
    default:
      return "mean";
  }
}

std::string instance_key(std::string_view rule, const std::vector<Tag>& labels) {
  std::string key(rule);
  key += '|';
  for (const auto& [k, v] : labels) {
    key += k;
    key += '=';
    key += v;
    key += ',';
  }
  return key;
}

std::string describe_labels(const std::vector<Tag>& labels) {
  if (labels.empty()) return "";
  std::string out = " {";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=" + labels[i].second;
  }
  out += "}";
  return out;
}

/// Last row's value in result column `col` (numeric), or nullopt.
std::optional<double> last_value(const tsdb::ResultSeries& series, std::size_t col) {
  for (auto it = series.values.rbegin(); it != series.values.rend(); ++it) {
    if (col >= it->size()) continue;
    const lineproto::FieldValue& cell = (*it)[col];
    if (tsdb::is_null_cell(cell) || !cell.is_numeric()) continue;
    return cell.as_double();
  }
  return std::nullopt;
}

}  // namespace

void LogSink::notify(const AlertEvent& event) {
  if (event.to == AlertState::kFiring) {
    LMS_WARN("alert") << event.rule << describe_labels(event.labels)
                      << " firing: " << event.message;
  } else {
    LMS_INFO("alert") << event.rule << describe_labels(event.labels) << " "
                      << event.transition_name() << ": " << event.message;
  }
}

WebhookSink::WebhookSink(net::HttpClient& client, std::string url)
    : client_(client), url_(std::move(url)) {}

void WebhookSink::notify(const AlertEvent& event) {
  auto resp = client_.post(url_, event.to_json(), "application/json");
  if (resp.ok() && resp->ok()) {
    ++delivered_;
  } else {
    ++failed_;
    LMS_WARN("alert") << "webhook delivery to " << url_ << " failed: "
                      << (resp.ok() ? "HTTP " + std::to_string(resp->status)
                                    : resp.message());
  }
}

PubSubSink::PubSubSink(net::PubSubBroker& broker, std::string topic)
    : broker_(broker), topic_(std::move(topic)) {}

void PubSubSink::notify(const AlertEvent& event) {
  broker_.publish(topic_, event.to_json());
}

Evaluator::Evaluator(tsdb::Storage& storage, Options options)
    : storage_(storage), options_(std::move(options)), engine_(storage) {
  deadman_rule_.name = std::string(kDeadmanRule);
  deadman_rule_.kind = ConditionKind::kAbsence;
  deadman_rule_.window = options_.deadman_window;
  deadman_rule_.for_duration = 0;  // a dead host must fire within one interval
  deadman_rule_.keep_firing_for = 0;
  deadman_rule_.severity = options_.deadman_severity;
  if (options_.registry != nullptr) {
    evaluations_c_ = &options_.registry->counter("alert_evaluations");
    transitions_c_ = &options_.registry->counter("alert_transitions");
    eval_ns_ = &options_.registry->histogram("alert_eval_ns");
    options_.registry->gauge_fn("alert_firing", {},
                                [this] { return static_cast<double>(firing_count()); });
    options_.registry->gauge_fn("alert_rules", {}, [this] {
      return static_cast<double>(rules_.size() + (options_.deadman_window > 0 ? 1 : 0));
    });
  }
}

Evaluator::~Evaluator() {
  detach();
  if (options_.registry != nullptr) {
    options_.registry->remove_gauge_fn("alert_firing");
    options_.registry->remove_gauge_fn("alert_rules");
  }
}

void Evaluator::add(AlertRule rule) { rules_.push_back(std::move(rule)); }

void Evaluator::on_attach(core::TaskScheduler& sched) {
  const util::TimeNs interval =
      options_.eval_interval > 0 ? options_.eval_interval : util::kNanosPerSecond;
  const util::Clock* clock =
      options_.clock != nullptr ? options_.clock : &util::WallClock::instance();
  task_ = sched.submit_periodic("alert.evaluator", interval,
                                [this, clock] { run(clock->now()); });
}

void Evaluator::on_detach() { task_.cancel(); }

NotifierSink& Evaluator::add_sink(std::unique_ptr<NotifierSink> sink) {
  sinks_.push_back(std::move(sink));
  return *sinks_.back();
}

void Evaluator::register_host(const std::string& hostname) {
  const core::sync::LockGuard lock(mu_);
  hosts_.emplace(hostname, 0);  // first_seen stamped lazily on the next sweep
}

std::string Evaluator::build_query(const AlertRule& rule, util::TimeNs now) const {
  std::string expr;
  switch (rule.kind) {
    case ConditionKind::kThreshold:
      expr = aggregator_func(rule.agg) + "(" + rule.field + ")";
      break;
    case ConditionKind::kAbsence:
      expr = "count(" + rule.field + ")";
      break;
    case ConditionKind::kRateOfChange:
      expr = "first(" + rule.field + "), last(" + rule.field + ")";
      break;
  }
  std::string q = "SELECT " + expr + " FROM " + rule.measurement + " WHERE ";
  for (const auto& [k, v] : rule.tag_filters) {
    q += k + "='" + v + "' AND ";
  }
  q += "time >= " + std::to_string(now - rule.window);
  if (!rule.group_by_tags.empty()) {
    q += " GROUP BY ";
    for (std::size_t i = 0; i < rule.group_by_tags.size(); ++i) {
      if (i > 0) q += ", ";
      q += rule.group_by_tags[i];
    }
  }
  return q;
}

AlertInstance& Evaluator::instance_for(const AlertRule& rule,
                                       const std::vector<Tag>& labels) {
  const std::string key = instance_key(rule.name, labels);
  auto it = states_.find(key);
  if (it == states_.end()) {
    AlertInstance inst;
    inst.rule = rule.name;
    inst.labels = labels;
    it = states_.emplace(key, std::move(inst)).first;
  }
  return it->second;
}

void Evaluator::evaluate_rule(const AlertRule& rule, util::TimeNs now,
                              std::vector<AlertEvent>& events) {
  const std::string q = rule.query.empty() ? build_query(rule, now) : rule.query;
  auto result = engine_.query(options_.database, q, now);

  // (labels key -> value) of every series the query produced. A failed
  // query (database not created yet, measurement unknown) is simply "no
  // data": threshold/rate rules stay clear, absence rules breach.
  struct Present {
    std::vector<Tag> labels;
    std::optional<double> value;
  };
  std::map<std::string, Present> present;
  if (result.ok()) {
    for (const tsdb::ResultSeries& series : result->series) {
      Present p;
      p.labels = series.tags;
      if (rule.kind == ConditionKind::kRateOfChange && rule.query.empty()) {
        // Columns: time, first, last.
        const std::optional<double> first = last_value(series, 1);
        const std::optional<double> last = last_value(series, 2);
        if (first && last) {
          const double secs =
              static_cast<double>(rule.window) / static_cast<double>(util::kNanosPerSecond);
          p.value = secs > 0 ? (*last - *first) / secs : 0.0;
        }
      } else {
        p.value = last_value(series, 1);
      }
      present.emplace(instance_key(rule.name, series.tags), std::move(p));
    }
  }

  // Universe: every series present now plus every instance this rule has
  // seen before (so clears and grouped absences are evaluated too). An
  // ungrouped absence rule always has its one (label-less) instance.
  std::set<std::string> universe;
  for (const auto& [key, _] : present) universe.insert(key);
  const std::string prefix = rule.name + "|";
  for (const auto& [key, _] : states_) {
    if (key.compare(0, prefix.size(), prefix) == 0) universe.insert(key);
  }
  if (rule.kind == ConditionKind::kAbsence && rule.group_by_tags.empty()) {
    universe.insert(instance_key(rule.name, {}));
  }

  for (const std::string& key : universe) {
    const auto pit = present.find(key);
    const bool has_data = pit != present.end() && pit->second.value.has_value();
    const std::vector<Tag> labels =
        pit != present.end() ? pit->second.labels
                             : (states_.count(key) > 0 ? states_[key].labels
                                                       : std::vector<Tag>{});
    AlertInstance& inst = instance_for(rule, labels);

    bool breach = false;
    double value = 0;
    std::string message;
    switch (rule.kind) {
      case ConditionKind::kAbsence: {
        breach = !has_data || (pit->second.value.has_value() && *pit->second.value <= 0);
        value = has_data ? *pit->second.value : 0;
        message = breach
                      ? "no samples of " + rule.measurement + " in the last " +
                            util::format_duration(rule.window)
                      : rule.measurement + " reporting again";
        break;
      }
      case ConditionKind::kThreshold:
      case ConditionKind::kRateOfChange: {
        if (!has_data) {
          breach = false;  // no data is not a threshold breach
          message = "no data";
          break;
        }
        value = *pit->second.value;
        breach = compare(rule.cmp, value, rule.threshold);
        const std::string what =
            rule.kind == ConditionKind::kRateOfChange
                ? "rate(" + rule.field + ")"
                : aggregator_func(rule.agg) + "(" + rule.field + ")";
        message = what + " of " + rule.measurement + " = " + fmt_num(value) +
                  (breach ? std::string(" ") + std::string(comparison_symbol(rule.cmp)) +
                                " " + fmt_num(rule.threshold)
                          : " back within " + fmt_num(rule.threshold));
        break;
      }
    }
    if (auto event = step_instance(rule, inst, breach, value, std::move(message), now)) {
      events.push_back(std::move(*event));
    }
  }
}

util::TimeNs Evaluator::last_write_in(const tsdb::Database& db,
                                      const std::string& host) const {
  util::TimeNs last = 0;
  std::vector<std::string> measurements;
  if (!options_.deadman_measurement.empty()) {
    measurements.push_back(options_.deadman_measurement);
  } else {
    measurements = db.measurements();
  }
  const std::vector<Tag> want = {{"hostname", host}};
  for (const std::string& m : measurements) {
    // A deadman transition is itself tagged with the hostname; scanning it
    // would let a "host silent" event mask the silence it reports.
    if (m == options_.alerts_measurement) continue;
    for (const tsdb::Series* series : db.series_matching(m, want)) {
      for (const auto& [field, column] : series->columns) {
        if (!column.empty() && column.times().back() > last) {
          last = column.times().back();
        }
      }
    }
  }
  return last;
}

void Evaluator::evaluate_deadman(util::TimeNs now, std::vector<AlertEvent>& events) {
  // Learn new hosts from the database so unannounced collectors are watched
  // too (every enriched point carries a hostname tag).
  if (options_.deadman_autodiscover) {
    if (const tsdb::ReadSnapshot snap = storage_.snapshot(options_.database)) {
      std::vector<std::string> measurements;
      if (!options_.deadman_measurement.empty()) {
        measurements.push_back(options_.deadman_measurement);
      } else {
        measurements = snap->measurements();
      }
      for (const std::string& m : measurements) {
        if (m == options_.alerts_measurement) continue;
        for (const std::string& host : snap->tag_values(m, "hostname")) {
          hosts_.emplace(host, now);
        }
      }
    }
  }

  for (auto& [host, first_seen] : hosts_) {
    if (first_seen == 0) first_seen = now;  // registered before any sweep
    util::TimeNs last = 0;
    if (const tsdb::ReadSnapshot snap = storage_.snapshot(options_.database)) {
      last = last_write_in(*snap, host);
    }
    const util::TimeNs age = now - (last > 0 ? last : first_seen);
    const bool breach = age > options_.deadman_window;
    const double age_s =
        static_cast<double>(age) / static_cast<double>(util::kNanosPerSecond);
    std::string message;
    if (breach) {
      message = last > 0 ? "host " + host + " silent for " + util::format_duration(age)
                         : "host " + host + " never reported";
    } else {
      message = "host " + host + " reporting again";
    }
    AlertInstance& inst = instance_for(deadman_rule_, {{"hostname", host}});
    if (auto event =
            step_instance(deadman_rule_, inst, breach, age_s, std::move(message), now)) {
      events.push_back(std::move(*event));
    }
  }
}

std::size_t Evaluator::run(util::TimeNs now) {
  obs::Span span("alert.evaluate", "alert");
  const util::TimeNs t0 = util::monotonic_now_ns();
  std::vector<AlertEvent> events;
  {
    const core::sync::LockGuard lock(mu_);
    for (const AlertRule& rule : rules_) {
      evaluate_rule(rule, now, events);
    }
    if (options_.deadman_window > 0) {
      deadman_rule_.window = options_.deadman_window;
      evaluate_deadman(now, events);
    }
    ++evaluations_;
    transitions_ += events.size();
  }
  if (evaluations_c_ != nullptr) evaluations_c_->inc();
  if (transitions_c_ != nullptr) transitions_c_->inc(events.size());

  if (!events.empty()) {
    std::vector<lineproto::Point> points;
    points.reserve(events.size());
    for (const AlertEvent& event : events) {
      points.push_back(event.to_point(options_.alerts_measurement));
    }
    storage_.write(options_.database, points, now);
    for (const auto& sink : sinks_) {
      for (const AlertEvent& event : events) {
        sink->notify(event);
      }
    }
  }
  if (eval_ns_ != nullptr) eval_ns_->record_since(t0);
  return events.size();
}

std::vector<AlertInstance> Evaluator::instances() const {
  const core::sync::LockGuard lock(mu_);
  std::vector<AlertInstance> out;
  out.reserve(states_.size());
  for (const auto& [_, inst] : states_) out.push_back(inst);
  return out;
}

std::size_t Evaluator::firing_count() const {
  const core::sync::LockGuard lock(mu_);
  std::size_t n = 0;
  for (const auto& [_, inst] : states_) {
    if (inst.state == AlertState::kFiring) ++n;
  }
  return n;
}

}  // namespace lms::alert
