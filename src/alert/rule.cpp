#include "lms/alert/rule.hpp"

#include "lms/json/json.hpp"

namespace lms::alert {

std::string_view condition_kind_name(ConditionKind kind) {
  switch (kind) {
    case ConditionKind::kThreshold:
      return "threshold";
    case ConditionKind::kAbsence:
      return "absence";
    case ConditionKind::kRateOfChange:
      return "rate_of_change";
  }
  return "?";
}

std::string_view comparison_symbol(Comparison cmp) {
  switch (cmp) {
    case Comparison::kAbove:
      return ">";
    case Comparison::kAboveEq:
      return ">=";
    case Comparison::kBelow:
      return "<";
    case Comparison::kBelowEq:
      return "<=";
  }
  return "?";
}

bool compare(Comparison cmp, double value, double threshold) {
  switch (cmp) {
    case Comparison::kAbove:
      return value > threshold;
    case Comparison::kAboveEq:
      return value >= threshold;
    case Comparison::kBelow:
      return value < threshold;
    case Comparison::kBelowEq:
      return value <= threshold;
  }
  return false;
}

std::string_view alert_state_name(AlertState s) {
  switch (s) {
    case AlertState::kInactive:
      return "inactive";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
  }
  return "?";
}

std::string_view AlertEvent::transition_name() const {
  if (to == AlertState::kFiring) return "firing";
  if (to == AlertState::kPending) return "pending";
  return "resolved";
}

std::string AlertEvent::to_json() const {
  json::Object o;
  o["rule"] = rule;
  o["state"] = std::string(transition_name());
  o["prev_state"] = std::string(alert_state_name(from));
  o["severity"] = severity;
  o["value"] = value;
  o["message"] = message;
  o["time"] = static_cast<std::int64_t>(time);
  json::Object lbl;
  for (const auto& [k, v] : labels) lbl[k] = v;
  o["labels"] = std::move(lbl);
  return json::Value(std::move(o)).dump();
}

lineproto::Point AlertEvent::to_point(std::string_view measurement) const {
  lineproto::Point p;
  p.measurement = std::string(measurement);
  p.set_tag("rule", rule);
  p.set_tag("state", std::string(transition_name()));
  p.set_tag("severity", severity);
  for (const auto& [k, v] : labels) p.set_tag(k, v);
  p.add_field("value", value);
  p.add_field("text", message);
  p.timestamp = time;
  p.normalize();
  return p;
}

std::optional<AlertEvent> step_instance(const AlertRule& rule, AlertInstance& inst,
                                        bool breach, double value, std::string message,
                                        TimeNs now) {
  const AlertState prev = inst.state;
  inst.value = value;
  if (breach) {
    if (inst.state == AlertState::kInactive) {
      inst.breach_start = now;
      inst.state = rule.for_duration > 0 ? AlertState::kPending : AlertState::kFiring;
    } else if (inst.state == AlertState::kPending &&
               now - inst.breach_start >= rule.for_duration) {
      inst.state = AlertState::kFiring;
    }
    inst.last_breach = now;
  } else {
    if (inst.state == AlertState::kPending) {
      inst.state = AlertState::kInactive;
    } else if (inst.state == AlertState::kFiring &&
               now - inst.last_breach >= rule.keep_firing_for) {
      inst.state = AlertState::kInactive;
    }
  }
  if (inst.state == prev) return std::nullopt;
  inst.since = now;
  // A cancelled pending episode never fired; nothing to notify.
  if (prev == AlertState::kPending && inst.state == AlertState::kInactive) {
    return std::nullopt;
  }
  AlertEvent event;
  event.rule = inst.rule;
  event.labels = inst.labels;
  event.from = prev;
  event.to = inst.state;
  event.value = value;
  event.severity = rule.severity;
  event.message = std::move(message);
  event.time = now;
  return event;
}

}  // namespace lms::alert
