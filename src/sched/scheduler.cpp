#include "lms/sched/scheduler.hpp"

#include <algorithm>

#include "lms/json/json.hpp"
#include "lms/util/logging.hpp"

namespace lms::sched {

std::string_view job_state_name(JobState s) {
  switch (s) {
    case JobState::kPending:
      return "pending";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kTimeout:
      return "timeout";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

Scheduler::Scheduler(std::vector<std::string> node_names)
    : node_names_(std::move(node_names)), free_nodes_(node_names_.begin(), node_names_.end()) {}

int Scheduler::submit(JobSpec spec, util::TimeNs actual_duration, util::TimeNs now) {
  Job job;
  job.id = next_id_++;
  job.spec = std::move(spec);
  job.submit_time = now;
  job.actual_duration = actual_duration;
  const int id = job.id;
  jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  return id;
}

bool Scheduler::cancel(int job_id, util::TimeNs now) {
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  Job& job = it->second;
  if (job.state == JobState::kPending) {
    queue_.erase(std::remove(queue_.begin(), queue_.end(), job_id), queue_.end());
    job.state = JobState::kCancelled;
    job.end_time = now;
    return true;
  }
  if (job.state == JobState::kRunning) {
    end_job(job, now, JobState::kCancelled);
    return true;
  }
  return false;
}

void Scheduler::start_job(Job& job, util::TimeNs now) {
  job.state = JobState::kRunning;
  job.start_time = now;
  auto it = free_nodes_.begin();
  for (int i = 0; i < job.spec.nodes && it != free_nodes_.end(); ++i) {
    job.assigned_nodes.push_back(*it);
    it = free_nodes_.erase(it);
  }
  if (on_start_) on_start_(job);
}

void Scheduler::end_job(Job& job, util::TimeNs now, JobState final_state) {
  job.state = final_state;
  job.end_time = now;
  for (const auto& node : job.assigned_nodes) free_nodes_.insert(node);
  if (on_end_) on_end_(job);
}

bool Scheduler::try_start(Job& job, util::TimeNs now) {
  if (static_cast<int>(free_nodes_.size()) < job.spec.nodes) return false;
  start_job(job, now);
  return true;
}

void Scheduler::tick(util::TimeNs now) {
  // 1. Finish running jobs that completed or hit their walltime.
  for (auto& [id, job] : jobs_) {
    if (job.state != JobState::kRunning) continue;
    const util::TimeNs elapsed = now - job.start_time;
    if (elapsed >= job.actual_duration) {
      end_job(job, now, JobState::kCompleted);
    } else if (elapsed >= job.spec.walltime_limit) {
      end_job(job, now, JobState::kTimeout);
    }
  }

  // 2. Order the queue by priority (stable: FCFS within a priority), then
  // start head(s) while they fit.
  std::stable_sort(queue_.begin(), queue_.end(), [this](int a, int b) {
    return jobs_.at(a).spec.priority > jobs_.at(b).spec.priority;
  });
  std::size_t qi = 0;
  while (qi < queue_.size()) {
    Job& head = jobs_.at(queue_[qi]);
    if (!try_start(head, now)) break;
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(qi));
  }
  if (qi >= queue_.size()) return;

  // 3. EASY backfill: the head job cannot start. Compute its shadow time —
  // the earliest instant enough nodes are free, assuming running jobs end at
  // their walltime limit — and let later jobs run ahead only if they fit in
  // the spare nodes and finish (by their walltime) before the shadow time.
  Job& head = jobs_.at(queue_[0]);
  struct Release {
    util::TimeNs at;
    int nodes;
  };
  std::vector<Release> releases;
  for (const auto& [id, job] : jobs_) {
    if (job.state != JobState::kRunning) continue;
    releases.push_back(
        Release{job.start_time + job.spec.walltime_limit, job.spec.nodes});
  }
  std::sort(releases.begin(), releases.end(),
            [](const Release& a, const Release& b) { return a.at < b.at; });
  int available = static_cast<int>(free_nodes_.size());
  util::TimeNs shadow_time = now;
  int shadow_free = available;
  for (const auto& r : releases) {
    shadow_free += r.nodes;
    if (shadow_free >= head.spec.nodes) {
      shadow_time = r.at;
      break;
    }
  }
  // Nodes that will still be spare at shadow time once the head job starts.
  const int extra = shadow_free - head.spec.nodes;

  for (std::size_t i = 1; i < queue_.size();) {
    Job& job = jobs_.at(queue_[i]);
    const bool fits_now = job.spec.nodes <= available;
    const bool ends_before_shadow =
        now + job.spec.walltime_limit <= shadow_time;
    const bool fits_spare = job.spec.nodes <= extra;
    if (fits_now && (ends_before_shadow || fits_spare)) {
      start_job(job, now);
      available -= job.spec.nodes;
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

std::vector<const Job*> Scheduler::pending() const {
  std::vector<const Job*> out;
  for (const int id : queue_) out.push_back(&jobs_.at(id));
  return out;
}

std::vector<const Job*> Scheduler::running() const {
  std::vector<const Job*> out;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kRunning) out.push_back(&job);
  }
  return out;
}

std::vector<const Job*> Scheduler::finished() const {
  std::vector<const Job*> out;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kCompleted || job.state == JobState::kTimeout ||
        job.state == JobState::kCancelled) {
      out.push_back(&job);
    }
  }
  return out;
}

const Job* Scheduler::find(int job_id) const {
  const auto it = jobs_.find(job_id);
  return it != jobs_.end() ? &it->second : nullptr;
}

JobNotifier::JobNotifier(net::HttpClient& client, std::string router_url)
    : client_(client), router_url_(std::move(router_url)) {}

void JobNotifier::attach(Scheduler& scheduler) {
  scheduler.set_on_start([this](const Job& job) {
    if (auto s = notify_start(job); !s.ok()) {
      LMS_WARN("notifier") << "start signal for job " << job.id << " failed: " << s.message();
    }
  });
  scheduler.set_on_end([this](const Job& job) {
    if (auto s = notify_end(job); !s.ok()) {
      LMS_WARN("notifier") << "end signal for job " << job.id << " failed: " << s.message();
    }
  });
}

util::Status JobNotifier::notify_start(const Job& job) {
  json::Object o;
  o["jobid"] = job.job_id_string();
  o["user"] = job.spec.user;
  json::Array nodes;
  for (const auto& n : job.assigned_nodes) nodes.emplace_back(n);
  o["nodes"] = std::move(nodes);
  json::Object tags;
  tags["jobname"] = job.spec.name;
  for (const auto& [k, v] : job.spec.tags) tags[k] = v;
  o["tags"] = std::move(tags);
  auto resp = client_.post(router_url_ + "/job/start", json::Value(std::move(o)).dump(),
                           "application/json");
  if (!resp.ok() || !resp->ok()) {
    ++failures_;
    return util::Status::error(resp.ok() ? "HTTP " + std::to_string(resp->status)
                                         : resp.message());
  }
  return {};
}

util::Status JobNotifier::notify_end(const Job& job) {
  json::Object o;
  o["jobid"] = job.job_id_string();
  o["state"] = std::string(job_state_name(job.state));
  auto resp = client_.post(router_url_ + "/job/end", json::Value(std::move(o)).dump(),
                           "application/json");
  if (!resp.ok() || !resp->ok()) {
    ++failures_;
    return util::Status::error(resp.ok() ? "HTTP " + std::to_string(resp->status)
                                         : resp.message());
  }
  return {};
}

}  // namespace lms::sched
