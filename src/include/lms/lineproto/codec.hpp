#pragma once

// Serializer/parser for the InfluxDB line protocol.
//
// Grammar (one point per line):
//   measurement[,tagkey=tagval ...] fieldkey=fieldval[,...] [timestamp_ns]
//
// Escaping rules follow the InfluxDB 1.x reference:
//   - measurement: escape ','  ' '
//   - tag keys/values and field keys: escape ','  '='  ' '
//   - string field values are double-quoted; escape '"' and '\'
//   - integers carry an 'i' suffix; booleans are t/T/true/True/f/...
// Lines are separated by '\n'; empty lines and '#' comments are skipped.

#include <string>
#include <string_view>
#include <vector>

#include "lms/lineproto/point.hpp"
#include "lms/util/status.hpp"

namespace lms::lineproto {

/// Serialize one point to a single line (no trailing newline).
std::string serialize(const Point& point);

/// Serialize a batch, newline-separated with trailing newline — the batched
/// transmission format the paper highlights.
std::string serialize_batch(const std::vector<Point>& points);

/// Parse a single line into a point.
util::Result<Point> parse_line(std::string_view line);

/// Parse a newline-separated batch. Fails on the first malformed line,
/// reporting its 1-based index.
util::Result<std::vector<Point>> parse(std::string_view text);

/// Lenient batch parse: malformed lines are collected into `errors` and
/// skipped, valid points are returned. This is the router's ingest mode —
/// one bad producer must not invalidate a whole batch.
std::vector<Point> parse_lenient(std::string_view text, std::vector<std::string>* errors);

}  // namespace lms::lineproto
