#pragma once

// The metric data model of the stack: an InfluxDB line-protocol point.
//
// The paper (§III-A) standardizes on this protocol for every hop between
// components because (a) it separates values from tags, (b) lines can be
// concatenated for batched transmission, and (c) it is human-readable. Every
// producer (collector, libusermetric, HPM monitor, pulling proxy) emits
// Points, the router enriches them, the TSDB ingests them.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "lms/util/clock.hpp"

namespace lms::lineproto {

/// A field value: float, integer, boolean or string. Events (paper §III-C)
/// are points whose value is a string.
class FieldValue {
 public:
  FieldValue() : v_(0.0) {}
  FieldValue(double d) : v_(d) {}                          // NOLINT
  FieldValue(std::int64_t i) : v_(i) {}                    // NOLINT
  FieldValue(int i) : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
  FieldValue(bool b) : v_(b) {}                            // NOLINT
  FieldValue(std::string s) : v_(std::move(s)) {}          // NOLINT
  FieldValue(const char* s) : v_(std::string(s)) {}        // NOLINT

  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_numeric() const { return is_double() || is_int(); }

  double as_double() const;            ///< numeric value (bool -> 0/1, string -> 0)
  std::int64_t as_int() const;         ///< truncating for doubles
  bool as_bool() const;                ///< nonzero / true
  std::string as_string() const;       ///< rendered value (no quoting)

  bool operator==(const FieldValue& other) const { return v_ == other.v_; }

 private:
  std::variant<double, std::int64_t, bool, std::string> v_;
};

using Tag = std::pair<std::string, std::string>;
using Field = std::pair<std::string, FieldValue>;

/// One line-protocol point.
struct Point {
  std::string measurement;
  std::vector<Tag> tags;      // kept sorted by key on normalized points
  std::vector<Field> fields;  // at least one field required by the protocol
  util::TimeNs timestamp = 0;  // 0 = "unset, receiver assigns"

  /// Value of a tag, or empty string.
  std::string_view tag(std::string_view key) const;
  bool has_tag(std::string_view key) const;

  /// Set or overwrite a tag.
  void set_tag(std::string_view key, std::string_view value);

  /// Pointer to a field value, or nullptr.
  const FieldValue* field(std::string_view key) const;

  /// Add a field (no duplicate check).
  void add_field(std::string_view key, FieldValue value);

  /// Sort tags by key (the canonical form used for series identity).
  void normalize();

  /// The hostname tag, the mandatory routing key of the stack (§III-A).
  std::string_view hostname() const { return tag("hostname"); }

  bool operator==(const Point& other) const;
};

/// Convenience constructor for a single-field numeric point.
Point make_point(std::string_view measurement, std::string_view field_key, FieldValue value,
                 util::TimeNs timestamp, std::vector<Tag> tags = {});

}  // namespace lms::lineproto
