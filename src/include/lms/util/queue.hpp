#pragma once

// Bounded thread-safe MPMC queue used between agent threads (collector ->
// sender, router -> pub/sub subscribers). Blocking pop with timeout plus a
// close() for clean shutdown: a closed queue rejects pushes and drains.
//
// Lock rank: Rank::kQueue. The pub/sub broker pushes into subscriber queues
// while holding its own (lower-ranked) mutex, so the queue lock must stay a
// near-leaf: never call out of this class while holding mu_.
//
// Runtime observability: constructing with a name (a string literal or
// other static-lifetime string) registers the queue's depth / watermark /
// blocked-push counters in core::runtime, from where lms::obs exports them
// as lms_runtime_queue_* metrics and in GET /debug/runtime. Unnamed queues
// still count, but are not registered (invisible to snapshots).

#include <chrono>
#include <deque>
#include <optional>

#include "lms/core/runtime.hpp"
#include "lms/core/sync.hpp"
#include "lms/util/clock.hpp"

namespace lms::util {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity, const char* name = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity) {
    stats_.name = name;
    stats_.capacity = capacity_;
    if (name != nullptr) core::runtime::register_queue(&stats_);
  }

  ~BoundedQueue() {
    if (stats_.name != nullptr) core::runtime::unregister_queue(&stats_);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Push; blocks while full. Returns false if the queue is closed.
  bool push(T item) {
    core::sync::UniqueLock lock(mu_);
    if (!closed_ && items_.size() >= capacity_) {
      stats_.blocked_pushes.fetch_add(1, std::memory_order_relaxed);
    }
    while (!closed_ && items_.size() >= capacity_) not_full_.wait(lock);
    if (closed_) return false;
    items_.push_back(std::move(item));
    stats_.on_push(items_.size());
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed (item dropped).
  bool try_push(T item) {
    const core::sync::LockGuard lock(mu_);
    if (closed_ || items_.size() >= capacity_) {
      if (!closed_) stats_.rejected_pushes.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    items_.push_back(std::move(item));
    stats_.on_push(items_.size());
    not_empty_.notify_one();
    return true;
  }

  /// Pop; blocks until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    core::sync::UniqueLock lock(mu_);
    while (!closed_ && items_.empty()) not_empty_.wait(lock);
    return pop_locked();
  }

  /// Pop with a timeout (real time). Returns nullopt on timeout or drained
  /// close.
  std::optional<T> pop_for(TimeNs timeout) {
    core::sync::UniqueLock lock(mu_);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::nanoseconds(timeout);
    while (!closed_ && items_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      not_empty_.wait_for(lock, deadline - now);
    }
    return pop_locked();
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    const core::sync::LockGuard lock(mu_);
    return pop_locked();
  }

  /// Close the queue: pushes fail, pops drain remaining items then return
  /// nullopt.
  void close() {
    const core::sync::LockGuard lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    const core::sync::LockGuard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    const core::sync::LockGuard lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Live counters (always maintained; registered globally only when the
  /// queue was constructed with a name).
  const core::runtime::QueueStats& stats() const { return stats_; }

 private:
  std::optional<T> pop_locked() LMS_REQUIRES(mu_) {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    stats_.on_pop(items_.size());
    not_full_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  mutable core::sync::Mutex mu_{core::sync::Rank::kQueue, "util.queue"};
  core::sync::CondVar not_empty_;
  core::sync::CondVar not_full_;
  std::deque<T> items_ LMS_GUARDED_BY(mu_);
  bool closed_ LMS_GUARDED_BY(mu_) = false;
  core::runtime::QueueStats stats_;
};

}  // namespace lms::util
