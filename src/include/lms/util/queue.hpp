#pragma once

// Bounded thread-safe MPMC queue used between agent threads (collector ->
// sender, router -> pub/sub subscribers). Blocking pop with timeout plus a
// close() for clean shutdown: a closed queue rejects pushes and drains.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "lms/util/clock.hpp"

namespace lms::util {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Push; blocks while full. Returns false if the queue is closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed (item dropped).
  bool try_push(T item) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Pop; blocks until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return pop_locked();
  }

  /// Pop with a timeout (real time). Returns nullopt on timeout or drained
  /// close.
  std::optional<T> pop_for(TimeNs timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, std::chrono::nanoseconds(timeout),
                        [&] { return closed_ || !items_.empty(); });
    return pop_locked();
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Close the queue: pushes fail, pops drain remaining items then return
  /// nullopt.
  void close() {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  std::optional<T> pop_locked() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace lms::util
