#pragma once

// Small string utilities shared across the stack. All functions are pure.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lms::util {

/// Split `s` on `sep`, keeping empty segments.
std::vector<std::string> split(std::string_view s, char sep);

/// Split `s` on `sep`, dropping empty segments and trimming whitespace.
std::vector<std::string> split_trimmed(std::string_view s, char sep);

/// Split into at most two pieces at the first `sep`; second is empty if absent.
std::pair<std::string_view, std::string_view> split_once(std::string_view s, char sep);

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Join the range with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// Parse a whole string as a number; nullopt on any trailing garbage.
std::optional<double> parse_double(std::string_view s);
std::optional<std::int64_t> parse_int64(std::string_view s);

/// Format a double the way the line protocol and JSON layers expect:
/// shortest representation that round-trips, never scientific for integers.
std::string format_double(double v);

/// Percent-decode a URL component ("%2F" -> "/", "+" -> " ").
std::string url_decode(std::string_view s);

/// Percent-encode a URL component.
std::string url_encode(std::string_view s);

/// Very small glob: '*' matches any run of characters, '?' one character.
bool glob_match(std::string_view pattern, std::string_view text);

/// Replace all occurrences of `from` in `s` with `to`.
std::string replace_all(std::string_view s, std::string_view from, std::string_view to);

}  // namespace lms::util
