#pragma once

// Lightweight error handling for the stack's parsing and I/O layers.
//
// Components that cross trust or process boundaries (line protocol parsing,
// HTTP, query language) report recoverable failures as Status/Result values
// instead of exceptions; programming errors still throw.

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace lms::util {

/// Success-or-error result of an operation that yields no value.
class Status {
 public:
  /// Successful status.
  Status() = default;

  /// Failed status carrying a human-readable message.
  static Status error(std::string message) { return Status(std::move(message)); }

  bool ok() const { return !message_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Error message; empty string when ok().
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}
  std::optional<std::string> message_;
};

/// Success-carrying-T or error-carrying-message result.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  static Result error(std::string message) { return Result(Error{std::move(message)}); }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const std::string& message() const {
    static const std::string kEmpty;
    return error_ ? error_->message : kEmpty;
  }

  /// Access the value. Precondition: ok().
  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Move the value out. Precondition: ok().
  T take() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  struct Error {
    std::string message;
  };
  explicit Result(Error e) : error_(std::move(e)) {}
  std::optional<T> value_;
  std::optional<Error> error_;
};

}  // namespace lms::util
