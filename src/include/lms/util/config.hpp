#pragma once

// INI-style configuration used by the deployable components (router,
// collector, dashboard agent). Matches the "simple interface scripts"
// philosophy of the paper: flat [section] key = value files.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lms/util/status.hpp"

namespace lms::util {

class Config {
 public:
  /// Parse from INI text. Lines: "[section]", "key = value", "#"/";" comments.
  static Result<Config> parse(std::string_view text);

  /// True if the section/key pair exists.
  bool has(std::string_view section, std::string_view key) const;

  std::optional<std::string> get(std::string_view section, std::string_view key) const;
  std::string get_or(std::string_view section, std::string_view key,
                     std::string_view fallback) const;
  std::optional<std::int64_t> get_int(std::string_view section, std::string_view key) const;
  std::int64_t get_int_or(std::string_view section, std::string_view key,
                          std::int64_t fallback) const;
  std::optional<double> get_double(std::string_view section, std::string_view key) const;
  double get_double_or(std::string_view section, std::string_view key, double fallback) const;
  std::optional<bool> get_bool(std::string_view section, std::string_view key) const;
  bool get_bool_or(std::string_view section, std::string_view key, bool fallback) const;

  /// Comma-separated list value; empty vector when absent.
  std::vector<std::string> get_list(std::string_view section, std::string_view key) const;

  /// Set or overwrite a value programmatically.
  void set(std::string_view section, std::string_view key, std::string_view value);

  /// All section names, in insertion order.
  std::vector<std::string> sections() const;

  /// All keys within a section, in insertion order.
  std::vector<std::string> keys(std::string_view section) const;

  /// Serialize back to INI text.
  std::string to_string() const;

 private:
  struct Entry {
    std::string key;
    std::string value;
  };
  struct Section {
    std::string name;
    std::vector<Entry> entries;
  };
  const Entry* find(std::string_view section, std::string_view key) const;
  std::vector<Section> sections_;
};

}  // namespace lms::util
