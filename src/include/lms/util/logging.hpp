#pragma once

// Minimal leveled logger. Components log through a per-process registry so
// tests can capture and silence output. Not a substrate of the paper, just
// operational plumbing.

#include <cstdint>
#include <deque>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "lms/core/sync.hpp"

namespace lms::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

std::string_view log_level_name(LogLevel level);

/// Process-wide logging configuration.
class Logger {
 public:
  /// `trace_id` is the active trace of the logging thread (0 = untraced),
  /// resolved through the trace provider at log time.
  using Sink = std::function<void(LogLevel, std::string_view component, std::string_view msg,
                                  std::uint64_t trace_id)>;

  /// Log/trace correlation hook: returns the calling thread's active trace
  /// id, or 0 when untraced. util cannot depend on obs, so the tracing layer
  /// installs this at static-init time (see obs/trace.cpp); a plain function
  /// pointer keeps the lookup lock-free on the log path.
  using TraceIdFn = std::uint64_t (*)();
  static void set_trace_provider(TraceIdFn fn);

  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Replace the output sink. Pass nullptr to restore the default sink,
  /// which writes to stderr as
  ///   <utc-timestamp> mono=<ns> [trace=<id:016x>] [LEVEL] component: message
  /// carrying wall-clock time (for humans correlating with external events),
  /// the monotonic counter (for ordering across clock jumps) and — for lines
  /// emitted inside an active span — the trace id.
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger();
  // Rank::kLogging is the hierarchy leaf: any thread may log while holding
  // any other lock. log() copies the sink out and invokes it unlocked.
  mutable core::sync::Mutex mu_{core::sync::Rank::kLogging, "util.logger"};
  LogLevel level_ LMS_GUARDED_BY(mu_);
  Sink sink_ LMS_GUARDED_BY(mu_);
};

/// Bounded in-memory log sink: keeps the most recent `capacity` records and
/// counts what it had to evict. Useful for tests and for exposing "recent
/// logs" through a diagnostics endpoint without unbounded growth. Install
/// with `Logger::instance().set_sink(ring.sink())`; the ring must outlive
/// the installed sink (restore with `set_sink(nullptr)` before destroying).
class LogRing {
 public:
  struct Entry {
    LogLevel level;
    std::string component;
    std::string message;
    std::uint64_t trace_id = 0;  ///< active trace at log time (0 = untraced)
  };

  explicit LogRing(std::size_t capacity = 256);

  /// A sink forwarding into this ring.
  Logger::Sink sink();

  /// Snapshot of the retained entries, oldest first.
  std::vector<Entry> entries() const;
  /// Retained entries of one trace, oldest first (the /debug/logs?trace=
  /// filter).
  std::vector<Entry> entries_for_trace(std::uint64_t trace_id) const;
  /// Retained entries formatted as "[LEVEL] trace=<id:016x> component:
  /// message" (the trace token is omitted for untraced lines).
  std::vector<std::string> lines() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Records evicted because the ring was full.
  std::uint64_t dropped() const;
  void clear();

 private:
  mutable core::sync::Mutex mu_{core::sync::Rank::kLogging, "util.logring"};
  std::size_t capacity_;
  std::deque<Entry> ring_ LMS_GUARDED_BY(mu_);
  std::uint64_t dropped_ LMS_GUARDED_BY(mu_) = 0;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().log(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace lms::util

#define LMS_LOG(level, component) \
  ::lms::util::detail::LogLine(::lms::util::LogLevel::level, component)
#define LMS_DEBUG(component) LMS_LOG(kDebug, component)
#define LMS_INFO(component) LMS_LOG(kInfo, component)
#define LMS_WARN(component) LMS_LOG(kWarn, component)
#define LMS_ERROR(component) LMS_LOG(kError, component)
