#pragma once

// Minimal leveled logger. Components log through a per-process registry so
// tests can capture and silence output. Not a substrate of the paper, just
// operational plumbing.

#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace lms::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

std::string_view log_level_name(LogLevel level);

/// Process-wide logging configuration.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component, std::string_view msg)>;

  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Replace the output sink (default writes to stderr). Pass nullptr to
  /// restore the default sink.
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger();
  mutable std::mutex mu_;
  LogLevel level_;
  Sink sink_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().log(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace lms::util

#define LMS_LOG(level, component) \
  ::lms::util::detail::LogLine(::lms::util::LogLevel::level, component)
#define LMS_DEBUG(component) LMS_LOG(kDebug, component)
#define LMS_INFO(component) LMS_LOG(kInfo, component)
#define LMS_WARN(component) LMS_LOG(kWarn, component)
#define LMS_ERROR(component) LMS_LOG(kError, component)
