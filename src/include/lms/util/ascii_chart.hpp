#pragma once

// Terminal chart rendering for the figure-regeneration benches: the paper's
// figures are time-series plots, so the benches draw the regenerated series
// as ASCII charts — the "shape" evidence (drop-outs, transients, plateaus)
// is visible directly in the bench output.

#include <string>
#include <vector>

namespace lms::util {

struct AsciiChartOptions {
  int width = 72;    ///< plot columns (samples are resampled to fit)
  int height = 12;   ///< plot rows
  std::string title;
  std::string y_unit;
  /// Optional marker rows: e.g. a threshold line drawn as '-'.
  double threshold = 0.0;
  bool show_threshold = false;
};

/// Render one series as an ASCII chart with a y-axis scale.
std::string ascii_chart(const std::vector<double>& values, const AsciiChartOptions& options);

/// Render several series in one chart; each series uses its label's first
/// character as the plot glyph. All series share the y scale.
std::string ascii_chart_multi(const std::vector<std::string>& labels,
                              const std::vector<std::vector<double>>& series,
                              const AsciiChartOptions& options);

}  // namespace lms::util
