#pragma once

// Deterministic random number generation for the counter simulator and the
// workload models. xoshiro256** seeded via SplitMix64: fast, reproducible
// across platforms (unlike std::normal_distribution, whose output is
// implementation-defined — we implement our own transforms).

#include <cstdint>

namespace lms::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal sample: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// True with probability p.
  bool bernoulli(double p);

  /// Fork a decorrelated child generator (stable for a given label).
  Rng fork(std::uint64_t label) const;

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace lms::util
