#pragma once

// Time handling for the LIKWID Monitoring Stack reproduction.
//
// All timestamps in the stack are int64 nanoseconds since the Unix epoch
// (the native resolution of the InfluxDB line protocol). Components never
// call std::chrono directly; they take a Clock& so that tests and the
// cluster simulator can drive hour-long jobs in milliseconds with a
// SimClock while production-style integration keeps WallClock semantics.

#include <atomic>
#include <cstdint>
#include <string>

namespace lms::util {

/// Nanoseconds since the Unix epoch.
using TimeNs = std::int64_t;

inline constexpr TimeNs kNanosPerMicro = 1'000;
inline constexpr TimeNs kNanosPerMilli = 1'000'000;
inline constexpr TimeNs kNanosPerSecond = 1'000'000'000;
inline constexpr TimeNs kNanosPerMinute = 60 * kNanosPerSecond;
inline constexpr TimeNs kNanosPerHour = 60 * kNanosPerMinute;

/// Convert seconds (double) to nanoseconds, saturating on overflow.
TimeNs seconds_to_ns(double seconds);

/// Convert nanoseconds to seconds as a double.
double ns_to_seconds(TimeNs ns);

/// Render a timestamp as "YYYY-MM-DDTHH:MM:SS.mmmZ" (UTC).
std::string format_utc(TimeNs ns);

/// Render a duration as a compact human string, e.g. "1h02m", "12.5s".
std::string format_duration(TimeNs ns);

/// Abstract time source. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in nanoseconds since the Unix epoch.
  virtual TimeNs now() const = 0;
};

/// Real wall-clock time (CLOCK_REALTIME).
class WallClock final : public Clock {
 public:
  TimeNs now() const override;
  /// Process-wide singleton for call sites that have no injected clock.
  static WallClock& instance();
};

/// Manually advanced clock for deterministic tests and simulation.
///
/// Thread-safe: `advance` and `set` publish with seq_cst so reader threads
/// observe monotonic time.
class SimClock final : public Clock {
 public:
  explicit SimClock(TimeNs start = 0) : now_ns_(start) {}

  TimeNs now() const override { return now_ns_.load(std::memory_order_seq_cst); }

  /// Advance by `delta` nanoseconds; returns the new time.
  TimeNs advance(TimeNs delta) { return now_ns_.fetch_add(delta) + delta; }

  /// Advance by a number of (possibly fractional) seconds.
  TimeNs advance_seconds(double s) { return advance(seconds_to_ns(s)); }

  /// Jump to an absolute time. Must not move backwards.
  void set(TimeNs t);

 private:
  std::atomic<TimeNs> now_ns_;
};

/// Monotonic nanosecond counter for measuring real elapsed time in benches.
TimeNs monotonic_now_ns();

}  // namespace lms::util
