#pragma once

// Minimal XML subset parser, sufficient for the gmond-style XML the pulling
// proxy consumes (paper §III-B): elements, attributes, text, comments and
// declarations. No entities beyond the five predefined ones, no namespaces.

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lms/util/status.hpp"

namespace lms::util {

struct XmlElement {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<XmlElement> children;
  std::string text;  // concatenated character data directly inside this element

  /// First direct child with the given element name, or nullptr.
  const XmlElement* child(std::string_view child_name) const;

  /// All direct children with the given element name.
  std::vector<const XmlElement*> children_named(std::string_view child_name) const;

  /// Attribute value or empty string.
  std::string attr(std::string_view key) const;
};

/// Parse a document; returns the root element.
Result<XmlElement> xml_parse(std::string_view text);

/// Escape text for inclusion in XML character data or attribute values.
std::string xml_escape(std::string_view s);

}  // namespace lms::util
