#pragma once

// Batch scheduler simulator. The paper's stack is deliberately
// scheduler-agnostic (§I): all it needs is a job (de)allocation signal with
// tags. This module provides the scheduler side of that contract: a node
// pool, a submission queue with FCFS + EASY-backfill allocation, walltime
// enforcement, and start/end callbacks that the JobNotifier turns into the
// router's /job/start and /job/end HTTP signals (the prolog/epilog role).

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lms/lineproto/point.hpp"
#include "lms/net/transport.hpp"
#include "lms/util/clock.hpp"

namespace lms::sched {

enum class JobState { kPending, kRunning, kCompleted, kTimeout, kCancelled };

std::string_view job_state_name(JobState s);

struct JobSpec {
  std::string name;
  std::string user;
  int nodes = 1;
  util::TimeNs walltime_limit = util::kNanosPerHour;
  /// Higher runs first; equal priorities keep submit order (FCFS).
  int priority = 0;
  std::vector<lineproto::Tag> tags;  // queue, account, ...
};

struct Job {
  int id = 0;
  JobSpec spec;
  JobState state = JobState::kPending;
  util::TimeNs submit_time = 0;
  util::TimeNs start_time = 0;
  util::TimeNs end_time = 0;
  util::TimeNs actual_duration = 0;  ///< simulation: when the job "finishes"
  std::vector<std::string> assigned_nodes;

  std::string job_id_string() const { return std::to_string(id); }
};

class Scheduler {
 public:
  using JobCallback = std::function<void(const Job&)>;

  explicit Scheduler(std::vector<std::string> node_names);

  /// Submit a job; `actual_duration` is how long it would run unconstrained
  /// (the walltime limit may cut it short). Returns the job id.
  int submit(JobSpec spec, util::TimeNs actual_duration, util::TimeNs now);

  /// Cancel a pending or running job.
  bool cancel(int job_id, util::TimeNs now);

  /// Advance scheduling: finish due jobs, then start queued jobs
  /// (FCFS head + EASY backfill behind it).
  void tick(util::TimeNs now);

  void set_on_start(JobCallback cb) { on_start_ = std::move(cb); }
  void set_on_end(JobCallback cb) { on_end_ = std::move(cb); }

  std::vector<const Job*> pending() const;
  std::vector<const Job*> running() const;
  std::vector<const Job*> finished() const;
  const Job* find(int job_id) const;

  std::size_t free_node_count() const { return free_nodes_.size(); }
  std::size_t node_count() const { return node_names_.size(); }

 private:
  void start_job(Job& job, util::TimeNs now);
  void end_job(Job& job, util::TimeNs now, JobState final_state);
  bool try_start(Job& job, util::TimeNs now);

  std::vector<std::string> node_names_;
  std::set<std::string> free_nodes_;
  std::map<int, Job> jobs_;
  std::vector<int> queue_;  // pending job ids in submit order
  int next_id_ = 1;
  JobCallback on_start_;
  JobCallback on_end_;
};

/// Turns scheduler callbacks into router job signals over HTTP.
class JobNotifier {
 public:
  JobNotifier(net::HttpClient& client, std::string router_url);

  /// Wire both callbacks of a scheduler to this notifier.
  void attach(Scheduler& scheduler);

  util::Status notify_start(const Job& job);
  util::Status notify_end(const Job& job);

  std::uint64_t failures() const { return failures_; }

 private:
  net::HttpClient& client_;
  std::string router_url_;
  std::uint64_t failures_ = 0;
};

}  // namespace lms::sched
