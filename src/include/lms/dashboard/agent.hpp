#pragma once

// The dashboard (Grafana) agent, paper §III-D: generates dashboards out of
// templates, based on the available databases and the metrics in them.
// For every running job it combines the dashboard/row/panel templates,
// discovers application-level metrics the job reported (§IV adds metrics the
// templates cannot know in advance) and prepends the analysis results header
// (Fig. 2). The main administrator view lists all running jobs with
// references to their dashboards.

#include <map>
#include <string>
#include <vector>

#include "lms/analysis/report.hpp"
#include "lms/core/sync.hpp"
#include "lms/core/router.hpp"
#include "lms/dashboard/templates.hpp"
#include "lms/net/health.hpp"
#include "lms/net/transport.hpp"
#include "lms/tsdb/storage.hpp"

namespace lms::dashboard {

class DashboardAgent {
 public:
  struct Options {
    std::string database = "lms";
    std::string datasource = "lms";  ///< name of the Grafana datasource
    /// Database holding the exported lms_traces spans (the waterfall view
    /// reads it directly; usually the same shared TSDB the router feeds).
    std::string trace_database = "lms";
  };

  DashboardAgent(tsdb::Storage& storage, const analysis::JobReporter& reporter,
                 const util::Clock& clock, Options options);

  TemplateStore& templates() { return templates_; }

  /// Generate (and store) the dashboard for one job.
  json::Value generate_job_dashboard(const core::RunningJob& job, util::TimeNs now);

  /// Generate (and store) the admin overview of all running jobs.
  json::Value generate_admin_dashboard(const std::vector<core::RunningJob>& jobs,
                                       util::TimeNs now);

  /// Generate (and store) the per-user view ("live job performance
  /// profiling ... per user"): that user's running jobs, backed by the
  /// user's duplicated database when the router maintains one.
  json::Value generate_user_dashboard(const std::string& user,
                                      const std::vector<core::RunningJob>& jobs,
                                      util::TimeNs now);

  /// Generate (and store, uid "alerts") the alerting view: the lms_alerts
  /// history (per rule and state), currently firing deadman hosts, and the
  /// alert engine's own counters out of lms_internal.
  json::Value generate_alerts_dashboard(util::TimeNs now);

  /// Generate (and store, uid "internals") the self-monitoring view: charts
  /// over the stack's own "lms_internal" measurement written by the obs
  /// self-scrape — ingest rates, write-latency percentiles and queue depths
  /// of the monitoring pipeline itself.
  json::Value generate_internals_dashboard(util::TimeNs now);

  /// Generate (and store, uid "runtime") the runtime-contention view:
  /// charts over the lms_lock_* / lms_runtime_* series the self-scrape
  /// exports — top lock sites by total wait, contention counts, queue
  /// depths/watermarks and background-loop duty cycles.
  json::Value generate_runtime_dashboard(util::TimeNs now);

  /// Refresh dashboards for every running job plus the admin view.
  /// Returns the number of dashboards generated.
  std::size_t refresh(const std::vector<core::RunningJob>& jobs, util::TimeNs now);

  /// Stored dashboard JSON by uid ("job-<id>" or "admin"); nullptr if absent.
  const json::Value* find_dashboard(const std::string& uid) const;
  std::vector<std::string> dashboard_uids() const;

  /// Component health report. `readiness` adds the database check: without
  /// the backing database the agent cannot generate meaningful dashboards.
  net::ComponentHealth health(bool readiness) const;

  /// HTTP façade mimicking the relevant Grafana API surface:
  ///   GET  /api/dashboards/uid/<uid>  -> dashboard JSON
  ///   GET  /api/search                -> [{uid,title}]
  ///   GET  /trace/<id16hex>           -> span waterfall (HTML; ?format=json)
  ///   GET  /regions/<jobid>           -> per-region roofline table (JSON;
  ///                                      ?from=<ns>&to=<ns> bound the range)
  ///   GET  /health, /ready            -> JSON component status
  ///   GET  /metrics                   -> Prometheus text exposition
  ///   GET  /debug/runtime             -> lock/queue/loop/profiler JSON
  ///   GET  /debug/pprof               -> collapsed CPU stacks (?seconds=N)
  ///   GET  /flamegraph                -> HTML flamegraph of the CPU profile
  net::HttpHandler handler();

 private:
  net::HttpResponse handle_trace(const net::HttpRequest& req);
  net::HttpResponse handle_flamegraph(const net::HttpRequest& req);
  net::HttpResponse handle_regions(const net::HttpRequest& req);
  /// Discover application-level metric fields the job reported.
  std::vector<std::string> discover_user_fields(const std::string& job_id) const;
  /// Region names of the job's lms_regions series (profiled jobs only).
  std::vector<std::string> discover_regions(const std::string& job_id) const;

  tsdb::Storage& storage_;
  const analysis::JobReporter& reporter_;
  const util::Clock& clock_;
  Options options_;
  TemplateStore templates_;
  /// Guards the stored-dashboard map only; generation (storage snapshots,
  /// reporter queries) happens before the store step takes it.
  mutable core::sync::Mutex mu_{core::sync::Rank::kDashboard, "dashboard.agent"};
  /// uid -> JSON
  std::map<std::string, json::Value> dashboards_ LMS_GUARDED_BY(mu_);
};

}  // namespace lms::dashboard
