#pragma once

// Dashboard templating (paper §III-D): Grafana is not configured manually —
// an agent generates dashboards from templates plus the metrics actually
// present in the database. Templates are JSON documents (the shape Grafana
// exports) with two extensions:
//   - ${VAR} placeholders substituted from a variable map
//     (JOB_ID, USER, DB, FROM, TO, HOST, ...)
//   - a row object with "repeat": "host" is instantiated once per job host,
//     with ${HOST} bound to the hostname.

#include <map>
#include <string>
#include <vector>

#include "lms/json/json.hpp"
#include "lms/util/status.hpp"

namespace lms::dashboard {

using VarMap = std::map<std::string, std::string>;

/// Substitute ${VAR} placeholders in every string of a JSON document.
/// Unknown variables are left untouched (so nested Grafana syntax survives).
json::Value substitute(const json::Value& tpl, const VarMap& vars);

/// Expand a dashboard template: variable substitution plus per-host row
/// repetition. `hosts` binds ${HOST} for repeated rows.
json::Value expand_dashboard(const json::Value& tpl, const VarMap& vars,
                             const std::vector<std::string>& hosts);

/// Template storage: named JSON templates (dashboard, row and panel level).
class TemplateStore {
 public:
  /// Creates the store preloaded with the built-in templates:
  /// "job_dashboard", "system_row", "likwid_row", "usermetric_row".
  TemplateStore();

  util::Status add(const std::string& name, std::string_view json_text);
  const json::Value* find(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, json::Value> templates_;
};

/// Helper used by templates and the agent: build the InfluxQL query string
/// for a panel target.
std::string panel_query(const std::string& field, const std::string& measurement,
                        const VarMap& tag_filters, const std::string& agg = "mean",
                        const std::string& window = "30s");

}  // namespace lms::dashboard
