#pragma once

// Lightweight request tracing across the stack's HTTP hops.
//
// Every hop of the LMS pipeline is an HTTP request (paper §III), so a write
// crosses collector -> router -> TSDB as a chain of client/server handler
// invocations. A Span is an RAII timed section bound to the calling thread;
// spans nest, and the active (trace id, span id) pair travels to the next
// component in the "X-LMS-Trace: <trace16hex>-<span16hex>" request header,
// which both transports (TCP and in-process) inject on the client side and
// adopt on the server side. Finished spans land in a bounded in-memory
// SpanRecorder queryable per trace — and the TraceExporter (traceexport.hpp)
// drains that ring into the shared TSDB as `lms_traces` points, so traces
// from every process of a deployment can be assembled into one story by
// `GET /trace/<id>` on the TSDB API.
//
// Sampling: the keep/drop decision is made once, at the root span, and
// travels with the context (an unsampled trace propagates a "-u" suffix on
// the header so downstream hops agree). Head sampling is probabilistic and
// config-driven (set_trace_sample_rate); on top of that, tail-biased
// always-keep rules record individual spans of unsampled traces when they
// error (set_trace_keep_errors) or exceed a latency threshold
// (set_trace_slow_keep_ns), so the interesting 1% survives a 1% sample rate.
//
// Tracing is cheap (two monotonic clock reads, one mutex push per sampled
// span; unsampled spans skip the recorder entirely) and can be disabled
// process-wide with set_tracing_enabled(false), which turns Span into a
// no-op and stops header injection.

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lms/core/sync.hpp"
#include "lms/util/clock.hpp"

namespace lms::obs {

/// Request header carrying the trace context between components.
inline constexpr std::string_view kTraceHeader = "X-LMS-Trace";

/// The propagated context: which trace this thread is working for, the span
/// that is its current parent, and whether the trace was head-sampled.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool sampled = true;
  bool valid() const { return trace_id != 0; }
};

/// The active context of the calling thread (invalid when untraced).
TraceContext current_trace();

/// Generate a fresh non-zero id (splitmix64 over a process-unique counter).
std::uint64_t new_trace_id();

/// "<id:016x>" — the canonical textual form used for lms_traces tags,
/// log correlation ("trace=<hex>") and the /trace/<hex> URL.
std::string trace_id_hex(std::uint64_t id);
std::optional<std::uint64_t> parse_trace_id_hex(std::string_view s);

/// "X-LMS-Trace" value: "<trace_id:016x>-<span_id:016x>", with a "-u"
/// suffix when the trace is head-unsampled (downstream hops must agree on
/// the decision made at the root).
std::string format_trace_header(const TraceContext& ctx);
std::optional<TraceContext> parse_trace_header(std::string_view value);

/// Process-wide tracing switch (default on).
void set_tracing_enabled(bool enabled);
bool tracing_enabled();

/// Head sampling: probability in [0, 1] that a new root trace is sampled
/// (default 1.0 — keep everything, the pre-sampling behaviour). The decision
/// is a deterministic hash of the trace id, so it is stable per trace.
void set_trace_sample_rate(double rate);
double trace_sample_rate();
/// Would a root trace with this id be head-sampled at the current rate?
bool trace_head_sampled(std::uint64_t trace_id);

/// Tail-biased always-keep rules for spans of head-unsampled traces:
/// record errored spans (default on), and spans slower than `threshold`
/// nanoseconds (default 0 = disabled).
void set_trace_keep_errors(bool keep);
bool trace_keep_errors();
void set_trace_slow_keep_ns(std::int64_t threshold_ns);
std::int64_t trace_slow_keep_ns();

/// A finished span as stored by the recorder.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  ///< 0 = root
  std::string name;                  ///< e.g. "http.server POST /write"
  std::string component;             ///< e.g. "net", "router", "tsdb"
  util::TimeNs start_wall_ns = 0;    ///< wall clock at span start
  std::int64_t duration_ns = 0;      ///< monotonic elapsed
  bool ok = true;
  std::string note;                  ///< optional status detail
};

/// Bounded ring of finished spans (oldest dropped first). Thread-safe.
class SpanRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit SpanRecorder(std::size_t capacity = kDefaultCapacity);

  /// Process-wide default recorder used by Span unless one is passed in.
  static SpanRecorder& global();

  void record(SpanRecord record);

  /// All retained spans of one trace, oldest first.
  std::vector<SpanRecord> by_trace(std::uint64_t trace_id) const;

  /// The most recent `n` spans, oldest first.
  std::vector<SpanRecord> recent(std::size_t n) const;

  /// Take every retained span out of the ring (oldest first), leaving it
  /// empty. This is the exporter's consume step: drained spans do not count
  /// as evicted. `max_spans` == 0 means take all.
  std::vector<SpanRecord> drain(std::size_t max_spans = 0);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Total spans ever recorded / evicted by the ring bound / drained out.
  std::uint64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }
  std::uint64_t evicted() const { return evicted_.load(std::memory_order_relaxed); }
  std::uint64_t drained() const { return drained_.load(std::memory_order_relaxed); }

  void clear();

 private:
  const std::size_t capacity_;
  mutable core::sync::Mutex mu_{core::sync::Rank::kObsTrace, "obs.spans"};
  std::deque<SpanRecord> ring_ LMS_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> drained_{0};
};

/// RAII timed section. Construction makes it the thread's current span
/// (child of the previous one, or a new root trace); destruction records it
/// and restores the parent. When tracing is disabled (or suppressed on this
/// thread) it does nothing. When the trace is head-unsampled the context
/// still propagates, but the span is only recorded if a tail always-keep
/// rule fires (error / over-threshold latency).
class Span {
 public:
  Span(std::string name, std::string component, SpanRecorder* recorder = nullptr);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// The context this span propagates ({trace_id, this span's id, sampled}).
  const TraceContext& context() const { return ctx_; }
  bool active() const { return active_; }
  bool sampled() const { return ctx_.sampled; }

  void set_ok(bool ok) { ok_ = ok; }
  void set_note(std::string note) { note_ = std::move(note); }

 private:
  bool active_ = false;
  SpanRecorder* recorder_ = nullptr;
  TraceContext prev_;
  TraceContext ctx_;
  std::string name_;
  std::string component_;
  util::TimeNs start_wall_ = 0;
  util::TimeNs start_mono_ = 0;
  bool ok_ = true;
  std::string note_;
};

/// RAII thread-local tracing suppression. While alive, Span construction on
/// this thread is a no-op and transports do not inject trace headers. The
/// TraceExporter wraps its own write in one of these so exporting spans
/// through the router cannot generate spans about exporting spans.
class TraceSuppressGuard {
 public:
  TraceSuppressGuard();
  ~TraceSuppressGuard();
  TraceSuppressGuard(const TraceSuppressGuard&) = delete;
  TraceSuppressGuard& operator=(const TraceSuppressGuard&) = delete;
};
bool tracing_suppressed();

class Registry;

/// Expose a recorder's ring statistics as sampled gauges in `registry`:
/// trace_spans_recorded / trace_spans_evicted (ring overflow — spans lost to
/// the capacity bound) / trace_spans_retained. The recorder must outlive the
/// registration; undo with remove_trace_metrics before it dies — or better,
/// hold a ScopedTraceMetrics, which cannot be forgotten.
void register_trace_metrics(Registry& registry);
void register_trace_metrics(Registry& registry, SpanRecorder& recorder);
void remove_trace_metrics(Registry& registry);

/// RAII registration of the trace gauges: registers on construction,
/// unregisters on destruction. Declare it after the Registry and after the
/// SpanRecorder it samples (members are destroyed in reverse order), and a
/// recorder can never die before its gauge callbacks are removed.
class ScopedTraceMetrics {
 public:
  explicit ScopedTraceMetrics(Registry& registry);
  ScopedTraceMetrics(Registry& registry, SpanRecorder& recorder);
  ~ScopedTraceMetrics();
  ScopedTraceMetrics(const ScopedTraceMetrics&) = delete;
  ScopedTraceMetrics& operator=(const ScopedTraceMetrics&) = delete;

 private:
  Registry& registry_;
};

/// RAII adoption of a remote context (server side of a hop): installs `ctx`
/// as the thread's current context, restores the previous one on exit.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

}  // namespace lms::obs
