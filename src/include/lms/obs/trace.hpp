#pragma once

// Lightweight request tracing across the stack's HTTP hops.
//
// Every hop of the LMS pipeline is an HTTP request (paper §III), so a write
// crosses collector -> router -> TSDB as a chain of client/server handler
// invocations. A Span is an RAII timed section bound to the calling thread;
// spans nest, and the active (trace id, span id) pair travels to the next
// component in the "X-LMS-Trace: <trace16hex>-<span16hex>" request header,
// which both transports (TCP and in-process) inject on the client side and
// adopt on the server side. Finished spans land in a bounded in-memory
// SpanRecorder queryable per trace — enough to answer "where did this write
// spend its time" without an external tracing backend.
//
// Tracing is cheap (two monotonic clock reads, one mutex push per span) and
// can be disabled process-wide with set_tracing_enabled(false), which turns
// Span into a no-op and stops header injection.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lms/util/clock.hpp"

namespace lms::obs {

/// Request header carrying the trace context between components.
inline constexpr std::string_view kTraceHeader = "X-LMS-Trace";

/// The propagated context: which trace this thread is working for, and the
/// span that is its current parent.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

/// The active context of the calling thread (invalid when untraced).
TraceContext current_trace();

/// Generate a fresh non-zero id (splitmix64 over a process-unique counter).
std::uint64_t new_trace_id();

/// "X-LMS-Trace" value: "<trace_id:016x>-<span_id:016x>".
std::string format_trace_header(const TraceContext& ctx);
std::optional<TraceContext> parse_trace_header(std::string_view value);

/// Process-wide tracing switch (default on).
void set_tracing_enabled(bool enabled);
bool tracing_enabled();

/// A finished span as stored by the recorder.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  ///< 0 = root
  std::string name;                  ///< e.g. "http.server POST /write"
  std::string component;             ///< e.g. "net", "router", "tsdb"
  util::TimeNs start_wall_ns = 0;    ///< wall clock at span start
  std::int64_t duration_ns = 0;      ///< monotonic elapsed
  bool ok = true;
  std::string note;                  ///< optional status detail
};

/// Bounded ring of finished spans (oldest dropped first). Thread-safe.
class SpanRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit SpanRecorder(std::size_t capacity = kDefaultCapacity);

  /// Process-wide default recorder used by Span unless one is passed in.
  static SpanRecorder& global();

  void record(SpanRecord record);

  /// All retained spans of one trace, oldest first.
  std::vector<SpanRecord> by_trace(std::uint64_t trace_id) const;

  /// The most recent `n` spans, oldest first.
  std::vector<SpanRecord> recent(std::size_t n) const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Total spans ever recorded / evicted by the ring bound.
  std::uint64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }
  std::uint64_t evicted() const { return evicted_.load(std::memory_order_relaxed); }

  void clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<SpanRecord> ring_;
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> evicted_{0};
};

/// RAII timed section. Construction makes it the thread's current span
/// (child of the previous one, or a new root trace); destruction records it
/// and restores the parent. When tracing is disabled it does nothing.
class Span {
 public:
  Span(std::string name, std::string component, SpanRecorder* recorder = nullptr);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// The context this span propagates ({trace_id, this span's id}).
  const TraceContext& context() const { return ctx_; }
  bool active() const { return active_; }

  void set_ok(bool ok) { ok_ = ok; }
  void set_note(std::string note) { note_ = std::move(note); }

 private:
  bool active_ = false;
  SpanRecorder* recorder_ = nullptr;
  TraceContext prev_;
  TraceContext ctx_;
  std::string name_;
  std::string component_;
  util::TimeNs start_wall_ = 0;
  util::TimeNs start_mono_ = 0;
  bool ok_ = true;
  std::string note_;
};

class Registry;

/// Expose a recorder's ring statistics as sampled gauges in `registry`:
/// trace_spans_recorded / trace_spans_evicted (ring overflow — spans lost to
/// the capacity bound) / trace_spans_retained. The recorder must outlive the
/// registration; undo with remove_trace_metrics before it dies.
void register_trace_metrics(Registry& registry);
void register_trace_metrics(Registry& registry, SpanRecorder& recorder);
void remove_trace_metrics(Registry& registry);

/// RAII adoption of a remote context (server side of a hop): installs `ctx`
/// as the thread's current context, restores the previous one on exit.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

}  // namespace lms::obs
