#pragma once

// Self-monitoring metrics registry — the stack instrumenting itself.
//
// The paper's companion work on hardware-event validation (Röhl et al.,
// arXiv:1710.04094) makes the case that a monitoring pipeline you cannot
// measure cannot be trusted. This registry is how every LMS component
// exposes its own counters, gauges and latency distributions in a uniform
// way:
//   - Counter: monotonically increasing u64. The increment fast path is a
//     single relaxed atomic add — callers cache the Counter& at setup time,
//     so no lock or map lookup sits on the hot path.
//   - Gauge: last-written double (atomic bit store), or a sampled gauge
//     registered as a callback evaluated at collect time (queue depths,
//     spool sizes).
//   - Histogram: log2-bucketed u64 distribution (64 octaves) with atomic
//     bucket counters; p50/p90/p99 are derived from the buckets at collect
//     time by linear interpolation inside the hit bucket. Recording is two
//     relaxed atomic adds plus a bit-scan — no lock.
//
// Instruments are identified by (name, sorted label set). The registry owns
// them; references stay valid for the registry's lifetime. A process-wide
// Registry::global() exists for transports and ad-hoc call sites; components
// with exact per-instance statistics (router, TSDB API) default to a private
// registry so tests and multi-instance deployments don't cross-pollute.
//
// Two exporters read the registry:
//   render_text()  — Prometheus-style text for the GET /metrics endpoints,
//   to_points()    — line-protocol points under one measurement
//                    ("lms_internal") for the self-scrape loop that feeds
//                    the stack's own TSDB (see selfscrape.hpp).

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lms/core/sync.hpp"
#include "lms/lineproto/point.hpp"
#include "lms/obs/trace.hpp"
#include "lms/util/clock.hpp"

namespace lms::obs {

/// Instrument labels: key/value pairs, sorted by key once registered.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. inc() is a single relaxed atomic add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Counter() = default;
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value gauge (double). set()/add() are lock-free.
class Gauge {
 public:
  void set(double v) { bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed); }
  void add(double delta) {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        cur, std::bit_cast<std::uint64_t>(std::bit_cast<double>(cur) + delta),
        std::memory_order_relaxed)) {
    }
  }
  double value() const { return std::bit_cast<double>(bits_.load(std::memory_order_relaxed)); }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<std::uint64_t> bits_{0};
};

/// Log2-bucketed histogram for non-negative integer samples (latencies in
/// ns, sizes in bytes). Bucket b holds values with bit_width(v) == b, i.e.
/// [2^(b-1), 2^b); bucket 0 holds zeros.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void record(std::uint64_t v) {
    buckets_[static_cast<std::size_t>(std::bit_width(v))].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    if (exemplar_enabled_.load(std::memory_order_relaxed)) maybe_record_exemplar(v);
  }

  /// Record the elapsed real time since `start_mono` (util::monotonic_now_ns).
  void record_since(util::TimeNs start_mono) {
    const util::TimeNs d = util::monotonic_now_ns() - start_mono;
    record(d > 0 ? static_cast<std::uint64_t>(d) : 0);
  }

  std::uint64_t count() const;
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// hit bucket. Log buckets bound the relative error to 2x.
  double percentile(double q) const;

  struct Summary {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    double p50 = 0, p90 = 0, p99 = 0;
  };
  Summary summary() const;

  /// Exemplars: an opt-in link from a latency distribution to one concrete
  /// trace — the trace id active when the slowest observation (since the
  /// last reset) was recorded. An alert firing on p99 can then jump straight
  /// to `GET /trace/<id>` instead of guessing which request was slow. Only
  /// head-sampled traces are eligible (an unsampled trace would dangle).
  struct Exemplar {
    std::uint64_t trace_id = 0;  ///< 0 = no exemplar captured yet
    std::uint64_t value = 0;     ///< the recorded observation (e.g. ns)
  };
  void enable_exemplar() { exemplar_enabled_.store(true, std::memory_order_relaxed); }
  bool exemplar_enabled() const { return exemplar_enabled_.load(std::memory_order_relaxed); }
  Exemplar exemplar() const {
    return Exemplar{ex_trace_.load(std::memory_order_relaxed),
                    ex_value_.load(std::memory_order_relaxed)};
  }
  /// Restart the "slowest recent" window (e.g. after the alert resolved).
  void reset_exemplar() {
    ex_value_.store(0, std::memory_order_relaxed);
    ex_trace_.store(0, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Histogram() = default;

  /// value/trace stores are two separate relaxed atomics: a racing reader
  /// can pair a value with a neighbouring trace — acceptable for a
  /// monitoring hint, and the price of keeping record() lock-free.
  void maybe_record_exemplar(std::uint64_t v) {
    if (v < ex_value_.load(std::memory_order_relaxed)) return;
    const TraceContext ctx = current_trace();
    if (!ctx.valid() || !ctx.sampled) return;
    ex_value_.store(v, std::memory_order_relaxed);
    ex_trace_.store(ctx.trace_id, std::memory_order_relaxed);
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<bool> exemplar_enabled_{false};
  std::atomic<std::uint64_t> ex_value_{0};
  std::atomic<std::uint64_t> ex_trace_{0};
};

/// A collected instrument value (see Registry::collect()).
struct Sample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Labels labels;
  Kind kind = Kind::kCounter;
  double value = 0;               ///< counter / gauge value
  Histogram::Summary histogram;   ///< kHistogram only
  Histogram::Exemplar exemplar;   ///< kHistogram only; trace_id 0 = none
};

/// Named-instrument registry. Lookup interns the instrument under a mutex;
/// returned references remain valid for the registry's lifetime, so callers
/// resolve once and keep the handle on hot paths.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide default registry (transport-level instrumentation).
  static Registry& global();

  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Histogram& histogram(std::string_view name, Labels labels = {});

  /// Register a gauge evaluated at collect time (queue depth, spool size).
  /// Re-registering the same (name, labels) replaces the callback.
  void gauge_fn(std::string_view name, Labels labels, std::function<double()> fn);

  /// Remove a sampled gauge (call before the captured object dies).
  void remove_gauge_fn(std::string_view name, const Labels& labels = {});

  /// Snapshot every instrument. Sorted by (name, labels).
  std::vector<Sample> collect() const;

  std::size_t instrument_count() const;

 private:
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& o) const {
      if (name != o.name) return name < o.name;
      return labels < o.labels;
    }
  };
  static Key make_key(std::string_view name, Labels labels);

  // Near-leaf rank: collect() copies the gauge-callback list out and
  // evaluates it unlocked, so instrument lookup is the only work under mu_.
  mutable core::sync::Mutex mu_{core::sync::Rank::kObsRegistry, "obs.registry"};
  std::map<Key, std::unique_ptr<Counter>> counters_ LMS_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ LMS_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Histogram>> histograms_ LMS_GUARDED_BY(mu_);
  std::map<Key, std::function<double()>> gauge_fns_ LMS_GUARDED_BY(mu_);
};

/// Content-Type of the text exposition format (what Prometheus scrapers
/// negotiate); every GET /metrics endpoint stamps this on its response.
inline constexpr std::string_view kTextExpositionContentType = "text/plain; version=0.0.4";

/// Prometheus-style exposition text, served by the GET /metrics endpoints:
///   name{label="value",...} value
/// Histograms expand to _count, _sum, _p50, _p90, _p99 series.
std::string render_text(const Registry& registry);

/// Serialize the registry as line-protocol points under one measurement.
/// Each instrument becomes a point tagged metric=<name> plus its labels and
/// `extra_tags`; counters/gauges carry a "value" field, histograms carry
/// count/sum/p50/p90/p99 fields. `timestamp` stamps every point.
std::vector<lineproto::Point> to_points(const Registry& registry, std::string_view measurement,
                                        const Labels& extra_tags, util::TimeNs timestamp);

}  // namespace lms::obs
