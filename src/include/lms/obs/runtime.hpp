#pragma once

// Runtime-observability export layer: the bridge between the process-wide
// raw registries in core (lockstats in lms/core/sync.hpp, queue/loop stats
// in lms/core/runtime.hpp) and the metrics surface of the stack.
//
// The raw registries live in core because util::BoundedQueue and the sync
// wrappers must not depend on lms::obs; this header is where their
// snapshots become ordinary instruments:
//
//   lms_lock_acquisitions_total / lms_lock_contended_total /
//   lms_lock_wait_ns_{total,max} / lms_lock_wait_p{50,99}_ns /
//   lms_lock_hold_ns_{total,max}            {lock=<site>, rank=<n>}
//   lms_lock_stats_enabled, lms_lock_sites_dropped
//   lms_runtime_queue_{depth,high_watermark,capacity} and
//   lms_runtime_queue_{pushes,pops,blocked_pushes,rejected_pushes}_total
//                                           {queue=<name>}
//   lms_runtime_loop_{iterations,busy_ns,idle_ns}_total,
//   lms_runtime_loop_duty_pct               {loop=<name>}
//   lms_build_info                          {build_type, compiler, ...} = 1
//
// update_runtime_metrics() refreshes them as plain gauges right before a
// collection (the /metrics handlers and the self-scrape loop call it), so
// the values ride the existing export paths: render_text() for Prometheus
// scrapers and to_points() into the TSDB as lms_internal, where they are
// queryable, alertable and chartable like any other metric.

#include <string>

#include "lms/obs/metrics.hpp"

namespace lms::obs {

/// Compile-time facts about the linked lms::obs library build.
struct BuildInfo {
  std::string build_type;  ///< CMAKE_BUILD_TYPE ("unknown" outside CMake)
  std::string compiler;    ///< e.g. "gcc 12.2.0"
  std::string sanitizer;   ///< "none" | "thread" | "address" | "undefined"
  bool rank_checks = false;
  bool lock_stats = false;
};

BuildInfo build_info();

/// One-line rendering for /health:
///   "type=RelWithDebInfo compiler=gcc 12.2.0 sanitizer=none
///    rank_checks=off lock_stats=on"
std::string build_info_summary();

/// Register/refresh the lms_build_info gauge: constant value 1, the facts
/// ride in the labels (the Prometheus info-metric idiom).
void register_build_info(Registry& registry);

/// Refresh every lms_lock_* / lms_runtime_* gauge (and lms_build_info)
/// from the process-wide core registries. Idempotent and cheap relative to
/// a collection; call right before collect()/render_text().
void update_runtime_metrics(Registry& registry);

}  // namespace lms::obs
