#pragma once

// Trace exporter: spans leave the process and land in the shared TSDB.
//
// The SpanRecorder (trace.hpp) is a per-process ring — good enough to ask
// "where did this request spend its time" inside one process, useless once a
// write crosses collector -> router -> TSDB. The TraceExporter closes that
// gap: it periodically drains a recorder and writes the finished spans as
// line-protocol points under one measurement ("lms_traces" by default)
// through the same pipeline every collector batch takes, so spans from every
// process of a deployment accumulate in one database and GET /trace/<id> on
// the TSDB API (see tsdb/trace_assembly.hpp) can stitch them back into a
// single waterfall.
//
// Export format — one point per span:
//   measurement  lms_traces
//   tags         trace_id=<016x>  component=<span component>  host=<host>
//   fields       span="<self-contained JSON record>"   (string-valued)
//                duration_ns=<int>  name="<span name>"
//   timestamp    span start (wall ns)
// The span JSON carries ids, name, parent, timing, ok and note, so a reader
// never needs to row-align separate field columns — each value is the whole
// span. Tagging by trace_id makes assembly a tag-index lookup.
//
// The write target is a callback (obs must not depend on net), exactly like
// SelfScrape: pass a lambda that posts to "<router>/write?db=...". The
// exporter wraps the write in a TraceSuppressGuard so exporting spans can
// never generate spans about exporting spans.
//
// Two driving modes, mirroring SelfScrape:
//   - export_once(): synchronous, for sim-clocked harnesses and tests,
//   - attach(scheduler): a periodic "obs.traceexport" task for deployments.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "lms/lineproto/point.hpp"
#include "lms/core/runnable.hpp"
#include "lms/core/taskscheduler.hpp"
#include "lms/obs/trace.hpp"
#include "lms/util/clock.hpp"
#include "lms/util/status.hpp"

namespace lms::obs {

/// Default measurement span points are exported under.
inline constexpr std::string_view kTraceMeasurement = "lms_traces";

/// One span as one line-protocol point (see the format comment above).
lineproto::Point span_to_point(const SpanRecord& span, std::string_view measurement,
                               std::string_view host);

class TraceExporter : public core::Runnable {
 public:
  /// Deliver one serialized line-protocol batch to the stack.
  using WriteFn = std::function<util::Status(const std::string& lineproto_body)>;

  struct Options {
    std::string measurement = std::string(kTraceMeasurement);
    /// Stamped as the `host` tag on every exported span — in a multi-process
    /// deployment this is what tells two "router" spans apart.
    std::string host;
    /// Cadence of the periodic export task once attached.
    util::TimeNs interval = 10 * util::kNanosPerSecond;
    /// Upper bound on spans taken per export (0 = drain everything).
    std::size_t max_spans_per_export = 2048;
    /// Recorder to drain; nullptr = SpanRecorder::global().
    SpanRecorder* recorder = nullptr;
  };

  TraceExporter(WriteFn write, Options options);
  ~TraceExporter();
  TraceExporter(const TraceExporter&) = delete;
  TraceExporter& operator=(const TraceExporter&) = delete;

  /// Drain + serialize + write one batch now. Returns OK when there was
  /// nothing to export. Spans of a failed write are dropped (counted in
  /// spans_dropped) — the recorder ring would only re-evict them anyway.
  util::Status export_once();

  std::uint64_t exports() const { return exports_.load(); }
  std::uint64_t failures() const { return failures_.load(); }
  std::uint64_t spans_exported() const { return spans_exported_.load(); }
  std::uint64_t spans_dropped() const { return spans_dropped_.load(); }

 protected:
  void on_attach(core::TaskScheduler& sched) override;
  void on_detach() override;

 private:
  WriteFn write_;
  Options options_;
  SpanRecorder& recorder_;

  std::atomic<std::uint64_t> exports_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> spans_exported_{0};
  std::atomic<std::uint64_t> spans_dropped_{0};
  core::PeriodicTaskHandle task_;
};

}  // namespace lms::obs
