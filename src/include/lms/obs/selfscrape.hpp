#pragma once

// Self-scrape exporter: the stack monitoring itself with itself.
//
// Periodically serializes a metrics Registry as line protocol and writes it
// back into the stack (normally through the metrics router, so the points
// are enriched and land in the TSDB like any collector batch) under a
// dedicated measurement, "lms_internal" by default. The dashboard agent can
// then chart the pipeline's own ingest rates, queue depths and latency
// percentiles end-to-end — the "monitoring the monitoring" loop.
//
// The write target is a callback rather than an HttpClient so this module
// stays transport-agnostic (obs must not depend on net): pass a lambda that
// posts to "<router>/write?db=..." or calls MetricsRouter::write_lines()
// directly.
//
// Two driving modes:
//   - scrape_once(): synchronous, for sim-clocked harnesses and tests,
//   - attach(scheduler): a periodic "obs.selfscrape" task for deployments
//     (manual-mode schedulers drive the same task deterministically).

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "lms/core/runnable.hpp"
#include "lms/core/taskscheduler.hpp"
#include "lms/obs/metrics.hpp"
#include "lms/util/clock.hpp"
#include "lms/util/status.hpp"

namespace lms::obs {

class SelfScrape : public core::Runnable {
 public:
  /// Deliver one serialized line-protocol batch to the stack.
  using WriteFn = std::function<util::Status(const std::string& lineproto_body)>;

  struct Options {
    std::string measurement = "lms_internal";
    /// Tags stamped on every exported point (set at least hostname so the
    /// router's enrichment and the dashboards can key on it).
    Labels tags;
    /// Cadence of the periodic scrape task once attached.
    util::TimeNs interval = 10 * util::kNanosPerSecond;
  };

  SelfScrape(Registry& registry, const util::Clock& clock, WriteFn write, Options options);
  ~SelfScrape();
  SelfScrape(const SelfScrape&) = delete;
  SelfScrape& operator=(const SelfScrape&) = delete;

  /// Collect + serialize + write one snapshot now (timestamped clock.now()).
  util::Status scrape_once();

  std::uint64_t scrapes() const { return scrapes_.load(); }
  std::uint64_t failures() const { return failures_.load(); }

 protected:
  void on_attach(core::TaskScheduler& sched) override;
  void on_detach() override;

 private:
  Registry& registry_;
  const util::Clock& clock_;
  WriteFn write_;
  Options options_;

  std::atomic<std::uint64_t> scrapes_{0};
  std::atomic<std::uint64_t> failures_{0};
  core::PeriodicTaskHandle task_;
};

}  // namespace lms::obs
