#pragma once

// lms::obs::CpuProfiler — continuous in-process CPU sampling.
//
// The stack already knows where threads *wait* (lockstats, PR 7) and how
// queues *fill* (runtime stats, PR 9); this closes the last gap: where the
// cycles actually go. A POSIX interval timer (ITIMER_PROF → SIGPROF by
// default, ITIMER_REAL → SIGALRM in wall mode) interrupts whichever thread
// is on-CPU at a configurable Hz; the signal handler captures a raw frame
// vector plus the thread's current trace id (obs/trace.hpp TLS) and running
// scheduler task name (core::runtime::current_task_name) into a lock-free
// per-thread ring. Everything expensive — symbolization (dladdr +
// __cxa_demangle), stack folding, aggregation — happens later, outside
// signal context, on a scheduler periodic task ("obs.cpuprofile.fold").
//
// Signal-safety rules the handler obeys (see DESIGN.md §13):
//   - no allocation, no locks, no formatted I/O; atomics and TLS reads only
//   - backtrace() is pre-warmed in start() so libgcc's lazy init (which
//     takes a lock and allocates) happens before the first signal
//   - rings are allocated in start() and never freed; a ring is claimed by
//     CAS on its owner-tid slot the first time a thread is sampled
//   - the handler is installed once and left installed for process life;
//     stop() only disarms the timer and clears the enabled flag, so a
//     straggler signal can never hit SIG_DFL (which would kill the process)
//
// Folded stacks ("root;child;leaf" + sample count, the collapsed format
// flamegraph tooling eats) aggregate into a bounded table guarded by a
// Rank::kObsProfile mutex. Each stack remembers the most recent *sampled*
// trace id seen at capture, which is what lets /debug/pprof output and the
// lms_profiles measurement pivot a hot stack into GET /trace/<id>.
//
// Deterministic mode for the sim harness: start() with Options::timer=false
// installs no timer and no handler; the owner calls sample_once() per step
// (captures the calling thread synchronously, same ring path) and drives
// folding via the same periodic task on a manual scheduler.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lms/core/runnable.hpp"
#include "lms/core/sync.hpp"
#include "lms/core/taskscheduler.hpp"
#include "lms/util/clock.hpp"
#include "lms/util/status.hpp"

namespace lms::obs {

namespace profile_detail {

/// Raw sample as written by the signal handler. Fixed-size so the rings are
/// flat arrays the handler indexes without allocation.
struct RawSample {
  static constexpr int kMaxFrames = 24;
  static constexpr int kMaxTaskName = 32;

  void* frames[kMaxFrames];
  std::int32_t nframes = 0;
  std::uint64_t trace_id = 0;  ///< thread's current trace at capture (0 = none)
  bool trace_sampled = false;  ///< head-sampling decision of that trace
  char task[kMaxTaskName];     ///< scheduler task name at capture ("" = none)
};

/// Lock-free SPSC sample ring. Producer is the owning thread (its signal
/// handler, or sample_once()); consumer is the fold task. Claimed from a
/// fixed pool by CAS on owner_tid; reclaimed by the fold task when the
/// owner thread is observed dead.
struct SampleRing {
  std::atomic<std::uint64_t> owner_tid{0};  ///< 0 = free slot
  std::atomic<std::uint32_t> head{0};       ///< next write (producer)
  std::atomic<std::uint32_t> tail{0};       ///< next read (consumer)
  std::atomic<std::uint64_t> dropped{0};    ///< ring-full overwrite-free drops
  std::vector<RawSample> slots;             ///< sized once in start()
};

}  // namespace profile_detail

/// One folded stack and its aggregate weight.
struct ProfileStack {
  std::string stack;            ///< "task:<name>;root;...;leaf" collapsed form
  std::uint64_t count = 0;      ///< samples folded into this stack
  std::uint64_t trace_id = 0;   ///< most recent sampled trace id seen (0 = none)
};

class CpuProfiler : public core::Runnable {
 public:
  struct Options {
    /// Sampling frequency. Clamped to [1, 1000].
    int hz = 99;
    /// false = CPU time (ITIMER_PROF/SIGPROF: only on-CPU threads tick);
    /// true = wall time (ITIMER_REAL/SIGALRM: idle threads tick too).
    bool wall = false;
    /// false = no timer and no signal handler; the owner drives capture
    /// with sample_once() (sim harness / deterministic tests).
    bool timer = true;
    /// Ring pool size = max threads profiled concurrently.
    std::size_t max_threads = 32;
    /// Samples buffered per thread between folds.
    std::size_t ring_capacity = 256;
    /// Bound on distinct folded stacks; excess folds into "(overflow)".
    std::size_t max_stacks = 2048;
    /// Cadence of the symbolize+fold periodic task once attached.
    util::TimeNs fold_interval = util::kNanosPerSecond;
  };

  struct Stats {
    bool running = false;
    bool timer = false;
    int hz = 0;
    std::uint64_t samples_captured = 0;  ///< handler/sample_once writes
    std::uint64_t samples_dropped = 0;   ///< ring-full + pool-exhausted drops
    std::uint64_t samples_folded = 0;    ///< samples aggregated by the fold task
    std::uint64_t folds = 0;             ///< process_once() invocations
    std::uint64_t rings_active = 0;      ///< pool slots with a live owner
    std::uint64_t rings_reclaimed = 0;   ///< slots recycled from dead threads
    std::uint64_t stacks = 0;            ///< distinct folded stacks tracked
    std::uint64_t stack_overflows = 0;   ///< samples folded into "(overflow)"
  };

  /// Process-wide instance. Signals and interval timers are process-wide
  /// resources, so one profiler serves every agent in the process and the
  /// shared net:: debug endpoints read it without plumbing.
  static CpuProfiler& instance();

  /// Arm the profiler: allocate rings, pre-warm backtrace(), install the
  /// handler + timer (when options.timer). Error if already running.
  util::Status start(Options options);

  /// Disarm the timer and stop capturing. The handler stays installed
  /// (inert); rings stay allocated so any in-flight signal writes into
  /// still-valid memory. Pending samples are folded. Idempotent.
  void stop();

  bool running() const { return enabled_.load(std::memory_order_acquire); }

  /// Deterministic capture of the calling thread into its ring — the same
  /// path the signal handler takes, minus the signal. No-op when stopped.
  void sample_once();

  /// Drain every ring: symbolize, fold, aggregate; reclaim rings whose
  /// owner thread died. Returns samples folded. Runs as the periodic fold
  /// task once attached; callable directly in deterministic mode. Never
  /// call from signal context.
  std::size_t process_once();

  /// Aggregated stacks, heaviest first, capped at max_stacks entries
  /// (0 = all). Does not fold first — callers wanting fresh data call
  /// process_once() before snapshotting.
  std::vector<ProfileStack> snapshot(std::size_t max_stacks = 0) const;

  /// Collapsed-stack text: one "stack count" line per aggregated stack,
  /// heaviest first — the format flamegraph.pl / speedscope consume.
  std::string collapsed(std::size_t max_stacks = 0) const;

  /// Reset the aggregate table (delta profiles: /debug/pprof?seconds=N).
  void clear();

  Stats stats() const;
  const Options& options() const { return options_; }

 protected:
  /// Periodic "obs.cpuprofile.fold" task driving process_once().
  void on_attach(core::TaskScheduler& sched) override;
  void on_detach() override;

 private:
  CpuProfiler();
  ~CpuProfiler() override;

  static void signal_handler(int signo);
  /// Shared capture path for the handler and sample_once(). Signal-safe.
  void capture();
  profile_detail::SampleRing* claim_ring(std::uint64_t tid);
  void fold_sample(const profile_detail::RawSample& sample);
  /// Resolve one PC to a demangled symbol (cached). Not signal-safe.
  const std::string& symbolize(void* pc);

  Options options_;
  std::atomic<bool> enabled_{false};
  std::atomic<bool> handler_installed_{false};
  bool timer_armed_ = false;
  int signo_ = 0;

  /// Ring pool; allocated on first start(), grown never, freed never.
  std::vector<std::unique_ptr<profile_detail::SampleRing>> rings_;

  std::atomic<std::uint64_t> samples_captured_{0};
  std::atomic<std::uint64_t> samples_dropped_{0};
  std::atomic<std::uint64_t> samples_folded_{0};
  std::atomic<std::uint64_t> folds_{0};
  std::atomic<std::uint64_t> rings_reclaimed_{0};
  std::atomic<std::uint64_t> stack_overflows_{0};

  struct StackEntry {
    std::uint64_t count = 0;
    std::uint64_t trace_id = 0;
  };

  mutable core::sync::Mutex table_mu_{core::sync::Rank::kObsProfile, "obs.profile.table"};
  std::unordered_map<std::string, StackEntry> table_ LMS_GUARDED_BY(table_mu_);
  std::unordered_map<void*, std::string> symbols_ LMS_GUARDED_BY(table_mu_);

  core::PeriodicTaskHandle fold_task_;
};

/// Default measurement profile points are exported under.
inline constexpr std::string_view kProfileMeasurement = "lms_profiles";

/// Periodically writes the profiler's top-K stacks through the router as an
/// `lms_profiles` measurement, so profiles are queryable and alertable like
/// any other series. Mirrors TraceExporter: the write target is a callback
/// (obs must not depend on net), export_once() serves sim harnesses, and
/// attach() adds a periodic "obs.profileexport" task.
///
/// Point format — one point per exported stack:
///   measurement  lms_profiles
///   tags         host=<host>  rank=<0..K-1>  [trace_id=<016x>]
///   fields       stack="<collapsed stack>"  frame="<leaf frame>"
///                samples=<int>
///   timestamp    export wall time
class ProfileExporter : public core::Runnable {
 public:
  using WriteFn = std::function<util::Status(const std::string& lineproto_body)>;

  struct Options {
    std::string measurement = std::string(kProfileMeasurement);
    std::string host;
    util::TimeNs interval = 30 * util::kNanosPerSecond;
    /// Stacks exported per cycle, heaviest first (the "downsample").
    std::size_t top_k = 20;
    /// Profiler to export; nullptr = CpuProfiler::instance().
    CpuProfiler* profiler = nullptr;
    /// Wall timestamp source for exported points; nullptr = system clock.
    /// The sim harness injects its SimClock so points land on the test's
    /// time axis.
    const util::Clock* clock = nullptr;
  };

  ProfileExporter(WriteFn write, Options options);
  ~ProfileExporter() override;
  ProfileExporter(const ProfileExporter&) = delete;
  ProfileExporter& operator=(const ProfileExporter&) = delete;

  /// Fold pending samples, then write the current top-K stacks. Returns OK
  /// when there was nothing to export.
  util::Status export_once();

  std::uint64_t exports() const { return exports_.load(); }
  std::uint64_t failures() const { return failures_.load(); }
  std::uint64_t stacks_exported() const { return stacks_exported_.load(); }

 protected:
  void on_attach(core::TaskScheduler& sched) override;
  void on_detach() override;

 private:
  WriteFn write_;
  Options options_;
  CpuProfiler& profiler_;

  std::atomic<std::uint64_t> exports_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> stacks_exported_{0};
  core::PeriodicTaskHandle task_;
};

}  // namespace lms::obs
