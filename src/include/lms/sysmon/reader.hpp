#pragma once

// The kernel-statistics interface the collector plugins program against.
// Two implementations exist:
//   - SimulatedKernel (kernel.hpp): driven by the cluster workload models,
//   - ProcKernel (proc.hpp): parses the real Linux /proc filesystem.
// A deployed node agent uses ProcKernel; tests and the simulator use
// SimulatedKernel. The plugins are identical in both cases — the same
// delta/rate computations over the same cumulative counters.

#include "lms/sysmon/stats.hpp"

namespace lms::sysmon {

class KernelReader {
 public:
  virtual ~KernelReader() = default;
  virtual int cpu_count() const = 0;
  virtual CpuTimes cpu_times() const = 0;
  virtual MemInfo meminfo() const = 0;
  virtual NetCounters net_counters() const = 0;
  virtual DiskCounters disk_counters() const = 0;
  virtual double loadavg1() const = 0;
};

}  // namespace lms::sysmon
