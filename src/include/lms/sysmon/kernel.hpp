#pragma once

// Simulated node kernel — the /proc stand-in the system-metric collectors
// read. The cluster workload drives it with a KernelLoad (utilization
// fractions and I/O rates); the kernel integrates those into the cumulative
// counters a real Linux kernel exposes (/proc/stat jiffies, /proc/meminfo,
// /proc/net/dev, /proc/diskstats, loadavg), so the collectors perform the
// same delta/rate computations a Diamond plugin would.

#include <cstdint>

#include "lms/sysmon/reader.hpp"
#include "lms/util/clock.hpp"

namespace lms::sysmon {

class SimulatedKernel final : public KernelReader {
 public:
  /// `cpu_count` scales the CPU time accounting; `mem_total` is RAM size.
  SimulatedKernel(int cpu_count, std::uint64_t mem_total_bytes);

  /// Integrate `load` over `dt_ns` of simulated time.
  void advance(const KernelLoad& load, util::TimeNs dt_ns);

  int cpu_count() const override { return cpu_count_; }
  CpuTimes cpu_times() const override { return cpu_; }
  MemInfo meminfo() const override;
  NetCounters net_counters() const override { return net_; }
  DiskCounters disk_counters() const override { return disk_; }

  /// 1-minute exponentially damped load average (like the kernel's).
  double loadavg1() const override { return loadavg1_; }

 private:
  int cpu_count_;
  std::uint64_t mem_total_bytes_;
  double mem_used_bytes_ = 0.0;
  CpuTimes cpu_;
  NetCounters net_;
  DiskCounters disk_;
  double loadavg1_ = 0.0;
  // Fractional accumulation so slow rates are not lost to truncation.
  double net_rx_acc_ = 0, net_tx_acc_ = 0, net_rxp_acc_ = 0, net_txp_acc_ = 0;
  double disk_rb_acc_ = 0, disk_wb_acc_ = 0, disk_ro_acc_ = 0, disk_wo_acc_ = 0;
};

}  // namespace lms::sysmon
