#pragma once

// Real Linux kernel statistics: a KernelReader over the /proc filesystem.
// This is the one substrate of the stack that can be fully real in any
// Linux environment — a node agent built on ProcKernel monitors the actual
// machine while the rest of the stack stays unchanged.
//
// The parsers are pure functions over file contents (unit-testable against
// fixtures); ProcKernel wires them to the live files.

#include <string>
#include <string_view>

#include "lms/sysmon/reader.hpp"
#include "lms/util/status.hpp"

namespace lms::sysmon {

/// Parse the aggregate "cpu " line of /proc/stat into seconds (USER_HZ=100).
util::Result<CpuTimes> parse_proc_stat(std::string_view text);

/// Parse /proc/meminfo (MemTotal/MemAvailable, kB units).
util::Result<MemInfo> parse_meminfo(std::string_view text);

/// Parse /proc/net/dev, summing all interfaces except "lo".
util::Result<NetCounters> parse_net_dev(std::string_view text);

/// Parse /proc/diskstats, summing whole devices (sdX, vdX, nvmeXnY, xvdX),
/// skipping partitions and virtual devices (loop, ram, dm-). Sector = 512 B.
util::Result<DiskCounters> parse_diskstats(std::string_view text);

/// Parse /proc/loadavg (first field).
util::Result<double> parse_loadavg(std::string_view text);

/// Count "processor" entries in /proc/cpuinfo, or parse "cpu<N>" lines of
/// /proc/stat; whichever text is handed in.
int count_cpus_in_proc_stat(std::string_view text);

/// KernelReader over the live /proc. Reads the files on every call; on read
/// or parse failure the previous (or zero) values are returned — a
/// monitoring agent must not die because one pseudo-file hiccupped.
class ProcKernel final : public KernelReader {
 public:
  /// `root` defaults to "/proc"; tests point it at a fixture directory.
  explicit ProcKernel(std::string root = "/proc");

  int cpu_count() const override;
  CpuTimes cpu_times() const override;
  MemInfo meminfo() const override;
  NetCounters net_counters() const override;
  DiskCounters disk_counters() const override;
  double loadavg1() const override;

 private:
  std::string read_file(const char* name) const;
  std::string root_;
  int cpu_count_;
};

}  // namespace lms::sysmon
