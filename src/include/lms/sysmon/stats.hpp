#pragma once

// Kernel statistics value types shared by the simulated kernel, the real
// /proc reader and the collector plugins.

#include <cstdint>

namespace lms::sysmon {

/// Instantaneous node activity, as supplied by the workload model.
struct KernelLoad {
  double cpu_user_fraction = 0.0;    ///< [0,1] of total CPU capacity
  double cpu_system_fraction = 0.0;  ///< [0,1]
  double cpu_iowait_fraction = 0.0;  ///< [0,1]
  double mem_used_bytes = 0.0;       ///< absolute, incl. page cache pressure
  double net_rx_bytes_per_sec = 0.0;
  double net_tx_bytes_per_sec = 0.0;
  double net_rx_packets_per_sec = 0.0;
  double net_tx_packets_per_sec = 0.0;
  double disk_read_bytes_per_sec = 0.0;
  double disk_write_bytes_per_sec = 0.0;
  double disk_read_ops_per_sec = 0.0;
  double disk_write_ops_per_sec = 0.0;
  double runnable_tasks = 0.0;  ///< drives the load average
};

/// Cumulative CPU times in seconds (the /proc/stat view, node aggregate).
struct CpuTimes {
  double user = 0.0;
  double system = 0.0;
  double iowait = 0.0;
  double idle = 0.0;

  double total() const { return user + system + iowait + idle; }
};

struct NetCounters {
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
};

struct DiskCounters {
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
};

struct MemInfo {
  std::uint64_t total_bytes = 0;
  std::uint64_t used_bytes = 0;
  std::uint64_t free_bytes = 0;
};

}  // namespace lms::sysmon
