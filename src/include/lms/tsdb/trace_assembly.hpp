#pragma once

// Trace assembly: stitching exported spans back into one waterfall.
//
// Every process of a deployment exports its finished spans as `lms_traces`
// points (obs/traceexport.hpp): one point per span, tagged by trace_id /
// component / host, with the whole span carried as a self-contained JSON
// string in the "span" field. This module is the read side — given a trace
// id it collects those points from a storage snapshot (a tag-index lookup,
// since trace_id is a tag) and rebuilds the parent/child tree:
//
//   1. decode every span record of the trace (malformed records are
//      counted, not fatal),
//   2. attach children to parents by span id; spans whose parent id is
//      missing from the trace (still in another process's recorder ring,
//      evicted, or never exported) become orphan roots,
//   3. order children by start time and derive the gap analysis per node:
//      self time (duration minus time covered by children) and the largest
//      gap where the span was waiting with no child running.
//
// Served as JSON by `GET /trace/<id>` on the TSDB API and rendered as a
// text waterfall by the dashboard agent.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lms/obs/traceexport.hpp"
#include "lms/tsdb/storage.hpp"
#include "lms/util/status.hpp"

namespace lms::tsdb {

/// One span in the assembled tree.
struct TraceNode {
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  ///< 0 = root
  std::string name;
  std::string component;
  std::string host;
  std::string note;
  TimeNs start_ns = 0;
  std::int64_t duration_ns = 0;
  bool ok = true;
  /// Parent id non-zero but absent from the trace — shown as a root.
  bool orphan = false;
  /// Gap analysis: time not covered by any child (merged child intervals),
  /// and the largest single stretch where this span waited with no child
  /// running.
  std::int64_t self_ns = 0;
  std::int64_t largest_gap_ns = 0;
  std::vector<TraceNode> children;  ///< ordered by start_ns
};

struct TraceTree {
  std::uint64_t trace_id = 0;
  std::size_t span_count = 0;       ///< decoded spans in the tree
  std::size_t malformed_spans = 0;  ///< records that failed to decode
  std::vector<TraceNode> roots;     ///< ordered by start_ns
};

/// Assemble the spans of `trace_id` from a snapshot. An empty trace (no
/// spans stored) is not an error: span_count == 0. `measurement` is where
/// the exporters write (obs::kTraceMeasurement unless overridden).
TraceTree assemble_trace(const ReadSnapshot& snapshot, std::uint64_t trace_id,
                         std::string_view measurement = obs::kTraceMeasurement);

/// The tree as JSON for GET /trace/<id>:
/// {"trace_id":"<016x>","span_count":N,"roots":[{span..,"children":[..]},..]}
std::string trace_tree_to_json(const TraceTree& tree);

/// Plain-text waterfall (one line per span, indented by depth, with offset/
/// duration bars) — what the dashboard agent serves for humans.
std::string trace_tree_to_waterfall(const TraceTree& tree);

}  // namespace lms::tsdb
