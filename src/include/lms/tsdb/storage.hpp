#pragma once

// Embedded time-series storage engine — the InfluxDB stand-in (§III-C).
//
// Model (matches InfluxDB 1.x):
//   database -> measurement -> series (unique tag set) -> field columns
// A series holds one column per field key; a column is a pair of parallel
// vectors (timestamps, values). Values can be floats, ints, bools or strings
// (events are string-valued points). Writes are typically time-ordered per
// series; out-of-order writes are handled by sorted insertion.
//
// Concurrency: each Database is partitioned into N lock-striped shards keyed
// by series-key hash (measurement + tag set), so writes to different series
// proceed in parallel and retention sweeps one stripe at a time instead of
// stalling the world. Readers never touch a mutex directly: the only way to
// reach series data concurrently is a ReadSnapshot — an RAII guard that
// acquires every stripe shared once and hands out stable `const Series*`
// views for its lifetime. Writers use the WriteBatch value object (database +
// precision + default timestamp + points), which the storage applies shard by
// shard. A snapshot taken while a batch is being applied may observe a prefix
// of that batch (per-stripe atomicity, not per-batch) — acceptable for a
// monitoring store and the price of not having a global lock.
//
// Scheduler offload (set_scheduler): with a core::TaskScheduler attached,
// a writer that finds a stripe contended does not join the convoy blocking
// on the stripe mutex. It stages its per-stripe point group into the
// shard's staging buffer (a tiny kTsdbStage lock) and a single drain task —
// pinned to the stripe index, so same-stripe drains always land on the same
// worker and are never concurrent — applies every staged group under ONE
// stripe acquisition, then wakes the waiting writers. Semantics are
// unchanged (write() still returns only after the points are applied:
// read-your-writes holds); what changes is that N convoying writers become
// one drain task, so stripe lock-wait and handoff churn collapse. Writers
// on scheduler worker threads (e.g. the router's flusher task) apply
// inline — a worker must never block waiting on work only another task on
// the same worker could perform.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lms/core/sync.hpp"
#include "lms/core/taskscheduler.hpp"
#include "lms/lineproto/point.hpp"
#include "lms/util/status.hpp"

namespace lms::tsdb {

using lineproto::FieldValue;
using lineproto::Point;
using lineproto::Tag;
using util::TimeNs;

/// One timestamped value inside a field column.
struct Sample {
  TimeNs t = 0;
  FieldValue v;
};

/// A field column: parallel (timestamp, value) vectors sorted by time.
class Column {
 public:
  void append(TimeNs t, FieldValue v);
  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }

  const std::vector<TimeNs>& times() const { return times_; }
  const std::vector<FieldValue>& values() const { return values_; }

  /// Index of the first sample with time >= t.
  std::size_t lower_bound(TimeNs t) const;

  /// Drop all samples with time < cutoff; returns number dropped.
  std::size_t drop_before(TimeNs cutoff);

 private:
  std::vector<TimeNs> times_;
  std::vector<FieldValue> values_;
};

/// A series: one measurement + unique sorted tag set.
struct Series {
  std::string measurement;
  std::vector<Tag> tags;  // sorted by key
  std::map<std::string, Column> columns;

  std::string_view tag(std::string_view key) const;
};

/// A write in one value object: database + timestamp handling + points.
/// This is the unit the HTTP façade and the router's ingest/spool paths
/// produce and the storage consumes.
struct WriteBatch {
  std::string db;
  /// Timestamp assigned to points whose own timestamp is 0.
  TimeNs default_time = 0;
  /// Precision multiplier applied to non-zero point timestamps: 1 for ns
  /// (the wire default), 1e3 for u, 1e6 for ms, 1e9 for s.
  TimeNs timestamp_scale = 1;
  std::vector<Point> points;
};

class Database;

/// RAII read guard over one database: acquires every shard lock shared on
/// construction and releases on destruction. While it lives, `const Series*`
/// views obtained through the database are stable (writes and retention to
/// the guarded shards are blocked). Default-constructed or failed lookups are
/// empty; test with operator bool.
class ReadSnapshot {
 public:
  ReadSnapshot() = default;
  /// Snapshot a database directly (also used for standalone Database tests).
  /// The dynamic set of stripe locks is not expressible in thread-safety
  /// annotations, so acquisition and release opt out of the analysis; the
  /// runtime rank checker still validates the stripe order (kTsdbShard with
  /// seq = stripe index).
  explicit ReadSnapshot(const Database& db) LMS_NO_THREAD_SAFETY_ANALYSIS;
  ReadSnapshot(ReadSnapshot&& other) noexcept
      : db_(other.db_), locks_(std::move(other.locks_)) {
    other.db_ = nullptr;
    other.locks_.clear();
  }
  ReadSnapshot& operator=(ReadSnapshot&& other) noexcept {
    if (this != &other) {
      release();
      db_ = other.db_;
      locks_ = std::move(other.locks_);
      other.db_ = nullptr;
      other.locks_.clear();
    }
    return *this;
  }
  ~ReadSnapshot() { release(); }

  explicit operator bool() const { return db_ != nullptr; }
  const Database* operator->() const { return db_; }
  const Database& operator*() const { return *db_; }
  const Database* get() const { return db_; }

  /// Release the locks early (the snapshot becomes empty).
  void release() LMS_NO_THREAD_SAFETY_ANALYSIS;

 private:
  const Database* db_ = nullptr;
  std::vector<core::sync::SharedMutex*> locks_;
};

/// A single database, internally partitioned into lock-striped shards.
///
/// Write/retention entry points lock the stripes they touch internally. Read
/// accessors (series_of, measurements, counts, ...) do NOT lock: concurrent
/// callers must hold a ReadSnapshot; single-threaded callers (unit tests)
/// may call them directly.
class Database {
 public:
  static constexpr std::size_t kDefaultShards = 16;

  explicit Database(std::string name, std::size_t shard_count = kDefaultShards);

  const std::string& name() const { return name_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// Which stripe a series identity hashes to — the query engine uses this
  /// to report how many distinct shards a statement touched (EXPLAIN,
  /// /debug/slow_queries). `tags` must be the series' sorted tag set.
  std::size_t shard_of_key(std::string_view measurement, const std::vector<Tag>& tags) const;

  /// Ingest one normalized point. Points with timestamp 0 get `default_time`.
  void write(const Point& point, TimeNs default_time);

  /// Ingest a batch: points are bucketed per shard first, so each stripe is
  /// locked exactly once per batch. Non-zero timestamps are multiplied by
  /// `timestamp_scale` (precision handling); zero timestamps get
  /// `default_time` unscaled.
  void write_batch(const std::vector<Point>& points, TimeNs default_time,
                   TimeNs timestamp_scale = 1);

  /// Attach (or detach with nullptr) the scheduler used for contended-write
  /// offload — see the header comment. Call before concurrent writers start;
  /// the scheduler must outlive all writes.
  void set_scheduler(core::TaskScheduler* sched) {
    sched_.store(sched, std::memory_order_release);
  }

  /// All series of a measurement (pointers stable while a ReadSnapshot is
  /// held; single-threaded callers: until the next retention run).
  std::vector<const Series*> series_of(std::string_view measurement) const;

  /// Series of a measurement filtered by required tag equalities.
  std::vector<const Series*> series_matching(
      std::string_view measurement, const std::vector<Tag>& required_tags) const;

  std::vector<std::string> measurements() const;
  std::vector<std::string> field_keys(std::string_view measurement) const;
  std::vector<std::string> tag_keys(std::string_view measurement) const;
  std::vector<std::string> tag_values(std::string_view measurement,
                                      std::string_view tag_key) const;

  /// Total stored samples across all columns.
  std::size_t sample_count() const;
  std::size_t series_count() const;

  /// Retention: drop samples older than cutoff; removes emptied series.
  /// Locks one stripe at a time (exclusive), so queries on other stripes
  /// proceed while old data is swept.
  std::size_t drop_before(TimeNs cutoff);

  /// Retention limited to measurements selected by `pred` — lets raw data
  /// expire while downsampled rollups persist (the §II data-volume story).
  std::size_t drop_before_if(TimeNs cutoff,
                             const std::function<bool(const std::string&)>& pred);

 private:
  friend class ReadSnapshot;

  struct SeriesKey {
    std::string measurement;
    std::vector<Tag> tags;
    bool operator<(const SeriesKey& other) const {
      if (measurement != other.measurement) return measurement < other.measurement;
      return tags < other.tags;
    }
  };

  /// One lock stripe: its own mutex, series map and per-measurement indexes.
  /// A series lives entirely inside the shard its key hashes to. Stripe
  /// mutexes share Rank::kTsdbShard with seq = stripe index, so the rank
  /// checker enforces the fixed 0..N-1 multi-stripe acquisition order that
  /// ReadSnapshot's blocking fallback relies on. The data members are not
  /// GUARDED_BY(mu): read accessors deliberately take no lock (the snapshot
  /// protocol pins the stripes instead), which static analysis cannot see.
  /// One writer's points for one stripe, parked while a drain task owns the
  /// stripe. Stack-allocated by the staging writer, which blocks on
  /// stage_cv until `done` — so the pointers stay valid for the drain.
  struct StagedGroup {
    const std::vector<const Point*>* bucket = nullptr;
    TimeNs default_time = 0;
    TimeNs timestamp_scale = 1;
    bool done = false;  // guarded by the shard's stage_mu
  };

  struct Shard {
    explicit Shard(std::size_t stripe)
        : mu(core::sync::Rank::kTsdbShard, "tsdb.shard", stripe),
          stage_mu(core::sync::Rank::kTsdbStage, "tsdb.stage", stripe) {}
    mutable core::sync::SharedMutex mu;
    std::map<SeriesKey, std::unique_ptr<Series>> series;
    // measurement -> tag key -> tag value -> series pointers
    std::map<std::string, std::map<std::string, std::map<std::string, std::set<Series*>>>> index;
    std::map<std::string, std::set<Series*>> by_measurement;
    /// Staging lane for the scheduler offload. stage_mu ranks below the
    /// stripe mutex and is only ever held for queue flips, never across the
    /// actual series writes.
    core::sync::Mutex stage_mu;
    core::sync::CondVar stage_cv;
    std::vector<StagedGroup*> staged LMS_GUARDED_BY(stage_mu);
    bool drain_pending LMS_GUARDED_BY(stage_mu) = false;
  };

  std::size_t shard_of(const Point& point) const;
  void write_into(Shard& shard, const Point& point, TimeNs t) const;
  /// Apply one bucketed group; the caller holds the stripe exclusively.
  void apply_group(Shard& shard, const StagedGroup& group) const;
  /// Drain task body: apply every staged group of `shard` under one stripe
  /// acquisition, repeat until the staging buffer is empty.
  void drain_stage(Shard& shard);
  std::size_t drop_before_shard(Shard& shard, TimeNs cutoff,
                                const std::function<bool(const std::string&)>& pred);

  std::string name_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<core::TaskScheduler*> sched_{nullptr};
};

/// Multi-database storage — the unit the HTTP API serves. The database map
/// has its own (tiny) lock; all series-level concurrency lives in the
/// per-database shards. Databases are never destroyed, so Database pointers
/// stay valid for the storage's lifetime.
class Storage {
 public:
  Storage() = default;
  /// Override the stripe count of databases created by this storage
  /// (1 = the old global-lock behaviour, used as the bench baseline).
  explicit Storage(std::size_t shards_per_db) : shards_per_db_(shards_per_db) {}

  /// Get or create a database.
  Database& database(const std::string& name);

  /// Database lookup without creation (nullptr if absent). The returned
  /// pointer is stable; concurrent readers must go through snapshot().
  Database* find_database(const std::string& name);

  /// Acquire a read snapshot of one database. Empty when the database does
  /// not exist — test with operator bool.
  ReadSnapshot snapshot(const std::string& name) const;

  /// Attach (or detach with nullptr) the scheduler used for contended-write
  /// offload, applied to every existing and future database. Call before
  /// concurrent writers start; the scheduler must outlive all writes.
  void set_scheduler(core::TaskScheduler* sched);

  /// Apply a write batch (database created on demand).
  void write(const WriteBatch& batch);

  /// Convenience: write `points` into `db` at ns precision.
  void write(const std::string& db, const std::vector<Point>& points, TimeNs default_time);

  std::vector<std::string> databases() const;

  /// Aggregate size counters, sampled under per-database snapshots (feeds
  /// the tsdb_series/tsdb_samples gauges, /stats and /health).
  struct Totals {
    std::size_t databases = 0;
    std::size_t series = 0;
    std::size_t samples = 0;
  };
  Totals totals() const;

  /// Apply retention to every database.
  std::size_t drop_before(TimeNs cutoff);

  /// Apply measurement-filtered retention to every database.
  std::size_t drop_before_if(TimeNs cutoff,
                             const std::function<bool(const std::string&)>& pred);

 private:
  Database& get_or_create(const std::string& name);

  std::size_t shards_per_db_ = Database::kDefaultShards;
  core::TaskScheduler* sched_ LMS_GUARDED_BY(mu_) = nullptr;
  /// Guards dbs_ (map structure only). Ranked below the shard locks: the
  /// snapshot path resolves the Database under mu_, drops it, then takes the
  /// stripe locks.
  mutable core::sync::SharedMutex mu_{core::sync::Rank::kTsdbMap, "tsdb.storage.map"};
  std::map<std::string, std::unique_ptr<Database>> dbs_ LMS_GUARDED_BY(mu_);
};

}  // namespace lms::tsdb
