#pragma once

// Embedded time-series storage engine — the InfluxDB stand-in (§III-C).
//
// Model (matches InfluxDB 1.x):
//   database -> measurement -> series (unique tag set) -> field columns
// A series holds one column per field key; a column is a pair of parallel
// vectors (timestamps, values). Values can be floats, ints, bools or strings
// (events are string-valued points). Writes are typically time-ordered per
// series; out-of-order writes are handled by sorted insertion.
//
// Thread-safety: Storage is guarded by a shared_mutex — concurrent queries,
// exclusive writes. The HTTP façade in http_api.hpp exposes this engine with
// the InfluxDB wire API the rest of the stack expects.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "lms/lineproto/point.hpp"
#include "lms/util/status.hpp"

namespace lms::tsdb {

using lineproto::FieldValue;
using lineproto::Point;
using lineproto::Tag;
using util::TimeNs;

/// One timestamped value inside a field column.
struct Sample {
  TimeNs t = 0;
  FieldValue v;
};

/// A field column: parallel (timestamp, value) vectors sorted by time.
class Column {
 public:
  void append(TimeNs t, FieldValue v);
  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }

  const std::vector<TimeNs>& times() const { return times_; }
  const std::vector<FieldValue>& values() const { return values_; }

  /// Index of the first sample with time >= t.
  std::size_t lower_bound(TimeNs t) const;

  /// Drop all samples with time < cutoff; returns number dropped.
  std::size_t drop_before(TimeNs cutoff);

 private:
  std::vector<TimeNs> times_;
  std::vector<FieldValue> values_;
};

/// A series: one measurement + unique sorted tag set.
struct Series {
  std::string measurement;
  std::vector<Tag> tags;  // sorted by key
  std::map<std::string, Column> columns;

  std::string_view tag(std::string_view key) const;
};

/// A single database.
class Database {
 public:
  explicit Database(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Ingest one normalized point. Points with timestamp 0 get `default_time`.
  void write(const Point& point, TimeNs default_time);

  /// All series of a measurement (pointers remain valid until retention runs).
  std::vector<const Series*> series_of(std::string_view measurement) const;

  /// Series of a measurement filtered by required tag equalities.
  std::vector<const Series*> series_matching(
      std::string_view measurement, const std::vector<Tag>& required_tags) const;

  std::vector<std::string> measurements() const;
  std::vector<std::string> field_keys(std::string_view measurement) const;
  std::vector<std::string> tag_keys(std::string_view measurement) const;
  std::vector<std::string> tag_values(std::string_view measurement,
                                      std::string_view tag_key) const;

  /// Total stored samples across all columns.
  std::size_t sample_count() const;
  std::size_t series_count() const;

  /// Retention: drop samples older than cutoff; removes emptied series.
  std::size_t drop_before(TimeNs cutoff);

  /// Retention limited to measurements selected by `pred` — lets raw data
  /// expire while downsampled rollups persist (the §II data-volume story).
  std::size_t drop_before_if(TimeNs cutoff,
                             const std::function<bool(const std::string&)>& pred);

 private:
  struct SeriesKey {
    std::string measurement;
    std::vector<Tag> tags;
    bool operator<(const SeriesKey& other) const {
      if (measurement != other.measurement) return measurement < other.measurement;
      return tags < other.tags;
    }
  };
  std::string name_;
  std::map<SeriesKey, std::unique_ptr<Series>> series_;
  // measurement -> tag key -> tag value -> series pointers
  std::map<std::string, std::map<std::string, std::map<std::string, std::set<Series*>>>> index_;
  std::map<std::string, std::set<Series*>> by_measurement_;
};

/// Multi-database storage with a global lock, the unit the HTTP API serves.
class Storage {
 public:
  /// Get or create a database.
  Database& database(const std::string& name);

  /// Database lookup without creation.
  Database* find_database(const std::string& name);

  /// Lookup without taking the lock; the caller must already hold mutex().
  Database* find_database_unlocked(const std::string& name);

  /// Write a batch into a database (created on demand). Points without
  /// timestamps are stamped with `default_time`.
  void write(const std::string& db, const std::vector<Point>& points, TimeNs default_time);

  std::vector<std::string> databases() const;

  /// Apply retention to every database.
  std::size_t drop_before(TimeNs cutoff);

  /// Apply measurement-filtered retention to every database.
  std::size_t drop_before_if(TimeNs cutoff,
                             const std::function<bool(const std::string&)>& pred);

  /// Shared lock for readers executing queries against Database pointers.
  std::shared_mutex& mutex() { return mu_; }

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Database>> dbs_;
};

}  // namespace lms::tsdb
