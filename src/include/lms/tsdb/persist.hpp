#pragma once

// Snapshot persistence for the storage engine. The snapshot format is the
// stack's own wire format — line protocol, one section per database:
//
//   # lms-snapshot v1
//   # database: lms
//   cpu,hostname=h1 user_percent=42 1500000000000000000
//   ...
//   # database: user_alice
//   ...
//
// Using the line protocol keeps snapshots human-readable and loadable into
// a real InfluxDB with curl — the same integration-friendliness argument
// the paper makes for the transport (§III-A).

#include <string>

#include "lms/tsdb/storage.hpp"
#include "lms/util/status.hpp"

namespace lms::tsdb {

/// Write all databases to `path`. Atomic: writes "<path>.tmp" then renames.
util::Status save_snapshot(Storage& storage, const std::string& path);

/// Load a snapshot into the storage (merged into existing data). Returns
/// the number of points loaded.
util::Result<std::size_t> load_snapshot(Storage& storage, const std::string& path);

/// Serialize one database's full content as line protocol (used by
/// save_snapshot and the /dump HTTP endpoint). Concurrent callers must hold
/// a ReadSnapshot of `db` while this runs.
std::string dump_database(const Database& db);

}  // namespace lms::tsdb
