#pragma once

// Mini-InfluxQL query engine over tsdb::Storage.
//
// Supported statements (the subset the dashboard agent, the analysis layer
// and users of the stack need):
//
//   SELECT <expr>[, ...] FROM <measurement>
//     [WHERE <tag>='v' [AND ...] [AND time >= T] [AND time < T]]
//     [GROUP BY time(<dur>)[, <tagkey>...]] [fill(null|none|0|previous)]
//     [ORDER BY time DESC] [LIMIT n]
//   SHOW DATABASES | SHOW MEASUREMENTS | SHOW SERIES [FROM m] |
//   SHOW FIELD KEYS FROM m | SHOW TAG KEYS FROM m |
//   SHOW TAG VALUES FROM m WITH KEY = "k" |
//   EXPLAIN SELECT ...  (scan statistics only — series, points, shards)
//
//   <expr> := field | <agg>(field) [AS alias] | percentile(field, p)
//           | derivative(field[, <dur>])
//   <agg>  := mean|sum|min|max|count|first|last|stddev|median|spread|rate
//   time literals: integer nanoseconds, or now() - <dur>; <dur> like 90s,
//   10m, 1h, 500ms, 2d.

#include <optional>
#include <string>
#include <vector>

#include "lms/tsdb/storage.hpp"
#include "lms/util/status.hpp"

namespace lms::tsdb {

/// Parse a duration literal like "10s", "5m", "1h30m" -> nanoseconds.
util::Result<TimeNs> parse_duration(std::string_view text);

/// Render nanoseconds as the shortest duration literal ("600s" -> "10m").
std::string format_duration_literal(TimeNs ns);

enum class Aggregator {
  kNone,  // raw selection
  kMean,
  kSum,
  kMin,
  kMax,
  kCount,
  kFirst,
  kLast,
  kStddev,
  kMedian,
  kSpread,
  kPercentile,
  kDerivative,
  kRate,  // non-negative derivative
};

struct FieldExpr {
  Aggregator agg = Aggregator::kNone;
  std::string field;
  std::string alias;          // output column name
  double param = 0.0;         // percentile value
  TimeNs unit = 0;            // derivative unit (0 = per second)
};

enum class FillMode { kNone, kNull, kZero, kPrevious };

struct TagCondition {
  std::string key;
  std::string value;   // literal, or a glob when `glob` is set
  bool negated = false;  // key != 'value' / key !~ 'glob'
  bool glob = false;     // key =~ 'h*' (cannot use the tag index)
};

struct SelectStatement {
  std::vector<FieldExpr> fields;
  std::string measurement;
  std::vector<TagCondition> tag_conditions;
  std::optional<TimeNs> time_min;  // inclusive
  std::optional<TimeNs> time_max;  // exclusive
  std::optional<TimeNs> group_by_time;
  std::vector<std::string> group_by_tags;
  FillMode fill = FillMode::kNone;
  bool order_desc = false;
  std::optional<std::size_t> limit;
};

enum class StatementKind {
  kSelect,
  kShowDatabases,
  kShowMeasurements,
  kShowSeries,
  kShowFieldKeys,
  kShowTagKeys,
  kShowTagValues,
};

struct Statement {
  StatementKind kind = StatementKind::kSelect;
  SelectStatement select;     // for kSelect
  std::string measurement;    // for SHOW ... FROM m
  std::string with_key;       // for SHOW TAG VALUES
  /// "EXPLAIN SELECT ...": walk the same series/columns and report the scan
  /// statistics, but skip materializing result rows.
  bool explain = false;
};

/// Parse one statement. `now` resolves now() in time conditions.
util::Result<Statement> parse_query(std::string_view text, TimeNs now);

/// Query-engine introspection: what one statement actually scanned. Filled
/// by execute()/Engine::query() when the caller passes a stats out-param,
/// attached to the per-query span, the slow-query ring and EXPLAIN output.
struct QueryStats {
  std::uint64_t measurements_scanned = 0;  ///< >1 only for measurement globs
  std::uint64_t series_scanned = 0;        ///< series surviving tag filtering
  std::uint64_t points_examined = 0;       ///< samples gathered across field exprs
  std::uint64_t shards_touched = 0;        ///< distinct storage stripes hit
};

/// Marker value used in result rows for missing cells under fill(null);
/// encoded as JSON null by to_influx_json().
const FieldValue& null_cell();

/// True if a result cell is the fill(null) marker.
bool is_null_cell(const FieldValue& v);

/// One output series of a query.
struct ResultSeries {
  std::string name;
  std::vector<Tag> tags;                         // group-by tag values
  std::vector<std::string> columns;              // "time", then field aliases
  std::vector<std::vector<FieldValue>> values;   // rows; col 0 = time (int)
};

struct QueryResult {
  std::vector<ResultSeries> series;
};

/// Execute against a read snapshot (the snapshot keeps the series views
/// stable for the duration of the query). An empty snapshot is an error.
/// `stats`, when non-null, receives the scan statistics; for explain
/// statements the result is empty and only the statistics are produced.
util::Result<QueryResult> execute(const ReadSnapshot& snapshot, const Statement& stmt,
                                  QueryStats* stats = nullptr);

/// Execute against one database. Concurrency note: the caller must hold a
/// ReadSnapshot of this database (or be the sole thread touching it, as in
/// unit tests); prefer the snapshot overload.
util::Result<QueryResult> execute(const Database& db, const Statement& stmt,
                                  QueryStats* stats = nullptr);

/// Convenience façade combining storage, snapshotting, parsing and execution.
class Engine {
 public:
  explicit Engine(Storage& storage) : storage_(storage) {}

  /// Parse + execute `query` against database `db`.
  util::Result<QueryResult> query(const std::string& db, std::string_view query_text,
                                  TimeNs now, QueryStats* stats = nullptr);

  /// SHOW DATABASES works without a database.
  Storage& storage() { return storage_; }

 private:
  Storage& storage_;
};

/// Encode a result in the InfluxDB JSON wire shape:
/// {"results":[{"statement_id":0,"series":[{"name":..,"columns":[..],
///   "values":[[..],..]}]}]}
std::string to_influx_json(const QueryResult& result);
std::string influx_error_json(std::string_view message);

}  // namespace lms::tsdb
