#pragma once

// Shared /write request parsing for the TSDB HTTP façade and the metrics
// router. Both components accept the same InfluxDB-compatible endpoint
//   POST /write?db=<name>[&precision=ns|u|ms|s]   body: line protocol
// so the db/precision handling and the error responses (400 for a batch with
// no parseable line, 404 for an unknown database) are defined once here and
// are byte-identical on both services.

#include <string>
#include <vector>

#include "lms/net/http.hpp"
#include "lms/tsdb/storage.hpp"
#include "lms/util/status.hpp"

namespace lms::tsdb {

/// A parsed and validated write request: the WriteBatch to apply plus the
/// malformed lines the lenient parser skipped (dropped with a warning as
/// long as at least one point parsed, matching InfluxDB).
struct WriteRequest {
  WriteBatch batch;                  ///< db + timestamp_scale + points
  std::vector<std::string> errors;   ///< per-line parse errors (skipped lines)
};

/// Timestamp multiplier for an InfluxDB precision literal ("ns", "u"/"us",
/// "ms", "s", "m", "h"). Errors on anything else.
util::Result<TimeNs> parse_precision(std::string_view precision);

/// Parse a /write request: db from ?db= (falling back to `default_db`),
/// precision from ?precision=, body as lenient line protocol. Fails when the
/// precision is invalid or when the body yields no points despite parse
/// errors — in both cases the message is what write_error_response() turns
/// into the uniform 400 body. `default_time` stamps points without their own
/// timestamp (it is not scaled; it is already in ns).
util::Result<WriteRequest> parse_write_request(const net::HttpRequest& req,
                                               const std::string& default_db,
                                               TimeNs default_time);

/// The uniform 400 response for an unparseable write request (the message of
/// a failed parse_write_request()).
net::HttpResponse write_error_response(std::string_view message);

/// The uniform 404 response for a write addressed to a database that does
/// not exist (only reachable where database auto-creation is disabled).
net::HttpResponse unknown_db_response(const std::string& db);

}  // namespace lms::tsdb
