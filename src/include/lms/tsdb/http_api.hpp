#pragma once

// InfluxDB-compatible HTTP façade over the storage engine. This is the
// interface every other component of the stack programs against, so existing
// collectors (Diamond, curl cronjobs, Ganglia proxies — paper §III-A) can be
// pointed at it unchanged:
//   POST /write?db=<name>[&precision=ns]   body: line protocol batch
//   GET/POST /query?db=<name>&q=<influxql> -> InfluxDB JSON
//        (q may be "EXPLAIN SELECT ..." -> scan statistics, no rows)
//   GET  /ping                             -> 204
//   GET  /stats                            -> JSON engine statistics
//   GET  /metrics                          -> tsdb_* registry, text format
//   GET  /health, /ready                   -> JSON component status
//   GET  /trace/<id16hex>[?db=&format=waterfall]
//                                          -> assembled span tree (tracing)
//   GET  /debug/slow_queries               -> bounded slow-query ring
//   GET  /debug/logs[?trace=<id16hex>]     -> recent log ring, trace-filterable
//
// Engine statistics live in an lms::obs registry ("tsdb_*" instruments):
// ingest/query counters, write/query latency histograms, and sampled gauges
// for stored series/sample counts. Every query additionally runs under a
// per-query span whose note records what the engine scanned (shards /
// series / points), and queries slower than Options::slow_query_threshold
// are retained in a bounded ring served at /debug/slow_queries.

#include <deque>
#include <memory>
#include <string>

#include "lms/core/runnable.hpp"
#include "lms/core/sync.hpp"
#include "lms/core/taskscheduler.hpp"
#include "lms/net/health.hpp"
#include "lms/net/transport.hpp"
#include "lms/obs/metrics.hpp"
#include "lms/obs/traceexport.hpp"
#include "lms/tsdb/query.hpp"
#include "lms/tsdb/storage.hpp"
#include "lms/util/clock.hpp"
#include "lms/util/logging.hpp"

namespace lms::tsdb {

class HttpApi : public core::Runnable {
 public:
  struct Options {
    /// Retention window; 0 = keep everything.
    TimeNs retention = 0;
    /// Cadence of the periodic "tsdb.retention" enforcement task once the
    /// API is attached to a TaskScheduler (no-op while retention == 0).
    TimeNs retention_interval = util::kNanosPerMinute;
    /// Database auto-created for writes without ?db=.
    std::string default_db = "lms";
    /// Create databases on first write (InfluxDB-style). When false, writes
    /// to a database that was not pre-created via Storage::database() get
    /// the uniform 404 unknown-database response (tsdb/ingest.hpp).
    bool auto_create_dbs = true;
    /// Metrics registry for the tsdb_* instruments. nullptr = private
    /// registry (exact per-instance counts); pass a shared registry to fold
    /// the engine into a stack-wide self-scrape.
    obs::Registry* registry = nullptr;
    /// Queries at least this slow are kept in the /debug/slow_queries ring
    /// (with their scan statistics); 0 disables the ring.
    TimeNs slow_query_threshold = 10 * util::kNanosPerMilli;
    /// Bound of the slow-query ring (oldest evicted first).
    std::size_t slow_query_capacity = 64;
    /// Measurement the trace exporters write; what /trace/<id> assembles.
    std::string trace_measurement = std::string(obs::kTraceMeasurement);
    /// Recent-log ring served at /debug/logs (nullptr = endpoint disabled).
    /// The ring must outlive this API.
    util::LogRing* log_ring = nullptr;
  };

  HttpApi(Storage& storage, const util::Clock& clock);
  HttpApi(Storage& storage, const util::Clock& clock, Options options);
  ~HttpApi();

  /// The HTTP entry point; bind to an InprocNetwork or a TcpHttpServer.
  net::HttpHandler handler();

  /// Apply the retention policy now (drops samples older than now-retention).
  std::size_t enforce_retention();

  /// Component health report (storage volume, write-path activity). The
  /// engine is embedded, so liveness and readiness share the same checks.
  net::ComponentHealth health() const;

  /// Counters (registry-backed).
  std::uint64_t points_written() const { return points_written_.value(); }
  std::uint64_t write_requests() const { return write_requests_.value(); }
  std::uint64_t query_requests() const { return query_requests_.value(); }
  std::uint64_t parse_errors() const { return parse_errors_.value(); }
  std::uint64_t slow_queries() const { return slow_queries_.value(); }

  /// The registry holding the tsdb_* instruments.
  obs::Registry& registry() { return *registry_; }

  /// One retained slow query (see /debug/slow_queries).
  struct SlowQuery {
    std::string query;
    std::string db;
    TimeNs wall_ns = 0;          ///< when it ran (wall clock)
    std::int64_t duration_ns = 0;
    std::uint64_t trace_id = 0;  ///< active trace during the query, 0 = none
    QueryStats stats;
  };
  /// Snapshot of the ring, most recent first.
  std::vector<SlowQuery> slow_query_ring() const;

 protected:
  void on_attach(core::TaskScheduler& sched) override;
  void on_detach() override;

 private:
  net::HttpResponse handle_write(const net::HttpRequest& req);
  net::HttpResponse handle_query(const net::HttpRequest& req);
  net::HttpResponse handle_stats(const net::HttpRequest& req);
  net::HttpResponse handle_trace(const net::HttpRequest& req);
  net::HttpResponse handle_slow_queries(const net::HttpRequest& req);
  net::HttpResponse handle_debug_logs(const net::HttpRequest& req);

  void note_slow_query(std::string q, std::string db, std::int64_t duration_ns,
                       std::uint64_t trace_id, const QueryStats& stats);

  Storage& storage_;
  const util::Clock& clock_;
  Options options_;
  Engine engine_;
  std::unique_ptr<obs::Registry> own_registry_;  // when Options::registry == nullptr
  obs::Registry* registry_;
  obs::Counter& points_written_;
  obs::Counter& write_requests_;
  obs::Counter& query_requests_;
  obs::Counter& parse_errors_;
  obs::Counter& slow_queries_;
  obs::Counter& series_scanned_;
  obs::Counter& points_examined_;
  obs::Histogram& write_ns_;
  obs::Histogram& query_ns_;
  /// Leaf within the tsdb layer: taken only to append/copy the ring, after
  /// the query (and its shard locks) completed.
  mutable core::sync::Mutex slow_mu_{core::sync::Rank::kTsdbAux, "tsdb.slowlog"};
  std::deque<SlowQuery> slow_ring_ LMS_GUARDED_BY(slow_mu_);
  /// Duty-cycle accounting lives on the periodic task's own LoopStats row
  /// ("tsdb.retention" in /debug/runtime) once attached.
  core::PeriodicTaskHandle retention_task_;
};

}  // namespace lms::tsdb
