#pragma once

// InfluxDB-compatible HTTP façade over the storage engine. This is the
// interface every other component of the stack programs against, so existing
// collectors (Diamond, curl cronjobs, Ganglia proxies — paper §III-A) can be
// pointed at it unchanged:
//   POST /write?db=<name>[&precision=ns]   body: line protocol batch
//   GET/POST /query?db=<name>&q=<influxql> -> InfluxDB JSON
//   GET  /ping                             -> 204
//   GET  /stats                            -> JSON engine statistics

#include <memory>
#include <string>

#include "lms/net/transport.hpp"
#include "lms/tsdb/query.hpp"
#include "lms/tsdb/storage.hpp"
#include "lms/util/clock.hpp"

namespace lms::tsdb {

class HttpApi {
 public:
  struct Options {
    /// Retention window; 0 = keep everything.
    TimeNs retention = 0;
    /// Database auto-created for writes without ?db=.
    std::string default_db = "lms";
  };

  HttpApi(Storage& storage, const util::Clock& clock);
  HttpApi(Storage& storage, const util::Clock& clock, Options options);

  /// The HTTP entry point; bind to an InprocNetwork or a TcpHttpServer.
  net::HttpHandler handler();

  /// Apply the retention policy now (drops samples older than now-retention).
  std::size_t enforce_retention();

  /// Counters.
  std::uint64_t points_written() const { return points_written_.load(); }
  std::uint64_t write_requests() const { return write_requests_.load(); }
  std::uint64_t query_requests() const { return query_requests_.load(); }
  std::uint64_t parse_errors() const { return parse_errors_.load(); }

 private:
  net::HttpResponse handle_write(const net::HttpRequest& req);
  net::HttpResponse handle_query(const net::HttpRequest& req);
  net::HttpResponse handle_stats(const net::HttpRequest& req);

  Storage& storage_;
  const util::Clock& clock_;
  Options options_;
  Engine engine_;
  std::atomic<std::uint64_t> points_written_{0};
  std::atomic<std::uint64_t> write_requests_{0};
  std::atomic<std::uint64_t> query_requests_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
};

}  // namespace lms::tsdb
