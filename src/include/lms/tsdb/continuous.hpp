#pragma once

// Continuous queries — the InfluxDB mechanism the paper's deployment relies
// on to keep "the generated data volume under control" (§II): periodically
// downsample raw measurements into coarser rollup measurements, so raw data
// can be expired by a short retention window while rollups are kept.
//
// A ContinuousQuery is the moral equivalent of
//   CREATE CONTINUOUS QUERY cq ON db BEGIN
//     SELECT mean(f) INTO m_rollup FROM m GROUP BY time(5m), hostname
//   END
// The CqRunner executes due queries against new data only (watermark per
// query, with a configurable lag so late points are included).

#include <string>
#include <vector>

#include "lms/core/runtime.hpp"
#include "lms/tsdb/query.hpp"
#include "lms/tsdb/storage.hpp"

namespace lms::tsdb {

struct ContinuousQuery {
  std::string name;
  std::string source_measurement;
  std::string target_measurement;
  /// Field aggregations; output field key is "<field>_<agg>" (e.g.
  /// "user_percent_mean").
  std::vector<std::pair<std::string, Aggregator>> fields;
  TimeNs window = 5 * util::kNanosPerMinute;
  /// Tags preserved on the rollup series (grouped by).
  std::vector<std::string> group_tags = {"hostname", "jobid"};
};

class CqRunner {
 public:
  struct Options {
    /// Windows are only processed once `lag` past their end, so straggling
    /// points still land in the right rollup.
    TimeNs lag = 30 * util::kNanosPerSecond;
  };

  CqRunner(Storage& storage, std::string database);
  CqRunner(Storage& storage, std::string database, Options options);

  void add(ContinuousQuery query);
  std::vector<ContinuousQuery> queries() const;

  /// Execute every query over (watermark, now - lag], writing rollup points
  /// back into the database. Returns the number of rollup points written.
  std::size_t run(TimeNs now);

 private:
  struct Registered {
    ContinuousQuery query;
    TimeNs watermark = 0;  ///< everything before this is processed
  };
  std::size_t run_one(Registered& registered, TimeNs now);

  Storage& storage_;
  std::string database_;
  Options options_;
  std::vector<Registered> queries_;
  core::runtime::LoopStats loop_stats_{"tsdb.cq_runner"};
};

}  // namespace lms::tsdb
