#pragma once

// Continuous queries — the InfluxDB mechanism the paper's deployment relies
// on to keep "the generated data volume under control" (§II): periodically
// downsample raw measurements into coarser rollup measurements, so raw data
// can be expired by a short retention window while rollups are kept.
//
// A ContinuousQuery is the moral equivalent of
//   CREATE CONTINUOUS QUERY cq ON db BEGIN
//     SELECT mean(f) INTO m_rollup FROM m GROUP BY time(5m), hostname
//   END
// The CqRunner executes due queries against new data only (watermark per
// query, with a configurable lag so late points are included).

#include <string>
#include <vector>

#include "lms/core/runnable.hpp"
#include "lms/core/taskscheduler.hpp"
#include "lms/tsdb/query.hpp"
#include "lms/tsdb/storage.hpp"

namespace lms::tsdb {

struct ContinuousQuery {
  std::string name;
  std::string source_measurement;
  std::string target_measurement;
  /// Field aggregations; output field key is "<field>_<agg>" (e.g.
  /// "user_percent_mean").
  std::vector<std::pair<std::string, Aggregator>> fields;
  TimeNs window = 5 * util::kNanosPerMinute;
  /// Tags preserved on the rollup series (grouped by).
  std::vector<std::string> group_tags = {"hostname", "jobid"};
};

class CqRunner : public core::Runnable {
 public:
  struct Options {
    /// Windows are only processed once `lag` past their end, so straggling
    /// points still land in the right rollup.
    TimeNs lag = 30 * util::kNanosPerSecond;
    /// Cadence of the periodic "tsdb.cq_runner" task once attached.
    TimeNs run_interval = 30 * util::kNanosPerSecond;
    /// Clock the periodic task evaluates against. nullptr = wall clock.
    const util::Clock* clock = nullptr;
  };

  CqRunner(Storage& storage, std::string database);
  CqRunner(Storage& storage, std::string database, Options options);
  ~CqRunner();

  void add(ContinuousQuery query);
  std::vector<ContinuousQuery> queries() const;

  /// Execute every query over (watermark, now - lag], writing rollup points
  /// back into the database. Returns the number of rollup points written.
  /// Owners may call this directly (sim-clocked harnesses) or attach the
  /// runner to a TaskScheduler for a periodic cadence.
  std::size_t run(TimeNs now);

 protected:
  void on_attach(core::TaskScheduler& sched) override;
  void on_detach() override;

 private:
  struct Registered {
    ContinuousQuery query;
    TimeNs watermark = 0;  ///< everything before this is processed
  };
  std::size_t run_one(Registered& registered, TimeNs now);

  Storage& storage_;
  std::string database_;
  Options options_;
  std::vector<Registered> queries_;
  /// Duty-cycle accounting lives on the periodic task's own LoopStats row
  /// ("tsdb.cq_runner" in /debug/runtime) once attached.
  core::PeriodicTaskHandle task_;
};

}  // namespace lms::tsdb
