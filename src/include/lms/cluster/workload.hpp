#pragma once

// Workload models: what runs inside the jobs of the simulated cluster.
//
// A Workload maps (node, elapsed time) to a NodeActivity — the execution
// profile that drives the HPM counter simulator and the simulated kernel —
// and may report application-level metrics through libusermetric. The
// library covers the application classes the paper's analysis section must
// distinguish: well-behaved compute- and bandwidth-bound codes, the miniMD
// proxy app of Fig. 3, and the pathological cases of §V/Fig. 4 (idle job,
// computation break, exceeded memory, load imbalance, scalar/latency-bound
// codes with optimization potential).

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lms/hpm/simulator.hpp"
#include "lms/sysmon/kernel.hpp"
#include "lms/usermetric/usermetric.hpp"
#include "lms/util/rng.hpp"

namespace lms::cluster {

/// Everything a node "does" during one simulation step.
struct NodeActivity {
  hpm::NodeLoad hpm;
  sysmon::KernelLoad kernel;
};

/// One marked phase of a simulation step. Instrumented workloads decompose
/// each step into named phases; with profiling enabled the harness brackets
/// every phase in a region marker and advances the counter simulator with
/// the phase's activity for `fraction` of the step, so the HPM deltas (and
/// the phase's application values) attribute to the region.
struct Phase {
  std::string region;     ///< region-marker name ("force", "matmul", ...)
  double fraction = 1.0;  ///< share of the step; phases should sum to ~1
  NodeActivity activity;
  /// Application-level values attributed inside the open region via
  /// Profiler::value() — the in-region usermetric path.
  std::vector<std::pair<std::string, double>> values;
};

class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string name() const = 0;

  /// Activity of `node_index` (of `node_count`) at `elapsed` since job start.
  virtual NodeActivity activity(int node_index, int node_count, util::TimeNs elapsed,
                                const hpm::CounterArchitecture& arch, util::Rng& rng) = 0;

  /// Phase decomposition of one step for region profiling. Default: a
  /// single phase named after the workload wrapping activity(), so every
  /// workload is profilable at step granularity; instrumented workloads
  /// override with their real phase structure.
  virtual std::vector<Phase> phases(int node_index, int node_count, util::TimeNs elapsed,
                                    const hpm::CounterArchitecture& arch, util::Rng& rng);

  /// Application-level reporting hook, called once per simulation step per
  /// node with the job's libusermetric client. Default: no app-level data.
  virtual void report(usermetric::UserMetricClient& client, int node_index,
                      util::TimeNs elapsed, util::TimeNs now);
};

/// Fill an activity with a homogeneous compute profile; the building block
/// the concrete workloads start from.
NodeActivity make_uniform_activity(const hpm::CounterArchitecture& arch, double cpu_fraction,
                                   double ipc, double flops_dp_fraction_of_peak,
                                   double simd_fraction, double membw_fraction_of_peak,
                                   double mem_used_bytes, util::Rng& rng);

// ---------------------------------------------------------------- factory

/// Create a workload by name:
///  "minimd"         miniMD proxy (Fig. 3) — MD loop with app-level metrics
///  "dgemm"          compute-bound, highly vectorized
///  "stream"         memory-bandwidth-bound (triad)
///  "idle"           allocated but idle (pathological)
///  "compute_break"  compute with a long idle break in the middle (Fig. 4)
///  "memleak"        memory footprint grows to node capacity (pathological)
///  "imbalanced"     node 0 carries most of the work (load imbalance)
///  "scalar"         unvectorized compute (optimization potential)
///  "latency"        pointer-chasing, latency-bound
///  "ml_inference"   batched serving loop (preprocess/matmul/softmax/post)
///  "stencil2d"      2D stencil sweep (halo exchange/sweep/reduce)
///  "sortmerge"      out-of-core sort (partition/sort/merge)
/// The last three (and minimd) are phase-instrumented: phases() returns
/// their real region structure for the profiling SDK.
std::unique_ptr<Workload> make_workload(const std::string& name, std::uint64_t seed);

/// Parameterized Fig. 4 workload: compute for `compute_before`, stall for
/// `break_duration`, then compute again. ("compute_break" uses 10/12 min.)
std::unique_ptr<Workload> make_compute_break(util::TimeNs compute_before,
                                             util::TimeNs break_duration);

/// All registered workload names.
std::vector<std::string> workload_names();

}  // namespace lms::cluster
