#pragma once

// Full-stack simulation harness: the Fig. 1 architecture in one process.
//
//   nodes (kernel + HPM counters + host agent)
//      -> metrics router (tag store, enrichment, duplication, PUB/SUB)
//      -> time-series database (InfluxDB-compatible HTTP API)
//   scheduler -> job notifier -> router job signals
//   dashboard agent <- database, router job list
//   stream analyzer <- router PUB/SUB (online pathology detection)
//
// Everything runs on a virtual clock over the in-process transport, so an
// hour of cluster time simulates in well under a second and every test and
// bench is deterministic. All periodic background work (router ingest
// flusher, self-scrape, alert evaluation, continuous queries, retention)
// runs as periodic tasks on one manual-mode core::TaskScheduler that
// step_once() advances along the sim clock — the same Runnable/
// submit_periodic API the real deployment drives with worker threads.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lms/alert/evaluator.hpp"
#include "lms/analysis/aggregator.hpp"
#include "lms/analysis/online.hpp"
#include "lms/analysis/recorder.hpp"
#include "lms/analysis/report.hpp"
#include "lms/cluster/workload.hpp"
#include "lms/collector/agent.hpp"
#include "lms/core/router.hpp"
#include "lms/core/taskscheduler.hpp"
#include "lms/dashboard/agent.hpp"
#include "lms/hpm/monitor.hpp"
#include "lms/obs/cpuprofiler.hpp"
#include "lms/obs/metrics.hpp"
#include "lms/obs/selfscrape.hpp"
#include "lms/obs/trace.hpp"
#include "lms/obs/traceexport.hpp"
#include "lms/profiling/profiler.hpp"
#include "lms/sched/scheduler.hpp"
#include "lms/tsdb/continuous.hpp"
#include "lms/tsdb/http_api.hpp"

namespace lms::cluster {

class ClusterHarness {
 public:
  struct Options {
    int nodes = 4;
    std::string node_prefix = "h";  ///< hosts h1..hN, like Fig. 4
    const hpm::CounterArchitecture* arch = &hpm::simx86();
    util::TimeNs step = util::kNanosPerSecond;          ///< simulation step
    util::TimeNs collect_interval = 10 * util::kNanosPerSecond;
    util::TimeNs hpm_interval = 10 * util::kNanosPerSecond;
    std::vector<std::string> hpm_groups = {"MEM_DP", "FLOPS_DP", "BRANCH", "ENERGY"};
    std::string database = "lms";
    bool duplicate_per_user = false;
    /// Route writes through the router's batched async ingest queues. The
    /// harness drains them synchronously at the end of every step
    /// (flush_ingest()), so simulations stay deterministic while still
    /// exercising the queued write path.
    bool async_ingest = false;
    double counter_noise_sigma = 0.01;
    std::uint64_t seed = 42;
    util::TimeNs start_time = 1'500'000'000LL * util::kNanosPerSecond;  // epoch offset
    /// Attach a job-level stream aggregator to the PUB/SUB tap (§III-B).
    bool enable_aggregator = false;
    util::TimeNs aggregator_window = util::kNanosPerMinute;
    /// Downsample cpu + likwid_mem_dp into 5-minute rollups and expire raw
    /// data older than `retention` (0 = keep raw forever).
    bool enable_rollups = false;
    util::TimeNs retention = 0;
    /// Record online findings as "alerts" annotation events in the DB.
    /// Note: this drains the online engine's findings each step; read them
    /// from the alerts measurement instead of take_findings().
    bool record_findings = false;
    /// Periodically write the shared metrics registry back through the
    /// router as "lms_internal" points — the stack monitoring itself
    /// (driven from the sim clock, so it is deterministic like the rest).
    bool enable_self_scrape = false;
    util::TimeNs self_scrape_interval = util::kNanosPerMinute;
    /// Run an alert::Evaluator against the storage every alert_interval,
    /// with a deadman absence watch per node (fires when a host stops
    /// writing for deadman_window). Transitions land in "lms_alerts" and on
    /// the "alerts" PUB/SUB topic.
    bool enable_alerts = false;
    util::TimeNs alert_interval = 30 * util::kNanosPerSecond;
    util::TimeNs deadman_window = 2 * util::kNanosPerMinute;
    /// Distributed tracing: set the process-global head-sampling rate and
    /// wire a TraceExporter that drains the span recorder through the
    /// router into the shared TSDB. The exporter's real-time thread is
    /// never started — traces land deterministically via drain_traces().
    bool enable_tracing = false;
    double trace_sample_rate = 1.0;
    /// Region profiling: every job node gets a profiling::Profiler with an
    /// HpmRegionCollector over that node's simulated PMU; each step runs
    /// the workload's phases() inside region markers and the per-region
    /// aggregates flush through the router as "lms_regions" points (tagged
    /// jobid/user on top of region/thread/hostname/group) every
    /// profiling_flush_interval and at job end.
    bool enable_profiling = false;
    std::string profiling_group = "MEM_DP";
    util::TimeNs profiling_flush_interval = 30 * util::kNanosPerSecond;
    /// Additionally emit an obs::Span per region instance (requires
    /// enable_tracing to land anywhere).
    bool profiling_spans = false;
    /// Continuous CPU profiling in deterministic mode: start the
    /// process-wide obs::CpuProfiler timer-less (no SIGPROF — the harness
    /// captures one sample per simulation step via sample_once()), fold on
    /// the manual scheduler's periodic task, and export the top stacks
    /// through the router as "lms_profiles" points stamped from the sim
    /// clock. drain_profiles() forces an export mid-test.
    bool enable_cpuprofile = false;
    int cpuprofile_hz = 99;  ///< recorded in stats; no real timer fires
    util::TimeNs cpuprofile_export_interval = 30 * util::kNanosPerSecond;
    std::size_t cpuprofile_top_k = 20;
  };

  explicit ClusterHarness(Options options);
  ~ClusterHarness();
  ClusterHarness(const ClusterHarness&) = delete;
  ClusterHarness& operator=(const ClusterHarness&) = delete;

  /// Submit a job running the named workload (see make_workload) on `nodes`
  /// nodes for `duration`. Returns the scheduler job id.
  int submit(const std::string& workload, const std::string& user, int nodes,
             util::TimeNs duration, util::TimeNs walltime_limit = 0);

  /// Submit with an explicit workload instance.
  int submit_workload(std::unique_ptr<Workload> workload, const std::string& user, int nodes,
                      util::TimeNs duration, util::TimeNs walltime_limit = 0);

  /// Advance the simulation by `duration` in steps of options.step.
  void run_for(util::TimeNs duration);

  /// Advance until the given job finished (bounded by `max_sim_time`).
  bool run_until_done(int job_id, util::TimeNs max_sim_time);

  // ---- component access ----
  util::SimClock& clock() { return clock_; }
  util::TimeNs now() const { return clock_.now(); }
  tsdb::Storage& storage() { return storage_; }
  tsdb::HttpApi& db_api() { return *db_api_; }
  core::MetricsRouter& router() { return *router_; }
  sched::Scheduler& scheduler() { return *scheduler_; }
  dashboard::DashboardAgent& dashboards() { return *dashboard_agent_; }
  analysis::OnlineRuleEngine& online_engine() { return analyzer_->engine(); }
  analysis::StreamAggregator* aggregator() { return aggregator_.get(); }
  tsdb::CqRunner* cq_runner() { return cq_runner_.get(); }
  const analysis::MetricFetcher& fetcher() const { return *fetcher_; }
  const analysis::JobReporter& reporter() const { return *reporter_; }
  net::PubSubBroker& broker() { return broker_; }
  net::InprocNetwork& network() { return network_; }
  net::HttpClient& client() { return *client_; }
  /// The manual-mode scheduler every periodic component is attached to;
  /// step_once() advances it to the sim clock at the end of each step.
  core::TaskScheduler& task_scheduler() { return sched_; }
  /// The stack-wide metrics registry every component reports into.
  obs::Registry& registry() { return registry_; }
  /// Present iff Options::enable_self_scrape.
  obs::SelfScrape* self_scrape() { return self_scrape_.get(); }
  /// Present iff Options::enable_alerts.
  alert::Evaluator* alerts() { return alert_evaluator_.get(); }
  /// Present iff Options::enable_tracing.
  obs::TraceExporter* trace_exporter() { return trace_exporter_.get(); }
  /// Present iff Options::enable_cpuprofile (and the process-wide profiler
  /// was free to start).
  obs::ProfileExporter* profile_exporter() { return profile_exporter_.get(); }
  const Options& options() const { return options_; }

  /// Export every finished span into the TSDB now (and land it through the
  /// async ingest queues when those are on), so a test can assemble traces
  /// deterministically right after the spans of interest closed. Returns
  /// the number of spans exported by this call. No-op without tracing.
  std::size_t drain_traces();

  /// Fold pending CPU samples and export the current top stacks into the
  /// TSDB now (landing them through the async ingest queues when those are
  /// on). Returns the number of stacks exported by this call. No-op without
  /// enable_cpuprofile.
  std::size_t drain_profiles();

  /// Simulate an agent crash: an inactive node's collector stops ticking
  /// (its kernel keeps running), so its metrics stop arriving and the
  /// deadman watch fires. Reactivating resumes collection and delivery.
  void set_node_active(const std::string& name, bool active);

  /// Hostnames of the simulated nodes.
  const std::vector<std::string>& node_names() const { return node_names_; }

  /// Job metadata for analysis after completion.
  struct JobRecord {
    int id = 0;
    std::string workload;
    std::string user;
    std::vector<std::string> nodes;
    util::TimeNs start_time = 0;
    util::TimeNs end_time = 0;  ///< 0 while running
  };
  const JobRecord* job_record(int job_id) const;

  /// In-process endpoint names. Each node's agent is additionally bound as
  /// "<kAgentEndpointPrefix><hostname>" (e.g. "agent-h1") for health probes.
  static constexpr const char* kDbEndpoint = "tsdb";
  static constexpr const char* kRouterEndpoint = "router";
  static constexpr const char* kDashboardEndpoint = "grafana";
  static constexpr const char* kAgentEndpointPrefix = "agent-";

 private:
  struct SimNode {
    std::string name;
    std::unique_ptr<sysmon::SimulatedKernel> kernel;
    std::unique_ptr<hpm::CounterSimulator> counters;
    std::unique_ptr<collector::HostAgent> agent;
    int job_id = 0;       ///< 0 = idle
    int job_node_index = 0;
    bool active = true;   ///< false = agent crashed (deadman scenario)
  };
  struct ActiveJob {
    JobRecord record;
    std::unique_ptr<Workload> workload;
    std::unique_ptr<usermetric::UserMetricClient> user_client;
    util::Rng rng;
    /// Per-node region profilers, keyed by hostname (enable_profiling).
    std::map<std::string, std::unique_ptr<profiling::Profiler>> profilers;
    util::TimeNs last_profile_flush = 0;
  };

  void on_job_start(const sched::Job& job);
  void on_job_end(const sched::Job& job);
  void step_once();
  void run_phases(SimNode& node, ActiveJob& job, util::TimeNs now);
  void flush_profilers(ActiveJob& job, util::TimeNs now);

  Options options_;
  util::SimClock clock_;
  obs::Registry registry_;  // declared before the components that report into it
  // Trace-ring gauges (spans recorded/evicted/retained) ride the same
  // self-scrape as every other instrument; RAII so the callbacks can never
  // outlive the registry.
  obs::ScopedTraceMetrics trace_metrics_{registry_};
  double prev_trace_sample_rate_ = 1.0;
  net::InprocNetwork network_;
  std::unique_ptr<net::InprocHttpClient> client_;
  /// Manual-mode runtime for all periodic tasks. Declared before every
  /// component that attaches to it, so components detach (cancelling their
  /// tasks) before the scheduler is torn down.
  core::TaskScheduler sched_;

  tsdb::Storage storage_;
  std::unique_ptr<tsdb::HttpApi> db_api_;
  net::PubSubBroker broker_;
  std::unique_ptr<core::MetricsRouter> router_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::unique_ptr<sched::JobNotifier> notifier_;
  std::unique_ptr<analysis::MetricFetcher> fetcher_;
  std::unique_ptr<analysis::JobReporter> reporter_;
  std::unique_ptr<dashboard::DashboardAgent> dashboard_agent_;
  std::unique_ptr<analysis::StreamAnalyzer> analyzer_;
  std::unique_ptr<analysis::StreamAggregator> aggregator_;
  std::unique_ptr<analysis::FindingRecorder> finding_recorder_;
  std::unique_ptr<tsdb::CqRunner> cq_runner_;
  std::unique_ptr<obs::SelfScrape> self_scrape_;
  std::unique_ptr<obs::TraceExporter> trace_exporter_;
  std::unique_ptr<obs::ProfileExporter> profile_exporter_;
  /// True when this harness started the process-wide CpuProfiler (and so
  /// owns stopping + clearing it on teardown).
  bool cpuprofile_started_ = false;
  std::unique_ptr<alert::Evaluator> alert_evaluator_;
  /// Raw-data expiry with the rollup/job-aggregate filter; runs once a
  /// simulated minute (Options::retention > 0 only).
  core::PeriodicTaskHandle retention_task_;

  hpm::GroupRegistry groups_;
  std::vector<std::string> node_names_;
  std::vector<SimNode> nodes_;
  std::map<int, ActiveJob> active_jobs_;
  std::map<int, JobRecord> finished_jobs_;
  std::map<int, std::unique_ptr<Workload>> pending_workloads_;
  NodeActivity idle_activity_;
  util::Rng rng_;
};

}  // namespace lms::cluster
