#pragma once

// A small molecular-dynamics proxy application in the spirit of Mantevo's
// miniMD: Lennard-Jones particles in a periodic box integrated with velocity
// Verlet, reduced units. It is a real (tiny) MD engine — the thermodynamic
// observables it reports through libusermetric (Fig. 3: runtime per 100
// iterations, pressure, temperature, energy) come from actual dynamics, so
// their time series have the right physical shape (equilibration transient,
// then fluctuation around steady values).

#include <cstdint>
#include <vector>

#include "lms/util/rng.hpp"

namespace lms::cluster {

class MiniMd {
 public:
  struct Params {
    int cells_per_side = 4;     ///< N = 4 * cells^3 atoms (fcc lattice)
    double density = 0.8442;    ///< reduced density
    double temperature = 1.44;  ///< initial reduced temperature
    double cutoff = 2.5;        ///< LJ cutoff radius
    double dt = 0.005;          ///< integration time step
  };

  MiniMd(Params params, std::uint64_t seed);

  /// Integrate `n` velocity-Verlet steps.
  void step(int n = 1);

  int natoms() const { return static_cast<int>(x_.size() / 3); }
  std::int64_t steps_done() const { return steps_; }
  double box_length() const { return box_; }

  // Observables (reduced units).
  double temperature() const;
  double kinetic_energy() const;      ///< per atom
  double potential_energy() const;    ///< per atom
  double total_energy() const;        ///< per atom
  double pressure() const;

 private:
  void compute_forces();
  void initialize_lattice();
  void initialize_velocities(std::uint64_t seed);

  Params params_;
  double box_ = 0.0;
  std::vector<double> x_, v_, f_;  // 3N each
  double pe_ = 0.0;                // total potential energy
  double virial_ = 0.0;            // sum r.F over pairs
  std::int64_t steps_ = 0;
};

}  // namespace lms::cluster
