#pragma once

// Arithmetic formula evaluator for derived HPM metrics.
//
// LIKWID performance groups define derived metrics as infix formulas over
// counter slot names, e.g.
//   "1.0E-06*(PMC0*2.0+PMC1*4.0+PMC2)/time"
// This module compiles such formulas once (shunting-yard to RPN) and
// evaluates them against a variable binding per measurement interval.
// Supported: + - * / ^, unary minus, parentheses, numeric literals
// (including scientific notation), identifiers, and min/max/abs calls.

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lms/util/status.hpp"

namespace lms::hpm {

/// Variable bindings for evaluation.
using VarMap = std::map<std::string, double, std::less<>>;

/// A compiled formula.
class Formula {
 public:
  /// Compile an infix expression. Fails on syntax errors.
  static util::Result<Formula> compile(std::string_view text);

  /// Evaluate with the given variables. Unbound variables fail; division by
  /// zero yields 0 (LIKWID semantics: metrics from zero counts read as 0).
  util::Result<double> evaluate(const VarMap& vars) const;

  /// Names of all variables referenced by the formula.
  const std::vector<std::string>& variables() const { return variables_; }

  /// The original source text.
  const std::string& text() const { return text_; }

 private:
  enum class OpCode { kPush, kLoad, kAdd, kSub, kMul, kDiv, kPow, kNeg, kMin, kMax, kAbs };
  struct Instr {
    OpCode op;
    double literal = 0.0;
    int var_index = -1;
  };
  std::string text_;
  std::vector<Instr> program_;
  std::vector<std::string> variables_;
};

}  // namespace lms::hpm
