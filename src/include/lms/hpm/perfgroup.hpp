#pragma once

// Performance groups — the portability layer of LIKWID (paper §II): a named
// set of counter slot -> event assignments plus derived-metric formulas.
// Group definitions use the LIKWID text format:
//
//   SHORT Double Precision MFLOP/s
//   EVENTSET
//   FIXC0 INSTR_RETIRED_ANY
//   PMC0  FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE
//   METRICS
//   Runtime (RDTSC) [s] time
//   DP [MFLOP/s] 1.0E-06*(PMC0*4.0+PMC1)/time
//   LONG
//   Formulas: ...
//
// A metric line is "<name tokens...> <formula>", formula = last token.
// Formula variables: counter slots, plus time [s], inverseClock [s],
// num_hwthreads, num_sockets.

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lms/hpm/arch.hpp"
#include "lms/hpm/formula.hpp"
#include "lms/util/status.hpp"

namespace lms::hpm {

struct GroupMetric {
  std::string name;       // "DP [MFLOP/s]"
  std::string field_key;  // sanitized: "dp_mflop_per_s"
  Formula formula;
};

struct EventAssignment {
  std::string slot;   // "PMC0"
  std::string event;  // "FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE"
};

class PerfGroup {
 public:
  /// Parse the LIKWID text format and validate against an architecture.
  static util::Result<PerfGroup> parse(std::string_view name, std::string_view text,
                                       const CounterArchitecture& arch);

  const std::string& name() const { return name_; }
  const std::string& short_description() const { return short_; }
  const std::string& long_description() const { return long_; }
  const std::vector<EventAssignment>& events() const { return events_; }
  const std::vector<GroupMetric>& metrics() const { return metrics_; }

  /// Measurement name used when publishing ("likwid_flops_dp").
  std::string measurement() const;

 private:
  std::string name_;
  std::string short_;
  std::string long_;
  std::vector<EventAssignment> events_;
  std::vector<GroupMetric> metrics_;
};

/// Convert a metric display name to a line-protocol field key.
std::string sanitize_field_key(std::string_view metric_name);

/// Registry of groups for one architecture, preloaded with the built-ins:
/// CLOCK, CPI, FLOPS_DP, FLOPS_SP, MEM, MEM_DP, L2, L3, BRANCH, DATA,
/// ENERGY, TLB_DATA.
class GroupRegistry {
 public:
  explicit GroupRegistry(const CounterArchitecture& arch);

  /// Add or replace a group from its text definition.
  util::Status add(std::string_view name, std::string_view text);

  const PerfGroup* find(std::string_view name) const;
  std::vector<std::string> names() const;
  const CounterArchitecture& architecture() const { return arch_; }

 private:
  const CounterArchitecture& arch_;
  std::map<std::string, PerfGroup, std::less<>> groups_;
};

/// Raw text of a built-in group (empty if unknown); exposed for tests and
/// for sites that want to derive custom groups from the shipped ones.
std::string_view builtin_group_text(std::string_view name);

/// Names of all built-in groups.
std::vector<std::string> builtin_group_names();

}  // namespace lms::hpm
