#pragma once

// The HPM monitor: the likwid-agent equivalent that periodically reads
// counters for a performance group, computes the group's derived metrics and
// emits them as line-protocol points ("likwid_<group>" measurements).
//
// When several groups are configured they are multiplexed round-robin, one
// group per sampling interval — exactly how LIKWID time-shares the limited
// PMC slots. The MEM_DP combined group exists so the pathology rules never
// pay multiplexing skew between FP rate and memory bandwidth.

#include <string>
#include <vector>

#include "lms/hpm/perfgroup.hpp"
#include "lms/hpm/simulator.hpp"
#include "lms/lineproto/point.hpp"

namespace lms::hpm {

class HpmMonitor {
 public:
  struct Options {
    std::vector<std::string> groups;  ///< groups to multiplex, in order
    std::string hostname;
    /// Additionally emit one point per socket (tag "socket"="0"/"1"/...)
    /// with the group's metrics evaluated over that socket's cores and
    /// uncore — makes NUMA imbalance visible.
    bool per_socket_fields = false;
  };

  /// Fails if any configured group is unknown in the registry.
  static util::Result<HpmMonitor> create(const GroupRegistry& registry,
                                         const CounterSimulator& sim, Options options);

  /// Read counters for the active group over the interval since the last
  /// sample, rotate to the next group, and return the metric points.
  /// The first call only establishes the baseline and returns no points.
  std::vector<lineproto::Point> sample(util::TimeNs now);

  /// Group that will be reported by the next sample() call.
  const std::string& active_group() const { return groups_[active_].group->name(); }

  /// Evaluate one group over an explicit counter delta window without
  /// touching the rotation state (used by tests and the analysis layer).
  /// `socket` restricts the evaluation to one socket's cores and uncore
  /// units (-1 = whole node).
  lineproto::Point evaluate_group(const PerfGroup& group,
                                  const std::vector<std::vector<std::uint64_t>>& before,
                                  const std::vector<std::vector<std::uint64_t>>& after,
                                  util::TimeNs t0, util::TimeNs t1, int socket = -1) const;

  /// Per-slot counter deltas of `group` between two snapshots — the
  /// variable bindings evaluate_group feeds to the metric formulas (wrap
  /// handled, RAPL slots converted to joules). Exposed so region-scoped
  /// consumers (the profiling SDK) can accumulate raw slot counts and run
  /// the formulas once over the sums.
  VarMap slot_deltas(const PerfGroup& group,
                     const std::vector<std::vector<std::uint64_t>>& before,
                     const std::vector<std::vector<std::uint64_t>>& after,
                     int socket = -1) const;

  /// Snapshot all counters (indexed [EventKind][unit]).
  std::vector<std::vector<std::uint64_t>> snapshot() const;

 private:
  struct ActiveGroup {
    const PerfGroup* group;
  };
  HpmMonitor(const GroupRegistry& registry, const CounterSimulator& sim, Options options,
             std::vector<ActiveGroup> groups);

  const GroupRegistry& registry_;
  const CounterSimulator& sim_;
  Options options_;
  std::vector<ActiveGroup> groups_;
  std::size_t active_ = 0;
  bool has_baseline_ = false;
  util::TimeNs last_time_ = 0;
  std::vector<std::vector<std::uint64_t>> last_counts_;
};

}  // namespace lms::hpm
