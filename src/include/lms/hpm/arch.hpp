#pragma once

// Counter architecture model — the hardware side of the LIKWID abstraction.
//
// A CounterArchitecture describes a CPU's performance monitoring unit the way
// LIKWID sees it: fixed-purpose counters (FIXC0..2), general-purpose core
// counters (PMC0..N-1), per-socket uncore counters (MBOX* for the memory
// controller, PWR0 for RAPL energy), the nominal clock and topology. Events
// are identified by name and carry a simulation semantic (EventKind) that
// tells the counter simulator how to derive counts from a workload profile.
//
// Two architectures are built in ("simx86" and "simx86-sp" below) to prove
// the portability claim of the paper: the analysis layer only consumes
// derived metrics from performance groups, never raw events, so swapping the
// architecture requires no change above the HPM layer.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lms::hpm {

/// What a counter event measures — drives the simulation model.
enum class EventKind {
  kInstructionsRetired,
  kCoreCyclesUnhalted,
  kRefCyclesUnhalted,
  kFlopsScalarDp,
  kFlopsPacked128Dp,
  kFlopsPacked256Dp,
  kFlopsScalarSp,
  kFlopsPacked128Sp,
  kFlopsPacked256Sp,
  kBranchesRetired,
  kBranchesMispredicted,
  kL1DReplacement,   // L1 refills from L2 (per cache line)
  kL2LinesIn,        // L2 refills from L3
  kL3LinesIn,        // L3 refills from memory (per core, demand)
  kLoadsRetired,
  kStoresRetired,
  kDtlbWalkCompleted,
  kCasReadUncore,    // memory controller read transactions (per socket)
  kCasWriteUncore,   // memory controller write transactions (per socket)
  kPkgEnergyUncore,  // RAPL package energy, in energy units (per socket)
};

/// Where an event can be counted.
enum class CounterScope { kHwThread, kSocket };

struct EventDef {
  std::string name;        // e.g. "FP_ARITH_INST_RETIRED_SCALAR_DOUBLE"
  EventKind kind;
  CounterScope scope;
  /// Counter class prefix this event is schedulable on ("FIXC" fixed,
  /// "PMC" general purpose, "MBOX" memory box, "PWR" energy).
  std::string counter_class;
};

struct CounterSlotDef {
  std::string name;   // "PMC0", "FIXC1", "MBOX0C0", "PWR0"
  std::string clazz;  // "PMC", "FIXC", "MBOX", "PWR"
  CounterScope scope;
};

struct CounterArchitecture {
  std::string name;            // "simx86"
  std::string cpu_model;       // human-readable
  int sockets = 2;
  int cores_per_socket = 8;
  int threads_per_core = 1;
  double nominal_clock_ghz = 2.3;
  double energy_unit_joules = 6.103515625e-05;  // RAPL 1/16384 J
  double cacheline_bytes = 64.0;

  /// Theoretical peaks (used by analysis for saturation checks).
  double peak_dp_flops_per_core = 0.0;   // per core, at nominal clock
  double peak_mem_bw_per_socket = 0.0;   // bytes/s

  /// Cache hierarchy (for the topology view and cache-related groups).
  int l1d_kib_per_core = 32;
  int l2_kib_per_core = 256;
  int l3_mib_per_socket = 20;

  std::vector<CounterSlotDef> slots;
  std::vector<EventDef> events;

  int total_cores() const { return sockets * cores_per_socket; }
  int total_hwthreads() const { return total_cores() * threads_per_core; }

  const EventDef* find_event(std::string_view event_name) const;
  const CounterSlotDef* find_slot(std::string_view slot_name) const;

  /// True if `event` may be programmed on `slot` (class + scope match).
  bool schedulable(const EventDef& event, const CounterSlotDef& slot) const;
};

/// Built-in simulated architectures.
const CounterArchitecture& simx86();        ///< 2-socket, AVX2-class server CPU
const CounterArchitecture& simx86_small();  ///< 1-socket, 4-core desktop-class

/// Architecture registry lookup by name; nullptr if unknown.
const CounterArchitecture* find_architecture(std::string_view name);

/// Render a likwid-topology-style description of the machine: sockets,
/// cores, cache hierarchy, counter resources and peaks.
std::string topology_string(const CounterArchitecture& arch);

}  // namespace lms::hpm
