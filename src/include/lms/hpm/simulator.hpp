#pragma once

// Counter simulation — the substitute for MSR access (see DESIGN.md §1).
//
// The cluster workload models produce a NodeLoad: per-core execution rates
// and per-socket memory/power activity. The CounterSimulator integrates
// those rates over simulated time into monotonically increasing hardware
// event counts, with the same quirks real counters have:
//   - core counters are 48 bits wide and wrap,
//   - the RAPL energy counter is 32 bits wide and wraps much faster,
//   - counts carry multiplicative measurement noise.
// Everything above the HPM layer (monitor, collector, analysis) is identical
// to what would run against real MSRs.

#include <cstdint>
#include <vector>

#include "lms/hpm/arch.hpp"
#include "lms/util/clock.hpp"
#include "lms/util/rng.hpp"

namespace lms::hpm {

/// Execution profile of one core over an interval.
struct CoreLoad {
  double clock_ghz = 0.0;        ///< effective core clock while active
  double active_fraction = 0.0;  ///< fraction of wall time unhalted [0,1]
  double ipc = 0.0;              ///< retired instructions per active cycle
  double flops_dp_per_sec = 0.0;
  double dp_simd_fraction = 0.0;  ///< fraction of DP flops from 256-bit packed
  double flops_sp_per_sec = 0.0;
  double sp_simd_fraction = 0.0;
  double branch_per_instr = 0.0;
  double branch_miss_ratio = 0.0;
  double loads_per_instr = 0.0;
  double stores_per_instr = 0.0;
  double l2_bw_bytes_per_sec = 0.0;   ///< L1 refills from L2
  double l3_bw_bytes_per_sec = 0.0;   ///< L2 refills from L3
  double mem_bw_bytes_per_sec = 0.0;  ///< demand misses to memory from this core
  double dtlb_miss_per_instr = 0.0;
};

/// Socket-level activity over an interval.
struct SocketLoad {
  double mem_read_bw_bytes_per_sec = 0.0;
  double mem_write_bw_bytes_per_sec = 0.0;
  double package_power_watts = 0.0;
};

/// Activity of one node over an interval.
struct NodeLoad {
  std::vector<CoreLoad> cores;      // size = arch.total_hwthreads()
  std::vector<SocketLoad> sockets;  // size = arch.sockets
};

/// An idle NodeLoad shaped for the architecture (baseline OS noise).
NodeLoad idle_load(const CounterArchitecture& arch);

class CounterSimulator {
 public:
  static constexpr std::uint64_t kCoreCounterMask = (1ULL << 48) - 1;
  static constexpr std::uint64_t kEnergyCounterMask = (1ULL << 32) - 1;

  /// `noise_sigma` is the relative standard deviation of per-interval count
  /// noise (0 = exact).
  CounterSimulator(const CounterArchitecture& arch, std::uint64_t seed,
                   double noise_sigma = 0.01);

  const CounterArchitecture& architecture() const { return arch_; }

  /// Integrate `load` over `dt_ns` of simulated time.
  void advance(const NodeLoad& load, util::TimeNs dt_ns);

  /// Raw counter value for an event on one unit (hwthread or socket index),
  /// already wrapped to the counter width.
  std::uint64_t read(EventKind kind, int unit) const;

  /// Sum of an event over all of its units, wrapped per unit.
  std::uint64_t read_total(EventKind kind) const;

  /// Units carrying this event kind (cores or sockets).
  int units_for(EventKind kind) const;

  /// Delta between two raw readings, accounting for wrap-around.
  static std::uint64_t wrap_delta(std::uint64_t now, std::uint64_t before, std::uint64_t mask);

 private:
  double& cell(EventKind kind, int unit);
  double cell_value(EventKind kind, int unit) const;
  double noise();

  const CounterArchitecture& arch_;
  util::Rng rng_;
  double noise_sigma_;
  // counts[kind][unit], stored exactly as doubles and wrapped on read.
  std::vector<std::vector<double>> counts_;
};

}  // namespace lms::hpm
