#pragma once

// The node-level data acquisition agent. Owns a set of collector plugins,
// polls each at its interval, batches the resulting points (the line
// protocol concatenates lines precisely for this, paper §III-A) and posts
// them to the metrics router. Failed sends go to a bounded retry queue so a
// router restart loses as little data as possible without unbounded memory
// growth on the node.
//
// The agent is externally clocked: the owner calls tick(now) — the cluster
// simulator drives it with virtual time, which keeps every test
// deterministic. A real deployment instead attaches the agent to a
// core::TaskScheduler: a periodic "collector.agent" task then calls
// tick(clock->now()) every Options::tick_interval. The agent's state is
// intentionally unsynchronized, so drive it through exactly one of the two
// modes at a time (the periodic task itself never overlaps its own runs).

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "lms/collector/plugin.hpp"
#include "lms/core/runnable.hpp"
#include "lms/core/runtime.hpp"
#include "lms/core/taskscheduler.hpp"
#include "lms/net/health.hpp"
#include "lms/net/transport.hpp"
#include "lms/util/clock.hpp"

namespace lms::obs {
class Registry;
class Counter;
}  // namespace lms::obs

namespace lms::collector {

class HostAgent : public core::Runnable {
 public:
  struct Options {
    std::string router_url;      ///< e.g. "inproc://router" or "http://host:8086"
    std::string database = "lms";
    util::TimeNs flush_interval = 10 * util::kNanosPerSecond;
    std::size_t max_batch_points = 500;
    std::size_t retry_queue_capacity = 5000;  ///< points kept across failures
    /// Self-monitoring: emit the agent's own counters as an "agent"
    /// measurement at this interval (0 = off). Monitoring the monitoring is
    /// how operators notice silently failing collectors.
    util::TimeNs self_monitor_interval = 0;
    std::string hostname;  ///< tag for self-monitoring points
    /// Optional metrics registry: mirrors Stats as collector_* counters
    /// (labelled {hostname}) plus a collector_pending_points gauge over the
    /// retry buffer. nullptr = no mirroring. Must outlive the agent.
    obs::Registry* registry = nullptr;
    /// Cadence of the periodic "collector.agent" tick task once attached.
    util::TimeNs tick_interval = util::kNanosPerSecond;
    /// Clock the periodic task ticks against. nullptr = wall clock.
    const util::Clock* clock = nullptr;
  };

  HostAgent(net::HttpClient& client, Options options);
  ~HostAgent();

  /// Register a plugin polled every `interval`.
  void add_plugin(std::unique_ptr<CollectorPlugin> plugin, util::TimeNs interval);

  /// Poll due plugins and flush if a batch is ready. Returns the number of
  /// points collected this tick.
  std::size_t tick(util::TimeNs now);

  /// Force a flush of all buffered points.
  void flush(util::TimeNs now);

  struct Stats {
    std::uint64_t points_collected = 0;
    std::uint64_t points_sent = 0;
    std::uint64_t batches_sent = 0;
    std::uint64_t send_failures = 0;
    std::uint64_t points_dropped = 0;
  };
  const Stats& stats() const { return stats_; }

  std::size_t plugin_count() const { return plugins_.size(); }
  std::size_t pending_points() const { return buffer_.size(); }

  /// Component health report. `readiness` adds the delivery check: an agent
  /// whose last send failed (router down, points queued for retry) is
  /// degraded — still alive, but not shipping data.
  net::ComponentHealth health(bool readiness) const;

  /// HTTP probe surface for the agent itself: GET /health and /ready.
  net::HttpHandler handler();

 protected:
  void on_attach(core::TaskScheduler& sched) override;
  void on_detach() override;

 private:
  enum class SendOutcome { kSent, kRetryLater, kDropBatch };
  SendOutcome send_batch(const std::vector<lineproto::Point>& points);

  struct ScheduledPlugin {
    std::unique_ptr<CollectorPlugin> plugin;
    util::TimeNs interval;
    util::TimeNs next_due;
  };

  net::HttpClient& client_;
  Options options_;
  std::vector<ScheduledPlugin> plugins_;
  std::deque<lineproto::Point> buffer_;
  /// Depth/watermark stats for the send/retry buffer (GET /debug/runtime);
  /// the agent is tick-driven single-threaded, counters are atomics for the
  /// benefit of concurrent snapshot readers only.
  core::runtime::QueueStats buffer_stats_;
  util::TimeNs last_flush_ = 0;
  util::TimeNs last_tick_ = 0;
  bool last_send_ok_ = true;  ///< outcome of the most recent batch send
  util::TimeNs next_self_monitor_ = 0;
  Stats stats_;
  // Registry mirrors (null when Options::registry is null).
  obs::Counter* collected_c_ = nullptr;
  obs::Counter* sent_c_ = nullptr;
  obs::Counter* batches_c_ = nullptr;
  obs::Counter* failures_c_ = nullptr;
  obs::Counter* dropped_c_ = nullptr;
  core::PeriodicTaskHandle tick_task_;
};

}  // namespace lms::collector
