#pragma once

// Host-agent plugin interface (the Diamond-collector role, paper §III-A).
// A plugin produces line-protocol points when polled; the HostAgent
// schedules plugins at their configured intervals, batches the points and
// delivers them to the metrics router over HTTP.

#include <string>
#include <vector>

#include "lms/lineproto/point.hpp"
#include "lms/util/clock.hpp"

namespace lms::collector {

class CollectorPlugin {
 public:
  virtual ~CollectorPlugin() = default;

  /// Plugin name, used in logs and the agent's self-metrics.
  virtual std::string name() const = 0;

  /// Collect the current metric points. `now` is the sampling timestamp the
  /// plugin should stamp points with.
  virtual std::vector<lineproto::Point> collect(util::TimeNs now) = 0;
};

}  // namespace lms::collector
