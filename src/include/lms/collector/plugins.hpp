#pragma once

// The stock collector plugins covering the paper's elementary resource
// utilization metrics (§V): CPU load, allocated memory, network I/O and
// file I/O from the (simulated) kernel, plus the HPM plugin wrapping the
// LIKWID-style monitor for IPC, FP rates and memory bandwidth.
//
// Rate plugins keep the previous counter snapshot and emit deltas/rates —
// the same computation a Diamond collector performs on /proc counters.

#include <memory>
#include <optional>

#include "lms/collector/plugin.hpp"
#include "lms/hpm/monitor.hpp"
#include "lms/sysmon/kernel.hpp"

namespace lms::collector {

/// "cpu" measurement: user/system/iowait/idle percentages + loadavg.
class CpuPlugin final : public CollectorPlugin {
 public:
  CpuPlugin(const sysmon::KernelReader& kernel, std::string hostname);
  std::string name() const override { return "cpu"; }
  std::vector<lineproto::Point> collect(util::TimeNs now) override;

 private:
  const sysmon::KernelReader& kernel_;
  std::string hostname_;
  std::optional<sysmon::CpuTimes> last_;
};

/// "memory" measurement: total/used/free bytes and used percentage.
class MemoryPlugin final : public CollectorPlugin {
 public:
  MemoryPlugin(const sysmon::KernelReader& kernel, std::string hostname);
  std::string name() const override { return "memory"; }
  std::vector<lineproto::Point> collect(util::TimeNs now) override;

 private:
  const sysmon::KernelReader& kernel_;
  std::string hostname_;
};

/// "network" measurement: rx/tx byte and packet rates.
class NetworkPlugin final : public CollectorPlugin {
 public:
  NetworkPlugin(const sysmon::KernelReader& kernel, std::string hostname);
  std::string name() const override { return "network"; }
  std::vector<lineproto::Point> collect(util::TimeNs now) override;

 private:
  const sysmon::KernelReader& kernel_;
  std::string hostname_;
  std::optional<sysmon::NetCounters> last_;
  util::TimeNs last_time_ = 0;
};

/// "disk" measurement: read/write byte and op rates.
class DiskPlugin final : public CollectorPlugin {
 public:
  DiskPlugin(const sysmon::KernelReader& kernel, std::string hostname);
  std::string name() const override { return "disk"; }
  std::vector<lineproto::Point> collect(util::TimeNs now) override;

 private:
  const sysmon::KernelReader& kernel_;
  std::string hostname_;
  std::optional<sysmon::DiskCounters> last_;
  util::TimeNs last_time_ = 0;
};

/// HPM plugin: delegates to an HpmMonitor (multiplexed perf groups).
class HpmPlugin final : public CollectorPlugin {
 public:
  explicit HpmPlugin(hpm::HpmMonitor monitor);
  std::string name() const override { return "likwid"; }
  std::vector<lineproto::Point> collect(util::TimeNs now) override;

 private:
  hpm::HpmMonitor monitor_;
};

}  // namespace lms::collector
