#pragma once

// MetricCollector — the pluggable per-region measurement interface of the
// profiling SDK, mirroring how TVM's runtime profiler consumes LIKWID: the
// framework owns the region lifecycle (start/stop markers around code
// phases) and asks each attached collector to snapshot its counters at the
// region boundaries, attributing the deltas to the region.
//
// A collector's per-instance fields must be *additive* (raw event deltas,
// byte counts, call counts): the profiler sums them across all instances of
// a region between two flushes and only then asks the collector to derive
// rate/ratio metrics from the sums (derive()), so averaging-of-rates bugs
// cannot happen. This is exactly how likwid-perfctr reports marker regions:
// raw counts accumulate per region, derived metrics are computed once from
// the accumulated counts and the accumulated region time.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lms/core/sync.hpp"
#include "lms/hpm/perfgroup.hpp"
#include "lms/hpm/simulator.hpp"
#include "lms/lineproto/point.hpp"
#include "lms/util/status.hpp"

namespace lms::profiling {

/// Field sums of one region since the last flush, keyed by field name.
using FieldSums = std::map<std::string, double, std::less<>>;

class MetricCollector {
 public:
  virtual ~MetricCollector() = default;

  /// Collector name, used in logs and error messages.
  virtual std::string name() const = 0;

  /// Tag value for the "group" tag of lms_regions points produced with this
  /// collector attached ("" = no group tag).
  virtual std::string group() const { return {}; }

  /// Open a measurement bracket: snapshot whatever state is needed and
  /// return an opaque handle. `now` is the region start timestamp.
  virtual std::uint64_t start(util::TimeNs now) = 0;

  /// Close the bracket opened by `handle` and return the *additive* fields
  /// attributed to the region instance (raw event deltas). `now` is the
  /// region stop timestamp. The handle is consumed.
  virtual std::vector<lineproto::Field> stop(std::uint64_t handle, util::TimeNs now) = 0;

  /// Drop a bracket without attribution (region discarded mid-flight).
  virtual void discard(std::uint64_t handle) = 0;

  /// Derive rate/ratio metrics from the accumulated field sums of a region
  /// and its accumulated inclusive time. Called at report time; the result
  /// is appended to the region's fields. Default: no derived metrics.
  virtual std::vector<lineproto::Field> derive(const FieldSums& sums,
                                               util::TimeNs inclusive_ns) const {
    (void)sums;
    (void)inclusive_ns;
    return {};
  }
};

/// HPM collector: attributes the hardware events of one performance group to
/// regions, likwid-perfctr marker-API style. start() snapshots the group's
/// counters on the simulated PMU; stop() returns one field per event slot
/// with the wrapped delta ("cnt_pmc0", "cnt_fixc1", ...); derive() evaluates the
/// group's metric formulas over the accumulated slot sums with
/// time = accumulated inclusive region seconds, yielding the same field keys
/// the HpmMonitor publishes ("dp_mflop_per_s", ...), so the per-region
/// analysis can reuse the node-level formulas and thresholds unchanged.
class HpmRegionCollector final : public MetricCollector {
 public:
  /// Fails if `group_name` is unknown in the registry.
  static util::Result<std::unique_ptr<HpmRegionCollector>> create(
      const hpm::GroupRegistry& registry, const hpm::CounterSimulator& sim,
      const std::string& group_name);

  std::string name() const override { return "hpm:" + group_->name(); }
  std::string group() const override { return group_->name(); }
  std::uint64_t start(util::TimeNs now) override;
  std::vector<lineproto::Field> stop(std::uint64_t handle, util::TimeNs now) override;
  void discard(std::uint64_t handle) override;
  std::vector<lineproto::Field> derive(const FieldSums& sums,
                                       util::TimeNs inclusive_ns) const override;

  /// Field key carrying the raw delta of `slot` ("PMC0" -> "cnt_pmc0").
  static std::string slot_field_key(std::string_view slot);

  const hpm::PerfGroup& perf_group() const { return *group_; }

 private:
  HpmRegionCollector(const hpm::CounterSimulator& sim, const hpm::PerfGroup* group);

  /// One event slot of the group, resolved once at construction so a
  /// bracket only reads the counters the group actually programs (a full
  /// PMU snapshot reads every event kind — several times more than any one
  /// group uses, and region brackets are the hot path).
  struct EventRef {
    hpm::EventKind kind;
    int units = 0;             ///< hwthreads or sockets, per the event scope
    std::uint64_t mask = 0;    ///< counter width for wrap_delta
    double scale = 1.0;        ///< RAPL slots deliver joules to the formulas
    std::string field_key;     ///< "cnt_<slot>"
  };
  /// Flat per-(event, unit) counter reading of the group's events.
  std::vector<std::uint64_t> snapshot_group() const;

  const hpm::CounterSimulator& sim_;
  const hpm::PerfGroup* group_;
  std::vector<EventRef> events_;

  struct Bracket {
    std::vector<std::uint64_t> counts;
    util::TimeNs t0 = 0;
  };
  /// Leaf of the profiling layer: brackets are opened/closed while no
  /// profiler lock is held.
  mutable core::sync::Mutex mu_{core::sync::Rank::kProfilingCollector,
                                "profiling.collector"};
  std::uint64_t next_handle_ LMS_GUARDED_BY(mu_) = 1;
  std::map<std::uint64_t, Bracket> open_ LMS_GUARDED_BY(mu_);
};

}  // namespace lms::profiling
