#pragma once

// The profiling SDK: likwid-perfctr marker API for applications.
//
// The stack so far observes jobs from the outside (node-level HPM sampling,
// kernel metrics, usermetric streams). This module is the inside view the
// paper's job-specific-monitoring promise ultimately needs: an application
// brackets its phases with named region markers,
//
//   profiling::Profiler profiler(opts);
//   profiler.add_collector(HpmRegionCollector::create(registry, pmu, "MEM_DP").take());
//   {
//     profiling::ScopedRegion force(profiler, "force");
//     compute_forces();                       // exception-safe: dtor stops
//   }
//
// and every attached MetricCollector attributes its counter deltas to the
// region. Regions nest (per-thread stacks), are safe under exception unwind
// (ScopedRegion), and aggregate per (region, thread): call count, inclusive
// and exclusive wall time, raw event sums and — at report time — the perf
// group's derived metrics. drain_points() turns the aggregate into
// "lms_regions" line-protocol points (tags: region, thread, hostname,
// group) that flow through the stock collector -> router -> TSDB pipeline,
// so per-region timelines come out of the same dashboards as everything
// else.
//
// Marker discipline follows likwid-perfctr: stop() must name the innermost
// open region of the calling thread. Anything else (stop without start,
// stop of an outer region, stop on a thread that never started it) is
// counted as unbalanced, reported via Status, and leaves the region state
// untouched — a misbehaving caller cannot corrupt the stacks. Recursive
// regions (same name nested) are allowed and attribute per instance.
//
// The profiler monitors itself: with Options::registry set it exposes
// an active-regions gauge, a per-marker-call overhead histogram and
// marker/unbalanced counters under the standard lms_internal self-scrape.

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lms/core/sync.hpp"
#include "lms/obs/metrics.hpp"
#include "lms/obs/trace.hpp"
#include "lms/profiling/collector.hpp"
#include "lms/util/clock.hpp"
#include "lms/util/status.hpp"

namespace lms::profiling {

/// Measurement name of the per-region points.
inline constexpr std::string_view kRegionsMeasurement = "lms_regions";

class Profiler {
 public:
  struct Options {
    /// Stamped as the "hostname" tag (the stack's routing key) and as the
    /// self-metrics label. Empty = no hostname tag.
    std::string hostname;
    /// Timestamp source when markers are called without an explicit time
    /// (nullptr = wall clock). Simulations pass explicit times instead.
    const util::Clock* clock = nullptr;
    /// Self-metrics registry (nullptr = no self-metrics).
    obs::Registry* registry = nullptr;
    /// Emit an obs::Span per region instance so regions appear inside the
    /// PR-4 distributed traces of the surrounding request/job.
    bool emit_spans = false;
    /// Nesting bound per thread; deeper start() calls are rejected (guards
    /// against a start() leak in a loop eating memory forever).
    std::size_t max_depth = 64;
  };

  Profiler();
  explicit Profiler(Options options);
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Attach a collector. Not thread-safe against concurrent markers; attach
  /// everything before the first region starts (likwid marker init idiom).
  void add_collector(std::unique_ptr<MetricCollector> collector);

  // ------------------------------------------------------- marker API
  /// Open a region on the calling thread. `now` 0 = read the clock.
  util::Status start(std::string_view region, util::TimeNs now = 0);

  /// Close the innermost open region of the calling thread, which must be
  /// named `region`; anything else is unbalanced and changes nothing.
  util::Status stop(std::string_view region, util::TimeNs now = 0);

  /// Attribute an application-level value (libusermetric-style) to the
  /// innermost open region of the calling thread: the region's fields gain
  /// "user_<name>" (sum) and "user_<name>_count". Returns false (and drops
  /// the value) when no region is open on this thread.
  bool value(std::string_view name, double v);

  // -------------------------------------------------------- reporting
  struct RegionStats {
    std::string region;
    std::string thread;  ///< stable per-profiler thread index ("0", "1", ...)
    std::uint64_t count = 0;          ///< completed instances
    util::TimeNs inclusive_ns = 0;    ///< sum over instances
    util::TimeNs exclusive_ns = 0;    ///< inclusive minus child region time
    FieldSums fields;                 ///< collector sums + derived + user values
  };

  /// Aggregated per-(region, thread) statistics of all *completed* region
  /// instances since the last drain, including derived collector metrics.
  /// Non-destructive.
  std::vector<RegionStats> stats() const;

  /// Aggregate -> lms_regions points (one per region x thread, stamped
  /// `now`, tagged region/thread/hostname/group + `extra_tags`) and reset,
  /// so consecutive drains yield a per-interval region timeline.
  std::vector<lineproto::Point> drain_points(util::TimeNs now,
                                             const std::vector<lineproto::Tag>& extra_tags = {});

  /// Drop all aggregated statistics (open regions stay open).
  void reset();

  struct Counters {
    std::uint64_t markers = 0;     ///< completed start/stop pairs
    std::uint64_t unbalanced = 0;  ///< rejected stop() calls
    std::uint64_t rejected = 0;    ///< start() calls rejected by max_depth
    std::uint64_t user_values = 0; ///< attributed value() calls
  };
  Counters counters() const;

  /// Currently open region instances across all threads.
  std::size_t active_regions() const;

 private:
  struct OpenRegion {
    std::string name;
    util::TimeNs t0 = 0;
    util::TimeNs child_ns = 0;           ///< closed children's inclusive time
    std::vector<std::uint64_t> handles;  ///< one per collector
    FieldSums user_fields;               ///< value() attributions
    std::unique_ptr<obs::Span> span;     ///< set iff options_.emit_spans
  };
  struct ThreadState {
    std::string label;
    std::vector<OpenRegion> stack;
  };
  struct Aggregate {
    std::uint64_t count = 0;
    util::TimeNs inclusive_ns = 0;
    util::TimeNs exclusive_ns = 0;
    FieldSums fields;
  };
  using AggKey = std::pair<std::string, std::string>;  // (region, thread label)

  util::TimeNs resolve_now(util::TimeNs now) const;
  ThreadState& thread_state_locked() LMS_REQUIRES(mu_);
  void append_derived(const Aggregate& agg, FieldSums& fields) const;

  Options options_;
  std::vector<std::unique_ptr<MetricCollector>> collectors_;
  std::string group_tag_;  ///< first non-empty collector group

  /// The marker hot-path lock. Collector brackets open and close outside it
  /// (collectors carry their own, higher-ranked lock).
  mutable core::sync::Mutex mu_{core::sync::Rank::kProfiler, "profiling.profiler"};
  std::map<std::thread::id, ThreadState> threads_ LMS_GUARDED_BY(mu_);
  std::map<AggKey, Aggregate> aggregates_ LMS_GUARDED_BY(mu_);
  std::size_t open_count_ LMS_GUARDED_BY(mu_) = 0;
  Counters counters_ LMS_GUARDED_BY(mu_);

  // Self-metrics handles (null when options_.registry is null).
  obs::Counter* markers_total_ = nullptr;
  obs::Counter* unbalanced_total_ = nullptr;
  obs::Histogram* marker_overhead_ = nullptr;
};

/// RAII region bracket: starts on construction, stops on destruction —
/// including during exception unwind, which is the whole point. A bracket
/// whose start() was rejected (depth bound) stops nothing.
class ScopedRegion {
 public:
  ScopedRegion(Profiler& profiler, std::string region, util::TimeNs now = 0);
  ~ScopedRegion();
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

  /// Close early (idempotent; the destructor then does nothing).
  util::Status stop(util::TimeNs now = 0);

  bool active() const { return active_; }

 private:
  Profiler& profiler_;
  std::string region_;
  bool active_ = false;
};

}  // namespace lms::profiling
