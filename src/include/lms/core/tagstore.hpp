#pragma once

// The router's tag store (paper §III-A/B): a hash table keyed by hostname —
// the one mandatory tag on every metric — holding the tags to piggy-back
// onto all measurements and events from that host while a job runs there.

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lms/core/sync.hpp"
#include "lms/lineproto/point.hpp"

namespace lms::core {

class TagStore {
 public:
  /// Attach `tags` to every future metric from `hostname`.
  void set_tags(std::string_view hostname, std::vector<lineproto::Tag> tags);

  /// Remove all tags for a host (job deallocation).
  void clear_tags(std::string_view hostname);

  /// Tags currently registered for a host (empty if none).
  std::vector<lineproto::Tag> tags_for(std::string_view hostname) const;

  /// Enrich a point in place: append stored tags for the point's hostname
  /// without overwriting tags the producer already set. Returns the number
  /// of tags added.
  std::size_t enrich(lineproto::Point& point) const;

  std::size_t host_count() const;

 private:
  /// Leaf within the router layer: every method copies in/out under mu_ and
  /// never calls back into the stack while holding it.
  mutable core::sync::Mutex mu_{core::sync::Rank::kRouterTags, "core.tagstore"};
  std::map<std::string, std::vector<lineproto::Tag>, std::less<>> tags_ LMS_GUARDED_BY(mu_);
};

}  // namespace lms::core
