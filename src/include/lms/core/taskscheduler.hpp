#pragma once

// lms::core::TaskScheduler — the stack's shared background runtime.
//
// A work-stealing pool that replaces the seven hand-rolled
// thread+CondVar+stop_ loops (router flusher, CQ runner, retention, alert
// evaluator, trace exporter, self-scrape, collector send loop) with one set
// of worker threads and a declarative task API:
//
//   - submit(fn)                 run-soon task; lands on the submitter's own
//                                worker when called from a worker (LIFO
//                                locality), round-robin otherwise. Stealable.
//   - submit(fn, affinity_key)   pinned task: always runs on worker
//                                (key % workers) and is never stolen. A
//                                single worker executes its pinned lane in
//                                FIFO order, so two tasks with the same key
//                                never run concurrently — this is how
//                                per-shard TSDB writes keep cache locality
//                                and mutual exclusion without a lock convoy.
//   - submit_after(delay, fn)    delayed task via a min-heap serviced by the
//                                workers themselves (no dedicated timer
//                                thread).
//   - submit_periodic(...)       named periodic task with fixed-delay
//                                semantics (next due = completion +
//                                interval) and a per-task LoopStats row in
//                                /debug/runtime. Returns a handle that can
//                                trigger() an early run or cancel().
//
// Scheduling shape (tateyama-style): each worker owns a deque used LIFO
// from its own end (newest first, cache-warm) and stolen FIFO from the
// other end, half at a time, by idle workers. Pinned lanes are separate
// FIFO queues that stealing never touches.
//
// Locking discipline: all internal mutexes are core::sync wrappers at
// Rank::kSched (worker i uses seq=i, the timer heap seq=workers), so rank
// checking and lock-stats cover the scheduler itself. The implementation
// never holds two scheduler locks at once and never holds any scheduler
// lock while running a task, which is why tasks may freely acquire
// lower-ranked component locks (kAlert, kTsdbShard, ...).
//
// Manual mode (Options::manual) runs no threads: the owner drives the same
// task graph deterministically with run_ready() / advance_to(now) on a
// simulated-time axis. The cluster harness uses this so every test stays
// reproducible; the threaded mode uses the monotonic clock.
//
// Shutdown: stop() drains every ready task (including pinned lanes), drops
// timers that are not yet due, and joins the workers. After stop(),
// submissions execute inline on the caller so no work is ever silently
// lost.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "lms/core/runtime.hpp"
#include "lms/core/sync.hpp"
#include "lms/util/clock.hpp"

namespace lms::core {

class TaskScheduler;

namespace sched_detail {
struct PeriodicState;
struct QueuedTask;
struct Worker;
struct TimerQueue;
}  // namespace sched_detail

/// Handle to a periodic task. Move-only; the destructor cancels the task if
/// it is still live, so a component that drops its handle on detach gets
/// the old stop()/join() guarantee (no further runs, in-flight run
/// completed) for free.
class PeriodicTaskHandle {
 public:
  PeriodicTaskHandle() = default;
  ~PeriodicTaskHandle();
  PeriodicTaskHandle(PeriodicTaskHandle&& other) noexcept;
  PeriodicTaskHandle& operator=(PeriodicTaskHandle&& other) noexcept;
  PeriodicTaskHandle(const PeriodicTaskHandle&) = delete;
  PeriodicTaskHandle& operator=(const PeriodicTaskHandle&) = delete;

  /// Run the task as soon as possible, superseding the pending timer; the
  /// periodic cadence restarts from the triggered run's completion. This is
  /// the replacement for "notify the loop CV early" (e.g. the router waking
  /// its flusher when a batch is full). No-op on an empty/cancelled handle.
  void trigger();

  /// Stop the task: no further runs start, and any in-flight run has
  /// completed when cancel() returns. Idempotent. Must not be called from
  /// inside the task itself (it would wait for its own completion).
  void cancel();

  /// True while the task is live (submitted and not cancelled).
  bool active() const;

 private:
  friend class TaskScheduler;
  explicit PeriodicTaskHandle(std::shared_ptr<sched_detail::PeriodicState> state);

  std::shared_ptr<sched_detail::PeriodicState> state_;
};

class TaskScheduler {
 public:
  using Task = std::function<void()>;

  struct Options {
    /// Worker count. 0 = auto: $LMS_SCHED_WORKERS if set, else
    /// hardware_concurrency clamped to [1, 8].
    std::size_t workers = 0;
    /// Manual mode: no threads; the owner calls run_ready()/advance_to().
    bool manual = false;
    /// Name for the SchedStats row in /debug/runtime and lms_runtime_sched_*.
    const char* name = "core.sched";
  };

  TaskScheduler();
  explicit TaskScheduler(Options options);
  ~TaskScheduler();
  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Run-soon task (stealable). After stop() the task runs inline.
  void submit(Task fn);

  /// Pinned task: runs on worker (affinity_key % workers), never stolen,
  /// FIFO within the key's worker — tasks sharing a key never overlap.
  void submit(Task fn, std::uint64_t affinity_key);

  /// Run `fn` once, no earlier than `delay` from now (monotonic time in
  /// threaded mode, the advance_to() axis in manual mode).
  void submit_after(util::TimeNs delay, Task fn);

  /// Named periodic task with fixed-delay semantics: the next run becomes
  /// due `interval` after the previous run *completes* (threaded mode), or
  /// `interval` after the advance that ran it (manual mode — one run per
  /// overdue advance, which is what deterministic step-driven tests want).
  /// First run: after `interval` in threaded mode, on the first advance in
  /// manual mode. The name labels a LoopStats duty-cycle row.
  PeriodicTaskHandle submit_periodic(std::string name, util::TimeNs interval, Task fn);

  /// Drain ready tasks, drop undue timers, join workers. Idempotent.
  void stop();

  // --- manual mode -------------------------------------------------------

  /// Manual mode only: run queued tasks until every queue is empty.
  /// Returns the number of tasks executed.
  std::size_t run_ready();

  /// Manual mode only: move simulated time forward, firing due timers
  /// (periodic tasks re-arm against `now`, so each fires at most once per
  /// call) and then draining ready tasks. Returns tasks executed.
  std::size_t advance_to(util::TimeNs now);

  // --- introspection -----------------------------------------------------

  std::size_t worker_count() const { return workers_.size(); }
  bool manual() const { return options_.manual; }
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  /// True when the calling thread is a worker of *any* TaskScheduler.
  /// Components that block waiting for an offloaded task use this to fall
  /// back to inline execution instead of deadlocking the pool.
  static bool on_worker_thread();

  const runtime::SchedStats& stats() const { return stats_; }

 private:
  friend class PeriodicTaskHandle;
  friend struct sched_detail::PeriodicState;

  void enqueue_local(std::size_t index, Task fn, const char* name);
  void enqueue_pinned(std::size_t index, Task fn, const char* name);
  void schedule_timer(util::TimeNs due, Task fn, bool pinned, std::uint64_t key,
                      const char* name);
  void notify_all_workers();
  void worker_loop(std::size_t index);
  /// Move due timer entries into the worker queues. Returns promoted count.
  std::size_t promote_due_timers(util::TimeNs now);
  util::TimeNs next_timer_due() const;
  util::TimeNs scheduler_now() const;
  void run_task(Task& fn);
  /// Record the queued task's submit→run delay, set the task-name TLS scope,
  /// and execute it. Queue bookkeeping (ready_count_, depth) stays at the
  /// pop site.
  void run_queued(sched_detail::QueuedTask& qt);
  void run_periodic(const std::shared_ptr<sched_detail::PeriodicState>& state,
                    std::uint64_t gen);
  void trigger_periodic(const std::shared_ptr<sched_detail::PeriodicState>& state);
  bool steal_into(std::size_t thief);
  /// Single-threaded FIFO drain of every queue (manual run_ready + the
  /// shutdown sweep). Returns the number of tasks executed.
  std::size_t drain_queues();

  Options options_;
  runtime::SchedStats stats_;
  std::vector<std::unique_ptr<sched_detail::Worker>> workers_;
  std::unique_ptr<sched_detail::TimerQueue> timers_;
  std::atomic<std::uint64_t> rr_next_{0};        ///< round-robin cursor
  std::atomic<std::uint64_t> ready_count_{0};    ///< tasks queued, not yet run
  std::atomic<std::uint64_t> timer_version_{0};  ///< bumped on timer insert
  std::atomic<util::TimeNs> manual_now_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
};

// ===========================================================================
// Implementation. Header-only (like sync.hpp / runtime.hpp) so lms::obs
// components can run on the scheduler without a core<->obs link cycle, and
// so per-TU LMS_SYNC_* pinning never mixes two wrapper layouts through a
// library object.
// ===========================================================================

namespace sched_detail {

/// A task in a worker lane, stamped with its name (for the task-name TLS
/// scope and the queue-delay table; always a string literal or a string
/// owned by a PeriodicState the closure keeps alive) and its enqueue time
/// on the scheduler's clock, so the pop site can record submit→run latency.
struct QueuedTask {
  TaskScheduler::Task fn;
  const char* name = nullptr;
  util::TimeNs enqueued_ns = 0;
};

struct Worker {
  explicit Worker(std::size_t index)
      : mu(sync::Rank::kSched, "sched.worker", index),
        loop_name("sched.worker" + std::to_string(index)),
        loop(loop_name.c_str()) {}

  sync::Mutex mu;
  sync::CondVar cv;
  /// Stealable lane: owner pushes/pops at the back (LIFO, cache-warm),
  /// thieves take from the front (FIFO, oldest first).
  std::deque<QueuedTask> local LMS_GUARDED_BY(mu);
  /// Affinity lane: strictly FIFO, never stolen.
  std::deque<QueuedTask> pinned LMS_GUARDED_BY(mu);
  std::string loop_name;
  runtime::LoopStats loop;
  std::thread thread;
};

struct TimerEntry {
  util::TimeNs due;
  std::uint64_t order;  ///< insertion counter: FIFO tie-break for equal due
  TaskScheduler::Task fn;
  bool pinned;
  std::uint64_t key;
  const char* name;
};

/// Comparator for std::push_heap/pop_heap (max-heap order inverted into a
/// min-heap on (due, order)).
inline bool timer_later(const TimerEntry& a, const TimerEntry& b) {
  if (a.due != b.due) return a.due > b.due;
  return a.order > b.order;
}

struct TimerQueue {
  explicit TimerQueue(std::uintptr_t seq) : mu(sync::Rank::kSched, "sched.timers", seq) {}

  sync::Mutex mu;
  std::vector<TimerEntry> heap LMS_GUARDED_BY(mu);
  std::uint64_t next_order LMS_GUARDED_BY(mu) = 0;
};

struct PeriodicState {
  PeriodicState(TaskScheduler* sched_in, std::string name_in, util::TimeNs interval_in,
                TaskScheduler::Task fn_in)
      : sched(sched_in),
        name(std::move(name_in)),
        interval(interval_in),
        fn(std::move(fn_in)),
        mu(sync::Rank::kSched, "sched.periodic"),
        loop(name.c_str()) {}

  TaskScheduler* sched;
  std::string name;
  util::TimeNs interval;
  TaskScheduler::Task fn;
  sync::Mutex mu;
  sync::CondVar cv;
  bool in_flight LMS_GUARDED_BY(mu) = false;
  /// Bumped by trigger()/cancel(); a queued run or heap entry carrying a
  /// stale generation is a no-op when it fires.
  std::atomic<std::uint64_t> gen{0};
  std::atomic<bool> cancelled{false};
  /// Duty-cycle row named after the task, aggregating across whichever
  /// workers happen to run it.
  runtime::LoopStats loop;
};

inline constexpr util::TimeNs kNoTimer = std::numeric_limits<util::TimeNs>::max();
/// Idle workers re-check state at least this often even with no timer due.
inline constexpr util::TimeNs kMaxIdleWaitNs = 200 * util::kNanosPerMilli;

/// Worker identity of the calling thread (any scheduler instance).
inline thread_local TaskScheduler* tls_scheduler = nullptr;
inline thread_local std::size_t tls_worker_index = 0;

inline std::size_t resolve_workers(std::size_t requested) {
  if (requested != 0) return std::clamp<std::size_t>(requested, 1, 64);
  if (const char* env = std::getenv("LMS_SCHED_WORKERS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return std::min<std::size_t>(static_cast<std::size_t>(n), 64);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 1 : hw, 1, 8);
}

}  // namespace sched_detail

// ---------------------------------------------------------------------------
// PeriodicTaskHandle
// ---------------------------------------------------------------------------

inline PeriodicTaskHandle::PeriodicTaskHandle(
    std::shared_ptr<sched_detail::PeriodicState> state)
    : state_(std::move(state)) {}

inline PeriodicTaskHandle::~PeriodicTaskHandle() { cancel(); }

inline PeriodicTaskHandle::PeriodicTaskHandle(PeriodicTaskHandle&& other) noexcept
    : state_(std::move(other.state_)) {}

inline PeriodicTaskHandle& PeriodicTaskHandle::operator=(
    PeriodicTaskHandle&& other) noexcept {
  if (this != &other) {
    cancel();
    state_ = std::move(other.state_);
  }
  return *this;
}

inline void PeriodicTaskHandle::trigger() {
  if (state_ == nullptr || state_->cancelled.load(std::memory_order_acquire)) return;
  state_->sched->trigger_periodic(state_);
}

inline void PeriodicTaskHandle::cancel() {
  // state_ is deliberately kept (not reset): a cancelled handle stays inert
  // but valid, so another thread calling trigger() concurrently with a
  // shutdown-path cancel() never races on the shared_ptr itself.
  if (state_ == nullptr) return;
  state_->gen.fetch_add(1, std::memory_order_acq_rel);
  sync::UniqueLock lock(state_->mu);
  // The store happens under mu so it cannot interleave with a run between
  // its cancelled-check and its in_flight=true (both also under mu).
  state_->cancelled.store(true, std::memory_order_release);
  while (state_->in_flight) state_->cv.wait(lock);
}

inline bool PeriodicTaskHandle::active() const {
  return state_ != nullptr && !state_->cancelled.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// TaskScheduler
// ---------------------------------------------------------------------------

inline TaskScheduler::TaskScheduler() : TaskScheduler(Options{}) {}

inline TaskScheduler::TaskScheduler(Options options) : options_(options) {
  const std::size_t n = sched_detail::resolve_workers(options_.workers);
  stats_.name = options_.name;
  stats_.workers = n;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<sched_detail::Worker>(i));
  }
  timers_ = std::make_unique<sched_detail::TimerQueue>(static_cast<std::uintptr_t>(n));
  runtime::register_scheduler(&stats_);
  if (!options_.manual) {
    for (std::size_t i = 0; i < n; ++i) {
      workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
    }
  }
}

inline TaskScheduler::~TaskScheduler() {
  stop();
  runtime::unregister_scheduler(&stats_);
}

inline bool TaskScheduler::on_worker_thread() {
  return sched_detail::tls_scheduler != nullptr;
}

inline util::TimeNs TaskScheduler::scheduler_now() const {
  if (options_.manual) return manual_now_.load(std::memory_order_acquire);
  return static_cast<util::TimeNs>(sync::lockstats::now_ns());
}

inline void TaskScheduler::run_task(Task& fn) {
  fn();
  stats_.executed.fetch_add(1, std::memory_order_relaxed);
}

inline void TaskScheduler::run_queued(sched_detail::QueuedTask& qt) {
  const util::TimeNs now = scheduler_now();
  const std::uint64_t delay_ns =
      now > qt.enqueued_ns ? static_cast<std::uint64_t>(now - qt.enqueued_ns) : 0;
  runtime::sched_delay::record(runtime::sched_delay::intern(qt.name), delay_ns);
  runtime::TaskNameScope name_scope(qt.name);
  run_task(qt.fn);
}

inline void TaskScheduler::enqueue_local(std::size_t index, Task fn, const char* name) {
  sched_detail::Worker& w = *workers_[index];
  {
    sync::LockGuard lock(w.mu);
    w.local.push_back(sched_detail::QueuedTask{std::move(fn), name, scheduler_now()});
  }
  stats_.on_enqueue(ready_count_.fetch_add(1, std::memory_order_relaxed) + 1);
  if (!options_.manual) w.cv.notify_one();
}

inline void TaskScheduler::enqueue_pinned(std::size_t index, Task fn, const char* name) {
  sched_detail::Worker& w = *workers_[index];
  {
    sync::LockGuard lock(w.mu);
    w.pinned.push_back(sched_detail::QueuedTask{std::move(fn), name, scheduler_now()});
  }
  stats_.on_enqueue(ready_count_.fetch_add(1, std::memory_order_relaxed) + 1);
  if (!options_.manual) w.cv.notify_one();
}

inline void TaskScheduler::submit(Task fn) {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  if (stopped_.load(std::memory_order_acquire)) {
    // The pool is gone; run inline so no work is silently dropped.
    run_task(fn);
    return;
  }
  std::size_t index;
  if (!options_.manual && sched_detail::tls_scheduler == this) {
    index = sched_detail::tls_worker_index;  // LIFO locality: stay cache-warm
  } else {
    index = static_cast<std::size_t>(rr_next_.fetch_add(1, std::memory_order_relaxed)) %
            workers_.size();
  }
  enqueue_local(index, std::move(fn), "sched.submit");
}

inline void TaskScheduler::submit(Task fn, std::uint64_t affinity_key) {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  stats_.pinned.fetch_add(1, std::memory_order_relaxed);
  if (stopped_.load(std::memory_order_acquire)) {
    run_task(fn);
    return;
  }
  enqueue_pinned(static_cast<std::size_t>(affinity_key % workers_.size()), std::move(fn),
                 "sched.pinned");
}

inline void TaskScheduler::submit_after(util::TimeNs delay, Task fn) {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  stats_.delayed.fetch_add(1, std::memory_order_relaxed);
  if (stopping_.load(std::memory_order_acquire)) return;  // undue timers are dropped
  if (delay < 0) delay = 0;
  schedule_timer(scheduler_now() + delay, std::move(fn), /*pinned=*/false, 0,
                 "sched.delayed");
}

inline PeriodicTaskHandle TaskScheduler::submit_periodic(std::string name,
                                                         util::TimeNs interval, Task fn) {
  if (interval < 1) interval = 1;
  auto state = std::make_shared<sched_detail::PeriodicState>(this, std::move(name), interval,
                                                             std::move(fn));
  if (!stopping_.load(std::memory_order_acquire)) {
    // Manual mode arms for "now": the first advance runs it, mirroring the
    // last_run=0 semantics of the step-driven loops this API replaces.
    const util::TimeNs first_due =
        options_.manual ? scheduler_now() : scheduler_now() + interval;
    stats_.delayed.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<sched_detail::PeriodicState> self = state;
    const std::uint64_t gen = state->gen.load(std::memory_order_relaxed);
    schedule_timer(
        first_due, [this, self, gen] { run_periodic(self, gen); }, /*pinned=*/true,
        reinterpret_cast<std::uintptr_t>(state.get()), state->name.c_str());
  }
  return PeriodicTaskHandle(std::move(state));
}

inline void TaskScheduler::trigger_periodic(
    const std::shared_ptr<sched_detail::PeriodicState>& state) {
  if (stopping_.load(std::memory_order_acquire)) return;
  // Invalidate the pending heap entry; the triggered run re-arms the cadence
  // from its own completion.
  const std::uint64_t gen = state->gen.fetch_add(1, std::memory_order_acq_rel) + 1;
  std::shared_ptr<sched_detail::PeriodicState> self = state;
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  stats_.pinned.fetch_add(1, std::memory_order_relaxed);
  // Bypass submit(fn, key) so the queued run keeps the periodic task's name
  // (the closure's shared_ptr keeps the name's storage alive while queued).
  enqueue_pinned(
      static_cast<std::size_t>(reinterpret_cast<std::uintptr_t>(state.get()) %
                               workers_.size()),
      [this, self, gen] { run_periodic(self, gen); }, state->name.c_str());
}

inline void TaskScheduler::run_periodic(
    const std::shared_ptr<sched_detail::PeriodicState>& state, std::uint64_t gen) {
  if (state->gen.load(std::memory_order_acquire) != gen) return;  // superseded
  {
    sync::LockGuard lock(state->mu);
    if (state->cancelled.load(std::memory_order_relaxed)) return;
    state->in_flight = true;
  }
  {
    runtime::BusyScope scope(state->loop);
    state->fn();
  }
  stats_.periodic_runs.fetch_add(1, std::memory_order_relaxed);
  bool cancelled;
  {
    sync::LockGuard lock(state->mu);
    state->in_flight = false;
    cancelled = state->cancelled.load(std::memory_order_relaxed);
    state->cv.notify_all();
  }
  if (cancelled || stopping_.load(std::memory_order_acquire)) return;
  if (state->gen.load(std::memory_order_acquire) != gen) return;  // trigger() raced us
  // Fixed delay: next due counts from this run's completion (or, in manual
  // mode, from the advance that ran it — one run per overdue advance).
  stats_.delayed.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<sched_detail::PeriodicState> self = state;
  schedule_timer(
      scheduler_now() + state->interval, [this, self, gen] { run_periodic(self, gen); },
      /*pinned=*/true, reinterpret_cast<std::uintptr_t>(state.get()), state->name.c_str());
}

inline void TaskScheduler::schedule_timer(util::TimeNs due, Task fn, bool pinned,
                                          std::uint64_t key, const char* name) {
  {
    sync::LockGuard lock(timers_->mu);
    timers_->heap.push_back(sched_detail::TimerEntry{due, timers_->next_order++,
                                                     std::move(fn), pinned, key, name});
    std::push_heap(timers_->heap.begin(), timers_->heap.end(), sched_detail::timer_later);
  }
  timer_version_.fetch_add(1, std::memory_order_release);
  if (!options_.manual) notify_all_workers();
}

inline std::size_t TaskScheduler::promote_due_timers(util::TimeNs now) {
  std::vector<sched_detail::TimerEntry> due;
  {
    sync::LockGuard lock(timers_->mu);
    while (!timers_->heap.empty() && timers_->heap.front().due <= now) {
      std::pop_heap(timers_->heap.begin(), timers_->heap.end(), sched_detail::timer_later);
      due.push_back(std::move(timers_->heap.back()));
      timers_->heap.pop_back();
    }
  }
  for (sched_detail::TimerEntry& e : due) {
    if (e.pinned) {
      stats_.pinned.fetch_add(1, std::memory_order_relaxed);
      enqueue_pinned(static_cast<std::size_t>(e.key % workers_.size()), std::move(e.fn),
                     e.name);
    } else if (!options_.manual && sched_detail::tls_scheduler == this) {
      enqueue_local(sched_detail::tls_worker_index, std::move(e.fn), e.name);
    } else {
      enqueue_local(static_cast<std::size_t>(
                        rr_next_.fetch_add(1, std::memory_order_relaxed)) %
                        workers_.size(),
                    std::move(e.fn), e.name);
    }
  }
  return due.size();
}

inline util::TimeNs TaskScheduler::next_timer_due() const {
  sync::LockGuard lock(timers_->mu);
  return timers_->heap.empty() ? sched_detail::kNoTimer : timers_->heap.front().due;
}

inline void TaskScheduler::notify_all_workers() {
  for (auto& w : workers_) {
    // Empty lock/unlock pairs with the waiter's held-mutex window: a worker
    // between its last state check and cv.wait() holds mu, so this blocks
    // until it actually waits and the notify is never lost.
    { sync::LockGuard lock(w->mu); }
    w->cv.notify_all();
  }
}

inline bool TaskScheduler::steal_into(std::size_t thief) {
  const std::size_t n = workers_.size();
  if (n <= 1) return false;
  for (std::size_t off = 1; off < n; ++off) {
    const std::size_t victim = (thief + off) % n;
    stats_.steal_attempts.fetch_add(1, std::memory_order_relaxed);
    std::vector<sched_detail::QueuedTask> loot;
    {
      sched_detail::Worker& v = *workers_[victim];
      sync::LockGuard lock(v.mu);
      const std::size_t take = (v.local.size() + 1) / 2;
      loot.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        loot.push_back(std::move(v.local.front()));
        v.local.pop_front();
      }
    }
    if (loot.empty()) continue;
    stats_.stolen.fetch_add(loot.size(), std::memory_order_relaxed);
    if (loot.size() > 1) {
      sched_detail::Worker& w = *workers_[thief];
      sync::LockGuard lock(w.mu);
      for (std::size_t i = 1; i < loot.size(); ++i) {
        w.local.push_back(std::move(loot[i]));
      }
    }
    ready_count_.fetch_sub(1, std::memory_order_relaxed);
    stats_.depth.store(ready_count_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    runtime::BusyScope scope(workers_[thief]->loop);
    run_queued(loot.front());
    return true;
  }
  return false;
}

inline void TaskScheduler::worker_loop(std::size_t index) {
  sched_detail::tls_scheduler = this;
  sched_detail::tls_worker_index = index;
  sched_detail::Worker& w = *workers_[index];
  for (;;) {
    sched_detail::QueuedTask task;
    bool have = false;
    {
      sync::LockGuard lock(w.mu);
      if (!w.pinned.empty()) {
        task = std::move(w.pinned.front());
        w.pinned.pop_front();
        have = true;
      } else if (!w.local.empty()) {
        task = std::move(w.local.back());  // LIFO: newest, cache-warm
        w.local.pop_back();
        have = true;
      }
    }
    if (have) {
      ready_count_.fetch_sub(1, std::memory_order_relaxed);
      stats_.depth.store(ready_count_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      runtime::BusyScope scope(w.loop);
      run_queued(task);
      continue;
    }
    const std::uint64_t tv = timer_version_.load(std::memory_order_acquire);
    if (promote_due_timers(scheduler_now()) > 0) continue;
    if (steal_into(index)) continue;
    if (stopping_.load(std::memory_order_acquire)) break;  // nothing anywhere: drained
    const util::TimeNs due = next_timer_due();
    sync::UniqueLock lock(w.mu);
    if (!w.pinned.empty() || !w.local.empty()) continue;
    if (stopping_.load(std::memory_order_acquire)) break;
    if (timer_version_.load(std::memory_order_acquire) != tv) continue;
    util::TimeNs wait_ns = sched_detail::kMaxIdleWaitNs;
    if (due != sched_detail::kNoTimer) {
      const util::TimeNs now = scheduler_now();
      if (due <= now) continue;
      wait_ns = std::min<util::TimeNs>(due - now, sched_detail::kMaxIdleWaitNs);
    }
    w.cv.wait_for(lock, std::chrono::nanoseconds(wait_ns));
  }
  sched_detail::tls_scheduler = nullptr;
}

inline std::size_t TaskScheduler::drain_queues() {
  std::size_t ran = 0;
  bool found = true;
  while (found) {
    found = false;
    for (auto& wp : workers_) {
      sched_detail::Worker& w = *wp;
      for (;;) {
        sched_detail::QueuedTask task;
        bool have = false;
        {
          sync::LockGuard lock(w.mu);
          if (!w.pinned.empty()) {
            task = std::move(w.pinned.front());
            w.pinned.pop_front();
            have = true;
          } else if (!w.local.empty()) {
            // FIFO here (unlike the worker's LIFO): manual mode and the
            // shutdown sweep run tasks in submission order, deterministically.
            task = std::move(w.local.front());
            w.local.pop_front();
            have = true;
          }
        }
        if (!have) break;
        found = true;
        ready_count_.fetch_sub(1, std::memory_order_relaxed);
        stats_.depth.store(ready_count_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
        run_queued(task);
        ++ran;
      }
    }
  }
  return ran;
}

inline std::size_t TaskScheduler::run_ready() {
  if (!options_.manual) return 0;
  return drain_queues();
}

inline std::size_t TaskScheduler::advance_to(util::TimeNs now) {
  if (!options_.manual) return 0;
  util::TimeNs cur = manual_now_.load(std::memory_order_relaxed);
  while (cur < now &&
         !manual_now_.compare_exchange_weak(cur, now, std::memory_order_acq_rel)) {
  }
  std::size_t ran = drain_queues();
  while (promote_due_timers(manual_now_.load(std::memory_order_acquire)) > 0) {
    ran += drain_queues();
  }
  return ran;
}

inline void TaskScheduler::stop() {
  const bool first = !stopping_.exchange(true, std::memory_order_acq_rel);
  if (first && !options_.manual) {
    notify_all_workers();
    for (auto& w : workers_) {
      if (w->thread.joinable()) w->thread.join();
    }
  }
  {
    sync::LockGuard lock(timers_->mu);
    timers_->heap.clear();  // undue timers are dropped, not run early
  }
  // Final single-threaded sweep: anything still queued (e.g. pushed while
  // the workers were exiting) runs here so shutdown never loses work.
  drain_queues();
  stopped_.store(true, std::memory_order_release);
}

}  // namespace lms::core
