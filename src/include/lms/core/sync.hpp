#pragma once

// lms::core::sync — the stack's locking vocabulary.
//
// Every mutex in src/ is one of the wrappers below instead of a raw
// std::mutex / std::shared_mutex, which buys two independent layers of
// lock-discipline enforcement:
//
//  1. Compile time (Clang only): the wrappers carry Clang Thread Safety
//     Analysis capability attributes, and guarded fields / lock-requiring
//     methods across the stack are annotated with LMS_GUARDED_BY /
//     LMS_REQUIRES. `clang++ -Wthread-safety -Werror` then proves that no
//     guarded field is touched without its lock (ci/static_analysis.sh runs
//     this build). Under GCC all annotation macros expand to nothing.
//
//  2. Run time (debug builds only): every Mutex/SharedMutex is constructed
//     with a Rank from the documented global lock hierarchy (see the
//     "Concurrency invariants" section of DESIGN.md). A thread-local
//     held-lock stack asserts that blocking acquisitions happen in strictly
//     increasing (rank, seq) order, which makes lock-order inversions —
//     the deadlocks TSan only finds on the interleavings it happens to
//     execute — deterministic assertion failures on *any* execution that
//     merely reaches the second acquisition. Same-rank acquisitions are
//     ordered by a per-lock sequence token (defaults to the object address;
//     the TSDB shard stripes pass their shard index explicitly, turning the
//     ReadSnapshot ordered-fallback convention into an enforced invariant).
//     try_lock acquisitions cannot deadlock and are exempt from the order
//     check, but still count as held for subsequent blocking acquisitions.
//     The checker compiles out entirely when LMS_SYNC_RANK_CHECKS is 0
//     (default in NDEBUG builds): release wrappers are exactly a
//     std::mutex / std::shared_mutex, zero added state or branches.
//
//  3. Contention profiling (opt-in, works in release builds): with
//     LMS_SYNC_LOCK_STATS=1 (-DLMS_LOCK_STATS=ON) every wrapper accumulates
//     per-lock-site statistics into the process-wide lockstats table, keyed
//     by the (name, rank) the wrapper already carries — all stripes named
//     "tsdb.shard" aggregate into one site. Blocking acquisitions first
//     attempt an uncontended try_lock; only when that fails is the wait
//     timed (two clock reads), so the uncontended fast path costs one
//     failed-then-successful atomic exchange, a relaxed counter bump and a
//     hold-start timestamp. Exclusive holds are timed owner-side (shared
//     holds are not: a shared hold timestamp would race between readers).
//     The lockstats table and snapshot API compile unconditionally (they
//     are cold); only the hot-path hooks are gated, and a runtime toggle
//     (lockstats::set_enabled) lets one instrumented binary measure its own
//     overhead against the disabled baseline.
//
// Annotating new code (the short version; DESIGN.md has the full how-to):
//
//   class Thing {
//     void rebuild() LMS_REQUIRES(mu_);          // caller must hold mu_
//     core::sync::Mutex mu_{core::sync::Rank::kNet, "thing"};
//     std::map<...> state_ LMS_GUARDED_BY(mu_);  // only touched under mu_
//   };
//
// and take locks through the scoped wrappers (LockGuard / SharedLockGuard /
// WriteLockGuard / UniqueLock) so the analysis sees the acquire/release
// pair. CondVar deliberately has no predicate-taking wait: write the
// `while (!cond) cv.wait(lock);` loop in the caller, where the analysis
// knows the lock is held (a predicate lambda would be analyzed as an
// unannotated separate function and rejected).

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <vector>

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros (no-ops elsewhere).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LMS_TSA_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef LMS_TSA_ATTR
#define LMS_TSA_ATTR(x)  // not Clang (or too old): annotations vanish
#endif

#define LMS_CAPABILITY(x) LMS_TSA_ATTR(capability(x))
#define LMS_SCOPED_CAPABILITY LMS_TSA_ATTR(scoped_lockable)
#define LMS_GUARDED_BY(x) LMS_TSA_ATTR(guarded_by(x))
#define LMS_PT_GUARDED_BY(x) LMS_TSA_ATTR(pt_guarded_by(x))
#define LMS_ACQUIRED_BEFORE(...) LMS_TSA_ATTR(acquired_before(__VA_ARGS__))
#define LMS_ACQUIRED_AFTER(...) LMS_TSA_ATTR(acquired_after(__VA_ARGS__))
#define LMS_REQUIRES(...) LMS_TSA_ATTR(requires_capability(__VA_ARGS__))
#define LMS_REQUIRES_SHARED(...) LMS_TSA_ATTR(requires_shared_capability(__VA_ARGS__))
#define LMS_ACQUIRE(...) LMS_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define LMS_ACQUIRE_SHARED(...) LMS_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define LMS_RELEASE(...) LMS_TSA_ATTR(release_capability(__VA_ARGS__))
#define LMS_RELEASE_SHARED(...) LMS_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define LMS_TRY_ACQUIRE(...) LMS_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define LMS_TRY_ACQUIRE_SHARED(...) LMS_TSA_ATTR(try_acquire_shared_capability(__VA_ARGS__))
#define LMS_EXCLUDES(...) LMS_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define LMS_ASSERT_CAPABILITY(x) LMS_TSA_ATTR(assert_capability(x))
#define LMS_RETURN_CAPABILITY(x) LMS_TSA_ATTR(lock_returned(x))
#define LMS_NO_THREAD_SAFETY_ANALYSIS LMS_TSA_ATTR(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Runtime lock-rank checking switch. Overridable per-TU / via CMake
// (-DLMS_RANK_CHECKS=ON|OFF); defaults to "debug builds only".
// ---------------------------------------------------------------------------

#ifndef LMS_SYNC_RANK_CHECKS
#ifdef NDEBUG
#define LMS_SYNC_RANK_CHECKS 0
#else
#define LMS_SYNC_RANK_CHECKS 1
#endif
#endif

// ---------------------------------------------------------------------------
// Contention-profiling switch (-DLMS_LOCK_STATS=ON). Off by default; unlike
// rank checking it is intended to be usable in optimized release builds.
// ---------------------------------------------------------------------------

#ifndef LMS_SYNC_LOCK_STATS
#define LMS_SYNC_LOCK_STATS 0
#endif

namespace lms::core::sync {

/// The global lock hierarchy. A thread may only block-acquire a lock whose
/// rank is strictly greater than every lock it already holds (same rank is
/// allowed with a strictly increasing per-lock `seq`). Ranks are spaced so
/// new tiers can slot in; the full table (lock, what it guards, allowed
/// nesting) lives in DESIGN.md "Concurrency invariants".
enum class Rank : int {
  kAppShim = 10,             ///< MPI/OpenMP/alloc shims feeding libusermetric
  kUserMetric = 20,          ///< UserMetricClient buffer (held across the send)
  kAnalysis = 25,            ///< stream aggregator / online rule engine
  kAlert = 30,               ///< alert evaluator (held across TSDB queries)
  kProfiler = 35,            ///< profiling SDK region stacks + aggregates
  kProfilingCollector = 36,  ///< per-collector open-bracket maps
  kDashboard = 40,           ///< dashboard agent store
  // 45 (kLoopControl) retired: the per-loop sleep/stop condvar locks died
  // with the migration of every background loop onto the TaskScheduler.
  kNet = 50,                 ///< inproc registry, tcp worker list, pub/sub broker
  kRouterTags = 54,          ///< router tag store
  kRouterIngest = 55,        ///< router async-ingest queues
  kRouterSpool = 56,         ///< router disk-spool deque
  kRouterJobs = 57,          ///< router running-job table
  kTsdbMap = 60,             ///< storage database map
  kTsdbStage = 63,           ///< per-shard staged-write buffers (scheduler offload)
  kTsdbShard = 65,           ///< series shard stripes (seq = shard index)
  kTsdbAux = 70,             ///< slow-query ring
  kQueue = 80,               ///< util::BoundedQueue internal lock
  kSched = 85,               ///< TaskScheduler worker queues + timer heap (seq = worker)
  kObsRegistry = 90,         ///< metrics registry instrument map
  kObsTrace = 92,            ///< span recorder ring
  kObsProfile = 93,          ///< CPU profiler fold table + symbol cache
  kRuntimeRegistry = 95,     ///< core::runtime queue/loop stats registry
  kLogging = 100,            ///< logger/log-ring: any thread may log anywhere
};

/// True when this translation unit was compiled with the runtime rank
/// checker; tests assert both states.
inline constexpr bool kRankCheckingEnabled = LMS_SYNC_RANK_CHECKS != 0;

/// True when this translation unit was compiled with contention profiling
/// (LMS_SYNC_LOCK_STATS, i.e. -DLMS_LOCK_STATS=ON).
inline constexpr bool kLockStatsEnabled = LMS_SYNC_LOCK_STATS != 0;

/// Sentinel for "order same-rank locks by object address" (the default).
inline constexpr std::uintptr_t kSeqFromAddress = ~std::uintptr_t{0};

// ---------------------------------------------------------------------------
// lockstats — the per-lock-site contention registry.
//
// Always compiled (it is cold data + snapshot code); only the wrapper
// hot-path hooks are gated on LMS_SYNC_LOCK_STATS. That way a test binary
// that pins the macro per-TU instruments its own header-inline wrappers
// while still sharing this one process-wide table, and the export layer in
// lms::obs can read snapshots regardless of how its own TU was compiled.
// ---------------------------------------------------------------------------

namespace lockstats {

/// Log2 wait-time histogram: bucket i counts waits with
/// bit_width(wait_ns) == i (bucket 39 is the overflow tail, ~9 minutes+).
inline constexpr std::size_t kWaitBuckets = 40;

/// Fixed capacity of the site table. Sites are (name, rank) pairs — one per
/// distinct wrapper construction site, not per instance — so the stack uses
/// a few dozen. Registrations past the cap are counted in dropped().
inline constexpr std::size_t kMaxSites = 128;

/// One lock site: every counter is a relaxed atomic bumped from the wrapper
/// hot path; readers snapshot them without stopping writers.
struct SiteStats {
  std::atomic<const char*> name{nullptr};
  std::atomic<int> rank{0};
  std::atomic<std::uint64_t> acquisitions{0};  ///< all lock/try_lock successes
  std::atomic<std::uint64_t> contended{0};     ///< acquisitions that had to wait
  std::atomic<std::uint64_t> wait_ns_total{0};
  std::atomic<std::uint64_t> wait_ns_max{0};
  std::atomic<std::uint64_t> hold_ns_total{0};  ///< exclusive holds only
  std::atomic<std::uint64_t> hold_ns_max{0};
  std::array<std::atomic<std::uint64_t>, kWaitBuckets> wait_hist{};
};

namespace impl {

struct Table {
  std::array<SiteStats, kMaxSites> slots;
  std::atomic<std::size_t> used{0};
  std::atomic<std::uint64_t> dropped{0};
};

inline Table& table() {
  static Table t;
  return t;
}

/// Serializes registration only (construction-time cold path). A raw
/// std::mutex is fine here: this header is the one place allowed to use
/// one, it is a leaf (nothing is acquired under it), and it must not be a
/// sync::Mutex (whose constructor is the caller).
inline std::mutex& intern_mu() {
  static std::mutex mu;
  return mu;
}

inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{true};
  return flag;
}

inline bool site_matches(const SiteStats& slot, const char* name, int rank) {
  const char* slot_name = slot.name.load(std::memory_order_acquire);
  return slot_name != nullptr && slot.rank.load(std::memory_order_relaxed) == rank &&
         (slot_name == name || std::strcmp(slot_name, name) == 0);
}

}  // namespace impl

/// Monotonic nanoseconds for wait/hold timing. Local to this header so core
/// stays below util in the layering.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

/// Runtime toggle for the (compiled-in) hot-path hooks. Default on. Lets
/// bench_lock_stats measure instrumented-vs-not in a single binary.
inline bool enabled() { return impl::enabled_flag().load(std::memory_order_relaxed); }
inline void set_enabled(bool on) { impl::enabled_flag().store(on, std::memory_order_relaxed); }

/// Sites that could not be registered because the table was full.
inline std::uint64_t dropped_sites() {
  return impl::table().dropped.load(std::memory_order_relaxed);
}

/// Find-or-create the stats slot for (name, rank). Called once per wrapper
/// construction; nullptr when the table is full (the wrapper then simply
/// records nothing). Names are compared by content, so identical literals
/// duplicated across translation units still share one site.
inline SiteStats* intern_site(const char* name, int rank) {
  if (name == nullptr) name = "<unnamed>";
  impl::Table& t = impl::table();
  const std::size_t seen = t.used.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < seen; ++i) {
    if (impl::site_matches(t.slots[i], name, rank)) return &t.slots[i];
  }
  std::lock_guard<std::mutex> guard(impl::intern_mu());
  const std::size_t used = t.used.load(std::memory_order_relaxed);
  for (std::size_t i = seen; i < used; ++i) {
    if (impl::site_matches(t.slots[i], name, rank)) return &t.slots[i];
  }
  if (used >= kMaxSites) {
    t.dropped.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  SiteStats& slot = t.slots[used];
  slot.rank.store(rank, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_release);
  t.used.store(used + 1, std::memory_order_release);
  return &slot;
}

inline void atomic_max(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (cur < value &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

inline std::size_t wait_bucket(std::uint64_t wait_ns) {
  return std::min<std::size_t>(static_cast<std::size_t>(std::bit_width(wait_ns)),
                               kWaitBuckets - 1);
}

/// Inclusive upper bound of histogram bucket i in nanoseconds.
inline std::uint64_t bucket_upper_ns(std::size_t i) {
  if (i >= kWaitBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << i) - 1;
}

inline void record_acquire(SiteStats* s) {
  s->acquisitions.fetch_add(1, std::memory_order_relaxed);
}

inline void record_wait(SiteStats* s, std::uint64_t wait_ns) {
  s->contended.fetch_add(1, std::memory_order_relaxed);
  s->wait_ns_total.fetch_add(wait_ns, std::memory_order_relaxed);
  atomic_max(s->wait_ns_max, wait_ns);
  s->wait_hist[wait_bucket(wait_ns)].fetch_add(1, std::memory_order_relaxed);
}

inline void record_hold(SiteStats* s, std::uint64_t hold_ns) {
  s->hold_ns_total.fetch_add(hold_ns, std::memory_order_relaxed);
  atomic_max(s->hold_ns_max, hold_ns);
}

/// Point-in-time copy of one site. Counters are read relaxed and
/// independently, so a snapshot taken under load is approximate (e.g.
/// contended may momentarily exceed the matching histogram sum).
struct SiteSnapshot {
  const char* name;
  int rank;
  std::uint64_t acquisitions;
  std::uint64_t contended;
  std::uint64_t wait_ns_total;
  std::uint64_t wait_ns_max;
  std::uint64_t hold_ns_total;
  std::uint64_t hold_ns_max;
  std::array<std::uint64_t, kWaitBuckets> wait_hist;
};

/// Approximate q-quantile (0..1) of the wait distribution: the upper bound
/// of the first histogram bucket reaching the target cumulative count.
inline std::uint64_t wait_quantile_ns(const SiteSnapshot& s, double q) {
  std::uint64_t total = 0;
  for (std::uint64_t c : s.wait_hist) total += c;
  if (total == 0) return 0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kWaitBuckets; ++i) {
    cum += s.wait_hist[i];
    if (cum > target || (q >= 1.0 && cum == total)) return bucket_upper_ns(i);
  }
  return bucket_upper_ns(kWaitBuckets - 1);
}

/// All registered sites, sorted by wait_ns_total descending (the
/// "contention ranking" /debug/runtime serves).
inline std::vector<SiteSnapshot> snapshot() {
  impl::Table& t = impl::table();
  const std::size_t used = t.used.load(std::memory_order_acquire);
  std::vector<SiteSnapshot> out;
  out.reserve(used);
  for (std::size_t i = 0; i < used; ++i) {
    const SiteStats& s = t.slots[i];
    SiteSnapshot snap;
    snap.name = s.name.load(std::memory_order_acquire);
    snap.rank = s.rank.load(std::memory_order_relaxed);
    snap.acquisitions = s.acquisitions.load(std::memory_order_relaxed);
    snap.contended = s.contended.load(std::memory_order_relaxed);
    snap.wait_ns_total = s.wait_ns_total.load(std::memory_order_relaxed);
    snap.wait_ns_max = s.wait_ns_max.load(std::memory_order_relaxed);
    snap.hold_ns_total = s.hold_ns_total.load(std::memory_order_relaxed);
    snap.hold_ns_max = s.hold_ns_max.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kWaitBuckets; ++b) {
      snap.wait_hist[b] = s.wait_hist[b].load(std::memory_order_relaxed);
    }
    out.push_back(snap);
  }
  std::sort(out.begin(), out.end(), [](const SiteSnapshot& a, const SiteSnapshot& b) {
    if (a.wait_ns_total != b.wait_ns_total) return a.wait_ns_total > b.wait_ns_total;
    return a.acquisitions > b.acquisitions;
  });
  return out;
}

/// Zero every counter while keeping site registrations (and the cached
/// SiteStats* in live wrappers) valid. Tests and the bench use this between
/// phases; concurrent updates during the reset may survive it.
inline void reset() {
  impl::Table& t = impl::table();
  const std::size_t used = t.used.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < used; ++i) {
    SiteStats& s = t.slots[i];
    s.acquisitions.store(0, std::memory_order_relaxed);
    s.contended.store(0, std::memory_order_relaxed);
    s.wait_ns_total.store(0, std::memory_order_relaxed);
    s.wait_ns_max.store(0, std::memory_order_relaxed);
    s.hold_ns_total.store(0, std::memory_order_relaxed);
    s.hold_ns_max.store(0, std::memory_order_relaxed);
    for (auto& b : s.wait_hist) b.store(0, std::memory_order_relaxed);
  }
}

}  // namespace lockstats

/// Called with a human-readable description when a rank violation is
/// detected. Default (nullptr) prints to stderr and aborts; tests install a
/// capturing handler instead.
using RankViolationHandler = void (*)(const char* message);

namespace detail {

inline std::atomic<RankViolationHandler>& violation_handler_slot() {
  static std::atomic<RankViolationHandler> slot{nullptr};
  return slot;
}

#if LMS_SYNC_RANK_CHECKS

struct HeldLock {
  const void* addr;
  int rank;
  std::uintptr_t seq;
  const char* name;
  bool try_acquired;
};

inline std::vector<HeldLock>& held_stack() {
  static thread_local std::vector<HeldLock> stack;
  return stack;
}

inline void report_violation(const char* message) {
  RankViolationHandler handler = violation_handler_slot().load(std::memory_order_acquire);
  if (handler != nullptr) {
    handler(message);
    return;
  }
  std::fprintf(stderr, "%s\n", message);
  std::abort();
}

/// Validate a *blocking* acquisition of (rank, seq) against the held stack.
/// Runs before the acquisition so the report fires even if the acquisition
/// would deadlock.
inline void check_order(const void* addr, int rank, std::uintptr_t seq, const char* name) {
  const std::vector<HeldLock>& held = held_stack();
  char msg[512];
  for (const HeldLock& h : held) {
    if (h.addr == addr) {
      std::snprintf(msg, sizeof(msg),
                    "lock-rank violation: re-acquiring lock '%s' (rank %d) already held by "
                    "this thread (self-deadlock)",
                    name, rank);
      report_violation(msg);
      return;
    }
  }
  const HeldLock* top = nullptr;
  for (const HeldLock& h : held) {
    if (top == nullptr || h.rank > top->rank || (h.rank == top->rank && h.seq > top->seq)) {
      top = &h;
    }
  }
  if (top == nullptr) return;
  if (rank < top->rank) {
    std::snprintf(msg, sizeof(msg),
                  "lock-rank violation: acquiring '%s' (rank %d) while holding '%s' (rank %d); "
                  "the lock hierarchy requires strictly increasing rank",
                  name, rank, top->name, top->rank);
    report_violation(msg);
  } else if (rank == top->rank && seq <= top->seq) {
    std::snprintf(msg, sizeof(msg),
                  "lock-rank violation: same-rank cross-order acquisition of '%s' "
                  "(rank %d, seq %llu) while holding '%s' (rank %d, seq %llu); same-rank locks "
                  "must be taken in increasing seq order",
                  name, rank, static_cast<unsigned long long>(seq), top->name, top->rank,
                  static_cast<unsigned long long>(top->seq));
    report_violation(msg);
  }
}

/// Reentrance check for try-acquisitions (try_lock of a lock this thread
/// already holds is UB on std::mutex and a guaranteed-false result at best).
inline void check_reentrance(const void* addr, const char* name) {
  for (const HeldLock& h : held_stack()) {
    if (h.addr == addr) {
      char msg[512];
      std::snprintf(msg, sizeof(msg),
                    "lock-rank violation: try-acquiring lock '%s' already held by this thread",
                    name);
      report_violation(msg);
      return;
    }
  }
}

inline void note_acquire(const void* addr, int rank, std::uintptr_t seq, const char* name,
                         bool try_acquired) {
  held_stack().push_back(HeldLock{addr, rank, seq, name, try_acquired});
}

/// Locks may be released in any order (ReadSnapshot releases front-to-back),
/// so erase by address rather than popping.
inline void note_release(const void* addr) {
  std::vector<HeldLock>& held = held_stack();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->addr == addr) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

#endif  // LMS_SYNC_RANK_CHECKS

}  // namespace detail

/// Install a violation handler (nullptr restores print-and-abort). Returns
/// the previous handler. Affects all threads; meant for tests.
inline RankViolationHandler set_rank_violation_handler(RankViolationHandler handler) {
  return detail::violation_handler_slot().exchange(handler, std::memory_order_acq_rel);
}

/// Number of sync locks the calling thread currently holds (0 when the
/// checker is compiled out). Test/debug helper.
inline std::size_t held_lock_count() {
#if LMS_SYNC_RANK_CHECKS
  return detail::held_stack().size();
#else
  return 0;
#endif
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

class LMS_CAPABILITY("mutex") Mutex {
 public:
  /// `seq` orders same-rank locks; the default orders by object address.
  /// Pass an explicit small seq (e.g. a shard index) when same-rank locks
  /// live behind unique_ptrs and addresses are not meaningful.
  explicit Mutex(Rank rank, const char* name, std::uintptr_t seq = kSeqFromAddress)
#if LMS_SYNC_RANK_CHECKS
      : rank_(static_cast<int>(rank)),
        seq_(seq == kSeqFromAddress ? reinterpret_cast<std::uintptr_t>(this) : seq),
        name_(name)
#endif
  {
#if LMS_SYNC_LOCK_STATS
    stats_ = lockstats::intern_site(name, static_cast<int>(rank));
#endif
#if !LMS_SYNC_RANK_CHECKS && !LMS_SYNC_LOCK_STATS
    (void)rank;
    (void)name;
#endif
#if !LMS_SYNC_RANK_CHECKS
    (void)seq;
#endif
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LMS_ACQUIRE() {
#if LMS_SYNC_RANK_CHECKS
    detail::check_order(this, rank_, seq_, name_);
#endif
#if LMS_SYNC_LOCK_STATS
    // Uncontended fast path: one try_lock, no clock reads for the wait.
    if (stats_ != nullptr && lockstats::enabled()) {
      if (!mu_.try_lock()) {
        const std::uint64_t wait_start = lockstats::now_ns();
        mu_.lock();
        lockstats::record_wait(stats_, lockstats::now_ns() - wait_start);
      }
      lockstats::record_acquire(stats_);
      hold_start_ns_ = lockstats::now_ns();
    } else {
      mu_.lock();
      hold_start_ns_ = 0;
    }
#else
    mu_.lock();
#endif
#if LMS_SYNC_RANK_CHECKS
    detail::note_acquire(this, rank_, seq_, name_, /*try_acquired=*/false);
#endif
  }

  void unlock() LMS_RELEASE() {
#if LMS_SYNC_RANK_CHECKS
    detail::note_release(this);
#endif
#if LMS_SYNC_LOCK_STATS
    // hold_start_ns_ is owner-only state: written after acquiring, read
    // here before releasing. 0 means "acquired while stats were off".
    if (stats_ != nullptr && hold_start_ns_ != 0) {
      lockstats::record_hold(stats_, lockstats::now_ns() - hold_start_ns_);
      hold_start_ns_ = 0;
    }
#endif
    mu_.unlock();
  }

  bool try_lock() LMS_TRY_ACQUIRE(true) {
#if LMS_SYNC_RANK_CHECKS
    detail::check_reentrance(this, name_);
#endif
    const bool locked = mu_.try_lock();
#if LMS_SYNC_LOCK_STATS
    if (locked) {
      if (stats_ != nullptr && lockstats::enabled()) {
        lockstats::record_acquire(stats_);
        hold_start_ns_ = lockstats::now_ns();
      } else {
        hold_start_ns_ = 0;
      }
    }
#endif
#if LMS_SYNC_RANK_CHECKS
    if (locked) detail::note_acquire(this, rank_, seq_, name_, /*try_acquired=*/true);
#endif
    return locked;
  }

 private:
  friend class CondVar;

  std::mutex mu_;
#if LMS_SYNC_RANK_CHECKS
  int rank_;
  std::uintptr_t seq_;
  const char* name_;
#endif
#if LMS_SYNC_LOCK_STATS
  lockstats::SiteStats* stats_;
  std::uint64_t hold_start_ns_ = 0;
#endif
};

// ---------------------------------------------------------------------------
// SharedMutex
// ---------------------------------------------------------------------------

class LMS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(Rank rank, const char* name, std::uintptr_t seq = kSeqFromAddress)
#if LMS_SYNC_RANK_CHECKS
      : rank_(static_cast<int>(rank)),
        seq_(seq == kSeqFromAddress ? reinterpret_cast<std::uintptr_t>(this) : seq),
        name_(name)
#endif
  {
#if LMS_SYNC_LOCK_STATS
    stats_ = lockstats::intern_site(name, static_cast<int>(rank));
#endif
#if !LMS_SYNC_RANK_CHECKS && !LMS_SYNC_LOCK_STATS
    (void)rank;
    (void)name;
#endif
#if !LMS_SYNC_RANK_CHECKS
    (void)seq;
#endif
  }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() LMS_ACQUIRE() {
#if LMS_SYNC_RANK_CHECKS
    detail::check_order(this, rank_, seq_, name_);
#endif
#if LMS_SYNC_LOCK_STATS
    if (stats_ != nullptr && lockstats::enabled()) {
      if (!mu_.try_lock()) {
        const std::uint64_t wait_start = lockstats::now_ns();
        mu_.lock();
        lockstats::record_wait(stats_, lockstats::now_ns() - wait_start);
      }
      lockstats::record_acquire(stats_);
      hold_start_ns_ = lockstats::now_ns();
    } else {
      mu_.lock();
      hold_start_ns_ = 0;
    }
#else
    mu_.lock();
#endif
#if LMS_SYNC_RANK_CHECKS
    detail::note_acquire(this, rank_, seq_, name_, /*try_acquired=*/false);
#endif
  }

  void unlock() LMS_RELEASE() {
#if LMS_SYNC_RANK_CHECKS
    detail::note_release(this);
#endif
#if LMS_SYNC_LOCK_STATS
    if (stats_ != nullptr && hold_start_ns_ != 0) {
      lockstats::record_hold(stats_, lockstats::now_ns() - hold_start_ns_);
      hold_start_ns_ = 0;
    }
#endif
    mu_.unlock();
  }

  void lock_shared() LMS_ACQUIRE_SHARED() {
#if LMS_SYNC_RANK_CHECKS
    detail::check_order(this, rank_, seq_, name_);
#endif
#if LMS_SYNC_LOCK_STATS
    // Shared waits are timed; shared holds are not (a hold timestamp
    // shared between concurrent readers would race).
    if (stats_ != nullptr && lockstats::enabled()) {
      if (!mu_.try_lock_shared()) {
        const std::uint64_t wait_start = lockstats::now_ns();
        mu_.lock_shared();
        lockstats::record_wait(stats_, lockstats::now_ns() - wait_start);
      }
      lockstats::record_acquire(stats_);
    } else {
      mu_.lock_shared();
    }
#else
    mu_.lock_shared();
#endif
#if LMS_SYNC_RANK_CHECKS
    detail::note_acquire(this, rank_, seq_, name_, /*try_acquired=*/false);
#endif
  }

  void unlock_shared() LMS_RELEASE_SHARED() {
#if LMS_SYNC_RANK_CHECKS
    detail::note_release(this);
#endif
    mu_.unlock_shared();
  }

  bool try_lock() LMS_TRY_ACQUIRE(true) {
#if LMS_SYNC_RANK_CHECKS
    detail::check_reentrance(this, name_);
#endif
    const bool locked = mu_.try_lock();
#if LMS_SYNC_LOCK_STATS
    if (locked) {
      if (stats_ != nullptr && lockstats::enabled()) {
        lockstats::record_acquire(stats_);
        hold_start_ns_ = lockstats::now_ns();
      } else {
        hold_start_ns_ = 0;
      }
    }
#endif
#if LMS_SYNC_RANK_CHECKS
    if (locked) detail::note_acquire(this, rank_, seq_, name_, /*try_acquired=*/true);
#endif
    return locked;
  }

  bool try_lock_shared() LMS_TRY_ACQUIRE_SHARED(true) {
#if LMS_SYNC_RANK_CHECKS
    detail::check_reentrance(this, name_);
#endif
    const bool locked = mu_.try_lock_shared();
#if LMS_SYNC_LOCK_STATS
    if (locked && stats_ != nullptr && lockstats::enabled()) {
      lockstats::record_acquire(stats_);
    }
#endif
#if LMS_SYNC_RANK_CHECKS
    if (locked) detail::note_acquire(this, rank_, seq_, name_, /*try_acquired=*/true);
#endif
    return locked;
  }

 private:
  std::shared_mutex mu_;
#if LMS_SYNC_RANK_CHECKS
  int rank_;
  std::uintptr_t seq_;
  const char* name_;
#endif
#if LMS_SYNC_LOCK_STATS
  lockstats::SiteStats* stats_;
  std::uint64_t hold_start_ns_ = 0;
#endif
};

// ---------------------------------------------------------------------------
// Scoped wrappers
// ---------------------------------------------------------------------------

/// std::lock_guard equivalent over sync::Mutex.
class LMS_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) LMS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() LMS_RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// std::shared_lock equivalent over sync::SharedMutex (reader side).
class LMS_SCOPED_CAPABILITY SharedLockGuard {
 public:
  explicit SharedLockGuard(SharedMutex& mu) LMS_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedLockGuard() LMS_RELEASE() { mu_.unlock_shared(); }
  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  SharedMutex& mu_;
};

/// std::unique_lock<std::shared_mutex> equivalent (writer side).
class LMS_SCOPED_CAPABILITY WriteLockGuard {
 public:
  explicit WriteLockGuard(SharedMutex& mu) LMS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriteLockGuard() LMS_RELEASE() { mu_.unlock(); }
  WriteLockGuard(const WriteLockGuard&) = delete;
  WriteLockGuard& operator=(const WriteLockGuard&) = delete;

 private:
  SharedMutex& mu_;
};

/// Relockable scoped lock over sync::Mutex; the only lock CondVar accepts.
class LMS_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) LMS_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
    owned_ = true;
  }
  ~UniqueLock() LMS_RELEASE() {
    if (owned_) mu_->unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() LMS_ACQUIRE() {
    mu_->lock();
    owned_ = true;
  }
  void unlock() LMS_RELEASE() {
    mu_->unlock();
    owned_ = false;
  }
  bool owns_lock() const { return owned_; }

 private:
  friend class CondVar;

  Mutex* mu_;
  bool owned_ = false;
};

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

/// Condition variable bound to sync::Mutex via UniqueLock. Deliberately has
/// no predicate overloads — spell the `while (!cond) wait(lock);` loop at
/// the call site so Clang's analysis sees guarded reads under the held lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  /// The lock must be owned. The wait releases and re-acquires it; the rank
  /// checker unwinds and replays the bookkeeping accordingly, so waiting
  /// while holding a *higher*-ranked second lock is flagged on wakeup.
  void wait(UniqueLock& lock) {
    Mutex& mu = *lock.mu_;
#if LMS_SYNC_RANK_CHECKS
    detail::note_release(&mu);
#endif
#if LMS_SYNC_LOCK_STATS
    // The wait releases the mutex: close out the current hold so time spent
    // asleep is not billed as hold time, then restart after re-acquiring.
    if (mu.stats_ != nullptr && mu.hold_start_ns_ != 0) {
      lockstats::record_hold(mu.stats_, lockstats::now_ns() - mu.hold_start_ns_);
      mu.hold_start_ns_ = 0;
    }
#endif
    {
      std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
      cv_.wait(native);
      native.release();
    }
#if LMS_SYNC_LOCK_STATS
    if (mu.stats_ != nullptr && lockstats::enabled()) {
      lockstats::record_acquire(mu.stats_);
      mu.hold_start_ns_ = lockstats::now_ns();
    }
#endif
#if LMS_SYNC_RANK_CHECKS
    detail::check_order(&mu, mu.rank_, mu.seq_, mu.name_);
    detail::note_acquire(&mu, mu.rank_, mu.seq_, mu.name_, /*try_acquired=*/false);
#endif
  }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lock, const std::chrono::duration<Rep, Period>& dur) {
    Mutex& mu = *lock.mu_;
#if LMS_SYNC_RANK_CHECKS
    detail::note_release(&mu);
#endif
#if LMS_SYNC_LOCK_STATS
    if (mu.stats_ != nullptr && mu.hold_start_ns_ != 0) {
      lockstats::record_hold(mu.stats_, lockstats::now_ns() - mu.hold_start_ns_);
      mu.hold_start_ns_ = 0;
    }
#endif
    std::cv_status status;
    {
      std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
      status = cv_.wait_for(native, dur);
      native.release();
    }
#if LMS_SYNC_LOCK_STATS
    if (mu.stats_ != nullptr && lockstats::enabled()) {
      lockstats::record_acquire(mu.stats_);
      mu.hold_start_ns_ = lockstats::now_ns();
    }
#endif
#if LMS_SYNC_RANK_CHECKS
    detail::check_order(&mu, mu.rank_, mu.seq_, mu.name_);
    detail::note_acquire(&mu, mu.rank_, mu.seq_, mu.name_, /*try_acquired=*/false);
#endif
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace lms::core::sync
