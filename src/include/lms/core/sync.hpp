#pragma once

// lms::core::sync — the stack's locking vocabulary.
//
// Every mutex in src/ is one of the wrappers below instead of a raw
// std::mutex / std::shared_mutex, which buys two independent layers of
// lock-discipline enforcement:
//
//  1. Compile time (Clang only): the wrappers carry Clang Thread Safety
//     Analysis capability attributes, and guarded fields / lock-requiring
//     methods across the stack are annotated with LMS_GUARDED_BY /
//     LMS_REQUIRES. `clang++ -Wthread-safety -Werror` then proves that no
//     guarded field is touched without its lock (ci/static_analysis.sh runs
//     this build). Under GCC all annotation macros expand to nothing.
//
//  2. Run time (debug builds only): every Mutex/SharedMutex is constructed
//     with a Rank from the documented global lock hierarchy (see the
//     "Concurrency invariants" section of DESIGN.md). A thread-local
//     held-lock stack asserts that blocking acquisitions happen in strictly
//     increasing (rank, seq) order, which makes lock-order inversions —
//     the deadlocks TSan only finds on the interleavings it happens to
//     execute — deterministic assertion failures on *any* execution that
//     merely reaches the second acquisition. Same-rank acquisitions are
//     ordered by a per-lock sequence token (defaults to the object address;
//     the TSDB shard stripes pass their shard index explicitly, turning the
//     ReadSnapshot ordered-fallback convention into an enforced invariant).
//     try_lock acquisitions cannot deadlock and are exempt from the order
//     check, but still count as held for subsequent blocking acquisitions.
//     The checker compiles out entirely when LMS_SYNC_RANK_CHECKS is 0
//     (default in NDEBUG builds): release wrappers are exactly a
//     std::mutex / std::shared_mutex, zero added state or branches.
//
// Annotating new code (the short version; DESIGN.md has the full how-to):
//
//   class Thing {
//     void rebuild() LMS_REQUIRES(mu_);          // caller must hold mu_
//     core::sync::Mutex mu_{core::sync::Rank::kNet, "thing"};
//     std::map<...> state_ LMS_GUARDED_BY(mu_);  // only touched under mu_
//   };
//
// and take locks through the scoped wrappers (LockGuard / SharedLockGuard /
// WriteLockGuard / UniqueLock) so the analysis sees the acquire/release
// pair. CondVar deliberately has no predicate-taking wait: write the
// `while (!cond) cv.wait(lock);` loop in the caller, where the analysis
// knows the lock is held (a predicate lambda would be analyzed as an
// unannotated separate function and rejected).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>
#include <vector>

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros (no-ops elsewhere).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LMS_TSA_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef LMS_TSA_ATTR
#define LMS_TSA_ATTR(x)  // not Clang (or too old): annotations vanish
#endif

#define LMS_CAPABILITY(x) LMS_TSA_ATTR(capability(x))
#define LMS_SCOPED_CAPABILITY LMS_TSA_ATTR(scoped_lockable)
#define LMS_GUARDED_BY(x) LMS_TSA_ATTR(guarded_by(x))
#define LMS_PT_GUARDED_BY(x) LMS_TSA_ATTR(pt_guarded_by(x))
#define LMS_ACQUIRED_BEFORE(...) LMS_TSA_ATTR(acquired_before(__VA_ARGS__))
#define LMS_ACQUIRED_AFTER(...) LMS_TSA_ATTR(acquired_after(__VA_ARGS__))
#define LMS_REQUIRES(...) LMS_TSA_ATTR(requires_capability(__VA_ARGS__))
#define LMS_REQUIRES_SHARED(...) LMS_TSA_ATTR(requires_shared_capability(__VA_ARGS__))
#define LMS_ACQUIRE(...) LMS_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define LMS_ACQUIRE_SHARED(...) LMS_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define LMS_RELEASE(...) LMS_TSA_ATTR(release_capability(__VA_ARGS__))
#define LMS_RELEASE_SHARED(...) LMS_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define LMS_TRY_ACQUIRE(...) LMS_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define LMS_TRY_ACQUIRE_SHARED(...) LMS_TSA_ATTR(try_acquire_shared_capability(__VA_ARGS__))
#define LMS_EXCLUDES(...) LMS_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define LMS_ASSERT_CAPABILITY(x) LMS_TSA_ATTR(assert_capability(x))
#define LMS_RETURN_CAPABILITY(x) LMS_TSA_ATTR(lock_returned(x))
#define LMS_NO_THREAD_SAFETY_ANALYSIS LMS_TSA_ATTR(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Runtime lock-rank checking switch. Overridable per-TU / via CMake
// (-DLMS_RANK_CHECKS=ON|OFF); defaults to "debug builds only".
// ---------------------------------------------------------------------------

#ifndef LMS_SYNC_RANK_CHECKS
#ifdef NDEBUG
#define LMS_SYNC_RANK_CHECKS 0
#else
#define LMS_SYNC_RANK_CHECKS 1
#endif
#endif

namespace lms::core::sync {

/// The global lock hierarchy. A thread may only block-acquire a lock whose
/// rank is strictly greater than every lock it already holds (same rank is
/// allowed with a strictly increasing per-lock `seq`). Ranks are spaced so
/// new tiers can slot in; the full table (lock, what it guards, allowed
/// nesting) lives in DESIGN.md "Concurrency invariants".
enum class Rank : int {
  kAppShim = 10,             ///< MPI/OpenMP/alloc shims feeding libusermetric
  kUserMetric = 20,          ///< UserMetricClient buffer (held across the send)
  kAnalysis = 25,            ///< stream aggregator / online rule engine
  kAlert = 30,               ///< alert evaluator (held across TSDB queries)
  kProfiler = 35,            ///< profiling SDK region stacks + aggregates
  kProfilingCollector = 36,  ///< per-collector open-bracket maps
  kDashboard = 40,           ///< dashboard agent store
  kLoopControl = 45,         ///< self-scrape / trace-export sleep+stop locks
  kNet = 50,                 ///< inproc registry, tcp worker list, pub/sub broker
  kRouterTags = 54,          ///< router tag store
  kRouterIngest = 55,        ///< router async-ingest queues
  kRouterSpool = 56,         ///< router disk-spool deque
  kRouterJobs = 57,          ///< router running-job table
  kTsdbMap = 60,             ///< storage database map
  kTsdbShard = 65,           ///< series shard stripes (seq = shard index)
  kTsdbAux = 70,             ///< slow-query ring
  kQueue = 80,               ///< util::BoundedQueue internal lock
  kObsRegistry = 90,         ///< metrics registry instrument map
  kObsTrace = 92,            ///< span recorder ring
  kLogging = 100,            ///< logger/log-ring: any thread may log anywhere
};

/// True when this translation unit was compiled with the runtime rank
/// checker; tests assert both states.
inline constexpr bool kRankCheckingEnabled = LMS_SYNC_RANK_CHECKS != 0;

/// Sentinel for "order same-rank locks by object address" (the default).
inline constexpr std::uintptr_t kSeqFromAddress = ~std::uintptr_t{0};

/// Called with a human-readable description when a rank violation is
/// detected. Default (nullptr) prints to stderr and aborts; tests install a
/// capturing handler instead.
using RankViolationHandler = void (*)(const char* message);

namespace detail {

inline std::atomic<RankViolationHandler>& violation_handler_slot() {
  static std::atomic<RankViolationHandler> slot{nullptr};
  return slot;
}

#if LMS_SYNC_RANK_CHECKS

struct HeldLock {
  const void* addr;
  int rank;
  std::uintptr_t seq;
  const char* name;
  bool try_acquired;
};

inline std::vector<HeldLock>& held_stack() {
  static thread_local std::vector<HeldLock> stack;
  return stack;
}

inline void report_violation(const char* message) {
  RankViolationHandler handler = violation_handler_slot().load(std::memory_order_acquire);
  if (handler != nullptr) {
    handler(message);
    return;
  }
  std::fprintf(stderr, "%s\n", message);
  std::abort();
}

/// Validate a *blocking* acquisition of (rank, seq) against the held stack.
/// Runs before the acquisition so the report fires even if the acquisition
/// would deadlock.
inline void check_order(const void* addr, int rank, std::uintptr_t seq, const char* name) {
  const std::vector<HeldLock>& held = held_stack();
  char msg[512];
  for (const HeldLock& h : held) {
    if (h.addr == addr) {
      std::snprintf(msg, sizeof(msg),
                    "lock-rank violation: re-acquiring lock '%s' (rank %d) already held by "
                    "this thread (self-deadlock)",
                    name, rank);
      report_violation(msg);
      return;
    }
  }
  const HeldLock* top = nullptr;
  for (const HeldLock& h : held) {
    if (top == nullptr || h.rank > top->rank || (h.rank == top->rank && h.seq > top->seq)) {
      top = &h;
    }
  }
  if (top == nullptr) return;
  if (rank < top->rank) {
    std::snprintf(msg, sizeof(msg),
                  "lock-rank violation: acquiring '%s' (rank %d) while holding '%s' (rank %d); "
                  "the lock hierarchy requires strictly increasing rank",
                  name, rank, top->name, top->rank);
    report_violation(msg);
  } else if (rank == top->rank && seq <= top->seq) {
    std::snprintf(msg, sizeof(msg),
                  "lock-rank violation: same-rank cross-order acquisition of '%s' "
                  "(rank %d, seq %llu) while holding '%s' (rank %d, seq %llu); same-rank locks "
                  "must be taken in increasing seq order",
                  name, rank, static_cast<unsigned long long>(seq), top->name, top->rank,
                  static_cast<unsigned long long>(top->seq));
    report_violation(msg);
  }
}

/// Reentrance check for try-acquisitions (try_lock of a lock this thread
/// already holds is UB on std::mutex and a guaranteed-false result at best).
inline void check_reentrance(const void* addr, const char* name) {
  for (const HeldLock& h : held_stack()) {
    if (h.addr == addr) {
      char msg[512];
      std::snprintf(msg, sizeof(msg),
                    "lock-rank violation: try-acquiring lock '%s' already held by this thread",
                    name);
      report_violation(msg);
      return;
    }
  }
}

inline void note_acquire(const void* addr, int rank, std::uintptr_t seq, const char* name,
                         bool try_acquired) {
  held_stack().push_back(HeldLock{addr, rank, seq, name, try_acquired});
}

/// Locks may be released in any order (ReadSnapshot releases front-to-back),
/// so erase by address rather than popping.
inline void note_release(const void* addr) {
  std::vector<HeldLock>& held = held_stack();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->addr == addr) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

#endif  // LMS_SYNC_RANK_CHECKS

}  // namespace detail

/// Install a violation handler (nullptr restores print-and-abort). Returns
/// the previous handler. Affects all threads; meant for tests.
inline RankViolationHandler set_rank_violation_handler(RankViolationHandler handler) {
  return detail::violation_handler_slot().exchange(handler, std::memory_order_acq_rel);
}

/// Number of sync locks the calling thread currently holds (0 when the
/// checker is compiled out). Test/debug helper.
inline std::size_t held_lock_count() {
#if LMS_SYNC_RANK_CHECKS
  return detail::held_stack().size();
#else
  return 0;
#endif
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

class LMS_CAPABILITY("mutex") Mutex {
 public:
  /// `seq` orders same-rank locks; the default orders by object address.
  /// Pass an explicit small seq (e.g. a shard index) when same-rank locks
  /// live behind unique_ptrs and addresses are not meaningful.
  explicit Mutex(Rank rank, const char* name, std::uintptr_t seq = kSeqFromAddress)
#if LMS_SYNC_RANK_CHECKS
      : rank_(static_cast<int>(rank)),
        seq_(seq == kSeqFromAddress ? reinterpret_cast<std::uintptr_t>(this) : seq),
        name_(name)
#endif
  {
#if !LMS_SYNC_RANK_CHECKS
    (void)rank;
    (void)name;
    (void)seq;
#endif
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LMS_ACQUIRE() {
#if LMS_SYNC_RANK_CHECKS
    detail::check_order(this, rank_, seq_, name_);
#endif
    mu_.lock();
#if LMS_SYNC_RANK_CHECKS
    detail::note_acquire(this, rank_, seq_, name_, /*try_acquired=*/false);
#endif
  }

  void unlock() LMS_RELEASE() {
#if LMS_SYNC_RANK_CHECKS
    detail::note_release(this);
#endif
    mu_.unlock();
  }

  bool try_lock() LMS_TRY_ACQUIRE(true) {
#if LMS_SYNC_RANK_CHECKS
    detail::check_reentrance(this, name_);
#endif
    const bool locked = mu_.try_lock();
#if LMS_SYNC_RANK_CHECKS
    if (locked) detail::note_acquire(this, rank_, seq_, name_, /*try_acquired=*/true);
#endif
    return locked;
  }

 private:
  friend class CondVar;

  std::mutex mu_;
#if LMS_SYNC_RANK_CHECKS
  int rank_;
  std::uintptr_t seq_;
  const char* name_;
#endif
};

// ---------------------------------------------------------------------------
// SharedMutex
// ---------------------------------------------------------------------------

class LMS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(Rank rank, const char* name, std::uintptr_t seq = kSeqFromAddress)
#if LMS_SYNC_RANK_CHECKS
      : rank_(static_cast<int>(rank)),
        seq_(seq == kSeqFromAddress ? reinterpret_cast<std::uintptr_t>(this) : seq),
        name_(name)
#endif
  {
#if !LMS_SYNC_RANK_CHECKS
    (void)rank;
    (void)name;
    (void)seq;
#endif
  }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() LMS_ACQUIRE() {
#if LMS_SYNC_RANK_CHECKS
    detail::check_order(this, rank_, seq_, name_);
#endif
    mu_.lock();
#if LMS_SYNC_RANK_CHECKS
    detail::note_acquire(this, rank_, seq_, name_, /*try_acquired=*/false);
#endif
  }

  void unlock() LMS_RELEASE() {
#if LMS_SYNC_RANK_CHECKS
    detail::note_release(this);
#endif
    mu_.unlock();
  }

  void lock_shared() LMS_ACQUIRE_SHARED() {
#if LMS_SYNC_RANK_CHECKS
    detail::check_order(this, rank_, seq_, name_);
#endif
    mu_.lock_shared();
#if LMS_SYNC_RANK_CHECKS
    detail::note_acquire(this, rank_, seq_, name_, /*try_acquired=*/false);
#endif
  }

  void unlock_shared() LMS_RELEASE_SHARED() {
#if LMS_SYNC_RANK_CHECKS
    detail::note_release(this);
#endif
    mu_.unlock_shared();
  }

  bool try_lock_shared() LMS_TRY_ACQUIRE_SHARED(true) {
#if LMS_SYNC_RANK_CHECKS
    detail::check_reentrance(this, name_);
#endif
    const bool locked = mu_.try_lock_shared();
#if LMS_SYNC_RANK_CHECKS
    if (locked) detail::note_acquire(this, rank_, seq_, name_, /*try_acquired=*/true);
#endif
    return locked;
  }

 private:
  std::shared_mutex mu_;
#if LMS_SYNC_RANK_CHECKS
  int rank_;
  std::uintptr_t seq_;
  const char* name_;
#endif
};

// ---------------------------------------------------------------------------
// Scoped wrappers
// ---------------------------------------------------------------------------

/// std::lock_guard equivalent over sync::Mutex.
class LMS_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) LMS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() LMS_RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// std::shared_lock equivalent over sync::SharedMutex (reader side).
class LMS_SCOPED_CAPABILITY SharedLockGuard {
 public:
  explicit SharedLockGuard(SharedMutex& mu) LMS_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedLockGuard() LMS_RELEASE() { mu_.unlock_shared(); }
  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  SharedMutex& mu_;
};

/// std::unique_lock<std::shared_mutex> equivalent (writer side).
class LMS_SCOPED_CAPABILITY WriteLockGuard {
 public:
  explicit WriteLockGuard(SharedMutex& mu) LMS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriteLockGuard() LMS_RELEASE() { mu_.unlock(); }
  WriteLockGuard(const WriteLockGuard&) = delete;
  WriteLockGuard& operator=(const WriteLockGuard&) = delete;

 private:
  SharedMutex& mu_;
};

/// Relockable scoped lock over sync::Mutex; the only lock CondVar accepts.
class LMS_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) LMS_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
    owned_ = true;
  }
  ~UniqueLock() LMS_RELEASE() {
    if (owned_) mu_->unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() LMS_ACQUIRE() {
    mu_->lock();
    owned_ = true;
  }
  void unlock() LMS_RELEASE() {
    mu_->unlock();
    owned_ = false;
  }
  bool owns_lock() const { return owned_; }

 private:
  friend class CondVar;

  Mutex* mu_;
  bool owned_ = false;
};

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

/// Condition variable bound to sync::Mutex via UniqueLock. Deliberately has
/// no predicate overloads — spell the `while (!cond) wait(lock);` loop at
/// the call site so Clang's analysis sees guarded reads under the held lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  /// The lock must be owned. The wait releases and re-acquires it; the rank
  /// checker unwinds and replays the bookkeeping accordingly, so waiting
  /// while holding a *higher*-ranked second lock is flagged on wakeup.
  void wait(UniqueLock& lock) {
    Mutex& mu = *lock.mu_;
#if LMS_SYNC_RANK_CHECKS
    detail::note_release(&mu);
#endif
    {
      std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
      cv_.wait(native);
      native.release();
    }
#if LMS_SYNC_RANK_CHECKS
    detail::check_order(&mu, mu.rank_, mu.seq_, mu.name_);
    detail::note_acquire(&mu, mu.rank_, mu.seq_, mu.name_, /*try_acquired=*/false);
#endif
  }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lock, const std::chrono::duration<Rep, Period>& dur) {
    Mutex& mu = *lock.mu_;
#if LMS_SYNC_RANK_CHECKS
    detail::note_release(&mu);
#endif
    std::cv_status status;
    {
      std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
      status = cv_.wait_for(native, dur);
      native.release();
    }
#if LMS_SYNC_RANK_CHECKS
    detail::check_order(&mu, mu.rank_, mu.seq_, mu.name_);
    detail::note_acquire(&mu, mu.rank_, mu.seq_, mu.name_, /*try_acquired=*/false);
#endif
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace lms::core::sync
