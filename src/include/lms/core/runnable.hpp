#pragma once

// lms::core::Runnable — the shared lifecycle contract for components whose
// background work runs on a TaskScheduler.
//
// Replaces the per-component start()/stop()/join() triples: a component
// derives from Runnable, submits its periodic tasks in on_attach() and
// cancels them (dropping the PeriodicTaskHandles) in on_detach(). The owner
// then has exactly one verb pair for every component:
//
//   router.attach(sched);      // declare tasks, begin running
//   ...
//   router.detach();           // cancel tasks; in-flight runs have finished
//
// attach() is one-shot per detach(): attach → detach → attach is legal
// (e.g. tests re-attaching to a fresh scheduler), attach while attached is
// ignored. detach() while not attached is a no-op, so destructors can call
// it unconditionally.
//
// The tri-state (never attached / attached / detached) feeds /health
// readiness: a component that *was* attached and has since been detached is
// degraded — its background work stopped — while one that was never
// attached is simply externally driven (the harness ticks it) and reports
// no scheduler check at all.

#include <atomic>

#include "lms/core/taskscheduler.hpp"

namespace lms::core {

class Runnable {
 public:
  virtual ~Runnable() = default;
  Runnable(const Runnable&) = delete;
  Runnable& operator=(const Runnable&) = delete;

  /// Submit the component's background tasks to `sched`. Ignored while
  /// already attached. `sched` must outlive the attachment.
  void attach(TaskScheduler& sched) {
    if (state_.load(std::memory_order_acquire) == State::kAttached) return;
    sched_ = &sched;
    on_attach(sched);
    state_.store(State::kAttached, std::memory_order_release);
  }

  /// Cancel the component's tasks; when detach() returns no task of this
  /// component is running or will run again. No-op while not attached.
  void detach() {
    if (state_.load(std::memory_order_acquire) != State::kAttached) return;
    on_detach();
    sched_ = nullptr;
    state_.store(State::kDetached, std::memory_order_release);
  }

  bool attached() const { return state_.load(std::memory_order_acquire) == State::kAttached; }

  /// True once attach() has been called at least once (even if since
  /// detached) — the readiness probes use ever_attached() && !attached()
  /// as "background work was stopped".
  bool ever_attached() const {
    return state_.load(std::memory_order_acquire) != State::kNeverAttached;
  }

 protected:
  Runnable() = default;

  /// Submit tasks (typically TaskScheduler::submit_periodic) and stash the
  /// handles. Called with the attachment not yet visible via attached().
  virtual void on_attach(TaskScheduler& sched) = 0;

  /// Cancel/drop the task handles; must not return until in-flight runs
  /// finished (PeriodicTaskHandle::cancel gives this for free).
  virtual void on_detach() = 0;

  /// The scheduler attached to, nullptr otherwise. For derived classes that
  /// submit extra one-shot tasks while attached.
  TaskScheduler* scheduler() const { return sched_; }

 private:
  enum class State { kNeverAttached, kAttached, kDetached };

  std::atomic<State> state_{State::kNeverAttached};
  TaskScheduler* sched_ = nullptr;
};

}  // namespace lms::core
