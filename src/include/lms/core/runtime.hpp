#pragma once

// lms::core::runtime — process-wide runtime-utilization registry.
//
// Companion to the lockstats table in lms/core/sync.hpp: where lockstats
// answers "which lock do threads wait on", this header answers "how full
// are the queues and how busy are the background loops". Two kinds of
// participants self-register here:
//
//   - util::BoundedQueue (when constructed with a name) exposes a
//     QueueStats block: pushes/pops, blocked and rejected pushes, current
//     depth and the high watermark. Counters are relaxed atomics bumped
//     under the queue's own lock; readers snapshot without coordination.
//
//   - Background loops (router flusher, self-scrape, trace exporter, TCP
//     accept loop, alert evaluator, retention, CQ runner) own a LoopStats
//     and bracket each iteration's useful work with begin_busy()/end_busy()
//     (or a BusyScope). Time between an end_busy and the next begin_busy
//     counts as idle, which makes busy/(busy+idle) the loop's duty cycle.
//
// This sits in core (not obs) because util::BoundedQueue must not depend on
// the metrics registry; lms::obs reads the snapshots and exports them as
// lms_runtime_* instruments and in GET /debug/runtime.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "lms/core/sync.hpp"

namespace lms::core::runtime {

/// Monotonic nanoseconds (shared with the lockstats clock).
inline std::uint64_t now_ns() { return sync::lockstats::now_ns(); }

// ---------------------------------------------------------------------------
// Queues
// ---------------------------------------------------------------------------

/// Stats block embedded in a named util::BoundedQueue. The embedding queue
/// updates the counters while holding its own lock, so stores are plain
/// relaxed writes; concurrent readers see a consistent-enough snapshot.
struct QueueStats {
  const char* name = nullptr;
  std::size_t capacity = 0;
  std::atomic<std::uint64_t> pushes{0};
  std::atomic<std::uint64_t> pops{0};
  std::atomic<std::uint64_t> blocked_pushes{0};   ///< push() waited for space
  std::atomic<std::uint64_t> rejected_pushes{0};  ///< try_push() hit a full queue
  std::atomic<std::uint64_t> depth{0};
  std::atomic<std::uint64_t> high_watermark{0};

  void on_push(std::size_t new_depth) {
    pushes.fetch_add(1, std::memory_order_relaxed);
    depth.store(new_depth, std::memory_order_relaxed);
    sync::lockstats::atomic_max(high_watermark, new_depth);
  }
  void on_pop(std::size_t new_depth) {
    pops.fetch_add(1, std::memory_order_relaxed);
    depth.store(new_depth, std::memory_order_relaxed);
  }
};

// ---------------------------------------------------------------------------
// Loops
// ---------------------------------------------------------------------------

void register_loop(const class LoopStats* loop);
void unregister_loop(const class LoopStats* loop);
void register_queue(const QueueStats* stats);
void unregister_queue(const QueueStats* stats);

/// Duty-cycle tracker for one background loop. begin_busy()/end_busy() are
/// called from the owning loop thread only; the accumulated totals are
/// atomics so snapshots can read them from other threads.
class LoopStats {
 public:
  explicit LoopStats(const char* name) : name_(name) { register_loop(this); }
  ~LoopStats() { unregister_loop(this); }
  LoopStats(const LoopStats&) = delete;
  LoopStats& operator=(const LoopStats&) = delete;

  /// Start of an iteration's useful work. Time since the previous
  /// end_busy() is accounted as idle (sleeping / blocked on a CV or poll).
  void begin_busy() {
    const std::uint64_t now = now_ns();
    if (last_end_ns_ != 0) {
      idle_ns_.fetch_add(now - last_end_ns_, std::memory_order_relaxed);
    }
    busy_start_ns_ = now;
  }

  /// End of the iteration's useful work.
  void end_busy() {
    const std::uint64_t now = now_ns();
    if (busy_start_ns_ != 0) {
      busy_ns_.fetch_add(now - busy_start_ns_, std::memory_order_relaxed);
      iterations_.fetch_add(1, std::memory_order_relaxed);
      busy_start_ns_ = 0;
    }
    last_end_ns_ = now;
  }

  const char* name() const { return name_; }
  std::uint64_t iterations() const { return iterations_.load(std::memory_order_relaxed); }
  std::uint64_t busy_ns() const { return busy_ns_.load(std::memory_order_relaxed); }
  std::uint64_t idle_ns() const { return idle_ns_.load(std::memory_order_relaxed); }

 private:
  const char* name_;
  std::atomic<std::uint64_t> iterations_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::uint64_t> idle_ns_{0};
  // Owner-thread scratch (no concurrent access).
  std::uint64_t busy_start_ns_ = 0;
  std::uint64_t last_end_ns_ = 0;
};

/// RAII begin_busy/end_busy bracket for one iteration.
class BusyScope {
 public:
  explicit BusyScope(LoopStats& loop) : loop_(loop) { loop_.begin_busy(); }
  ~BusyScope() { loop_.end_busy(); }
  BusyScope(const BusyScope&) = delete;
  BusyScope& operator=(const BusyScope&) = delete;

 private:
  LoopStats& loop_;
};

// ---------------------------------------------------------------------------
// Registry + snapshots
// ---------------------------------------------------------------------------

namespace impl {

struct Registry {
  // Taken while registering (object construction) and snapshotting; ranked
  // near the top of the hierarchy so registration is legal while holding
  // any component lock (e.g. the pub/sub broker creating a subscriber
  // queue under its own mutex).
  sync::Mutex mu{sync::Rank::kRuntimeRegistry, "core.runtime.registry"};
  std::vector<const QueueStats*> queues LMS_GUARDED_BY(mu);
  std::vector<const LoopStats*> loops LMS_GUARDED_BY(mu);
};

inline Registry& registry() {
  static Registry r;
  return r;
}

template <class T>
void erase_ptr(std::vector<const T*>& v, const T* p) {
  for (auto it = v.begin(); it != v.end(); ++it) {
    if (*it == p) {
      v.erase(it);
      return;
    }
  }
}

}  // namespace impl

inline void register_queue(const QueueStats* stats) {
  impl::Registry& r = impl::registry();
  sync::LockGuard lock(r.mu);
  r.queues.push_back(stats);
}

inline void unregister_queue(const QueueStats* stats) {
  impl::Registry& r = impl::registry();
  sync::LockGuard lock(r.mu);
  impl::erase_ptr(r.queues, stats);
}

inline void register_loop(const LoopStats* loop) {
  impl::Registry& r = impl::registry();
  sync::LockGuard lock(r.mu);
  r.loops.push_back(loop);
}

inline void unregister_loop(const LoopStats* loop) {
  impl::Registry& r = impl::registry();
  sync::LockGuard lock(r.mu);
  impl::erase_ptr(r.loops, loop);
}

struct QueueSnapshot {
  std::string name;
  std::size_t capacity;
  std::uint64_t pushes;
  std::uint64_t pops;
  std::uint64_t blocked_pushes;
  std::uint64_t rejected_pushes;
  std::uint64_t depth;
  std::uint64_t high_watermark;
};

struct LoopSnapshot {
  std::string name;
  std::uint64_t iterations;
  std::uint64_t busy_ns;
  std::uint64_t idle_ns;
  /// busy / (busy + idle) in percent; 0 when the loop has not run.
  double duty_pct;
};

inline std::vector<QueueSnapshot> queue_snapshot() {
  impl::Registry& r = impl::registry();
  sync::LockGuard lock(r.mu);
  std::vector<QueueSnapshot> out;
  out.reserve(r.queues.size());
  for (const QueueStats* q : r.queues) {
    QueueSnapshot s;
    s.name = q->name != nullptr ? q->name : "<unnamed>";
    s.capacity = q->capacity;
    s.pushes = q->pushes.load(std::memory_order_relaxed);
    s.pops = q->pops.load(std::memory_order_relaxed);
    s.blocked_pushes = q->blocked_pushes.load(std::memory_order_relaxed);
    s.rejected_pushes = q->rejected_pushes.load(std::memory_order_relaxed);
    s.depth = q->depth.load(std::memory_order_relaxed);
    s.high_watermark = q->high_watermark.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

inline std::vector<LoopSnapshot> loop_snapshot() {
  impl::Registry& r = impl::registry();
  sync::LockGuard lock(r.mu);
  std::vector<LoopSnapshot> out;
  out.reserve(r.loops.size());
  for (const LoopStats* l : r.loops) {
    LoopSnapshot s;
    s.name = l->name() != nullptr ? l->name() : "<unnamed>";
    s.iterations = l->iterations();
    s.busy_ns = l->busy_ns();
    s.idle_ns = l->idle_ns();
    const double denom = static_cast<double>(s.busy_ns) + static_cast<double>(s.idle_ns);
    s.duty_pct = denom > 0.0 ? 100.0 * static_cast<double>(s.busy_ns) / denom : 0.0;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace lms::core::runtime
