#pragma once

// lms::core::runtime — process-wide runtime-utilization registry.
//
// Companion to the lockstats table in lms/core/sync.hpp: where lockstats
// answers "which lock do threads wait on", this header answers "how full
// are the queues and how busy are the background loops". Two kinds of
// participants self-register here:
//
//   - util::BoundedQueue (when constructed with a name) exposes a
//     QueueStats block: pushes/pops, blocked and rejected pushes, current
//     depth and the high watermark. Counters are relaxed atomics bumped
//     under the queue's own lock; readers snapshot without coordination.
//
//   - Background loops (router flusher, self-scrape, trace exporter, TCP
//     accept loop, alert evaluator, retention, CQ runner) own a LoopStats
//     and bracket each iteration's useful work with begin_busy()/end_busy()
//     (or a BusyScope). Time between an end_busy and the next begin_busy
//     counts as idle, which makes busy/(busy+idle) the loop's duty cycle.
//
// This sits in core (not obs) because util::BoundedQueue must not depend on
// the metrics registry; lms::obs reads the snapshots and exports them as
// lms_runtime_* instruments and in GET /debug/runtime.

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "lms/core/sync.hpp"

namespace lms::core::runtime {

/// Monotonic nanoseconds (shared with the lockstats clock).
inline std::uint64_t now_ns() { return sync::lockstats::now_ns(); }

// ---------------------------------------------------------------------------
// Queues
// ---------------------------------------------------------------------------

/// Stats block embedded in a named util::BoundedQueue. The embedding queue
/// updates the counters while holding its own lock, so stores are plain
/// relaxed writes; concurrent readers see a consistent-enough snapshot.
struct QueueStats {
  const char* name = nullptr;
  std::size_t capacity = 0;
  std::atomic<std::uint64_t> pushes{0};
  std::atomic<std::uint64_t> pops{0};
  std::atomic<std::uint64_t> blocked_pushes{0};   ///< push() waited for space
  std::atomic<std::uint64_t> rejected_pushes{0};  ///< try_push() hit a full queue
  std::atomic<std::uint64_t> depth{0};
  std::atomic<std::uint64_t> high_watermark{0};

  void on_push(std::size_t new_depth) {
    pushes.fetch_add(1, std::memory_order_relaxed);
    depth.store(new_depth, std::memory_order_relaxed);
    sync::lockstats::atomic_max(high_watermark, new_depth);
  }
  void on_pop(std::size_t new_depth) {
    pops.fetch_add(1, std::memory_order_relaxed);
    depth.store(new_depth, std::memory_order_relaxed);
  }
};

// ---------------------------------------------------------------------------
// Scheduler task identity
// ---------------------------------------------------------------------------

namespace impl {
/// Name of the scheduler task the calling thread is currently running.
/// Written only by TaskNameScope in normal (non-signal) context; read by
/// the same thread, including from the CPU profiler's signal handler — a
/// plain thread-local pointer read is async-signal-safe.
inline thread_local const char* tls_task_name = nullptr;
}  // namespace impl

/// The scheduler task (periodic task name, or the generic "sched.submit"/
/// "sched.pinned"/"sched.delayed" lanes) the calling thread is executing,
/// nullptr outside any task. The CPU profiler tags samples with this, so a
/// hot periodic task can be pivoted straight into its flamegraph.
inline const char* current_task_name() { return impl::tls_task_name; }

/// RAII task-name bracket. The name must stay valid for the scope's
/// lifetime (the scheduler passes names owned by live PeriodicState /
/// string literals, both of which outlive the run).
class TaskNameScope {
 public:
  explicit TaskNameScope(const char* name) : prev_(impl::tls_task_name) {
    impl::tls_task_name = name;
  }
  ~TaskNameScope() { impl::tls_task_name = prev_; }
  TaskNameScope(const TaskNameScope&) = delete;
  TaskNameScope& operator=(const TaskNameScope&) = delete;

 private:
  const char* prev_;
};

// ---------------------------------------------------------------------------
// Scheduler queueing delay (submit -> run latency)
// ---------------------------------------------------------------------------

namespace sched_delay {

/// Log2 delay histogram, same bucketing as the lockstats wait histogram
/// (bucket i counts delays with bit_width(ns) == i; bucket 39 = overflow).
inline constexpr std::size_t kBuckets = sync::lockstats::kWaitBuckets;

/// Fixed capacity of the per-task-name table. Names are the periodic task
/// names plus the three anonymous lanes, so a process uses a couple dozen.
inline constexpr std::size_t kMaxTasks = 64;

/// Per-slot name storage. Names are copied in (periodic task names are
/// std::strings owned by a PeriodicState that can die before the table is
/// next read); over-long names are truncated, which at worst merges two
/// rows sharing a 47-char prefix.
inline constexpr std::size_t kMaxTaskName = 48;

/// One task name's delay distribution. Relaxed atomics bumped by whichever
/// worker pops the task; readers snapshot without coordination. The name
/// bytes are written before the slot is published via Table::used
/// (release/acquire), then never change.
struct TaskStats {
  char name[kMaxTaskName] = {};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> delay_ns_total{0};
  std::atomic<std::uint64_t> delay_ns_max{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> hist{};
};

namespace impl {

struct Table {
  std::array<TaskStats, kMaxTasks> slots;
  std::atomic<std::size_t> used{0};
  std::atomic<std::uint64_t> dropped{0};
};

inline Table& table() {
  static Table t;
  return t;
}

/// Registration-only serialization, same rationale as lockstats::intern_mu.
inline std::mutex& intern_mu() {
  static std::mutex mu;
  return mu;
}

}  // namespace impl

/// Find-or-create the stats slot for a task name (content-compared, so the
/// same name from two schedulers shares one row). nullptr when full.
inline TaskStats* intern(const char* name) {
  if (name == nullptr || name[0] == '\0') name = "<unnamed>";
  impl::Table& t = impl::table();
  const std::size_t seen = t.used.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < seen; ++i) {
    if (std::strncmp(t.slots[i].name, name, kMaxTaskName - 1) == 0) return &t.slots[i];
  }
  std::lock_guard<std::mutex> guard(impl::intern_mu());
  const std::size_t used = t.used.load(std::memory_order_relaxed);
  for (std::size_t i = seen; i < used; ++i) {
    if (std::strncmp(t.slots[i].name, name, kMaxTaskName - 1) == 0) return &t.slots[i];
  }
  if (used >= kMaxTasks) {
    t.dropped.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  TaskStats& slot = t.slots[used];
  std::strncpy(slot.name, name, kMaxTaskName - 1);
  slot.name[kMaxTaskName - 1] = '\0';
  t.used.store(used + 1, std::memory_order_release);
  return &slot;
}

inline void record(TaskStats* s, std::uint64_t delay_ns) {
  if (s == nullptr) return;
  s->count.fetch_add(1, std::memory_order_relaxed);
  s->delay_ns_total.fetch_add(delay_ns, std::memory_order_relaxed);
  sync::lockstats::atomic_max(s->delay_ns_max, delay_ns);
  s->hist[sync::lockstats::wait_bucket(delay_ns)].fetch_add(1, std::memory_order_relaxed);
}

inline std::uint64_t dropped_tasks() {
  return impl::table().dropped.load(std::memory_order_relaxed);
}

struct TaskDelaySnapshot {
  const char* name;
  std::uint64_t count;
  std::uint64_t delay_ns_total;
  std::uint64_t delay_ns_max;
  std::array<std::uint64_t, kBuckets> hist;
};

/// Approximate q-quantile of one task's delay distribution (upper bound of
/// the first bucket reaching the target cumulative count).
inline std::uint64_t delay_quantile_ns(const TaskDelaySnapshot& s, double q) {
  std::uint64_t total = 0;
  for (std::uint64_t c : s.hist) total += c;
  if (total == 0) return 0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += s.hist[i];
    if (cum > target || (q >= 1.0 && cum == total)) {
      return sync::lockstats::bucket_upper_ns(i);
    }
  }
  return sync::lockstats::bucket_upper_ns(kBuckets - 1);
}

/// All task rows with at least one recorded delay, sorted by total delay
/// descending (the ranking /debug/runtime serves).
inline std::vector<TaskDelaySnapshot> snapshot() {
  impl::Table& t = impl::table();
  const std::size_t used = t.used.load(std::memory_order_acquire);
  std::vector<TaskDelaySnapshot> out;
  out.reserve(used);
  for (std::size_t i = 0; i < used; ++i) {
    const TaskStats& s = t.slots[i];
    TaskDelaySnapshot snap;
    snap.name = s.name;  // points into static table storage, never freed
    snap.count = s.count.load(std::memory_order_relaxed);
    if (snap.count == 0) continue;
    snap.delay_ns_total = s.delay_ns_total.load(std::memory_order_relaxed);
    snap.delay_ns_max = s.delay_ns_max.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snap.hist[b] = s.hist[b].load(std::memory_order_relaxed);
    }
    out.push_back(snap);
  }
  std::sort(out.begin(), out.end(), [](const TaskDelaySnapshot& a, const TaskDelaySnapshot& b) {
    return a.delay_ns_total > b.delay_ns_total;
  });
  return out;
}

}  // namespace sched_delay

// ---------------------------------------------------------------------------
// Loops
// ---------------------------------------------------------------------------

void register_loop(const class LoopStats* loop);
void unregister_loop(const class LoopStats* loop);
void register_queue(const QueueStats* stats);
void unregister_queue(const QueueStats* stats);
void register_scheduler(const struct SchedStats* stats);
void unregister_scheduler(const struct SchedStats* stats);

// ---------------------------------------------------------------------------
// Schedulers
// ---------------------------------------------------------------------------

/// Stats block embedded in a core::TaskScheduler. Counters are relaxed
/// atomics bumped by workers and submitters; readers snapshot without
/// coordination (same contract as QueueStats).
struct SchedStats {
  const char* name = nullptr;
  std::size_t workers = 0;
  std::atomic<std::uint64_t> submitted{0};       ///< tasks handed to the scheduler
  std::atomic<std::uint64_t> executed{0};        ///< tasks that ran to completion
  std::atomic<std::uint64_t> stolen{0};          ///< tasks taken from another worker
  std::atomic<std::uint64_t> steal_attempts{0};  ///< steal scans (incl. empty-handed)
  std::atomic<std::uint64_t> pinned{0};          ///< affinity submissions (non-stealable)
  std::atomic<std::uint64_t> delayed{0};         ///< submit_after / periodic re-arms
  std::atomic<std::uint64_t> periodic_runs{0};   ///< periodic-task iterations
  std::atomic<std::uint64_t> depth{0};           ///< ready tasks across all queues
  std::atomic<std::uint64_t> high_watermark{0};  ///< max observed ready depth

  void on_enqueue(std::uint64_t new_depth) {
    depth.store(new_depth, std::memory_order_relaxed);
    sync::lockstats::atomic_max(high_watermark, new_depth);
  }
};

/// Duty-cycle tracker for one background loop or periodic task. Iterations
/// never overlap, but successive begin_busy()/end_busy() brackets may come
/// from *different* threads — a periodic task hops across scheduler workers
/// while remaining one logical loop — so the between-iteration scratch is
/// atomic (relaxed: the scheduler's queue handoff orders the accesses).
class LoopStats {
 public:
  explicit LoopStats(const char* name) : name_(name) { register_loop(this); }
  ~LoopStats() { unregister_loop(this); }
  LoopStats(const LoopStats&) = delete;
  LoopStats& operator=(const LoopStats&) = delete;

  /// Start of an iteration's useful work. Time since the previous
  /// end_busy() is accounted as idle (sleeping / blocked on a CV or poll,
  /// or waiting in a scheduler timer heap).
  void begin_busy() {
    const std::uint64_t now = now_ns();
    const std::uint64_t last_end = last_end_ns_.load(std::memory_order_relaxed);
    if (last_end != 0 && now > last_end) {
      idle_ns_.fetch_add(now - last_end, std::memory_order_relaxed);
    }
    busy_start_ns_.store(now, std::memory_order_relaxed);
  }

  /// End of the iteration's useful work.
  void end_busy() {
    const std::uint64_t now = now_ns();
    const std::uint64_t start = busy_start_ns_.exchange(0, std::memory_order_relaxed);
    if (start != 0) {
      if (now > start) busy_ns_.fetch_add(now - start, std::memory_order_relaxed);
      iterations_.fetch_add(1, std::memory_order_relaxed);
    }
    last_end_ns_.store(now, std::memory_order_relaxed);
  }

  const char* name() const { return name_; }
  std::uint64_t iterations() const { return iterations_.load(std::memory_order_relaxed); }
  std::uint64_t busy_ns() const { return busy_ns_.load(std::memory_order_relaxed); }
  std::uint64_t idle_ns() const { return idle_ns_.load(std::memory_order_relaxed); }

 private:
  const char* name_;
  std::atomic<std::uint64_t> iterations_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::uint64_t> idle_ns_{0};
  // Between-iteration scratch. Written by whichever thread ran the last
  // iteration; iterations themselves never overlap.
  std::atomic<std::uint64_t> busy_start_ns_{0};
  std::atomic<std::uint64_t> last_end_ns_{0};
};

/// RAII begin_busy/end_busy bracket for one iteration.
class BusyScope {
 public:
  explicit BusyScope(LoopStats& loop) : loop_(loop) { loop_.begin_busy(); }
  ~BusyScope() { loop_.end_busy(); }
  BusyScope(const BusyScope&) = delete;
  BusyScope& operator=(const BusyScope&) = delete;

 private:
  LoopStats& loop_;
};

// ---------------------------------------------------------------------------
// Registry + snapshots
// ---------------------------------------------------------------------------

namespace impl {

struct Registry {
  // Taken while registering (object construction) and snapshotting; ranked
  // near the top of the hierarchy so registration is legal while holding
  // any component lock (e.g. the pub/sub broker creating a subscriber
  // queue under its own mutex).
  sync::Mutex mu{sync::Rank::kRuntimeRegistry, "core.runtime.registry"};
  std::vector<const QueueStats*> queues LMS_GUARDED_BY(mu);
  std::vector<const LoopStats*> loops LMS_GUARDED_BY(mu);
  std::vector<const SchedStats*> scheds LMS_GUARDED_BY(mu);
};

inline Registry& registry() {
  static Registry r;
  return r;
}

template <class T>
void erase_ptr(std::vector<const T*>& v, const T* p) {
  for (auto it = v.begin(); it != v.end(); ++it) {
    if (*it == p) {
      v.erase(it);
      return;
    }
  }
}

}  // namespace impl

inline void register_queue(const QueueStats* stats) {
  impl::Registry& r = impl::registry();
  sync::LockGuard lock(r.mu);
  r.queues.push_back(stats);
}

inline void unregister_queue(const QueueStats* stats) {
  impl::Registry& r = impl::registry();
  sync::LockGuard lock(r.mu);
  impl::erase_ptr(r.queues, stats);
}

inline void register_loop(const LoopStats* loop) {
  impl::Registry& r = impl::registry();
  sync::LockGuard lock(r.mu);
  r.loops.push_back(loop);
}

inline void register_scheduler(const SchedStats* stats) {
  impl::Registry& r = impl::registry();
  sync::LockGuard lock(r.mu);
  r.scheds.push_back(stats);
}

inline void unregister_scheduler(const SchedStats* stats) {
  impl::Registry& r = impl::registry();
  sync::LockGuard lock(r.mu);
  impl::erase_ptr(r.scheds, stats);
}

inline void unregister_loop(const LoopStats* loop) {
  impl::Registry& r = impl::registry();
  sync::LockGuard lock(r.mu);
  impl::erase_ptr(r.loops, loop);
}

struct QueueSnapshot {
  std::string name;
  std::size_t capacity;
  std::uint64_t pushes;
  std::uint64_t pops;
  std::uint64_t blocked_pushes;
  std::uint64_t rejected_pushes;
  std::uint64_t depth;
  std::uint64_t high_watermark;
};

struct LoopSnapshot {
  std::string name;
  std::uint64_t iterations;
  std::uint64_t busy_ns;
  std::uint64_t idle_ns;
  /// busy / (busy + idle) in percent; 0 when the loop has not run.
  double duty_pct;
};

struct SchedSnapshot {
  std::string name;
  std::size_t workers;
  std::uint64_t submitted;
  std::uint64_t executed;
  std::uint64_t stolen;
  std::uint64_t steal_attempts;
  std::uint64_t pinned;
  std::uint64_t delayed;
  std::uint64_t periodic_runs;
  std::uint64_t depth;
  std::uint64_t high_watermark;
};

inline std::vector<QueueSnapshot> queue_snapshot() {
  impl::Registry& r = impl::registry();
  sync::LockGuard lock(r.mu);
  std::vector<QueueSnapshot> out;
  out.reserve(r.queues.size());
  for (const QueueStats* q : r.queues) {
    QueueSnapshot s;
    s.name = q->name != nullptr ? q->name : "<unnamed>";
    s.capacity = q->capacity;
    s.pushes = q->pushes.load(std::memory_order_relaxed);
    s.pops = q->pops.load(std::memory_order_relaxed);
    s.blocked_pushes = q->blocked_pushes.load(std::memory_order_relaxed);
    s.rejected_pushes = q->rejected_pushes.load(std::memory_order_relaxed);
    s.depth = q->depth.load(std::memory_order_relaxed);
    s.high_watermark = q->high_watermark.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

inline std::vector<LoopSnapshot> loop_snapshot() {
  impl::Registry& r = impl::registry();
  sync::LockGuard lock(r.mu);
  std::vector<LoopSnapshot> out;
  out.reserve(r.loops.size());
  for (const LoopStats* l : r.loops) {
    LoopSnapshot s;
    s.name = l->name() != nullptr ? l->name() : "<unnamed>";
    s.iterations = l->iterations();
    s.busy_ns = l->busy_ns();
    s.idle_ns = l->idle_ns();
    const double denom = static_cast<double>(s.busy_ns) + static_cast<double>(s.idle_ns);
    s.duty_pct = denom > 0.0 ? 100.0 * static_cast<double>(s.busy_ns) / denom : 0.0;
    out.push_back(std::move(s));
  }
  return out;
}

inline std::vector<SchedSnapshot> sched_snapshot() {
  impl::Registry& r = impl::registry();
  sync::LockGuard lock(r.mu);
  std::vector<SchedSnapshot> out;
  out.reserve(r.scheds.size());
  for (const SchedStats* sc : r.scheds) {
    SchedSnapshot s;
    s.name = sc->name != nullptr ? sc->name : "<unnamed>";
    s.workers = sc->workers;
    s.submitted = sc->submitted.load(std::memory_order_relaxed);
    s.executed = sc->executed.load(std::memory_order_relaxed);
    s.stolen = sc->stolen.load(std::memory_order_relaxed);
    s.steal_attempts = sc->steal_attempts.load(std::memory_order_relaxed);
    s.pinned = sc->pinned.load(std::memory_order_relaxed);
    s.delayed = sc->delayed.load(std::memory_order_relaxed);
    s.periodic_runs = sc->periodic_runs.load(std::memory_order_relaxed);
    s.depth = sc->depth.load(std::memory_order_relaxed);
    s.high_watermark = sc->high_watermark.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace lms::core::runtime
