#pragma once

// The metrics router (paper §III-B) — the heart of the LIKWID Monitoring
// Stack. It mimics the HTTP interface of an InfluxDB database so any
// existing collector can point at it unchanged, and adds:
//   - a job signal endpoint: (de)allocation signals from the scheduler carry
//     tags that are attached to all measurements from the job's hosts,
//   - enrichment: every incoming point is tagged from the tag store (keyed
//     by the mandatory hostname tag),
//   - forwarding to the database back-end plus optional duplication into
//     per-user databases,
//   - job signals forwarded into the DB as annotation events,
//   - publication of metrics and meta information over PUB/SUB for attached
//     stream analyzers (the ZeroMQ role).
//
// Endpoints:
//   POST /write?db=<name>       line protocol; enrich + forward
//   POST /job/start             JSON: {"jobid","user","nodes":[...],"tags":{}}
//   POST /job/end               JSON: {"jobid"}
//   GET  /jobs                  JSON list of running jobs
//   GET  /ping                  204
//   GET  /stats                 router counters (JSON)
//   GET  /metrics               full registry, Prometheus-style text
//   GET  /health                liveness (spool depth, jobs) as JSON
//   GET  /ready                 readiness: health + DB back-end reachability
//
// Ingest runs as a single pass parse -> route -> append: the body is parsed
// once into a tsdb::WriteBatch (the same parser the TSDB façade uses, so the
// 400/404 error responses are byte-identical on both services), enriched,
// and either forwarded inline (default) or coalesced into per-destination
// queues drained by a background flusher (Options::async_ingest). The async
// queues are bounded; when full the write is rejected with an explicit
// backpressure error that the HTTP layer turns into 429 + Retry-After, and
// the rejection is surfaced through the router_ingest_* instruments.
//
// All counters live in an lms::obs metrics registry ("router_*" instruments)
// so the self-scrape loop can feed them back into the stack's own TSDB; the
// legacy Stats struct and the /stats JSON shape are kept as a view over the
// registry.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lms/core/runnable.hpp"
#include "lms/core/runtime.hpp"
#include "lms/core/sync.hpp"
#include "lms/core/tagstore.hpp"
#include "lms/net/health.hpp"
#include "lms/net/pubsub.hpp"
#include "lms/net/transport.hpp"
#include "lms/obs/metrics.hpp"
#include "lms/tsdb/ingest.hpp"
#include "lms/util/clock.hpp"
#include "lms/util/logging.hpp"

namespace lms::core {

/// A job (de)allocation signal, as delivered by the scheduler integration.
struct JobSignal {
  std::string job_id;
  std::string user;
  std::vector<std::string> nodes;
  std::vector<lineproto::Tag> extra_tags;  // e.g. queue, account, jobname
};

/// A running job as tracked by the router.
struct RunningJob {
  std::string job_id;
  std::string user;
  std::vector<std::string> nodes;
  std::vector<lineproto::Tag> extra_tags;
  util::TimeNs start_time = 0;
};

class MetricsRouter : public Runnable {
 public:
  struct Options {
    std::string db_url;              ///< back-end base URL, e.g. "inproc://tsdb"
    std::string database = "lms";    ///< primary database name
    bool duplicate_per_user = false; ///< also write into "user_<user>" databases
    std::string user_db_prefix = "user_";
    std::string events_measurement = "events";
    bool publish = true;  ///< publish to the broker when one is attached
    /// Store-and-forward: when > 0, points that cannot be forwarded (DB
    /// down) are spooled — bounded, oldest dropped first — and the write is
    /// acknowledged to the producer; the spool drains on later writes or an
    /// explicit flush_spool(). 0 disables spooling: forward failures are
    /// reported back to the producer, which keeps its own retry queue.
    std::size_t spool_capacity = 0;
    /// Batched async ingest: accepted writes are routed into bounded
    /// per-destination queues and forwarded by a periodic "router.flusher"
    /// task on a TaskScheduler, decoupling producer latency from back-end
    /// latency. Writes that would overflow the queues are rejected with a
    /// "backpressure" error (HTTP 429 + Retry-After on the wire) instead of
    /// blocking producers.
    bool async_ingest = false;
    /// Scheduler the flusher task runs on (async_ingest only). nullptr =
    /// the router owns a private single-worker TaskScheduler, so standalone
    /// construction keeps its old semantics; pass the stack-wide scheduler
    /// to fold the flusher into the shared runtime. Must outlive the
    /// router. The router attaches itself in the constructor; callers using
    /// a manual-mode scheduler drive the flusher with advance_to()/
    /// flush_ingest() instead of wall time.
    TaskScheduler* scheduler = nullptr;
    /// Total points buffered across all destination queues before new
    /// writes are rejected with backpressure.
    std::size_t ingest_queue_capacity = 8192;
    /// Points per destination per flush cycle; reaching this many queued
    /// points also wakes the flusher early.
    std::size_t ingest_max_batch = 2048;
    /// Flusher wake-up interval (real time, not SimClock).
    util::TimeNs ingest_flush_interval = 50 * util::kNanosPerMilli;
    /// Metrics registry for the router_* instruments. nullptr = the router
    /// owns a private registry, so per-instance counts stay exact; pass a
    /// shared registry to fold the router into a stack-wide self-scrape.
    obs::Registry* registry = nullptr;
    /// Recent-log ring served at /debug/logs (nullptr = endpoint disabled).
    /// The ring must outlive this router.
    util::LogRing* log_ring = nullptr;
  };

  MetricsRouter(net::HttpClient& db_client, const util::Clock& clock, Options options,
                net::PubSubBroker* broker = nullptr);
  ~MetricsRouter();

  /// HTTP entry point (bind to inproc or TCP).
  net::HttpHandler handler();

  // ---- programmatic API (each HTTP endpoint delegates here) ----

  /// Ingest a line-protocol batch. Returns the number of accepted points.
  util::Result<std::size_t> write_lines(std::string_view body,
                                        const std::string& db_override = {});

  /// Ingest an already-parsed batch (the core of the write path; both
  /// write_lines and the /write endpoint land here). Timestamps are
  /// normalized (precision scale applied, missing stamps filled with
  /// batch.default_time or now), points are enriched from the tag store,
  /// then forwarded inline or enqueued for the async flusher. An empty
  /// batch.db targets the primary database.
  util::Result<std::size_t> write_points(tsdb::WriteBatch batch);

  /// Register a job start: tag store update + DB annotation + publication.
  util::Status job_start(const JobSignal& signal);

  /// Register a job end.
  util::Status job_end(const std::string& job_id);

  std::vector<RunningJob> running_jobs() const;
  std::optional<RunningJob> find_job(const std::string& job_id) const;

  const TagStore& tag_store() const { return tags_; }

  /// Counter snapshot, read from the metrics registry (kept for the /stats
  /// JSON shape and programmatic callers).
  struct Stats {
    std::uint64_t points_in = 0;
    std::uint64_t points_out = 0;
    std::uint64_t points_duplicated = 0;
    std::uint64_t parse_errors = 0;
    std::uint64_t forward_failures = 0;
    std::uint64_t jobs_started = 0;
    std::uint64_t jobs_ended = 0;
    std::uint64_t points_spooled = 0;
    std::uint64_t spool_dropped = 0;
    std::uint64_t ingest_rejected = 0;
    std::uint64_t ingest_flushed = 0;
  };
  Stats stats() const;

  /// The registry holding the router_* instruments (also what /metrics and
  /// /stats serve).
  obs::Registry& registry() { return *registry_; }

  /// Attempt to forward everything spooled; returns points drained.
  std::size_t flush_spool();
  std::size_t spool_size() const;

  /// Drain the async ingest queues now (all destinations, until empty);
  /// returns points forwarded or dropped. The flusher calls this on its
  /// interval; tests and shutdown call it for determinism. No-op (0) when
  /// async ingest is off.
  std::size_t flush_ingest();

  /// Points currently buffered across all async ingest queues.
  std::size_t ingest_queue_points() const;

  /// Component health report. `readiness` adds the DB back-end probe
  /// (GET <db_url>/ping), so /ready degrades when the TSDB is unreachable.
  net::ComponentHealth health(bool readiness);

  /// PUB/SUB topics used.
  static constexpr std::string_view kTopicMetrics = "metrics";
  static constexpr std::string_view kTopicJobs = "jobs";

 protected:
  // Runnable contract: attaching declares the periodic flusher task (async
  // ingest only); detaching cancels it and drains the queues one last time.
  void on_attach(TaskScheduler& sched) override;
  void on_detach() override;

 private:
  /// Result of one POST to the back-end: ok iff 2xx; http_status is 0 on a
  /// transport error; body carries the back-end's error payload so unknown-
  /// database rejections pass through to the producer byte-identical.
  struct ForwardOutcome {
    util::Status status;
    int http_status = 0;
    std::string body;
  };
  /// A routed batch waiting in (or taken from) the async ingest queues.
  struct IngestBatch {
    std::string db;
    bool duplicate = false;  ///< per-user copy (counts as duplicated, never spooled)
    std::vector<lineproto::Point> points;
    /// Trace context of the producer whose write opened this batch (first
    /// writer wins when batches coalesce). The flusher adopts it, so the
    /// background forward span joins the trace that enqueued the points
    /// instead of starting an anonymous root.
    obs::TraceContext trace;
  };

  ForwardOutcome forward(const std::string& db, const std::vector<lineproto::Point>& points);
  util::Result<std::size_t> forward_sync(tsdb::WriteBatch& batch);
  util::Result<std::size_t> enqueue_ingest(const tsdb::WriteBatch& batch);
  std::vector<IngestBatch> take_ingest_locked(std::size_t max_points)
      LMS_REQUIRES(ingest_mu_);
  void forward_ingest(IngestBatch batch);
  void spool_points(const std::vector<lineproto::Point>& points);
  net::HttpResponse handle_write(const net::HttpRequest& req);
  net::HttpResponse handle_job_start(const net::HttpRequest& req);
  net::HttpResponse handle_job_end(const net::HttpRequest& req);
  net::HttpResponse handle_jobs(const net::HttpRequest& req);
  net::HttpResponse handle_stats(const net::HttpRequest& req);

  net::HttpClient& db_client_;
  const util::Clock& clock_;
  Options options_;
  net::PubSubBroker* broker_;
  TagStore tags_;
  // The three router locks never nest with each other or with the tag store:
  // every critical section copies state in/out and forwards/publishes with
  // all of them released.
  mutable core::sync::Mutex jobs_mu_{core::sync::Rank::kRouterJobs, "core.router.jobs"};
  std::map<std::string, RunningJob> jobs_ LMS_GUARDED_BY(jobs_mu_);
  mutable core::sync::Mutex spool_mu_{core::sync::Rank::kRouterSpool, "core.router.spool"};
  /// Primary-db points awaiting retry.
  std::deque<lineproto::Point> spool_ LMS_GUARDED_BY(spool_mu_);

  // Async ingest pipeline (Options::async_ingest).
  mutable core::sync::Mutex ingest_mu_{core::sync::Rank::kRouterIngest, "core.router.ingest"};
  /// Keyed by destination db.
  std::map<std::string, IngestBatch> ingest_q_ LMS_GUARDED_BY(ingest_mu_);
  /// Total points across ingest_q_.
  std::size_t ingest_points_ LMS_GUARDED_BY(ingest_mu_) = 0;
  /// Depth/watermark/rejection stats for the ingest queues (aggregated over
  /// all destinations, in points); registered with core::runtime only while
  /// async ingest is enabled. Counters are atomics, bumped under ingest_mu_.
  core::runtime::QueueStats ingest_queue_stats_;
  /// Private runtime when async_ingest is on but Options::scheduler is
  /// null (standalone routers, most router_test cases).
  std::unique_ptr<TaskScheduler> own_sched_;
  /// The periodic flusher. trigger() replaces the old CV notify when a
  /// batch-size worth of points is queued.
  PeriodicTaskHandle flusher_task_;

  std::unique_ptr<obs::Registry> own_registry_;  // when Options::registry == nullptr
  obs::Registry* registry_;
  // Cached instrument handles: the hot path touches only these atomics.
  obs::Counter& points_in_;
  obs::Counter& points_out_;
  obs::Counter& points_duplicated_;
  obs::Counter& parse_errors_;
  obs::Counter& forward_failures_;
  obs::Counter& jobs_started_;
  obs::Counter& jobs_ended_;
  obs::Counter& points_spooled_;
  obs::Counter& spool_dropped_;
  obs::Counter& ingest_rejected_;
  obs::Counter& ingest_flushed_;
  obs::Histogram& write_ns_;
  obs::Histogram& forward_ns_;
  obs::Histogram& ingest_flush_ns_;
};

}  // namespace lms::core
