#pragma once

// Pulling proxy (paper §III-B): some data sources cannot push — notably
// Ganglia's gmond, which exposes cluster state as an XML document that must
// be pulled. The proxy polls such a source, converts its metrics into line
// protocol and pushes them into the router like any other collector.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lms/lineproto/point.hpp"
#include "lms/net/transport.hpp"
#include "lms/util/clock.hpp"

namespace lms::core {

/// A pullable source: returns points when polled.
class PullSource {
 public:
  virtual ~PullSource() = default;
  virtual std::string name() const = 0;
  virtual util::Result<std::vector<lineproto::Point>> pull(util::TimeNs now) = 0;
};

/// Parses a gmond-style GANGLIA_XML document into points:
///   <GANGLIA_XML><CLUSTER NAME="c"><HOST NAME="h1">
///     <METRIC NAME="load_one" VAL="0.5" TYPE="double" UNITS=""/>...
/// Each METRIC becomes measurement "ganglia" with field <NAME> and the
/// hostname tag; string-typed metrics become string fields (events).
util::Result<std::vector<lineproto::Point>> parse_ganglia_xml(std::string_view xml,
                                                              util::TimeNs now);

/// PullSource over an HTTP endpoint serving gmond XML.
class GangliaXmlSource final : public PullSource {
 public:
  GangliaXmlSource(net::HttpClient& client, std::string url);
  std::string name() const override { return "ganglia"; }
  util::Result<std::vector<lineproto::Point>> pull(util::TimeNs now) override;

 private:
  net::HttpClient& client_;
  std::string url_;
};

/// The proxy: polls every source and pushes the result into the router.
class PullProxy {
 public:
  PullProxy(net::HttpClient& router_client, std::string router_url,
            std::string database = "lms");

  void add_source(std::unique_ptr<PullSource> source, util::TimeNs interval);

  /// Poll due sources; returns the number of points pushed.
  std::size_t tick(util::TimeNs now);

  std::uint64_t pull_failures() const { return pull_failures_; }

 private:
  struct Scheduled {
    std::unique_ptr<PullSource> source;
    util::TimeNs interval;
    util::TimeNs next_due = 0;
  };
  net::HttpClient& client_;
  std::string router_url_;
  std::string database_;
  std::vector<Scheduled> sources_;
  std::uint64_t pull_failures_ = 0;
};

}  // namespace lms::core
