#pragma once

// libusermetric (paper §IV): the lightweight application-level monitoring
// library. Applications report values and events; the library buffers them
// and sends batched line-protocol messages to the router. Default tags are
// attached to every message; arbitrary per-message tags (e.g. a thread
// identifier) can be supplied. A command-line front-end (see
// parse_cli_metric) covers batch scripts.

#include <cstdint>
#include <string>
#include <vector>

#include "lms/core/sync.hpp"
#include "lms/lineproto/point.hpp"
#include "lms/net/transport.hpp"
#include "lms/util/clock.hpp"

namespace lms::usermetric {

class UserMetricClient {
 public:
  struct Options {
    std::string router_url;            ///< destination /write endpoint base
    std::string database = "lms";
    std::string measurement = "usermetric";       ///< for numeric values
    std::string event_measurement = "userevents"; ///< for string events
    std::vector<lineproto::Tag> default_tags;     ///< attached to every point
    std::size_t buffer_capacity = 1000;  ///< flush when this many buffered
    util::TimeNs flush_interval = 5 * util::kNanosPerSecond;
    bool drop_when_full = false;  ///< true: drop instead of synchronous flush
  };

  UserMetricClient(net::HttpClient& client, const util::Clock& clock, Options options);
  ~UserMetricClient();
  UserMetricClient(const UserMetricClient&) = delete;
  UserMetricClient& operator=(const UserMetricClient&) = delete;

  /// Report a numeric metric. `timestamp` 0 = now.
  void value(std::string_view name, double v, std::vector<lineproto::Tag> tags = {},
             util::TimeNs timestamp = 0);

  /// Report an event (string payload, drawn as an annotation in the views).
  void event(std::string_view name, std::string_view text,
             std::vector<lineproto::Tag> tags = {}, util::TimeNs timestamp = 0);

  /// Send everything buffered now. Returns false if the send failed (points
  /// stay buffered).
  bool flush();

  /// Called periodically by the owner; flushes when the interval elapsed.
  void tick(util::TimeNs now);

  struct Stats {
    std::uint64_t values_reported = 0;
    std::uint64_t events_reported = 0;
    std::uint64_t points_sent = 0;
    std::uint64_t batches_sent = 0;
    std::uint64_t send_failures = 0;
    std::uint64_t points_dropped = 0;
  };
  Stats stats() const;

  std::size_t buffered() const;

 private:
  void enqueue(lineproto::Point point);
  bool flush_locked() LMS_REQUIRES(mu_);

  net::HttpClient& client_;
  const util::Clock& clock_;
  Options options_;
  /// Deliberately held across the synchronous send in flush_locked() (the
  /// buffer must not mutate mid-serialize), which is why this rank sits at
  /// the bottom of the application layer — below net and logging.
  mutable core::sync::Mutex mu_{core::sync::Rank::kUserMetric, "usermetric.client"};
  std::vector<lineproto::Point> buffer_ LMS_GUARDED_BY(mu_);
  util::TimeNs last_flush_ LMS_GUARDED_BY(mu_) = 0;
  Stats stats_ LMS_GUARDED_BY(mu_);
};

/// Parse a command-line metric specification, the libusermetric CLI format:
///   <name> <value> [tag=value ...]      -> numeric point
///   --event <name> <text> [tag=value..] -> event point
/// Returns the point (without default tags — the client adds those).
util::Result<lineproto::Point> parse_cli_metric(const std::vector<std::string>& args,
                                                util::TimeNs now);

}  // namespace lms::usermetric
