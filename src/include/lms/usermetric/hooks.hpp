#pragma once

// Application-transparent monitoring hooks (paper §IV): LMS ships preloadable
// libraries that overload common functions for thread affinity and data
// allocation so applications report monitoring data without code changes.
// In this reproduction the hooks are explicit wrapper objects the workload
// models call — the *reporting* path (what data flows, in which format) is
// identical to the LD_PRELOAD variant; only the interception mechanism
// differs (see DESIGN.md §1).

#include <cstddef>
#include <string>

#include "lms/core/sync.hpp"
#include "lms/usermetric/usermetric.hpp"

namespace lms::usermetric {

/// Tracks heap allocation volume the way a preloaded malloc/free pair would,
/// reporting the current allocated size and cumulative churn.
class AllocTracker {
 public:
  AllocTracker(UserMetricClient& client, util::TimeNs report_interval);

  /// Called in place of malloc/new interposition.
  void on_allocate(std::size_t bytes, util::TimeNs now);
  /// Called in place of free/delete interposition.
  void on_free(std::size_t bytes, util::TimeNs now);

  std::int64_t current_bytes() const;
  std::uint64_t total_allocated() const;

 private:
  void maybe_report(util::TimeNs now);

  UserMetricClient& client_;
  util::TimeNs interval_;
  /// Shim rank; maybe_report() copies the counters out and reports with the
  /// lock released.
  mutable core::sync::Mutex mu_{core::sync::Rank::kAppShim, "usermetric.shim.alloc"};
  std::int64_t current_ LMS_GUARDED_BY(mu_) = 0;
  std::uint64_t total_ LMS_GUARDED_BY(mu_) = 0;
  std::uint64_t alloc_calls_ LMS_GUARDED_BY(mu_) = 0;
  util::TimeNs last_report_ LMS_GUARDED_BY(mu_) = 0;
};

/// Reports thread affinity decisions the way a preloaded
/// pthread_setaffinity_np would.
class AffinityReporter {
 public:
  explicit AffinityReporter(UserMetricClient& client);

  /// Called in place of the affinity-call interposition.
  void on_set_affinity(int thread_id, int cpu, util::TimeNs now);

 private:
  UserMetricClient& client_;
};

}  // namespace lms::usermetric
