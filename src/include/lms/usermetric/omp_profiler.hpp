#pragma once

// OpenMP tooling-interface integration — the second half of the paper's §IV
// plan ("tooling interfaces of common parallelization solutions like MPI or
// OpenMP"). Shaped like an OMPT callback client: the host runtime reports
// parallel-region begin/end with per-thread busy times; the profiler
// derives and periodically reports:
//
//   omp_parallel_fraction  share of wall time inside parallel regions
//   omp_regions_per_sec    parallel region rate
//   omp_load_efficiency    mean(thread busy) / max(thread busy) in regions
//                          (1.0 = perfectly balanced threads)
//   omp_avg_threads        average team size

#include <cstdint>
#include <vector>

#include "lms/core/sync.hpp"
#include "lms/usermetric/usermetric.hpp"

namespace lms::usermetric {

class OmpProfiler {
 public:
  OmpProfiler(UserMetricClient& client, util::TimeNs report_interval);

  /// Record one completed parallel region: wall `duration` and the busy
  /// time of each team thread (size = team size).
  void record_region(util::TimeNs start, util::TimeNs duration,
                     const std::vector<util::TimeNs>& thread_busy);

  /// Flush a report for the current interval.
  void report(util::TimeNs now);

  std::uint64_t total_regions() const;

 private:
  void report_locked(util::TimeNs now) LMS_REQUIRES(mu_);

  UserMetricClient& client_;
  const util::TimeNs interval_;
  /// Held across the client_.value() calls in report_locked() (shim rank,
  /// bottom of the hierarchy).
  mutable core::sync::Mutex mu_{core::sync::Rank::kAppShim, "usermetric.shim.omp"};
  util::TimeNs interval_start_ LMS_GUARDED_BY(mu_) = 0;
  util::TimeNs parallel_time_ LMS_GUARDED_BY(mu_) = 0;
  /// sum(duration * region efficiency)
  double efficiency_weighted_ LMS_GUARDED_BY(mu_) = 0;
  std::uint64_t regions_ LMS_GUARDED_BY(mu_) = 0;
  std::uint64_t thread_sum_ LMS_GUARDED_BY(mu_) = 0;
  std::uint64_t total_regions_ LMS_GUARDED_BY(mu_) = 0;
};

}  // namespace lms::usermetric
