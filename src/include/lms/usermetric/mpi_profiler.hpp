#pragma once

// MPI tooling-interface integration (paper §IV: "further information is
// planned to be gathered through the tooling interfaces of common
// parallelization solutions like MPI or OpenMP"). This implements that
// planned feature: an PMPI-shim-shaped profiler that records time spent and
// bytes moved inside MPI calls per rank and periodically reports derived
// metrics through libusermetric:
//
//   mpi_time_fraction   fraction of wall time inside MPI in the interval
//   mpi_calls_per_sec   call rate
//   mpi_bytes_per_sec   payload rate (pt2pt + collectives)
//   mpi_sync_fraction   share of MPI time in synchronizing calls
//                       (Barrier/Wait/Allreduce) — the load-imbalance smell
//
// In a real deployment the on_enter/on_exit pairs are called from PMPI
// wrappers; the simulated workloads call them directly (same reporting
// path, different interception — DESIGN.md §1).

#include <cstdint>
#include <string>

#include "lms/core/sync.hpp"
#include "lms/usermetric/usermetric.hpp"

namespace lms::usermetric {

enum class MpiCall {
  kSend,
  kRecv,
  kIsend,
  kIrecv,
  kWait,
  kBarrier,
  kBcast,
  kAllreduce,
  kAlltoall,
};

std::string_view mpi_call_name(MpiCall call);

/// True for calls whose duration is predominantly waiting on other ranks.
bool mpi_call_is_synchronizing(MpiCall call);

class MpiProfiler {
 public:
  /// `rank` is attached as a tag to every report.
  MpiProfiler(UserMetricClient& client, int rank, util::TimeNs report_interval);

  /// Record entry into an MPI call; `bytes` is the payload size (0 for
  /// metadata-only calls). Calls do not nest (MPI semantics).
  void on_enter(MpiCall call, util::TimeNs now, std::size_t bytes = 0);

  /// Record return from the current MPI call; reports if the interval
  /// elapsed.
  void on_exit(util::TimeNs now);

  /// Convenience for simulated callers: a whole call at once.
  void record(MpiCall call, util::TimeNs start, util::TimeNs duration, std::size_t bytes = 0);

  /// Flush a report for the current interval now (e.g. at MPI_Finalize).
  void report(util::TimeNs now);

  // Interval-independent counters (for tests).
  std::uint64_t total_calls() const;
  util::TimeNs total_mpi_time() const;

 private:
  void report_locked(util::TimeNs now) LMS_REQUIRES(mu_);

  UserMetricClient& client_;
  const std::string rank_;
  const util::TimeNs interval_;
  /// Held across the client_.value() calls in report_locked(): shims sit at
  /// the very bottom of the hierarchy, below the usermetric client.
  mutable core::sync::Mutex mu_{core::sync::Rank::kAppShim, "usermetric.shim.mpi"};
  // Current call.
  bool in_call_ LMS_GUARDED_BY(mu_) = false;
  MpiCall current_call_ LMS_GUARDED_BY(mu_) = MpiCall::kSend;
  util::TimeNs current_enter_ LMS_GUARDED_BY(mu_) = 0;
  std::size_t current_bytes_ LMS_GUARDED_BY(mu_) = 0;
  // Interval accumulators.
  util::TimeNs interval_start_ LMS_GUARDED_BY(mu_) = 0;
  util::TimeNs mpi_time_ LMS_GUARDED_BY(mu_) = 0;
  util::TimeNs sync_time_ LMS_GUARDED_BY(mu_) = 0;
  std::uint64_t calls_ LMS_GUARDED_BY(mu_) = 0;
  std::uint64_t bytes_ LMS_GUARDED_BY(mu_) = 0;
  // Lifetime totals.
  std::uint64_t total_calls_ LMS_GUARDED_BY(mu_) = 0;
  util::TimeNs total_mpi_time_ LMS_GUARDED_BY(mu_) = 0;
};

}  // namespace lms::usermetric
