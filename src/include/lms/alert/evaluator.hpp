#pragma once

// Alert evaluator — scheduled like tsdb::CqRunner, against the same storage.
//
// The owner calls run(now) on its own cadence, or attaches the evaluator to
// a core::TaskScheduler so a periodic "alert.evaluator" task calls run()
// every Options::eval_interval against Options::clock (the cluster harness
// attaches to a manual-mode scheduler on the sim clock, lms_daemon to the
// threaded scheduler on wall time). Each run evaluates every
// rule over its lookback window, advances the per-instance state machines,
// and emits every transition twice:
//   - as a point in the alerts measurement ("lms_alerts"), so alert history
//     is queryable exactly like any other series, and
//   - through the attached notifier sinks (logger, webhook POST via the
//     lms::net HTTP client, PUB/SUB topic for attached stream consumers).
//
// Deadman detection: with Options::deadman_window > 0 the evaluator keeps an
// absence watch per known host — hosts announced via register_host() plus,
// with deadman_autodiscover, every hostname ever seen in the database. A
// host whose newest sample is older than the window fires "deadman" within
// one evaluation interval; it resolves as soon as the host writes again.

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lms/alert/rule.hpp"
#include "lms/core/runnable.hpp"
#include "lms/core/sync.hpp"
#include "lms/core/taskscheduler.hpp"
#include "lms/net/pubsub.hpp"
#include "lms/net/transport.hpp"
#include "lms/obs/metrics.hpp"
#include "lms/tsdb/query.hpp"
#include "lms/tsdb/storage.hpp"

namespace lms::alert {

/// Receives every alert-state transition. Sinks must not throw.
class NotifierSink {
 public:
  virtual ~NotifierSink() = default;
  virtual void notify(const AlertEvent& event) = 0;
};

/// Logs transitions (firing -> warn, pending/resolved -> info).
class LogSink final : public NotifierSink {
 public:
  void notify(const AlertEvent& event) override;
};

/// POSTs the AlertEvent JSON payload to a webhook URL.
class WebhookSink final : public NotifierSink {
 public:
  WebhookSink(net::HttpClient& client, std::string url);
  void notify(const AlertEvent& event) override;

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t failed() const { return failed_; }

 private:
  net::HttpClient& client_;
  std::string url_;
  std::uint64_t delivered_ = 0;
  std::uint64_t failed_ = 0;
};

/// Publishes the JSON payload on a PUB/SUB topic ("alerts" by default).
class PubSubSink final : public NotifierSink {
 public:
  explicit PubSubSink(net::PubSubBroker& broker, std::string topic = "alerts");
  void notify(const AlertEvent& event) override;

 private:
  net::PubSubBroker& broker_;
  std::string topic_;
};

class Evaluator : public core::Runnable {
 public:
  /// Rule name used for the implicit per-host absence watch.
  static constexpr std::string_view kDeadmanRule = "deadman";

  struct Options {
    std::string database = "lms";
    std::string alerts_measurement = "lms_alerts";
    /// Deadman: fire when a known host has not written for this long
    /// (0 = deadman detection off).
    util::TimeNs deadman_window = 0;
    /// Restrict the deadman scan to one measurement ("" = any measurement;
    /// the alerts measurement itself is always excluded so a deadman event
    /// cannot resolve its own alert).
    std::string deadman_measurement;
    /// Also watch every hostname ever seen in the database, not just the
    /// ones announced via register_host().
    bool deadman_autodiscover = true;
    std::string deadman_severity = "critical";
    /// Registry for the alert_* instruments (evaluations/transitions
    /// counters, firing gauge, evaluation latency). nullptr = none.
    obs::Registry* registry = nullptr;
    /// Cadence of the periodic evaluation task once attached.
    util::TimeNs eval_interval = 5 * util::kNanosPerSecond;
    /// Clock the periodic task evaluates against. nullptr = wall clock.
    const util::Clock* clock = nullptr;
  };

  Evaluator(tsdb::Storage& storage, Options options);
  ~Evaluator();
  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  void add(AlertRule rule);
  const std::vector<AlertRule>& rules() const { return rules_; }

  /// Attach a sink; the evaluator owns it. Returns it for post-run queries.
  NotifierSink& add_sink(std::unique_ptr<NotifierSink> sink);

  /// Announce a host for deadman watching (idempotent).
  void register_host(const std::string& hostname);

  /// Evaluate everything at `now`; returns the number of transitions.
  std::size_t run(util::TimeNs now);

  /// Snapshot of all live instances (every state, including inactive).
  std::vector<AlertInstance> instances() const;

  /// Instances currently firing.
  std::size_t firing_count() const;

  std::uint64_t evaluations() const { return evaluations_; }
  std::uint64_t transitions() const { return transitions_; }

 protected:
  void on_attach(core::TaskScheduler& sched) override;
  void on_detach() override;

 private:
  std::string build_query(const AlertRule& rule, util::TimeNs now) const;
  void evaluate_rule(const AlertRule& rule, util::TimeNs now,
                     std::vector<AlertEvent>& events) LMS_REQUIRES(mu_);
  void evaluate_deadman(util::TimeNs now, std::vector<AlertEvent>& events)
      LMS_REQUIRES(mu_);
  /// Newest sample timestamp written by `host` (0 = never), scanning
  /// deadman_measurement or, when unset, everything but the alerts
  /// measurement. The caller must hold a ReadSnapshot of `db`.
  util::TimeNs last_write_in(const tsdb::Database& db, const std::string& host) const;
  AlertInstance& instance_for(const AlertRule& rule, const std::vector<Tag>& labels)
      LMS_REQUIRES(mu_);

  tsdb::Storage& storage_;
  Options options_;
  tsdb::Engine engine_;
  std::vector<AlertRule> rules_;
  std::vector<std::unique_ptr<NotifierSink>> sinks_;
  AlertRule deadman_rule_;  // the implicit absence rule deadman events use

  /// Guards states_ and hosts_ (gauge callbacks read). Deliberately held
  /// across the TSDB queries run() issues, so its rank sits below the
  /// storage-map and shard locks.
  mutable core::sync::Mutex mu_{core::sync::Rank::kAlert, "alert.evaluator"};
  /// "rule|k=v,..." -> instance
  std::map<std::string, AlertInstance> states_ LMS_GUARDED_BY(mu_);
  /// hostname -> first seen
  std::map<std::string, util::TimeNs> hosts_ LMS_GUARDED_BY(mu_);
  std::uint64_t evaluations_ = 0;
  std::uint64_t transitions_ = 0;

  obs::Counter* evaluations_c_ = nullptr;
  obs::Counter* transitions_c_ = nullptr;
  obs::Histogram* eval_ns_ = nullptr;
  /// Duty-cycle accounting lives on the periodic task's own LoopStats row
  /// ("alert.evaluator" in /debug/runtime) once attached.
  core::PeriodicTaskHandle task_;
};

}  // namespace lms::alert
