#pragma once

// Alert rule model — the "act on the signals" half of observability.
//
// A rule watches one query window over the TSDB (any measurement, including
// the stack's own lms_internal self-metrics) and drives a small state
// machine per label set:
//
//          breach                 breach for >= for_duration
//   inactive ----> pending -------------------------------> firing
//      ^              | clear (silent cancel)                  |
//      +--------------+          clear for >= keep_firing_for  |
//      +-------------------------------------------------------+
//
// Three condition kinds:
//   kThreshold    — agg(field) over the window compared to a constant,
//   kAbsence      — no samples in the window (deadman; see evaluator.hpp
//                   for the per-host variant),
//   kRateOfChange — (last - first) / window compared to a constant.
//
// `for_duration` suppresses one-sample blips (classic Prometheus `for:`);
// `keep_firing_for` dampens flapping: once firing, a rule only resolves
// after the condition has stayed clear that long, so a series oscillating
// around the threshold produces one alert, not a stream of them.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lms/lineproto/point.hpp"
#include "lms/tsdb/query.hpp"
#include "lms/util/clock.hpp"

namespace lms::alert {

using lineproto::Tag;
using util::TimeNs;

enum class ConditionKind { kThreshold, kAbsence, kRateOfChange };

std::string_view condition_kind_name(ConditionKind kind);

enum class Comparison { kAbove, kAboveEq, kBelow, kBelowEq };

std::string_view comparison_symbol(Comparison cmp);

/// True when `value <cmp> threshold` holds.
bool compare(Comparison cmp, double value, double threshold);

struct AlertRule {
  std::string name;
  ConditionKind kind = ConditionKind::kThreshold;

  // What to watch. Either the structured form (measurement/field/agg/tags,
  // from which the evaluator builds an InfluxQL query) or a raw `query`
  // override evaluated verbatim (the window filter must then be part of it).
  std::string measurement;
  std::string field = "value";
  tsdb::Aggregator agg = tsdb::Aggregator::kMean;
  std::vector<Tag> tag_filters;               ///< WHERE key='value' AND ...
  std::vector<std::string> group_by_tags;     ///< one alert instance per group
  std::string query;                          ///< raw InfluxQL override ("" = build)

  // Condition (ignored for kAbsence except the window).
  Comparison cmp = Comparison::kAbove;
  double threshold = 0.0;
  TimeNs window = 5 * util::kNanosPerMinute;  ///< lookback per evaluation

  // State machine tuning.
  TimeNs for_duration = 0;     ///< breach must persist this long before firing
  TimeNs keep_firing_for = 0;  ///< flap dampening: min clear time to resolve

  std::string severity = "warning";
};

enum class AlertState { kInactive, kPending, kFiring };

std::string_view alert_state_name(AlertState s);

/// Live state of one rule × label-set combination.
struct AlertInstance {
  std::string rule;
  std::vector<Tag> labels;      ///< group-by tag values ("hostname" -> "h3")
  AlertState state = AlertState::kInactive;
  TimeNs since = 0;             ///< entered the current state
  TimeNs breach_start = 0;      ///< first breach of the current episode
  TimeNs last_breach = 0;       ///< most recent breaching evaluation
  double value = 0;             ///< last evaluated value
};

/// A state transition, as written into the alerts measurement and delivered
/// to the notifier sinks.
struct AlertEvent {
  std::string rule;
  std::vector<Tag> labels;
  AlertState from = AlertState::kInactive;
  AlertState to = AlertState::kInactive;
  double value = 0;
  std::string severity;
  std::string message;
  TimeNs time = 0;

  /// "pending" / "firing" / "resolved" — what the transition means, which
  /// is what sinks and the lms_alerts `state` tag carry.
  std::string_view transition_name() const;

  /// {"rule":..,"state":..,"prev_state":..,"severity":..,"value":..,
  ///  "message":..,"time":..,"labels":{..}} — the webhook payload.
  std::string to_json() const;

  /// Point for the alerts measurement: tags rule/state/severity + labels,
  /// fields value + text.
  lineproto::Point to_point(std::string_view measurement) const;
};

/// Advance `inst` given this evaluation's outcome; returns the transition to
/// emit, if any. A pending episode that clears cancels silently (it never
/// fired, so there is nothing to resolve).
std::optional<AlertEvent> step_instance(const AlertRule& rule, AlertInstance& inst,
                                        bool breach, double value, std::string message,
                                        TimeNs now);

}  // namespace lms::alert
