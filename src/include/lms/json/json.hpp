#pragma once

// Small self-contained JSON library. Used by the dashboard agent (Grafana
// template JSON), the router's job signal endpoint and the TSDB query API.
//
// Design: one Value type over a tagged union; object member order is
// preserved (Grafana dashboard JSON is order-sensitive for humans diffing
// templates). Parsing is strict RFC 8259 except that duplicate keys keep the
// last occurrence.

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lms/util/status.hpp"

namespace lms::json {

class Value;

using Array = std::vector<Value>;
using Member = std::pair<std::string, Value>;

/// Order-preserving JSON object.
class Object {
 public:
  Object() = default;
  Object(std::initializer_list<Member> members);

  /// Pointer to the member value, or nullptr.
  const Value* find(std::string_view key) const;
  Value* find(std::string_view key);

  /// Access or insert (like std::map::operator[]).
  Value& operator[](std::string_view key);

  bool contains(std::string_view key) const { return find(key) != nullptr; }
  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  /// Remove a key if present; returns true if removed.
  bool erase(std::string_view key);

  auto begin() { return members_.begin(); }
  auto end() { return members_.end(); }
  auto begin() const { return members_.begin(); }
  auto end() const { return members_.end(); }

 private:
  std::vector<Member> members_;
};

enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

class Value {
 public:
  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}                     // NOLINT
  Value(bool b) : type_(Type::kBool), bool_(b) {}                   // NOLINT
  Value(int i) : type_(Type::kInt), int_(i) {}                      // NOLINT
  Value(std::int64_t i) : type_(Type::kInt), int_(i) {}             // NOLINT
  Value(double d) : type_(Type::kDouble), double_(d) {}             // NOLINT
  Value(const char* s) : type_(Type::kString), string_(s) {}        // NOLINT
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Value(std::string_view s) : type_(Type::kString), string_(s) {}   // NOLINT
  Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}     // NOLINT
  Value(Object o) : type_(Type::kObject), object_(std::move(o)) {}  // NOLINT

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors. Preconditions checked with assert; the as_* variants
  /// return fallbacks on type mismatch for tolerant template processing.
  bool get_bool() const;
  std::int64_t get_int() const;
  double get_double() const;  ///< int promotes to double
  const std::string& get_string() const;
  const Array& get_array() const;
  Array& get_array();
  const Object& get_object() const;
  Object& get_object();

  bool as_bool(bool fallback = false) const;
  std::int64_t as_int(std::int64_t fallback = 0) const;
  double as_double(double fallback = 0.0) const;
  std::string as_string(std::string_view fallback = {}) const;

  /// Object member lookup; returns a shared null for missing keys/non-objects.
  const Value& operator[](std::string_view key) const;
  /// Array element; shared null when out of range/non-array.
  const Value& operator[](std::size_t index) const;

  /// Deep path lookup "a.b.c".
  const Value& at_path(std::string_view dotted_path) const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Compact serialization.
  std::string dump() const;
  /// Pretty serialization with 2-space indent.
  std::string dump_pretty() const;

 private:
  friend std::string dump_impl(const Value&, int indent, int depth);
  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Strict JSON parse of the whole input.
util::Result<Value> parse(std::string_view text);

/// Escape a string for embedding into a JSON document (without quotes).
std::string escape(std::string_view s);

}  // namespace lms::json
