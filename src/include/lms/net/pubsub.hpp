#pragma once

// Topic-based PUB/SUB used by the metrics router to publish metrics and job
// meta-information to attached stream analyzers (the ZeroMQ role in the
// paper, §III-B). Semantics mirror ZeroMQ PUB/SUB:
//   - subscribers filter by topic prefix,
//   - a slow subscriber does not block the publisher: when its queue (the
//     "high-water mark") is full, messages for it are dropped and counted,
//   - subscribing is dynamic; publishers are unaware of subscribers.

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "lms/core/sync.hpp"
#include "lms/util/queue.hpp"

namespace lms::obs {
class Counter;
class Registry;
}

namespace lms::net {

struct PubSubMessage {
  std::string topic;
  std::string payload;
};

class PubSubBroker;

/// A live subscription. Destroying it unsubscribes.
class Subscription {
 public:
  ~Subscription();
  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;

  /// Blocking pop; nullopt after close().
  std::optional<PubSubMessage> receive();
  /// Pop with timeout.
  std::optional<PubSubMessage> receive_for(util::TimeNs timeout);
  /// Non-blocking pop.
  std::optional<PubSubMessage> try_receive();

  /// Messages dropped because this subscriber was too slow (HWM reached).
  std::uint64_t dropped() const { return dropped_.load(); }

  const std::string& topic_prefix() const { return prefix_; }

 private:
  friend class PubSubBroker;
  Subscription(PubSubBroker* broker, std::string prefix, std::size_t hwm)
      : broker_(broker), prefix_(std::move(prefix)), queue_(hwm, "net.pubsub.sub") {}

  PubSubBroker* broker_;
  std::string prefix_;
  util::BoundedQueue<PubSubMessage> queue_;
  std::atomic<std::uint64_t> dropped_{0};
  std::string metric_id_;  ///< label of this subscription's depth gauge ("" = none)
};

/// The in-process broker: publishers call publish(), subscribers hold
/// Subscription handles.
class PubSubBroker {
 public:
  /// Default high-water mark per subscriber queue.
  static constexpr std::size_t kDefaultHwm = 1000;

  /// Subscribe to all topics starting with `topic_prefix` ("" = everything).
  std::shared_ptr<Subscription> subscribe(std::string topic_prefix,
                                          std::size_t hwm = kDefaultHwm);

  /// Deliver to every matching subscriber. Never blocks; drops on full
  /// queues. Returns the number of subscribers that received the message.
  std::size_t publish(std::string_view topic, std::string_view payload);

  std::size_t subscriber_count() const;

  /// Total messages published (delivered or not).
  std::uint64_t published() const { return published_.load(); }

  /// Mirror broker activity into a metrics registry: pubsub_published /
  /// pubsub_delivered / pubsub_dropped counters plus a per-subscription
  /// queue-depth gauge (pubsub_queue_depth{topic,sub}). Pass nullptr to
  /// detach. The registry must outlive the broker.
  void set_registry(obs::Registry* registry);

 private:
  friend class Subscription;
  void unsubscribe(Subscription* sub);

  // Held while pushing into subscriber queues (Rank::kQueue) and while
  // (un)registering registry gauges (Rank::kObsRegistry): both rank above.
  mutable core::sync::Mutex mu_{core::sync::Rank::kNet, "net.pubsub"};
  std::vector<Subscription*> subscribers_ LMS_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> published_{0};
  obs::Registry* registry_ LMS_GUARDED_BY(mu_) = nullptr;
  /// Counter handles resolved once at set_registry() time; publish() copies
  /// the pointers under mu_ and bumps them (atomic) with the lock released,
  /// keeping registry map lookups off the publish path.
  obs::Counter* published_counter_ LMS_GUARDED_BY(mu_) = nullptr;
  obs::Counter* delivered_counter_ LMS_GUARDED_BY(mu_) = nullptr;
  obs::Counter* dropped_counter_ LMS_GUARDED_BY(mu_) = nullptr;
  /// Label for per-subscription gauges.
  std::uint64_t next_sub_id_ LMS_GUARDED_BY(mu_) = 0;
};

}  // namespace lms::net
