#pragma once

// Real-socket HTTP transport: a small threaded HTTP/1.1 server and a
// blocking client. Used for the deployable binaries and the socket
// integration tests; the simulator uses the in-process transport instead.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lms/core/runtime.hpp"
#include "lms/core/sync.hpp"
#include "lms/net/transport.hpp"

namespace lms::obs {
class Registry;
}

namespace lms::net {

/// Threaded TCP HTTP server. Accepts on a listener thread, serves each
/// connection on a worker thread (bounded), supports keep-alive.
///
/// Observability: every request is timed into the configured metrics
/// registry ("http_server_*" instruments, labeled by route) and served under
/// a trace span adopted from the X-LMS-Trace request header when present.
class TcpHttpServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    int port = 0;  ///< 0 = pick an ephemeral port
    std::size_t max_connections = 64;
    std::size_t max_request_bytes = 64 * 1024 * 1024;
    /// Metrics registry for http_server_* instruments (nullptr = global).
    obs::Registry* registry = nullptr;
  };

  explicit TcpHttpServer(HttpHandler handler);
  TcpHttpServer(HttpHandler handler, Options options);
  ~TcpHttpServer();
  TcpHttpServer(const TcpHttpServer&) = delete;
  TcpHttpServer& operator=(const TcpHttpServer&) = delete;

  /// Bind + listen + start the accept thread. Returns the bound port.
  util::Result<int> start();

  /// Stop accepting and join all threads.
  void stop();

  int port() const { return port_; }
  std::string url() const;  ///< "http://127.0.0.1:<port>"

 private:
  void accept_loop();
  void serve_connection(int fd);

  HttpHandler handler_;
  Options options_;
  std::atomic<int> listen_fd_{-1};  ///< written by stop(), read by the accept thread
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  core::runtime::LoopStats accept_loop_stats_{"net.tcp.accept"};
  core::sync::Mutex workers_mu_{core::sync::Rank::kNet, "net.tcp.workers"};
  std::vector<std::thread> workers_ LMS_GUARDED_BY(workers_mu_);
  std::atomic<std::size_t> active_connections_{0};
};

/// Blocking HTTP client over TCP ("http://" scheme). One connection per
/// request (Connection: close) — simple and adequate for agent batching.
///
/// Observability: requests run under a client span whose context is injected
/// as the X-LMS-Trace header (so the receiving server joins the same trace),
/// and are timed into "http_client_*" instruments.
class TcpHttpClient final : public HttpClient {
 public:
  struct Options {
    int connect_timeout_ms = 2000;
    int io_timeout_ms = 5000;
    std::size_t max_response_bytes = 64 * 1024 * 1024;
    /// Metrics registry for http_client_* instruments (nullptr = global).
    obs::Registry* registry = nullptr;
  };

  TcpHttpClient() = default;
  explicit TcpHttpClient(Options options) : options_(options) {}

  util::Result<HttpResponse> send(const std::string& url, HttpRequest req) override;

 private:
  Options options_ = Options();
};

}  // namespace lms::net
