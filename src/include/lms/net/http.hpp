#pragma once

// HTTP/1.1 message model and codec. The paper's design rationale is that
// every hop of the stack speaks plain HTTP ("commonly available on all
// machines"), so this is a first-class substrate: a request/response model,
// a strict-enough parser, and serializers used by both the TCP transport and
// the in-process loopback.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lms/util/status.hpp"

namespace lms::net {

/// Case-insensitive header map (HTTP header names are case-insensitive).
class HeaderMap {
 public:
  void set(std::string_view name, std::string_view value);
  std::optional<std::string> get(std::string_view name) const;
  std::string get_or(std::string_view name, std::string_view fallback) const;
  bool contains(std::string_view name) const;
  const std::vector<std::pair<std::string, std::string>>& items() const { return items_; }

 private:
  std::vector<std::pair<std::string, std::string>> items_;
};

/// Parsed query string (decoded keys/values, insertion order preserved).
class QueryParams {
 public:
  static QueryParams parse(std::string_view query);
  void set(std::string_view key, std::string_view value);
  std::optional<std::string> get(std::string_view key) const;
  std::string get_or(std::string_view key, std::string_view fallback) const;
  bool contains(std::string_view key) const;
  std::string encode() const;
  const std::vector<std::pair<std::string, std::string>>& items() const { return items_; }

 private:
  std::vector<std::pair<std::string, std::string>> items_;
};

struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";   // decoded path without query string
  QueryParams query;        // decoded query parameters
  HeaderMap headers;
  std::string body;

  /// Build a POST with a body and content type.
  static HttpRequest post(std::string_view path, std::string body, std::string_view content_type);
  static HttpRequest get(std::string_view path);

  /// Serialize to wire format ("target" = path + encoded query).
  std::string serialize() const;
};

struct HttpResponse {
  int status = 200;
  HeaderMap headers;
  std::string body;

  bool ok() const { return status >= 200 && status < 300; }

  static HttpResponse text(int status, std::string body);
  static HttpResponse json(int status, std::string body);
  static HttpResponse no_content() { return text(204, ""); }
  static HttpResponse not_found() { return text(404, "not found"); }
  static HttpResponse bad_request(std::string why) { return text(400, std::move(why)); }

  std::string serialize() const;
};

/// Reason phrase for a status code.
std::string_view status_reason(int status);

/// Parse one full request/response from a buffer (headers + body present).
/// Returns the consumed byte count via `consumed` to support pipelining.
util::Result<HttpRequest> parse_request(std::string_view data, std::size_t* consumed);
util::Result<HttpResponse> parse_response(std::string_view data, std::size_t* consumed);

/// Split a URL of the form "scheme://host:port/path?query" into parts.
struct Url {
  std::string scheme = "http";
  std::string host;
  int port = 80;
  std::string path = "/";
  std::string query;

  static util::Result<Url> parse(std::string_view url);
  std::string target() const;  ///< path + "?" + query (if any)
};

}  // namespace lms::net
