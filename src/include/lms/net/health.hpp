#pragma once

// Shared health/readiness model for the stack's HTTP components.
//
// Every component (router, TSDB API, collector agent, dashboard agent)
// answers two probes with one JSON shape:
//   GET /health  — liveness: "is the process sane" (internal queue depths,
//                  last activity). 200 unless a check reports kDown.
//   GET /ready   — readiness: "can it do useful work right now", which adds
//                  downstream reachability (router -> TSDB, agent -> router).
//                  200 only when every check is kOk, 503 otherwise, so load
//                  balancers and the deadman watchdog can steer around a
//                  degraded component before it starts losing data.
//
// The model lives in lms::net (below every component, above json) so the
// four components share one wire format without new cross-layer deps.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lms/net/http.hpp"
#include "lms/util/clock.hpp"
#include "lms/util/logging.hpp"

namespace lms::net {

enum class HealthStatus {
  kOk,        ///< fully operational
  kDegraded,  ///< working but impaired (backlog, downstream unreachable)
  kDown,      ///< not operational
};

std::string_view health_status_name(HealthStatus s);

/// The more severe of two statuses (kDown > kDegraded > kOk).
HealthStatus worse(HealthStatus a, HealthStatus b);

/// One named probe inside a component ("spool", "downstream_db", ...).
struct HealthCheck {
  std::string name;
  HealthStatus status = HealthStatus::kOk;
  std::string detail;
  std::optional<double> value;  ///< queue depth, age in seconds, ...
};

/// A component's full health report; status() is the worst check.
struct ComponentHealth {
  std::string component;
  util::TimeNs time = 0;
  std::vector<HealthCheck> checks;

  void add(std::string name, HealthStatus status, std::string detail);
  void add(std::string name, HealthStatus status, std::string detail, double value);

  HealthStatus status() const;

  /// {"component":..,"status":..,"time":..,"checks":[{..},..]}
  std::string to_json() const;
};

/// Liveness answer: the report as JSON, 200 unless status() is kDown (503).
HttpResponse health_response(const ComponentHealth& health);

/// Readiness answer: 200 only when status() is kOk, 503 otherwise.
HttpResponse ready_response(const ComponentHealth& health);

/// Shared GET /debug/logs answer: the ring's retained entries as JSON
/// ({"dropped":N,"entries":[{"level","component","message"[,"trace_id"]}]}),
/// filterable with ?trace=<id16hex> (400 on a malformed id). Served by the
/// router and the TSDB API so every hop offers the same log/trace
/// correlation view.
HttpResponse debug_logs_response(const util::LogRing& ring, const HttpRequest& req);

/// Shared GET /debug/runtime answer: the process-wide runtime-contention
/// picture as JSON —
///   {"build":{...},
///    "lock_stats":{"compiled":b,"enabled":b,"sites_dropped":N,
///                  "sites":[{"lock","rank","acquisitions","contended",
///                            "contention_pct","wait_ns_total","wait_ns_max",
///                            "wait_p50_ns","wait_p99_ns","hold_ns_total",
///                            "hold_ns_max"},...]},   // ranked by total wait
///    "queues":[{"queue","capacity","depth","high_watermark","pushes",
///               "pops","blocked_pushes","rejected_pushes"},...],
///    "loops":[{"loop","iterations","busy_ns","idle_ns","duty_pct"},...],
///    "scheds":[{"scheduler","workers","submitted","executed","stolen",
///               "steal_attempts","pinned","delayed","periodic_runs",
///               "queue_depth","queue_high_watermark"},...],
///    "queue_delays":[{"task","count","delay_ns_total","delay_ns_max",
///                     "delay_ns_avg","delay_p50_ns","delay_p99_ns"},...],
///    "profiler":{"running","timer","hz","samples_captured",
///                "samples_dropped","samples_folded","folds","rings_active",
///                "rings_reclaimed","stacks","stack_overflows"}}
/// Lock sites are sorted by wait_ns_total descending, so the first entry is
/// the lock the process spends the most time waiting on. The section is
/// empty (compiled=false) unless built with -DLMS_LOCK_STATS=ON; queues,
/// loops and scheds (one row per live TaskScheduler, including every
/// periodic task as a named loop row) report in every build. queue_delays
/// ranks scheduler tasks by total submit→run latency; profiler reflects the
/// process-wide obs::CpuProfiler. Served by the router and the TSDB API.
HttpResponse runtime_debug_response();

/// Shared GET /debug/pprof answer: the CPU profiler's aggregate as
/// collapsed-stack text ("frame;frame;leaf count\n" per line, heaviest
/// first — feed it straight to flamegraph.pl / speedscope). With
/// ?seconds=N (clamped to [0,30], timer mode only) blocks for the window
/// and returns only the samples captured during it, pprof-style. 503 when
/// the profiler is not running.
HttpResponse pprof_response(const HttpRequest& req);

}  // namespace lms::net
