#pragma once

// Transport abstraction decoupling components from the wire.
//
// Every LMS service exposes an HttpHandler. A handler can be bound to
//  - an InprocNetwork endpoint ("inproc://name") for deterministic
//    single-process tests and the cluster simulator, or
//  - a TcpHttpServer (see tcp_http.hpp) for real socket deployments.
// Clients call through HttpClient, resolved from a URL; the scheme selects
// the transport. This keeps the paper's "loosely coupled components talking
// HTTP" property while letting the full stack run deterministically.

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "lms/core/sync.hpp"
#include "lms/net/http.hpp"

namespace lms::obs {
class Registry;
}

namespace lms::net {

/// A service entry point: map request -> response. Must be thread-safe.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Small method+path dispatcher used by the services to organize endpoints.
/// Paths match exactly or by "/prefix/*" wildcard.
class HttpDispatcher {
 public:
  void handle(std::string method, std::string path, HttpHandler handler);
  HttpResponse dispatch(const HttpRequest& req) const;

  /// Adapter so the dispatcher itself can be used as an HttpHandler.
  HttpHandler as_handler() const;

 private:
  struct Route {
    std::string method;
    std::string path;  // exact, or ends with "/*"
    HttpHandler handler;
  };
  std::vector<Route> routes_;
};

/// Client-side interface: send a request to an endpoint URL.
class HttpClient {
 public:
  virtual ~HttpClient() = default;
  /// Send the request to `url` (the request's path/query are overridden by
  /// `url`'s path/query when the request path is "/").
  virtual util::Result<HttpResponse> send(const std::string& url, HttpRequest req) = 0;

  util::Result<HttpResponse> post(const std::string& url, std::string body,
                                  std::string_view content_type);
  util::Result<HttpResponse> get(const std::string& url);
};

/// In-process "network": a registry of named HTTP endpoints.
///
/// URLs look like "inproc://router/write?db=lms": the authority is the
/// registered endpoint name. Calls execute the handler synchronously on the
/// caller's thread.
class InprocNetwork {
 public:
  void bind(const std::string& name, HttpHandler handler);
  void unbind(const std::string& name);
  bool has(const std::string& name) const;

  /// Execute a request against a named endpoint. Adopts the X-LMS-Trace
  /// context (if present) for the handler's duration and times the request
  /// into the configured registry, labeled by endpoint.
  util::Result<HttpResponse> request(const std::string& name, const HttpRequest& req) const;

  /// Metrics registry for http_server_* instruments (nullptr = global).
  void set_registry(obs::Registry* registry) { registry_ = registry; }

 private:
  // request() copies the handler out and invokes it unlocked, so the whole
  // downstream stack can run on the caller's thread without nesting under
  // this lock.
  mutable core::sync::Mutex mu_{core::sync::Rank::kNet, "net.inproc"};
  std::map<std::string, HttpHandler> endpoints_ LMS_GUARDED_BY(mu_);
  obs::Registry* registry_ = nullptr;
};

/// HttpClient over an InprocNetwork ("inproc://" scheme only).
class InprocHttpClient final : public HttpClient {
 public:
  explicit InprocHttpClient(InprocNetwork& network) : network_(network) {}
  util::Result<HttpResponse> send(const std::string& url, HttpRequest req) override;

 private:
  InprocNetwork& network_;
};

/// Apply the URL's path and query onto a request whose path is "/".
void apply_url_target(const Url& url, HttpRequest& req);

}  // namespace lms::net
