#pragma once

// Stream aggregator (paper §III-B): "In order to attach other tools like
// aggregators and stream analyzers to the router, the meta information and
// the metrics can be published via ZeroMQ."
//
// The aggregator subscribes to the router's metric stream and maintains
// windowed cross-node aggregates per (job, measurement, field): mean, min,
// max and node count. At each window boundary it emits one point per
// aggregate into the router under "<measurement>_job" with the jobid tag —
// giving dashboards cheap job-level series (e.g. total DP FLOP rate of a
// 64-node job) without querying 64 raw series.

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lms/core/sync.hpp"
#include "lms/lineproto/point.hpp"
#include "lms/net/pubsub.hpp"
#include "lms/net/transport.hpp"
#include "lms/util/clock.hpp"

namespace lms::analysis {

class StreamAggregator {
 public:
  struct Options {
    /// Aggregation window; one output point per (job, measurement, field)
    /// per window.
    util::TimeNs window = util::kNanosPerMinute;
    /// Where to push the aggregate points ("/write" is appended).
    std::string router_url;
    std::string database = "lms";
    /// Only measurements matching one of these globs are aggregated
    /// (empty = all). Aggregate measurements themselves are always skipped.
    std::vector<std::string> measurement_globs;
    /// Suffix for the emitted measurement name.
    std::string suffix = "_job";
  };

  StreamAggregator(net::PubSubBroker& broker, net::HttpClient& client, Options options);

  /// Drain the subscription and emit any completed windows. Returns the
  /// number of aggregate points emitted.
  std::size_t pump(util::TimeNs now);

  /// Force-emit all open windows (end of run).
  std::size_t flush(util::TimeNs now);

  struct Stats {
    std::uint64_t points_consumed = 0;
    std::uint64_t points_emitted = 0;
    std::uint64_t send_failures = 0;
  };
  Stats stats() const;

 private:
  struct WindowState {
    double sum = 0;
    double min = 0;
    double max = 0;
    std::size_t count = 0;
    std::set<std::string> hosts;
  };
  /// Key: (jobid, measurement, field, window start).
  struct Key {
    std::string job;
    std::string measurement;
    std::string field;
    util::TimeNs window_start;
    bool operator<(const Key& other) const {
      return std::tie(job, measurement, field, window_start) <
             std::tie(other.job, other.measurement, other.field, other.window_start);
    }
  };

  void consume(const lineproto::Point& point) LMS_REQUIRES(mu_);
  std::size_t emit_completed(util::TimeNs now, bool force);
  bool measurement_selected(const std::string& measurement) const;

  std::shared_ptr<net::Subscription> subscription_;
  net::HttpClient& client_;
  Options options_;
  /// Held across subscription_->try_receive() in pump() — the subscription
  /// queue ranks far above the analysis layer. The HTTP emit in
  /// emit_completed() runs with mu_ released.
  mutable core::sync::Mutex mu_{core::sync::Rank::kAnalysis, "analysis.aggregator"};
  std::map<Key, WindowState> windows_ LMS_GUARDED_BY(mu_);
  Stats stats_ LMS_GUARDED_BY(mu_);
};

}  // namespace lms::analysis
