#pragma once

// Typed access to job metric series stored in the TSDB, shared by the rule
// engine, the job report and the pattern classifier. Queries are built
// programmatically against the query engine (no string round-trip).

#include <optional>
#include <string>
#include <vector>

#include "lms/tsdb/query.hpp"
#include "lms/tsdb/storage.hpp"

namespace lms::analysis {

/// One numeric time series.
struct MetricSeries {
  std::vector<util::TimeNs> times;
  std::vector<double> values;

  bool empty() const { return times.empty(); }
  std::size_t size() const { return times.size(); }

  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  /// Fraction of samples below/above a threshold.
  double fraction_below(double threshold) const;
  double fraction_above(double threshold) const;
};

/// A metric address: measurement + field, e.g. {"likwid_mem_dp","dp_mflop_per_s"}.
struct MetricRef {
  std::string measurement;
  std::string field;

  std::string to_string() const { return measurement + "." + field; }
};

class MetricFetcher {
 public:
  MetricFetcher(tsdb::Storage& storage, std::string database);

  /// Fetch a series for one metric, filtered by tag equalities, within
  /// [t0, t1). When `window` > 0 the series is the per-window mean.
  util::Result<MetricSeries> fetch(const MetricRef& ref,
                                   const std::vector<lineproto::Tag>& tag_filters,
                                   util::TimeNs t0, util::TimeNs t1,
                                   util::TimeNs window = 0) const;

  /// Convenience: series of one metric for one host of one job.
  util::Result<MetricSeries> fetch_host(const MetricRef& ref, const std::string& hostname,
                                        const std::string& job_id, util::TimeNs t0,
                                        util::TimeNs t1, util::TimeNs window = 0) const;

  /// Hostnames that reported any sample of `ref` for the given job.
  std::vector<std::string> hosts_of_job(const MetricRef& ref, const std::string& job_id) const;

  /// Distinct values of `tag_key` across the series of `measurement` that
  /// match `tag_filters` (e.g. the region names of one job's lms_regions).
  std::vector<std::string> tag_values(const std::string& measurement,
                                      const std::string& tag_key,
                                      const std::vector<lineproto::Tag>& tag_filters) const;

  const std::string& database() const { return database_; }

 private:
  tsdb::Storage& storage_;
  std::string database_;
};

}  // namespace lms::analysis
