#pragma once

// Online (streaming) rule evaluation for instant user feedback (paper §I,
// §V): the engine consumes the enriched metric stream — directly or via the
// router's PUB/SUB tap — and raises a finding the moment a rule's
// conditions have held continuously for the rule's min_duration. This is
// the "badly behaving jobs detected directly" path; the offline RuleEngine
// re-derives the same findings from the database afterwards.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lms/analysis/rules.hpp"
#include "lms/core/sync.hpp"
#include "lms/net/pubsub.hpp"

namespace lms::analysis {

class OnlineRuleEngine {
 public:
  explicit OnlineRuleEngine(std::vector<Rule> rules);

  /// Feed one enriched point (must carry hostname; jobid optional).
  void observe(const lineproto::Point& point);

  /// Feed a raw line-protocol batch (e.g. a PUB/SUB "metrics" payload).
  void observe_lines(std::string_view body);

  /// Collect findings that fired since the last call.
  std::vector<Finding> take_findings();

  /// Findings currently in progress (conditions held long enough and still
  /// violated).
  std::vector<Finding> active() const;

  const std::vector<Rule>& rules() const { return rules_; }

 private:
  struct ConditionState {
    double last_value = 0.0;
    util::TimeNs last_update = 0;
    bool has_value = false;
  };
  struct RuleState {
    std::optional<util::TimeNs> violated_since;
    bool fired = false;
    util::TimeNs last_seen = 0;
    std::vector<ConditionState> conditions;
  };
  // key: (rule index, hostname)
  using Key = std::pair<std::size_t, std::string>;

  void update_rule(std::size_t rule_index, const std::string& hostname,
                   const std::string& job_id, util::TimeNs now) LMS_REQUIRES(mu_);

  std::vector<Rule> rules_;
  mutable core::sync::Mutex mu_{core::sync::Rank::kAnalysis, "analysis.online"};
  std::map<Key, RuleState> states_ LMS_GUARDED_BY(mu_);
  /// hostname -> last seen jobid
  std::map<std::string, std::string> host_jobs_ LMS_GUARDED_BY(mu_);
  std::vector<Finding> fired_ LMS_GUARDED_BY(mu_);
};

/// Convenience: a thread-less pump that drains a PUB/SUB subscription into
/// an OnlineRuleEngine (call pump() from the owner's loop).
class StreamAnalyzer {
 public:
  StreamAnalyzer(net::PubSubBroker& broker, std::vector<Rule> rules);

  /// Drain pending messages; returns the number processed.
  std::size_t pump();

  OnlineRuleEngine& engine() { return engine_; }

 private:
  std::shared_ptr<net::Subscription> subscription_;
  OnlineRuleEngine engine_;
};

}  // namespace lms::analysis
