#pragma once

// Finding recorder: closes the feedback loop of the paper's Fig. 2/Fig. 4
// story by writing pathology findings back into the stack as annotation
// events ("alerts" measurement). Dashboards render them on the job views;
// queries like SELECT text FROM alerts WHERE jobid='…' give users and
// admins the alert history.

#include <string>
#include <vector>

#include "lms/analysis/rules.hpp"
#include "lms/net/transport.hpp"

namespace lms::analysis {

class FindingRecorder {
 public:
  FindingRecorder(net::HttpClient& client, std::string router_url,
                  std::string database = "lms",
                  std::string measurement = "alerts");

  /// Write findings as event points (one per finding). Returns the number
  /// successfully recorded.
  std::size_t record(const std::vector<Finding>& findings);

  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t failures() const { return failures_; }

 private:
  net::HttpClient& client_;
  std::string router_url_;
  std::string database_;
  std::string measurement_;
  std::uint64_t recorded_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace lms::analysis
