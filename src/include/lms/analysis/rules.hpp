#pragma once

// Pathological job detection (paper §V): "simple rules for the resource
// utilization metrics using thresholds and timeouts". A rule is a
// conjunction of metric threshold conditions that must hold continuously
// for at least `min_duration` before a finding is raised — exactly the
// Fig. 4 scenario: DP FP rate AND memory bandwidth below thresholds for
// more than 10 minutes flags a break in computation.

#include <string>
#include <vector>

#include "lms/analysis/fetch.hpp"
#include "lms/util/config.hpp"

namespace lms::analysis {

enum class Severity { kInfo, kWarning, kCritical };
std::string_view severity_name(Severity s);

enum class ThresholdOp { kBelow, kAbove };

struct Condition {
  MetricRef metric;
  ThresholdOp op = ThresholdOp::kBelow;
  double threshold = 0.0;

  bool violated(double value) const {
    return op == ThresholdOp::kBelow ? value < threshold : value > threshold;
  }
  std::string to_string() const;
};

struct Rule {
  std::string name;
  std::string description;
  std::vector<Condition> conditions;  ///< all must be violated simultaneously
  util::TimeNs min_duration = 10 * util::kNanosPerMinute;
  Severity severity = Severity::kWarning;
  /// Evaluation resolution: conditions are checked on windows of this size.
  util::TimeNs resolution = 30 * util::kNanosPerSecond;
};

struct Finding {
  std::string rule;
  std::string description;
  std::string hostname;
  std::string job_id;
  Severity severity = Severity::kWarning;
  util::TimeNs start = 0;
  util::TimeNs end = 0;

  util::TimeNs duration() const { return end - start; }
  std::string to_string() const;
};

/// The default rule set covering the paper's pathological cases: idle
/// nodes, the Fig. 4 computation break, exceeded memory capacity, and a
/// low-IPC efficiency warning. Thresholds are site-tunable; these defaults
/// fit the simulated architecture.
std::vector<Rule> builtin_rules();

/// Parse site-tunable rules from INI config sections named "rule:<name>":
///
///   [rule:compute_break]
///   description  = break in computation
///   severity     = critical            ; info | warning | critical
///   min_duration = 10m
///   resolution   = 30s
///   condition    = likwid_mem_dp.dp_mflop_per_s < 100
///   condition2   = likwid_mem_dp.memory_bandwidth_mbytes_per_s < 500
///
/// Every key starting with "condition" adds one conjunct of the form
/// "<measurement>.<field> < <threshold>" (or ">"). Fails on the first
/// malformed rule.
util::Result<std::vector<Rule>> rules_from_config(const util::Config& config);

/// Offline evaluation over stored job data.
class RuleEngine {
 public:
  explicit RuleEngine(const MetricFetcher& fetcher);

  void add_rule(Rule rule) { rules_.push_back(std::move(rule)); }
  void clear_rules() { rules_.clear(); }
  const std::vector<Rule>& rules() const { return rules_; }

  /// Evaluate all rules for one host of one job over [t0, t1).
  std::vector<Finding> evaluate_host(const std::string& hostname, const std::string& job_id,
                                     util::TimeNs t0, util::TimeNs t1) const;

  /// Evaluate all rules for every host of a job.
  std::vector<Finding> evaluate_job(const std::vector<std::string>& hosts,
                                    const std::string& job_id, util::TimeNs t0,
                                    util::TimeNs t1) const;

 private:
  const MetricFetcher& fetcher_;
  std::vector<Rule> rules_;
};

}  // namespace lms::analysis
