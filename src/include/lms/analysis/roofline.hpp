#pragma once

// Roofline analysis on top of the MEM_DP combined group. The paper's
// optimization-potential judgement (§V) builds on the performance-pattern
// work of the same authors; the roofline model is its quantitative core:
// with the measured operational intensity OI [flop/byte] and the machine's
// peak FLOP rate and memory bandwidth, the attainable performance is
//
//   P_attainable(OI) = min(P_peak, OI * BW_peak)
//
// and the ratio measured/attainable says how much headroom a job has *given
// its current algorithmic intensity* — a sharper statement than "FP rate is
// low".

#include <cstdint>
#include <string>

#include "lms/analysis/fetch.hpp"
#include "lms/hpm/arch.hpp"

namespace lms::analysis {

struct RooflineResult {
  double operational_intensity = 0.0;  ///< flop/byte
  double measured_gflops = 0.0;        ///< per node
  double attainable_gflops = 0.0;      ///< roofline ceiling at this OI
  double peak_gflops = 0.0;            ///< compute roof (per node)
  double peak_bandwidth_gbs = 0.0;     ///< memory roof (per node)
  double ridge_intensity = 0.0;        ///< OI where the roofs meet
  bool memory_bound = false;           ///< OI below the ridge point
  /// measured / attainable, in [0, ~1]; low = headroom at this OI.
  double efficiency = 0.0;

  std::string to_string() const;
};

/// Evaluate the roofline position from raw numbers (per node).
RooflineResult roofline_evaluate(double measured_flops_per_sec, double measured_bytes_per_sec,
                                 const hpm::CounterArchitecture& arch);

/// Evaluate from stored job metrics (node-averaged over [t0, t1)).
util::Result<RooflineResult> roofline_from_db(const MetricFetcher& fetcher,
                                              const std::vector<std::string>& hosts,
                                              const std::string& job_id, util::TimeNs t0,
                                              util::TimeNs t1,
                                              const hpm::CounterArchitecture& arch);

/// ASCII rendering of the roofline with the job's point marked — the
/// log-log plot performance engineers expect.
std::string roofline_chart(const RooflineResult& result, int width = 60, int height = 14);

// ------------------------------------------------------ per-region mode

/// Roofline placement of one marker region of a profiled job, computed from
/// the lms_regions measurement the profiling SDK emits.
struct RegionRoofline {
  std::string region;
  double time_share = 0.0;       ///< share of summed inclusive region time
  std::uint64_t calls = 0;       ///< region instances in [t0, t1)
  RooflineResult roofline;       ///< placement of this region's rates
};

/// Per-region roofline of a profiled job over [t0, t1): one entry per
/// distinct region tag of the job's lms_regions series, sorted by
/// descending time share. Rates are host-averaged like roofline_from_db.
/// Fails when the job has no region data (profiling off or not flushed).
util::Result<std::vector<RegionRoofline>> roofline_per_region(
    const MetricFetcher& fetcher, const std::string& job_id, util::TimeNs t0, util::TimeNs t1,
    const hpm::CounterArchitecture& arch);

}  // namespace lms::analysis
