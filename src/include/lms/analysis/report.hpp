#pragma once

// The online job evaluation header (paper Fig. 2): a table shown at the top
// of a job dashboard with one row per resource-utilization check and one
// column per node, with data from the start of the job until the dashboard
// is loaded, so badly behaving jobs are visible on the initial view.

#include <string>
#include <vector>

#include <optional>

#include "lms/analysis/fetch.hpp"
#include "lms/analysis/patterns.hpp"
#include "lms/analysis/roofline.hpp"
#include "lms/analysis/rules.hpp"
#include "lms/json/json.hpp"

namespace lms::analysis {

enum class Verdict { kOk, kWarning, kCritical, kNoData };
std::string_view verdict_name(Verdict v);

/// Direction of badness for a check.
enum class CheckDirection { kLowIsBad, kHighIsBad, kInfoOnly };

struct ReportCheck {
  std::string label;  // "CPU load"
  std::string unit;   // "%"
  MetricRef metric;
  CheckDirection direction = CheckDirection::kInfoOnly;
  double warn_threshold = 0.0;
  double crit_threshold = 0.0;
};

/// The default check set, mirroring the paper's §V metric list: CPU load,
/// IPC, FP rate, memory size, memory bandwidth, network I/O, file I/O.
std::vector<ReportCheck> default_checks();

struct ReportCell {
  double value = 0.0;
  Verdict verdict = Verdict::kNoData;
};

struct ReportRow {
  ReportCheck check;
  std::vector<ReportCell> cells;  // one per host, host order of the report
  Verdict overall = Verdict::kNoData;
};

struct JobEvaluation {
  std::string job_id;
  std::vector<std::string> hosts;
  util::TimeNs t0 = 0;
  util::TimeNs t1 = 0;
  std::vector<ReportRow> rows;
  std::vector<Finding> findings;
  Classification classification;
  std::optional<RooflineResult> roofline;  ///< set when MEM_DP data exists
};

class JobReporter {
 public:
  JobReporter(const MetricFetcher& fetcher, const hpm::CounterArchitecture& arch);

  void set_checks(std::vector<ReportCheck> checks) { checks_ = std::move(checks); }
  void set_rules(std::vector<Rule> rules);

  /// Evaluate a job: fill the per-node check table, run the pathology rules
  /// and classify the job's performance pattern.
  JobEvaluation evaluate(const std::string& job_id, const std::vector<std::string>& hosts,
                         util::TimeNs t0, util::TimeNs t1) const;

  /// The data source and machine model the reporter evaluates against —
  /// shared with consumers (dashboard agent) that run further analyses
  /// (e.g. the per-region roofline) over the same job data.
  const MetricFetcher& fetcher() const { return fetcher_; }
  const hpm::CounterArchitecture& arch() const { return arch_; }

 private:
  const MetricFetcher& fetcher_;
  const hpm::CounterArchitecture& arch_;
  std::vector<ReportCheck> checks_;
  RuleEngine rule_engine_;
};

/// Fixed-width text rendering of the evaluation (the Fig. 2 view).
std::string render_text(const JobEvaluation& eval);

/// JSON rendering for the dashboard agent's header panel.
json::Value to_json(const JobEvaluation& eval);

}  // namespace lms::analysis
