#pragma once

// Performance pattern classification (paper §V): "for marking applications
// with significant optimization potential we use the performance pattern
// systematic [Treibig/Hager/Wellein 2012] ... refined as part of the FEPA
// project using a decision tree". A job's derived-metric signature is run
// through an explicit decision tree whose leaves are performance patterns
// with an optimization-potential judgement; the traversal path is kept as
// evidence so support staff can see *why* a job was classified.

#include <memory>
#include <string>
#include <vector>

#include "lms/analysis/fetch.hpp"
#include "lms/hpm/arch.hpp"

namespace lms::analysis {

/// Aggregated signature of a job (node-averaged, steady-state).
struct JobSignature {
  double cpu_load = 0.0;            ///< mean user CPU fraction [0,1]
  double ipc = 0.0;                 ///< instructions per cycle
  double flops_dp_fraction = 0.0;   ///< of architecture peak [0,1]
  double mem_bw_fraction = 0.0;     ///< of architecture peak [0,1]
  double vectorization_ratio = 0.0; ///< packed FP instruction share [0,1]
  double branch_miss_ratio = 0.0;
  double load_imbalance_cv = 0.0;   ///< cross-node coefficient of variation of FP rate
  double mem_used_fraction = 0.0;   ///< of node RAM
  int nodes = 1;
};

enum class Pattern {
  kIdle,
  kBandwidthSaturation,
  kComputeBound,
  kLoadImbalance,
  kMemoryLatencyBound,
  kBranchMispredict,
  kInstructionOverhead,
  kScalarCode,
  kBalanced,
};

std::string_view pattern_name(Pattern p);
std::string_view pattern_recommendation(Pattern p);

/// One step of the traversal, kept as evidence.
struct DecisionStep {
  std::string feature;
  double value = 0.0;
  double threshold = 0.0;
  bool went_high = false;  ///< took the ">= threshold" branch

  std::string to_string() const;
};

struct Classification {
  Pattern pattern = Pattern::kBalanced;
  /// Heuristic optimization potential in [0,1] (1 = large headroom).
  double optimization_potential = 0.0;
  std::vector<DecisionStep> path;
};

/// A binary decision tree over JobSignature features.
class DecisionTree {
 public:
  using FeatureFn = double (*)(const JobSignature&);

  /// Leaf node.
  static std::unique_ptr<DecisionTree> leaf(Pattern pattern, double potential);
  /// Inner node: feature >= threshold ? high : low.
  static std::unique_ptr<DecisionTree> node(std::string feature_name, FeatureFn feature,
                                            double threshold,
                                            std::unique_ptr<DecisionTree> low,
                                            std::unique_ptr<DecisionTree> high);

  Classification classify(const JobSignature& sig) const;

  /// The FEPA-style default tree used by the stack.
  static const DecisionTree& default_tree();

 private:
  DecisionTree() = default;
  bool is_leaf_ = false;
  Pattern pattern_ = Pattern::kBalanced;
  double potential_ = 0.0;
  std::string feature_name_;
  FeatureFn feature_ = nullptr;
  double threshold_ = 0.0;
  std::unique_ptr<DecisionTree> low_;
  std::unique_ptr<DecisionTree> high_;
};

/// Build a job signature from stored metrics (node-averaged over [t0, t1)).
JobSignature signature_from_db(const MetricFetcher& fetcher,
                               const std::vector<std::string>& hosts,
                               const std::string& job_id, util::TimeNs t0, util::TimeNs t1,
                               const hpm::CounterArchitecture& arch);

}  // namespace lms::analysis
