#include "lms/hpm/formula.hpp"

#include <cctype>
#include <cmath>
#include <stack>

namespace lms::hpm {

namespace {

enum class TokKind { kNumber, kIdent, kOp, kLParen, kRParen, kComma, kEnd };

struct Token {
  TokKind kind;
  double number = 0.0;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  util::Result<Token> next() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ >= text_.size()) return Token{TokKind::kEnd, 0.0, ""};
    const char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.') {
      std::size_t j = pos_;
      while (j < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[j])) != 0 || text_[j] == '.')) {
        ++j;
      }
      // Scientific notation: 1.0E-06, 2e9.
      if (j < text_.size() && (text_[j] == 'e' || text_[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < text_.size() && (text_[k] == '+' || text_[k] == '-')) ++k;
        if (k < text_.size() && std::isdigit(static_cast<unsigned char>(text_[k])) != 0) {
          while (k < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[k])) != 0) {
            ++k;
          }
          j = k;
        }
      }
      const std::string tok(text_.substr(pos_, j - pos_));
      pos_ = j;
      try {
        return Token{TokKind::kNumber, std::stod(tok), tok};
      } catch (...) {
        return util::Result<Token>::error("formula: bad number '" + tok + "'");
      }
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = pos_;
      while (j < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[j])) != 0 || text_[j] == '_' ||
              text_[j] == ':')) {
        ++j;
      }
      Token t{TokKind::kIdent, 0.0, std::string(text_.substr(pos_, j - pos_))};
      pos_ = j;
      return t;
    }
    ++pos_;
    switch (c) {
      case '+':
      case '-':
      case '*':
      case '/':
      case '^':
        return Token{TokKind::kOp, 0.0, std::string(1, c)};
      case '(':
        return Token{TokKind::kLParen, 0.0, ""};
      case ')':
        return Token{TokKind::kRParen, 0.0, ""};
      case ',':
        return Token{TokKind::kComma, 0.0, ""};
      default:
        return util::Result<Token>::error(std::string("formula: unexpected character '") + c +
                                          "'");
    }
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

int precedence(const std::string& op) {
  if (op == "^") return 4;
  if (op == "u-") return 3;
  if (op == "*" || op == "/") return 2;
  return 1;  // + -
}

bool right_assoc(const std::string& op) { return op == "^" || op == "u-"; }

}  // namespace

util::Result<Formula> Formula::compile(std::string_view text) {
  Formula f;
  f.text_ = std::string(text);
  Lexer lexer(text);

  // Shunting-yard with function support (min/max/abs).
  std::vector<std::string> op_stack;  // operators, "(", function names
  std::vector<Instr>& out = f.program_;
  std::map<std::string, int, std::less<>> var_indices;

  auto emit_op = [&](const std::string& op) -> util::Status {
    if (op == "+") {
      out.push_back({OpCode::kAdd});
    } else if (op == "-") {
      out.push_back({OpCode::kSub});
    } else if (op == "*") {
      out.push_back({OpCode::kMul});
    } else if (op == "/") {
      out.push_back({OpCode::kDiv});
    } else if (op == "^") {
      out.push_back({OpCode::kPow});
    } else if (op == "u-") {
      out.push_back({OpCode::kNeg});
    } else if (op == "min") {
      out.push_back({OpCode::kMin});
    } else if (op == "max") {
      out.push_back({OpCode::kMax});
    } else if (op == "abs") {
      out.push_back({OpCode::kAbs});
    } else {
      return util::Status::error("formula: unknown function '" + op + "'");
    }
    return {};
  };

  bool expect_operand = true;
  while (true) {
    auto tok = lexer.next();
    if (!tok.ok()) return util::Result<Formula>::error(tok.message());
    const Token& t = *tok;
    if (t.kind == TokKind::kEnd) break;
    switch (t.kind) {
      case TokKind::kNumber: {
        Instr i{OpCode::kPush};
        i.literal = t.number;
        out.push_back(i);
        expect_operand = false;
        break;
      }
      case TokKind::kIdent: {
        const std::string lower = [&] {
          std::string s = t.text;
          for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
          return s;
        }();
        if (lower == "min" || lower == "max" || lower == "abs") {
          op_stack.push_back(lower);
        } else {
          auto [it, inserted] = var_indices.emplace(t.text, static_cast<int>(f.variables_.size()));
          if (inserted) f.variables_.push_back(t.text);
          Instr i{OpCode::kLoad};
          i.var_index = it->second;
          out.push_back(i);
        }
        expect_operand = lower == "min" || lower == "max" || lower == "abs";
        break;
      }
      case TokKind::kOp: {
        std::string op = t.text;
        if (op == "-" && expect_operand) op = "u-";
        if (op == "+" && expect_operand) break;  // unary plus: no-op
        while (!op_stack.empty() && op_stack.back() != "(") {
          const std::string& top = op_stack.back();
          const bool is_func = top == "min" || top == "max" || top == "abs";
          if (is_func || precedence(top) > precedence(op) ||
              (precedence(top) == precedence(op) && !right_assoc(op))) {
            if (auto s = emit_op(top); !s.ok()) return util::Result<Formula>::error(s.message());
            op_stack.pop_back();
          } else {
            break;
          }
        }
        op_stack.push_back(op);
        expect_operand = true;
        break;
      }
      case TokKind::kLParen:
        op_stack.push_back("(");
        expect_operand = true;
        break;
      case TokKind::kComma:
        while (!op_stack.empty() && op_stack.back() != "(") {
          if (auto s = emit_op(op_stack.back()); !s.ok()) {
            return util::Result<Formula>::error(s.message());
          }
          op_stack.pop_back();
        }
        if (op_stack.empty()) {
          return util::Result<Formula>::error("formula: misplaced ','");
        }
        expect_operand = true;
        break;
      case TokKind::kRParen: {
        while (!op_stack.empty() && op_stack.back() != "(") {
          if (auto s = emit_op(op_stack.back()); !s.ok()) {
            return util::Result<Formula>::error(s.message());
          }
          op_stack.pop_back();
        }
        if (op_stack.empty()) return util::Result<Formula>::error("formula: unbalanced ')'");
        op_stack.pop_back();  // '('
        // A function name directly below the paren applies to its contents.
        if (!op_stack.empty() &&
            (op_stack.back() == "min" || op_stack.back() == "max" || op_stack.back() == "abs")) {
          if (auto s = emit_op(op_stack.back()); !s.ok()) {
            return util::Result<Formula>::error(s.message());
          }
          op_stack.pop_back();
        }
        expect_operand = false;
        break;
      }
      case TokKind::kEnd:
        break;
    }
  }
  while (!op_stack.empty()) {
    if (op_stack.back() == "(") return util::Result<Formula>::error("formula: unbalanced '('");
    if (auto s = emit_op(op_stack.back()); !s.ok()) {
      return util::Result<Formula>::error(s.message());
    }
    op_stack.pop_back();
  }
  if (out.empty()) return util::Result<Formula>::error("formula: empty expression");

  // Validate stack discipline so evaluate() can run unchecked.
  int depth = 0;
  for (const auto& instr : out) {
    switch (instr.op) {
      case OpCode::kPush:
      case OpCode::kLoad:
        ++depth;
        break;
      case OpCode::kNeg:
      case OpCode::kAbs:
        if (depth < 1) return util::Result<Formula>::error("formula: malformed expression");
        break;
      default:
        if (depth < 2) return util::Result<Formula>::error("formula: malformed expression");
        --depth;
        break;
    }
  }
  if (depth != 1) return util::Result<Formula>::error("formula: malformed expression");
  return f;
}

util::Result<double> Formula::evaluate(const VarMap& vars) const {
  // program_ is validated at compile time; use a small fixed stack.
  double stack[64];
  std::size_t sp = 0;
  // Resolve variables once per call.
  for (const auto& instr : program_) {
    switch (instr.op) {
      case OpCode::kPush:
        if (sp >= 64) return util::Result<double>::error("formula: expression too deep");
        stack[sp++] = instr.literal;
        break;
      case OpCode::kLoad: {
        if (sp >= 64) return util::Result<double>::error("formula: expression too deep");
        const auto it = vars.find(variables_[static_cast<std::size_t>(instr.var_index)]);
        if (it == vars.end()) {
          return util::Result<double>::error(
              "formula: unbound variable '" +
              variables_[static_cast<std::size_t>(instr.var_index)] + "'");
        }
        stack[sp++] = it->second;
        break;
      }
      case OpCode::kAdd:
        stack[sp - 2] += stack[sp - 1];
        --sp;
        break;
      case OpCode::kSub:
        stack[sp - 2] -= stack[sp - 1];
        --sp;
        break;
      case OpCode::kMul:
        stack[sp - 2] *= stack[sp - 1];
        --sp;
        break;
      case OpCode::kDiv:
        stack[sp - 2] = stack[sp - 1] == 0.0 ? 0.0 : stack[sp - 2] / stack[sp - 1];
        --sp;
        break;
      case OpCode::kPow:
        stack[sp - 2] = std::pow(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case OpCode::kNeg:
        stack[sp - 1] = -stack[sp - 1];
        break;
      case OpCode::kMin:
        stack[sp - 2] = std::min(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case OpCode::kMax:
        stack[sp - 2] = std::max(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case OpCode::kAbs:
        stack[sp - 1] = std::fabs(stack[sp - 1]);
        break;
    }
  }
  return stack[0];
}

}  // namespace lms::hpm
