#include "lms/hpm/arch.hpp"

#include <cstdio>

namespace lms::hpm {

const EventDef* CounterArchitecture::find_event(std::string_view event_name) const {
  for (const auto& e : events) {
    if (e.name == event_name) return &e;
  }
  return nullptr;
}

const CounterSlotDef* CounterArchitecture::find_slot(std::string_view slot_name) const {
  for (const auto& s : slots) {
    if (s.name == slot_name) return &s;
  }
  return nullptr;
}

bool CounterArchitecture::schedulable(const EventDef& event, const CounterSlotDef& slot) const {
  return event.counter_class == slot.clazz &&
         ((event.scope == CounterScope::kHwThread && slot.scope == CounterScope::kHwThread) ||
          (event.scope == CounterScope::kSocket && slot.scope == CounterScope::kSocket));
}

namespace {

std::vector<CounterSlotDef> standard_slots(int pmc_count, int mbox_count) {
  std::vector<CounterSlotDef> slots;
  slots.push_back({"FIXC0", "FIXC", CounterScope::kHwThread});
  slots.push_back({"FIXC1", "FIXC", CounterScope::kHwThread});
  slots.push_back({"FIXC2", "FIXC", CounterScope::kHwThread});
  for (int i = 0; i < pmc_count; ++i) {
    slots.push_back({"PMC" + std::to_string(i), "PMC", CounterScope::kHwThread});
  }
  for (int i = 0; i < mbox_count; ++i) {
    slots.push_back({"MBOX" + std::to_string(i / 2) + "C" + std::to_string(i % 2), "MBOX",
                     CounterScope::kSocket});
  }
  slots.push_back({"PWR0", "PWR", CounterScope::kSocket});
  return slots;
}

std::vector<EventDef> standard_events() {
  return {
      {"INSTR_RETIRED_ANY", EventKind::kInstructionsRetired, CounterScope::kHwThread, "FIXC"},
      {"CPU_CLK_UNHALTED_CORE", EventKind::kCoreCyclesUnhalted, CounterScope::kHwThread, "FIXC"},
      {"CPU_CLK_UNHALTED_REF", EventKind::kRefCyclesUnhalted, CounterScope::kHwThread, "FIXC"},
      {"FP_ARITH_INST_RETIRED_SCALAR_DOUBLE", EventKind::kFlopsScalarDp, CounterScope::kHwThread,
       "PMC"},
      {"FP_ARITH_INST_RETIRED_128B_PACKED_DOUBLE", EventKind::kFlopsPacked128Dp,
       CounterScope::kHwThread, "PMC"},
      {"FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE", EventKind::kFlopsPacked256Dp,
       CounterScope::kHwThread, "PMC"},
      {"FP_ARITH_INST_RETIRED_SCALAR_SINGLE", EventKind::kFlopsScalarSp, CounterScope::kHwThread,
       "PMC"},
      {"FP_ARITH_INST_RETIRED_128B_PACKED_SINGLE", EventKind::kFlopsPacked128Sp,
       CounterScope::kHwThread, "PMC"},
      {"FP_ARITH_INST_RETIRED_256B_PACKED_SINGLE", EventKind::kFlopsPacked256Sp,
       CounterScope::kHwThread, "PMC"},
      {"BR_INST_RETIRED_ALL_BRANCHES", EventKind::kBranchesRetired, CounterScope::kHwThread,
       "PMC"},
      {"BR_MISP_RETIRED_ALL_BRANCHES", EventKind::kBranchesMispredicted, CounterScope::kHwThread,
       "PMC"},
      {"L1D_REPLACEMENT", EventKind::kL1DReplacement, CounterScope::kHwThread, "PMC"},
      {"L2_LINES_IN_ALL", EventKind::kL2LinesIn, CounterScope::kHwThread, "PMC"},
      {"L3_LINES_IN_ALL", EventKind::kL3LinesIn, CounterScope::kHwThread, "PMC"},
      {"MEM_INST_RETIRED_ALL_LOADS", EventKind::kLoadsRetired, CounterScope::kHwThread, "PMC"},
      {"MEM_INST_RETIRED_ALL_STORES", EventKind::kStoresRetired, CounterScope::kHwThread, "PMC"},
      {"DTLB_LOAD_MISSES_WALK_COMPLETED", EventKind::kDtlbWalkCompleted, CounterScope::kHwThread,
       "PMC"},
      {"CAS_COUNT_RD", EventKind::kCasReadUncore, CounterScope::kSocket, "MBOX"},
      {"CAS_COUNT_WR", EventKind::kCasWriteUncore, CounterScope::kSocket, "MBOX"},
      {"PWR_PKG_ENERGY", EventKind::kPkgEnergyUncore, CounterScope::kSocket, "PWR"},
  };
}

}  // namespace

const CounterArchitecture& simx86() {
  static const CounterArchitecture arch = [] {
    CounterArchitecture a;
    a.name = "simx86";
    a.cpu_model = "Simulated x86_64 server (AVX2, 2S x 8C)";
    a.sockets = 2;
    a.cores_per_socket = 8;
    a.threads_per_core = 1;
    a.nominal_clock_ghz = 2.3;
    // AVX2 FMA: 2 FMA units * 4 DP lanes * 2 flops = 16 DP flop/cycle.
    a.peak_dp_flops_per_core = 16.0 * a.nominal_clock_ghz * 1e9;
    // 4 DDR4-2400 channels per socket ~ 76.8 GB/s theoretical.
    a.peak_mem_bw_per_socket = 76.8e9;
    a.slots = standard_slots(/*pmc_count=*/4, /*mbox_count=*/8);
    a.events = standard_events();
    return a;
  }();
  return arch;
}

const CounterArchitecture& simx86_small() {
  static const CounterArchitecture arch = [] {
    CounterArchitecture a;
    a.name = "simx86-small";
    a.cpu_model = "Simulated x86_64 desktop (AVX2, 1S x 4C)";
    a.sockets = 1;
    a.cores_per_socket = 4;
    a.threads_per_core = 1;
    a.nominal_clock_ghz = 3.5;
    a.peak_dp_flops_per_core = 16.0 * a.nominal_clock_ghz * 1e9;
    a.peak_mem_bw_per_socket = 38.4e9;  // 2 channels DDR4-2400
    a.slots = standard_slots(/*pmc_count=*/4, /*mbox_count=*/4);
    a.events = standard_events();
    return a;
  }();
  return arch;
}

const CounterArchitecture* find_architecture(std::string_view name) {
  if (name == simx86().name) return &simx86();
  if (name == simx86_small().name) return &simx86_small();
  return nullptr;
}

std::string topology_string(const CounterArchitecture& arch) {
  char buf[256];
  std::string out;
  out += "--------------------------------------------------------------------\n";
  out += "CPU name:       " + arch.cpu_model + "\n";
  out += "Architecture:   " + arch.name + "\n";
  std::snprintf(buf, sizeof(buf), "Sockets:        %d\n", arch.sockets);
  out += buf;
  std::snprintf(buf, sizeof(buf), "Cores/socket:   %d (%d threads/core, %d hwthreads total)\n",
                arch.cores_per_socket, arch.threads_per_core, arch.total_hwthreads());
  out += buf;
  std::snprintf(buf, sizeof(buf), "Nominal clock:  %.2f GHz\n", arch.nominal_clock_ghz);
  out += buf;
  out += "--------------------------------------------------------------------\n";
  std::snprintf(buf, sizeof(buf), "L1d cache:      %d KiB per core\n", arch.l1d_kib_per_core);
  out += buf;
  std::snprintf(buf, sizeof(buf), "L2 cache:       %d KiB per core\n", arch.l2_kib_per_core);
  out += buf;
  std::snprintf(buf, sizeof(buf), "L3 cache:       %d MiB per socket (shared)\n",
                arch.l3_mib_per_socket);
  out += buf;
  out += "--------------------------------------------------------------------\n";
  int fixc = 0;
  int pmc = 0;
  int mbox = 0;
  int pwr = 0;
  for (const auto& slot : arch.slots) {
    if (slot.clazz == "FIXC") ++fixc;
    if (slot.clazz == "PMC") ++pmc;
    if (slot.clazz == "MBOX") ++mbox;
    if (slot.clazz == "PWR") ++pwr;
  }
  std::snprintf(buf, sizeof(buf),
                "Counters:       %d fixed + %d general per hwthread, %d MBOX + %d PWR per "
                "socket\n",
                fixc, pmc, mbox, pwr);
  out += buf;
  std::snprintf(buf, sizeof(buf), "Peak DP:        %.1f GFLOP/s per core, %.1f GFLOP/s node\n",
                arch.peak_dp_flops_per_core / 1e9,
                arch.peak_dp_flops_per_core * arch.total_cores() / 1e9);
  out += buf;
  std::snprintf(buf, sizeof(buf), "Peak mem bw:    %.1f GB/s per socket, %.1f GB/s node\n",
                arch.peak_mem_bw_per_socket / 1e9,
                arch.peak_mem_bw_per_socket * arch.sockets / 1e9);
  out += buf;
  out += "--------------------------------------------------------------------\n";
  return out;
}

}  // namespace lms::hpm
