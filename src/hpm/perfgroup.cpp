#include "lms/hpm/perfgroup.hpp"

#include <cctype>

#include "lms/util/strings.hpp"

namespace lms::hpm {

std::string sanitize_field_key(std::string_view metric_name) {
  std::string out;
  out.reserve(metric_name.size());
  bool last_underscore = true;  // suppress leading underscore
  for (std::size_t i = 0; i < metric_name.size(); ++i) {
    const char c = metric_name[i];
    if (c == '[' || c == ']' || c == '(' || c == ')' || c == '%') continue;
    if (c == '/') {
      if (!last_underscore) out.push_back('_');
      out += "per_";
      last_underscore = false;
      continue;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      last_underscore = false;
    } else if (!last_underscore) {
      out.push_back('_');
      last_underscore = true;
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

util::Result<PerfGroup> PerfGroup::parse(std::string_view name, std::string_view text,
                                         const CounterArchitecture& arch) {
  PerfGroup g;
  g.name_ = std::string(name);
  enum class Section { kNone, kEventset, kMetrics, kLong };
  Section section = Section::kNone;
  auto fail = [&](std::string why) {
    return util::Result<PerfGroup>::error("group " + g.name_ + ": " + std::move(why));
  };

  for (const auto& raw : util::split(text, '\n')) {
    const std::string_view line = util::trim(raw);
    if (line.empty() || line[0] == '#') continue;
    if (util::starts_with(line, "SHORT")) {
      g.short_ = std::string(util::trim(line.substr(5)));
      continue;
    }
    if (line == "EVENTSET") {
      section = Section::kEventset;
      continue;
    }
    if (line == "METRICS") {
      section = Section::kMetrics;
      continue;
    }
    if (line == "LONG") {
      section = Section::kLong;
      continue;
    }
    switch (section) {
      case Section::kEventset: {
        const auto tokens = util::split_trimmed(line, ' ');
        if (tokens.size() != 2) return fail("bad EVENTSET line '" + std::string(line) + "'");
        const CounterSlotDef* slot = arch.find_slot(tokens[0]);
        if (slot == nullptr) return fail("unknown counter slot '" + tokens[0] + "'");
        const EventDef* event = arch.find_event(tokens[1]);
        if (event == nullptr) return fail("unknown event '" + tokens[1] + "'");
        if (!arch.schedulable(*event, *slot)) {
          return fail("event '" + tokens[1] + "' not schedulable on '" + tokens[0] + "'");
        }
        for (const auto& existing : g.events_) {
          if (existing.slot == tokens[0]) {
            return fail("counter slot '" + tokens[0] + "' assigned twice");
          }
        }
        g.events_.push_back(EventAssignment{tokens[0], tokens[1]});
        break;
      }
      case Section::kMetrics: {
        // Formula is the last whitespace token; the rest is the name.
        const std::size_t split_pos = line.find_last_of(" \t");
        if (split_pos == std::string_view::npos) {
          return fail("bad METRICS line '" + std::string(line) + "'");
        }
        const std::string metric_name(util::trim(line.substr(0, split_pos)));
        const std::string formula_text(util::trim(line.substr(split_pos + 1)));
        auto formula = Formula::compile(formula_text);
        if (!formula.ok()) {
          return fail("metric '" + metric_name + "': " + formula.message());
        }
        // Validate variables: counter slots from the event set or built-ins.
        for (const auto& var : formula->variables()) {
          if (var == "time" || var == "inverseClock" || var == "num_hwthreads" ||
              var == "num_sockets") {
            continue;
          }
          bool found = false;
          for (const auto& ea : g.events_) {
            if (ea.slot == var) {
              found = true;
              break;
            }
          }
          if (!found) {
            return fail("metric '" + metric_name + "' references unassigned counter '" + var +
                        "'");
          }
        }
        GroupMetric m{metric_name, sanitize_field_key(metric_name), formula.take()};
        g.metrics_.push_back(std::move(m));
        break;
      }
      case Section::kLong:
        if (!g.long_.empty()) g.long_ += "\n";
        g.long_ += std::string(line);
        break;
      case Section::kNone:
        return fail("content before any section: '" + std::string(line) + "'");
    }
  }
  if (g.events_.empty()) return fail("empty EVENTSET");
  if (g.metrics_.empty()) return fail("no METRICS");
  return g;
}

std::string PerfGroup::measurement() const { return "likwid_" + util::to_lower(name_); }

GroupRegistry::GroupRegistry(const CounterArchitecture& arch) : arch_(arch) {
  for (const auto& name : builtin_group_names()) {
    const auto status = add(name, builtin_group_text(name));
    // Built-ins are validated by tests against every shipped architecture.
    (void)status;
  }
}

util::Status GroupRegistry::add(std::string_view name, std::string_view text) {
  auto g = PerfGroup::parse(name, text, arch_);
  if (!g.ok()) return util::Status::error(g.message());
  groups_.insert_or_assign(std::string(name), g.take());
  return {};
}

const PerfGroup* GroupRegistry::find(std::string_view name) const {
  const auto it = groups_.find(name);
  return it != groups_.end() ? &it->second : nullptr;
}

std::vector<std::string> GroupRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(groups_.size());
  for (const auto& [name, _] : groups_) out.push_back(name);
  return out;
}

}  // namespace lms::hpm
