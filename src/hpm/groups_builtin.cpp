#include "lms/hpm/perfgroup.hpp"

// Built-in performance groups in the LIKWID text format. These mirror the
// groups the paper's metric list (§V) draws on: CPU load comes from sysmon,
// IPC and FP rates from CLOCK/CPI/FLOPS_*, memory bandwidth from MEM, and
// the combined MEM_DP group feeds the pathological-job detection of Fig. 4
// (DP FP rate and memory bandwidth sampled together).

namespace lms::hpm {

namespace {

constexpr std::string_view kClock = R"(SHORT Clock frequency and IPC
EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
METRICS
Runtime (RDTSC) [s] time
Clock [MHz] 1.0E-06*(FIXC1/FIXC2)/inverseClock
CPI FIXC1/FIXC0
IPC FIXC0/FIXC1
LONG
Clock derives the average unhalted frequency from the ratio of core to
reference cycles. IPC/CPI use retired instructions.
)";

constexpr std::string_view kCpi = R"(SHORT Cycles per instruction
EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
METRICS
Runtime (RDTSC) [s] time
CPI FIXC1/FIXC0
IPC FIXC0/FIXC1
Instructions [MInstr/s] 1.0E-06*FIXC0/time
LONG
Basic efficiency group: retired instruction throughput.
)";

constexpr std::string_view kFlopsDp = R"(SHORT Double precision MFLOP/s
EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 FP_ARITH_INST_RETIRED_128B_PACKED_DOUBLE
PMC1 FP_ARITH_INST_RETIRED_SCALAR_DOUBLE
PMC2 FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE
METRICS
Runtime (RDTSC) [s] time
Clock [MHz] 1.0E-06*(FIXC1/FIXC2)/inverseClock
CPI FIXC1/FIXC0
DP [MFLOP/s] 1.0E-06*(PMC0*2.0+PMC1+PMC2*4.0)/time
AVX DP [MFLOP/s] 1.0E-06*(PMC2*4.0)/time
Packed [MUOPS/s] 1.0E-06*(PMC0+PMC2)/time
Scalar [MUOPS/s] 1.0E-06*PMC1/time
Vectorization ratio [%] 100.0*(PMC0+PMC2)/(PMC0+PMC1+PMC2)
LONG
DP FLOP rates from the FP_ARITH_INST_RETIRED events: 128-bit packed
instructions count 2 flops, 256-bit packed 4 flops, scalar 1.
)";

constexpr std::string_view kFlopsSp = R"(SHORT Single precision MFLOP/s
EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 FP_ARITH_INST_RETIRED_128B_PACKED_SINGLE
PMC1 FP_ARITH_INST_RETIRED_SCALAR_SINGLE
PMC2 FP_ARITH_INST_RETIRED_256B_PACKED_SINGLE
METRICS
Runtime (RDTSC) [s] time
Clock [MHz] 1.0E-06*(FIXC1/FIXC2)/inverseClock
CPI FIXC1/FIXC0
SP [MFLOP/s] 1.0E-06*(PMC0*4.0+PMC1+PMC2*8.0)/time
AVX SP [MFLOP/s] 1.0E-06*(PMC2*8.0)/time
Vectorization ratio [%] 100.0*(PMC0+PMC2)/(PMC0+PMC1+PMC2)
LONG
SP FLOP rates: 128-bit packed counts 4 flops, 256-bit packed 8, scalar 1.
)";

constexpr std::string_view kMem = R"(SHORT Main memory bandwidth
EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
MBOX0C0 CAS_COUNT_RD
MBOX0C1 CAS_COUNT_WR
METRICS
Runtime (RDTSC) [s] time
Memory read bandwidth [MBytes/s] 1.0E-06*MBOX0C0*64.0/time
Memory read data volume [GBytes] 1.0E-09*MBOX0C0*64.0
Memory write bandwidth [MBytes/s] 1.0E-06*MBOX0C1*64.0/time
Memory write data volume [GBytes] 1.0E-09*MBOX0C1*64.0
Memory bandwidth [MBytes/s] 1.0E-06*(MBOX0C0+MBOX0C1)*64.0/time
Memory data volume [GBytes] 1.0E-09*(MBOX0C0+MBOX0C1)*64.0
LONG
Memory controller CAS counts times the cache line size. Counted per socket
on the uncore; values are summed over sockets.
)";

constexpr std::string_view kMemDp = R"(SHORT Memory bandwidth and DP FLOP rate (roofline)
EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 FP_ARITH_INST_RETIRED_128B_PACKED_DOUBLE
PMC1 FP_ARITH_INST_RETIRED_SCALAR_DOUBLE
PMC2 FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE
MBOX0C0 CAS_COUNT_RD
MBOX0C1 CAS_COUNT_WR
METRICS
Runtime (RDTSC) [s] time
Clock [MHz] 1.0E-06*(FIXC1/FIXC2)/inverseClock
CPI FIXC1/FIXC0
IPC FIXC0/FIXC1
DP [MFLOP/s] 1.0E-06*(PMC0*2.0+PMC1+PMC2*4.0)/time
Memory bandwidth [MBytes/s] 1.0E-06*(MBOX0C0+MBOX0C1)*64.0/time
Memory data volume [GBytes] 1.0E-09*(MBOX0C0+MBOX0C1)*64.0
Operational intensity [FLOP/Byte] (PMC0*2.0+PMC1+PMC2*4.0)/((MBOX0C0+MBOX0C1)*64.0)
LONG
Combined group for roofline-style analysis and for the pathological job
detection: the DP FP rate and the memory bandwidth are measured in the same
interval, so threshold rules can evaluate both without multiplexing skew.
)";

constexpr std::string_view kL2 = R"(SHORT L2 cache bandwidth
EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
PMC0 L1D_REPLACEMENT
METRICS
Runtime (RDTSC) [s] time
L2 load bandwidth [MBytes/s] 1.0E-06*PMC0*64.0/time
L2 load data volume [GBytes] 1.0E-09*PMC0*64.0
L2 miss rate PMC0/FIXC0
LONG
L1 data cache line replacements from L2 times line size.
)";

constexpr std::string_view kL3 = R"(SHORT L3 cache bandwidth
EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
PMC0 L2_LINES_IN_ALL
METRICS
Runtime (RDTSC) [s] time
L3 load bandwidth [MBytes/s] 1.0E-06*PMC0*64.0/time
L3 load data volume [GBytes] 1.0E-09*PMC0*64.0
L3 miss rate PMC0/FIXC0
LONG
L2 cache line refills from L3 times line size.
)";

constexpr std::string_view kBranch = R"(SHORT Branch prediction
EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
PMC0 BR_INST_RETIRED_ALL_BRANCHES
PMC1 BR_MISP_RETIRED_ALL_BRANCHES
METRICS
Runtime (RDTSC) [s] time
Branch rate PMC0/FIXC0
Branch misprediction rate PMC1/FIXC0
Branch misprediction ratio PMC1/PMC0
Instructions per branch FIXC0/PMC0
LONG
Branch and misprediction rates relative to all retired instructions.
)";

constexpr std::string_view kData = R"(SHORT Load to store ratio
EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
PMC0 MEM_INST_RETIRED_ALL_LOADS
PMC1 MEM_INST_RETIRED_ALL_STORES
METRICS
Runtime (RDTSC) [s] time
Load to store ratio PMC0/PMC1
Load rate PMC0/FIXC0
Store rate PMC1/FIXC0
LONG
Ratio of retired load to store instructions.
)";

constexpr std::string_view kEnergy = R"(SHORT Power and energy consumption
EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PWR0 PWR_PKG_ENERGY
METRICS
Runtime (RDTSC) [s] time
Clock [MHz] 1.0E-06*(FIXC1/FIXC2)/inverseClock
Energy [J] PWR0
Power [W] PWR0/time
LONG
RAPL package energy; the raw 32-bit counter is scaled by the architecture
energy unit before formula evaluation.
)";

constexpr std::string_view kTlbData = R"(SHORT Data TLB misses
EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
PMC0 DTLB_LOAD_MISSES_WALK_COMPLETED
METRICS
Runtime (RDTSC) [s] time
L1 DTLB load misses PMC0
L1 DTLB load miss rate PMC0/FIXC0
LONG
Completed page walks caused by data loads.
)";

struct BuiltinGroup {
  std::string_view name;
  std::string_view text;
};

constexpr BuiltinGroup kBuiltins[] = {
    {"CLOCK", kClock},   {"CPI", kCpi},       {"FLOPS_DP", kFlopsDp}, {"FLOPS_SP", kFlopsSp},
    {"MEM", kMem},       {"MEM_DP", kMemDp},  {"L2", kL2},            {"L3", kL3},
    {"BRANCH", kBranch}, {"DATA", kData},     {"ENERGY", kEnergy},    {"TLB_DATA", kTlbData},
};

}  // namespace

std::string_view builtin_group_text(std::string_view name) {
  for (const auto& g : kBuiltins) {
    if (g.name == name) return g.text;
  }
  return {};
}

std::vector<std::string> builtin_group_names() {
  std::vector<std::string> out;
  for (const auto& g : kBuiltins) out.emplace_back(g.name);
  return out;
}

}  // namespace lms::hpm
