#include "lms/hpm/simulator.hpp"

#include <cmath>

namespace lms::hpm {

NodeLoad idle_load(const CounterArchitecture& arch) {
  NodeLoad load;
  load.cores.resize(static_cast<std::size_t>(arch.total_hwthreads()));
  load.sockets.resize(static_cast<std::size_t>(arch.sockets));
  for (auto& core : load.cores) {
    // OS housekeeping: a whisper of activity at low frequency.
    core.clock_ghz = arch.nominal_clock_ghz * 0.5;
    core.active_fraction = 0.005;
    core.ipc = 0.8;
    core.branch_per_instr = 0.2;
    core.branch_miss_ratio = 0.05;
    core.loads_per_instr = 0.25;
    core.stores_per_instr = 0.1;
    core.l2_bw_bytes_per_sec = 5e6;
    core.l3_bw_bytes_per_sec = 1e6;
    core.mem_bw_bytes_per_sec = 0.5e6;
    core.dtlb_miss_per_instr = 1e-5;
  }
  for (auto& socket : load.sockets) {
    socket.mem_read_bw_bytes_per_sec = 2e6;
    socket.mem_write_bw_bytes_per_sec = 1e6;
    socket.package_power_watts = 35.0;  // idle package power
  }
  return load;
}

CounterSimulator::CounterSimulator(const CounterArchitecture& arch, std::uint64_t seed,
                                   double noise_sigma)
    : arch_(arch), rng_(seed), noise_sigma_(noise_sigma) {
  // One row per EventKind; sized for the widest unit domain.
  constexpr int kKinds = static_cast<int>(EventKind::kPkgEnergyUncore) + 1;
  counts_.resize(kKinds);
  for (int k = 0; k < kKinds; ++k) {
    counts_[static_cast<std::size_t>(k)].assign(
        static_cast<std::size_t>(units_for(static_cast<EventKind>(k))), 0.0);
  }
}

int CounterSimulator::units_for(EventKind kind) const {
  switch (kind) {
    case EventKind::kCasReadUncore:
    case EventKind::kCasWriteUncore:
    case EventKind::kPkgEnergyUncore:
      return arch_.sockets;
    default:
      return arch_.total_hwthreads();
  }
}

double& CounterSimulator::cell(EventKind kind, int unit) {
  return counts_[static_cast<std::size_t>(kind)][static_cast<std::size_t>(unit)];
}

double CounterSimulator::cell_value(EventKind kind, int unit) const {
  return counts_[static_cast<std::size_t>(kind)][static_cast<std::size_t>(unit)];
}

double CounterSimulator::noise() {
  if (noise_sigma_ <= 0.0) return 1.0;
  // Uniform jitter with the configured standard deviation (width
  // ±sqrt(3)*sigma). advance() draws this once per cell, so the draw sits
  // on the simulation's hot path: a uniform is one xoshiro step, an order
  // of magnitude cheaper than Box-Muller, and at the ~1% jitter scale the
  // distribution shape is irrelevant to every consumer.
  constexpr double kSqrt3 = 1.7320508075688772;
  const double f = 1.0 + noise_sigma_ * kSqrt3 * (rng_.uniform() * 2.0 - 1.0);
  return f < 0.0 ? 0.0 : f;
}

void CounterSimulator::advance(const NodeLoad& load, util::TimeNs dt_ns) {
  const double dt = util::ns_to_seconds(dt_ns);
  if (dt <= 0) return;
  const int cores = arch_.total_hwthreads();
  for (int c = 0; c < cores; ++c) {
    const CoreLoad& cl =
        c < static_cast<int>(load.cores.size()) ? load.cores[static_cast<std::size_t>(c)]
                                                : CoreLoad{};
    const double active_seconds = dt * cl.active_fraction;
    const double cycles = cl.clock_ghz * 1e9 * active_seconds;
    const double ref_cycles = arch_.nominal_clock_ghz * 1e9 * active_seconds;
    const double instr = cycles * cl.ipc;
    cell(EventKind::kCoreCyclesUnhalted, c) += cycles * noise();
    cell(EventKind::kRefCyclesUnhalted, c) += ref_cycles * noise();
    cell(EventKind::kInstructionsRetired, c) += instr * noise();

    // DP flops: simd fraction executed as 256-bit packed (4 flops/instr),
    // the rest scalar.
    const double dp_flops = cl.flops_dp_per_sec * dt;
    cell(EventKind::kFlopsPacked256Dp, c) += dp_flops * cl.dp_simd_fraction / 4.0 * noise();
    cell(EventKind::kFlopsScalarDp, c) += dp_flops * (1.0 - cl.dp_simd_fraction) * noise();
    const double sp_flops = cl.flops_sp_per_sec * dt;
    cell(EventKind::kFlopsPacked256Sp, c) += sp_flops * cl.sp_simd_fraction / 8.0 * noise();
    cell(EventKind::kFlopsScalarSp, c) += sp_flops * (1.0 - cl.sp_simd_fraction) * noise();

    const double branches = instr * cl.branch_per_instr;
    cell(EventKind::kBranchesRetired, c) += branches * noise();
    cell(EventKind::kBranchesMispredicted, c) += branches * cl.branch_miss_ratio * noise();
    cell(EventKind::kLoadsRetired, c) += instr * cl.loads_per_instr * noise();
    cell(EventKind::kStoresRetired, c) += instr * cl.stores_per_instr * noise();
    cell(EventKind::kDtlbWalkCompleted, c) += instr * cl.dtlb_miss_per_instr * noise();

    cell(EventKind::kL1DReplacement, c) +=
        cl.l2_bw_bytes_per_sec * dt / arch_.cacheline_bytes * noise();
    cell(EventKind::kL2LinesIn, c) +=
        cl.l3_bw_bytes_per_sec * dt / arch_.cacheline_bytes * noise();
    cell(EventKind::kL3LinesIn, c) +=
        cl.mem_bw_bytes_per_sec * dt / arch_.cacheline_bytes * noise();
  }
  for (int s = 0; s < arch_.sockets; ++s) {
    const SocketLoad& sl =
        s < static_cast<int>(load.sockets.size()) ? load.sockets[static_cast<std::size_t>(s)]
                                                  : SocketLoad{};
    cell(EventKind::kCasReadUncore, s) +=
        sl.mem_read_bw_bytes_per_sec * dt / arch_.cacheline_bytes * noise();
    cell(EventKind::kCasWriteUncore, s) +=
        sl.mem_write_bw_bytes_per_sec * dt / arch_.cacheline_bytes * noise();
    // RAPL counts in energy units.
    cell(EventKind::kPkgEnergyUncore, s) +=
        sl.package_power_watts * dt / arch_.energy_unit_joules * noise();
  }
}

std::uint64_t CounterSimulator::read(EventKind kind, int unit) const {
  const double raw = cell_value(kind, unit);
  const std::uint64_t mask =
      kind == EventKind::kPkgEnergyUncore ? kEnergyCounterMask : kCoreCounterMask;
  const double width = static_cast<double>(mask) + 1.0;
  // Fast path while the counter has not wrapped yet — fmod is the single
  // most expensive operation on the snapshot path, and region profiling
  // snapshots every counter twice per region instance.
  if (raw < width) return static_cast<std::uint64_t>(raw) & mask;
  // Wrap exactly like a fixed-width up-counter.
  const double wrapped = std::fmod(raw, width);
  return static_cast<std::uint64_t>(wrapped) & mask;
}

std::uint64_t CounterSimulator::read_total(EventKind kind) const {
  std::uint64_t total = 0;
  const int units = units_for(kind);
  for (int u = 0; u < units; ++u) total += read(kind, u);
  return total;
}

std::uint64_t CounterSimulator::wrap_delta(std::uint64_t now, std::uint64_t before,
                                           std::uint64_t mask) {
  return (now - before) & mask;
}

}  // namespace lms::hpm
