#include "lms/hpm/monitor.hpp"

#include <algorithm>

#include "lms/util/logging.hpp"

namespace lms::hpm {

util::Result<HpmMonitor> HpmMonitor::create(const GroupRegistry& registry,
                                            const CounterSimulator& sim, Options options) {
  if (options.groups.empty()) {
    return util::Result<HpmMonitor>::error("HpmMonitor: no groups configured");
  }
  std::vector<ActiveGroup> groups;
  for (const auto& name : options.groups) {
    const PerfGroup* g = registry.find(name);
    if (g == nullptr) {
      return util::Result<HpmMonitor>::error("HpmMonitor: unknown group '" + name + "'");
    }
    groups.push_back(ActiveGroup{g});
  }
  return HpmMonitor(registry, sim, std::move(options), std::move(groups));
}

HpmMonitor::HpmMonitor(const GroupRegistry& registry, const CounterSimulator& sim,
                       Options options, std::vector<ActiveGroup> groups)
    : registry_(registry), sim_(sim), options_(std::move(options)), groups_(std::move(groups)) {}

std::vector<std::vector<std::uint64_t>> HpmMonitor::snapshot() const {
  constexpr int kKinds = static_cast<int>(EventKind::kPkgEnergyUncore) + 1;
  std::vector<std::vector<std::uint64_t>> snap(kKinds);
  for (int k = 0; k < kKinds; ++k) {
    const auto kind = static_cast<EventKind>(k);
    const int units = sim_.units_for(kind);
    auto& row = snap[static_cast<std::size_t>(k)];
    row.resize(static_cast<std::size_t>(units));
    for (int u = 0; u < units; ++u) {
      row[static_cast<std::size_t>(u)] = sim_.read(kind, u);
    }
  }
  return snap;
}

VarMap HpmMonitor::slot_deltas(const PerfGroup& group,
                               const std::vector<std::vector<std::uint64_t>>& before,
                               const std::vector<std::vector<std::uint64_t>>& after,
                               int socket) const {
  const CounterArchitecture& arch = sim_.architecture();
  const int threads_per_socket = arch.cores_per_socket * arch.threads_per_core;
  VarMap vars;
  for (const auto& assignment : group.events()) {
    const EventDef* event = arch.find_event(assignment.event);
    if (event == nullptr) continue;  // validated at group parse time
    const auto kind_index = static_cast<std::size_t>(event->kind);
    const std::uint64_t mask = event->kind == EventKind::kPkgEnergyUncore
                                   ? CounterSimulator::kEnergyCounterMask
                                   : CounterSimulator::kCoreCounterMask;
    const auto& row_before = before[kind_index];
    const auto& row_after = after[kind_index];
    // Unit range: whole node, or one socket's cores / uncore unit.
    std::size_t u_begin = 0;
    std::size_t u_end = row_after.size();
    if (socket >= 0) {
      if (event->scope == CounterScope::kSocket) {
        u_begin = static_cast<std::size_t>(socket);
        u_end = u_begin + 1;
      } else {
        u_begin = static_cast<std::size_t>(socket * threads_per_socket);
        u_end = u_begin + static_cast<std::size_t>(threads_per_socket);
      }
      u_end = std::min(u_end, row_after.size());
    }
    double total = 0.0;
    for (std::size_t u = u_begin; u < u_end; ++u) {
      total += static_cast<double>(
          CounterSimulator::wrap_delta(row_after[u], u < row_before.size() ? row_before[u] : 0,
                                       mask));
    }
    // RAPL slots deliver joules to the formulas.
    if (event->kind == EventKind::kPkgEnergyUncore) total *= arch.energy_unit_joules;
    vars[assignment.slot] = total;
  }
  return vars;
}

lineproto::Point HpmMonitor::evaluate_group(
    const PerfGroup& group, const std::vector<std::vector<std::uint64_t>>& before,
    const std::vector<std::vector<std::uint64_t>>& after, util::TimeNs t0, util::TimeNs t1,
    int socket) const {
  const CounterArchitecture& arch = sim_.architecture();
  const int threads_per_socket = arch.cores_per_socket * arch.threads_per_core;
  VarMap vars = slot_deltas(group, before, after, socket);
  vars["time"] = util::ns_to_seconds(t1 - t0);
  vars["inverseClock"] = 1.0 / (arch.nominal_clock_ghz * 1e9);
  vars["num_hwthreads"] =
      static_cast<double>(socket < 0 ? arch.total_hwthreads() : threads_per_socket);
  vars["num_sockets"] = socket < 0 ? static_cast<double>(arch.sockets) : 1.0;

  lineproto::Point point;
  point.measurement = group.measurement();
  if (!options_.hostname.empty()) point.set_tag("hostname", options_.hostname);
  if (socket >= 0) point.set_tag("socket", std::to_string(socket));
  point.timestamp = t1;
  for (const auto& metric : group.metrics()) {
    const auto value = metric.formula.evaluate(vars);
    if (!value.ok()) {
      LMS_WARN("hpm") << "metric '" << metric.name << "' failed: " << value.message();
      continue;
    }
    point.add_field(metric.field_key, *value);
  }
  point.normalize();
  return point;
}

std::vector<lineproto::Point> HpmMonitor::sample(util::TimeNs now) {
  auto current = snapshot();
  std::vector<lineproto::Point> points;
  if (has_baseline_ && now > last_time_) {
    const PerfGroup& group = *groups_[active_].group;
    points.push_back(evaluate_group(group, last_counts_, current, last_time_, now));
    if (options_.per_socket_fields) {
      for (int s = 0; s < sim_.architecture().sockets; ++s) {
        points.push_back(evaluate_group(group, last_counts_, current, last_time_, now, s));
      }
    }
    active_ = (active_ + 1) % groups_.size();
  }
  last_counts_ = std::move(current);
  last_time_ = now;
  has_baseline_ = true;
  return points;
}

}  // namespace lms::hpm
