#include "lms/collector/plugins.hpp"

namespace lms::collector {

using lineproto::Point;

CpuPlugin::CpuPlugin(const sysmon::KernelReader& kernel, std::string hostname)
    : kernel_(kernel), hostname_(std::move(hostname)) {}

std::vector<Point> CpuPlugin::collect(util::TimeNs now) {
  const sysmon::CpuTimes cur = kernel_.cpu_times();
  std::vector<Point> out;
  if (last_) {
    const double d_total = cur.total() - last_->total();
    if (d_total > 0) {
      Point p;
      p.measurement = "cpu";
      p.set_tag("hostname", hostname_);
      p.timestamp = now;
      p.add_field("user_percent", 100.0 * (cur.user - last_->user) / d_total);
      p.add_field("system_percent", 100.0 * (cur.system - last_->system) / d_total);
      p.add_field("iowait_percent", 100.0 * (cur.iowait - last_->iowait) / d_total);
      p.add_field("idle_percent", 100.0 * (cur.idle - last_->idle) / d_total);
      p.add_field("load1", kernel_.loadavg1());
      p.normalize();
      out.push_back(std::move(p));
    }
  }
  last_ = cur;
  return out;
}

MemoryPlugin::MemoryPlugin(const sysmon::KernelReader& kernel, std::string hostname)
    : kernel_(kernel), hostname_(std::move(hostname)) {}

std::vector<Point> MemoryPlugin::collect(util::TimeNs now) {
  const sysmon::MemInfo m = kernel_.meminfo();
  Point p;
  p.measurement = "memory";
  p.set_tag("hostname", hostname_);
  p.timestamp = now;
  p.add_field("total_bytes", static_cast<std::int64_t>(m.total_bytes));
  p.add_field("used_bytes", static_cast<std::int64_t>(m.used_bytes));
  p.add_field("free_bytes", static_cast<std::int64_t>(m.free_bytes));
  p.add_field("used_percent",
              m.total_bytes == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(m.used_bytes) /
                        static_cast<double>(m.total_bytes));
  p.normalize();
  return {std::move(p)};
}

NetworkPlugin::NetworkPlugin(const sysmon::KernelReader& kernel, std::string hostname)
    : kernel_(kernel), hostname_(std::move(hostname)) {}

std::vector<Point> NetworkPlugin::collect(util::TimeNs now) {
  const sysmon::NetCounters cur = kernel_.net_counters();
  std::vector<Point> out;
  if (last_ && now > last_time_) {
    const double dt = util::ns_to_seconds(now - last_time_);
    Point p;
    p.measurement = "network";
    p.set_tag("hostname", hostname_);
    p.timestamp = now;
    p.add_field("rx_bytes_per_sec",
                static_cast<double>(cur.rx_bytes - last_->rx_bytes) / dt);
    p.add_field("tx_bytes_per_sec",
                static_cast<double>(cur.tx_bytes - last_->tx_bytes) / dt);
    p.add_field("rx_packets_per_sec",
                static_cast<double>(cur.rx_packets - last_->rx_packets) / dt);
    p.add_field("tx_packets_per_sec",
                static_cast<double>(cur.tx_packets - last_->tx_packets) / dt);
    p.normalize();
    out.push_back(std::move(p));
  }
  last_ = cur;
  last_time_ = now;
  return out;
}

DiskPlugin::DiskPlugin(const sysmon::KernelReader& kernel, std::string hostname)
    : kernel_(kernel), hostname_(std::move(hostname)) {}

std::vector<Point> DiskPlugin::collect(util::TimeNs now) {
  const sysmon::DiskCounters cur = kernel_.disk_counters();
  std::vector<Point> out;
  if (last_ && now > last_time_) {
    const double dt = util::ns_to_seconds(now - last_time_);
    Point p;
    p.measurement = "disk";
    p.set_tag("hostname", hostname_);
    p.timestamp = now;
    p.add_field("read_bytes_per_sec",
                static_cast<double>(cur.read_bytes - last_->read_bytes) / dt);
    p.add_field("write_bytes_per_sec",
                static_cast<double>(cur.write_bytes - last_->write_bytes) / dt);
    p.add_field("read_ops_per_sec",
                static_cast<double>(cur.read_ops - last_->read_ops) / dt);
    p.add_field("write_ops_per_sec",
                static_cast<double>(cur.write_ops - last_->write_ops) / dt);
    p.normalize();
    out.push_back(std::move(p));
  }
  last_ = cur;
  last_time_ = now;
  return out;
}

HpmPlugin::HpmPlugin(hpm::HpmMonitor monitor) : monitor_(std::move(monitor)) {}

std::vector<Point> HpmPlugin::collect(util::TimeNs now) { return monitor_.sample(now); }

}  // namespace lms::collector
