#include "lms/collector/agent.hpp"

#include "lms/lineproto/codec.hpp"
#include "lms/obs/metrics.hpp"
#include "lms/obs/runtime.hpp"
#include "lms/obs/trace.hpp"
#include "lms/util/logging.hpp"

namespace lms::collector {

namespace {
obs::Labels host_labels(const std::string& hostname) {
  if (hostname.empty()) return {};
  return {{"hostname", hostname}};
}
}  // namespace

HostAgent::HostAgent(net::HttpClient& client, Options options)
    : client_(client), options_(std::move(options)) {
  buffer_stats_.name = "collector.send";
  buffer_stats_.capacity = options_.retry_queue_capacity;
  core::runtime::register_queue(&buffer_stats_);
  if (options_.registry != nullptr) {
    const obs::Labels labels = host_labels(options_.hostname);
    collected_c_ = &options_.registry->counter("collector_points_collected", labels);
    sent_c_ = &options_.registry->counter("collector_points_sent", labels);
    batches_c_ = &options_.registry->counter("collector_batches_sent", labels);
    failures_c_ = &options_.registry->counter("collector_send_failures", labels);
    dropped_c_ = &options_.registry->counter("collector_points_dropped", labels);
    options_.registry->gauge_fn("collector_pending_points", labels,
                                [this] { return static_cast<double>(buffer_.size()); });
  }
}

HostAgent::~HostAgent() {
  detach();
  core::runtime::unregister_queue(&buffer_stats_);
  if (options_.registry != nullptr) {
    options_.registry->remove_gauge_fn("collector_pending_points",
                                       host_labels(options_.hostname));
  }
}

void HostAgent::add_plugin(std::unique_ptr<CollectorPlugin> plugin, util::TimeNs interval) {
  plugins_.push_back(ScheduledPlugin{std::move(plugin), interval, 0});
}

void HostAgent::on_attach(core::TaskScheduler& sched) {
  const util::TimeNs interval =
      options_.tick_interval > 0 ? options_.tick_interval : util::kNanosPerSecond;
  const util::Clock* clock =
      options_.clock != nullptr ? options_.clock : &util::WallClock::instance();
  tick_task_ = sched.submit_periodic("collector.agent", interval,
                                     [this, clock] { tick(clock->now()); });
}

void HostAgent::on_detach() {
  tick_task_.cancel();
  // Final flush so points collected just before shutdown still ship.
  const util::Clock* clock =
      options_.clock != nullptr ? options_.clock : &util::WallClock::instance();
  flush(clock->now());
}

std::size_t HostAgent::tick(util::TimeNs now) {
  last_tick_ = now;
  std::size_t collected = 0;
  for (auto& sp : plugins_) {
    if (now < sp.next_due) continue;
    sp.next_due = now + sp.interval;
    std::vector<lineproto::Point> points = sp.plugin->collect(now);
    collected += points.size();
    for (auto& p : points) {
      if (buffer_.size() >= options_.retry_queue_capacity) {
        buffer_.pop_front();
        ++stats_.points_dropped;
        if (dropped_c_ != nullptr) dropped_c_->inc();
        buffer_stats_.rejected_pushes.fetch_add(1, std::memory_order_relaxed);
      }
      buffer_.push_back(std::move(p));
      buffer_stats_.on_push(buffer_.size());
    }
  }
  stats_.points_collected += collected;
  if (collected_c_ != nullptr) collected_c_->inc(collected);
  if (options_.self_monitor_interval > 0 && now >= next_self_monitor_) {
    next_self_monitor_ = now + options_.self_monitor_interval;
    lineproto::Point p;
    p.measurement = "agent";
    if (!options_.hostname.empty()) p.set_tag("hostname", options_.hostname);
    p.timestamp = now;
    p.add_field("points_collected", static_cast<std::int64_t>(stats_.points_collected));
    p.add_field("points_sent", static_cast<std::int64_t>(stats_.points_sent));
    p.add_field("send_failures", static_cast<std::int64_t>(stats_.send_failures));
    p.add_field("points_dropped", static_cast<std::int64_t>(stats_.points_dropped));
    p.add_field("pending_points", static_cast<std::int64_t>(buffer_.size()));
    p.normalize();
    if (buffer_.size() >= options_.retry_queue_capacity) {
      buffer_.pop_front();
      ++stats_.points_dropped;
      if (dropped_c_ != nullptr) dropped_c_->inc();
      buffer_stats_.rejected_pushes.fetch_add(1, std::memory_order_relaxed);
    }
    buffer_.push_back(std::move(p));
    buffer_stats_.on_push(buffer_.size());
    ++collected;
    ++stats_.points_collected;
    if (collected_c_ != nullptr) collected_c_->inc();
  }
  if (buffer_.size() >= options_.max_batch_points ||
      (now - last_flush_ >= options_.flush_interval && !buffer_.empty())) {
    flush(now);
  }
  return collected;
}

void HostAgent::flush(util::TimeNs now) {
  // Root span of the delivery: every downstream hop (router write, async
  // flush, TSDB append) joins this trace through the injected header.
  obs::Span span("collector.flush", "collector");
  last_flush_ = now;
  while (!buffer_.empty()) {
    const std::size_t n = std::min(buffer_.size(), options_.max_batch_points);
    std::vector<lineproto::Point> batch(buffer_.begin(),
                                        buffer_.begin() + static_cast<std::ptrdiff_t>(n));
    const SendOutcome outcome = send_batch(batch);
    last_send_ok_ = outcome == SendOutcome::kSent;
    if (outcome == SendOutcome::kRetryLater) {
      ++stats_.send_failures;
      if (failures_c_ != nullptr) failures_c_->inc();
      span.set_ok(false);
      span.set_note("send failed, batch requeued");
      return;  // keep the points queued for the next flush
    }
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(n));
    buffer_stats_.on_pop(buffer_.size());
    if (outcome == SendOutcome::kSent) {
      stats_.points_sent += n;
      ++stats_.batches_sent;
      if (sent_c_ != nullptr) sent_c_->inc(n);
      if (batches_c_ != nullptr) batches_c_->inc();
    } else {
      stats_.points_dropped += n;
      if (dropped_c_ != nullptr) dropped_c_->inc(n);
    }
  }
}

net::ComponentHealth HostAgent::health(bool readiness) const {
  net::ComponentHealth h;
  h.component = "collector";
  h.time = last_tick_;

  h.add("plugins", net::HealthStatus::kOk,
        std::to_string(plugins_.size()) + " plugins registered",
        static_cast<double>(plugins_.size()));

  const std::size_t pending = buffer_.size();
  net::HealthStatus queue_status = net::HealthStatus::kOk;
  std::string queue_detail = std::to_string(pending) + " points awaiting delivery";
  if (options_.retry_queue_capacity > 0 && pending >= options_.retry_queue_capacity / 2) {
    queue_status = net::HealthStatus::kDegraded;
    queue_detail += " (retry queue over half full, capacity " +
                    std::to_string(options_.retry_queue_capacity) + ")";
  }
  h.add("retry_queue", queue_status, std::move(queue_detail),
        static_cast<double>(pending));

  if (readiness) {
    h.add("router", last_send_ok_ ? net::HealthStatus::kOk : net::HealthStatus::kDegraded,
          last_send_ok_ ? "last batch delivered to " + options_.router_url
                        : "last send to " + options_.router_url + " failed, retrying");
  }
  return h;
}

net::HttpHandler HostAgent::handler() {
  return [this](const net::HttpRequest& req) -> net::HttpResponse {
    if (req.path == "/ping") return net::HttpResponse::no_content();
    if (req.path == "/health") return net::health_response(health(false));
    if (req.path == "/ready") return net::ready_response(health(true));
    if (req.path == "/metrics") {
      obs::Registry& registry =
          options_.registry != nullptr ? *options_.registry : obs::Registry::global();
      obs::update_runtime_metrics(registry);
      auto resp = net::HttpResponse::text(200, obs::render_text(registry));
      resp.headers.set("Content-Type", obs::kTextExpositionContentType);
      return resp;
    }
    if (req.path == "/debug/runtime") return net::runtime_debug_response();
    if (req.path == "/debug/pprof") return net::pprof_response(req);
    return net::HttpResponse::not_found();
  };
}

HostAgent::SendOutcome HostAgent::send_batch(const std::vector<lineproto::Point>& points) {
  obs::Span span("collector.send", "collector");
  span.set_note("points=" + std::to_string(points.size()));
  const std::string body = lineproto::serialize_batch(points);
  const std::string url = options_.router_url + "/write?db=" + options_.database;
  auto resp = client_.post(url, body, "text/plain");
  if (!resp.ok()) {
    LMS_WARN("agent") << "send failed: " << resp.message();
    span.set_ok(false);
    return SendOutcome::kRetryLater;
  }
  if (!resp->ok()) {
    LMS_WARN("agent") << "router rejected batch: HTTP " << resp->status << " " << resp->body;
    span.set_ok(false);
    if (resp->status == 429) span.set_note("error=backpressure");
    // 4xx means the batch itself is malformed; retrying would loop forever.
    // 429 is explicit backpressure: back off and retry, the points are fine.
    if (resp->status == 429) return SendOutcome::kRetryLater;
    return resp->status >= 400 && resp->status < 500 ? SendOutcome::kDropBatch
                                                     : SendOutcome::kRetryLater;
  }
  return SendOutcome::kSent;
}

}  // namespace lms::collector
