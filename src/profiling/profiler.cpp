#include "lms/profiling/profiler.hpp"

#include <algorithm>

#include "lms/hpm/perfgroup.hpp"

namespace lms::profiling {

namespace {

/// Self-metric instrument names (lms_internal, via the standard self-scrape).
constexpr std::string_view kActiveRegionsGauge = "profiling_active_regions";
constexpr std::string_view kMarkerOverheadHist = "profiling_marker_overhead_ns";
constexpr std::string_view kMarkersCounter = "profiling_markers_total";
constexpr std::string_view kUnbalancedCounter = "profiling_unbalanced_markers";

obs::Labels self_labels(const Profiler::Options& options) {
  obs::Labels labels;
  if (!options.hostname.empty()) labels.emplace_back("hostname", options.hostname);
  return labels;
}

}  // namespace

Profiler::Profiler() : Profiler(Options{}) {}

Profiler::Profiler(Options options) : options_(std::move(options)) {
  if (options_.registry != nullptr) {
    const obs::Labels labels = self_labels(options_);
    markers_total_ = &options_.registry->counter(kMarkersCounter, labels);
    unbalanced_total_ = &options_.registry->counter(kUnbalancedCounter, labels);
    marker_overhead_ = &options_.registry->histogram(kMarkerOverheadHist, labels);
    options_.registry->gauge_fn(kActiveRegionsGauge, labels,
                                [this] { return static_cast<double>(active_regions()); });
  }
}

Profiler::~Profiler() {
  if (options_.registry != nullptr) {
    options_.registry->remove_gauge_fn(kActiveRegionsGauge, self_labels(options_));
  }
  // Open brackets of collectors die with the collectors; nothing to unwind.
}

void Profiler::add_collector(std::unique_ptr<MetricCollector> collector) {
  if (collector == nullptr) return;
  if (group_tag_.empty()) group_tag_ = collector->group();
  collectors_.push_back(std::move(collector));
}

util::TimeNs Profiler::resolve_now(util::TimeNs now) const {
  if (now != 0) return now;
  const util::Clock* clock = options_.clock;
  return clock != nullptr ? clock->now() : util::WallClock::instance().now();
}

Profiler::ThreadState& Profiler::thread_state_locked() {
  const auto id = std::this_thread::get_id();
  const auto it = threads_.find(id);
  if (it != threads_.end()) return it->second;
  ThreadState state;
  state.label = std::to_string(threads_.size());
  return threads_.emplace(id, std::move(state)).first->second;
}

util::Status Profiler::start(std::string_view region, util::TimeNs now) {
  const util::TimeNs entry = util::monotonic_now_ns();
  now = resolve_now(now);
  OpenRegion open;
  open.name = std::string(region);
  open.t0 = now;
  open.handles.reserve(collectors_.size());
  for (const auto& collector : collectors_) open.handles.push_back(collector->start(now));
  bool rejected = false;
  {
    const core::sync::LockGuard lock(mu_);
    ThreadState& state = thread_state_locked();
    if (state.stack.size() >= options_.max_depth) {
      ++counters_.rejected;
      rejected = true;
    } else {
      if (options_.emit_spans) {
        open.span = std::make_unique<obs::Span>("region " + open.name, "profiling");
      }
      state.stack.push_back(std::move(open));
      ++open_count_;
    }
  }
  if (rejected) {
    // Discard with mu_ released: collector brackets open and close outside
    // the marker hot-path lock (stop() already does), so the profiler never
    // nests into the collectors' locks.
    for (std::size_t i = 0; i < collectors_.size(); ++i) {
      collectors_[i]->discard(open.handles[i]);
    }
    return util::Status::error("profiling: region depth bound (" +
                               std::to_string(options_.max_depth) + ") hit starting '" +
                               open.name + "'");
  }
  if (marker_overhead_ != nullptr) {
    marker_overhead_->record(static_cast<std::uint64_t>(
        std::max<util::TimeNs>(0, util::monotonic_now_ns() - entry)));
  }
  return util::Status();
}

util::Status Profiler::stop(std::string_view region, util::TimeNs now) {
  const util::TimeNs entry = util::monotonic_now_ns();
  now = resolve_now(now);
  OpenRegion closed;
  std::string thread_label;
  util::TimeNs dt = 0;
  {
    const core::sync::LockGuard lock(mu_);
    ThreadState& state = thread_state_locked();
    if (state.stack.empty() || state.stack.back().name != region) {
      ++counters_.unbalanced;
      if (unbalanced_total_ != nullptr) unbalanced_total_->inc();
      const std::string open_name =
          state.stack.empty() ? "<none>" : state.stack.back().name;
      return util::Status::error("profiling: unbalanced stop('" + std::string(region) +
                                 "'): innermost open region is '" + open_name + "'");
    }
    closed = std::move(state.stack.back());
    state.stack.pop_back();
    --open_count_;
    thread_label = state.label;
    dt = std::max<util::TimeNs>(0, now - closed.t0);
    if (!state.stack.empty()) state.stack.back().child_ns += dt;
  }

  // Collector brackets close outside the profiler lock (each collector has
  // its own synchronization), then the sums merge back under it.
  std::vector<std::vector<lineproto::Field>> collected;
  collected.reserve(collectors_.size());
  for (std::size_t i = 0; i < collectors_.size(); ++i) {
    collected.push_back(collectors_[i]->stop(closed.handles[i], now));
  }

  {
    const core::sync::LockGuard lock(mu_);
    Aggregate& agg = aggregates_[AggKey{closed.name, thread_label}];
    ++agg.count;
    agg.inclusive_ns += dt;
    agg.exclusive_ns += std::max<util::TimeNs>(0, dt - closed.child_ns);
    for (const auto& fields : collected) {
      for (const auto& [key, value] : fields) agg.fields[key] += value.as_double();
    }
    for (const auto& [key, value] : closed.user_fields) agg.fields[key] += value;
    ++counters_.markers;
  }
  if (markers_total_ != nullptr) markers_total_->inc();
  // closed.span (if any) is destroyed here, recording the region span with
  // the surrounding trace as parent.
  closed.span.reset();
  if (marker_overhead_ != nullptr) {
    marker_overhead_->record(static_cast<std::uint64_t>(
        std::max<util::TimeNs>(0, util::monotonic_now_ns() - entry)));
  }
  return util::Status();
}

bool Profiler::value(std::string_view name, double v) {
  const core::sync::LockGuard lock(mu_);
  ThreadState& state = thread_state_locked();
  if (state.stack.empty()) return false;
  const std::string key = "user_" + hpm::sanitize_field_key(name);
  state.stack.back().user_fields[key] += v;
  state.stack.back().user_fields[key + "_count"] += 1.0;
  ++counters_.user_values;
  return true;
}

void Profiler::append_derived(const Aggregate& agg, FieldSums& fields) const {
  for (const auto& collector : collectors_) {
    for (const auto& [key, value] : collector->derive(agg.fields, agg.inclusive_ns)) {
      fields[key] = value.as_double();
    }
  }
}

std::vector<Profiler::RegionStats> Profiler::stats() const {
  const core::sync::LockGuard lock(mu_);
  std::vector<RegionStats> out;
  out.reserve(aggregates_.size());
  for (const auto& [key, agg] : aggregates_) {
    RegionStats stats;
    stats.region = key.first;
    stats.thread = key.second;
    stats.count = agg.count;
    stats.inclusive_ns = agg.inclusive_ns;
    stats.exclusive_ns = agg.exclusive_ns;
    stats.fields = agg.fields;
    append_derived(agg, stats.fields);
    out.push_back(std::move(stats));
  }
  return out;
}

std::vector<lineproto::Point> Profiler::drain_points(
    util::TimeNs now, const std::vector<lineproto::Tag>& extra_tags) {
  std::map<AggKey, Aggregate> drained;
  {
    const core::sync::LockGuard lock(mu_);
    drained.swap(aggregates_);
  }
  std::vector<lineproto::Point> points;
  points.reserve(drained.size());
  for (const auto& [key, agg] : drained) {
    lineproto::Point point;
    point.measurement = std::string(kRegionsMeasurement);
    point.set_tag("region", key.first);
    point.set_tag("thread", key.second);
    if (!options_.hostname.empty()) point.set_tag("hostname", options_.hostname);
    if (!group_tag_.empty()) point.set_tag("group", group_tag_);
    for (const auto& [tag, tag_value] : extra_tags) point.set_tag(tag, tag_value);
    point.timestamp = now;
    point.add_field("count", static_cast<std::int64_t>(agg.count));
    point.add_field("inclusive_ns", static_cast<std::int64_t>(agg.inclusive_ns));
    point.add_field("exclusive_ns", static_cast<std::int64_t>(agg.exclusive_ns));
    FieldSums fields = agg.fields;
    append_derived(agg, fields);
    for (const auto& [field, value] : fields) point.add_field(field, value);
    point.normalize();
    points.push_back(std::move(point));
  }
  return points;
}

void Profiler::reset() {
  const core::sync::LockGuard lock(mu_);
  aggregates_.clear();
}

Profiler::Counters Profiler::counters() const {
  const core::sync::LockGuard lock(mu_);
  return counters_;
}

std::size_t Profiler::active_regions() const {
  const core::sync::LockGuard lock(mu_);
  return open_count_;
}

ScopedRegion::ScopedRegion(Profiler& profiler, std::string region, util::TimeNs now)
    : profiler_(profiler), region_(std::move(region)) {
  active_ = profiler_.start(region_, now).ok();
}

ScopedRegion::~ScopedRegion() {
  if (active_) (void)profiler_.stop(region_);
}

util::Status ScopedRegion::stop(util::TimeNs now) {
  if (!active_) return util::Status::error("profiling: region '" + region_ + "' not open");
  active_ = false;
  return profiler_.stop(region_, now);
}

}  // namespace lms::profiling
